// mcsort_coord — command-line front-end of McsortCoordinator: registers
// shard endpoints, runs a distributed query, prints the per-shard and
// merge breakdown, and (with --verify) diffs the merged answer against a
// single-node server holding the unsharded table, exiting nonzero on any
// mismatch.
//
//   mcsort_coord [options]
//
//   --shard H:P[,H:P...]  one logical shard: primary endpoint then
//                         replicas (repeat once per shard)
//   --table NAME          table name on the shards (default: server default)
//   --query group|order   group: GROUP BY a,b with sum/count/avg/min/max
//                         aggregates and ORDER BY sum(m) DESC;
//                         order: ORDER BY c,b,a,m (default: group)
//   --deadline S          whole-call deadline in seconds
//   --attempts N          max attempts per shard across replicas (default 3)
//   --verify H:P          single-node server with the full table to diff
//                         against (bit-identical group stream required)
//   --metrics             print the coordinator's dist.* metrics dump
//
// scripts/cluster_smoke.sh drives this binary in CI, including the
// induced-shard-failure / replica-failover pass.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mcsort/dist/coordinator.h"
#include "mcsort/engine/query.h"
#include "mcsort/net/client.h"
#include "mcsort/service/metrics.h"

namespace {

using namespace mcsort;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --shard H:P[,H:P...] [--shard ...] [--table NAME]\n"
               "          [--query group|order] [--deadline S] [--attempts N]\n"
               "          [--verify H:P] [--metrics]\n",
               argv0);
  return 2;
}

bool ParseEndpoint(const std::string& text, dist::ShardEndpoint* endpoint) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon + 1 >= text.size()) return false;
  endpoint->host = text.substr(0, colon);
  endpoint->port = static_cast<uint16_t>(
      std::strtoul(text.c_str() + colon + 1, nullptr, 10));
  return endpoint->port != 0;
}

bool ParseShard(const std::string& arg, dist::ShardSpec* spec) {
  size_t start = 0;
  while (start <= arg.size()) {
    size_t comma = arg.find(',', start);
    if (comma == std::string::npos) comma = arg.size();
    dist::ShardEndpoint endpoint;
    if (!ParseEndpoint(arg.substr(start, comma - start), &endpoint)) {
      return false;
    }
    spec->endpoints.push_back(endpoint);
    start = comma + 1;
  }
  return !spec->endpoints.empty();
}

QuerySpec BuildSpec(const std::string& query) {
  if (query == "order") {
    // All four demo columns: the composite key is (nearly always) unique,
    // so the merged row order is fully determined.
    return QuerySpecBuilder("dist-order")
        .OrderBy("c")
        .OrderBy("b")
        .OrderBy("a")
        .OrderBy("m")
        .Build();
  }
  return QuerySpecBuilder("dist-group")
      .GroupBy({"a", "b"})
      .Sum("m")
      .Count()
      .Aggregate(AggOp::kAvg, "m")
      .Aggregate(AggOp::kMin, "c")
      .Aggregate(AggOp::kMax, "c")
      .ResultOrder("agg:0", SortOrder::kDescending)
      .Build();
}

template <typename T>
bool DiffVectors(const char* what, const std::vector<T>& dist_v,
                 const std::vector<T>& single_v) {
  if (dist_v == single_v) return true;
  std::fprintf(stderr, "verify: %s differs (dist %zu elems, single %zu)\n",
               what, dist_v.size(), single_v.size());
  const size_t n = std::min(dist_v.size(), single_v.size());
  for (size_t i = 0; i < n; ++i) {
    if (dist_v[i] != single_v[i]) {
      std::fprintf(stderr, "verify: first mismatch at index %zu\n", i);
      break;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<dist::ShardSpec> shards;
  std::string table;
  std::string query = "group";
  std::string verify_endpoint;
  double deadline = 0;
  bool dump_metrics = false;
  dist::CoordinatorOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shard" && i + 1 < argc) {
      dist::ShardSpec spec;
      if (!ParseShard(argv[++i], &spec)) return Usage(argv[0]);
      shards.push_back(std::move(spec));
    } else if (arg == "--table" && i + 1 < argc) {
      table = argv[++i];
    } else if (arg == "--query" && i + 1 < argc) {
      query = argv[++i];
      if (query != "group" && query != "order") return Usage(argv[0]);
    } else if (arg == "--deadline" && i + 1 < argc) {
      deadline = std::atof(argv[++i]);
    } else if (arg == "--attempts" && i + 1 < argc) {
      options.max_attempts_per_shard = std::atoi(argv[++i]);
    } else if (arg == "--verify" && i + 1 < argc) {
      verify_endpoint = argv[++i];
    } else if (arg == "--metrics") {
      dump_metrics = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (shards.empty()) return Usage(argv[0]);

  MetricsRegistry metrics;
  options.metrics = &metrics;
  dist::McsortCoordinator coordinator(options);
  for (dist::ShardSpec& spec : shards) {
    spec.table = table;
    coordinator.AddShard(std::move(spec));
  }

  const QuerySpec spec = BuildSpec(query);
  dist::DistCallOptions call;
  call.deadline_seconds = deadline;
  const dist::DistResult result = coordinator.Execute(spec, call);

  for (const dist::ShardOutcome& o : result.shards) {
    std::printf(
        "shard %d: endpoint=%d attempts=%d status=%s error=%s %llu elems "
        "in %.3f s%s%s\n",
        o.shard, o.endpoint_used, o.attempts,
        net::ClientStatusName(o.client_status), net::ErrorCodeName(o.error),
        static_cast<unsigned long long>(o.elements), o.seconds,
        o.detail.empty() ? "" : " -- ", o.detail.c_str());
  }
  std::printf("dist status=%s fanout=%.3f s merge=%.3f s emitted=%llu "
              "full_compares=%llu\n",
              dist::DistStatusName(result.status), result.fanout_seconds,
              result.merge_seconds,
              static_cast<unsigned long long>(result.merge_emitted),
              static_cast<unsigned long long>(result.merge_full_compares));
  if (!result.ok()) {
    std::fprintf(stderr, "mcsort_coord: %s\n",
                 result.ToStatus().ToString().c_str());
    return 1;
  }
  if (query == "group") {
    std::printf("merged %zu groups\n", result.num_groups);
  } else {
    std::printf("merged %zu rows\n", result.result_oids.size());
  }

  int exit_code = 0;
  if (!verify_endpoint.empty()) {
    dist::ShardEndpoint endpoint;
    if (!ParseEndpoint(verify_endpoint, &endpoint)) return Usage(argv[0]);
    net::ClientOptions copts;
    copts.host = endpoint.host;
    copts.port = endpoint.port;
    net::McsortClient client(copts);
    std::string error;
    if (!client.Connect(&error)) {
      std::fprintf(stderr, "verify: connect: %s\n", error.c_str());
      return 1;
    }
    // Pin the column order on the single-node run too, so its canonical
    // group stream matches the order the coordinator merged in.
    QuerySpec single = spec;
    single.fixed_column_order = true;
    net::QueryCallOptions qopts;
    qopts.table = table;
    qopts.want_merge_keys = true;
    net::RemoteResult want;
    if (client.TryQuery(single, qopts, &want) != net::ClientStatus::kOk ||
        !want.ok()) {
      std::fprintf(stderr, "verify: single-node query failed: %s\n",
                   want.error_detail.c_str());
      return 1;
    }
    bool same = true;
    if (query == "group") {
      if (result.num_groups != want.summary.num_groups) {
        std::fprintf(stderr, "verify: group count differs (%zu vs %llu)\n",
                     result.num_groups,
                     static_cast<unsigned long long>(
                         want.summary.num_groups));
        same = false;
      }
      same = DiffVectors("group_sizes", result.group_sizes,
                         want.extras.group_sizes) && same;
      for (size_t a = 0; a < result.aggregate_values.size(); ++a) {
        char label[32];
        std::snprintf(label, sizeof(label), "aggregate %zu", a);
        same = DiffVectors(label, result.aggregate_values[a],
                           want.aggregate_values[a]) && same;
      }
      // Result ordering: compare the ordering key's value sequence (ties
      // between equal keys may legally permute, so raw permutation diffs
      // would be noise).
      if (!spec.result_order.empty() &&
          spec.result_order[0].key == "agg:0") {
        std::vector<int64_t> dist_seq, single_seq;
        for (const uint32_t g : result.result_group_order) {
          dist_seq.push_back(result.aggregate_values[0][g]);
        }
        for (const uint32_t g : want.result_group_order) {
          single_seq.push_back(want.aggregate_values[0][g]);
        }
        same = DiffVectors("result-order key sequence", dist_seq,
                           single_seq) && same;
      }
    } else {
      // The full table's raw oids ARE the global ids the shards carry.
      same = DiffVectors("result_oids", result.result_oids,
                         want.result_oids) && same;
    }
    if (same) {
      std::printf("verify: distributed result is bit-identical to "
                  "single-node\n");
    } else {
      exit_code = 1;
    }
  }

  if (dump_metrics) {
    std::printf("%s", metrics.Dump().c_str());
  }
  return exit_code;
}

// mcsort_server — the standalone network front-end binary: builds the
// demo table, wires a QueryService, and serves the binary protocol until
// SIGTERM/SIGINT triggers a graceful drain.
//
// Environment knobs: MCSORT_HOST / MCSORT_PORT (0 = ephemeral; the bound
// port is printed either way) / MCSORT_MAX_CONNS, plus the usual service
// knobs (MCSORT_THREADS, MCSORT_RHO, MCSORT_N for the demo table size).
// scripts/net_smoke.sh drives this binary in CI.
#include <csignal>
#include <cstdio>
#include <thread>

#include "demo_table.h"
#include "mcsort/common/options.h"
#include "mcsort/net/server.h"
#include "mcsort/service/query_service.h"

namespace {

mcsort::net::McsortServer* g_server = nullptr;

// Async-signal-safe by construction: RequestDrain is an atomic store plus
// one write(2) to an eventfd.
void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestDrain();
}

}  // namespace

int main() {
  using namespace mcsort;

  // The one place this binary reads the environment: every MCSORT_* knob
  // is parsed into the typed config up front and passed down as structs.
  const ExecOptions env = ExecOptions::FromEnv();
  const size_t rows = env.demo_rows;
  const Table table = MakeDemoTable(rows);

  ServiceOptions service_options;
  service_options.rho = env.rho;
  service_options.threads = env.threads;
  if (service_options.threads <= 1) {
    service_options.threads = std::max(
        2u, std::thread::hardware_concurrency() / 2);
  }
  QueryService service(service_options);
  service.RegisterTable("demo", table);

  // Optional on-disk catalog: MCSORT_DATA_DIR names a directory of table
  // snapshots (written by mcsort_ingest or SAVE_TABLE). Discovered tables
  // register unloaded and materialize on first query; MCSORT_MMAP=1 maps
  // code arrays zero-copy instead of buffered reads, and
  // MCSORT_MEMORY_BUDGET (bytes) bounds the resident set via LRU eviction.
  if (!env.data_dir.empty()) {
    CatalogOptions catalog;
    catalog.dir = env.data_dir;
    catalog.load.mode = env.mmap_snapshots ? SnapshotLoadMode::kMmap
                                           : SnapshotLoadMode::kBuffered;
    catalog.memory_budget_bytes = env.memory_budget_bytes;
    service.SetCatalog(catalog);
    std::printf("catalog: %s (%s load)\n", env.data_dir.c_str(),
                env.mmap_snapshots ? "mmap" : "buffered");
  }

  // Background compaction (MCSORT_COMPACT=1): periodically folds each
  // table's delta store into a fresh encoded base, persisting the merged
  // snapshot when a catalog is attached. Off by default — the write path
  // works without it, queries just pay the merge-at-scan copy.
  if (env.compaction_enabled) {
    delta::CompactionOptions compaction;
    compaction.enabled = true;
    compaction.interval_ms = env.compaction_interval_ms;
    compaction.min_delta_rows = env.compaction_min_rows;
    service.EnableCompaction(compaction);
    std::printf("compaction: every %llu ms, min %llu pending rows\n",
                static_cast<unsigned long long>(compaction.interval_ms),
                static_cast<unsigned long long>(compaction.min_delta_rows));
  }

  net::ServerOptions options = net::ServerOptions::FromEnv();
  net::McsortServer server(&service, options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "mcsort_server: start failed: %s\n", error.c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // The port line is the startup handshake scripts wait for; flush it.
  std::printf("mcsort_server listening on %s:%u (%zu rows, %d pool "
              "threads, max %d conns)\n",
              options.host.c_str(), server.port(), rows,
              service_options.threads, options.max_connections);
  std::fflush(stdout);

  server.WaitUntilStopped();
  std::printf("mcsort_server: drained, final metrics:\n%s",
              service.DumpMetrics().c_str());
  return 0;
}

// mcsort_shard — offline partitioner for the distributed tier: splits a
// table into N shard snapshot directories that N mcsort_server instances
// (each with MCSORT_DATA_DIR pointed at its own shard<i>/ directory) can
// serve, plus (optionally) the unsharded table for single-node
// verification.
//
//   mcsort_shard [options] <out-root>
//
//   --demo N        shard the built-in demo table with N rows (default
//                   source, N defaults to 1<<17)
//   --seed S        demo table RNG seed (default 4242)
//   --snapshot DIR  shard an existing snapshot directory instead
//   --table NAME    table name for the shard snapshots (default "demo")
//   --shards K      number of shards (default 2)
//   --mode M        hash | range (default hash)
//   --key COLUMN    sharding key column (default: hash of the row id /
//                   contiguous row ranges)
//   --no-goid       do not add the __goid global-row-id column
//   --full          also write the unsharded table to <out-root>/full/<name>
//
// Output layout: <out-root>/shard<i>/<name>/ — one snapshot per shard.
// scripts/cluster_smoke.sh drives this binary in CI.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "demo_table.h"
#include "mcsort/dist/partition.h"
#include "mcsort/io/snapshot.h"
#include "mcsort/storage/table.h"

namespace {

using namespace mcsort;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--demo N] [--seed S] [--snapshot DIR]\n"
               "          [--table NAME] [--shards K] [--mode hash|range]\n"
               "          [--key COLUMN] [--no-goid] [--full] <out-root>\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t demo_rows = uint64_t{1} << 17;
  uint64_t seed = 4242;
  std::string snapshot_dir;
  std::string table_name = "demo";
  std::string out_root;
  bool write_full = false;
  dist::PartitionOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo" && i + 1 < argc) {
      demo_rows = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--snapshot" && i + 1 < argc) {
      snapshot_dir = argv[++i];
    } else if (arg == "--table" && i + 1 < argc) {
      table_name = argv[++i];
    } else if (arg == "--shards" && i + 1 < argc) {
      options.num_shards = std::atoi(argv[++i]);
    } else if (arg == "--mode" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "hash") {
        options.mode = dist::PartitionMode::kHash;
      } else if (mode == "range") {
        options.mode = dist::PartitionMode::kRange;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--key" && i + 1 < argc) {
      options.key_column = argv[++i];
    } else if (arg == "--no-goid") {
      options.add_global_oids = false;
    } else if (arg == "--full") {
      write_full = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else if (out_root.empty()) {
      out_root = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (out_root.empty()) return Usage(argv[0]);

  Table table;
  if (!snapshot_dir.empty()) {
    const IoStatus st =
        LoadTableSnapshot(snapshot_dir, SnapshotLoadOptions{}, &table);
    if (!st.ok()) {
      std::fprintf(stderr, "mcsort_shard: load %s: %s\n",
                   snapshot_dir.c_str(), st.ToString().c_str());
      return 1;
    }
  } else {
    table = MakeDemoTable(demo_rows, seed);
  }
  std::printf("sharding %llu rows x %zu columns into %d %s shards%s%s\n",
              static_cast<unsigned long long>(table.row_count()),
              table.column_names().size(), options.num_shards,
              options.mode == dist::PartitionMode::kHash ? "hash" : "range",
              options.key_column.empty() ? "" : " on ",
              options.key_column.c_str());

  if (write_full) {
    const std::string full_dir = out_root + "/full/" + table_name;
    const IoStatus st = SaveTableSnapshot(table, full_dir);
    if (!st.ok()) {
      std::fprintf(stderr, "mcsort_shard: save %s: %s\n", full_dir.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("full table written to %s\n", full_dir.c_str());
  }

  const dist::PartitionToDiskResult result =
      dist::PartitionToSnapshots(table, table_name, out_root, options);
  if (!result.ok) {
    std::fprintf(stderr, "mcsort_shard: %s\n", result.error.c_str());
    return 1;
  }
  for (size_t s = 0; s < result.shard_dirs.size(); ++s) {
    std::printf("shard %zu: %llu rows -> %s\n", s,
                static_cast<unsigned long long>(result.shard_rows[s]),
                result.shard_dirs[s].c_str());
  }
  return 0;
}

// mcsort_dml — the write-path driver CI runs against a live mcsort_server
// (scripts/dml_smoke.sh): INSERT/DELETE/UPDATE commands over the client
// library, a deterministic result digest for before/after-restart
// comparisons, a SCHEMA poller that waits for compaction to fold the
// delta, and timed churn/read loops for the concurrency phase.
//
// Usage: mcsort_dml <table> <verb> [args...]
//   insert <n> [seed]                      append n generated rows
//   delete <column> <op> <value>           tombstone matching rows
//   update <pcol> <op> <pval> <scol> <sval> rewrite matching rows
//   digest                                 print "digest=<hex> rows=<n>"
//   schema                                 print "rows=.. epoch=.. delta=.."
//   wait-compact [timeout_s]               poll until delta_rows == 0
//   churn <seconds> [seed]                 mixed insert/delete loop
//   read-loop <seconds>                    repeated digest queries
//   save / load                            SAVE_TABLE / LOAD_TABLE opcodes
// <op> is one of eq ne lt le gt ge; values with a leading digit or '-'
// parse as integers, anything else as a string.
//
// Environment: MCSORT_HOST / MCSORT_PORT select the server (port
// required); MCSORT_CONNECT_RETRIES (default 50 x 100ms) tolerates a
// server still starting up. Exits 0 on success, 1 on a failed check, 2 on
// usage/connect errors.
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "mcsort/common/env.h"
#include "mcsort/common/options.h"
#include "mcsort/common/random.h"
#include "mcsort/delta/dml.h"
#include "mcsort/net/client.h"

namespace mcsort {
namespace {

using net::McsortClient;
using net::RemoteResult;
using net::SchemaReply;
using net::TableSchema;

int Usage() {
  std::fprintf(stderr,
               "usage: mcsort_dml <table> "
               "insert|delete|update|digest|schema|wait-compact|churn|"
               "read-loop|save|load [args...]\n");
  return 2;
}

bool ParseOp(const std::string& s, delta::DmlCompareOp* op) {
  if (s == "eq") *op = delta::DmlCompareOp::kEq;
  else if (s == "ne") *op = delta::DmlCompareOp::kNe;
  else if (s == "lt") *op = delta::DmlCompareOp::kLt;
  else if (s == "le") *op = delta::DmlCompareOp::kLe;
  else if (s == "gt") *op = delta::DmlCompareOp::kGt;
  else if (s == "ge") *op = delta::DmlCompareOp::kGe;
  else return false;
  return true;
}

delta::DmlValue ParseValue(const std::string& s) {
  if (!s.empty() &&
      (s[0] == '-' || std::isdigit(static_cast<unsigned char>(s[0])))) {
    return delta::DmlValue::Int(std::strtoll(s.c_str(), nullptr, 10));
  }
  return delta::DmlValue::String(s);
}

bool FindTable(McsortClient& client, const std::string& table,
               TableSchema* out) {
  SchemaReply schema;
  if (!client.GetSchema(&schema)) return false;
  for (const TableSchema& t : schema.tables) {
    if (t.name == table) {
      *out = t;
      return true;
    }
  }
  return false;
}

// One generated row per schema: numeric columns draw from the column's
// existing domain (so deltas mostly re-encode without widening), string
// columns draw from a tiny synthetic vocabulary that mixes dictionary
// hits and overflow strings.
std::vector<delta::DmlValue> GenerateRow(const TableSchema& schema, Rng& rng) {
  std::vector<delta::DmlValue> row;
  for (const net::ColumnInfo& col : schema.columns) {
    if (col.has_dictionary) {
      row.push_back(delta::DmlValue::String(
          "w" + std::to_string(rng.NextBounded(64))));
    } else {
      const int width = col.width > 0 && col.width < 20 ? col.width : 16;
      row.push_back(delta::DmlValue::Int(
          col.domain_base +
          static_cast<int64_t>(rng.NextBounded(uint64_t{1} << width))));
    }
  }
  return row;
}

bool SendDml(McsortClient& client, const delta::DmlCommand& cmd,
             uint64_t* affected) {
  const net::DmlResult result = client.ExecuteDml(cmd);
  if (!result.ok()) {
    std::fprintf(stderr, "mcsort_dml: %s failed: %s %s (status %u: %s)\n",
                 delta::DmlOpName(cmd.op), net::ErrorCodeName(result.error),
                 result.error_detail.c_str(), result.reply.status_code,
                 result.reply.detail.c_str());
    return false;
  }
  if (affected != nullptr) *affected = result.reply.rows_affected;
  return true;
}

// FNV-1a over the canonical group-by result: group the first two columns,
// sum + count the last — deterministic for a given table content, so equal
// digests before a kill and after restart+LOAD prove the write path's
// durability story.
bool Digest(McsortClient& client, const std::string& table, uint64_t* digest,
            uint64_t* rows) {
  TableSchema schema;
  if (!FindTable(client, table, &schema) || schema.columns.size() < 2) {
    std::fprintf(stderr, "mcsort_dml: no schema for table '%s'\n",
                 table.c_str());
    return false;
  }
  std::vector<std::string> group;
  for (size_t i = 0; i < schema.columns.size() && i < 2; ++i) {
    group.push_back(schema.columns[i].name);
  }
  const std::string& sum_col = schema.columns.back().name;
  const QuerySpec spec = QuerySpecBuilder("dml_digest")
                             .GroupBy(group)
                             .Sum(sum_col)
                             .Count()
                             .Build();
  net::QueryCallOptions call;
  call.table = table;
  const RemoteResult result = client.Query(spec, call);
  if (!result.ok()) {
    std::fprintf(stderr, "mcsort_dml: digest query failed: %s\n",
                 result.error_detail.c_str());
    return false;
  }
  uint64_t h = 1469598103934665603ull;
  const auto fold = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  fold(result.summary.input_rows);
  fold(result.summary.num_groups);
  for (const std::vector<int64_t>& agg : result.aggregate_values) {
    for (int64_t v : agg) fold(static_cast<uint64_t>(v));
  }
  *digest = h;
  *rows = result.summary.input_rows;
  return true;
}

}  // namespace
}  // namespace mcsort

int main(int argc, char** argv) {
  using namespace mcsort;
  if (argc < 3) return Usage();
  const std::string table = argv[1];
  const std::string verb = argv[2];

  const ServerOptions server_env = ServerOptions::FromEnv();
  if (server_env.port == 0) {
    std::fprintf(stderr, "mcsort_dml: set MCSORT_PORT to the server port\n");
    return 2;
  }
  net::ClientOptions client_options;
  client_options.host = server_env.host;
  client_options.port = server_env.port;
  client_options.io_timeout_seconds = 10;
  client_options.client_name = "mcsort_dml";
  net::McsortClient client(client_options);
  const int retries = static_cast<int>(EnvU64("MCSORT_CONNECT_RETRIES", 50));
  std::string error;
  bool connected = false;
  for (int i = 0; i < retries; ++i) {
    if (client.Connect(&error)) {
      connected = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!connected) {
    std::fprintf(stderr, "mcsort_dml: cannot connect to %s:%u: %s\n",
                 server_env.host.c_str(), server_env.port, error.c_str());
    return 2;
  }

  if (verb == "insert") {
    if (argc < 4) return Usage();
    const uint64_t n = std::strtoull(argv[3], nullptr, 10);
    const uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 99;
    TableSchema schema;
    if (!FindTable(client, table, &schema)) {
      std::fprintf(stderr, "mcsort_dml: unknown table '%s'\n", table.c_str());
      return 1;
    }
    Rng rng(seed);
    delta::DmlCommand cmd;
    cmd.op = delta::DmlOp::kInsert;
    cmd.table = table;
    for (const net::ColumnInfo& col : schema.columns) {
      cmd.columns.push_back(col.name);
    }
    uint64_t inserted = 0;
    // Batches keep each frame well under the row cap while still
    // exercising multi-row payloads.
    const uint64_t batch = 512;
    while (inserted < n) {
      cmd.rows.clear();
      for (uint64_t r = 0; r < batch && inserted + r < n; ++r) {
        cmd.rows.push_back(GenerateRow(schema, rng));
      }
      uint64_t affected = 0;
      if (!SendDml(client, cmd, &affected)) return 1;
      if (affected != cmd.rows.size()) {
        std::fprintf(stderr, "mcsort_dml: insert affected %llu of %zu rows\n",
                     static_cast<unsigned long long>(affected),
                     cmd.rows.size());
        return 1;
      }
      inserted += cmd.rows.size();
    }
    std::printf("inserted=%llu\n", static_cast<unsigned long long>(inserted));
    return 0;
  }

  if (verb == "delete" || verb == "update") {
    const bool is_update = verb == "update";
    if (argc < (is_update ? 8 : 6)) return Usage();
    delta::DmlCommand cmd;
    cmd.op = is_update ? delta::DmlOp::kUpdate : delta::DmlOp::kDelete;
    cmd.table = table;
    cmd.has_predicate = true;
    cmd.predicate.column = argv[3];
    if (!ParseOp(argv[4], &cmd.predicate.op)) return Usage();
    cmd.predicate.value = ParseValue(argv[5]);
    if (is_update) {
      cmd.columns.push_back(argv[6]);
      cmd.rows.push_back({ParseValue(argv[7])});
    }
    uint64_t affected = 0;
    if (!SendDml(client, cmd, &affected)) return 1;
    std::printf("%s affected=%llu\n", verb.c_str(),
                static_cast<unsigned long long>(affected));
    return 0;
  }

  if (verb == "save" || verb == "load") {
    const net::TableOpResult result = verb == "save"
                                          ? client.SaveTable(table)
                                          : client.LoadTable(table);
    if (!result.ok()) {
      std::fprintf(stderr, "mcsort_dml: %s failed: %s %s %s\n", verb.c_str(),
                   net::ErrorCodeName(result.error),
                   result.error_detail.c_str(), result.reply.detail.c_str());
      return 1;
    }
    std::printf("%s rows=%llu\n", verb.c_str(),
                static_cast<unsigned long long>(result.reply.rows));
    return 0;
  }

  if (verb == "digest") {
    uint64_t digest = 0, rows = 0;
    if (!Digest(client, table, &digest, &rows)) return 1;
    std::printf("digest=%016llx rows=%llu\n",
                static_cast<unsigned long long>(digest),
                static_cast<unsigned long long>(rows));
    return 0;
  }

  if (verb == "schema") {
    TableSchema schema;
    if (!FindTable(client, table, &schema)) {
      std::fprintf(stderr, "mcsort_dml: unknown table '%s'\n", table.c_str());
      return 1;
    }
    std::printf("rows=%llu epoch=%llu delta=%llu\n",
                static_cast<unsigned long long>(schema.row_count),
                static_cast<unsigned long long>(schema.epoch),
                static_cast<unsigned long long>(schema.delta_rows));
    return 0;
  }

  if (verb == "wait-compact") {
    const double timeout = argc > 3 ? std::atof(argv[3]) : 30.0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout);
    for (;;) {
      TableSchema schema;
      if (FindTable(client, table, &schema) && schema.delta_rows == 0) {
        std::printf("compacted epoch=%llu rows=%llu\n",
                    static_cast<unsigned long long>(schema.epoch),
                    static_cast<unsigned long long>(schema.row_count));
        return 0;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr,
                     "mcsort_dml: table '%s' still has delta rows after "
                     "%.1fs\n",
                     table.c_str(), timeout);
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  if (verb == "churn" || verb == "read-loop") {
    if (argc < 4) return Usage();
    const double seconds = std::atof(argv[3]);
    const uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(seconds);
    TableSchema schema;
    if (!FindTable(client, table, &schema)) {
      std::fprintf(stderr, "mcsort_dml: unknown table '%s'\n", table.c_str());
      return 1;
    }
    Rng rng(seed);
    uint64_t ops = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      if (verb == "read-loop") {
        // The digest value changes under concurrent writes; the assert is
        // that every read completes — readers never block on writers.
        uint64_t digest = 0, rows = 0;
        if (!Digest(client, table, &digest, &rows)) return 1;
      } else if (rng.NextBounded(4) == 0 && !schema.columns.empty() &&
                 !schema.columns.front().has_dictionary) {
        delta::DmlCommand cmd;
        cmd.op = delta::DmlOp::kDelete;
        cmd.table = table;
        cmd.has_predicate = true;
        cmd.predicate.column = schema.columns.front().name;
        cmd.predicate.op = delta::DmlCompareOp::kEq;
        cmd.predicate.value = delta::DmlValue::Int(
            schema.columns.front().domain_base +
            static_cast<int64_t>(rng.NextBounded(16)));
        if (!SendDml(client, cmd, nullptr)) return 1;
      } else {
        delta::DmlCommand cmd;
        cmd.op = delta::DmlOp::kInsert;
        cmd.table = table;
        for (const net::ColumnInfo& col : schema.columns) {
          cmd.columns.push_back(col.name);
        }
        for (int r = 0; r < 8; ++r) {
          cmd.rows.push_back(GenerateRow(schema, rng));
        }
        if (!SendDml(client, cmd, nullptr)) return 1;
      }
      ++ops;
    }
    std::printf("%s ops=%llu\n", verb.c_str(),
                static_cast<unsigned long long>(ops));
    return 0;
  }

  return Usage();
}

// mcsort_ingest — CSV/TSV → encoded snapshot, the offline half of the
// persistence tier: parses a delimited file into an encoded Table
// (io/csv_ingest.h) and writes it as a snapshot directory a server with
// MCSORT_DATA_DIR set can serve by name.
//
//   mcsort_ingest [options] <file.csv> <table-name>
//
//   --out DIR        snapshot root (default: $MCSORT_DATA_DIR or ".")
//   --delim C        field delimiter (default ','; use --tsv for tabs)
//   --tsv            shorthand for --delim TAB
//   --no-header      first line is data; columns are named c0..cN
//   --threads N      ingest worker threads (default: hardware concurrency)
//   --types T1,T2..  explicit column types (int|decimal|string|auto),
//                    one per column, overriding inference
//   --verify         after saving, load the snapshot back through BOTH
//                    read paths (buffered + mmap) and compare every code
//                    word and dictionary entry against the in-memory
//                    table; exits nonzero on any mismatch
//
// scripts/ingest_smoke.sh drives this binary in CI.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mcsort/common/options.h"
#include "mcsort/io/csv_ingest.h"
#include "mcsort/io/snapshot.h"
#include "mcsort/storage/table.h"

namespace {

using namespace mcsort;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out DIR] [--delim C] [--tsv] [--no-header]\n"
               "          [--threads N] [--types t1,t2,...] [--verify]\n"
               "          <file.csv> <table-name>\n",
               argv0);
  return 2;
}

bool ParseTypes(const std::string& arg, std::vector<CsvColumnSpec>* schema) {
  size_t start = 0;
  while (start <= arg.size()) {
    size_t comma = arg.find(',', start);
    if (comma == std::string::npos) comma = arg.size();
    const std::string token = arg.substr(start, comma - start);
    CsvColumnSpec spec;
    if (token == "int") {
      spec.type = CsvType::kInt;
    } else if (token == "decimal") {
      spec.type = CsvType::kDecimal;
    } else if (token == "string") {
      spec.type = CsvType::kString;
    } else if (token == "auto") {
      spec.type = CsvType::kAuto;
    } else {
      return false;
    }
    schema->push_back(spec);
    start = comma + 1;
  }
  return true;
}

// Bit-identical comparison of a loaded snapshot against the source table:
// every code word, dictionary entry, and domain base must match.
bool TablesIdentical(const Table& want, const Table& got, const char* mode) {
  const auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "verify(%s): %s\n", mode, what.c_str());
    return false;
  };
  if (want.row_count() != got.row_count()) return fail("row count differs");
  if (want.column_names() != got.column_names()) return fail("columns differ");
  for (const std::string& name : want.column_names()) {
    const EncodedColumn& a = want.column(name);
    const EncodedColumn& b = got.column(name);
    if (a.width() != b.width() || a.size() != b.size() ||
        a.type() != b.type()) {
      return fail("column '" + name + "': shape differs");
    }
    if (std::memcmp(a.raw_data(), b.raw_data(), a.byte_size()) != 0) {
      return fail("column '" + name + "': codes differ");
    }
    if (want.domain_base(name) != got.domain_base(name)) {
      return fail("column '" + name + "': domain base differs");
    }
    if (want.HasDictionary(name) != got.HasDictionary(name)) {
      return fail("column '" + name + "': dictionary presence differs");
    }
    if (want.HasDictionary(name) &&
        want.dictionary(name).values() != got.dictionary(name).values()) {
      return fail("column '" + name + "': dictionary differs");
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = mcsort::ExecOptions::FromEnv().data_dir;
  if (out_dir.empty()) out_dir = ".";
  CsvIngestOptions options;
  bool verify = false;
  std::string types_arg;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--delim" && i + 1 < argc) {
      options.delimiter = argv[++i][0];
    } else if (arg == "--tsv") {
      options.delimiter = '\t';
    } else if (arg == "--no-header") {
      options.has_header = false;
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    } else if (arg == "--types" && i + 1 < argc) {
      types_arg = argv[++i];
    } else if (arg == "--verify") {
      verify = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return Usage(argv[0]);
  const std::string& csv_path = positional[0];
  const std::string& table_name = positional[1];
  if (!types_arg.empty() && !ParseTypes(types_arg, &options.schema)) {
    std::fprintf(stderr, "mcsort_ingest: bad --types (want int|decimal|"
                         "string|auto, comma separated)\n");
    return 2;
  }

  Table table;
  CsvIngestStats stats;
  IoStatus st = IngestCsv(csv_path, options, &table, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "mcsort_ingest: ingest failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("ingested %llu rows x %d columns in %.3f s (%.2f M rows/s)\n",
              static_cast<unsigned long long>(stats.rows), stats.columns,
              stats.seconds,
              stats.seconds > 0 ? stats.rows / stats.seconds / 1e6 : 0.0);

  const std::string snapshot_dir = out_dir + "/" + table_name;
  st = SaveTableSnapshot(table, snapshot_dir);
  if (!st.ok()) {
    std::fprintf(stderr, "mcsort_ingest: save failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("snapshot written to %s\n", snapshot_dir.c_str());

  if (verify) {
    for (const SnapshotLoadMode mode :
         {SnapshotLoadMode::kBuffered, SnapshotLoadMode::kMmap}) {
      const char* mode_name =
          mode == SnapshotLoadMode::kBuffered ? "buffered" : "mmap";
      SnapshotLoadOptions load;
      load.mode = mode;
      Table loaded;
      st = LoadTableSnapshot(snapshot_dir, load, &loaded);
      if (!st.ok()) {
        std::fprintf(stderr, "mcsort_ingest: verify(%s) load failed: %s\n",
                     mode_name, st.ToString().c_str());
        return 1;
      }
      if (!TablesIdentical(table, loaded, mode_name)) return 1;
      std::printf("verify(%s): %llu rows round-tripped bit-identically\n",
                  mode_name,
                  static_cast<unsigned long long>(loaded.row_count()));
    }
  }
  return 0;
}

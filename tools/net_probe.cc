// net_probe — the protocol conformance checker CI runs against a live
// mcsort_server (scripts/net_smoke.sh): handshake, ping, schema, metrics,
// a real GROUP BY query, then the full malformed-frame fuzz corpus — each
// case on a fresh connection, each expected to produce the exact typed
// ERROR from src/mcsort/net/fuzz_corpus.h — and finally one more good
// query proving the server survived all of it. Exits nonzero naming the
// first failing check.
//
// Environment: MCSORT_HOST / MCSORT_PORT select the server (port is
// required), MCSORT_CONNECT_RETRIES (default 50 x 100ms) tolerates a
// server still starting up. MCSORT_PROBE_TABLE targets the queries at a
// named catalog table instead of the server default (the ingest smoke
// test points this at a table mcsort_ingest wrote), and
// MCSORT_PROBE_SAVE_LOAD=1 additionally exercises the SAVE_TABLE /
// LOAD_TABLE opcodes (requires the server to have MCSORT_DATA_DIR set).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "mcsort/common/env.h"
#include "mcsort/common/options.h"
#include "mcsort/net/client.h"
#include "mcsort/net/fuzz_corpus.h"

namespace mcsort {
namespace net {
namespace {

int g_failures = 0;

void Fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  ++g_failures;
}

void Check(bool ok, const std::string& what) {
  if (!ok) Fail(what);
}

// Raw blocking connection for the fuzz cases (the client library refuses
// to send malformed bytes, which is rather the point of it).
class RawConn {
 public:
  RawConn(const std::string& host, uint16_t port, double recv_timeout) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(recv_timeout);
    tv.tv_usec = static_cast<suseconds_t>(
        (recv_timeout - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }
  bool Send(const std::string& bytes) { return SendAll(fd_, bytes); }

  // Next frame within the receive timeout; false on timeout/EOF/bad frame.
  bool Recv(Frame* frame) {
    ErrorCode error;
    bool fatal;
    return RecvFrame(fd_, &assembler_, frame, &error, &fatal) ==
           FrameAssembler::Next::kFrame;
  }

  // True when the peer closes (EOF) within the receive timeout.
  bool WaitForClose() {
    std::string buf;
    while (RecvSome(fd_, &buf)) {
      if (buf.size() > 1 << 20) return false;  // server babbling, not closing
    }
    // RecvSome returns false on both EOF and timeout; distinguish via a
    // zero-byte read: EOF reads 0, timeout errors EAGAIN.
    char byte;
    const ssize_t n = ::read(fd_, &byte, 1);
    return n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK);
  }

  bool Handshake() {
    HelloRequest hello;
    hello.client_name = "net_probe";
    if (!Send(SealFrame(FrameType::kHello, 0, 1, EncodeHello(hello)))) {
      return false;
    }
    Frame frame;
    return Recv(&frame) && frame.type() == FrameType::kHelloAck;
  }

 private:
  int fd_ = -1;
  FrameAssembler assembler_;
};

bool RunFuzzCase(const std::string& host, uint16_t port,
                 const FuzzCase& fuzz) {
  RawConn conn(host, port, /*recv_timeout=*/2.0);
  if (!conn.ok()) {
    Fail(std::string(fuzz.name) + ": connect failed");
    return false;
  }
  if (fuzz.hello_first && !conn.Handshake()) {
    Fail(std::string(fuzz.name) + ": handshake failed");
    return false;
  }
  if (!conn.Send(fuzz.bytes)) {
    Fail(std::string(fuzz.name) + ": send failed");
    return false;
  }

  Frame frame;
  switch (fuzz.expect) {
    case FuzzExpect::kError:
    case FuzzExpect::kErrorClose: {
      if (!conn.Recv(&frame) || frame.type() != FrameType::kError) {
        Fail(std::string(fuzz.name) + ": expected an ERROR frame");
        return false;
      }
      ErrorInfo info;
      if (!DecodeError(frame.payload, &info) || info.code != fuzz.code) {
        Fail(std::string(fuzz.name) + ": expected code " +
             ErrorCodeName(fuzz.code) + ", got " + ErrorCodeName(info.code));
        return false;
      }
      if (fuzz.expect == FuzzExpect::kErrorClose && !conn.WaitForClose()) {
        Fail(std::string(fuzz.name) + ": expected the server to close");
        return false;
      }
      return true;
    }
    case FuzzExpect::kNoReply: {
      // Any frame within the receive-timeout window is a failure; a
      // timeout (or the server closing) is the expected silence.
      if (conn.Recv(&frame)) {
        Fail(std::string(fuzz.name) + ": expected silence, got a frame");
        return false;
      }
      return true;
    }
  }
  return true;
}

}  // namespace
}  // namespace net
}  // namespace mcsort

int main() {
  using namespace mcsort;
  using namespace mcsort::net;

  const mcsort::ServerOptions server_env = mcsort::ServerOptions::FromEnv();
  const std::string host = server_env.host;
  const uint16_t port = server_env.port;
  if (port == 0) {
    std::fprintf(stderr, "net_probe: set MCSORT_PORT to the server port\n");
    return 2;
  }

  // Connect with retries — the server may still be binding.
  ClientOptions client_options;
  client_options.host = host;
  client_options.port = port;
  client_options.io_timeout_seconds = 10;
  client_options.client_name = "net_probe";
  McsortClient client(client_options);
  const int retries =
      static_cast<int>(EnvU64("MCSORT_CONNECT_RETRIES", 50));
  std::string error;
  bool connected = false;
  for (int i = 0; i < retries; ++i) {
    if (client.Connect(&error)) {
      connected = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!connected) {
    std::fprintf(stderr, "net_probe: cannot connect to %s:%u: %s\n",
                 host.c_str(), port, error.c_str());
    return 2;
  }
  std::printf("connected: server=%s default_table=%s\n",
              client.hello().server_name.c_str(),
              client.hello().default_table.c_str());

  // --- Round trips over the client library --------------------------------
  double rtt = 0;
  Check(client.Ping(&rtt), "ping round trip");
  std::printf("ping: %.3f ms\n", rtt * 1e3);

  SchemaReply schema;
  Check(client.GetSchema(&schema) && !schema.tables.empty(),
        "schema reply with at least one table");
  if (!schema.tables.empty()) {
    const TableSchema& t = schema.tables.front();
    std::printf("schema: table %s, %llu rows, %zu columns\n", t.name.c_str(),
                static_cast<unsigned long long>(t.row_count),
                t.columns.size());
    Check(t.columns.size() >= 4, "demo table has >= 4 columns");
  }

  const std::string probe_table = EnvStr("MCSORT_PROBE_TABLE", "");
  QueryCallOptions call;
  call.table = probe_table;
  const QuerySpec good = QuerySpecBuilder("probe")
                             .Filter("c", CompareOp::kLess, 60000)
                             .GroupBy({"a", "b"})
                             .Sum("m")
                             .Count()
                             .Build();
  RemoteResult result = client.Query(good, call);
  Check(result.ok(), "good query executes (" + result.error_detail + ")");
  Check(result.summary.num_groups > 0, "good query produced groups");
  Check(result.aggregate_values.size() == 2,
        "good query returned both aggregates");
  std::printf("query: %llu rows -> %llu groups in %.3f ms\n",
              static_cast<unsigned long long>(result.summary.input_rows),
              static_cast<unsigned long long>(result.summary.num_groups),
              (result.summary.mcs_seconds + result.summary.post_seconds +
               result.summary.scan_seconds +
               result.summary.materialize_seconds +
               result.summary.plan_seconds) *
                  1e3);

  std::string metrics;
  Check(client.GetMetrics(&metrics) &&
            metrics.find("net.queries") != std::string::npos,
        "metrics dump includes net.* counters");

  // --- SAVE_TABLE / LOAD_TABLE opcodes ------------------------------------
  // A bogus load must come back as a typed failure reply, never a hang or
  // a dropped connection — with or without a catalog attached.
  TableOpResult bogus = client.LoadTable("__no_such_table__");
  Check(bogus.transport_ok, "LOAD_TABLE of a bogus name gets a reply");
  Check(!bogus.ok(), "LOAD_TABLE of a bogus name reports failure");
  if (EnvU64("MCSORT_PROBE_SAVE_LOAD", 0) != 0) {
    TableOpResult saved = client.SaveTable(probe_table);
    Check(saved.ok(), "SAVE_TABLE succeeds (" + saved.error_detail +
                          saved.reply.detail + ")");
    const std::string load_name =
        probe_table.empty() ? client.hello().default_table : probe_table;
    TableOpResult loaded = client.LoadTable(load_name);
    Check(loaded.ok(), "LOAD_TABLE succeeds (" + loaded.error_detail +
                           loaded.reply.detail + ")");
    Check(loaded.reply.rows > 0, "LOAD_TABLE reports the row count");
    RemoteResult reloaded = client.Query(good, call);
    Check(reloaded.ok() &&
              reloaded.summary.num_groups == result.summary.num_groups,
          "query against the reloaded table matches");
    std::printf("save/load: table '%s' saved and reloaded, %llu rows\n",
                load_name.c_str(),
                static_cast<unsigned long long>(loaded.reply.rows));
  }

  // --- The malformed-frame corpus -----------------------------------------
  const std::vector<FuzzCase> corpus = BuildFuzzCorpus();
  int passed = 0;
  for (const FuzzCase& fuzz : corpus) {
    if (RunFuzzCase(host, port, fuzz)) ++passed;
  }
  std::printf("fuzz corpus: %d/%zu cases behaved\n", passed, corpus.size());

  // --- The server must still be fully functional --------------------------
  RemoteResult after = client.Query(good, call);
  Check(after.ok(), "server still serves after the fuzz corpus");
  Check(after.summary.num_groups == result.summary.num_groups,
        "post-fuzz query result matches pre-fuzz");

  if (g_failures > 0) {
    std::fprintf(stderr, "net_probe: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("net_probe: all checks passed\n");
  return 0;
}

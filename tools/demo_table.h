// The canonical demo table served by tools/mcsort_server and assumed by
// the fuzz corpus and tools/net_probe: four columns "a" (20 values),
// "b" (500), "c" (100000), "m" (1000) — the same shape the service bench
// replays, so remote demo queries exercise realistic group counts.
#ifndef MCSORT_TOOLS_DEMO_TABLE_H_
#define MCSORT_TOOLS_DEMO_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "mcsort/common/random.h"
#include "mcsort/storage/table.h"

namespace mcsort {

inline Table MakeDemoTable(size_t n, uint64_t seed = 4242) {
  Rng rng(seed);
  Table table;
  EncodedColumn a(6, n), b(11, n), c(19, n), m(10, n);
  for (size_t r = 0; r < n; ++r) {
    a.Set(r, rng.NextBounded(20));
    b.Set(r, rng.NextBounded(500));
    c.Set(r, rng.NextBounded(100000));
    m.Set(r, rng.NextBounded(1000));
  }
  table.AddColumn("a", std::move(a));
  table.AddColumn("b", std::move(b));
  table.AddColumn("c", std::move(c));
  table.AddColumn("m", std::move(m));
  return table;
}

}  // namespace mcsort

#endif  // MCSORT_TOOLS_DEMO_TABLE_H_

// Remote query: the network front-end end to end in one process.
//
// Boots a McsortServer on a loopback ephemeral port over a QueryService
// holding a small sales table, then drives it with the blocking
// McsortClient exactly as an out-of-process client would: HELLO
// handshake, SCHEMA introspection, a GROUP BY aggregate, an ORDER BY
// with a server-side deadline, a PING round-trip, and a METRICS scrape.
// Every byte crosses a real TCP socket through the length-prefixed
// binary protocol (wire.h) — nothing is short-circuited in-process.
//
// Set MCSORT_HOST / MCSORT_PORT to point the client at an already
// running `mcsort_server` instead of the embedded one.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_remote_query
#include <cstdio>
#include <cstdlib>
#include <string>

#include "mcsort/common/env.h"
#include "mcsort/common/random.h"
#include "mcsort/net/client.h"
#include "mcsort/net/server.h"
#include "mcsort/service/query_service.h"

using namespace mcsort;
using namespace mcsort::net;

namespace {

// A toy sales table: region (4 values), quarter (4), units (0..99).
Table SalesTable(size_t n) {
  Rng rng(7);
  Table table;
  EncodedColumn region(2, n), quarter(2, n), units(7, n);
  for (size_t r = 0; r < n; ++r) {
    region.Set(r, rng.NextBounded(4));
    quarter.Set(r, rng.NextBounded(4));
    units.Set(r, rng.NextBounded(100));
  }
  table.AddColumn("region", std::move(region));
  table.AddColumn("quarter", std::move(quarter));
  table.AddColumn("units", std::move(units));
  return table;
}

}  // namespace

int main() {
  const size_t n = static_cast<size_t>(EnvU64("MCSORT_N", 100000));

  // 1. Server side: a QueryService with one registered table, fronted by
  //    the epoll server. Port 0 asks the kernel for an ephemeral port.
  const Table table = SalesTable(n);
  ServiceOptions service_options;
  service_options.threads = 2;
  QueryService service(service_options);
  service.RegisterTable("sales", table);

  McsortServer server(&service, ServerOptions{});
  const std::string env_host = EnvStr("MCSORT_HOST", "");
  const uint64_t env_port = EnvU64("MCSORT_PORT", 0);
  if (env_host.empty()) {
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("embedded server on 127.0.0.1:%u (%zu rows)\n",
                server.port(), n);
  }

  // 2. Client side: connect and shake hands. Connect() exchanges HELLO
  //    frames and negotiates the protocol version.
  ClientOptions client_options;
  client_options.host = env_host.empty() ? "127.0.0.1" : env_host;
  client_options.port =
      env_port > 0 ? static_cast<uint16_t>(env_port) : server.port();
  client_options.client_name = "example_remote_query";
  McsortClient client(client_options);
  std::string error;
  if (!client.Connect(&error)) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("connected: server=%s default_table=%s\n",
              client.hello().server_name.c_str(),
              client.hello().default_table.c_str());

  // 3. Introspect the schema before writing queries against it.
  SchemaReply schema;
  if (!client.GetSchema(&schema)) {
    std::fprintf(stderr, "SCHEMA failed\n");
    return 1;
  }
  for (const TableSchema& t : schema.tables) {
    std::printf("table %-8s %8llu rows:", t.name.c_str(),
                static_cast<unsigned long long>(t.row_count));
    for (const ColumnInfo& c : t.columns) {
      std::printf(" %s(%d-bit)", c.name.c_str(), c.width);
    }
    std::printf("\n");
  }

  // 4. A GROUP BY aggregate. The spec is the same QuerySpecBuilder used
  //    in-process; the client encodes it into a QUERY frame and streams
  //    the chunked RESULT back.
  const QuerySpec per_cell = QuerySpecBuilder()
                                 .GroupBy({"region", "quarter"})
                                 .Sum("units")
                                 .Count()
                                 .Build();
  RemoteResult result = client.Query(per_cell);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.error_detail.c_str());
    return 1;
  }
  // aggregate_values[k][g] is the k-th aggregate (here: 0=SUM, 1=COUNT)
  // evaluated on group g, groups in sorted (region, quarter) order.
  const std::vector<int64_t>& sums = result.aggregate_values[0];
  const std::vector<int64_t>& counts = result.aggregate_values[1];
  std::printf("\nSELECT region, quarter, SUM(units), COUNT(*) "
              "GROUP BY region, quarter\n-> %zu groups, first rows:\n",
              sums.size());
  for (size_t g = 0; g < sums.size() && g < 6; ++g) {
    std::printf("  group %zu: sum=%lld count=%lld\n", g,
                static_cast<long long>(sums[g]),
                static_cast<long long>(counts[g]));
  }

  // 5. An ORDER BY with a deadline. On this small table it finishes well
  //    inside the budget; against a huge table the server would stop the
  //    sort at the deadline and return a typed DEADLINE_EXCEEDED error
  //    instead of holding the connection hostage.
  QueryCallOptions deadline_call;
  deadline_call.deadline_seconds = 5.0;
  result = client.Query(QuerySpecBuilder()
                            .OrderBy("region")
                            .OrderBy("units", SortOrder::kDescending)
                            .Build(),
                        deadline_call);
  std::printf("\nORDER BY region, units DESC (5s deadline): %s, %zu oids\n",
              result.ok() ? "ok" : result.error_detail.c_str(),
              result.result_oids.size());

  // 6. Liveness and observability.
  double rtt = 0;
  if (client.Ping(&rtt)) std::printf("\nping: %.3f ms\n", rtt * 1e3);
  std::string metrics;
  if (client.GetMetrics(&metrics)) {
    const size_t pos = metrics.find("net.queries ");
    std::printf("server metrics excerpt: %s\n",
                pos == std::string::npos
                    ? "(no net.queries counter?)"
                    : metrics.substr(pos, metrics.find('\n', pos) - pos)
                          .c_str());
  }

  client.Close();
  if (env_host.empty()) server.Shutdown();
  return 0;
}

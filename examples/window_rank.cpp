// SQL:2003 window function over partitions — the paper's third trigger of
// multi-column sorting — on the Airline survey workload (paper Table 5,
// Q2):
//
//   SELECT OriginAirportID, DistanceGroup, Passengers,
//          RANK() OVER (PARTITION BY OriginAirportID, DistanceGroup
//                       ORDER BY Passengers)
//   FROM Ticket WHERE ItinGeoType = 1
#include <cstdio>

#include "mcsort/engine/query.h"
#include "mcsort/workloads/workload.h"

using namespace mcsort;

int main() {
  WorkloadOptions wopts;
  wopts.scale = 0.05;
  const Workload airline = MakeAirline(wopts);
  const WorkloadQuery& q2 = airline.query("Q2");
  const Table& ticket = airline.table_for(q2);

  std::printf("Airline Q2 over %zu Ticket rows\n", ticket.row_count());

  ExecutorOptions options;  // massaging on
  QueryExecutor executor(ticket, options);
  const QueryResult result =
      executor.Execute(q2.spec, ExecContext::Default()).result;

  std::printf("%zu rows pass the filter; %zu partitions\n",
              result.filtered_rows, result.num_groups);
  std::printf("plan: %s (search %.3fms, multi-column sort %.2fms)\n\n",
              result.plan.ToString().c_str(), result.plan_seconds * 1e3,
              result.mcs_seconds * 1e3);

  std::printf("%-10s %-14s %-11s %s\n", "airport", "dist_group",
              "passengers", "rank");
  // Show the first few rows of the first three partitions.
  size_t shown = 0;
  Code last_airport = ~Code{0};
  int partitions_shown = 0;
  for (size_t r = 0; r < result.result_oids.size() && shown < 12; ++r) {
    const Oid oid = result.result_oids[r];
    const Code airport = ticket.column("OriginAirportID").Get(oid);
    if (airport != last_airport) {
      if (++partitions_shown > 3) break;
      last_airport = airport;
    }
    std::printf("%-10llu %-14llu %-11llu %u\n",
                static_cast<unsigned long long>(airport),
                static_cast<unsigned long long>(
                    ticket.column("DistanceGroup").Get(oid)),
                static_cast<unsigned long long>(
                    ticket.column("Passengers").Get(oid)),
                result.ranks[r]);
    ++shown;
  }
  return 0;
}

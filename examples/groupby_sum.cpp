// GROUP BY + aggregation through the declarative query API, with the plan
// chosen automatically by ROGA over the calibrated cost model — the
// paper's Fig. 2 pipeline end-to-end on a realistic sales table.
//
//   SELECT region, quarter, SUM(amount), COUNT(*)
//   FROM sales WHERE amount >= 100
//   GROUP BY region, quarter
//   ORDER BY SUM(amount) DESC
#include <cstdio>
#include <string>
#include <vector>

#include "mcsort/common/random.h"
#include "mcsort/engine/query.h"
#include "mcsort/storage/dictionary.h"

using namespace mcsort;

int main() {
  // Build a 500k-row sales table.
  const size_t n = 500000;
  Rng rng(2024);
  const std::vector<std::string> region_names = {
      "APAC", "EMEA", "LATAM", "NA", "ANZ", "MEA", "SEA", "IND"};
  std::vector<std::string> regions(n);
  std::vector<int64_t> quarters(n), amounts(n);
  for (size_t i = 0; i < n; ++i) {
    regions[i] = region_names[rng.NextBounded(region_names.size())];
    quarters[i] = static_cast<int64_t>(rng.NextBounded(8));  // 8 quarters
    amounts[i] = static_cast<int64_t>(rng.NextBounded(10000));
  }

  Table table;
  table.AddStringColumn("region", EncodeStrings(regions));
  table.AddDomainColumn("quarter", EncodeDomain(quarters));
  table.AddDomainColumn("amount", EncodeDomain(amounts));

  // Declarative query; the filter literal is an encoded value
  // (domain-encoded amount: code = native - base).
  QuerySpec spec;
  spec.filters = {{"amount", CompareOp::kGreaterEq,
                   static_cast<Code>(100 - table.domain_base("amount"))}};
  spec.group_by = {"region", "quarter"};
  spec.aggregates = {{AggOp::kSum, "amount"}, {AggOp::kCount, ""}};
  spec.result_order = {{"agg:0", SortOrder::kDescending}};

  ExecutorOptions options;  // code massaging on, ROGA with rho = 0.1%
  QueryExecutor executor(table, options);
  const QueryResult result =
      executor.Execute(spec, ExecContext::Default()).result;

  std::printf("filtered %zu of %zu rows into %zu groups\n",
              result.filtered_rows, result.input_rows, result.num_groups);
  std::printf("plan chosen by ROGA: %s\n", result.plan.ToString().c_str());
  std::printf("phases: scan %.2fms | materialize %.2fms | plan %.2fms | "
              "multi-column sort %.2fms | post %.2fms\n\n",
              result.scan_seconds * 1e3, result.materialize_seconds * 1e3,
              result.plan_seconds * 1e3, result.mcs_seconds * 1e3,
              result.post_seconds * 1e3);

  std::printf("%-8s %-8s %14s %10s\n", "region", "quarter", "SUM(amount)",
              "COUNT");
  const auto& groups = result.sort_profile.groups;
  for (size_t i = 0; i < std::min<size_t>(10, result.num_groups); ++i) {
    const uint32_t g = result.result_group_order[i];
    const Oid oid = result.result_oids[groups.begin(g)];
    std::printf("%-8s %-8lld %14lld %10lld\n",
                table.dictionary("region")
                    .Decode(table.column("region").Get(oid))
                    .c_str(),
                static_cast<long long>(
                    table.domain_base("quarter") +
                    static_cast<int64_t>(table.column("quarter").Get(oid))),
                static_cast<long long>(result.aggregate_values[0][g]),
                static_cast<long long>(result.aggregate_values[1][g]));
  }
  return 0;
}

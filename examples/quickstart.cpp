// Quickstart: sort a small table on two columns with code massaging.
//
// Walks the paper's running example (Fig. 2): a GROUP BY on
// (nation_name, ship_date) executed as a multi-column sort, first
// column-at-a-time (the state of the art), then with the two columns
// stitched into one massaged sort key (Fig. 2b) — and shows that the
// resulting order and groups are identical (Lemma 1).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "mcsort/engine/multi_column_sorter.h"
#include "mcsort/massage/plan.h"
#include "mcsort/storage/dictionary.h"

using namespace mcsort;

int main() {
  // 1. Encode native values as order-preserving fixed-width codes.
  //    Strings use a sorted dictionary; dates here are already integers.
  const std::vector<std::string> nations = {"USA", "AUS", "AUS",
                                            "USA", "AUS", "FRA"};
  const std::vector<int64_t> ship_dates = {301, 501, 1201, 301, 501, 415};

  EncodedStringColumn nation = EncodeStrings(nations);
  DenseEncoding date = EncodeDense(ship_dates);
  std::printf("nation_name encoded: %zu distinct values -> %d-bit codes\n",
              nation.dictionary.size(), nation.codes.width());
  std::printf("ship_date   encoded: %zu distinct values -> %d-bit codes\n",
              date.dictionary.size(), date.codes.width());

  // 2. The multi-column sort instance: ORDER BY nation_name, ship_date.
  const std::vector<MassageInput> inputs = {
      {&nation.codes, SortOrder::kAscending},
      {&date.codes, SortOrder::kAscending},
  };

  MultiColumnSorter sorter;

  // 3a. Column-at-a-time (paper Fig. 2a): one round of sorting per column.
  MultiColumnSortResult baseline = sorter.SortColumnAtATime(inputs);

  // 3b. Code massaging (paper Fig. 2b): stitch both columns into a single
  //     sort key and sort once.
  const int total_width = nation.codes.width() + date.codes.width();
  MassagePlan stitched = MassagePlan::WithMinimalBanks({total_width});
  MultiColumnSortResult massaged = sorter.Sort(inputs, stitched);

  // 4. Identical results (Lemma 1): same tuple order, same groups.
  std::printf("\nsorted output (%zu groups either way):\n",
              massaged.groups.count());
  std::printf("%-4s %-8s %-10s %s\n", "row", "nation", "ship_date", "group");
  for (size_t g = 0; g < massaged.groups.count(); ++g) {
    for (uint32_t r = massaged.groups.begin(g); r < massaged.groups.end(g);
         ++r) {
      const Oid oid = massaged.oids[r];
      std::printf("%-4u %-8s %-10lld %zu\n", r,
                  nation.dictionary.Decode(nation.codes.Get(oid)).c_str(),
                  static_cast<long long>(
                      date.dictionary[date.codes.Get(oid)]),
                  g);
    }
  }
  bool same = baseline.groups.bounds == massaged.groups.bounds;
  for (size_t r = 0; same && r < massaged.oids.size(); ++r) {
    // Tuples must match row for row (oids may differ within tied rows).
    const Oid a = baseline.oids[r];
    const Oid b = massaged.oids[r];
    same = nation.codes.Get(a) == nation.codes.Get(b) &&
           date.codes.Get(a) == date.codes.Get(b);
  }
  std::printf("\ncolumn-at-a-time (%zu rounds) and stitched (1 round) agree:"
              " %s\n",
              baseline.rounds.size(), same ? "yes" : "NO (bug!)");
  return same ? 0 : 1;
}

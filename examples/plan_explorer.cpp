// Plan explorer: give it column widths (and optionally a row count /
// distinct counts) and it prints the cost model's view of the plan space —
// the column-at-a-time baseline, the stitch-all plan, the ROGA choice, and
// the RRS choice — like reading Fig. 4a for your own sort instance.
//
//   ./example_plan_explorer 17 33
//   ./example_plan_explorer 12 17 9 --rows=16777216 --distinct=8192
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mcsort/common/bits.h"
#include "mcsort/common/random.h"
#include "mcsort/cost/calibration.h"
#include "mcsort/plan/enumerate.h"
#include "mcsort/plan/roga.h"
#include "mcsort/plan/rrs.h"
#include "mcsort/storage/column.h"

using namespace mcsort;

int main(int argc, char** argv) {
  std::vector<int> widths;
  uint64_t rows = uint64_t{1} << 22;
  uint64_t distinct = uint64_t{1} << 13;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      rows = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--distinct=", 11) == 0) {
      distinct = static_cast<uint64_t>(std::atoll(argv[i] + 11));
    } else {
      widths.push_back(std::atoi(argv[i]));
    }
  }
  if (widths.empty()) widths = {17, 33};  // the paper's Ex3
  for (int w : widths) {
    if (w < 1 || w > 64) {
      std::fprintf(stderr, "column widths must be in [1, 64]\n");
      return 1;
    }
  }

  // Synthesize columns with the requested shape to derive statistics.
  std::vector<EncodedColumn> columns;
  const uint64_t stat_rows = std::min<uint64_t>(rows, 1 << 18);
  Rng rng(99);
  for (int w : widths) {
    EncodedColumn col(w, stat_rows);
    const uint64_t domain = LowBitsMask(w) + 1;
    const uint64_t d = std::min(distinct, domain);
    for (uint64_t i = 0; i < stat_rows; ++i) {
      Code v = rng.NextBounded(d);
      if (d < domain) v *= domain / d;
      col.Set(i, v);
    }
    columns.push_back(std::move(col));
  }
  std::vector<ColumnStats> stats_storage;
  for (const auto& c : columns) stats_storage.push_back(ColumnStats::Build(c));
  SortInstanceStats stats;
  stats.n = rows;
  for (const auto& s : stats_storage) stats.columns.push_back(&s);

  std::printf("instance: %zu columns, W = %d bits, N = %llu rows, ~%llu "
              "distinct/column\n",
              widths.size(), stats.total_width(),
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(distinct));
  std::printf("calibrating the cost model on this machine...\n");
  const CostParams& params = CalibratedParams();
  const CostModel model(params);

  const auto show = [&](const char* label, const MassagePlan& plan) {
    std::printf("%-16s %-40s est %8.2f ms\n", label,
                plan.ToString().c_str(),
                model.EstimateSeconds(plan, stats) * 1e3);
  };

  show("column-at-a-time", MassagePlan::ColumnAtATime(widths));
  if (stats.total_width() <= kMaxBankBits) {
    show("stitch-all", MassagePlan::WithMinimalBanks({stats.total_width()}));
  }

  const SearchResult roga = RogaSearch(model, stats);
  show("ROGA choice", roga.plan);
  std::printf("%-16s searched %zu plans in %.3f ms%s\n", "",
              roga.plans_costed, roga.search_seconds * 1e3,
              roga.timed_out ? " (deadline)" : "");

  RrsOptions rrs_options;
  rrs_options.budget_seconds = std::max(roga.search_seconds, 1e-3);
  const SearchResult rrs = RrsSearch(model, stats, rrs_options);
  show("RRS choice", rrs.plan);

  // For two-column instances, print the Fig. 4a-style shift sweep.
  if (widths.size() == 2) {
    std::printf("\nshift sweep (Fig. 4a view):\n");
    for (int shift = -(widths[0] - 1); shift < widths[1]; ++shift) {
      if (widths[0] + widths[1] > kMaxBankBits &&
          (widths[0] + shift > kMaxBankBits ||
           widths[1] - shift > kMaxBankBits)) {
        continue;
      }
      const MassagePlan plan = ShiftPlan(widths[0], widths[1], shift);
      char label[16];
      std::snprintf(label, sizeof(label), "%s%d", shift >= 0 ? "<<" : ">>",
                    shift >= 0 ? shift : -shift);
      std::printf("  P%-6s %-40s est %8.2f ms\n", label,
                  plan.ToString().c_str(),
                  model.EstimateSeconds(plan, stats) * 1e3);
    }
  }
  return 0;
}

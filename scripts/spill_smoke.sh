#!/usr/bin/env bash
# End-to-end smoke test for the spill (external sort) path: runs the
# external-sort benchmark in --verify mode, which executes a 4-column
# ORDER BY under scratch budgets of 1/2, 1/4, and 1/8 of the in-memory
# plan's estimate and fails unless
#   * every over-budget run actually spilled,
#   * every spilled result is value-identical to the in-memory sort
#     (equal group bounds, same row set per group), and
#   * the spill directory is empty afterwards (zero leaked run files).
#
# The spill directory defaults to tmpfs (/dev/shm) when available so the
# smoke run measures the sort, not the disk; a dedicated-disk run is just
# MCSORT_SPILL_DIR=/path scripts/spill_smoke.sh.
#
# Usage: scripts/spill_smoke.sh [build-dir]   (default: build)
# Env:   MCSORT_N (default 1<<20), MCSORT_REPS (default 1), MCSORT_SPILL_DIR
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
bench_bin="${build_dir}/bench/external_sort"

if [[ ! -x "${bench_bin}" ]]; then
  echo "missing binary: ${bench_bin} (build the 'external_sort' target first)" >&2
  exit 1
fi

if [[ -z "${MCSORT_SPILL_DIR:-}" ]]; then
  if [[ -d /dev/shm && -w /dev/shm ]]; then
    MCSORT_SPILL_DIR="/dev/shm/mcsort-spill-smoke.$$"
  else
    MCSORT_SPILL_DIR="/tmp/mcsort-spill-smoke.$$"
  fi
fi
export MCSORT_SPILL_DIR
export MCSORT_N="${MCSORT_N:-1048576}"
export MCSORT_REPS="${MCSORT_REPS:-1}"

cleanup() {
  rm -rf "${MCSORT_SPILL_DIR}"
}
trap cleanup EXIT

echo "=== spill smoke: n=${MCSORT_N}, dir=${MCSORT_SPILL_DIR} ==="
"${bench_bin}" --verify

# The bench already asserts per-sweep emptiness; double-check nothing at
# all survived the whole run (catches leaks from the prefetch ablation).
leftovers=$(find "${MCSORT_SPILL_DIR}" -type f 2> /dev/null | wc -l)
if [[ "${leftovers}" -ne 0 ]]; then
  echo "FAIL: ${leftovers} run files left in ${MCSORT_SPILL_DIR}" >&2
  exit 1
fi
echo "=== spill smoke passed ==="

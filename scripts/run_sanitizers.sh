#!/usr/bin/env bash
# Builds the repo under ThreadSanitizer and AddressSanitizer+UBSan and runs
# the tests covering the morsel-driven parallel executor under each. The
# race-sensitive code is the fork-join/morsel scheduling in ThreadPool, the
# parallel whole-array sorts, and the chunk-parallel gather / group scan —
# all exercised by the test set below.
#
# Usage: scripts/run_sanitizers.sh [build-dir-prefix]
#   Creates <prefix>-tsan and <prefix>-asan (default prefix: build).
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build}"

# Tests that drive the parallel executor (plus the serial equivalents they
# compare against), the concurrent query-service layer (shared plan cache,
# admission control, multi-session stress), and the network front-end
# (epoll loop vs. executor workers, concurrent histogram recording).
tests=(
  parallel_executor_test
  common_test
  simd_sort_test
  sort_kernels_test
  merge_internal_test
  engine_test
  plan_cache_test
  service_test
  exec_context_test
  metrics_test
  net_test
  io_test
  dist_test
  status_test
  external_sort_test
  delta_test
)

run_flavor() {
  local flavor="$1"
  local sanitize="$2"
  local build_dir="${prefix}-${flavor}"
  echo "=== ${flavor}: configuring ${build_dir} (MCSORT_SANITIZE=${sanitize}) ==="
  cmake -B "${build_dir}" -S . -DMCSORT_SANITIZE="${sanitize}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "${build_dir}" -j "$(nproc)" --target "${tests[@]}"
  local filter
  filter="$(IFS='|'; echo "${tests[*]}")"
  echo "=== ${flavor}: running tests ==="
  (cd "${build_dir}" && ctest --output-on-failure -R "^(${filter})$")
  echo "=== ${flavor}: clean ==="
}

run_flavor tsan thread
run_flavor asan address

echo "All sanitizer runs passed."

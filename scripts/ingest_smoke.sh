#!/usr/bin/env bash
# End-to-end smoke test for the persistence tier: generates a CSV, ingests
# it into a snapshot with mcsort_ingest (whose --verify flag already diffs
# both load paths bit-for-bit in-process), then boots mcsort_server over
# the snapshot directory twice — buffered load first, mmap zero-copy load
# after a full restart — and requires net_probe's catalog-table query to
# return the identical group count from both incarnations. Also exercises
# the SAVE_TABLE/LOAD_TABLE wire opcodes through the probe.
#
# Usage: scripts/ingest_smoke.sh [build-dir]   (default: build)
# Env:   MCSORT_SMOKE_PORT (default 0 = ephemeral; the bound port is read
#        back from the server log), MCSORT_SMOKE_ROWS (default 100k)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
req_port="${MCSORT_SMOKE_PORT:-0}"
rows="${MCSORT_SMOKE_ROWS:-100000}"
drain_timeout=30

ingest_bin="${build_dir}/tools/mcsort_ingest"
server_bin="${build_dir}/tools/mcsort_server"
probe_bin="${build_dir}/tools/net_probe"
for bin in "${ingest_bin}" "${server_bin}" "${probe_bin}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "missing binary: ${bin} (build the mcsort_ingest, mcsort_server," \
         "and net_probe targets first)" >&2
    exit 1
  fi
done

work="$(mktemp -d)"
server_pid=""
cleanup() {
  if [[ -n "${server_pid}" ]] && kill -0 "${server_pid}" 2> /dev/null; then
    kill -9 "${server_pid}" 2> /dev/null || true
  fi
  rm -rf "${work}"
}
trap cleanup EXIT

echo "=== generating ${rows}-row CSV ==="
# Columns match net_probe's canned query (filter c, group a+b, sum m).
awk -v n="${rows}" 'BEGIN {
  srand(7); print "a,b,c,m";
  for (i = 0; i < n; i++) {
    printf "%d,city%02d,%d,%d\n",
      int(rand() * 100), int(rand() * 40), int(rand() * 100000),
      int(rand() * 2000) - 1000;
  }
}' > "${work}/smoke.csv"

echo "=== ingesting into a snapshot (with bit-exact --verify) ==="
"${ingest_bin}" --verify --out "${work}/data" "${work}/smoke.csv" smoke

# Starts the server (ephemeral port by default, read back into ${port})
# and retries ONCE when a fixed-port bind lost a race (EADDRINUSE).
start_server() {
  local mmap="$1"
  local log="$2"
  local attempt
  for attempt in 1 2; do
    MCSORT_PORT="${req_port}" MCSORT_N=4096 MCSORT_DATA_DIR="${work}/data" \
      MCSORT_MMAP="${mmap}" "${server_bin}" > "${log}" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 100); do
      if grep -q "mcsort_server listening" "${log}"; then
        port="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' \
          "${log}" | head -1)"
        return 0
      fi
      if ! kill -0 "${server_pid}" 2> /dev/null; then break; fi
      sleep 0.1
    done
    kill -9 "${server_pid}" 2> /dev/null || true
    server_pid=""
    if ((attempt == 1)) \
        && grep -qiE "address already in use|EADDRINUSE" "${log}"; then
      echo "bind race; retrying once" >&2
      continue
    fi
    echo "server never reported listening:" >&2
    cat "${log}" >&2
    exit 1
  done
}

stop_server() {
  local log="$1"
  kill -TERM "${server_pid}"
  local deadline=$((SECONDS + drain_timeout))
  while kill -0 "${server_pid}" 2> /dev/null; do
    if ((SECONDS >= deadline)); then
      echo "server did not drain within ${drain_timeout}s — killing" >&2
      kill -9 "${server_pid}"
      cat "${log}" >&2
      exit 1
    fi
    sleep 0.2
  done
  wait "${server_pid}" || {
    echo "server exited nonzero after SIGTERM" >&2
    cat "${log}" >&2
    exit 1
  }
  server_pid=""
}

run_probe() {
  local out="$1"
  local save_load="$2"
  MCSORT_PORT="${port}" MCSORT_PROBE_TABLE=smoke \
    MCSORT_PROBE_SAVE_LOAD="${save_load}" "${probe_bin}" | tee "${out}"
}

echo "=== pass 1: server with buffered snapshot load (+ SAVE/LOAD opcodes) ==="
start_server 0 "${work}/server1.log"
run_probe "${work}/probe1.out" 1
stop_server "${work}/server1.log"

echo "=== pass 2: restarted server with mmap zero-copy load ==="
start_server 1 "${work}/server2.log"
run_probe "${work}/probe2.out" 0
stop_server "${work}/server2.log"

echo "=== diffing query results across the restart ==="
# Compare the result shape (row and group counts), not the timing suffix.
q1="$(grep '^query:' "${work}/probe1.out" | sed 's/ in .*//')"
q2="$(grep '^query:' "${work}/probe2.out" | sed 's/ in .*//')"
if [[ "${q1}" != "${q2}" ]]; then
  echo "query results diverged across restart/load-path change:" >&2
  echo "  buffered: ${q1}" >&2
  echo "  mmap:     ${q2}" >&2
  exit 1
fi
echo "both passes returned: ${q1}"

echo "=== ingest smoke test passed ==="

#!/usr/bin/env bash
# End-to-end smoke test for the distributed tier: shards the demo table
# with mcsort_shard, boots three shard servers plus a replica of shard 0
# and one server with the unsharded table, then drives mcsort_coord
# through both query shapes (GROUP BY with stitched aggregates, ORDER BY
# with global oids) requiring bit-identical output vs. the single-node
# server. Finally it SIGKILLs shard 0's primary and re-runs the
# coordinator with the replica listed as failover — the query must still
# succeed and still verify bit-identical. A coordinator that cannot
# survive one dead process fails the script.
#
# Usage: scripts/cluster_smoke.sh [build-dir]   (default: build)
# Env:   MCSORT_SMOKE_BASE_PORT (default 0 = ephemeral — every server
#        binds port 0 and the script reads the kernel-assigned port back
#        from its log, so parallel CI jobs cannot collide),
#        MCSORT_SMOKE_ROWS (default 1<<17)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
base_port="${MCSORT_SMOKE_BASE_PORT:-0}"
rows="${MCSORT_SMOKE_ROWS:-131072}"

shard_bin="${build_dir}/tools/mcsort_shard"
coord_bin="${build_dir}/tools/mcsort_coord"
server_bin="${build_dir}/tools/mcsort_server"
for bin in "${shard_bin}" "${coord_bin}" "${server_bin}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "missing binary: ${bin} (build the 'mcsort_shard', 'mcsort_coord'," \
         "and 'mcsort_server' targets first)" >&2
    exit 1
  fi
done

data_dir="$(mktemp -d)"
declare -a pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill -9 "${pid}" 2> /dev/null || true
  done
  rm -rf "${data_dir}"
}
trap cleanup EXIT

# Port layout: full server, shard 0/1/2 primaries, shard 0 replica.
# base_port=0 (the default) binds ephemeral ports; the actual port is
# parsed back from each server's startup line.
port_of() { # index -> requested port
  if ((base_port == 0)); then echo 0; else echo $((base_port + $1)); fi
}

echo "=== sharding ${rows} demo rows into 3 shards (+ unsharded copy) ==="
"${shard_bin}" --demo "${rows}" --shards 3 --mode hash --table part \
  --full "${data_dir}"

# Starts one server, waits for its listening line, and retries ONCE when
# the bind lost a race (EADDRINUSE) — the flake mode of fixed-port CI runs.
start_server() {
  local dir="$1" port="$2" log="$3" attempt pid
  for attempt in 1 2; do
    MCSORT_DATA_DIR="${dir}" MCSORT_PORT="${port}" \
      "${server_bin}" > "${log}" 2>&1 &
    pid=$!
    disown "${pid}"  # no job-control "Killed" noise when cleanup reaps them
    for _ in $(seq 1 100); do
      if grep -q "mcsort_server listening" "${log}" 2> /dev/null; then
        pids+=("${pid}")
        return 0
      fi
      if ! kill -0 "${pid}" 2> /dev/null; then break; fi
      sleep 0.1
    done
    kill -9 "${pid}" 2> /dev/null || true
    if ((attempt == 1)) \
        && grep -qiE "address already in use|EADDRINUSE" "${log}"; then
      echo "bind race on ${log}; retrying once" >&2
      continue
    fi
    echo "server ${log} never reported listening:" >&2
    cat "${log}" >&2
    exit 1
  done
}

# The port the server in `log` actually bound.
bound_port() {
  sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$1" | head -1
}

echo "=== starting 5 servers (full, 3 shard primaries, shard 0 replica) ==="
start_server "${data_dir}/full" "$(port_of 0)" "${data_dir}/full.log"
start_server "${data_dir}/shard0" "$(port_of 1)" "${data_dir}/s0.log"
start_server "${data_dir}/shard1" "$(port_of 2)" "${data_dir}/s1.log"
start_server "${data_dir}/shard2" "$(port_of 3)" "${data_dir}/s2.log"
start_server "${data_dir}/shard0" "$(port_of 4)" "${data_dir}/s0r.log"

full_port="$(bound_port "${data_dir}/full.log")"
s0_port="$(bound_port "${data_dir}/s0.log")"
s1_port="$(bound_port "${data_dir}/s1.log")"
s2_port="$(bound_port "${data_dir}/s2.log")"
s0_replica_port="$(bound_port "${data_dir}/s0r.log")"

run_coord() {
  "${coord_bin}" --table part \
    --shard "$1" \
    --shard "127.0.0.1:${s1_port}" \
    --shard "127.0.0.1:${s2_port}" \
    --verify "127.0.0.1:${full_port}" \
    "${@:2}"
}

echo "=== distributed GROUP BY vs single-node ==="
run_coord "127.0.0.1:${s0_port}" --metrics \
  | tee "${data_dir}/group.out"
grep -q "bit-identical" "${data_dir}/group.out"

echo "=== distributed ORDER BY vs single-node ==="
run_coord "127.0.0.1:${s0_port}" --query order | tee "${data_dir}/order.out"
grep -q "bit-identical" "${data_dir}/order.out"

echo "=== induced failure: SIGKILL shard 0 primary, expect failover ==="
s0_pid="${pids[1]}"
kill -9 "${s0_pid}"
# The dead primary stays first in the endpoint list; the replica must
# answer after the typed retry, and the result must still verify.
run_coord "127.0.0.1:${s0_port},127.0.0.1:${s0_replica_port}" \
  | tee "${data_dir}/failover.out"
grep -q "bit-identical" "${data_dir}/failover.out"
grep -q "shard 0: endpoint=1" "${data_dir}/failover.out" || {
  echo "shard 0 did not fail over to the replica endpoint" >&2
  exit 1
}

echo "=== cluster smoke test passed ==="

#!/usr/bin/env bash
# End-to-end smoke test for the distributed tier: shards the demo table
# with mcsort_shard, boots three shard servers plus a replica of shard 0
# and one server with the unsharded table, then drives mcsort_coord
# through both query shapes (GROUP BY with stitched aggregates, ORDER BY
# with global oids) requiring bit-identical output vs. the single-node
# server. Finally it SIGKILLs shard 0's primary and re-runs the
# coordinator with the replica listed as failover — the query must still
# succeed and still verify bit-identical. A coordinator that cannot
# survive one dead process fails the script.
#
# Usage: scripts/cluster_smoke.sh [build-dir]   (default: build)
# Env:   MCSORT_SMOKE_BASE_PORT (default 19741),
#        MCSORT_SMOKE_ROWS (default 1<<17)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
base_port="${MCSORT_SMOKE_BASE_PORT:-19741}"
rows="${MCSORT_SMOKE_ROWS:-131072}"

shard_bin="${build_dir}/tools/mcsort_shard"
coord_bin="${build_dir}/tools/mcsort_coord"
server_bin="${build_dir}/tools/mcsort_server"
for bin in "${shard_bin}" "${coord_bin}" "${server_bin}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "missing binary: ${bin} (build the 'mcsort_shard', 'mcsort_coord'," \
         "and 'mcsort_server' targets first)" >&2
    exit 1
  fi
done

data_dir="$(mktemp -d)"
declare -a pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill -9 "${pid}" 2> /dev/null || true
  done
  rm -rf "${data_dir}"
}
trap cleanup EXIT

# Port layout: full server, shard 0/1/2 primaries, shard 0 replica.
full_port=$((base_port))
s0_port=$((base_port + 1))
s1_port=$((base_port + 2))
s2_port=$((base_port + 3))
s0_replica_port=$((base_port + 4))

echo "=== sharding ${rows} demo rows into 3 shards (+ unsharded copy) ==="
"${shard_bin}" --demo "${rows}" --shards 3 --mode hash --table part \
  --full "${data_dir}"

start_server() {
  local dir="$1" port="$2" log="$3"
  MCSORT_DATA_DIR="${dir}" MCSORT_PORT="${port}" \
    "${server_bin}" > "${log}" 2>&1 &
  pids+=($!)
  disown $!  # no job-control "Killed" noise when cleanup reaps them
}

echo "=== starting 5 servers (full, 3 shard primaries, shard 0 replica) ==="
start_server "${data_dir}/full" "${full_port}" "${data_dir}/full.log"
start_server "${data_dir}/shard0" "${s0_port}" "${data_dir}/s0.log"
start_server "${data_dir}/shard1" "${s1_port}" "${data_dir}/s1.log"
start_server "${data_dir}/shard2" "${s2_port}" "${data_dir}/s2.log"
start_server "${data_dir}/shard0" "${s0_replica_port}" "${data_dir}/s0r.log"

for log in full s0 s1 s2 s0r; do
  for _ in $(seq 1 100); do
    if grep -q "mcsort_server listening" "${data_dir}/${log}.log" \
        2> /dev/null; then
      break
    fi
    sleep 0.1
  done
  grep -q "mcsort_server listening" "${data_dir}/${log}.log" || {
    echo "server ${log} never reported listening:" >&2
    cat "${data_dir}/${log}.log" >&2
    exit 1
  }
done

run_coord() {
  "${coord_bin}" --table part \
    --shard "$1" \
    --shard "127.0.0.1:${s1_port}" \
    --shard "127.0.0.1:${s2_port}" \
    --verify "127.0.0.1:${full_port}" \
    "${@:2}"
}

echo "=== distributed GROUP BY vs single-node ==="
run_coord "127.0.0.1:${s0_port}" --metrics \
  | tee "${data_dir}/group.out"
grep -q "bit-identical" "${data_dir}/group.out"

echo "=== distributed ORDER BY vs single-node ==="
run_coord "127.0.0.1:${s0_port}" --query order | tee "${data_dir}/order.out"
grep -q "bit-identical" "${data_dir}/order.out"

echo "=== induced failure: SIGKILL shard 0 primary, expect failover ==="
s0_pid="${pids[1]}"
kill -9 "${s0_pid}"
# The dead primary stays first in the endpoint list; the replica must
# answer after the typed retry, and the result must still verify.
run_coord "127.0.0.1:${s0_port},127.0.0.1:${s0_replica_port}" \
  | tee "${data_dir}/failover.out"
grep -q "bit-identical" "${data_dir}/failover.out"
grep -q "shard 0: endpoint=1" "${data_dir}/failover.out" || {
  echo "shard 0 did not fail over to the replica endpoint" >&2
  exit 1
}

echo "=== cluster smoke test passed ==="

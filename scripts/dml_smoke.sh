#!/usr/bin/env bash
# End-to-end smoke test for the write path: boots mcsort_server with the
# background compactor on an aggressive cadence, drives INSERT/DELETE/
# UPDATE through mcsort_dml with a concurrent writer and reader, waits for
# compaction to fold the delta, then proves durability the hard way —
# SIGKILL (no drain), restart over the same catalog directory, LOAD_TABLE,
# and the post-restart query digest must equal the pre-kill one.
#
# Phase 2 aims the kill at an ACTIVE compaction (100 ms sweep, threshold
# 1, a writer hammering the table). A kill that lands mid-write leaves the
# snapshot writer's `*.tmp` orphan on disk — that is inherent to SIGKILL —
# so the contract under test is two-sided: the tmp+rename commit point
# means the *committed* snapshot is either the old or the new image (never
# a torn one), and the restarted server's attach-time sweep removes every
# orphan. Hence residue is asserted AFTER each restart, and the restarted
# server must load a consistent snapshot.
#
# Usage: scripts/dml_smoke.sh [build-dir]   (default: build)
# Env:   MCSORT_SMOKE_PORT (default 0 = ephemeral; the bound port is read
#        back from the server log), MCSORT_SMOKE_ROWS (default 1<<16)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
req_port="${MCSORT_SMOKE_PORT:-0}"
rows="${MCSORT_SMOKE_ROWS:-65536}"
drain_timeout=30

server_bin="${build_dir}/tools/mcsort_server"
dml_bin="${build_dir}/tools/mcsort_dml"
for bin in "${server_bin}" "${dml_bin}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "missing binary: ${bin} (build the 'mcsort_server' and 'mcsort_dml'" \
         "targets first)" >&2
    exit 1
  fi
done

work="$(mktemp -d)"
server_pid=""
port=""
cleanup() {
  if [[ -n "${server_pid}" ]] && kill -0 "${server_pid}" 2> /dev/null; then
    kill -9 "${server_pid}" 2> /dev/null || true
  fi
  rm -rf "${work}"
}
trap cleanup EXIT

# Starts the server (ephemeral port by default, read back into ${port})
# with the compactor at `interval_ms`, retrying ONCE on a bind race.
start_server() {
  local interval_ms="$1" log="$2" attempt
  for attempt in 1 2; do
    MCSORT_PORT="${req_port}" MCSORT_N="${rows}" \
      MCSORT_DATA_DIR="${work}/data" \
      MCSORT_COMPACT=1 MCSORT_COMPACT_INTERVAL_MS="${interval_ms}" \
      MCSORT_COMPACT_MIN_ROWS=1 \
      "${server_bin}" > "${log}" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 100); do
      if grep -q "mcsort_server listening" "${log}"; then
        port="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' \
          "${log}" | head -1)"
        return 0
      fi
      if ! kill -0 "${server_pid}" 2> /dev/null; then break; fi
      sleep 0.1
    done
    kill -9 "${server_pid}" 2> /dev/null || true
    server_pid=""
    if ((attempt == 1)) \
        && grep -qiE "address already in use|EADDRINUSE" "${log}"; then
      echo "bind race; retrying once" >&2
      continue
    fi
    echo "server never reported listening:" >&2
    cat "${log}" >&2
    exit 1
  done
}

dml() { MCSORT_PORT="${port}" "${dml_bin}" demo "$@"; }

assert_no_tmp_residue() {
  local residue
  residue="$(find "${work}/data" -name '*.tmp' 2> /dev/null || true)"
  if [[ -n "${residue}" ]]; then
    echo "tmp residue left in the catalog after SIGKILL:" >&2
    echo "${residue}" >&2
    exit 1
  fi
}

echo "=== phase 1: DML + concurrent writer/reader + kill/restart ==="
start_server 100 "${work}/server1.log"
echo "server on port ${port}"

# Seed the catalog so LOAD_TABLE has a baseline even if the first
# compaction has not run yet.
dml save

echo "--- applying INSERT / DELETE / UPDATE ---"
dml insert 2000 17
dml delete a eq 3
dml update a eq 5 m 777
dml schema

echo "--- concurrent writer + reader (readers must never block) ---"
dml churn 3 101 &
writer_pid=$!
dml read-loop 3
wait "${writer_pid}"

echo "--- waiting for compaction to fold the delta ---"
dml wait-compact 30
dml schema

digest_before="$(dml digest)"
echo "pre-kill:  ${digest_before}"

echo "--- SIGKILL (no drain) + restart over the same catalog ---"
kill -9 "${server_pid}"
wait "${server_pid}" 2> /dev/null || true
server_pid=""

start_server 100 "${work}/server2.log"
# Attaching the catalog sweeps any `*.tmp` orphan an interrupted snapshot
# writer left behind; after that the directory must be clean.
assert_no_tmp_residue
# The restarted server regenerates the in-memory demo table; LOAD_TABLE
# swaps in the persisted snapshot — the compacted pre-kill image.
dml load
digest_after="$(dml digest)"
echo "post-load: ${digest_after}"
if [[ "${digest_before}" != "${digest_after}" ]]; then
  echo "query digest diverged across SIGKILL + restart + LOAD:" >&2
  echo "  before: ${digest_before}" >&2
  echo "  after:  ${digest_after}" >&2
  exit 1
fi

echo "=== phase 2: SIGKILL aimed at an active compaction ==="
# 50 ms sweeps + threshold 1 + a hammering writer = the kill lands inside
# or between compactions with high probability.
dml churn 2 202 &
writer_pid=$!
sleep 1
kill -9 "${server_pid}"
wait "${server_pid}" 2> /dev/null || true
server_pid=""
wait "${writer_pid}" 2> /dev/null || true  # writer dies with the server

echo "--- restart: orphan sweep + the surviving snapshot must load ---"
start_server 1000 "${work}/server3.log"
assert_no_tmp_residue
dml load
dml schema
dml digest > /dev/null  # queries run against the restored snapshot

echo "--- clean drain still works after all of it ---"
kill -TERM "${server_pid}"
deadline=$((SECONDS + drain_timeout))
while kill -0 "${server_pid}" 2> /dev/null; do
  if ((SECONDS >= deadline)); then
    echo "server did not drain within ${drain_timeout}s — killing" >&2
    kill -9 "${server_pid}"
    exit 1
  fi
  sleep 0.2
done
server_pid=""

echo "=== dml smoke test passed ==="

#!/usr/bin/env bash
# End-to-end smoke test for the network front-end: boots mcsort_server on
# loopback, runs net_probe against it (handshake, schema, a real query,
# metrics, and the malformed-frame fuzz corpus), then sends SIGTERM and
# requires a clean drain within a bounded window. A server that ignores
# the signal or wedges mid-drain is killed hard and the script fails —
# graceful shutdown is part of the contract, not best-effort.
#
# Usage: scripts/net_smoke.sh [build-dir]   (default: build)
# Env:   MCSORT_SMOKE_PORT (default 0 = ephemeral; the bound port is read
#        back from the server log, so parallel CI jobs cannot collide),
#        MCSORT_SMOKE_ROWS (default 1<<18)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
port="${MCSORT_SMOKE_PORT:-0}"
rows="${MCSORT_SMOKE_ROWS:-262144}"
drain_timeout=30

server_bin="${build_dir}/tools/mcsort_server"
probe_bin="${build_dir}/tools/net_probe"
for bin in "${server_bin}" "${probe_bin}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "missing binary: ${bin} (build the 'mcsort_server' and 'net_probe' targets first)" >&2
    exit 1
  fi
done

log="$(mktemp)"
server_pid=""
cleanup() {
  if [[ -n "${server_pid}" ]] && kill -0 "${server_pid}" 2> /dev/null; then
    kill -9 "${server_pid}" 2> /dev/null || true
  fi
  rm -f "${log}"
}
trap cleanup EXIT

echo "=== starting mcsort_server on 127.0.0.1:${port} (${rows} rows) ==="
# Retries ONCE when the bind lost a race (EADDRINUSE) — the flake mode of
# fixed-port CI runs; ephemeral ports (port=0) never hit it.
for attempt in 1 2; do
  MCSORT_PORT="${port}" MCSORT_N="${rows}" "${server_bin}" > "${log}" 2>&1 &
  server_pid=$!
  # Wait for the startup handshake line before probing.
  for _ in $(seq 1 100); do
    if grep -q "mcsort_server listening" "${log}"; then break; fi
    if ! kill -0 "${server_pid}" 2> /dev/null; then break; fi
    sleep 0.1
  done
  if grep -q "mcsort_server listening" "${log}"; then break; fi
  kill -9 "${server_pid}" 2> /dev/null || true
  server_pid=""
  if ((attempt == 1)) \
      && grep -qiE "address already in use|EADDRINUSE" "${log}"; then
    echo "bind race; retrying once" >&2
    continue
  fi
  echo "server never reported listening:" >&2
  cat "${log}" >&2
  exit 1
done
# The port actually bound (differs from ${port} when ephemeral).
port="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "${log}" | head -1)"

echo "=== running net_probe ==="
MCSORT_PORT="${port}" "${probe_bin}"

echo "=== SIGTERM: expecting clean drain within ${drain_timeout}s ==="
kill -TERM "${server_pid}"
deadline=$((SECONDS + drain_timeout))
while kill -0 "${server_pid}" 2> /dev/null; do
  if ((SECONDS >= deadline)); then
    echo "server did not drain within ${drain_timeout}s — killing" >&2
    kill -9 "${server_pid}"
    cat "${log}" >&2
    exit 1
  fi
  sleep 0.2
done
wait "${server_pid}" && server_rc=0 || server_rc=$?
server_pid=""
if ((server_rc != 0)); then
  echo "server exited with status ${server_rc} after SIGTERM" >&2
  cat "${log}" >&2
  exit 1
fi

# The shutdown path prints the final counters; their presence proves the
# drain actually ran rather than the process dying on the signal.
grep -q "net.queries" "${log}" || {
  echo "no final metrics in server log — drain path not taken?" >&2
  cat "${log}" >&2
  exit 1
}

echo "=== net smoke test passed ==="

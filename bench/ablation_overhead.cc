// Ablation: the role of C_overhead (per-SIMD-sort invocation cost) in the
// Fig. 4a "time hill".
//
// The paper's Ex3 sweep shows a hill between P<<1 and P<<15 whose uphill
// is explained by N_sort * C_overhead (each of the thousands of tiny
// second-round sorts pays a fixed function-call/allocation cost in their
// implementation). Our implementation reuses scratch buffers and runs tiny
// groups through insertion sort, so the measured C_overhead is tens of
// cycles instead of thousands — and the measured optimum moves from P<<1
// toward P<<10..15 (see fig04_ex3_sweep and EXPERIMENTS.md).
//
// This ablation demonstrates the mechanism with the cost model: sweeping
// the Ex3 plans under increasing C_overhead reproduces the paper's hill
// and moves the predicted optimum back to P<<1.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/plan/enumerate.h"

int main() {
  using namespace mcsort;
  const uint64_t n = uint64_t{1} << 24;  // the paper's N
  const int w1 = 17, w2 = 33;
  std::printf("Ablation: Fig. 4a hill vs per-sort overhead (cost model, Ex3"
              " shape,\nN = 2^24, 2^13 distinct per column).\n\n");

  // Statistics from a sampled instance (distribution is what matters).
  const uint64_t stat_rows = uint64_t{1} << 18;
  const EncodedColumn c1 = bench::SyntheticColumn(w1, stat_rows, 81);
  const EncodedColumn c2 = bench::SyntheticColumn(w2, stat_rows, 82);
  std::vector<ColumnStats> storage;
  SortInstanceStats stats = bench::StatsFor({&c1, &c2}, &storage);
  stats.n = n;

  const double overheads[] = {50, 500, 5000};
  std::printf("%-8s %-28s", "shift", "plan");
  for (double o : overheads) std::printf("  C_ovh=%-6.0f", o);
  std::printf("   (estimated ms)\n");

  std::vector<std::string> best(3);
  std::vector<double> best_ms(3, 1e300);
  for (int shift = 0; shift <= w2; ++shift) {
    const MassagePlan plan = ShiftPlan(w1, w2, shift);
    char label[16];
    std::snprintf(label, sizeof(label), shift == 0 ? "P0" : "P<<%d", shift);
    std::printf("%-8s %-28s", label, plan.ToString().c_str());
    for (size_t o = 0; o < 3; ++o) {
      CostParams params = CostParams::Default();
      params.bank16.overhead = overheads[o];
      params.bank32.overhead = overheads[o];
      params.bank64.overhead = overheads[o];
      const CostModel model(params);
      const double ms = model.EstimateSeconds(plan, stats) * 1e3;
      std::printf("  %10.1f", ms);
      if (ms < best_ms[o]) {
        best_ms[o] = ms;
        best[o] = label;
      }
    }
    std::printf("\n");
  }
  std::printf("\npredicted optimum: C_ovh=50 -> %s; C_ovh=500 -> %s; "
              "C_ovh=5000 -> %s\n",
              best[0].c_str(), best[1].c_str(), best[2].c_str());
  std::printf("paper's implementation (per-call allocation) behaves like "
              "the large-\noverhead column: optimum P<<1 with a hill to "
              "P<<15; ours like the small-\noverhead column: the hill "
              "flattens and deeper shifts win.\n");
  return 0;
}

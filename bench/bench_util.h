// Shared helpers for the figure/table reproduction benchmarks.
//
// Environment knobs (all optional):
//   MCSORT_N     rows for the synthetic Sec. 3 instances (default 2^21;
//                the paper uses 2^24 — set MCSORT_N=16777216 to match).
//   MCSORT_SF    workload scale factor (default 0.1; paper uses 1/5/10).
//   MCSORT_REPS  repetitions per measurement (default 3, min-of).
//   MCSORT_CALIBRATE  "0" skips calibration and uses default constants.
//   MCSORT_THREADS  max worker count for the parallel-executor benches
//                (default: the detected core count). The dev container
//                exposes one core; set this on multi-core hosts to sweep
//                the morsel-driven executor past the hardware default.
#ifndef MCSORT_BENCH_BENCH_UTIL_H_
#define MCSORT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "mcsort/common/bits.h"
#include "mcsort/common/env.h"
#include "mcsort/common/random.h"
#include "mcsort/common/timer.h"
#include "mcsort/cost/calibration.h"
#include "mcsort/engine/multi_column_sorter.h"
#include "mcsort/engine/query.h"
#include "mcsort/massage/plan.h"
#include "mcsort/storage/column.h"
#include "mcsort/storage/statistics.h"
#include "mcsort/workloads/workload.h"

namespace mcsort {
namespace bench {

using mcsort::EnvU64;  // shared with the service layer (common/env.h)

inline uint64_t EnvRows() { return EnvU64("MCSORT_N", uint64_t{1} << 21); }
inline int EnvReps() { return static_cast<int>(EnvU64("MCSORT_REPS", 3)); }

// Worker-count ceiling for the thread-scaling benches: MCSORT_THREADS if
// set, else the detected core count. The pool itself is real either way —
// on a single-core container the override still exercises every parallel
// code path, just without wall-clock speedup.
inline int EnvThreads(int fallback) {
  return static_cast<int>(
      EnvU64("MCSORT_THREADS", static_cast<uint64_t>(fallback)));
}

// Thread counts to sweep: 1, then doubling up to (and including) `limit`.
inline std::vector<int> ThreadSweep(int limit) {
  std::vector<int> counts = {1};
  for (int t = 2; t < limit; t *= 2) counts.push_back(t);
  if (limit > 1) counts.push_back(limit);
  return counts;
}

// Calibrated (or default) cost-model parameters, computed once.
inline const CostParams& BenchParams() {
  const char* skip = std::getenv("MCSORT_CALIBRATE");
  if (skip != nullptr && std::string(skip) == "0") {
    static const CostParams kDefault = CostParams::Default();
    return kDefault;
  }
  return CalibratedParams();
}

// A synthetic column per the Sec. 3 setup: `distinct` values uniformly
// distributed on [0, 2^width) (2^13 distinct by default, fewer if the
// domain is smaller).
inline EncodedColumn SyntheticColumn(int width, uint64_t n, uint64_t seed,
                                     uint64_t distinct = uint64_t{1} << 13) {
  Rng rng(seed);
  const uint64_t domain = LowBitsMask(width) + 1;
  const uint64_t d = std::min(distinct, domain);
  // Fixed random dictionary spread over the domain.
  std::vector<Code> dict(d);
  for (auto& v : dict) v = rng.NextBounded(domain);
  EncodedColumn col(width, n);
  for (uint64_t i = 0; i < n; ++i) col.Set(i, dict[rng.NextBounded(d)]);
  return col;
}

// Executes a plan on an instance `reps` times and returns the best result
// (wall time) together with the profile of that run.
inline MultiColumnSortResult MeasurePlan(
    const std::vector<MassageInput>& inputs, const MassagePlan& plan,
    int reps, MultiColumnSorter* sorter) {
  MultiColumnSortResult best;
  double best_seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    MultiColumnSortResult result = sorter->Sort(inputs, plan);
    const double seconds = result.total_seconds();
    if (seconds < best_seconds) {
      best_seconds = seconds;
      best = std::move(result);
    }
  }
  return best;
}

// Pretty-prints a horizontal rule and a section header.
inline void Header(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  for (size_t i = 0; i < title.size(); ++i) std::printf("=");
  std::printf("\n");
}

// Formats seconds as milliseconds with sensible precision.
inline std::string Ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds * 1e3);
  return buf;
}

// Builds the sort-instance statistics for explicit columns.
inline SortInstanceStats StatsFor(const std::vector<const EncodedColumn*>& cols,
                                  std::vector<ColumnStats>* storage) {
  storage->clear();
  storage->reserve(cols.size());
  for (const EncodedColumn* c : cols) {
    storage->push_back(ColumnStats::Build(*c));
  }
  SortInstanceStats stats;
  stats.n = cols.empty() ? 0 : cols[0]->size();
  for (const ColumnStats& s : *storage) stats.columns.push_back(&s);
  return stats;
}

// Runs one workload query (min-of-reps) under the given options. Benches
// measure the unconstrained path, so each rep runs under the (never
// stoppable, zero-overhead) default ExecContext.
inline QueryResult MeasureQuery(const Table& table, const QuerySpec& spec,
                                const ExecutorOptions& options, int reps) {
  QueryExecutor executor(table, options);
  QueryResult best;
  double best_seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    QueryResult result =
        executor.Execute(spec, ExecContext::Default()).result;
    if (result.total_seconds() < best_seconds) {
      best_seconds = result.total_seconds();
      best = std::move(result);
    }
  }
  return best;
}

}  // namespace bench
}  // namespace mcsort

#endif  // MCSORT_BENCH_BENCH_UTIL_H_

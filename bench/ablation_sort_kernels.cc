// Ablation: the per-round sort kernels of multi-column sorting — SIMD
// merge-sort (the paper's kernel), LSD radix (Sec. 7 future work), OVC
// merge (offset-value-coded merges skip full key comparisons), and the
// CAFS-style counting sort (O(N + K) when the round's distinct count K is
// small against N).
//
// Three experiments:
//   1. Kernel-per-plan table over the Sec. 3 instances — which kernel wins
//      for which massage plan shape.
//   2. Cardinality sweep: one 16-bit round at K/N from 2^-16 up to ~1,
//      the regime split the cost model's counting term must capture
//      (counting's histogram costs O(2^width); its payoff needs small K
//      AND a cache-resident histogram).
//   3. Unforced routing: ROGA with the full kernel mask over the sweep's
//      statistics — prints the chosen plan with its kernel annotations so
//      the cost-model crossover can be checked against the measured one.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/cost/cost_model.h"
#include "mcsort/plan/roga.h"
#include "mcsort/sort/counting_sort.h"

int main() {
  using namespace mcsort;
  const uint64_t n = bench::EnvRows();
  std::printf("Ablation: per-round sort kernels; N = %llu rows.\n",
              static_cast<unsigned long long>(n));

  struct Case {
    int w1, w2;
    std::vector<std::vector<int>> plans;
  };
  const std::vector<Case> cases = {
      // Ex1-style narrow pair; note 17 bits = 3 radix passes, 16 = 2.
      {10, 17, {{10, 17}, {27}, {11, 16}}},
      // Ex3: the paper's sweep instance.
      {17, 33, {{17, 33}, {18, 32}, {25, 25}, {50}}},
      // Wide pair (Ex4): radix pays many passes on 48-bit rounds.
      {48, 48, {{48, 48}, {32, 32, 32}}},
  };

  MultiColumnSorter merge_sorter(nullptr, SortKernel::kSimdMerge);
  MultiColumnSorter radix_sorter(nullptr, SortKernel::kRadix);
  MultiColumnSorter ovc_sorter(nullptr, SortKernel::kOvcMerge);
  MultiColumnSorter counting_sorter(nullptr, SortKernel::kCounting);

  for (const Case& c : cases) {
    bench::Header(std::to_string(c.w1) + "-bit + " + std::to_string(c.w2) +
                  "-bit columns");
    const EncodedColumn c1 = bench::SyntheticColumn(c.w1, n, 71);
    const EncodedColumn c2 = bench::SyntheticColumn(c.w2, n, 72);
    std::vector<MassageInput> inputs = {{&c1, SortOrder::kAscending},
                                        {&c2, SortOrder::kAscending}};
    std::printf("%-28s %10s %10s %10s %10s\n", "plan", "merge(ms)",
                "radix(ms)", "ovc(ms)", "count(ms)");
    for (const auto& widths : c.plans) {
      const MassagePlan plan = MassagePlan::WithMinimalBanks(widths);
      const double merge_s =
          bench::MeasurePlan(inputs, plan, bench::EnvReps(), &merge_sorter)
              .total_seconds();
      const double radix_s =
          bench::MeasurePlan(inputs, plan, bench::EnvReps(), &radix_sorter)
              .total_seconds();
      const double ovc_s =
          bench::MeasurePlan(inputs, plan, bench::EnvReps(), &ovc_sorter)
              .total_seconds();
      // Counting degrades per round to merge beyond kCountingMaxWidth
      // (the executor's feasibility guard) — flagged with a '*'.
      bool degraded = false;
      for (int w : widths) degraded = degraded || !CountingSortFeasible(w);
      const double counting_s =
          bench::MeasurePlan(inputs, plan, bench::EnvReps(), &counting_sorter)
              .total_seconds();
      std::printf("%-28s %10s %10s %10s %9s%c\n", plan.ToString().c_str(),
                  bench::Ms(merge_s).c_str(), bench::Ms(radix_s).c_str(),
                  bench::Ms(ovc_s).c_str(), bench::Ms(counting_s).c_str(),
                  degraded ? '*' : ' ');
    }
  }
  std::printf("\n(* = counting infeasible on some round; those rounds "
              "degraded to merge)\n");

  // ------------------------------------------------------------------
  // Cardinality sweep: one 16-bit round, K distinct values over N rows.
  // ------------------------------------------------------------------
  bench::Header("cardinality sweep: 16-bit round, K/N from 2^-16 to ~1");
  std::printf("%-10s %8s %10s %10s %10s %12s %14s\n", "K", "K/N",
              "merge(ms)", "ovc(ms)", "count(ms)", "count/merge",
              "ovc full/emit");
  for (int log_k = 0; log_k <= 16; log_k += 2) {
    const uint64_t k = uint64_t{1} << log_k;
    const EncodedColumn col = bench::SyntheticColumn(16, n, 81 + log_k, k);
    std::vector<MassageInput> inputs = {{&col, SortOrder::kAscending}};
    const MassagePlan plan = MassagePlan::WithMinimalBanks({16});
    const double merge_s =
        bench::MeasurePlan(inputs, plan, bench::EnvReps(), &merge_sorter)
            .total_seconds();
    const MultiColumnSortResult ovc_result =
        bench::MeasurePlan(inputs, plan, bench::EnvReps(), &ovc_sorter);
    const double ovc_s = ovc_result.total_seconds();
    const double counting_s =
        bench::MeasurePlan(inputs, plan, bench::EnvReps(), &counting_sorter)
            .total_seconds();
    const uint64_t emitted = ovc_result.rounds[0].ovc_emitted;
    const uint64_t full = ovc_result.rounds[0].ovc_full_compares;
    std::printf("2^%-8d %8.2g %10s %10s %10s %11.2fx %6.1f%%\n", log_k,
                static_cast<double>(k) / static_cast<double>(n),
                bench::Ms(merge_s).c_str(), bench::Ms(ovc_s).c_str(),
                bench::Ms(counting_s).c_str(),
                merge_s > 0 ? counting_s / merge_s : 0,
                emitted > 0 ? 100.0 * static_cast<double>(full) /
                                  static_cast<double>(emitted)
                            : 0.0);
  }

  // ------------------------------------------------------------------
  // Unforced routing: does ROGA pick the counting kernel at low K?
  // ------------------------------------------------------------------
  bench::Header("ROGA kernel routing (no forcing, full kernel mask)");
  const CostModel model(bench::BenchParams());
  std::printf("%-10s %-40s\n", "K", "chosen plan (round:kernel)");
  for (int log_k = 0; log_k <= 16; log_k += 4) {
    const uint64_t k = uint64_t{1} << log_k;
    const EncodedColumn col = bench::SyntheticColumn(16, n, 81 + log_k, k);
    std::vector<ColumnStats> storage;
    const SortInstanceStats stats = bench::StatsFor({&col}, &storage);
    SearchOptions options;
    options.kernels = kRoutableKernels;
    const SearchResult found = RogaSearch(model, stats, options);
    std::printf("2^%-8d %-40s\n", log_k, found.plan.ToString().c_str());
  }

  std::printf("\nexpected shape: counting beats merge while K stays far\n"
              "below N with the 2^16-counter histogram cache-resident;\n"
              "OVC's full-comparison share *falls* as K grows (ties have\n"
              "equal codes and must compare keys; distinct byte prefixes\n"
              "resolve on the code alone); radix wins on narrow rounds\n"
              "ending at digit boundaries; ROGA's routing crossover should\n"
              "track the measured count/merge crossover.\n");
  return 0;
}

// Ablation: SIMD merge-sort vs LSD radix sort as the per-round kernel of
// multi-column sorting (the paper's Sec. 7 future work: "code massaging
// would allow a careful choice of the radix size when radix-sorting
// multiple columns, thereby improving the performance ... with a different
// flavor").
//
// Radix cost scales with ceil(width / radix_bits) *digit passes* while the
// merge-sort cost scales with the bank (16/32/64) and log N — so the two
// kernels favour different massage plans: for radix, a plan that trims a
// round's width below a digit boundary (e.g. 17 -> 16 bits under 8-bit
// digits) drops a whole pass.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace mcsort;
  const uint64_t n = bench::EnvRows();
  std::printf("Ablation: merge-sort vs radix kernel; N = %llu rows.\n\n",
              static_cast<unsigned long long>(n));

  struct Case {
    int w1, w2;
    std::vector<std::vector<int>> plans;
  };
  const std::vector<Case> cases = {
      // Ex1-style narrow pair; note 17 bits = 3 radix passes, 16 = 2.
      {10, 17, {{10, 17}, {27}, {11, 16}}},
      // Ex3: the paper's sweep instance.
      {17, 33, {{17, 33}, {18, 32}, {25, 25}, {50}}},
      // Wide pair (Ex4): radix pays many passes on 48-bit rounds.
      {48, 48, {{48, 48}, {32, 32, 32}}},
  };

  for (const Case& c : cases) {
    bench::Header(std::to_string(c.w1) + "-bit + " + std::to_string(c.w2) +
                  "-bit columns");
    const EncodedColumn c1 = bench::SyntheticColumn(c.w1, n, 71);
    const EncodedColumn c2 = bench::SyntheticColumn(c.w2, n, 72);
    std::vector<MassageInput> inputs = {{&c1, SortOrder::kAscending},
                                        {&c2, SortOrder::kAscending}};
    MultiColumnSorter merge_sorter(nullptr, SortKernel::kSimdMerge);
    MultiColumnSorter radix_sorter(nullptr, SortKernel::kRadix);
    std::printf("%-34s %12s %12s %10s\n", "plan", "merge(ms)", "radix(ms)",
                "radix/merge");
    for (const auto& widths : c.plans) {
      const MassagePlan plan = MassagePlan::WithMinimalBanks(widths);
      const double merge_s =
          bench::MeasurePlan(inputs, plan, bench::EnvReps(), &merge_sorter)
              .total_seconds();
      const double radix_s =
          bench::MeasurePlan(inputs, plan, bench::EnvReps(), &radix_sorter)
              .total_seconds();
      std::printf("%-34s %12s %12s %9.2fx\n", plan.ToString().c_str(),
                  bench::Ms(merge_s).c_str(), bench::Ms(radix_s).c_str(),
                  merge_s > 0 ? radix_s / merge_s : 0);
    }
  }
  std::printf("\nexpected shape: radix wins on narrow rounds (few digit\n"
              "passes) and on plans whose rounds end at digit boundaries;\n"
              "merge-sort wins on wide 64-bit-bank rounds at small-ish N.\n");
  return 0;
}

// Reproduces Figure 4 of the paper ([Ex3] ORDER BY 17-bit, 33-bit):
//   (a) the running time of every single-boundary-shift massage plan from
//       P>>16 (right tail) through P0 to P<<33 (stitch-all), showing the
//       characteristic "time hill" between P<<1 (optimal) and P<<15, and
//   (b) the factors behind it: N_sort, N_group, and the average group
//       size entering the second round, per plan.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/plan/enumerate.h"

int main() {
  using namespace mcsort;
  const uint64_t n = bench::EnvRows();
  const int w1 = 17;
  const int w2 = 33;
  std::printf("Figure 4 reproduction [Ex3]: ORDER BY 17-bit, 33-bit; N = %llu"
              " rows,\n2^13 distinct per column (paper setup).\n",
              static_cast<unsigned long long>(n));

  const EncodedColumn c1 = bench::SyntheticColumn(w1, n, 31);
  const EncodedColumn c2 = bench::SyntheticColumn(w2, n, 32);
  std::vector<MassageInput> inputs = {{&c1, SortOrder::kAscending},
                                      {&c2, SortOrder::kAscending}};
  MultiColumnSorter sorter;

  bench::Header("Fig. 4a (time) + 4b (second-round factors)");
  std::printf("%-10s %-26s %9s %8s %8s | %10s %10s %10s\n", "shift", "plan",
              "total", "T1_sort", "T2_sort", "N_sort", "N_group",
              "avg_group");

  double best_total = 1e300;
  std::string best_label;
  for (int shift = -w1; shift <= w2; ++shift) {
    // The two extremes describe the same stitch-all plan; print P>>17 once.
    if (shift == -w1 && w1 + w2 <= kMaxBankBits) continue;
    const MassagePlan plan = ShiftPlan(w1, w2, shift);
    const MultiColumnSortResult result =
        bench::MeasurePlan(inputs, plan, bench::EnvReps(), &sorter);
    const double total = result.total_seconds();
    char label[24];
    if (shift == 0) {
      std::snprintf(label, sizeof(label), "P0");
    } else if (shift > 0) {
      std::snprintf(label, sizeof(label), "P<<%d", shift);
    } else {
      std::snprintf(label, sizeof(label), "P>>%d", -shift);
    }
    const bool two_rounds = result.rounds.size() == 2;
    const size_t n_sort = two_rounds ? result.rounds[1].num_sorts : 0;
    const size_t n_group = result.rounds[0].num_groups;
    const double avg_group =
        n_sort > 0
            ? static_cast<double>(n) / static_cast<double>(n_group)
            : 0.0;
    std::printf("%-10s %-26s %9s %8s %8s | %10zu %10zu %10.2f\n", label,
                plan.ToString().c_str(), bench::Ms(total).c_str(),
                bench::Ms(result.rounds[0].sort_seconds).c_str(),
                two_rounds ? bench::Ms(result.rounds[1].sort_seconds).c_str()
                           : "-",
                n_sort, n_group, avg_group);
    if (total < best_total) {
      best_total = total;
      best_label = label;
    }
  }
  std::printf("\nbest plan: %s (%.2f ms). paper: P<<1 = {18/[32], 32/[32]} is"
              " optimal,\nwith a time hill peaking near P<<10 and the"
              " stitch-all plans slightly\ninferior to P0.\n",
              best_label.c_str(), best_total * 1e3);
  return 0;
}

// Reproduces Figure 8 of the paper: the speedup of the multi-column
// sorting phase when code massaging is enabled (best ROGA plan) versus
// disabled (column-at-a-time), for the eligible TPC-H, TPC-H skew,
// TPC-DS, and Airline ("real") queries.
//
// The paper reports speedups from 1.8X (real Q4) up to 5.5X (TPC-H Q2).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace mcsort {
namespace {

void RunWorkload(const Workload& workload, const CostParams& params) {
  bench::Header(workload.name);
  ExecutorOptions off;
  off.use_massage = false;
  ExecutorOptions on;
  on.use_massage = true;
  on.params = params;

  std::printf("%-5s %12s %12s %9s   %-28s %s\n", "query", "mcs off(ms)",
              "mcs on(ms)", "speedup", "chosen plan", "search(ms)");
  for (const WorkloadQuery& q : workload.queries) {
    const Table& table = workload.table_for(q);
    const QueryResult r_off =
        bench::MeasureQuery(table, q.spec, off, bench::EnvReps());
    const QueryResult r_on =
        bench::MeasureQuery(table, q.spec, on, bench::EnvReps());
    const double speedup =
        r_on.mcs_seconds > 0 ? r_off.mcs_seconds / r_on.mcs_seconds : 0;
    std::printf("%-5s %12s %12s %8.2fX   %-28s %s\n", q.id.c_str(),
                bench::Ms(r_off.mcs_seconds).c_str(),
                bench::Ms(r_on.mcs_seconds).c_str(), speedup,
                r_on.plan.ToString().c_str(),
                bench::Ms(r_on.plan_seconds).c_str());
  }
}

}  // namespace
}  // namespace mcsort

int main() {
  using namespace mcsort;
  WorkloadOptions wopts;
  wopts.scale = ScaleFromEnv();
  std::printf("Figure 8 reproduction: multi-column sorting speedup with code\n"
              "massaging (SF %.3g). Paper: 1.8X (real Q4) to 5.5X (TPC-H "
              "Q2).\n",
              wopts.scale);
  const CostParams& params = bench::BenchParams();

  RunWorkload(MakeTpch(wopts), params);
  WorkloadOptions skew = wopts;
  skew.skew = true;
  RunWorkload(MakeTpch(skew), params);
  RunWorkload(MakeTpcds(wopts), params);
  RunWorkload(MakeAirline(wopts), params);
  return 0;
}

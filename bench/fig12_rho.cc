// Reproduces Figure 12 / Appendix C of the paper: sensitivity of ROGA to
// the time threshold rho. For representative queries the multi-column
// sorting time of the chosen plan, the search time, and the number of
// plans costed are reported for rho in {0.01%, 0.1%, 1%, 10%, N/S}.
//
// Paper findings: ROGA usually completes before any reasonable deadline;
// effectiveness is insensitive to rho except at the most stringent value;
// rho = 0.1% is a good default even for the W > 87 queries.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/common/env.h"
#include "mcsort/plan/roga.h"

int main() {
  using namespace mcsort;
  WorkloadOptions wopts;
  wopts.scale = ScaleFromEnv();
  const CostParams& params = bench::BenchParams();
  const CostModel model(params);

  const Workload tpch = MakeTpch(wopts);
  const Workload tpcds = MakeTpcds(wopts);
  const Workload airline = MakeAirline(wopts);
  struct Target {
    const Workload* workload;
    const char* id;
  };
  // One small-W and two large-W (> 60 bits) instances, as in Fig. 12.
  const std::vector<Target> targets = {
      {&tpch, "Q16"}, {&tpch, "Q10"}, {&tpcds, "Q67"}, {&airline, "Q3"}};

  std::printf("Figure 12 / Appendix C reproduction: ROGA under varying "
              "rho.\n");
  for (const Target& t : targets) {
    const WorkloadQuery& q = t.workload->query(t.id);
    const Table& table = t.workload->table_for(q);
    ExecutorOptions base_options;
    base_options.params = params;
    QueryExecutor executor(table, base_options);
    const SortInstanceStats stats =
        executor.InstanceStats(q.spec, table.row_count());
    bench::Header(t.workload->name + " " + t.id + "  (W = " +
                  std::to_string(stats.total_width()) + " bits)");
    std::printf("%-8s %12s %12s %14s %-30s\n", "rho", "search(ms)",
                "plans", "est mcs(ms)", "chosen plan");

    // Default sweep, or a single externally chosen value: MCSORT_RHO is
    // the same knob the query service reads (ServiceOptions::FromEnv), so
    // a deployment can check its configured rho against this figure.
    std::vector<double> rhos = {0.0001, 0.001, 0.01, 0.1, 0.0};
    std::vector<std::string> labels = {"0.01%", "0.1%", "1%", "10%", "N/S"};
    const double env_rho = EnvDouble("MCSORT_RHO", -1.0);
    if (env_rho >= 0) {
      rhos = {env_rho};
      labels = {"env"};
    }
    for (size_t i = 0; i < rhos.size(); ++i) {
      SearchOptions options;
      options.rho = rhos[i];
      options.min_budget_seconds = 0;  // expose the raw rho behavior
      // Fixed attribute order for every row: isolates the rho effect (the
      // N/S row would otherwise enumerate m! permutations of the large-W
      // GROUP BY queries, which is exactly what rho exists to prevent).
      options.permute_columns = false;
      const SearchResult result = RogaSearch(model, stats, options);
      std::printf("%-8s %12.3f %12zu %14s %-30s%s\n", labels[i].c_str(),
                  result.search_seconds * 1e3, result.plans_costed,
                  bench::Ms(result.estimated_cycles / (params.ghz * 1e9))
                      .c_str(),
                  result.plan.ToString().c_str(),
                  result.timed_out ? "  [deadline]" : "");
    }
  }
  std::printf("\npaper: rho = 0.1%% gives ROGA enough time to find a very "
              "high quality plan\nwithout the optimizer becoming a "
              "bottleneck.\n");
  return 0;
}

// Ablation: ByteSlice [14] vs BitWeaving/V [30] as the column-store scan
// substrate — the design choice behind the paper's prototype ("ByteSlice
// ... so that scans can be executed very efficiently through early
// stopping while lookups can still be very efficient through byte
// stitching", Sec. 2).
//
// Expected shape: the two layouts scan at comparable speed (both stop
// early; VBP has finer granularity, ByteSlice wider SIMD), but ByteSlice
// lookups (the multi-column sorter's per-round reorder path) are several
// times faster because they stitch ceil(w/8) bytes instead of w bits.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/common/random.h"
#include "mcsort/scan/bitweaving_scan.h"
#include "mcsort/scan/byteslice_scan.h"
#include "mcsort/scan/lookup.h"

int main() {
  using namespace mcsort;
  const uint64_t n = bench::EnvRows();
  std::printf("Ablation: scan layouts, N = %llu rows.\n\n",
              static_cast<unsigned long long>(n));

  std::printf("%-6s %14s %14s | %14s %14s   (ms)\n", "width",
              "byteslice-scan", "bitweaving-scan", "byteslice-look",
              "bitweaving-look");
  Rng rng(5);
  for (int width : {8, 12, 17, 24, 33}) {
    EncodedColumn col(width, n);
    for (uint64_t i = 0; i < n; ++i) {
      col.Set(i, rng.Next() & LowBitsMask(width));
    }
    const ByteSliceColumn bs = ByteSliceColumn::Build(col);
    const BitWeavingColumn bw = BitWeavingColumn::Build(col);
    const Code literal = LowBitsMask(width) / 3;

    BitVector result;
    Timer timer;
    double bs_scan = 1e300, bw_scan = 1e300;
    for (int rep = 0; rep < bench::EnvReps() + 1; ++rep) {
      timer.Restart();
      ByteSliceScan(bs, CompareOp::kLess, literal, &result);
      bs_scan = std::min(bs_scan, timer.Seconds());
      timer.Restart();
      BitWeavingScan(bw, CompareOp::kLess, literal, &result);
      bw_scan = std::min(bw_scan, timer.Seconds());
    }

    // Lookup: fetch 1/16 of the rows in random order (a selective
    // filter's oid list).
    std::vector<Oid> oids(n / 16);
    for (auto& oid : oids) oid = static_cast<Oid>(rng.NextBounded(n));
    EncodedColumn out;
    double bs_look = 1e300, bw_look = 1e300;
    for (int rep = 0; rep < bench::EnvReps() + 1; ++rep) {
      timer.Restart();
      GatherFromByteSlice(bs, oids.data(), oids.size(), &out);
      bs_look = std::min(bs_look, timer.Seconds());
      timer.Restart();
      out.Reset(width, oids.size());
      for (size_t i = 0; i < oids.size(); ++i) {
        out.Set(i, bw.StitchCode(oids[i]));
      }
      bw_look = std::min(bw_look, timer.Seconds());
    }
    std::printf("%-6d %14s %14s | %14s %14s\n", width,
                bench::Ms(bs_scan).c_str(), bench::Ms(bw_scan).c_str(),
                bench::Ms(bs_look).c_str(), bench::Ms(bw_look).c_str());
  }
  std::printf("\nexpected: comparable scans; ByteSlice lookups several times"
              " faster\n(byte stitching vs bit stitching) — the reason the"
              " paper's prototype\nstores base columns as ByteSlice.\n");
  return 0;
}

// Persistence-tier benchmark: what does a restart cost with snapshots
// versus regenerating the data, and how fast does CSV ingest scale?
//
// Part 1 (cold start): generate the TPC-H WideTable at MCSORT_SF, save it
// as a snapshot, then time loading it back through the buffered-read and
// mmap zero-copy paths — against the generator re-run as the baseline a
// snapshotless restart would pay. A first-query pass after each load
// verifies the loaded table answers identically (and, for mmap, forces the
// page-in cost to show up somewhere visible instead of hiding in the
// first user query).
//
// Part 2 (ingest): synthesize a CSV of MCSORT_N rows (int, decimal, two
// string columns), then ingest it at 1/4/16 threads (capped by
// MCSORT_THREADS), reporting rows/sec per thread count.
//
// Environment: MCSORT_SF (default 0.1), MCSORT_N (CSV rows, default 2^20),
// MCSORT_REPS, MCSORT_THREADS, MCSORT_IO_DIR (scratch dir, default /tmp).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/io/csv_ingest.h"
#include "mcsort/io/snapshot.h"
#include "mcsort/storage/table.h"
#include "mcsort/workloads/workload.h"

namespace mcsort {
namespace {

double MinSeconds(int reps, const std::function<void()>& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

// A cheap deterministic probe over the loaded data: sum of one column's
// codes — enough to prove the bytes arrived and to force mmap page-in.
uint64_t ProbeSum(const Table& table, const std::string& column) {
  const EncodedColumn& col = table.column(column);
  uint64_t sum = 0;
  for (size_t r = 0; r < col.size(); ++r) sum += col.Get(r);
  return sum;
}

void RunColdStart(const std::string& scratch, int reps) {
  WorkloadOptions options;
  options.scale = ScaleFromEnv();
  Timer gen_timer;
  Workload workload = MakeTpch(options);
  const double gen_seconds = gen_timer.Seconds();
  // The restart cost that matters is the biggest table's.
  auto it = workload.tables.begin();
  for (auto cand = it; cand != workload.tables.end(); ++cand) {
    if (cand->second.row_count() > it->second.row_count()) it = cand;
  }
  const Table& table = it->second;
  std::printf("# cold start: tpch '%s' SF=%.2f, %zu rows, %zu columns\n",
              it->first.c_str(), options.scale, table.row_count(),
              table.column_names().size());

  // A snapshot restores statistics and the ByteSlice/BitWeaving scan
  // layouts ready-made, so the fair snapshotless baseline is generation
  // PLUS materializing those (a regenerated table builds them lazily on
  // first use; the generator alone is not query-equivalent).
  Timer mat_timer;
  for (const std::string& name : table.column_names()) {
    (void)table.stats(name);
    (void)table.byteslice(name);
    (void)table.bitweaving(name);
  }
  const double mat_seconds = mat_timer.Seconds();
  const double baseline_seconds = gen_seconds + mat_seconds;
  std::printf("%-22s %10.3f s   (generate %.3f + scan layouts %.3f — the "
              "snapshotless restart baseline)\n",
              "regenerate", baseline_seconds, gen_seconds, mat_seconds);

  const std::string dir = scratch + "/io_load_snapshot";
  Timer save_timer;
  const IoStatus saved = SaveTableSnapshot(table, dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    std::exit(1);
  }
  std::printf("%-22s %10.3f s\n", "save snapshot", save_timer.Seconds());

  const std::string probe_col = table.column_names().front();
  const uint64_t want = ProbeSum(table, probe_col);
  for (const SnapshotLoadMode mode :
       {SnapshotLoadMode::kBuffered, SnapshotLoadMode::kMmap}) {
    const char* name =
        mode == SnapshotLoadMode::kMmap ? "load (mmap)" : "load (buffered)";
    SnapshotLoadOptions load;
    load.mode = mode;
    double probe_seconds = 0;
    const double load_seconds = MinSeconds(reps, [&] {
      Table loaded;
      const IoStatus st = LoadTableSnapshot(dir, load, &loaded);
      if (!st.ok()) {
        std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
        std::exit(1);
      }
      Timer probe_timer;
      if (ProbeSum(loaded, probe_col) != want) {
        std::fprintf(stderr, "probe mismatch after load\n");
        std::exit(1);
      }
      probe_seconds = probe_timer.Seconds();
    });
    std::printf("%-22s %10.3f s   (+%.3f s first touch, %5.1fx vs "
                "regenerate)\n",
                name, load_seconds, probe_seconds,
                baseline_seconds / std::max(load_seconds, 1e-9));
  }
}

void RunIngest(const std::string& scratch, int reps) {
  const uint64_t rows = bench::EnvRows();
  const std::string csv = scratch + "/io_load_ingest.csv";
  {
    Rng rng(99);
    std::ofstream out(csv, std::ios::binary);
    out << "id,price,city,flag\n";
    char line[128];
    for (uint64_t r = 0; r < rows; ++r) {
      std::snprintf(line, sizeof(line), "%llu,%llu.%02llu,c%llu,%s\n",
                    static_cast<unsigned long long>(rng.NextBounded(1000000)),
                    static_cast<unsigned long long>(rng.NextBounded(10000)),
                    static_cast<unsigned long long>(rng.NextBounded(100)),
                    static_cast<unsigned long long>(rng.NextBounded(5000)),
                    rng.NextBounded(2) != 0 ? "yes" : "no");
      out << line;
    }
  }
  std::printf("# ingest: %llu rows x 4 columns (int, decimal, string x2)\n",
              static_cast<unsigned long long>(rows));
  const int max_threads = bench::EnvThreads(16);
  for (int threads : {1, 4, 16}) {
    if (threads > max_threads && threads != 1) continue;
    CsvIngestOptions options;
    options.threads = threads;
    const double seconds = MinSeconds(reps, [&] {
      Table table;
      const IoStatus st = IngestCsv(csv, options, &table);
      if (!st.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
        std::exit(1);
      }
    });
    std::printf("ingest @%2d threads     %10.3f s   (%6.2f M rows/s)\n",
                threads, seconds, rows / seconds / 1e6);
  }
  std::remove(csv.c_str());
}

}  // namespace
}  // namespace mcsort

int main() {
  using namespace mcsort;
  const std::string scratch = EnvStr("MCSORT_IO_DIR", "/tmp");
  const int reps = bench::EnvReps();
  RunColdStart(scratch, reps);
  std::printf("\n");
  RunIngest(scratch, reps);
  return 0;
}

// Reproduces Table 2 of the paper: the time ROGA spends finding a code
// massage plan for each eligible query (the paper reports it as
// negligible; under rho = 0.1%, 22 of the 27 queries complete the whole
// search before the deadline).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/plan/roga.h"

namespace mcsort {
namespace {

void RunWorkload(const Workload& workload, const CostModel& model) {
  bench::Header(workload.name);
  std::printf("%-5s %4s %12s %10s %10s  %-28s\n", "query", "W", "search(ms)",
              "plans", "complete", "chosen plan");
  for (const WorkloadQuery& q : workload.queries) {
    const Table& table = workload.table_for(q);
    ExecutorOptions exec_options;
    QueryExecutor executor(table, exec_options);
    const SortInstanceStats stats =
        executor.InstanceStats(q.spec, table.row_count());
    SearchOptions options;  // rho = 0.1% default
    options.permute_columns =
        !q.spec.group_by.empty() || !q.spec.partition_by.empty();
    options.permute_prefix =
        q.spec.partition_by.empty()
            ? -1
            : static_cast<int>(q.spec.partition_by.size());
    const SearchResult result = RogaSearch(model, stats, options);
    std::printf("%-5s %4d %12.3f %10zu %10s  %-28s\n", q.id.c_str(),
                stats.total_width(), result.search_seconds * 1e3,
                result.plans_costed, result.timed_out ? "deadline" : "yes",
                result.plan.ToString().c_str());
  }
}

}  // namespace
}  // namespace mcsort

int main() {
  using namespace mcsort;
  WorkloadOptions wopts;
  wopts.scale = ScaleFromEnv();
  const CostParams& params = bench::BenchParams();
  const CostModel model(params);
  std::printf("Table 2 reproduction: ROGA plan-search time per query "
              "(rho = 0.1%%).\n");

  RunWorkload(MakeTpch(wopts), model);
  WorkloadOptions skew = wopts;
  skew.skew = true;
  RunWorkload(MakeTpch(skew), model);
  RunWorkload(MakeTpcds(wopts), model);
  RunWorkload(MakeAirline(wopts), model);
  std::printf("\npaper: the time used by ROGA to find a good plan is "
              "negligible; under\nrho = 0.1%%, 22 of 27 queries complete "
              "the whole search before the deadline\n(the remainder have "
              "W > 87).\n");
  return 0;
}

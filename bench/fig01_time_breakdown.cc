// Reproduces Figure 1 of the paper: the time breakdown of the TPC-H
// queries with multiple attributes in their GROUP BY and/or ORDER BY
// clauses, executed WITHOUT code massaging (column-at-a-time), with
// ByteSlice fast scans and WideTable denormalization.
//
// The paper reports multi-column sorting taking 60%-92% of execution time
// for all queries except Q13 (whose multi-column ORDER BY runs over the
// small aggregated result).
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace mcsort;
  WorkloadOptions wopts;
  wopts.scale = ScaleFromEnv();
  std::printf("Figure 1 reproduction: TPC-H (SF %.3g), column-at-a-time\n"
              "(no code massaging), ByteSlice scans + WideTables.\n\n",
              wopts.scale);
  const Workload workload = MakeTpch(wopts);

  ExecutorOptions options;
  options.use_massage = false;

  std::printf("%-5s %10s %10s %10s %8s   %s\n", "query", "total(ms)",
              "mcs(ms)", "rest(ms)", "mcs%", "bar");
  for (const WorkloadQuery& q : workload.queries) {
    const QueryResult result = bench::MeasureQuery(
        workload.table_for(q), q.spec, options, bench::EnvReps());
    const double total = result.total_seconds();
    const double share = total > 0 ? result.mcs_seconds / total : 0;
    std::string bar(static_cast<size_t>(share * 40), '#');
    std::printf("%-5s %10s %10s %10s %7.1f%%   %s\n", q.id.c_str(),
                bench::Ms(total).c_str(), bench::Ms(result.mcs_seconds).c_str(),
                bench::Ms(result.rest_seconds() + result.plan_seconds).c_str(),
                share * 100, bar.c_str());
  }
  std::printf("\npaper: multi-column sorting takes 60%% (Q9) to 92%% (Q10) of\n"
              "execution time, except Q13 (dominated by single-column work).\n");
  return 0;
}

// Reproduces Figure 7 of the paper: TPC-H Q16 (GROUP BY p_brand, p_type,
// p_size). Every feasible plan (bounded round count) is *executed* to
// obtain its actual cost — the paper's "perfect cost model" A_16 — and
// estimated with the calibrated cost model; the plans chosen by ROGA and
// by RRS are then ranked against the actual ordering.
//
// Paper result: the model tracks the actual behavior well, and both ROGA
// and RRS find the actual optimal plan (rank 1).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/plan/enumerate.h"
#include "mcsort/plan/rrs.h"

int main() {
  using namespace mcsort;
  WorkloadOptions wopts;
  wopts.scale = ScaleFromEnv();
  const Workload workload = MakeTpch(wopts);
  const WorkloadQuery& q16 = workload.query("Q16");
  const Table& table = workload.table_for(q16);
  const CostParams& params = bench::BenchParams();
  const CostModel model(params);

  // Materialize the filtered sort columns once (Q16's own pipeline).
  ExecutorOptions exec_options;
  exec_options.params = params;
  QueryExecutor executor(table, exec_options);
  // Build the instance over the base (unfiltered) stats as the optimizer
  // sees it; execution uses the filtered columns below.
  std::vector<const EncodedColumn*> cols = {&table.column("p_brand"),
                                            &table.column("p_type"),
                                            &table.column("p_size")};
  std::vector<ColumnStats> stats_storage;
  SortInstanceStats stats = bench::StatsFor(cols, &stats_storage);
  std::printf("Figure 7 reproduction: TPC-H Q16, W = %d bits, N = %llu "
              "rows\n",
              stats.total_width(),
              static_cast<unsigned long long>(stats.n));

  std::vector<MassageInput> inputs;
  for (const EncodedColumn* c : cols) {
    inputs.push_back({c, SortOrder::kAscending});
  }

  // Enumerate feasible plans (minimal banks, <= 4 rounds; the full space
  // is 2^(W-1) — the paper spent weeks executing it; see EXPERIMENTS.md).
  const int kMaxRounds = 4;
  const std::vector<MassagePlan> plans =
      EnumerateFeasiblePlans(stats.total_width(), kMaxRounds);
  std::printf("executing %zu feasible plans (<= %d rounds)...\n\n",
              plans.size(), kMaxRounds);

  struct Entry {
    const MassagePlan* plan;
    double actual_seconds;
    double estimated_seconds;
  };
  std::vector<Entry> entries;
  MultiColumnSorter sorter;
  for (const MassagePlan& plan : plans) {
    const MultiColumnSortResult result =
        bench::MeasurePlan(inputs, plan, bench::EnvReps(), &sorter);
    entries.push_back({&plan, result.total_seconds(),
                       model.EstimateSeconds(plan, stats)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.actual_seconds < b.actual_seconds;
            });

  // Search algorithms (GROUP BY: permutations allowed).
  SearchOptions roga_options;
  roga_options.permute_columns = true;
  const SearchResult roga = RogaSearch(model, stats, roga_options);
  RrsOptions rrs_options;
  rrs_options.permute_columns = true;
  rrs_options.budget_seconds = std::max(roga.search_seconds, 1e-4);
  const SearchResult rrs = RrsSearch(model, stats, rrs_options);

  const auto rank_of = [&](const MassagePlan& plan) {
    for (size_t i = 0; i < entries.size(); ++i) {
      if (*entries[i].plan == plan) return i + 1;
    }
    return size_t{0};  // permuted column order: not in the fixed-order list
  };

  std::printf("%-6s %-34s %10s %10s\n", "rank", "plan", "actual", "est(ms)");
  double mre = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    mre += std::abs(entries[i].estimated_seconds - entries[i].actual_seconds) /
           entries[i].actual_seconds;
    if (i < 12 || i + 3 >= entries.size()) {
      std::printf("%-6zu %-34s %10s %10s\n", i + 1,
                  entries[i].plan->ToString().c_str(),
                  bench::Ms(entries[i].actual_seconds).c_str(),
                  bench::Ms(entries[i].estimated_seconds).c_str());
    } else if (i == 12) {
      std::printf("  ...\n");
    }
  }
  mre /= static_cast<double>(entries.size());

  std::printf("\ncost model MRE over all plans: %.2f (paper: 0.42 for the "
              "TPC-H workload)\n", mre);
  std::printf("ROGA chose  %s (est %s ms) -> actual rank %zu of %zu\n",
              roga.plan.ToString().c_str(),
              bench::Ms(roga.estimated_cycles / (params.ghz * 1e9)).c_str(),
              rank_of(roga.plan), entries.size());
  std::printf("RRS  chose  %s (est %s ms) -> actual rank %zu of %zu\n",
              rrs.plan.ToString().c_str(),
              bench::Ms(rrs.estimated_cycles / (params.ghz * 1e9)).c_str(),
              rank_of(rrs.plan), entries.size());
  std::printf("(rank 0 = plan uses a permuted column order outside the "
              "fixed-order enumeration)\n");
  std::printf("paper: both ROGA and RRS find the actual optimal plan for "
              "Q16.\n");
  return 0;
}

// Reproduces Figure 3 (and the Fig. 6 I_FIP counts) of the paper:
//   (a) Ex1 — 10-bit + 17-bit: the stitch-all plan P<<17 = {27/[32]} beats
//       P0 = {10/[16], 17/[32]} (paper: 44% faster),
//   (b) Ex2 — 15-bit + 31-bit: the stitch-all plan P<<31 = {46/[64]} LOSES
//       to P0 = {15/[16], 31/[32]} (64-bit banks halve data parallelism),
//   (c) Ex4 — 48-bit + 48-bit: MORE rounds win: {32/[32] x3} beats
//       P0 = {48/[64], 48/[64]}.
//
// Setup per Sec. 3: N tuples (MCSORT_N, paper 2^24), 2^13 distinct values
// uniform on each column's domain; times cover massaging + all sorting
// rounds (everything up to the point where all sortings are done).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/massage/fip.h"

namespace mcsort {
namespace {

void RunExample(const char* title, int w1, int w2,
                const std::vector<MassagePlan>& plans,
                const std::vector<std::string>& labels) {
  const uint64_t n = bench::EnvRows();
  bench::Header(title);
  const EncodedColumn c1 = bench::SyntheticColumn(w1, n, 1001);
  const EncodedColumn c2 = bench::SyntheticColumn(w2, n, 1002);
  std::vector<MassageInput> inputs = {{&c1, SortOrder::kAscending},
                                      {&c2, SortOrder::kAscending}};
  MultiColumnSorter sorter;
  std::printf("%-28s %8s %8s %8s %8s %8s  %s\n", "plan", "total", "massage",
              "sort", "lookup", "scan", "(ms; I_FIP)");
  double first_total = 0;
  for (size_t p = 0; p < plans.size(); ++p) {
    const MultiColumnSortResult result =
        bench::MeasurePlan(inputs, plans[p], bench::EnvReps(), &sorter);
    double sort_s = 0, lookup_s = 0, scan_s = 0;
    for (const RoundProfile& r : result.rounds) {
      sort_s += r.sort_seconds;
      lookup_s += r.lookup_seconds;
      scan_s += r.scan_seconds;
    }
    const int fips = CountFipInvocations({w1, w2}, plans[p].widths());
    const double total = result.total_seconds();
    if (p == 0) first_total = total;
    std::printf("%-28s %8s %8s %8s %8s %8s  I_FIP=%d%s\n",
                (labels[p] + " " + plans[p].ToString()).c_str(),
                bench::Ms(total).c_str(), bench::Ms(result.massage_seconds).c_str(),
                bench::Ms(sort_s).c_str(), bench::Ms(lookup_s).c_str(),
                bench::Ms(scan_s).c_str(), fips,
                p == 0 ? "" : (total < first_total ? "  [beats P0]"
                                                   : "  [loses to P0]"));
  }
}

}  // namespace
}  // namespace mcsort

int main() {
  using namespace mcsort;
  std::printf("Figure 3 reproduction: N = %llu rows, 2^13 distinct/column\n",
              static_cast<unsigned long long>(bench::EnvRows()));

  RunExample("Fig. 3a [Ex1] ORDER BY 10-bit, 17-bit", 10, 17,
             {MassagePlan::WithMinimalBanks({10, 17}),
              MassagePlan::WithMinimalBanks({27})},
             {"P0     ", "P<<17  "});
  std::printf("paper: P<<17 improves on P0 by ~44%% (one round, one lookup\n"
              "and one scan eliminated; same 32-bit bank).\n");

  RunExample("Fig. 3b [Ex2] ORDER BY 15-bit, 31-bit", 15, 31,
             {MassagePlan::WithMinimalBanks({15, 31}),
              MassagePlan::WithMinimalBanks({46})},
             {"P0     ", "P<<31  "});
  std::printf("paper: the reckless stitch P<<31 degrades performance — the\n"
              "64-bit bank's weaker parallelism outweighs the saved round.\n");

  RunExample("Fig. 3c [Ex4] ORDER BY 48-bit, 48-bit", 48, 48,
             {MassagePlan::WithMinimalBanks({48, 48}),
              MassagePlan::WithMinimalBanks({32, 32, 32})},
             {"P0     ", "P32x3  "});
  std::printf("paper: sorting time drops by INCREASING the number of rounds\n"
              "(three fully-utilized 32-bit rounds beat two 48/[64] rounds).\n");
  return 0;
}

// Reproduces Figure 10 of the paper: throughput (million tuples/second) of
// selected queries with code massaging enabled, as the number of threads
// grows. The paper observes linear scaling up to 10 cores (Xeon) / 4 cores
// (i7); this container exposes a limited core count, so the curve
// flattens at the hardware limit (documented in EXPERIMENTS.md) — the
// harness demonstrates correct parallel execution either way.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/common/cpu_info.h"

int main() {
  using namespace mcsort;
  WorkloadOptions wopts;
  wopts.scale = ScaleFromEnv();
  const CostParams& params = bench::BenchParams();
  // Default sweep reaches 4 threads as the paper's i7 curve does; on a
  // bigger host set MCSORT_THREADS to sweep the morsel-driven executor up
  // to the real core count.
  const int max_threads =
      bench::EnvThreads(std::max(4, CpuInfo::Get().num_cores));
  const std::vector<int> thread_counts = bench::ThreadSweep(max_threads);
  std::printf("Figure 10 reproduction: throughput vs threads (machine has "
              "%d core(s), sweeping to %d).\n",
              CpuInfo::Get().num_cores, max_threads);

  const Workload tpch = MakeTpch(wopts);
  const Workload tpcds = MakeTpcds(wopts);
  struct Target {
    const Workload* workload;
    const char* id;
  };
  const std::vector<Target> targets = {
      {&tpch, "Q1"}, {&tpch, "Q18"}, {&tpcds, "Q67"}};

  for (const Target& t : targets) {
    const WorkloadQuery& q = t.workload->query(t.id);
    const Table& table = t.workload->table_for(q);
    bench::Header(t.workload->name + " " + t.id);
    std::printf("%-8s %12s %14s %12s %12s\n", "threads", "time(ms)",
                "Mtuples/s", "sort-morsels", "coop-sorts");
    for (int threads : thread_counts) {
      std::unique_ptr<ThreadPool> pool;
      ExecutorOptions options;
      options.use_massage = true;
      options.params = params;
      if (threads > 1) {
        pool = std::make_unique<ThreadPool>(threads);
        options.pool = pool.get();
      }
      const QueryResult result =
          bench::MeasureQuery(table, q.spec, options, bench::EnvReps());
      const double seconds = result.total_seconds();
      // Per-stage parallelism of the main sort: dynamic morsels claimed
      // for segment sorts and segments handled by the cooperative
      // whole-segment parallel sorter.
      size_t sort_morsels = 0;
      size_t coop_sorts = 0;
      for (const RoundProfile& round : result.sort_profile.rounds) {
        sort_morsels += round.sort_morsels;
        coop_sorts += round.cooperative_sorts;
      }
      std::printf("%-8d %12s %14.2f %12zu %12zu\n", threads,
                  bench::Ms(seconds).c_str(),
                  seconds > 0 ? table.row_count() / seconds / 1e6 : 0,
                  sort_morsels, coop_sorts);
    }
  }
  std::printf("\npaper: linear core/thread scalability across workloads and\n"
              "CPU models (10-core Xeon, 4-core i7).\n");
  return 0;
}

// Reproduces Figure 9 of the paper: end-to-end query execution time with
// multi-column sorting executed with vs. without code massaging, across
// data scales. The paper uses TPC-H/TPC-DS scale factors 1, 5, 10 (1G/5G/
// 10G); this harness sweeps {SF, 2*SF, 4*SF} around the MCSORT_SF base so
// the relative shape (consistent query speedups across scales) is
// reproduced at container-friendly sizes.
//
// Paper result: up to 4.7X (TPC-H Q18), 4.7X (skew Q18), 4X (TPC-DS Q67),
// 3.2X (real Q3); Q13 is the exception (multi-column sorting share tiny).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace mcsort {
namespace {

void RunScale(const Workload& workload,
              const std::vector<std::string>& query_ids, double scale,
              const CostParams& params) {
  ExecutorOptions off;
  off.use_massage = false;
  ExecutorOptions on;
  on.use_massage = true;
  on.params = params;
  std::printf("  [%s, SF %.3g]\n", workload.name.c_str(), scale);
  std::printf("  %-5s %12s %12s %9s %10s\n", "query", "off(ms)", "on(ms)",
              "speedup", "mcs-share");
  for (const std::string& id : query_ids) {
    const WorkloadQuery& q = workload.query(id);
    const Table& table = workload.table_for(q);
    const QueryResult r_off =
        bench::MeasureQuery(table, q.spec, off, bench::EnvReps());
    const QueryResult r_on =
        bench::MeasureQuery(table, q.spec, on, bench::EnvReps());
    const double t_off = r_off.total_seconds();
    const double t_on = r_on.total_seconds();
    std::printf("  %-5s %12s %12s %8.2fX %9.1f%%\n", id.c_str(),
                bench::Ms(t_off).c_str(), bench::Ms(t_on).c_str(),
                t_on > 0 ? t_off / t_on : 0,
                t_off > 0 ? 100 * r_off.mcs_seconds / t_off : 0);
  }
}

}  // namespace
}  // namespace mcsort

int main() {
  using namespace mcsort;
  const double base = ScaleFromEnv();
  const CostParams& params = bench::BenchParams();
  std::printf("Figure 9 reproduction: query execution time, massage on/off,\n"
              "three scales (paper: SF 1/5/10; here %.3g/%.3g/%.3g).\n",
              base, 2 * base, 4 * base);

  for (double scale : {base, 2 * base, 4 * base}) {
    WorkloadOptions wopts;
    wopts.scale = scale;

    bench::Header("TPC-H (dbgen uniform): Q1, Q3, Q9, Q13, Q18");
    RunScale(MakeTpch(wopts), {"Q1", "Q3", "Q9", "Q13", "Q18"}, scale, params);

    WorkloadOptions skew = wopts;
    skew.skew = true;
    bench::Header("TPC-H skew (zipf 1): Q2, Q7, Q10, Q16, Q18");
    RunScale(MakeTpch(skew), {"Q2", "Q7", "Q10", "Q16", "Q18"}, scale, params);

    bench::Header("TPC-DS: all 4 eligible queries");
    RunScale(MakeTpcds(wopts), {"Q36", "Q67", "Q70", "Q86"}, scale, params);

    if (scale == base) {  // the real dataset has one fixed size in the paper
      bench::Header("Airline (real): all 5 queries");
      RunScale(MakeAirline(wopts), {"Q1", "Q2", "Q3", "Q4", "Q5"}, scale,
               params);
    }
  }
  return 0;
}

// Query-service throughput: N client sessions replay a mixed workload
// (GROUP BY / ORDER BY / PARTITION BY / result-ordered aggregates) against
// one QueryService. Reported per session count (1 / 4 / 16 by default):
//
//   * cold: plan cache cleared before the run — every distinct query shape
//     pays its ROGA search;
//   * warm: same workload again with the populated cache — searches are
//     skipped on hit, which is where the service's amortization shows up;
//   * queries/sec for both, the warm/cold speedup, and the plan-cache hit
//     rate of the warm run (the acceptance bar is >= 90%).
//
// Environment knobs: MCSORT_N (rows), MCSORT_REPS (replays per session),
// MCSORT_THREADS (pool workers), MCSORT_RHO (ROGA threshold, the same knob
// fig12_rho sweeps), MCSORT_SESSIONS (comma-free single override),
// MCSORT_CALIBRATE=0 to skip calibration.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/common/env.h"
#include "mcsort/common/timer.h"
#include "mcsort/service/query_service.h"

namespace mcsort {
namespace {

Table BenchTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table table;
  EncodedColumn a(6, n), b(11, n), c(19, n), m(10, n);
  for (size_t r = 0; r < n; ++r) {
    a.Set(r, rng.NextBounded(20));
    b.Set(r, rng.NextBounded(500));
    c.Set(r, rng.NextBounded(100000));
    m.Set(r, rng.NextBounded(1000));
  }
  table.AddColumn("a", std::move(a));
  table.AddColumn("b", std::move(b));
  table.AddColumn("c", std::move(c));
  table.AddColumn("m", std::move(m));
  return table;
}

// The per-session replay mix. Filter literals vary a little so the cache
// holds several distinct signatures per shape, like a real served workload.
std::vector<QuerySpec> WorkloadSpecs() {
  std::vector<QuerySpec> specs;
  for (Code cut : {Code{30000}, Code{60000}, Code{90000}}) {
    specs.push_back(QuerySpecBuilder()
                        .Filter("c", CompareOp::kLess, cut)
                        .GroupBy({"a", "b"})
                        .Sum("m")
                        .Count()
                        .Build());
  }
  specs.push_back(QuerySpecBuilder()
                      .OrderBy("a")
                      .OrderBy("b", SortOrder::kDescending)
                      .OrderBy("c")
                      .Build());
  specs.push_back(
      QuerySpecBuilder().PartitionBy({"a", "b"}).WindowOrder("m").Build());
  specs.push_back(QuerySpecBuilder()
                      .GroupBy({"a"})
                      .Count()
                      .ResultOrder("agg:0", SortOrder::kDescending)
                      .ResultOrder("a")
                      .Build());
  return specs;
}

struct RunResult {
  double seconds = 0;
  uint64_t queries = 0;
  double qps() const { return seconds > 0 ? queries / seconds : 0; }
};

// Replays the workload `reps` times on each of `sessions` client threads.
// Session opening and the per-thread spec sequences are prepared before
// the clock starts (released by a barrier), so `seconds` measures only the
// Execute loop — not session setup or spec staging.
RunResult Replay(QueryService* service, const Table& table, int sessions,
                 int reps, const std::vector<QuerySpec>& specs) {
  std::vector<std::unique_ptr<QuerySession>> handles;
  std::vector<std::vector<QuerySpec>> staged(sessions);
  handles.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    handles.push_back(service->OpenSession(table));
    // Stagger the starting spec per session so distinct shapes overlap.
    for (size_t i = 0; i < specs.size(); ++i) {
      staged[s].push_back(specs[(i + s) % specs.size()]);
    }
  }

  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      QuerySession* session = handles[s].get();
      for (int rep = 0; rep < reps; ++rep) {
        for (const QuerySpec& spec : staged[s]) {
          session->Execute(spec, ExecContext::Default());
        }
      }
    });
  }
  Timer timer;
  go.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  RunResult result;
  result.seconds = timer.Seconds();
  result.queries = uint64_t{static_cast<uint64_t>(sessions)} * reps *
                   specs.size();
  return result;
}

}  // namespace
}  // namespace mcsort

int main() {
  using namespace mcsort;
  const size_t n = bench::EnvRows() / 8;  // service queries are smaller
  const int reps = bench::EnvReps();
  const int threads =
      bench::EnvThreads(static_cast<int>(std::thread::hardware_concurrency()));
  const Table table = BenchTable(n, 4242);
  const std::vector<QuerySpec> specs = WorkloadSpecs();

  ServiceOptions options = ServiceOptions::FromEnv();
  std::printf("Query-service throughput: %zu rows, %zu-query mix, "
              "%d replays/session, %d pool threads, rho=%g.\n",
              n, specs.size(), reps, threads, options.rho);

  options.threads = threads;
  options.params = bench::BenchParams();
  options.admission.max_inflight = std::max(2, threads);
  QueryService service(options);

  std::vector<int> session_counts = {1, 4, 16};
  const uint64_t env_sessions = EnvU64("MCSORT_SESSIONS", 0);
  if (env_sessions > 0) {
    session_counts = {static_cast<int>(env_sessions)};
  }

  bench::Header("cold vs warm plan cache");
  std::printf("%-10s %12s %12s %10s %10s\n", "sessions", "cold q/s",
              "warm q/s", "speedup", "hit rate");
  for (const int sessions : session_counts) {
    service.plan_cache().Clear();
    const RunResult cold = Replay(&service, table, sessions, reps, specs);
    const PlanCache::Stats after_cold = service.plan_cache().GetStats();
    const RunResult warm = Replay(&service, table, sessions, reps, specs);
    const PlanCache::Stats after_warm = service.plan_cache().GetStats();
    const uint64_t warm_lookups =
        (after_warm.hits + after_warm.misses + after_warm.stale_hits) -
        (after_cold.hits + after_cold.misses + after_cold.stale_hits);
    const uint64_t warm_hits = after_warm.hits - after_cold.hits;
    const double hit_rate =
        warm_lookups > 0 ? static_cast<double>(warm_hits) / warm_lookups : 0;
    std::printf("%-10d %12.1f %12.1f %9.2fx %9.1f%%\n", sessions, cold.qps(),
                warm.qps(), cold.seconds / warm.seconds, hit_rate * 100);
  }

  bench::Header("service metrics (final state)");
  std::printf("%s", service.DumpMetrics().c_str());
  std::printf("\nWarm runs skip ROGA on every hit; the hit rate above is "
              "the warm-run\nfraction served straight from the cache "
              "(acceptance bar: >= 90%%).\n");
  return 0;
}

// Distributed scatter-gather throughput: the same GROUP BY workload run
// single-node and through McsortCoordinator over 1 / 2 / 4 in-process
// shard servers (loopback TCP, full wire stack), reporting queries/sec,
// p50/p95/p99 latency, and the fan-out vs. coordinator-merge breakdown
// per shard count.
//
// What to look for: the per-shard sort shrinks with the shard count (each
// shard sorts n/K rows), while the coordinator adds a merge whose cost
// scales with the *result* size, not the input — so distribution pays off
// exactly when the reduction (rows -> groups) is large. The merge columns
// (emitted, full compares) show the offset-value codes doing their job:
// full key comparisons stay a small fraction of emitted elements.
//
// Environment knobs: MCSORT_N (rows, default 1<<20), MCSORT_REPS (queries
// per configuration, default 20), MCSORT_EXEC_THREADS (server executor
// workers, default 2).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/common/env.h"
#include "mcsort/common/timer.h"
#include "mcsort/dist/coordinator.h"
#include "mcsort/dist/partition.h"
#include "mcsort/net/server.h"
#include "mcsort/service/query_service.h"

namespace mcsort {
namespace {

Table BenchTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table table;
  EncodedColumn a(6, n), b(11, n), c(19, n), m(10, n);
  for (size_t r = 0; r < n; ++r) {
    a.Set(r, rng.NextBounded(20));
    b.Set(r, rng.NextBounded(500));
    c.Set(r, rng.NextBounded(100000));
    m.Set(r, rng.NextBounded(1000));
  }
  table.AddColumn("a", std::move(a));
  table.AddColumn("b", std::move(b));
  table.AddColumn("c", std::move(c));
  table.AddColumn("m", std::move(m));
  return table;
}

QuerySpec BenchSpec() {
  return QuerySpecBuilder("dist-bench")
      .GroupBy({"a", "b"})
      .Sum("m")
      .Count()
      .Aggregate(AggOp::kAvg, "m")
      .ResultOrder("agg:0", SortOrder::kDescending)
      .Build();
}

double PercentileOf(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  std::sort(sorted->begin(), sorted->end());
  const size_t i = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(i, sorted->size() - 1)];
}

struct Row {
  std::string label;
  double qps = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  double fanout = 0, merge = 0;  // mean seconds per query
  uint64_t emitted = 0, full_compares = 0;
};

void PrintRow(const Row& row) {
  std::printf("%-12s %8.1f   %7.2f %7.2f %7.2f   %7.2f %7.2f   %9llu %9llu\n",
              row.label.c_str(), row.qps, row.p50 * 1e3, row.p95 * 1e3,
              row.p99 * 1e3, row.fanout * 1e3, row.merge * 1e3,
              static_cast<unsigned long long>(row.emitted),
              static_cast<unsigned long long>(row.full_compares));
}

}  // namespace
}  // namespace mcsort

int main() {
  using namespace mcsort;
  const size_t n = EnvU64("MCSORT_N", uint64_t{1} << 20);
  const int reps = static_cast<int>(EnvU64("MCSORT_REPS", 20));
  const int exec_threads =
      static_cast<int>(EnvU64("MCSORT_EXEC_THREADS", 2));

  std::printf("Distributed throughput: GROUP BY a,b with 3 aggregates and "
              "ORDER BY sum DESC,\nN = %zu rows, %d reps per configuration, "
              "%d executor threads per server.\n\n",
              n, reps, exec_threads);
  std::printf("%-12s %8s   %7s %7s %7s   %7s %7s   %9s %9s\n", "config",
              "q/s", "p50ms", "p95ms", "p99ms", "fan ms", "mrg ms",
              "emitted", "full cmp");

  const Table table = BenchTable(n, 4242);
  const QuerySpec spec = BenchSpec();

  // Single-node baseline: same spec, column order pinned like the
  // coordinator pins it, straight through the service layer (no network).
  {
    ServiceOptions service_options;
    service_options.threads = exec_threads;
    QueryService service(service_options);
    auto session = service.OpenSession(table);
    QuerySpec pinned = spec;
    pinned.fixed_column_order = true;
    std::vector<double> latencies;
    Timer total;
    for (int r = 0; r < reps; ++r) {
      Timer t;
      const ExecResult result =
          session->Execute(pinned, ExecContext::Default());
      if (!result.ok()) {
        std::fprintf(stderr, "single-node query failed\n");
        return 1;
      }
      latencies.push_back(t.Seconds());
    }
    Row row;
    row.label = "single";
    row.qps = reps / total.Seconds();
    row.p50 = PercentileOf(&latencies, 50);
    row.p95 = PercentileOf(&latencies, 95);
    row.p99 = PercentileOf(&latencies, 99);
    PrintRow(row);
  }

  for (const int shards : {1, 2, 4}) {
    dist::PartitionOptions popts;
    popts.num_shards = shards;  // unkeyed row hash: every group is a seam
    dist::PartitionResult parts = dist::PartitionTable(table, popts);
    if (!parts.ok) {
      std::fprintf(stderr, "partition: %s\n", parts.error.c_str());
      return 1;
    }

    std::vector<std::unique_ptr<QueryService>> services;
    std::vector<std::unique_ptr<net::McsortServer>> servers;
    dist::McsortCoordinator coordinator;
    for (const Table& shard : parts.shards) {
      ServiceOptions service_options;
      service_options.threads = exec_threads;
      services.push_back(std::make_unique<QueryService>(service_options));
      services.back()->RegisterTable("part", shard);
      net::ServerOptions server_options;
      server_options.port = 0;
      server_options.exec_threads = exec_threads;
      servers.push_back(std::make_unique<net::McsortServer>(
          services.back().get(), server_options));
      std::string error;
      if (!servers.back()->Start(&error)) {
        std::fprintf(stderr, "server start: %s\n", error.c_str());
        return 1;
      }
      dist::ShardSpec shard_spec;
      shard_spec.endpoints.push_back({"127.0.0.1", servers.back()->port()});
      shard_spec.table = "part";
      coordinator.AddShard(std::move(shard_spec));
    }

    std::vector<double> latencies;
    Row row;
    Timer total;
    for (int r = 0; r < reps; ++r) {
      Timer t;
      const dist::DistResult result = coordinator.Execute(spec);
      if (!result.ok()) {
        std::fprintf(stderr, "distributed query failed: %s\n",
                     result.detail.c_str());
        return 1;
      }
      latencies.push_back(t.Seconds());
      row.fanout += result.fanout_seconds;
      row.merge += result.merge_seconds;
      row.emitted = result.merge_emitted;
      row.full_compares = result.merge_full_compares;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%d shard%s", shards,
                  shards == 1 ? "" : "s");
    row.label = label;
    row.qps = reps / total.Seconds();
    row.p50 = PercentileOf(&latencies, 50);
    row.p95 = PercentileOf(&latencies, 95);
    row.p99 = PercentileOf(&latencies, 99);
    row.fanout /= reps;
    row.merge /= reps;
    PrintRow(row);
    for (auto& server : servers) server->Shutdown();
  }
  return 0;
}

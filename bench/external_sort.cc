// External (spill) sort benchmark: what does sorting under a scratch
// budget cost, and what does the double-buffered prefetch buy?
//
// Part 1 (budget sweep): a 4-column ORDER BY over MCSORT_N rows, executed
// in memory first, then under scratch budgets of 1/2, 1/4, and 1/8 of the
// plan's estimate — each over-budget run spills through the external
// sorter (massaging disabled so the router cannot pick the degrade arm
// and the comparison stays plan-for-plan). Reports run-generation and
// merge time, run count, and spill footprint per budget.
//
// Part 2 (prefetch ablation): the external sorter driven directly at a
// fixed slice size, with the async block loader on vs. off (synchronous
// reads on the merge thread), at 1 and 2 IO threads.
//
// With --verify (the spill_smoke.sh mode) every spilled result is checked
// value-identical to the in-memory baseline — equal group bounds and the
// same row set per group — and the spill dir must be empty afterwards;
// any violation exits nonzero.
//
// Environment: MCSORT_N (default 2^21), MCSORT_REPS, MCSORT_SPILL_DIR
// (default /tmp/mcsort-spill-bench).
#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/common/thread_pool.h"
#include "mcsort/io/fs_util.h"
#include "mcsort/sort/external/external_sort.h"

namespace mcsort {
namespace {

Table BenchTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table table;
  EncodedColumn a(16, n), b(17, n), c(18, n), d(12, n);
  for (size_t r = 0; r < n; ++r) {
    a.Set(r, rng.NextBounded(60000));
    b.Set(r, rng.NextBounded(120000));
    c.Set(r, rng.NextBounded(250000));
    d.Set(r, rng.NextBounded(4000));
  }
  table.AddColumn("a", std::move(a));
  table.AddColumn("b", std::move(b));
  table.AddColumn("c", std::move(c));
  table.AddColumn("d", std::move(d));
  return table;
}

size_t SpillDirFiles(const std::string& dir) {
  size_t count = 0;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      if (std::strcmp(e->d_name, ".") != 0 && std::strcmp(e->d_name, "..") != 0)
        ++count;
    }
    ::closedir(d);
  }
  return count;
}

bool ValueIdentical(const std::vector<Oid>& got, const Segments& got_groups,
                    const std::vector<Oid>& want,
                    const Segments& want_groups) {
  if (got.size() != want.size()) return false;
  if (got_groups.bounds != want_groups.bounds) return false;
  for (size_t g = 0; g < want_groups.count(); ++g) {
    std::vector<Oid> a(got.begin() + want_groups.begin(g),
                       got.begin() + want_groups.end(g));
    std::vector<Oid> b(want.begin() + want_groups.begin(g),
                       want.begin() + want_groups.end(g));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) return false;
  }
  return true;
}

int RunBudgetSweep(const Table& table, const std::string& spill_dir, int reps,
                   bool verify, ThreadPool* pool) {
  const size_t n = table.row_count();
  ExecutorOptions options;
  options.pool = pool;
  options.use_massage = false;
  options.spill.dir = spill_dir;
  QueryExecutor executor(table, options);
  const QuerySpec spec = QuerySpecBuilder()
                             .OrderBy("a")
                             .OrderBy("b")
                             .OrderBy("c")
                             .OrderBy("d")
                             .Build();

  ExecResult baseline;
  double in_memory = 1e30;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    baseline = executor.Execute(spec, ExecContext::Default());
    in_memory = std::min(in_memory, timer.Seconds());
    if (!baseline.ok()) {
      std::fprintf(stderr, "in-memory execution failed: %s\n",
                   baseline.ToStatus().ToString().c_str());
      return 1;
    }
  }
  const size_t full_bytes =
      QueryExecutor::EstimatePlanScratchBytes(baseline.result.plan, n);
  std::printf("in-memory             %8.3f s   (scratch estimate %.1f MiB)\n",
              in_memory, full_bytes / 1048576.0);

  for (const size_t divisor : {2, 4, 8}) {
    ExecResult best;
    double seconds = 1e30;
    for (int r = 0; r < reps; ++r) {
      ExecContext ctx;
      ctx.WithScratchBudget(full_bytes / divisor);
      Timer timer;
      ExecResult run = executor.Execute(spec, ctx);
      if (!run.ok()) {
        std::fprintf(stderr, "budget 1/%zu failed: %s\n", divisor,
                     run.ToStatus().ToString().c_str());
        return 1;
      }
      if (timer.Seconds() < seconds) {
        seconds = timer.Seconds();
        best = std::move(run);
      }
    }
    std::printf(
        "budget 1/%zu            %8.3f s   (%5.2fx, %zu runs, %.1f MiB "
        "spilled, gen %.3f s, merge %.3f s)\n",
        divisor, seconds, seconds / in_memory, best.result.spill_runs,
        best.result.spill_bytes / 1048576.0, best.result.spill_run_gen_seconds,
        best.result.spill_merge_seconds);
    if (verify) {
      if (!best.result.spilled) {
        std::fprintf(stderr, "budget 1/%zu did not spill\n", divisor);
        return 1;
      }
      if (!ValueIdentical(best.result.result_oids,
                          best.result.sort_profile.groups,
                          baseline.result.result_oids,
                          baseline.result.sort_profile.groups)) {
        std::fprintf(stderr,
                     "budget 1/%zu result diverged from in-memory sort\n",
                     divisor);
        return 1;
      }
      const size_t residue = SpillDirFiles(spill_dir);
      if (residue != 0) {
        std::fprintf(stderr, "budget 1/%zu left %zu files in %s\n", divisor,
                     residue, spill_dir.c_str());
        return 1;
      }
    }
  }
  return 0;
}

int RunPrefetchAblation(const Table& table, const std::string& spill_dir,
                        int reps, ThreadPool* pool) {
  const size_t n = table.row_count();
  const std::vector<MassageInput> inputs = {
      {&table.column("a"), SortOrder::kAscending},
      {&table.column("b"), SortOrder::kAscending},
      {&table.column("c"), SortOrder::kAscending},
      {&table.column("d"), SortOrder::kAscending}};
  const MassagePlan plan = MassagePlan::ColumnAtATime({16, 17, 18, 12});
  MultiColumnSorter sorter(pool);

  struct Mode {
    const char* name;
    bool prefetch;
    int io_threads;
  };
  for (const Mode mode : {Mode{"sync reads      ", false, 0},
                          Mode{"prefetch x1     ", true, 1},
                          Mode{"prefetch x2     ", true, 2}}) {
    external::ExternalSortOptions options;
    options.dir = spill_dir;
    options.slice_rows = n / 8;
    options.prefetch = mode.prefetch;
    options.io_threads = mode.io_threads;
    external::ExternalSorter ext(&sorter, options);
    double merge = 1e30, total = 1e30;
    for (int r = 0; r < reps; ++r) {
      Timer timer;
      const external::ExternalSortResult result =
          ext.Sort(inputs, plan, ExecContext::Default());
      if (!result.status.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", mode.name,
                     result.status.ToString().c_str());
        return 1;
      }
      total = std::min(total, timer.Seconds());
      merge = std::min(merge, result.merge_seconds);
    }
    std::printf("%s  %8.3f s total   merge %8.3f s\n", mode.name, total,
                merge);
  }
  return 0;
}

}  // namespace
}  // namespace mcsort

int main(int argc, char** argv) {
  using namespace mcsort;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) verify = true;
  }
  const size_t n = bench::EnvRows();
  const int reps = bench::EnvReps();
  const std::string spill_dir =
      EnvStr("MCSORT_SPILL_DIR", "/tmp/mcsort-spill-bench");
  std::printf("external sort bench: n=%zu reps=%d dir=%s%s\n\n", n, reps,
              spill_dir.c_str(), verify ? " (verify)" : "");

  const Table table = BenchTable(n, 2024);
  ThreadPool pool(2);
  std::printf("--- budget sweep (4-column ORDER BY, column-at-a-time) ---\n");
  if (const int rc = RunBudgetSweep(table, spill_dir, reps, verify, &pool)) {
    return rc;
  }
  std::printf("\n--- merge prefetch ablation (8 runs) ---\n");
  if (const int rc = RunPrefetchAblation(table, spill_dir, reps, &pool)) {
    return rc;
  }
  return 0;
}

// Reproduces Table 1 of the paper: cost-model accuracy (MRE) and plan
// quality (rank of the chosen plan within the *actual* cost ordering of
// feasible plans) for ROGA vs RRS, on each of the four workloads.
//
// The paper built the perfect cost model A_i by exhaustively executing
// every feasible plan ("it took us weeks"); this harness executes a
// bounded enumeration (<= 3 rounds, <= MCSORT_PLAN_CAP plans per query,
// minimal banks, fixed attribute order) — see EXPERIMENTS.md for the
// implications.
//
// Paper numbers: mean rank 4.8-8 for ROGA vs 43-111 for RRS; both reach
// rank 1 on some queries; cost-model MRE 0.36-0.57.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/plan/enumerate.h"
#include "mcsort/plan/rrs.h"

namespace mcsort {
namespace {

struct QueryOutcome {
  size_t roga_rank = 0;
  size_t rrs_rank = 0;
  double mre = 0;
  size_t plans = 0;
};

// Ranks `plan` within the actual-cost ordering; plans not in the list
// (e.g. wider banks) are ranked by inserting their measured time.
size_t RankWithin(const std::vector<double>& sorted_actuals, double actual) {
  return static_cast<size_t>(std::lower_bound(sorted_actuals.begin(),
                                              sorted_actuals.end(), actual) -
                             sorted_actuals.begin()) +
         1;
}

QueryOutcome EvaluateQuery(const Table& table, const QuerySpec& spec,
                           const CostModel& model, uint64_t plan_cap) {
  QueryOutcome outcome;
  // Resolve sort attributes exactly as the executor would.
  std::vector<std::string> names = spec.group_by;
  if (names.empty() && !spec.partition_by.empty()) {
    names = spec.partition_by;
    names.push_back(spec.window_order_column);
  }
  if (names.empty()) {
    for (const auto& [n, o] : spec.order_by) names.push_back(n);
  }
  std::vector<const EncodedColumn*> cols;
  for (const auto& n : names) cols.push_back(&table.column(n));
  std::vector<ColumnStats> storage;
  const SortInstanceStats stats = bench::StatsFor(cols, &storage);
  std::vector<MassageInput> inputs;
  for (const EncodedColumn* c : cols) {
    inputs.push_back({c, SortOrder::kAscending});
  }

  std::vector<MassagePlan> plans =
      EnumerateFeasiblePlans(stats.total_width(), 3, plan_cap);
  // Always include P0 (it may have > 3 rounds for wide instances).
  plans.push_back(MassagePlan::ColumnAtATime(stats.widths()));

  MultiColumnSorter sorter;
  std::vector<double> actuals;
  actuals.reserve(plans.size());
  double mre = 0;
  for (const MassagePlan& plan : plans) {
    const MultiColumnSortResult result =
        bench::MeasurePlan(inputs, plan, bench::EnvReps(), &sorter);
    const double actual = result.total_seconds();
    const double estimated = model.EstimateSeconds(plan, stats);
    actuals.push_back(actual);
    mre += std::abs(estimated - actual) / actual;
  }
  outcome.mre = mre / static_cast<double>(plans.size());
  outcome.plans = plans.size();
  std::sort(actuals.begin(), actuals.end());

  // ROGA and RRS with a fixed attribute order (matching the enumeration).
  const SearchResult roga = RogaSearch(model, stats);
  RrsOptions rrs_options;
  rrs_options.budget_seconds = std::max(roga.search_seconds, 1e-4);
  const SearchResult rrs = RrsSearch(model, stats, rrs_options);

  const auto measure_plan = [&](const MassagePlan& plan) {
    return bench::MeasurePlan(inputs, plan, bench::EnvReps(), &sorter)
        .total_seconds();
  };
  outcome.roga_rank = RankWithin(actuals, measure_plan(roga.plan));
  outcome.rrs_rank = RankWithin(actuals, measure_plan(rrs.plan));
  return outcome;
}

void RunWorkload(const Workload& workload, const CostModel& model,
                 uint64_t plan_cap) {
  double roga_rank_sum = 0, rrs_rank_sum = 0, mre_sum = 0;
  size_t roga_best = SIZE_MAX, roga_worst = 0;
  size_t rrs_best = SIZE_MAX, rrs_worst = 0;
  size_t count = 0;
  std::printf("  %-5s %10s %10s %8s %8s\n", "query", "roga-rank", "rrs-rank",
              "MRE", "plans");
  for (const WorkloadQuery& q : workload.queries) {
    const QueryOutcome outcome =
        EvaluateQuery(workload.table_for(q), q.spec, model, plan_cap);
    std::printf("  %-5s %10zu %10zu %8.2f %8zu\n", q.id.c_str(),
                outcome.roga_rank, outcome.rrs_rank, outcome.mre,
                outcome.plans);
    roga_rank_sum += static_cast<double>(outcome.roga_rank);
    rrs_rank_sum += static_cast<double>(outcome.rrs_rank);
    mre_sum += outcome.mre;
    roga_best = std::min(roga_best, outcome.roga_rank);
    roga_worst = std::max(roga_worst, outcome.roga_rank);
    rrs_best = std::min(rrs_best, outcome.rrs_rank);
    rrs_worst = std::max(rrs_worst, outcome.rrs_rank);
    ++count;
  }
  std::printf("  %-5s %10.1f %10.1f %8.2f   <- mean rank / workload MRE\n",
              "MEAN", roga_rank_sum / count, rrs_rank_sum / count,
              mre_sum / count);
  std::printf("  best rank: ROGA %zu, RRS %zu; worst rank: ROGA %zu, RRS "
              "%zu\n",
              roga_best, rrs_best, roga_worst, rrs_worst);
}

}  // namespace
}  // namespace mcsort

int main() {
  using namespace mcsort;
  WorkloadOptions wopts;
  wopts.scale = ScaleFromEnv();
  const uint64_t plan_cap = bench::EnvU64("MCSORT_PLAN_CAP", 150);
  const CostParams& params = bench::BenchParams();
  const CostModel model(params);
  std::printf("Table 1 reproduction: plan quality (rank in actual-cost "
              "order) and\ncost-model MRE; <= %llu executed plans per "
              "query.\n",
              static_cast<unsigned long long>(plan_cap));
  std::printf("paper: mean rank ROGA 4.8-8 vs RRS 43-111; MRE 0.36-0.57.\n");

  bench::Header("TPC-H");
  RunWorkload(MakeTpch(wopts), model, plan_cap);
  WorkloadOptions skew = wopts;
  skew.skew = true;
  bench::Header("TPC-H skew");
  RunWorkload(MakeTpch(skew), model, plan_cap);
  bench::Header("TPC-DS");
  RunWorkload(MakeTpcds(wopts), model, plan_cap);
  bench::Header("Airline (real)");
  RunWorkload(MakeAirline(wopts), model, plan_cap);
  return 0;
}

// Micro-benchmarks (google-benchmark) of the physical operators backing
// the Sec. 4 cost model: per-bank SIMD sort, code massaging, ByteSlice
// scan, lookup/gather, and the group scan. These are the quantities the
// calibration procedures measure; run them to sanity-check calibrated
// constants (cycles/code = seconds * GHz / N). The BM_Parallel* variants
// run the same operators through the morsel-driven executor with
// MCSORT_THREADS workers (default: the core count, at least 4 so the
// parallel paths are exercised even on small containers).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "mcsort/common/bits.h"
#include "mcsort/common/cpu_info.h"
#include "mcsort/common/random.h"
#include "mcsort/common/thread_pool.h"
#include "mcsort/massage/massage.h"
#include "mcsort/scan/byteslice_scan.h"
#include "mcsort/scan/group_scan.h"
#include "mcsort/scan/lookup.h"
#include "mcsort/sort/counting_sort.h"
#include "mcsort/sort/simd_sort.h"
#include "mcsort/storage/byteslice.h"
#include "mcsort/storage/column.h"

namespace mcsort {
namespace {

// Worker count for the BM_Parallel* benches: MCSORT_THREADS if set, else
// max(4, cores) so the parallel code paths run even on a 1-core container.
int BenchThreads() {
  if (const char* env = std::getenv("MCSORT_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return std::max(4, CpuInfo::Get().num_cores);
}

template <typename K>
std::vector<K> RandomKeys(size_t n, int width, uint64_t seed) {
  Rng rng(seed);
  std::vector<K> keys(n);
  for (auto& k : keys) k = static_cast<K>(rng.Next() & LowBitsMask(width));
  return keys;
}

void BM_SortPairs16(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto master = RandomKeys<uint16_t>(n, 16, 1);
  std::vector<uint16_t> keys(n);
  std::vector<uint32_t> oids(n);
  SortScratch scratch;
  for (auto _ : state) {
    keys = master;
    std::iota(oids.begin(), oids.end(), 0);
    SortPairs16(keys.data(), oids.data(), n, scratch);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SortPairs16)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_SortPairs32(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto master = RandomKeys<uint32_t>(n, 32, 2);
  std::vector<uint32_t> keys(n), oids(n);
  SortScratch scratch;
  for (auto _ : state) {
    keys = master;
    std::iota(oids.begin(), oids.end(), 0);
    SortPairs32(keys.data(), oids.data(), n, scratch);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SortPairs32)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_SortPairs64(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto master = RandomKeys<uint64_t>(n, 64, 3);
  std::vector<uint64_t> keys(n);
  std::vector<uint32_t> oids(n);
  SortScratch scratch;
  for (auto _ : state) {
    keys = master;
    std::iota(oids.begin(), oids.end(), 0);
    SortPairs64(keys.data(), oids.data(), n, scratch);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SortPairs64)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

// OVC merge kernel at each bank — the calibration targets for the
// OvcSortParams constants (cycles/row = run formation + passes * merge).
void BM_OvcSortPairs32(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto master = RandomKeys<uint32_t>(n, 32, 21);
  std::vector<uint32_t> keys(n), oids(n);
  SortScratch scratch;
  for (auto _ : state) {
    keys = master;
    std::iota(oids.begin(), oids.end(), 0);
    OvcSortPairs32(keys.data(), oids.data(), n, scratch);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_OvcSortPairs32)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_OvcSortPairs64(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto master = RandomKeys<uint64_t>(n, 64, 22);
  std::vector<uint64_t> keys(n);
  std::vector<uint32_t> oids(n);
  SortScratch scratch;
  for (auto _ : state) {
    keys = master;
    std::iota(oids.begin(), oids.end(), 0);
    OvcSortPairs64(keys.data(), oids.data(), n, scratch);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_OvcSortPairs64)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

// Counting sort across round widths — the domain (2^width) term is the
// CountingSortParams::per_bucket calibration target; the second range arg
// is the round width.
void BM_CountingSortPairs32(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int width = static_cast<int>(state.range(1));
  const auto master = RandomKeys<uint32_t>(n, width, 23);
  std::vector<uint32_t> keys(n), oids(n);
  SortScratch scratch;
  for (auto _ : state) {
    keys = master;
    std::iota(oids.begin(), oids.end(), 0);
    CountingSortPairs32(keys.data(), oids.data(), n, width, scratch);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_CountingSortPairs32)
    ->Args({1 << 16, 8})
    ->Args({1 << 16, 16})
    ->Args({1 << 20, 8})
    ->Args({1 << 20, 16})
    ->Args({1 << 20, 20});

void BM_ParallelSortPairs16(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto master = RandomKeys<uint16_t>(n, 16, 11);
  std::vector<uint16_t> keys(n);
  std::vector<uint32_t> oids(n);
  ThreadPool pool(BenchThreads());
  std::vector<SortScratch> scratches(
      static_cast<size_t>(pool.num_threads()));
  for (auto _ : state) {
    keys = master;
    std::iota(oids.begin(), oids.end(), 0);
    ParallelSortPairs16(keys.data(), oids.data(), n, pool, scratches);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelSortPairs16)->Arg(1 << 16)->Arg(1 << 20);

void BM_ParallelSortPairs32(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto master = RandomKeys<uint32_t>(n, 32, 12);
  std::vector<uint32_t> keys(n), oids(n);
  ThreadPool pool(BenchThreads());
  std::vector<SortScratch> scratches(
      static_cast<size_t>(pool.num_threads()));
  for (auto _ : state) {
    keys = master;
    std::iota(oids.begin(), oids.end(), 0);
    ParallelSortPairs32(keys.data(), oids.data(), n, pool, scratches);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelSortPairs32)->Arg(1 << 16)->Arg(1 << 20);

void BM_ParallelSortPairs64(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto master = RandomKeys<uint64_t>(n, 64, 13);
  std::vector<uint64_t> keys(n);
  std::vector<uint32_t> oids(n);
  ThreadPool pool(BenchThreads());
  std::vector<SortScratch> scratches(
      static_cast<size_t>(pool.num_threads()));
  for (auto _ : state) {
    keys = master;
    std::iota(oids.begin(), oids.end(), 0);
    ParallelSortPairs64(keys.data(), oids.data(), n, pool, scratches);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelSortPairs64)->Arg(1 << 16)->Arg(1 << 20);

void BM_Massage(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  EncodedColumn a(17, n), b(33, n);
  for (size_t i = 0; i < n; ++i) {
    a.Set(i, rng.Next() & LowBitsMask(17));
    b.Set(i, rng.Next() & LowBitsMask(33));
  }
  std::vector<MassageInput> inputs = {{&a, SortOrder::kAscending},
                                      {&b, SortOrder::kDescending}};
  const MassagePlan plan = MassagePlan::WithMinimalBanks({18, 32});
  for (auto _ : state) {
    auto out = ApplyMassage(inputs, plan);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Massage)->Arg(1 << 16)->Arg(1 << 20);

void BM_ByteSliceScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int width = static_cast<int>(state.range(1));
  Rng rng(5);
  EncodedColumn col(width, n);
  for (size_t i = 0; i < n; ++i) col.Set(i, rng.Next() & LowBitsMask(width));
  const ByteSliceColumn bs = ByteSliceColumn::Build(col);
  const Code literal = LowBitsMask(width) / 3;
  BitVector result;
  for (auto _ : state) {
    ByteSliceScan(bs, CompareOp::kLess, literal, &result);
    benchmark::DoNotOptimize(result.CountOnes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ByteSliceScan)
    ->Args({1 << 20, 8})
    ->Args({1 << 20, 17})
    ->Args({1 << 20, 33});

void BM_Gather(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  EncodedColumn src(32, n);
  for (size_t i = 0; i < n; ++i) src.Set(i, rng.Next() & 0xFFFFFFFF);
  std::vector<Oid> oids(n);
  std::iota(oids.begin(), oids.end(), 0);
  for (size_t i = n; i > 1; --i) {
    std::swap(oids[i - 1], oids[rng.NextBounded(i)]);
  }
  EncodedColumn out;
  for (auto _ : state) {
    GatherColumn(src, oids.data(), n, &out);
    benchmark::DoNotOptimize(out.raw_data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Gather)->Arg(1 << 16)->Arg(1 << 22);

void BM_ParallelGather(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(16);
  EncodedColumn src(32, n);
  for (size_t i = 0; i < n; ++i) src.Set(i, rng.Next() & 0xFFFFFFFF);
  std::vector<Oid> oids(n);
  std::iota(oids.begin(), oids.end(), 0);
  for (size_t i = n; i > 1; --i) {
    std::swap(oids[i - 1], oids[rng.NextBounded(i)]);
  }
  ThreadPool pool(BenchThreads());
  EncodedColumn out;
  for (auto _ : state) {
    GatherColumn(src, oids.data(), n, &out, &pool);
    benchmark::DoNotOptimize(out.raw_data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelGather)->Arg(1 << 22);

void BM_GroupScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  EncodedColumn keys(20, n);
  // Sorted keys with ~n/64 groups.
  std::vector<uint32_t> values(n);
  for (auto& v : values) v = static_cast<uint32_t>(rng.NextBounded(n / 64));
  std::sort(values.begin(), values.end());
  for (size_t i = 0; i < n; ++i) keys.Set(i, values[i]);
  const Segments whole = Segments::Whole(n);
  Segments out;
  for (auto _ : state) {
    FindGroups(keys, whole, &out);
    benchmark::DoNotOptimize(out.bounds.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_GroupScan)->Arg(1 << 20);

void BM_ParallelGroupScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(17);
  EncodedColumn keys(20, n);
  std::vector<uint32_t> values(n);
  for (auto& v : values) v = static_cast<uint32_t>(rng.NextBounded(n / 64));
  std::sort(values.begin(), values.end());
  for (size_t i = 0; i < n; ++i) keys.Set(i, values[i]);
  const Segments whole = Segments::Whole(n);
  ThreadPool pool(BenchThreads());
  Segments out;
  for (auto _ : state) {
    FindGroups(keys, whole, &out, &pool);
    benchmark::DoNotOptimize(out.bounds.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ParallelGroupScan)->Arg(1 << 20);

}  // namespace
}  // namespace mcsort

BENCHMARK_MAIN();

// Network front-end throughput: an in-process McsortServer on a loopback
// ephemeral port, driven by N concurrent client connections each replaying
// a mixed query workload through the full wire stack (encode -> TCP ->
// epoll -> executor workers -> chunked result streaming -> reassembly).
//
// Reported per connection count (1 / 4 / 16 by default): queries/sec,
// client-side p50/p95/p99 latency, and the error taxonomy (typed BUSY
// rejects are expected once the in-flight cap saturates — that is the
// backpressure working, not a failure). The final section cross-checks the
// server's net.* counters against the client-side tally, so a dropped or
// double-counted frame fails loudly.
//
// Environment knobs: MCSORT_N (rows), MCSORT_REPS (workload replays per
// connection), MCSORT_THREADS (morsel pool), MCSORT_CONNS (single
// connection-count override), MCSORT_EXEC_THREADS (server executor
// workers).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mcsort/common/env.h"
#include "mcsort/common/timer.h"
#include "mcsort/net/client.h"
#include "mcsort/net/server.h"
#include "mcsort/service/query_service.h"

namespace mcsort {
namespace {

Table BenchTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table table;
  EncodedColumn a(6, n), b(11, n), c(19, n), m(10, n);
  for (size_t r = 0; r < n; ++r) {
    a.Set(r, rng.NextBounded(20));
    b.Set(r, rng.NextBounded(500));
    c.Set(r, rng.NextBounded(100000));
    m.Set(r, rng.NextBounded(1000));
  }
  table.AddColumn("a", std::move(a));
  table.AddColumn("b", std::move(b));
  table.AddColumn("c", std::move(c));
  table.AddColumn("m", std::move(m));
  return table;
}

std::vector<QuerySpec> WorkloadSpecs() {
  std::vector<QuerySpec> specs;
  for (Code cut : {Code{30000}, Code{60000}, Code{90000}}) {
    specs.push_back(QuerySpecBuilder()
                        .Filter("c", CompareOp::kLess, cut)
                        .GroupBy({"a", "b"})
                        .Sum("m")
                        .Count()
                        .Build());
  }
  specs.push_back(QuerySpecBuilder()
                      .Filter("c", CompareOp::kLess, 20000)
                      .OrderBy("a")
                      .OrderBy("b", SortOrder::kDescending)
                      .Build());
  specs.push_back(QuerySpecBuilder()
                      .GroupBy({"a"})
                      .Count()
                      .ResultOrder("agg:0", SortOrder::kDescending)
                      .ResultOrder("a")
                      .Build());
  return specs;
}

struct ClientStats {
  std::vector<double> latencies;  // successful queries only
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t busy = 0;
  uint64_t other_error = 0;
  uint64_t transport_error = 0;
};

double PercentileOf(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  const size_t rank = std::min(
      sorted->size() - 1,
      static_cast<size_t>(p / 100.0 * static_cast<double>(sorted->size())));
  return (*sorted)[rank];
}

}  // namespace
}  // namespace mcsort

int main() {
  using namespace mcsort;
  using namespace mcsort::net;

  const size_t n = bench::EnvRows() / 8;
  const int reps = bench::EnvReps() * 4;  // wire queries are cheaper to issue
  const int pool_threads =
      bench::EnvThreads(static_cast<int>(std::thread::hardware_concurrency()));
  const Table table = BenchTable(n, 909);
  const std::vector<QuerySpec> specs = WorkloadSpecs();

  ServiceOptions service_options = ServiceOptions::FromEnv();
  service_options.threads = pool_threads;
  service_options.params = bench::BenchParams();
  service_options.admission.max_inflight = std::max(2, pool_threads);
  QueryService service(service_options);
  service.RegisterTable("bench", table);

  ServerOptions server_options;
  server_options.port = 0;
  server_options.max_connections = 64;
  server_options.exec_threads = static_cast<int>(
      EnvU64("MCSORT_EXEC_THREADS",
             static_cast<uint64_t>(std::max(2, pool_threads / 2))));
  server_options.max_inflight_queries = server_options.exec_threads * 2;
  McsortServer server(&service, server_options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }

  std::printf("Network throughput: %zu rows, %zu-query mix, %d replays/conn, "
              "%d pool threads, %d executor workers, port %u.\n",
              n, specs.size(), reps, pool_threads,
              server_options.exec_threads, server.port());

  std::vector<int> conn_counts = {1, 4, 16};
  const uint64_t env_conns = EnvU64("MCSORT_CONNS", 0);
  if (env_conns > 0) conn_counts = {static_cast<int>(env_conns)};

  uint64_t total_sent = 0;
  bench::Header("loopback query throughput");
  std::printf("%-8s %10s %10s %10s %10s %8s %8s %8s\n", "conns", "q/s",
              "p50 ms", "p95 ms", "p99 ms", "ok", "busy", "err");
  for (const int conns : conn_counts) {
    std::vector<ClientStats> stats(conns);
    std::vector<std::thread> clients;
    clients.reserve(conns);
    Timer wall;
    for (int c = 0; c < conns; ++c) {
      clients.emplace_back([&, c] {
        ClientOptions options;
        options.port = server.port();
        options.io_timeout_seconds = 120;
        options.client_name = "bench-" + std::to_string(c);
        McsortClient client(options);
        if (!client.Connect()) {
          stats[c].transport_error = 1;
          return;
        }
        ClientStats& s = stats[c];
        for (int rep = 0; rep < reps; ++rep) {
          for (size_t i = 0; i < specs.size(); ++i) {
            const QuerySpec& spec = specs[(i + c) % specs.size()];
            Timer timer;
            const RemoteResult result = client.Query(spec);
            ++s.sent;
            if (result.ok()) {
              ++s.ok;
              s.latencies.push_back(timer.Seconds());
            } else if (!result.transport_ok) {
              ++s.transport_error;
              if (!client.Connect()) return;  // reconnect or give up
            } else if (result.error == ErrorCode::kBusy) {
              ++s.busy;  // typed backpressure: back off, retry the same spec
              --i;
              std::this_thread::sleep_for(std::chrono::milliseconds(5));
            } else {
              ++s.other_error;
            }
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double seconds = wall.Seconds();

    ClientStats merged;
    std::vector<double> latencies;
    for (const ClientStats& s : stats) {
      merged.sent += s.sent;
      merged.ok += s.ok;
      merged.busy += s.busy;
      merged.other_error += s.other_error;
      merged.transport_error += s.transport_error;
      latencies.insert(latencies.end(), s.latencies.begin(),
                       s.latencies.end());
    }
    total_sent += merged.sent;
    std::sort(latencies.begin(), latencies.end());
    std::printf("%-8d %10.1f %10.2f %10.2f %10.2f %8llu %8llu %8llu\n",
                conns, seconds > 0 ? merged.ok / seconds : 0,
                PercentileOf(&latencies, 50) * 1e3,
                PercentileOf(&latencies, 95) * 1e3,
                PercentileOf(&latencies, 99) * 1e3,
                static_cast<unsigned long long>(merged.ok),
                static_cast<unsigned long long>(merged.busy),
                static_cast<unsigned long long>(merged.other_error +
                                                merged.transport_error));
  }

  bench::Header("server-side cross-check");
  const std::string metrics = service.DumpMetrics();
  const auto scrape = [&metrics](const char* name) -> long long {
    const std::string key = std::string(name) + " ";
    const size_t pos = metrics.find(key);
    if (pos == std::string::npos) return -1;
    return std::strtoll(metrics.c_str() + pos + key.size(), nullptr, 10);
  };
  const long long server_queries = scrape("net.queries");
  std::printf("client-side queries sent: %llu\n",
              static_cast<unsigned long long>(total_sent));
  std::printf("server-side net.queries:  %lld\n", server_queries);
  std::printf("net.queries_ok:           %lld\n", scrape("net.queries_ok"));
  std::printf("net.busy_rejects:         %lld\n", scrape("net.busy_rejects"));
  std::printf("net.frame_errors:         %lld\n", scrape("net.frame_errors"));
  const bool consistent =
      server_queries == static_cast<long long>(total_sent);
  std::printf("cross-check: %s\n",
              consistent ? "consistent" : "MISMATCH (frames lost?)");

  server.Shutdown();
  return consistent ? 0 : 1;
}

#include "mcsort/service/signature.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace mcsort {
namespace {

// floor(log2(v)) with 0 -> 0; buckets cardinalities so small drift does
// not change the cache key (the fingerprint handles drift within a
// bucket).
int Log2Bucket(uint64_t v) {
  return v == 0 ? 0 : std::bit_width(v) - 1;
}

}  // namespace

uint64_t Fnv1a64(const std::string& text) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

StatsFingerprint FingerprintOf(const ColumnStats& stats) {
  StatsFingerprint fp;
  fp.row_count = stats.row_count();
  fp.distinct_count = stats.distinct_count();
  fp.min_code = stats.min_code();
  fp.max_code = stats.max_code();
  fp.width = stats.width();
  fp.distinct_sketch = stats.DistinctSketch();
  return fp;
}

double FingerprintDrift(const StatsFingerprint& cached,
                        const StatsFingerprint& current) {
  if (cached.width != current.width) return 1.0;
  auto relative = [](uint64_t a, uint64_t b) {
    const double denom = static_cast<double>(std::max<uint64_t>(a, 1));
    const double diff = a > b ? static_cast<double>(a - b)
                              : static_cast<double>(b - a);
    return diff / denom;
  };
  double drift = relative(cached.row_count, current.row_count);
  drift = std::max(drift, relative(cached.distinct_count,
                                   current.distinct_count));
  // A shifted code range changes the histogram shape the plan was costed
  // on; treat it like cardinality drift of the spanned domain.
  if (cached.min_code != current.min_code ||
      cached.max_code != current.max_code) {
    drift = std::max(drift, relative(cached.max_code - cached.min_code + 1,
                                     current.max_code - current.min_code + 1));
  }
  // A changed distinct-distribution sketch can flip the cost-chosen round
  // kernels even at matching totals; push the drift past the staleness
  // threshold so the cached plan is re-searched.
  if (cached.distinct_sketch != current.distinct_sketch) {
    drift = std::max(drift, 0.25);
  }
  return drift;
}

QuerySignature SignatureOf(const Table& table, const QuerySpec& spec,
                           const QueryExecutor::SortAttrs& attrs,
                           uint64_t row_estimate, double rho) {
  std::string text;
  text.reserve(128);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "n~%d|pp%d|rho%g", Log2Bucket(row_estimate),
                attrs.permute_prefix, rho);
  text += buf;
  // Distributed shards: the merge fan-in changes the rho budget (the
  // coordinator-merge cost term inflates T(P*)), so plans found under a
  // different fan-in must not be served from the cache. The pinned column
  // order is already captured by pp (fixed_column_order zeroes it).
  if (spec.merge_fan_in > 0) {
    std::snprintf(buf, sizeof(buf), "|mf%d", spec.merge_fan_in);
    text += buf;
  }
  for (size_t c = 0; c < attrs.names.size(); ++c) {
    const ColumnStats& stats = table.stats(attrs.names[c]);
    std::snprintf(buf, sizeof(buf), "|%s:w%d%c~d%d", attrs.names[c].c_str(),
                  stats.width(),
                  attrs.orders[c] == SortOrder::kAscending ? 'a' : 'd',
                  Log2Bucket(stats.distinct_count()));
    text += buf;
  }
  for (const FilterSpec& filter : spec.filters) {
    if (filter.is_between) {
      std::snprintf(buf, sizeof(buf), "|f:%s[%llu,%llu]",
                    filter.column.c_str(),
                    static_cast<unsigned long long>(filter.literal),
                    static_cast<unsigned long long>(filter.literal2));
    } else {
      std::snprintf(buf, sizeof(buf), "|f:%s.%d.%llu", filter.column.c_str(),
                    static_cast<int>(filter.op),
                    static_cast<unsigned long long>(filter.literal));
    }
    text += buf;
  }
  QuerySignature signature;
  signature.text = std::move(text);
  signature.hash = Fnv1a64(signature.text);
  return signature;
}

std::vector<StatsFingerprint> FingerprintsOf(
    const Table& table, const QueryExecutor::SortAttrs& attrs) {
  std::vector<StatsFingerprint> fingerprints;
  fingerprints.reserve(attrs.names.size());
  for (const std::string& name : attrs.names) {
    fingerprints.push_back(FingerprintOf(table.stats(name)));
  }
  return fingerprints;
}

}  // namespace mcsort

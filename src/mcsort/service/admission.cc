#include "mcsort/service/admission.h"

#include <algorithm>
#include <utility>

#include "mcsort/common/logging.h"
#include "mcsort/common/timer.h"

namespace mcsort {

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  MCSORT_CHECK(options_.max_inflight >= 1);
}

AdmissionController::Ticket& AdmissionController::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = std::exchange(other.controller_, nullptr);
    bytes_ = other.bytes_;
    wait_seconds_ = other.wait_seconds_;
  }
  return *this;
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->Release(bytes_);
    controller_ = nullptr;
  }
}

AdmissionController::Ticket AdmissionController::Admit(
    size_t estimated_bytes) {
  Timer timer;
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t my_turn = next_ticket_++;
  ++queue_depth_;
  peak_queue_depth_ = std::max(peak_queue_depth_, queue_depth_);
  cv_.wait(lock, [&] {
    // FIFO: strictly admit in arrival order, once a slot and (soft)
    // budget are free. A query bigger than the whole budget is admitted
    // when it is alone, so it cannot starve.
    if (my_turn != serving_ticket_) return false;
    if (inflight_ >= options_.max_inflight) return false;
    if (options_.memory_budget_bytes > 0 && inflight_ > 0 &&
        inflight_bytes_ + estimated_bytes > options_.memory_budget_bytes) {
      return false;
    }
    return true;
  });
  ++serving_ticket_;
  --queue_depth_;
  ++inflight_;
  inflight_bytes_ += estimated_bytes;
  peak_inflight_ = std::max(peak_inflight_, inflight_);
  ++admitted_total_;
  lock.unlock();
  // Wake the next-in-line waiter (it may also be runnable now).
  cv_.notify_all();

  Ticket ticket;
  ticket.controller_ = this;
  ticket.bytes_ = estimated_bytes;
  ticket.wait_seconds_ = timer.Seconds();
  return ticket;
}

void AdmissionController::Release(size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    inflight_bytes_ -= bytes;
  }
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.inflight = inflight_;
  stats.inflight_bytes = inflight_bytes_;
  stats.queue_depth = queue_depth_;
  stats.peak_inflight = peak_inflight_;
  stats.peak_queue_depth = peak_queue_depth_;
  stats.admitted_total = admitted_total_;
  return stats;
}

}  // namespace mcsort

#include "mcsort/service/admission.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "mcsort/common/logging.h"
#include "mcsort/common/timer.h"

namespace mcsort {

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  MCSORT_CHECK(options_.max_inflight >= 1);
}

AdmissionController::Ticket& AdmissionController::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = std::exchange(other.controller_, nullptr);
    bytes_ = other.bytes_;
    wait_seconds_ = other.wait_seconds_;
    status_ = other.status_;
  }
  return *this;
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->Release(bytes_);
    controller_ = nullptr;
  }
}

AdmissionController::Ticket AdmissionController::Admit(
    size_t estimated_bytes, const ExecContext& ctx) {
  Timer timer;
  const bool stoppable = ctx.stoppable();
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t my_turn = next_ticket_++;
  waiting_.insert(my_turn);
  peak_queue_depth_ =
      std::max(peak_queue_depth_, static_cast<int>(waiting_.size()));
  const auto runnable = [&] {
    // FIFO: only the oldest waiter is admitted, once a slot and (soft)
    // budget are free. A query bigger than the whole budget is admitted
    // when it is alone, so it cannot starve.
    if (*waiting_.begin() != my_turn) return false;
    if (inflight_ >= options_.max_inflight) return false;
    if (options_.memory_budget_bytes > 0 && inflight_ > 0 &&
        inflight_bytes_ + estimated_bytes > options_.memory_budget_bytes) {
      return false;
    }
    return true;
  };
  while (!runnable()) {
    if (stoppable) {
      const ExecCode code = ctx.StopCheck();
      if (code != ExecCode::kOk) {
        // Abandon: drop out of the wait set so headship passes to the
        // next arrival, and report the stop instead of a slot.
        waiting_.erase(my_turn);
        ++abandoned_total_;
        lock.unlock();
        cv_.notify_all();
        Ticket ticket;
        ticket.status_ = ExecStatus::FromCode(code);
        ticket.wait_seconds_ = timer.Seconds();
        return ticket;
      }
      // Bounded naps instead of an open-ended wait: the stop flag has no
      // condition variable hooked to it, so abandon latency is one nap.
      cv_.wait_for(lock, std::chrono::milliseconds(1));
    } else {
      cv_.wait(lock);
    }
  }
  waiting_.erase(my_turn);
  ++inflight_;
  inflight_bytes_ += estimated_bytes;
  peak_inflight_ = std::max(peak_inflight_, inflight_);
  ++admitted_total_;
  lock.unlock();
  // Wake the next-in-line waiter (it may also be runnable now).
  cv_.notify_all();

  Ticket ticket;
  ticket.controller_ = this;
  ticket.bytes_ = estimated_bytes;
  ticket.wait_seconds_ = timer.Seconds();
  return ticket;
}

void AdmissionController::Release(size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    inflight_bytes_ -= bytes;
  }
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.inflight = inflight_;
  stats.inflight_bytes = inflight_bytes_;
  stats.queue_depth = static_cast<int>(waiting_.size());
  stats.peak_inflight = peak_inflight_;
  stats.peak_queue_depth = peak_queue_depth_;
  stats.admitted_total = admitted_total_;
  stats.abandoned_total = abandoned_total_;
  return stats;
}

}  // namespace mcsort

// MetricsRegistry — named counters and latency histograms for the query
// service, cheap enough to update on every query from every session
// (atomics only on the hot path; registration takes a lock once per name).
//
// Histograms are geometric (4 buckets per octave over nanoseconds), so
// p50/p99 come back within ~19% relative error across twelve decades —
// plenty for "did the plan cache move p99" questions. The text dump is the
// scrape hook used by benches and tests.
#ifndef MCSORT_SERVICE_METRICS_H_
#define MCSORT_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace mcsort {

class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Records double samples >= 0 (typically seconds). Fixed bucket layout:
// bucket i covers [2^(i/4), 2^((i+1)/4)) nanoseconds; i.e. four buckets
// per power of two, 192 buckets spanning 1 ns .. ~2.8e5 s.
class Histogram {
 public:
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kNumBuckets = 192;

  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double max() const;
  // Percentile in the recorded unit (p in [0, 100]); the geometric
  // midpoint of the bucket holding the target rank. 0 when empty.
  double Percentile(double p) const;

 private:
  static int BucketOf(double value);
  static double BucketMid(int bucket);

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
  std::atomic<uint64_t> max_nanos_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the counter/histogram registered under `name`, creating it on
  // first use. Returned pointers are stable for the registry's lifetime.
  Counter* counter(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Text dump, one metric per line, names sorted:
  //   <name> <value>
  //   <name> count=<n> p50=<s> p99=<s> max=<s> sum=<s>
  std::string Dump() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mcsort

#endif  // MCSORT_SERVICE_METRICS_H_

#include "mcsort/service/plan_cache.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <utility>

#include "mcsort/common/logging.h"

namespace mcsort {

PlanCache::PlanCache(const PlanCacheOptions& options) : options_(options) {
  options_.capacity = std::max<size_t>(options_.capacity, 1);
  const int shard_count = static_cast<int>(std::bit_ceil(
      static_cast<unsigned>(std::max(options_.shards, 1))));
  options_.shards = shard_count;
  per_shard_capacity_ = std::max<size_t>(
      (options_.capacity + static_cast<size_t>(shard_count) - 1) /
          static_cast<size_t>(shard_count),
      1);
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(const QuerySignature& signature) {
  // The low bits of FNV-1a are well mixed; shards is a power of two.
  return *shards_[signature.hash &
                  (static_cast<uint64_t>(options_.shards) - 1)];
}

PlanCache::Outcome PlanCache::Lookup(
    const QuerySignature& signature,
    const std::vector<StatsFingerprint>& current, CachedPlan* out) {
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(signature.text);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Outcome::kMiss;
  }
  CachedPlan& cached = it->second->second;
  // Revalidate: any sort column drifting past the threshold stales the
  // plan. A fingerprint-count mismatch means the signature collided across
  // incompatible shapes — treat as stale.
  bool fresh = cached.fingerprints.size() == current.size();
  if (fresh) {
    for (size_t c = 0; c < current.size(); ++c) {
      if (FingerprintDrift(cached.fingerprints[c], current[c]) >
          options_.drift_threshold) {
        fresh = false;
        break;
      }
    }
  }
  if (!fresh) {
    if (out != nullptr) *out = std::move(cached);
    shard.lru.erase(it->second);
    shard.index.erase(it);
    stale_hits_.fetch_add(1, std::memory_order_relaxed);
    return Outcome::kStaleHit;
  }
  if (out != nullptr) *out = cached;
  // Move to the front of the LRU list.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return Outcome::kHit;
}

void PlanCache::Insert(const QuerySignature& signature, CachedPlan plan) {
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(signature.text);
  if (it != shard.index.end()) {
    it->second->second = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.lru.emplace_front(signature.text, std::move(plan));
  shard.index.emplace(signature.text, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.stale_hits = stale_hits_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->index.size();
  }
  return stats;
}

}  // namespace mcsort

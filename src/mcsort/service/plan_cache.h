// PlanCache — memoizes ROGA massage plans across repeated query
// instances, so a served workload pays plan search once per distinct query
// shape instead of once per execution (the optimizer must never become the
// bottleneck; amortizing it to ~zero is even better).
//
// Sharded: the signature hash picks a shard, each shard is an
// independently locked LRU map, so concurrent sessions rarely contend.
// Entries carry the statistics fingerprints they were planned against;
// a lookup revalidates them and *invalidates* the entry once the table's
// statistics have drifted past `drift_threshold` — the caller gets the
// stale plan back as a warm start for the re-search.
#ifndef MCSORT_SERVICE_PLAN_CACHE_H_
#define MCSORT_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mcsort/massage/plan.h"
#include "mcsort/service/signature.h"

namespace mcsort {

// One memoized plan: everything needed to skip the search (plan + column
// order) plus the statistics snapshot it was derived from.
struct CachedPlan {
  MassagePlan plan;
  std::vector<int> column_order;
  std::vector<StatsFingerprint> fingerprints;
};

struct PlanCacheOptions {
  // Total entries across all shards (>= 1). LRU-evicted per shard.
  size_t capacity = 1024;
  // Shard count, rounded up to a power of two (>= 1).
  int shards = 8;
  // Relative statistics drift beyond which a cached plan is invalidated
  // (FingerprintDrift of any sort column). 20% cardinality movement
  // changes group-shape estimates enough to warrant a re-search.
  double drift_threshold = 0.2;
};

class PlanCache {
 public:
  enum class Outcome {
    kHit,          // fresh entry returned; skip the search
    kStaleHit,     // drifted entry returned (and erased); warm-start the search
    kMiss,         // nothing cached; cold search
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale_hits = 0;   // invalidations triggered by drift
    uint64_t evictions = 0;    // LRU capacity evictions
    uint64_t insertions = 0;
    size_t entries = 0;        // current size across shards
    double hit_rate() const {
      const uint64_t lookups = hits + misses + stale_hits;
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  explicit PlanCache(const PlanCacheOptions& options = {});

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Looks `signature` up and revalidates against `current` fingerprints.
  // kHit / kStaleHit fill *out; kStaleHit additionally erases the entry
  // (its plan is returned for warm starting).
  Outcome Lookup(const QuerySignature& signature,
                 const std::vector<StatsFingerprint>& current,
                 CachedPlan* out);

  // Inserts (or replaces) the plan for `signature`, evicting the shard's
  // least-recently-used entry beyond capacity.
  void Insert(const QuerySignature& signature, CachedPlan plan);

  void Clear();

  Stats GetStats() const;
  const PlanCacheOptions& options() const { return options_; }

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used. The list owns the entries; the map
    // points into it.
    std::list<std::pair<std::string, CachedPlan>> lru;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, CachedPlan>>::iterator>
        index;
  };

  Shard& ShardFor(const QuerySignature& signature);

  PlanCacheOptions options_;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> stale_hits_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
};

}  // namespace mcsort

#endif  // MCSORT_SERVICE_PLAN_CACHE_H_

#include "mcsort/service/query_service.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "mcsort/common/bits.h"
#include "mcsort/common/env.h"
#include "mcsort/common/timer.h"
#include "mcsort/cost/calibration.h"
#include "mcsort/service/signature.h"

namespace mcsort {

ServiceOptions ServiceOptions::FromEnv() {
  ServiceOptions options;
  options.rho = RhoFromEnv(options.rho);
  options.threads =
      static_cast<int>(EnvU64("MCSORT_THREADS",
                              static_cast<uint64_t>(options.threads)));
  return options;
}

QuerySession::QuerySession(QueryService* service, const Table& table,
                           uint64_t id, const ExecutorOptions& options)
    : service_(service), table_(&table), executor_(table, options), id_(id) {}

ExecResult QuerySession::Execute(const QuerySpec& spec,
                                 const ExecContext& ctx) {
  return service_->ExecuteOn(this, spec, ctx);
}

size_t EstimateScratchBytes(const Table& table,
                            const QueryExecutor::SortAttrs& attrs) {
  const size_t n = table.row_count();
  // Two oid arrays (the permutation plus sort scratch) ...
  size_t per_row = 2 * sizeof(Oid);
  for (const std::string& name : attrs.names) {
    // ... plus, per sort attribute, the gathered column and its round-key
    // storage (massage output is at most one bank per attribute here; the
    // estimate is soft by design).
    per_row += 2 * static_cast<size_t>(SizeOfWidth(table.column(name).width()));
  }
  return n * per_row;
}

QueryService::QueryService(const ServiceOptions& options)
    : options_(options),
      params_(options.use_calibration ? SharedCostModel().params()
                                      : options.params),
      pool_(std::make_unique<ThreadPool>(std::max(1, options.threads))),
      plan_cache_(options.plan_cache),
      admission_(options.admission) {}

std::unique_ptr<QuerySession> QueryService::OpenSession(const Table& table) {
  ExecutorOptions exec;
  exec.use_massage = options_.use_massage;
  exec.rho = options_.rho;
  exec.min_budget_seconds = options_.min_budget_seconds;
  exec.pool = pool_.get();
  exec.params = params_;
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  metrics_.counter("service.sessions_opened")->Increment();
  return std::unique_ptr<QuerySession>(
      new QuerySession(this, table, id, exec));
}

void QueryService::RegisterTable(const std::string& name,
                                 const Table& table) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  for (auto& [existing, entry] : tables_) {
    if (existing == name) {
      entry = &table;
      return;
    }
  }
  tables_.emplace_back(name, &table);
}

const Table* QueryService::FindTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  if (tables_.empty()) return nullptr;
  if (name.empty()) return tables_.front().second;
  for (const auto& [existing, table] : tables_) {
    if (existing == name) return table;
  }
  return nullptr;
}

std::vector<std::string> QueryService::ListTables() const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

ExecResult QueryService::ExecuteOn(QuerySession* session,
                                   const QuerySpec& spec,
                                   const ExecContext& ctx) {
  metrics_.counter("service.queries_submitted")->Increment();
  const Table& table = session->table();
  const QueryExecutor::SortAttrs attrs =
      session->executor_.ResolveSortAttrs(spec);

  // Admission: bounded in-flight queries + soft scratch-memory budget.
  // The RAII ticket releases the slot on every exit from this function —
  // ok, cancelled, degraded, or unwinding — never by explicit calls an
  // error path could miss.
  AdmissionController::Ticket ticket =
      admission_.Admit(EstimateScratchBytes(table, attrs), ctx);
  metrics_.histogram("admission.wait_seconds")->Record(ticket.wait_seconds());
  if (!ticket.admitted()) {
    metrics_.counter(std::string("exec.") + ticket.status().name())
        ->Increment();
    ExecResult out;
    out.status = ticket.status();
    return out;
  }

  Timer timer;
  ExecResult out;
  session->last_plan_cached_ = false;
  if (options_.use_massage) {
    const QuerySignature signature =
        SignatureOf(table, spec, attrs, table.row_count(), options_.rho);
    std::vector<StatsFingerprint> current = FingerprintsOf(table, attrs);
    CachedPlan cached;
    const PlanCache::Outcome outcome =
        plan_cache_.Lookup(signature, current, &cached);
    PlanHint hint;
    if (outcome == PlanCache::Outcome::kHit) {
      hint.plan = &cached.plan;
      hint.column_order = &cached.column_order;
      session->last_plan_cached_ = true;
    } else if (outcome == PlanCache::Outcome::kStaleHit) {
      // Statistics drifted past the threshold: re-search, but seed P*
      // with the stale plan so the rho budget is anchored immediately.
      hint.warm_start = &cached.plan;
      hint.warm_start_order = &cached.column_order;
    }
    ExecContext exec_ctx = ctx;  // copies share the flag / fault cell
    exec_ctx.WithHint(&hint);
    out = session->executor_.Execute(spec, exec_ctx);
    // Memoize fresh searches (the zero-row early return never plans).
    // Never cache failed or degraded executions: a stopped search's
    // best-so-far plan and a bank-capped plan are both wrong answers for
    // the next, unconstrained instance of this signature.
    if (outcome != PlanCache::Outcome::kHit && out.ok() &&
        !out.result.degraded && out.result.filtered_rows > 0) {
      CachedPlan fresh;
      fresh.plan = out.result.plan;
      fresh.column_order = out.result.column_order;
      fresh.fingerprints = std::move(current);
      plan_cache_.Insert(signature, std::move(fresh));
    }
  } else {
    out = session->executor_.Execute(spec, ctx);
  }
  QueryResult& result = out.result;

  // Outcome accounting: exec.ok / exec.cancelled / exec.deadline_exceeded
  // / exec.resource_exhausted, plus degradations absorbed along the way.
  metrics_.counter(std::string("exec.") + out.status.name())->Increment();
  if (result.degraded) metrics_.counter("exec.degraded")->Increment();
  if (!out.ok()) {
    metrics_.histogram("exec.failed_seconds")->Record(timer.Seconds());
    return out;
  }

  metrics_.counter("service.queries_served")->Increment();
  metrics_.counter("service.rows_input")->Add(result.input_rows);
  metrics_.counter("service.rows_sorted")->Add(result.filtered_rows);
  metrics_.counter("service.groups_produced")->Add(result.num_groups);
  metrics_.histogram("query.total_seconds")->Record(timer.Seconds());
  metrics_.histogram("query.scan_seconds")->Record(result.scan_seconds);
  metrics_.histogram("query.materialize_seconds")
      ->Record(result.materialize_seconds);
  metrics_.histogram("query.plan_seconds")->Record(result.plan_seconds);
  metrics_.histogram("query.mcs_seconds")->Record(result.mcs_seconds);
  metrics_.histogram("query.post_seconds")->Record(result.post_seconds);
  // Morsel-driven parallelism, surfaced from the sort's RoundProfiles.
  uint64_t sort_morsels = 0, lookup_morsels = 0, scan_chunks = 0;
  uint64_t cooperative = 0;
  for (const RoundProfile& round : result.sort_profile.rounds) {
    sort_morsels += round.sort_morsels;
    lookup_morsels += round.lookup_morsels;
    scan_chunks += round.scan_chunks;
    cooperative += round.cooperative_sorts;
  }
  metrics_.counter("morsels.sort")->Add(sort_morsels);
  metrics_.counter("morsels.lookup")->Add(lookup_morsels);
  metrics_.counter("morsels.scan")->Add(scan_chunks);
  metrics_.counter("morsels.cooperative_sorts")->Add(cooperative);
  return out;
}

std::string QueryService::DumpMetrics() {
  std::string out = metrics_.Dump();
  char line[160];
  const PlanCache::Stats cache = plan_cache_.GetStats();
  std::snprintf(line, sizeof(line),
                "plan_cache.hits %llu\nplan_cache.misses %llu\n"
                "plan_cache.stale_hits %llu\nplan_cache.evictions %llu\n"
                "plan_cache.entries %zu\nplan_cache.hit_rate %.4f\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.stale_hits),
                static_cast<unsigned long long>(cache.evictions),
                cache.entries, cache.hit_rate());
  out += line;
  const AdmissionController::Stats admission = admission_.GetStats();
  std::snprintf(line, sizeof(line),
                "admission.admitted_total %llu\n"
                "admission.abandoned_total %llu\n"
                "admission.peak_inflight %d\n"
                "admission.peak_queue_depth %d\n"
                "admission.queue_depth %d\n",
                static_cast<unsigned long long>(admission.admitted_total),
                static_cast<unsigned long long>(admission.abandoned_total),
                admission.peak_inflight, admission.peak_queue_depth,
                admission.queue_depth);
  out += line;
  return out;
}

}  // namespace mcsort

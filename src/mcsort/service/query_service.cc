#include "mcsort/service/query_service.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "mcsort/common/bits.h"
#include "mcsort/common/options.h"
#include "mcsort/common/timer.h"
#include "mcsort/cost/calibration.h"
#include "mcsort/io/fs_util.h"
#include "mcsort/io/snapshot.h"
#include "mcsort/service/signature.h"

namespace mcsort {

ServiceOptions ServiceOptions::FromEnv() {
  // Delegate to the typed process config (common/options.h) — one parser
  // for the MCSORT_RHO / MCSORT_THREADS spellings.
  const ExecOptions env = ExecOptions::FromEnv();
  ServiceOptions options;
  options.rho = env.rho;
  options.threads = env.threads;
  options.spill.enabled = env.spill_enabled;
  options.spill.dir = env.spill_dir;
  options.spill.prefetch = env.spill_prefetch;
  return options;
}

QuerySession::QuerySession(QueryService* service, const Table& table,
                           uint64_t id, const ExecutorOptions& options)
    : service_(service), table_(&table), executor_(table, options), id_(id) {}

ExecResult QuerySession::Execute(const QuerySpec& spec,
                                 const ExecContext& ctx) {
  return service_->ExecuteOn(this, spec, ctx);
}

size_t EstimateScratchBytes(const Table& table,
                            const QueryExecutor::SortAttrs& attrs) {
  const size_t n = table.row_count();
  // Two oid arrays (the permutation plus sort scratch) ...
  size_t per_row = 2 * sizeof(Oid);
  for (const std::string& name : attrs.names) {
    // ... plus, per sort attribute, the gathered column and its round-key
    // storage (massage output is at most one bank per attribute here; the
    // estimate is soft by design).
    per_row += 2 * static_cast<size_t>(SizeOfWidth(table.column(name).width()));
  }
  return n * per_row;
}

QueryService::QueryService(const ServiceOptions& options)
    : options_(options),
      params_(options.use_calibration ? SharedCostModel().params()
                                      : options.params),
      pool_(std::make_unique<ThreadPool>(std::max(1, options.threads))),
      plan_cache_(options.plan_cache),
      admission_(options.admission) {
  // Spill-dir hygiene: crash leftovers from interrupted run writers are
  // `*.tmp` files (finished runs are `*.mcr`). Construction precedes any
  // query of ours; concurrent *other* processes are protected only by the
  // pid-qualified run names, so the sweep targets `.tmp` files only.
  if (options_.spill.enabled && !options_.spill.dir.empty()) {
    CleanupTempFiles(options_.spill.dir);
  }
}

std::unique_ptr<QuerySession> QueryService::OpenSession(const Table& table) {
  ExecutorOptions exec;
  exec.use_massage = options_.use_massage;
  exec.rho = options_.rho;
  exec.min_budget_seconds = options_.min_budget_seconds;
  exec.pool = pool_.get();
  exec.params = params_;
  exec.spill = options_.spill;
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  metrics_.counter("service.sessions_opened")->Increment();
  return std::unique_ptr<QuerySession>(
      new QuerySession(this, table, id, exec));
}

QueryService::Binding* QueryService::FindBindingLocked(
    const std::string& name) {
  if (tables_.empty()) return nullptr;
  if (name.empty()) return &tables_.front();
  for (auto& binding : tables_) {
    if (binding.name == name) return &binding;
  }
  return nullptr;
}

QueryService::Binding& QueryService::UpsertBindingLocked(
    const std::string& name) {
  for (auto& binding : tables_) {
    if (binding.name == name) return binding;
  }
  tables_.emplace_back();
  tables_.back().name = name;
  return tables_.back();
}

void QueryService::RegisterTable(const std::string& name,
                                 const Table& table) {
  std::lock_guard<std::mutex> lock(tables_mu_);
  Binding& binding = UpsertBindingLocked(name);
  binding.borrowed = &table;
  binding.owned.reset();
}

void QueryService::AdoptTable(const std::string& name, Table table) {
  auto owned = std::make_shared<Table>(std::move(table));
  std::lock_guard<std::mutex> lock(tables_mu_);
  Binding& binding = UpsertBindingLocked(name);
  binding.borrowed = nullptr;
  binding.owned = std::move(owned);
  binding.last_use = ++use_clock_;
  EvictOverBudgetLocked();
}

void QueryService::SetCatalog(const CatalogOptions& options) {
  const std::vector<std::string> on_disk = ListSnapshotTables(options.dir);
  // Orphan hygiene: an interrupted snapshot writer leaves `*.tmp` files
  // behind (the atomic-rename discipline guarantees finished artifacts are
  // never named that). Attach time is the one moment no writer can be
  // concurrent with us, so sweep the root and every snapshot directory.
  size_t orphans = CleanupTempFiles(options.dir);
  for (const std::string& name : on_disk) {
    orphans += CleanupTempFiles(options.dir + "/" + name);
  }
  std::lock_guard<std::mutex> lock(tables_mu_);
  catalog_ = options;
  has_catalog_ = !options.dir.empty();
  for (const std::string& name : on_disk) {
    UpsertBindingLocked(name).on_disk = true;
  }
  metrics_.counter("catalog.tables_on_disk")->Add(on_disk.size());
  metrics_.counter("catalog.tmp_orphans_removed")->Add(orphans);
}

std::shared_ptr<const Table> QueryService::FindTableShared(
    const std::string& name) {
  std::string resolved;
  std::shared_ptr<delta::TableVersion> version;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    Binding* binding = FindBindingLocked(name);
    if (binding == nullptr) return nullptr;
    binding->last_use = ++use_clock_;
    // A written table resolves through its version: Snapshot() merges the
    // live delta (outside tables_mu_ — the build can be heavy).
    if (binding->version != nullptr) {
      version = binding->version;
    } else if (binding->owned != nullptr) {
      return binding->owned;
    }
    if (version == nullptr) {
      if (binding->borrowed != nullptr) {
        // Borrowed tables are caller-managed; alias them with a no-op
        // deleter so every lookup path returns the same handle type.
        return std::shared_ptr<const Table>(binding->borrowed,
                                            [](const Table*) {});
      }
      if (!binding->on_disk || !has_catalog_) return nullptr;
      resolved = binding->name;
    }
  }
  if (version != nullptr) return version->Snapshot();
  // Unloaded on-disk table: load outside tables_mu_ (concurrent resident
  // lookups keep flowing), serialized by load_mu_ so a thundering herd on
  // one table does a single load.
  std::lock_guard<std::mutex> load_lock(load_mu_);
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    Binding* binding = FindBindingLocked(resolved);
    if (binding != nullptr && binding->owned != nullptr) {
      return binding->owned;  // another loader won the race
    }
  }
  if (!LoadTable(resolved).ok()) return nullptr;
  std::lock_guard<std::mutex> lock(tables_mu_);
  Binding* binding = FindBindingLocked(resolved);
  return binding != nullptr ? binding->owned : nullptr;
}

const Table* QueryService::FindTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  auto* self = const_cast<QueryService*>(this);
  const Binding* binding = self->FindBindingLocked(name);
  return binding != nullptr ? binding->resident() : nullptr;
}

std::vector<std::string> QueryService::ListTables() const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& binding : tables_) names.push_back(binding.name);
  std::sort(names.begin(), names.end());
  return names;
}

std::string QueryService::DefaultTableName() const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  return tables_.empty() ? std::string() : tables_.front().name;
}

Status QueryService::SaveTable(const std::string& name) {
  std::string dir;
  std::shared_ptr<const Table> table;
  std::shared_ptr<delta::TableVersion> version;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    if (!has_catalog_) {
      return Status::FailedPrecondition("no catalog directory");
    }
    Binding* binding = FindBindingLocked(name);
    if (binding == nullptr || binding->resident() == nullptr) {
      return Status::NotFound("unknown or unloaded table '" + name + "'");
    }
    if (binding->name.find('/') != std::string::npos) {
      return Status::InvalidArgument("bad table name");
    }
    dir = catalog_.dir + "/" + binding->name;
    version = binding->version;
    table = binding->owned != nullptr
                ? binding->owned
                : std::shared_ptr<const Table>(binding->borrowed,
                                               [](const Table*) {});
  }
  // Snapshot outside the lock: saves are long and tables are immutable. A
  // written table saves its merged image, so the snapshot never loses
  // un-compacted rows.
  if (version != nullptr) table = version->Snapshot();
  const IoStatus st = SaveTableSnapshot(*table, dir);
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(tables_mu_);
    Binding* binding = FindBindingLocked(name);
    if (binding != nullptr) binding->on_disk = true;
    metrics_.counter("catalog.saves")->Increment();
  }
  return st.ToStatus();
}

Status QueryService::LoadTable(const std::string& name) {
  std::string dir;
  SnapshotLoadOptions load;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    if (!has_catalog_) {
      return Status::FailedPrecondition("no catalog directory");
    }
    if (name.empty() || name.find('/') != std::string::npos) {
      return Status::InvalidArgument("bad table name");
    }
    dir = catalog_.dir + "/" + name;
    load = catalog_.load;
  }
  auto loaded = std::make_shared<Table>();
  const IoStatus st = LoadTableSnapshot(dir, load, loaded.get());
  if (!st.ok()) {
    metrics_.counter("catalog.load_failures")->Increment();
    return st.ToStatus();
  }
  std::lock_guard<std::mutex> lock(tables_mu_);
  Binding& binding = UpsertBindingLocked(name);
  binding.borrowed = nullptr;
  binding.owned = std::move(loaded);
  binding.on_disk = true;
  binding.last_use = ++use_clock_;
  // A written table adopts the loaded snapshot as its new base; the delta
  // is dropped — the on-disk image supersedes it (LOAD is a restore).
  if (binding.version != nullptr) {
    binding.version->ReplaceBase(binding.owned, /*clear_delta=*/true);
  }
  metrics_.counter("catalog.loads")->Increment();
  EvictOverBudgetLocked();
  return Status::Ok();
}

uint64_t QueryService::ResidentOwnedBytesLocked() const {
  uint64_t total = 0;
  for (const auto& binding : tables_) {
    if (binding.owned != nullptr) total += binding.owned->MemoryBytes();
  }
  return total;
}

void QueryService::EvictOverBudgetLocked() {
  if (!has_catalog_ || catalog_.memory_budget_bytes == 0) return;
  while (ResidentOwnedBytesLocked() > catalog_.memory_budget_bytes) {
    // Evict the least-recently-used owned table that is reloadable (has a
    // snapshot) and not in use outside the catalog. Sessions holding the
    // shared_ptr keep their table alive; only the catalog reference drops.
    Binding* victim = nullptr;
    for (auto& binding : tables_) {
      if (binding.owned == nullptr || !binding.on_disk) continue;
      // A written table is never evicted: its delta references the base's
      // oids, and a reload would silently fork the version's base.
      if (binding.version != nullptr) continue;
      if (binding.owned.use_count() > 1) continue;
      if (victim == nullptr || binding.last_use < victim->last_use) {
        victim = &binding;
      }
    }
    if (victim == nullptr) return;  // nothing evictable; over budget stays
    victim->owned.reset();
    metrics_.counter("catalog.evictions")->Increment();
  }
}

std::shared_ptr<delta::TableVersion> QueryService::GetOrCreateVersion(
    const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    Binding* binding = FindBindingLocked(name);
    if (binding != nullptr && binding->version != nullptr) {
      return binding->version;
    }
  }
  // Make the table resident (loads an on-disk snapshot if needed), then
  // hang the version off the binding.
  if (FindTableShared(name) == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(tables_mu_);
  Binding* binding = FindBindingLocked(name);
  if (binding == nullptr) return nullptr;
  if (binding->version != nullptr) return binding->version;
  std::shared_ptr<const Table> base =
      binding->owned != nullptr
          ? binding->owned
          : (binding->borrowed != nullptr
                 ? std::shared_ptr<const Table>(binding->borrowed,
                                                [](const Table*) {})
                 : nullptr);
  if (base == nullptr) return nullptr;
  binding->version = std::make_shared<delta::TableVersion>(std::move(base));
  metrics_.counter("delta.versions_created")->Increment();
  return binding->version;
}

delta::DmlOutcome QueryService::ApplyDml(const delta::DmlCommand& cmd) {
  delta::DmlOutcome out;
  std::shared_ptr<delta::TableVersion> version = GetOrCreateVersion(cmd.table);
  if (version == nullptr) {
    out.status = Status::NotFound("unknown table '" + cmd.table + "'");
    return out;
  }
  out = version->Apply(cmd);
  const std::string op = delta::DmlOpName(cmd.op);
  metrics_.counter("delta." + op + ".commands")->Increment();
  metrics_.counter("delta." + op + ".rows")->Add(out.rows_affected);
  if (out.rows_rejected > 0) {
    metrics_.counter("delta.rows_rejected")->Add(out.rows_rejected);
  }
  return out;
}

bool QueryService::CompactTable(const std::string& name) {
  std::shared_ptr<delta::TableVersion> version;
  std::string dir;
  bool save = false;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    Binding* binding = FindBindingLocked(name);
    if (binding == nullptr || binding->version == nullptr) return false;
    version = binding->version;
    if (has_catalog_ && binding->name.find('/') == std::string::npos) {
      dir = catalog_.dir + "/" + binding->name;
      save = true;
    }
  }
  delta::TableVersion::CompactionJob job = version->BeginCompaction();
  if (job.snap.empty()) return false;  // nothing to fold in

  // Heavy phase, no locks held: re-encode, then persist through the same
  // tmp+rename commit point snapshots use — a crash mid-save leaves the
  // previous snapshot intact and only *.tmp residue, which startup sweeps.
  Timer timer;
  delta::MergedTable merged = delta::BuildMergedTable(*job.base, job.snap);
  const uint64_t merged_rows = merged.table->row_count();
  if (save) {
    const IoStatus st = SaveTableSnapshot(*merged.table, dir);
    if (!st.ok()) {
      // Publish in memory anyway: durability degraded, not correctness.
      metrics_.counter("compaction.save_failures")->Increment();
      save = false;
    }
  }
  if (!version->Publish(job, std::move(merged))) {
    metrics_.counter("compaction.aborted")->Increment();
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    Binding* binding = FindBindingLocked(name);
    if (binding != nullptr && binding->version == version) {
      binding->owned = version->base();
      binding->borrowed = nullptr;
      if (save) binding->on_disk = true;
    }
  }
  metrics_.counter("compaction.published")->Increment();
  metrics_.counter("compaction.rows_folded")
      ->Add(job.snap.rows.size() + job.snap.base_tombstones.size());
  metrics_.counter("compaction.base_rows")->Add(merged_rows);
  metrics_.histogram("compaction.seconds")->Record(timer.Seconds());
  return true;
}

void QueryService::EnableCompaction(const delta::CompactionOptions& options) {
  if (compactor_ != nullptr) return;
  delta::Compactor::Hooks hooks;
  const uint64_t min_pending = std::max<uint64_t>(1, options.min_delta_rows);
  hooks.list_tables = [this, min_pending] {
    std::vector<std::string> due;
    std::lock_guard<std::mutex> lock(tables_mu_);
    for (const auto& binding : tables_) {
      if (binding.version != nullptr &&
          binding.version->pending_mutations() >= min_pending) {
        due.push_back(binding.name);
      }
    }
    return due;
  };
  hooks.compact = [this](const std::string& name) {
    return CompactTable(name);
  };
  compactor_ =
      std::make_unique<delta::Compactor>(options, std::move(hooks));
  compactor_->Start();
}

void QueryService::StopCompactor() {
  if (compactor_ != nullptr) compactor_->Stop();
}

QueryService::DeltaInfo QueryService::GetDeltaInfo(const std::string& name) {
  std::shared_ptr<delta::TableVersion> version;
  const Table* resident = nullptr;
  {
    std::lock_guard<std::mutex> lock(tables_mu_);
    Binding* binding = FindBindingLocked(name);
    if (binding == nullptr) return {};
    version = binding->version;
    resident = binding->resident();
  }
  DeltaInfo info;
  if (version != nullptr) {
    info.has_version = true;
    info.epoch = version->epoch();
    info.delta_rows = version->delta_rows();
    info.live_rows = version->live_rows();
  } else if (resident != nullptr) {
    info.live_rows = resident->row_count();
  }
  return info;
}

ExecResult QueryService::ExecuteOn(QuerySession* session,
                                   const QuerySpec& spec,
                                   const ExecContext& ctx) {
  metrics_.counter("service.queries_submitted")->Increment();
  const Table& table = session->table();
  const QueryExecutor::SortAttrs attrs =
      session->executor_.ResolveSortAttrs(spec);

  // Admission: bounded in-flight queries + soft scratch-memory budget.
  // The RAII ticket releases the slot on every exit from this function —
  // ok, cancelled, degraded, or unwinding — never by explicit calls an
  // error path could miss.
  AdmissionController::Ticket ticket =
      admission_.Admit(EstimateScratchBytes(table, attrs), ctx);
  metrics_.histogram("admission.wait_seconds")->Record(ticket.wait_seconds());
  if (!ticket.admitted()) {
    metrics_.counter(std::string("exec.") + ticket.status().name())
        ->Increment();
    ExecResult out;
    out.status = ticket.status();
    return out;
  }

  Timer timer;
  ExecResult out;
  session->last_plan_cached_ = false;
  if (options_.use_massage) {
    const QuerySignature signature =
        SignatureOf(table, spec, attrs, table.row_count(), options_.rho);
    std::vector<StatsFingerprint> current = FingerprintsOf(table, attrs);
    CachedPlan cached;
    const PlanCache::Outcome outcome =
        plan_cache_.Lookup(signature, current, &cached);
    PlanHint hint;
    if (outcome == PlanCache::Outcome::kHit) {
      hint.plan = &cached.plan;
      hint.column_order = &cached.column_order;
      session->last_plan_cached_ = true;
    } else if (outcome == PlanCache::Outcome::kStaleHit) {
      // Statistics drifted past the threshold: re-search, but seed P*
      // with the stale plan so the rho budget is anchored immediately.
      hint.warm_start = &cached.plan;
      hint.warm_start_order = &cached.column_order;
    }
    ExecContext exec_ctx = ctx;  // copies share the flag / fault cell
    exec_ctx.WithHint(&hint);
    out = session->executor_.Execute(spec, exec_ctx);
    // Memoize fresh searches (the zero-row early return never plans).
    // Never cache failed or degraded executions: a stopped search's
    // best-so-far plan and a bank-capped plan are both wrong answers for
    // the next, unconstrained instance of this signature.
    if (outcome != PlanCache::Outcome::kHit && out.ok() &&
        !out.result.degraded && out.result.filtered_rows > 0) {
      CachedPlan fresh;
      fresh.plan = out.result.plan;
      fresh.column_order = out.result.column_order;
      fresh.fingerprints = std::move(current);
      plan_cache_.Insert(signature, std::move(fresh));
    }
  } else {
    out = session->executor_.Execute(spec, ctx);
  }
  QueryResult& result = out.result;

  // Outcome accounting: exec.ok / exec.cancelled / exec.deadline_exceeded
  // / exec.resource_exhausted, plus degradations absorbed along the way.
  metrics_.counter(std::string("exec.") + out.status.name())->Increment();
  if (result.degraded) metrics_.counter("exec.degraded")->Increment();
  if (result.spill_key_too_wide) {
    metrics_.counter("exec.spill.key_too_wide")->Increment();
  }
  if (result.spilled) {
    metrics_.counter("exec.spill.queries")->Increment();
    metrics_.counter("exec.spill.runs")->Add(result.spill_runs);
    metrics_.counter("exec.spill.bytes")->Add(result.spill_bytes);
    metrics_.histogram("exec.spill.run_gen_seconds")
        ->Record(result.spill_run_gen_seconds);
    metrics_.histogram("exec.spill.merge_seconds")
        ->Record(result.spill_merge_seconds);
  }
  if (!out.ok()) {
    metrics_.histogram("exec.failed_seconds")->Record(timer.Seconds());
    return out;
  }

  metrics_.counter("service.queries_served")->Increment();
  metrics_.counter("service.rows_input")->Add(result.input_rows);
  metrics_.counter("service.rows_sorted")->Add(result.filtered_rows);
  metrics_.counter("service.groups_produced")->Add(result.num_groups);
  metrics_.histogram("query.total_seconds")->Record(timer.Seconds());
  metrics_.histogram("query.scan_seconds")->Record(result.scan_seconds);
  metrics_.histogram("query.materialize_seconds")
      ->Record(result.materialize_seconds);
  metrics_.histogram("query.plan_seconds")->Record(result.plan_seconds);
  metrics_.histogram("query.mcs_seconds")->Record(result.mcs_seconds);
  metrics_.histogram("query.post_seconds")->Record(result.post_seconds);
  // Morsel-driven parallelism and kernel routing, surfaced from the
  // sort's RoundProfiles.
  uint64_t sort_morsels = 0, lookup_morsels = 0, scan_chunks = 0;
  uint64_t cooperative = 0;
  uint64_t ovc_full = 0, ovc_emitted = 0;
  for (const RoundProfile& round : result.sort_profile.rounds) {
    sort_morsels += round.sort_morsels;
    lookup_morsels += round.lookup_morsels;
    scan_chunks += round.scan_chunks;
    cooperative += round.cooperative_sorts;
    // Per-kernel routing mix: how many rounds each kernel executed and
    // how much sort time it absorbed, so DumpMetrics shows whether ROGA
    // actually routes (sort.kernel.counting.rounds > 0 etc.).
    const std::string kernel = SortKernelName(round.kernel);
    metrics_.counter("sort.kernel." + kernel + ".rounds")->Increment();
    metrics_.histogram("sort.kernel." + kernel + ".seconds")
        ->Record(round.sort_seconds);
    ovc_full += round.ovc_full_compares;
    ovc_emitted += round.ovc_emitted;
  }
  metrics_.counter("morsels.sort")->Add(sort_morsels);
  metrics_.counter("morsels.lookup")->Add(lookup_morsels);
  metrics_.counter("morsels.scan")->Add(scan_chunks);
  metrics_.counter("morsels.cooperative_sorts")->Add(cooperative);
  // OVC effectiveness: merge steps emitted vs. the subset that fell back
  // to a full key comparison (lower ratio = codes doing more work).
  metrics_.counter("sort.ovc.emitted")->Add(ovc_emitted);
  metrics_.counter("sort.ovc.full_compares")->Add(ovc_full);
  return out;
}

std::string QueryService::DumpMetrics() {
  std::string out = metrics_.Dump();
  char line[160];
  const PlanCache::Stats cache = plan_cache_.GetStats();
  std::snprintf(line, sizeof(line),
                "plan_cache.hits %llu\nplan_cache.misses %llu\n"
                "plan_cache.stale_hits %llu\nplan_cache.evictions %llu\n"
                "plan_cache.entries %zu\nplan_cache.hit_rate %.4f\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.stale_hits),
                static_cast<unsigned long long>(cache.evictions),
                cache.entries, cache.hit_rate());
  out += line;
  const AdmissionController::Stats admission = admission_.GetStats();
  std::snprintf(line, sizeof(line),
                "admission.admitted_total %llu\n"
                "admission.abandoned_total %llu\n"
                "admission.peak_inflight %d\n"
                "admission.peak_queue_depth %d\n"
                "admission.queue_depth %d\n",
                static_cast<unsigned long long>(admission.admitted_total),
                static_cast<unsigned long long>(admission.abandoned_total),
                admission.peak_inflight, admission.peak_queue_depth,
                admission.queue_depth);
  out += line;
  return out;
}

}  // namespace mcsort

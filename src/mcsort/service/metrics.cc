#include "mcsort/service/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace mcsort {

int Histogram::BucketOf(double value) {
  const double nanos = value * 1e9;
  if (!(nanos > 1.0)) return 0;  // also catches NaN and negatives
  const int bucket =
      static_cast<int>(std::floor(std::log2(nanos) * kBucketsPerOctave));
  return std::clamp(bucket, 0, kNumBuckets - 1);
}

double Histogram::BucketMid(int bucket) {
  // Geometric midpoint of [2^(b/4), 2^((b+1)/4)) nanoseconds, in seconds.
  const double exponent =
      (static_cast<double>(bucket) + 0.5) / kBucketsPerOctave;
  return std::exp2(exponent) * 1e-9;
}

void Histogram::Record(double value) {
  if (value < 0 || std::isnan(value)) return;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t nanos = static_cast<uint64_t>(value * 1e9);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
         1e-9;
}

double Histogram::max() const {
  return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) *
         1e-9;
}

double Histogram::Percentile(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample (1-based), then walk the buckets.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 *
                                         static_cast<double>(total))));
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketMid(b);
  }
  return max();
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->value()));
    out += line;
  }
  for (const auto& [name, histogram] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "%s count=%llu p50=%.6f p99=%.6f max=%.6f sum=%.6f\n",
                  name.c_str(),
                  static_cast<unsigned long long>(histogram->count()),
                  histogram->Percentile(50), histogram->Percentile(99),
                  histogram->max(), histogram->sum());
    out += line;
  }
  return out;
}

}  // namespace mcsort

// QueryService — the concurrent serving front-end over the one-shot
// executor. N client sessions submit QuerySpecs; the service amortizes
// everything that is identical across repeated query instances:
//
//   * plan search: a sharded-LRU PlanCache keyed by query signature, with
//     statistics-drift invalidation and warm-started re-search;
//   * calibration: one shared CostModel for the whole process
//     (cost/calibration.h, std::call_once);
//   * hardware: one morsel-driven ThreadPool shared by all sessions
//     (dispatch rounds interleave; serial portions overlap);
//
// behind an AdmissionController (bounded in-flight queries + soft scratch
// memory budget) and a MetricsRegistry (queries served, per-phase latency
// histograms, plan-cache hit rate, admission queue depth, morsel stats).
//
// Threading contract: QueryService and everything it owns are
// thread-safe; a QuerySession is a single-client handle — open one per
// client thread and do not share it.
#ifndef MCSORT_SERVICE_QUERY_SERVICE_H_
#define MCSORT_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mcsort/common/thread_pool.h"
#include "mcsort/cost/params.h"
#include "mcsort/delta/compactor.h"
#include "mcsort/delta/dml.h"
#include "mcsort/delta/table_version.h"
#include "mcsort/engine/query.h"
#include "mcsort/io/io_status.h"
#include "mcsort/service/admission.h"
#include "mcsort/service/metrics.h"
#include "mcsort/service/plan_cache.h"
#include "mcsort/storage/table.h"

namespace mcsort {

// On-disk catalog configuration: a directory of table snapshots
// (io/snapshot.h) that backs the service's named-table registry. Tables
// discovered there are registered unloaded and materialize on first use;
// loaded tables are evicted least-recently-used when the resident set
// exceeds the memory budget (only tables with an on-disk snapshot are
// evictable — an adopted, never-saved table is pinned).
struct CatalogOptions {
  std::string dir;            // snapshot root; empty = no disk catalog
  SnapshotLoadOptions load;   // buffered vs mmap, checksum verification
  uint64_t memory_budget_bytes = 0;  // 0 = unlimited
};

struct ServiceOptions {
  // Workers in the shared morsel-driven pool (>= 1).
  int threads = 1;
  // Enable code massaging (plan via ROGA + cache); disabled = every query
  // runs the column-at-a-time baseline and the plan cache idles.
  bool use_massage = true;
  // ROGA knobs, shared by every session (SearchOptions::rho /
  // min_budget_seconds).
  double rho = 0.001;
  double min_budget_seconds = 200e-6;
  PlanCacheOptions plan_cache;
  AdmissionOptions admission;
  // Cost model: true = share the process-wide calibrated model
  // (calibrates/loads the file exactly once); false = use `params` as
  // given (tests and cold starts).
  bool use_calibration = false;
  CostParams params = CostParams::Default();
  // External-sort fallback shared by every session (engine/query.h).
  SpillConfig spill;

  // Defaults with environment overrides applied: MCSORT_RHO (the same
  // knob bench/fig12_rho sweeps), MCSORT_THREADS, and the MCSORT_SPILL_*
  // family.
  static ServiceOptions FromEnv();
};

class QueryService;

// One client's handle: owns a QueryExecutor (and thus per-session sort
// scratch) bound to one table. Not thread-safe; open one per client —
// though the CancellationSource feeding a ctx may be fired from any
// thread, which is the intended way to cancel an in-flight Execute.
class QuerySession {
 public:
  // Executes under `ctx`: admission waits, plan search, the sort, and
  // post-processing all observe the context's cancellation token /
  // deadline / scratch budget / fault injector. The outcome is recorded
  // in the service metrics under exec.<status-name>.
  ExecResult Execute(const QuerySpec& spec, const ExecContext& ctx);

  uint64_t id() const { return id_; }
  // Whether the last Execute's main-sort plan came from the cache.
  bool last_plan_cached() const { return last_plan_cached_; }
  const Table& table() const { return *table_; }

 private:
  friend class QueryService;
  QuerySession(QueryService* service, const Table& table, uint64_t id,
               const ExecutorOptions& options);

  QueryService* service_;
  const Table* table_;
  QueryExecutor executor_;
  uint64_t id_;
  bool last_plan_cached_ = false;
};

// Soft scratch-memory estimate for admitting a query: the sort keys,
// gathered sort columns, and oid arrays the execution will allocate,
// bounded by the table's row count (the pre-filter upper bound).
size_t EstimateScratchBytes(const Table& table,
                            const QueryExecutor::SortAttrs& attrs);

class QueryService {
 public:
  explicit QueryService(const ServiceOptions& options);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Opens a session against `table` (borrowed; must outlive the session).
  // Sessions may be opened and used from concurrent threads.
  std::unique_ptr<QuerySession> OpenSession(const Table& table);

  // Named-table catalog for front-ends that address tables by name (the
  // network SCHEMA frame, QUERY's `table` field). Tables are borrowed and
  // must outlive the service; re-registering a name replaces its binding.
  void RegisterTable(const std::string& name, const Table& table);
  // Like RegisterTable but the service takes ownership — the path for
  // ingested and snapshot-loaded tables.
  void AdoptTable(const std::string& name, Table table);

  // Attaches the on-disk catalog: discovers snapshot directories under
  // options.dir and registers their names unloaded. Call before serving.
  void SetCatalog(const CatalogOptions& options);

  // The table registered under `name` (empty = default table). Resident
  // tables resolve lock-cheap; an unloaded on-disk table is loaded first
  // (loads serialize; call from a worker, not an event loop). The returned
  // pointer keeps the table alive across LRU eviction — prefer this over
  // FindTable whenever a catalog with a memory budget is attached.
  std::shared_ptr<const Table> FindTableShared(const std::string& name);
  // Raw-pointer lookup of a *resident* table; nullptr when the name is
  // unknown or its table is not loaded. The pointer is stable only until
  // the binding is replaced or evicted.
  const Table* FindTable(const std::string& name) const;
  // Registered names in stable sorted order (wire SCHEMA responses must
  // not leak registration order).
  std::vector<std::string> ListTables() const;
  // The default table's name: the first one registered/adopted/discovered.
  std::string DefaultTableName() const;

  // Snapshot operations against the attached catalog directory (the wire
  // SAVE_TABLE / LOAD_TABLE opcodes land here). SaveTable snapshots a
  // registered table to <dir>/<name>; LoadTable (re)loads <dir>/<name>
  // into memory and binds it, making it immediately queryable.
  //
  // Unified-status entry points: the codec's IoStatus is lifted via
  // IoStatus::ToStatus() (kNotFound for an unknown/unloaded table,
  // kFailedPrecondition when no catalog is attached, kInvalidArgument for
  // bad names). Wire front-ends recover the legacy TableOpReply io_code
  // with IoStatus::FromStatus.
  Status SaveTable(const std::string& name);
  Status LoadTable(const std::string& name);

  // --- write path (delta/) ------------------------------------------------
  // Applies one DML command against the named table's TableVersion
  // (created on first write; an unloaded on-disk table is loaded first).
  // Queries observe the write on their next FindTableShared: the binding
  // resolves through TableVersion::Snapshot(), which merges base + delta.
  delta::DmlOutcome ApplyDml(const delta::DmlCommand& cmd);

  // Compacts one table: snapshot the delta, re-encode base+delta into a
  // fresh merged table, persist it through the catalog's tmp+rename commit
  // point (when a catalog is attached), and publish the new epoch. Readers
  // pinned to the old epoch keep their shared_ptr. Returns true when a new
  // epoch was published (false: no version / empty delta / lost race).
  bool CompactTable(const std::string& name);

  // Starts the background compactor sweeping every written table whose
  // pending mutation count reaches options.min_delta_rows. Stopped
  // automatically on destruction (or explicitly via StopCompactor).
  void EnableCompaction(const delta::CompactionOptions& options);
  void StopCompactor();

  // Per-table write-path introspection for SCHEMA replies.
  struct DeltaInfo {
    uint64_t epoch = 0;
    uint64_t delta_rows = 0;  // live delta rows awaiting compaction
    uint64_t live_rows = 0;   // base live + delta live
    bool has_version = false;
  };
  DeltaInfo GetDeltaInfo(const std::string& name);

  MetricsRegistry& metrics() { return metrics_; }
  PlanCache& plan_cache() { return plan_cache_; }
  AdmissionController& admission() { return admission_; }
  ThreadPool* pool() { return pool_.get(); }
  const ServiceOptions& options() const { return options_; }
  const CostParams& params() const { return params_; }

  // Registry dump plus plan-cache and admission summary lines — the text
  // hook benches and tests scrape.
  std::string DumpMetrics();

 private:
  friend class QuerySession;
  ExecResult ExecuteOn(QuerySession* session, const QuerySpec& spec,
                       const ExecContext& ctx);

  // One name's entry in the catalog: at most one of borrowed/owned is set;
  // neither means "known but unloaded" (an on-disk snapshot).
  struct Binding {
    std::string name;
    const Table* borrowed = nullptr;
    std::shared_ptr<const Table> owned;
    // Created on first write: from then on the binding's queryable image
    // is version->Snapshot() and `owned` tracks the version's base (which
    // also makes the binding unevictable — the delta references its oids).
    std::shared_ptr<delta::TableVersion> version;
    bool on_disk = false;
    uint64_t last_use = 0;

    const Table* resident() const {
      return borrowed != nullptr ? borrowed : owned.get();
    }
  };

  Binding* FindBindingLocked(const std::string& name);
  Binding& UpsertBindingLocked(const std::string& name);
  // The named table's TableVersion, creating it from the resident table on
  // first use (loading an on-disk table if needed); nullptr when unknown.
  std::shared_ptr<delta::TableVersion> GetOrCreateVersion(
      const std::string& name);
  // Drops least-recently-used evictable tables until under budget.
  void EvictOverBudgetLocked();
  uint64_t ResidentOwnedBytesLocked() const;

  ServiceOptions options_;
  CostParams params_;
  std::unique_ptr<ThreadPool> pool_;
  PlanCache plan_cache_;
  AdmissionController admission_;
  MetricsRegistry metrics_;
  std::atomic<uint64_t> next_session_id_{0};
  mutable std::mutex tables_mu_;
  std::vector<Binding> tables_;  // registration order; first = default
  CatalogOptions catalog_;
  bool has_catalog_ = false;
  uint64_t use_clock_ = 0;
  // Serializes snapshot loads so concurrent misses on the same table do
  // one load; never held together with tables_mu_ around file IO, so
  // resident lookups stay fast while a load is in flight.
  std::mutex load_mu_;
  // Last member: its destructor joins the sweep thread before anything the
  // hooks close over goes away.
  std::unique_ptr<delta::Compactor> compactor_;
};

}  // namespace mcsort

#endif  // MCSORT_SERVICE_QUERY_SERVICE_H_

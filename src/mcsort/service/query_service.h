// QueryService — the concurrent serving front-end over the one-shot
// executor. N client sessions submit QuerySpecs; the service amortizes
// everything that is identical across repeated query instances:
//
//   * plan search: a sharded-LRU PlanCache keyed by query signature, with
//     statistics-drift invalidation and warm-started re-search;
//   * calibration: one shared CostModel for the whole process
//     (cost/calibration.h, std::call_once);
//   * hardware: one morsel-driven ThreadPool shared by all sessions
//     (dispatch rounds interleave; serial portions overlap);
//
// behind an AdmissionController (bounded in-flight queries + soft scratch
// memory budget) and a MetricsRegistry (queries served, per-phase latency
// histograms, plan-cache hit rate, admission queue depth, morsel stats).
//
// Threading contract: QueryService and everything it owns are
// thread-safe; a QuerySession is a single-client handle — open one per
// client thread and do not share it.
#ifndef MCSORT_SERVICE_QUERY_SERVICE_H_
#define MCSORT_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mcsort/common/thread_pool.h"
#include "mcsort/cost/params.h"
#include "mcsort/engine/query.h"
#include "mcsort/service/admission.h"
#include "mcsort/service/metrics.h"
#include "mcsort/service/plan_cache.h"
#include "mcsort/storage/table.h"

namespace mcsort {

struct ServiceOptions {
  // Workers in the shared morsel-driven pool (>= 1).
  int threads = 1;
  // Enable code massaging (plan via ROGA + cache); disabled = every query
  // runs the column-at-a-time baseline and the plan cache idles.
  bool use_massage = true;
  // ROGA knobs, shared by every session (SearchOptions::rho /
  // min_budget_seconds).
  double rho = 0.001;
  double min_budget_seconds = 200e-6;
  PlanCacheOptions plan_cache;
  AdmissionOptions admission;
  // Cost model: true = share the process-wide calibrated model
  // (calibrates/loads the file exactly once); false = use `params` as
  // given (tests and cold starts).
  bool use_calibration = false;
  CostParams params = CostParams::Default();

  // Defaults with environment overrides applied: MCSORT_RHO (the same
  // knob bench/fig12_rho sweeps) and MCSORT_THREADS.
  static ServiceOptions FromEnv();
};

class QueryService;

// One client's handle: owns a QueryExecutor (and thus per-session sort
// scratch) bound to one table. Not thread-safe; open one per client —
// though the CancellationSource feeding a ctx may be fired from any
// thread, which is the intended way to cancel an in-flight Execute.
class QuerySession {
 public:
  // Executes under `ctx`: admission waits, plan search, the sort, and
  // post-processing all observe the context's cancellation token /
  // deadline / scratch budget / fault injector. The outcome is recorded
  // in the service metrics under exec.<status-name>.
  ExecResult Execute(const QuerySpec& spec, const ExecContext& ctx);

  uint64_t id() const { return id_; }
  // Whether the last Execute's main-sort plan came from the cache.
  bool last_plan_cached() const { return last_plan_cached_; }
  const Table& table() const { return *table_; }

 private:
  friend class QueryService;
  QuerySession(QueryService* service, const Table& table, uint64_t id,
               const ExecutorOptions& options);

  QueryService* service_;
  const Table* table_;
  QueryExecutor executor_;
  uint64_t id_;
  bool last_plan_cached_ = false;
};

// Soft scratch-memory estimate for admitting a query: the sort keys,
// gathered sort columns, and oid arrays the execution will allocate,
// bounded by the table's row count (the pre-filter upper bound).
size_t EstimateScratchBytes(const Table& table,
                            const QueryExecutor::SortAttrs& attrs);

class QueryService {
 public:
  explicit QueryService(const ServiceOptions& options);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Opens a session against `table` (borrowed; must outlive the session).
  // Sessions may be opened and used from concurrent threads.
  std::unique_ptr<QuerySession> OpenSession(const Table& table);

  // Named-table catalog for front-ends that address tables by name (the
  // network SCHEMA frame, QUERY's `table` field). Tables are borrowed and
  // must outlive the service; re-registering a name replaces its binding.
  void RegisterTable(const std::string& name, const Table& table);
  // The table registered under `name`; an empty name resolves the default
  // (first-registered) table. nullptr when unknown / nothing registered.
  const Table* FindTable(const std::string& name) const;
  // Registered names, in registration order (the first is the default).
  std::vector<std::string> ListTables() const;

  MetricsRegistry& metrics() { return metrics_; }
  PlanCache& plan_cache() { return plan_cache_; }
  AdmissionController& admission() { return admission_; }
  ThreadPool* pool() { return pool_.get(); }
  const ServiceOptions& options() const { return options_; }
  const CostParams& params() const { return params_; }

  // Registry dump plus plan-cache and admission summary lines — the text
  // hook benches and tests scrape.
  std::string DumpMetrics();

 private:
  friend class QuerySession;
  ExecResult ExecuteOn(QuerySession* session, const QuerySpec& spec,
                       const ExecContext& ctx);

  ServiceOptions options_;
  CostParams params_;
  std::unique_ptr<ThreadPool> pool_;
  PlanCache plan_cache_;
  AdmissionController admission_;
  MetricsRegistry metrics_;
  std::atomic<uint64_t> next_session_id_{0};
  mutable std::mutex tables_mu_;
  std::vector<std::pair<std::string, const Table*>> tables_;
};

}  // namespace mcsort

#endif  // MCSORT_SERVICE_QUERY_SERVICE_H_

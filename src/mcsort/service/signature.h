// Query signatures and statistics fingerprints — the plan-cache key.
//
// A massage plan's *validity* depends only on the sort attributes' widths,
// directions, and how many leading columns are order-free (Lemma 1: any
// valid plan yields the same sorted output). Its *quality* additionally
// depends on the instance cardinality and per-column value distributions.
// The signature therefore keys on the exact structural facts plus a
// log2-bucketed cardinality sketch, while the precise statistics snapshot
// is stored beside the cached plan as a fingerprint: lookups that land in
// the same bucket revalidate against the fingerprint and invalidate the
// entry once the table's statistics have drifted past a threshold.
#ifndef MCSORT_SERVICE_SIGNATURE_H_
#define MCSORT_SERVICE_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mcsort/engine/query.h"
#include "mcsort/storage/statistics.h"
#include "mcsort/storage/table.h"

namespace mcsort {

// Compact snapshot of one sort column's cardinality statistics, captured
// at plan time and compared at lookup time to detect drift.
struct StatsFingerprint {
  uint64_t row_count = 0;
  uint64_t distinct_count = 0;
  Code min_code = 0;
  Code max_code = 0;
  int width = 0;
  // ColumnStats::DistinctSketch() at plan time. The kernel router chooses
  // counting vs. merge rounds from the distinct *distribution*, so a
  // reshaped distribution (same totals, different histogram) must count as
  // drift or a cached plan keeps a stale kernel choice.
  uint64_t distinct_sketch = 0;

  friend bool operator==(const StatsFingerprint&,
                         const StatsFingerprint&) = default;
};

StatsFingerprint FingerprintOf(const ColumnStats& stats);

// Relative drift between two fingerprints of the same column: the largest
// relative change among row count and distinct count (plus 1.0 if the
// width or code range no longer matches — a plan for different widths is
// structurally unusable).
double FingerprintDrift(const StatsFingerprint& cached,
                        const StatsFingerprint& current);

// The plan-cache key. `text` is the canonical human-readable form (also
// the exact-match key); `hash` is a 64-bit FNV-1a of it, used for shard
// selection.
struct QuerySignature {
  std::string text;
  uint64_t hash = 0;

  friend bool operator==(const QuerySignature& a, const QuerySignature& b) {
    return a.hash == b.hash && a.text == b.text;
  }
};

// Builds the signature of a query's main multi-column sort against a
// table: attribute names/widths/directions, the order-free prefix, the
// filter predicates (they determine the sorted cardinality, hence plan
// quality), the rho knob (it bounds the search that produced the plan),
// and a log2-bucketed sketch of the instance cardinality and per-column
// distinct counts. Aggregates and result ordering are deliberately
// excluded — they do not influence the main sort's plan, and excluding
// them raises the hit rate across query variants.
QuerySignature SignatureOf(const Table& table, const QuerySpec& spec,
                           const QueryExecutor::SortAttrs& attrs,
                           uint64_t row_estimate, double rho);

// Current fingerprints of the sort columns (in attribute order).
std::vector<StatsFingerprint> FingerprintsOf(
    const Table& table, const QueryExecutor::SortAttrs& attrs);

uint64_t Fnv1a64(const std::string& text);

}  // namespace mcsort

#endif  // MCSORT_SERVICE_SIGNATURE_H_

// AdmissionController — bounds the work the service lets in flight at
// once: a hard cap on concurrent queries plus a soft budget on the scratch
// memory they are predicted to allocate (sort keys, gathered columns, oid
// arrays). Sessions beyond the bound queue FIFO on a condition variable;
// nothing is rejected, only delayed — the morsel-driven pool keeps the
// machine saturated with the admitted set.
//
// The memory budget is *soft*: a query whose estimate alone exceeds the
// whole budget is admitted once nothing else is in flight (otherwise it
// could never run), which bounds overshoot to one oversized query.
#ifndef MCSORT_SERVICE_ADMISSION_H_
#define MCSORT_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace mcsort {

struct AdmissionOptions {
  // Maximum queries executing concurrently (>= 1).
  int max_inflight = 4;
  // Soft scratch-memory budget across in-flight queries; 0 = unlimited.
  size_t memory_budget_bytes = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // RAII admission ticket; releases the slot and budget on destruction.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept;
    ~Ticket() { Release(); }
    void Release();
    bool admitted() const { return controller_ != nullptr; }
    // Seconds spent queued before admission.
    double wait_seconds() const { return wait_seconds_; }

   private:
    friend class AdmissionController;
    AdmissionController* controller_ = nullptr;
    size_t bytes_ = 0;
    double wait_seconds_ = 0;
  };

  // Blocks until a slot (and budget) frees up, FIFO.
  Ticket Admit(size_t estimated_bytes);

  struct Stats {
    int inflight = 0;            // currently admitted
    size_t inflight_bytes = 0;   // their summed estimates
    int queue_depth = 0;         // currently waiting
    int peak_inflight = 0;
    int peak_queue_depth = 0;
    uint64_t admitted_total = 0;
  };
  Stats GetStats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  void Release(size_t bytes);

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_ticket_ = 0;    // FIFO order: issued on arrival
  uint64_t serving_ticket_ = 0; // lowest not-yet-admitted arrival
  int inflight_ = 0;
  size_t inflight_bytes_ = 0;
  int queue_depth_ = 0;
  int peak_inflight_ = 0;
  int peak_queue_depth_ = 0;
  uint64_t admitted_total_ = 0;
};

}  // namespace mcsort

#endif  // MCSORT_SERVICE_ADMISSION_H_

// AdmissionController — bounds the work the service lets in flight at
// once: a hard cap on concurrent queries plus a soft budget on the scratch
// memory they are predicted to allocate (sort keys, gathered columns, oid
// arrays). Sessions beyond the bound queue FIFO on a condition variable;
// nothing is rejected, only delayed — the morsel-driven pool keeps the
// machine saturated with the admitted set.
//
// The memory budget is *soft*: a query whose estimate alone exceeds the
// whole budget is admitted once nothing else is in flight (otherwise it
// could never run), which bounds overshoot to one oversized query.
//
// Waiting is cancellable: Admit takes an ExecContext, and a waiter whose
// context stops (cancellation, deadline, injected fault) abandons its
// queue position and returns an unadmitted ticket carrying the typed
// status. The wait set is an ordered set rather than a served-ticket
// counter precisely so an abandoning head waiter hands FIFO headship to
// the next arrival instead of deadlocking the queue.
#ifndef MCSORT_SERVICE_ADMISSION_H_
#define MCSORT_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>

#include "mcsort/common/exec_context.h"

namespace mcsort {

struct AdmissionOptions {
  // Maximum queries executing concurrently (>= 1).
  int max_inflight = 4;
  // Soft scratch-memory budget across in-flight queries; 0 = unlimited.
  size_t memory_budget_bytes = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // RAII admission ticket; releases the slot and budget on destruction —
  // including every error path: a session that unwinds with a non-ok
  // ExecStatus (or throws past the ticket) frees its slot the moment the
  // ticket goes out of scope, never by an explicit call the error path
  // could skip.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept;
    ~Ticket() { Release(); }
    void Release();
    bool admitted() const { return controller_ != nullptr; }
    // kOk when admitted; the stop code when the wait was abandoned.
    const ExecStatus& status() const { return status_; }
    // Seconds spent queued before admission (or before abandoning).
    double wait_seconds() const { return wait_seconds_; }

   private:
    friend class AdmissionController;
    AdmissionController* controller_ = nullptr;
    size_t bytes_ = 0;
    double wait_seconds_ = 0;
    ExecStatus status_;
  };

  // Blocks until a slot (and budget) frees up, FIFO. A stoppable `ctx`
  // turns the block into a poll: when the context stops, the waiter
  // abandons its place and the returned ticket is unadmitted with the
  // stop's status (check ticket.status()).
  Ticket Admit(size_t estimated_bytes,
               const ExecContext& ctx = ExecContext::Default());

  struct Stats {
    int inflight = 0;            // currently admitted
    size_t inflight_bytes = 0;   // their summed estimates
    int queue_depth = 0;         // currently waiting
    int peak_inflight = 0;
    int peak_queue_depth = 0;
    uint64_t admitted_total = 0;
    uint64_t abandoned_total = 0;  // waits given up on a stopped context
  };
  Stats GetStats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  void Release(size_t bytes);

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_ticket_ = 0;     // FIFO order: issued on arrival
  std::set<uint64_t> waiting_;   // arrival order of everyone still queued;
                                 // *begin() is the FIFO head
  int inflight_ = 0;
  size_t inflight_bytes_ = 0;
  int peak_inflight_ = 0;
  int peak_queue_depth_ = 0;
  uint64_t admitted_total_ = 0;
  uint64_t abandoned_total_ = 0;
};

}  // namespace mcsort

#endif  // MCSORT_SERVICE_ADMISSION_H_

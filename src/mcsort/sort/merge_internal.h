// Internal merge machinery shared by the SIMD merge-sort driver: per-bank
// operation traits, the streaming binary run merge, merge-path
// partitioning, and the four-way (F = 4) out-of-cache merge pass of
// Eq. 8's merge tree.
//
// The four-way merge halves the number of out-of-cache passes relative to
// binary merging: each pass pulls four runs through two L2-resident
// staging buffers (leaf merges) and one root merge, so every element moves
// through main memory once per pass instead of twice. Resumability of the
// leaf merges is obtained without carrying register state across calls:
// a merge-path split (diagonal binary search) finds exactly the slices of
// the two runs that produce the next `cap` outputs, and the ordinary
// complete MergeRuns runs on those slices.
//
// Internal header: included only by sort/*.cc and white-box tests.
#ifndef MCSORT_SORT_MERGE_INTERNAL_H_
#define MCSORT_SORT_MERGE_INTERNAL_H_

#include <algorithm>
#include <cstring>
#include <vector>

#include "mcsort/common/aligned_buffer.h"
#include "mcsort/common/exec_context.h"
#include "mcsort/common/logging.h"
#include "mcsort/common/thread_pool.h"
#include "mcsort/simd/kernels32.h"
#include "mcsort/simd/kernels64.h"
#include "mcsort/simd/simd.h"
#include "mcsort/sort/ovc.h"
#include "mcsort/sort/scalar_kernels.h"

namespace mcsort {
namespace sort_internal {

// Elements produced per stream pull when a stoppable context asks for
// chunked pair merges: large enough to amortize the per-chunk split /
// state save, small enough (a few ms of merging) to bound the stop
// latency. Shared by the SIMD merge-path chunks and the OVC merges.
constexpr size_t kStopMergeChunkElems = size_t{1} << 19;

// ---------------------------------------------------------------------------
// OVC merge passes (scalar — available without AVX2)
// ---------------------------------------------------------------------------

// One binary OVC merge pass with run length `run` over src[0, n): codes
// ride along with keys and payloads, so later passes inherit them without
// recomputation. Lone (already sorted) runs carry over by copy.
template <int Bank, typename K>
void OvcMergePass(const K* src_k, const uint32_t* src_p,
                  const OvcCode* src_c, K* dst_k, uint32_t* dst_p,
                  OvcCode* dst_c, size_t n, size_t run,
                  OvcCounters* counters) {
  for (size_t i = 0; i < n; i += 2 * run) {
    const size_t mid = std::min(i + run, n);
    const size_t stop = std::min(i + 2 * run, n);
    if (mid >= stop) {
      std::memcpy(dst_k + i, src_k + i, (stop - i) * sizeof(K));
      std::memcpy(dst_p + i, src_p + i, (stop - i) * sizeof(uint32_t));
      std::memcpy(dst_c + i, src_c + i, (stop - i) * sizeof(OvcCode));
    } else {
      OvcMergePair<Bank, K>(src_k, src_p, src_c, dst_k, dst_p, dst_c, i, mid,
                            stop, counters);
    }
  }
}

// Merges adjacent coded runs of length `part_len` by parallel pairwise
// passes, ping-ponging (keys, pays, codes) with the alt arrays; guarantees
// the result ends up back in the primary arrays. The OVC sibling of
// ParallelMergePasses below: one pool item per merge pair, with a
// stoppable `ctx` checked between passes and — via chunked stream pulls —
// inside each pair merge, so two huge late-pass runs cannot defer a stop.
// On a stop the array contents are unspecified; the caller re-checks ctx
// and discards them.
template <int Bank, typename K>
void OvcParallelMergePasses(K* keys, uint32_t* pays, OvcCode* codes,
                            K* alt_k, uint32_t* alt_p, OvcCode* alt_c,
                            size_t n, size_t part_len, ThreadPool& pool,
                            const ExecContext* ctx, OvcCounters* counters) {
  const bool stoppable = ctx != nullptr && ctx->stoppable();
  // Per-worker counters: pair merges on different workers must not share a
  // counter cell.
  std::vector<OvcCounters> worker_counters(
      static_cast<size_t>(pool.num_threads()));
  K* cur_k = keys;
  uint32_t* cur_p = pays;
  OvcCode* cur_c = codes;
  for (size_t run = part_len; run < n; run *= 2) {
    if (stoppable && ctx->StopRequested()) break;
    const size_t num_pairs = (n + 2 * run - 1) / (2 * run);
    pool.ParallelFor(
        num_pairs,
        [&](uint64_t begin, uint64_t end, int worker) {
          OvcCounters* wc = &worker_counters[static_cast<size_t>(worker)];
          for (uint64_t pair = begin; pair < end; ++pair) {
            const size_t i = static_cast<size_t>(pair) * 2 * run;
            const size_t mid = std::min(i + run, n);
            const size_t stop = std::min(i + 2 * run, n);
            if (!stoppable) {
              if (mid >= stop) {
                std::memcpy(alt_k + i, cur_k + i, (stop - i) * sizeof(K));
                std::memcpy(alt_p + i, cur_p + i,
                            (stop - i) * sizeof(uint32_t));
                std::memcpy(alt_c + i, cur_c + i,
                            (stop - i) * sizeof(OvcCode));
              } else {
                OvcMergePair<Bank, K>(cur_k, cur_p, cur_c, alt_k, alt_p,
                                      alt_c, i, mid, stop, wc);
              }
              continue;
            }
            OvcMergeStream<Bank, K> stream;
            stream.Init(cur_k + i, cur_p + i, cur_c + i, mid - i,
                        cur_k + mid, cur_p + mid, cur_c + mid,
                        stop > mid ? stop - mid : 0);
            size_t out = i;
            while (stream.remaining() > 0) {
              if (ctx->StopRequested()) return;
              out += stream.Pull(alt_k + out, alt_p + out, alt_c + out,
                                 kStopMergeChunkElems, wc);
            }
          }
        },
        ctx);
    std::swap(cur_k, alt_k);
    std::swap(cur_p, alt_p);
    std::swap(cur_c, alt_c);
  }
  if (cur_k != keys) {
    std::memcpy(keys, cur_k, n * sizeof(K));
    std::memcpy(pays, cur_p, n * sizeof(uint32_t));
    std::memcpy(codes, cur_c, n * sizeof(OvcCode));
  }
  if (counters != nullptr) {
    for (const OvcCounters& wc : worker_counters) {
      counters->full_compares += wc.full_compares;
      counters->emitted += wc.emitted;
    }
  }
}

}  // namespace sort_internal
}  // namespace mcsort

#if MCSORT_HAVE_AVX2

namespace mcsort {
namespace sort_internal {

// ---------------------------------------------------------------------------
// Bank traits
// ---------------------------------------------------------------------------

struct Ops32 {
  using Key = uint32_t;
  using Pay = uint32_t;
  using KV = simd32::KV;
  static constexpr size_t kLanes = 8;

  static KV Load(const Key* k, const Pay* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(k)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static void Store(const KV& v, Key* k, Pay* p) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(k), v.key);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v.pay);
  }
  static void Merge2(KV& a, KV& b) { simd32::BitonicMerge16(a, b); }
  static void SortBlock(Key* k, Pay* p) { simd32::SortBlock64(k, p); }
};

struct Ops64 {
  using Key = uint64_t;
  using Pay = uint64_t;
  using KV = simd64::KV;
  static constexpr size_t kLanes = 4;

  static KV Load(const Key* k, const Pay* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(k)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static void Store(const KV& v, Key* k, Pay* p) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(k), v.key);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v.pay);
  }
  static void Merge2(KV& a, KV& b) { simd64::BitonicMerge8(a, b); }
  static void SortBlock(Key* k, Pay* p) { simd64::SortBlock16(k, p); }
};

// ---------------------------------------------------------------------------
// Streaming binary run merge (complete inputs)
// ---------------------------------------------------------------------------

// Merges sorted runs A and B into the output arrays. SIMD streaming merge
// with the classic refill rule (load next register from the run whose head
// is smaller); once either run has less than a register left, the held
// register plus the short tail merge scalar and MergeSmallWithRun finishes
// against the long remainder with galloping + memcpy.
template <typename Ops>
void MergeRuns(const typename Ops::Key* ka, const typename Ops::Pay* pa,
               size_t na, const typename Ops::Key* kb,
               const typename Ops::Pay* pb, size_t nb,
               typename Ops::Key* out_k, typename Ops::Pay* out_p) {
  using Key = typename Ops::Key;
  using Pay = typename Ops::Pay;
  constexpr size_t kLanes = Ops::kLanes;

  if (na < kLanes || nb < kLanes) {
    if (na <= nb) {
      MergeSmallWithRun(ka, pa, na, kb, pb, nb, out_k, out_p);
    } else {
      MergeSmallWithRun(kb, pb, nb, ka, pa, na, out_k, out_p);
    }
    return;
  }

  typename Ops::KV va = Ops::Load(ka, pa);
  typename Ops::KV vb = Ops::Load(kb, pb);
  size_t ia = kLanes;
  size_t ib = kLanes;
  size_t out = 0;
  for (;;) {
    Ops::Merge2(va, vb);  // va = low half (sorted), vb = high half (sorted)
    Ops::Store(va, out_k + out, out_p + out);
    out += kLanes;
    const bool a_has = ia + kLanes <= na;
    const bool b_has = ib + kLanes <= nb;
    if (a_has && b_has) {
      if (ka[ia] <= kb[ib]) {
        va = Ops::Load(ka + ia, pa + ia);
        ia += kLanes;
      } else {
        va = Ops::Load(kb + ib, pb + ib);
        ib += kLanes;
      }
    } else {
      break;
    }
  }

  alignas(kSimdAlignment) Key spill_k[kLanes];
  alignas(kSimdAlignment) Pay spill_p[kLanes];
  Ops::Store(vb, spill_k, spill_p);
  const size_t tail_a = na - ia;
  const size_t tail_b = nb - ib;
  Key small_k[3 * kLanes];
  Pay small_p[3 * kLanes];
  if (tail_a <= tail_b) {
    MCSORT_DCHECK(tail_a < kLanes);
    MergeScalar(spill_k, spill_p, kLanes, ka + ia, pa + ia, tail_a, small_k,
                small_p);
    MergeSmallWithRun(small_k, small_p, kLanes + tail_a, kb + ib, pb + ib,
                      tail_b, out_k + out, out_p + out);
  } else {
    MCSORT_DCHECK(tail_b < kLanes);
    MergeScalar(spill_k, spill_p, kLanes, kb + ib, pb + ib, tail_b, small_k,
                small_p);
    MergeSmallWithRun(small_k, small_p, kLanes + tail_b, ka + ia, pa + ia,
                      tail_a, out_k + out, out_p + out);
  }
}

// One binary merge pass with run length `run` over src[begin, end).
template <typename Ops>
void MergePass(const typename Ops::Key* src_k, const typename Ops::Pay* src_p,
               typename Ops::Key* dst_k, typename Ops::Pay* dst_p,
               size_t begin, size_t end, size_t run) {
  using Key = typename Ops::Key;
  using Pay = typename Ops::Pay;
  for (size_t i = begin; i < end; i += 2 * run) {
    const size_t mid = std::min(i + run, end);
    const size_t stop = std::min(i + 2 * run, end);
    if (mid >= stop) {  // lone (already sorted) run: carry over
      std::memcpy(dst_k + i, src_k + i, (stop - i) * sizeof(Key));
      std::memcpy(dst_p + i, src_p + i, (stop - i) * sizeof(Pay));
    } else {
      MergeRuns<Ops>(src_k + i, src_p + i, mid - i, src_k + mid, src_p + mid,
                     stop - mid, dst_k + i, dst_p + i);
    }
  }
}

// ---------------------------------------------------------------------------
// Merge-path partitioning
// ---------------------------------------------------------------------------

// Number of elements taken from A among the k smallest of A ∪ B (merge
// semantics; ties resolve arbitrarily, which multi-column sorting allows).
// Standard "k-th element of two sorted arrays" binary search: find x with
//   a[x-1] <= b[k-x]   and   b[k-x-1] <= a[x]
// where out-of-range accesses count as -inf / +inf.
template <typename K>
size_t MergePathSplit(const K* a, size_t na, const K* b, size_t nb,
                      size_t k) {
  MCSORT_DCHECK(k <= na + nb);
  size_t lo = k > nb ? k - nb : 0;
  size_t hi = std::min(k, na);
  while (lo < hi) {
    const size_t x = lo + (hi - lo) / 2;  // take x from A, k-x from B
    if (x < na && k - x >= 1 && a[x] < b[k - x - 1]) {
      lo = x + 1;  // a[x] must be included: take more from A
    } else {
      MCSORT_DCHECK(x >= lo);
      // Here either x == na, or k-x == 0, or a[x] >= b[k-x-1]; check the
      // symmetric condition to know whether x is feasible or too large.
      if (x >= 1 && k - x < nb && b[k - x] < a[x - 1]) {
        hi = x;  // a[x-1] must NOT be included yet: take fewer from A
      } else {
        return x;
      }
    }
  }
  return lo;
}

// ---------------------------------------------------------------------------
// Four-way out-of-cache merge pass
// ---------------------------------------------------------------------------

// Streams the merge of two sorted runs in caller-sized chunks. Each Pull
// uses a merge-path split to cut exact input slices for the requested
// output size, then runs the complete MergeRuns on them — no cross-call
// register state. Degenerates to chunked memcpy when one run is empty.
template <typename Ops>
class RunPairStream {
 public:
  using Key = typename Ops::Key;
  using Pay = typename Ops::Pay;

  void Init(const Key* ka, const Pay* pa, size_t na, const Key* kb,
            const Pay* pb, size_t nb) {
    ka_ = ka;
    pa_ = pa;
    na_ = na;
    kb_ = kb;
    pb_ = pb;
    nb_ = nb;
  }

  size_t remaining() const { return na_ + nb_; }

  // Produces up to `cap` next elements of the merged stream; returns the
  // count (0 iff exhausted).
  size_t Pull(Key* out_k, Pay* out_p, size_t cap) {
    const size_t k = std::min(cap, remaining());
    if (k == 0) return 0;
    if (nb_ == 0 || na_ == 0) {
      const bool from_a = nb_ == 0;
      const Key* k_src = from_a ? ka_ : kb_;
      const Pay* p_src = from_a ? pa_ : pb_;
      std::memcpy(out_k, k_src, k * sizeof(Key));
      std::memcpy(out_p, p_src, k * sizeof(Pay));
      Advance(from_a ? k : 0, from_a ? 0 : k);
      return k;
    }
    const size_t x = MergePathSplit(ka_, na_, kb_, nb_, k);
    const size_t y = k - x;
    if (x == 0 || y == 0) {
      // One-sided chunk: plain copy.
      const bool from_a = y == 0;
      std::memcpy(out_k, from_a ? ka_ : kb_, k * sizeof(Key));
      std::memcpy(out_p, from_a ? pa_ : pb_, k * sizeof(Pay));
      Advance(from_a ? k : 0, from_a ? 0 : k);
      return k;
    }
    MergeRuns<Ops>(ka_, pa_, x, kb_, pb_, y, out_k, out_p);
    Advance(x, y);
    return k;
  }

 private:
  void Advance(size_t da, size_t db) {
    ka_ += da;
    pa_ += da;
    na_ -= da;
    kb_ += db;
    pb_ += db;
    nb_ -= db;
  }

  const Key* ka_ = nullptr;
  const Pay* pa_ = nullptr;
  size_t na_ = 0;
  const Key* kb_ = nullptr;
  const Pay* pb_ = nullptr;
  size_t nb_ = 0;
};

// Staging buffers for one four-way merge (leaf outputs); L2-resident.
template <typename Ops>
struct FourWayScratch {
  using Key = typename Ops::Key;
  using Pay = typename Ops::Pay;
  // Elements per staging buffer; two buffers (keys+pays each) stay well
  // within L2 alongside the streamed runs.
  static constexpr size_t kStageElems = 16384;

  AlignedBuffer<Key> keys_ab, keys_cd;
  AlignedBuffer<Pay> pays_ab, pays_cd;

  void Ensure() {
    keys_ab.EnsureDiscard(kStageElems);
    keys_cd.EnsureDiscard(kStageElems);
    pays_ab.EnsureDiscard(kStageElems);
    pays_cd.EnsureDiscard(kStageElems);
  }
};

// Merges four adjacent sorted runs of `src` (boundaries b0 <= b1 <= b2 <=
// b3 <= b4, any of which may coincide for missing runs) into dst[b0, b4).
// One pass over main memory; leaf merges refill the staging buffers and
// the root emits with upper-bound-limited MergeRuns calls so every emitted
// element is final.
template <typename Ops>
void FourWayMerge(const typename Ops::Key* src_k,
                  const typename Ops::Pay* src_p, typename Ops::Key* dst_k,
                  typename Ops::Pay* dst_p, size_t b0, size_t b1, size_t b2,
                  size_t b3, size_t b4, FourWayScratch<Ops>* scratch) {
  using Key = typename Ops::Key;
  using Pay = typename Ops::Pay;
  scratch->Ensure();

  RunPairStream<Ops> ab;
  ab.Init(src_k + b0, src_p + b0, b1 - b0, src_k + b1, src_p + b1, b2 - b1);
  RunPairStream<Ops> cd;
  cd.Init(src_k + b2, src_p + b2, b3 - b2, src_k + b3, src_p + b3, b4 - b3);

  Key* stage_ab_k = scratch->keys_ab.data();
  Pay* stage_ab_p = scratch->pays_ab.data();
  Key* stage_cd_k = scratch->keys_cd.data();
  Pay* stage_cd_p = scratch->pays_cd.data();
  constexpr size_t kStage = FourWayScratch<Ops>::kStageElems;

  // Heads/lengths of the staged (not yet emitted) leaf output.
  size_t ab_head = 0, ab_len = 0;
  size_t cd_head = 0, cd_len = 0;
  size_t out = b0;

  const auto refill_ab = [&] {
    ab_head = 0;
    ab_len = ab.Pull(stage_ab_k, stage_ab_p, kStage);
  };
  const auto refill_cd = [&] {
    cd_head = 0;
    cd_len = cd.Pull(stage_cd_k, stage_cd_p, kStage);
  };
  refill_ab();
  refill_cd();

  while (ab_len > 0 && cd_len > 0) {
    // Emit the staging buffer whose last element is smaller, merged with
    // the prefix of the other buffer bounded by that element — safe: all
    // future elements of both sides are >= the bound.
    const Key* a_k = stage_ab_k + ab_head;
    const Pay* a_p = stage_ab_p + ab_head;
    const Key* c_k = stage_cd_k + cd_head;
    const Pay* c_p = stage_cd_p + cd_head;
    if (a_k[ab_len - 1] <= c_k[cd_len - 1]) {
      const size_t y = static_cast<size_t>(
          std::upper_bound(c_k, c_k + cd_len, a_k[ab_len - 1]) - c_k);
      MergeRuns<Ops>(a_k, a_p, ab_len, c_k, c_p, y, dst_k + out,
                     dst_p + out);
      out += ab_len + y;
      cd_head += y;
      cd_len -= y;
      refill_ab();
      if (cd_len == 0) refill_cd();
    } else {
      const size_t x = static_cast<size_t>(
          std::upper_bound(a_k, a_k + ab_len, c_k[cd_len - 1]) - a_k);
      MergeRuns<Ops>(c_k, c_p, cd_len, a_k, a_p, x, dst_k + out,
                     dst_p + out);
      out += cd_len + x;
      ab_head += x;
      ab_len -= x;
      refill_cd();
      if (ab_len == 0) refill_ab();
    }
  }
  // One side exhausted: flush the other (staged chunk, then the stream).
  while (ab_len > 0) {
    std::memcpy(dst_k + out, stage_ab_k + ab_head, ab_len * sizeof(Key));
    std::memcpy(dst_p + out, stage_ab_p + ab_head, ab_len * sizeof(Pay));
    out += ab_len;
    refill_ab();
  }
  while (cd_len > 0) {
    std::memcpy(dst_k + out, stage_cd_k + cd_head, cd_len * sizeof(Key));
    std::memcpy(dst_p + out, stage_cd_p + cd_head, cd_len * sizeof(Pay));
    out += cd_len;
    refill_cd();
  }
  MCSORT_DCHECK(out == b4);
}

// One four-way merge pass with run length `run` over src[begin, end).
template <typename Ops>
void FourWayMergePass(const typename Ops::Key* src_k,
                      const typename Ops::Pay* src_p,
                      typename Ops::Key* dst_k, typename Ops::Pay* dst_p,
                      size_t begin, size_t end, size_t run,
                      FourWayScratch<Ops>* scratch) {
  for (size_t i = begin; i < end; i += 4 * run) {
    const size_t b1 = std::min(i + run, end);
    const size_t b2 = std::min(i + 2 * run, end);
    const size_t b3 = std::min(i + 3 * run, end);
    const size_t b4 = std::min(i + 4 * run, end);
    FourWayMerge<Ops>(src_k, src_p, dst_k, dst_p, i, b1, b2, b3, b4,
                      scratch);
  }
}

// ---------------------------------------------------------------------------
// Parallel pairwise merge passes
// ---------------------------------------------------------------------------

// Merges adjacent sorted runs of length `part_len` in (keys, pays) by
// parallel pairwise passes, ping-ponging with (alt_k, alt_p); each pass
// dispatches one pool item per merge pair (a single lone pair still runs
// concurrently via the pool's dynamic small-n path, each side streamed by
// MergeRuns). Guarantees the result ends up back in (keys, pays). Shared
// by the per-bank parallel whole-array sorts.
//
// A stoppable `ctx` is checked between passes, and each pair merge is
// streamed through RunPairStream in kStopMergeChunkElems chunks with a
// check between pulls — late passes merge two huge runs, so a claim-level
// check alone would not bound the stop latency. On a stop the array
// contents are unspecified (the caller discards them after re-checking
// ctx); the buffers always end up in a defined, fully-written state.
template <typename Ops>
void ParallelMergePasses(typename Ops::Key* keys, typename Ops::Pay* pays,
                         typename Ops::Key* alt_k, typename Ops::Pay* alt_p,
                         size_t n, size_t part_len, ThreadPool& pool,
                         const ExecContext* ctx = nullptr) {
  using Key = typename Ops::Key;
  using Pay = typename Ops::Pay;
  const bool stoppable = ctx != nullptr && ctx->stoppable();
  Key* cur_k = keys;
  Pay* cur_p = pays;
  for (size_t run = part_len; run < n; run *= 2) {
    if (stoppable && ctx->StopRequested()) break;
    const size_t num_pairs = (n + 2 * run - 1) / (2 * run);
    pool.ParallelFor(
        num_pairs,
        [&](uint64_t begin, uint64_t end, int) {
          for (uint64_t pair = begin; pair < end; ++pair) {
            const size_t i = static_cast<size_t>(pair) * 2 * run;
            const size_t mid = std::min(i + run, n);
            const size_t stop = std::min(i + 2 * run, n);
            if (!stoppable) {
              if (mid >= stop) {  // lone (already sorted) run: carry over
                std::memcpy(alt_k + i, cur_k + i, (stop - i) * sizeof(Key));
                std::memcpy(alt_p + i, cur_p + i, (stop - i) * sizeof(Pay));
              } else {
                MergeRuns<Ops>(cur_k + i, cur_p + i, mid - i, cur_k + mid,
                               cur_p + mid, stop - mid, alt_k + i,
                               alt_p + i);
              }
              continue;
            }
            // Chunked resumable merge (lone runs degenerate to chunked
            // memcpy inside the stream).
            RunPairStream<Ops> stream;
            stream.Init(cur_k + i, cur_p + i, mid - i, cur_k + mid,
                        cur_p + mid, stop > mid ? stop - mid : 0);
            size_t out = i;
            while (stream.remaining() > 0) {
              if (ctx->StopRequested()) return;
              out += stream.Pull(alt_k + out, alt_p + out,
                                 kStopMergeChunkElems);
            }
          }
        },
        ctx);
    std::swap(cur_k, alt_k);
    std::swap(cur_p, alt_p);
  }
  if (cur_k != keys) {
    std::memcpy(keys, cur_k, n * sizeof(Key));
    std::memcpy(pays, cur_p, n * sizeof(Pay));
  }
}

}  // namespace sort_internal
}  // namespace mcsort

#endif  // MCSORT_HAVE_AVX2
#endif  // MCSORT_SORT_MERGE_INTERNAL_H_

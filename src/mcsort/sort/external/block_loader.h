// Asynchronous block loader for the external merge: a small dedicated
// worker pool that runs run-file block reads off the merge thread, so each
// run cursor can double-buffer (consume block i while block i+1 loads).
//
// Deliberately NOT the service's morsel ThreadPool: block loads are
// blocking IO, and parking compute workers on pread would starve the
// in-memory sort running concurrently in other sessions. IO wants its own
// (tiny) pool.
//
// With zero threads the loader is synchronous: Submit runs the job inline.
// That is the MCSORT_SPILL_PREFETCH=0 mode the spill bench compares
// against.
#ifndef MCSORT_SORT_EXTERNAL_BLOCK_LOADER_H_
#define MCSORT_SORT_EXTERNAL_BLOCK_LOADER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcsort {
namespace external {

class BlockLoader {
 public:
  // `threads` <= 0 makes every Submit synchronous.
  explicit BlockLoader(int threads);
  ~BlockLoader();

  BlockLoader(const BlockLoader&) = delete;
  BlockLoader& operator=(const BlockLoader&) = delete;

  bool async() const { return !workers_.empty(); }

  // Enqueues `job` for a worker (or runs it inline in synchronous mode).
  // Jobs must not throw; completion signalling is the job's own business
  // (the run cursor uses a mutex + condvar per pending block).
  void Submit(std::function<void()> job);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace external
}  // namespace mcsort

#endif  // MCSORT_SORT_EXTERNAL_BLOCK_LOADER_H_

// Spill-capable external multi-column sort: when a plan's scratch estimate
// exceeds the execution budget, the table is cut into budget-sized row
// slices, each slice is sorted in memory by the borrowed MultiColumnSorter
// under the *same* massage plan, and the sorted slices are sunk to
// page-aligned CRC-checked run files (run_file.h). A K-way tree-of-losers
// merge over 128-bit composite keys (the dist/merge.h offset-value-code
// scheme) then streams the runs back in global order, with each run cursor
// double-buffering its block reads on a dedicated IO pool (block_loader.h).
//
// Output contract — value-identical to the in-memory path (the same
// Lemma-1 guarantee that holds between any two valid massage plans):
//   * identical group bounds and, per row, identical values of every sort
//     attribute — i.e. the decoded result is byte-for-byte the same. Oids
//     may permute only within full-key ties (the in-memory sorter's own
//     tie order is unspecified; the merge breaks key ties by run index, so
//     the spilled order is deterministic given the per-slice results).
//   * Group seams fall out of the merge for free: an emitted offset-value
//     code of 0 means "same 128-bit key as the previous output row", and
//     the 128-bit key is an injective encoding of the full attribute tuple
//     (widths summing to <= 128), so code != 0 is precisely a group
//     boundary. No comparisons are spent re-detecting seams.
//
// Requires the composite key to fit 128 bits (the merge-key cap the
// distributed tier already lives with); Sort() returns kUnimplemented
// otherwise and the executor degrades instead of spilling. Run files are
// unlinked on *every* exit path — success, cancellation, IO error — so a
// cancelled query leaves zero residue in the spill directory.
#ifndef MCSORT_SORT_EXTERNAL_EXTERNAL_SORT_H_
#define MCSORT_SORT_EXTERNAL_EXTERNAL_SORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mcsort/common/exec_context.h"
#include "mcsort/common/status.h"
#include "mcsort/engine/multi_column_sorter.h"
#include "mcsort/massage/massage.h"
#include "mcsort/massage/plan.h"
#include "mcsort/scan/group_scan.h"
#include "mcsort/storage/types.h"

namespace mcsort {
namespace external {

struct ExternalSortOptions {
  // Directory for run files (created if missing). MCSORT_SPILL_DIR.
  std::string dir = "/tmp/mcsort-spill";
  // Rows per run slice; the executor sizes this so one slice's in-memory
  // sort fits the scratch budget. Must be > 0.
  size_t slice_rows = 0;
  // Rows per run-file block (the IO/prefetch granule).
  size_t block_rows = size_t{1} << 16;
  // Double-buffer block reads on dedicated IO threads; false = every block
  // read is synchronous on the merge thread (MCSORT_SPILL_PREFETCH=0).
  bool prefetch = true;
  int io_threads = 2;
};

struct ExternalSortResult {
  // Unified outcome (common/status.h): kOk, kCancelled /
  // kDeadlineExceeded (cooperative stop), kUnavailable (run-file IO),
  // kDataLoss (run-file CRC mismatch), kUnimplemented (key > 128 bits),
  // kInvalidArgument (bad options), or the in-memory sorter's own unwind
  // mapped through ExecStatus::ToStatus().
  Status status;
  // Permutation: row r of the sorted order is input row oids[r].
  std::vector<Oid> oids;
  // Final grouping: rows tied on *all* sort attributes.
  Segments groups;

  // Spill instrumentation (exec.spill.* metrics feed off these).
  size_t num_runs = 0;
  uint64_t run_bytes = 0;  // total run-file footprint written
  double run_gen_seconds = 0;
  double merge_seconds = 0;
  uint64_t merge_emitted = 0;
  uint64_t merge_full_compares = 0;
};

// True when `inputs` can be externally sorted at all: the composite key
// (summed code widths) must fit the 128-bit merge key. The executor's
// spill-vs-degrade router consults this before costing the spill arm.
bool CanExternalSort(const std::vector<MassageInput>& inputs);

class ExternalSorter {
 public:
  // `sorter` is borrowed (the executor's own in-memory sorter, so the
  // spill path inherits its thread pool and kernel overrides).
  ExternalSorter(MultiColumnSorter* sorter, ExternalSortOptions options);

  // Runs the full spill sort: slice -> in-memory sort -> run files ->
  // K-way OVC merge. `plan` is the massage plan chosen for the full table
  // (plans depend only on code widths, so it is valid per slice).
  // Stop sources in `ctx` are honored at slice, block, and merge-chunk
  // boundaries; on any non-kOk outcome the result arrays are partial
  // garbage and every run file has already been unlinked.
  ExternalSortResult Sort(const std::vector<MassageInput>& inputs,
                          const MassagePlan& plan, const ExecContext& ctx);

 private:
  MultiColumnSorter* sorter_;
  ExternalSortOptions options_;
};

}  // namespace external
}  // namespace mcsort

#endif  // MCSORT_SORT_EXTERNAL_EXTERNAL_SORT_H_

#include "mcsort/sort/external/block_loader.h"

#include <utility>

namespace mcsort {
namespace external {

BlockLoader::BlockLoader(int threads) {
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BlockLoader::~BlockLoader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Workers drain the queue before exiting, so every submitted job runs
  // and every waiting cursor is signalled.
  for (std::thread& w : workers_) w.join();
}

void BlockLoader::Submit(std::function<void()> job) {
  if (workers_.empty()) {
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void BlockLoader::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
  }
}

}  // namespace external
}  // namespace mcsort

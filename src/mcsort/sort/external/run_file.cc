#include "mcsort/sort/external/run_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "mcsort/common/bits.h"
#include "mcsort/net/wire.h"

namespace mcsort {
namespace external {
namespace {

IoStatus Errno(const char* what, const std::string& path) {
  return IoStatus::Error(IoCode::kIoError, std::string(what) + " " + path +
                                               ": " + std::strerror(errno));
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

}  // namespace

// ---------------------------------------------------------------------------
// RunWriter
// ---------------------------------------------------------------------------

RunWriter::RunWriter(std::string path, size_t block_rows)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      block_rows_(block_rows > 0 ? block_rows : 1) {}

RunWriter::~RunWriter() { Abort(); }

IoStatus RunWriter::Open() {
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return Errno("open", tmp_path_);
  // Preamble, zero-padded so the first block starts page-aligned.
  std::string preamble;
  PutU32(&preamble, kRunMagic);
  PutU32(&preamble, kRunVersion);
  preamble.resize(kRunPageBytes, '\0');
  if (!WriteAll(preamble.data(), preamble.size())) return error_;
  pending_.hi.reserve(block_rows_);
  pending_.lo.reserve(block_rows_);
  pending_.oid.reserve(block_rows_);
  return IoStatus::Ok();
}

bool RunWriter::WriteAll(const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd_, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (error_.ok()) error_ = Errno("write", tmp_path_);
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
    offset_ += static_cast<uint64_t>(w);
  }
  return true;
}

void RunWriter::Add(dist::Key128 key, Oid oid) {
  if (!error_.ok() || fd_ < 0) return;
  pending_.hi.push_back(key.hi);
  pending_.lo.push_back(key.lo);
  pending_.oid.push_back(oid);
  ++rows_;
  if (pending_.rows() >= block_rows_) FlushBlock();
}

void RunWriter::FlushBlock() {
  const size_t r = pending_.rows();
  if (r == 0 || !error_.ok()) return;
  // Pad to the next page boundary, then emit the SoA block.
  const uint64_t aligned = RoundUp(offset_, kRunPageBytes);
  if (aligned > offset_) {
    const std::string pad(static_cast<size_t>(aligned - offset_), '\0');
    if (!WriteAll(pad.data(), pad.size())) return;
  }
  std::string block;
  block.reserve(r * kRunRowBytes);
  block.append(reinterpret_cast<const char*>(pending_.hi.data()), r * 8);
  block.append(reinterpret_cast<const char*>(pending_.lo.data()), r * 8);
  block.append(reinterpret_cast<const char*>(pending_.oid.data()), r * 4);
  BlockRecord record;
  record.offset = offset_;
  record.rows = static_cast<uint32_t>(r);
  record.crc = net::Crc32c(block.data(), block.size());
  if (!WriteAll(block.data(), block.size())) return;
  blocks_.push_back(record);
  pending_.Clear();
}

IoStatus RunWriter::Finish() {
  if (fd_ < 0) {
    return error_.ok() ? IoStatus::Error(IoCode::kIoError, "writer not open")
                       : error_;
  }
  FlushBlock();
  if (error_.ok()) {
    std::string dir;
    dir.reserve(blocks_.size() * 16);
    for (const BlockRecord& b : blocks_) {
      PutU64(&dir, b.offset);
      PutU32(&dir, b.rows);
      PutU32(&dir, b.crc);
    }
    const uint64_t dir_offset = offset_;
    std::string tail;
    PutU64(&tail, rows_);
    PutU32(&tail, static_cast<uint32_t>(blocks_.size()));
    PutU32(&tail, static_cast<uint32_t>(block_rows_));
    PutU64(&tail, dir_offset);
    PutU32(&tail, net::Crc32c(dir.data(), dir.size()));
    PutU32(&tail, kRunMagic);
    if (WriteAll(dir.data(), dir.size())) WriteAll(tail.data(), tail.size());
  }
  if (!error_.ok()) {
    Abort();
    return error_;
  }
  ::close(fd_);
  fd_ = -1;
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const IoStatus st = Errno("rename", tmp_path_);
    ::unlink(tmp_path_.c_str());
    return st;
  }
  finished_ = true;
  return IoStatus::Ok();
}

void RunWriter::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(tmp_path_.c_str());
  }
}

// ---------------------------------------------------------------------------
// RunReader
// ---------------------------------------------------------------------------

RunReader::~RunReader() { Close(); }

void RunReader::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  blocks_.clear();
  rows_ = 0;
}

IoStatus RunReader::Open(const std::string& path) {
  Close();
  path_ = path;
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return Errno("open", path);
#ifdef POSIX_FADV_SEQUENTIAL
  ::posix_fadvise(fd_, 0, 0, POSIX_FADV_SEQUENTIAL);
#endif
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("fstat", path);
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < kRunPageBytes + kRunTailBytes) {
    return IoStatus::Error(IoCode::kCorrupt, "run file truncated: " + path);
  }
  uint8_t tail[kRunTailBytes];
  if (::pread(fd_, tail, sizeof(tail),
              static_cast<off_t>(size - kRunTailBytes)) !=
      static_cast<ssize_t>(sizeof(tail))) {
    return Errno("pread tail", path);
  }
  uint64_t dir_offset;
  uint32_t num_blocks, dir_crc, magic;
  std::memcpy(&rows_, tail, 8);
  std::memcpy(&num_blocks, tail + 8, 4);
  std::memcpy(&dir_offset, tail + 16, 8);
  std::memcpy(&dir_crc, tail + 24, 4);
  std::memcpy(&magic, tail + 28, 4);
  if (magic != kRunMagic) {
    return IoStatus::Error(IoCode::kBadMagic, "not a run file: " + path);
  }
  const uint64_t dir_bytes = uint64_t{num_blocks} * 16;
  if (dir_offset + dir_bytes + kRunTailBytes != size) {
    return IoStatus::Error(IoCode::kCorrupt,
                           "run directory out of bounds: " + path);
  }
  std::vector<uint8_t> dir(dir_bytes);
  if (dir_bytes > 0 &&
      ::pread(fd_, dir.data(), dir.size(), static_cast<off_t>(dir_offset)) !=
          static_cast<ssize_t>(dir.size())) {
    return Errno("pread directory", path);
  }
  if (net::Crc32c(dir.data(), dir.size()) != dir_crc) {
    return IoStatus::Error(IoCode::kCorrupt,
                           "run directory checksum mismatch: " + path);
  }
  blocks_.resize(num_blocks);
  uint64_t total = 0;
  for (uint32_t i = 0; i < num_blocks; ++i) {
    std::memcpy(&blocks_[i].offset, dir.data() + i * 16, 8);
    std::memcpy(&blocks_[i].rows, dir.data() + i * 16 + 8, 4);
    std::memcpy(&blocks_[i].crc, dir.data() + i * 16 + 12, 4);
    if (blocks_[i].offset + uint64_t{blocks_[i].rows} * kRunRowBytes >
        dir_offset) {
      return IoStatus::Error(IoCode::kCorrupt,
                             "run block out of bounds: " + path);
    }
    total += blocks_[i].rows;
  }
  if (total != rows_) {
    return IoStatus::Error(IoCode::kCorrupt,
                           "run row count mismatch: " + path);
  }
  return IoStatus::Ok();
}

IoStatus RunReader::ReadBlock(size_t i, RunBlock* out) const {
  const BlockRecord& b = blocks_[i];
  const size_t r = b.rows;
  const size_t bytes = r * kRunRowBytes;
  std::vector<uint8_t> buf(bytes);
  ssize_t got = 0;
  while (static_cast<size_t>(got) < bytes) {
    const ssize_t n =
        ::pread(fd_, buf.data() + got, bytes - static_cast<size_t>(got),
                static_cast<off_t>(b.offset) + got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread block", path_);
    }
    if (n == 0) {
      return IoStatus::Error(IoCode::kCorrupt, "run block truncated: " + path_);
    }
    got += n;
  }
  if (net::Crc32c(buf.data(), buf.size()) != b.crc) {
    return IoStatus::Error(IoCode::kCorrupt,
                           "run block checksum mismatch: " + path_);
  }
  out->hi.resize(r);
  out->lo.resize(r);
  out->oid.resize(r);
  std::memcpy(out->hi.data(), buf.data(), r * 8);
  std::memcpy(out->lo.data(), buf.data() + r * 8, r * 8);
  std::memcpy(out->oid.data(), buf.data() + r * 16, r * 4);
  return IoStatus::Ok();
}

void RunReader::WillNeed(size_t i) const {
#ifdef POSIX_FADV_WILLNEED
  if (i < blocks_.size()) {
    ::posix_fadvise(fd_, static_cast<off_t>(blocks_[i].offset),
                    static_cast<off_t>(blocks_[i].rows * kRunRowBytes),
                    POSIX_FADV_WILLNEED);
  }
#endif
}

}  // namespace external
}  // namespace mcsort

#include "mcsort/sort/external/external_sort.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

#include "mcsort/common/bits.h"
#include "mcsort/dist/merge.h"
#include "mcsort/io/fs_util.h"
#include "mcsort/sort/external/block_loader.h"
#include "mcsort/sort/external/run_file.h"
#include "mcsort/storage/column.h"

namespace mcsort {
namespace external {
namespace {

using dist::Key128;
using dist::MergeCode;
using dist::MergeCodeFirst;
using dist::MergeCodeRelative;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Process-wide run-file sequence so concurrent spilling queries in one
// server never collide on names.
std::atomic<uint64_t> g_run_seq{0};

struct KeyAttr {
  const EncodedColumn* column;
  int width;
  bool descending;
};

// The 128-bit composite of one row — the dist/merge_keys.h layout: codes
// concatenated MSB-first, DESC complemented, left-aligned so unsigned
// (hi, lo) comparison is the multi-column comparison. Injective over the
// attribute tuple, which is what makes merge-code 0 a reliable group seam.
inline unsigned __int128 KeyOf(const std::vector<KeyAttr>& attrs,
                               int total_width, Oid oid) {
  unsigned __int128 key = 0;
  for (const KeyAttr& a : attrs) {
    Code code = a.column->Get(oid);
    if (a.descending) code = ComplementCode(code, a.width);
    key = (key << a.width) | code;
  }
  return key << (128 - total_width);
}

// Unlinks every registered run file on scope exit — the "zero residue on
// any unwind" guarantee. Finished runs register here; an in-flight
// RunWriter's temp file is covered by its own destructor.
struct RunCleanup {
  std::vector<std::string> paths;
  ~RunCleanup() {
    for (const std::string& p : paths) ::unlink(p.c_str());
  }
};

// Streaming read cursor over one run: exposes the current (key, oid) and
// advances row by row, crossing block boundaries. In async mode the next
// block is always in flight on the BlockLoader while the current one is
// consumed (double buffering); in sync mode block reads happen inline on
// the merge thread.
class RunCursor {
 public:
  RunCursor(const RunReader* reader, BlockLoader* loader)
      : reader_(reader), loader_(loader) {}

  IoStatus Start() {
    if (reader_->num_blocks() == 0) return IoStatus::Ok();
    const IoStatus st = reader_->ReadBlock(0, &cur_);
    if (!st.ok()) return st;
    next_block_ = 1;
    if (loader_->async()) Schedule();
    return IoStatus::Ok();
  }

  bool has() const { return pos_ < cur_.rows(); }
  Key128 key() const { return {cur_.hi[pos_], cur_.lo[pos_]}; }
  Oid oid() const { return cur_.oid[pos_]; }

  // Advances one row; false when the run is exhausted or a block read
  // failed (distinguish via error()). May wait for an in-flight load.
  bool Advance() {
    if (++pos_ < cur_.rows()) return true;
    return LoadNext();
  }

  const IoStatus& error() const { return error_; }

 private:
  void Schedule() {
    if (next_block_ >= reader_->num_blocks()) return;
    const size_t idx = next_block_++;
    pending_valid_ = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_ready_ = false;
    }
    reader_->WillNeed(idx);
    loader_->Submit([this, idx] {
      RunBlock block;
      const IoStatus st = reader_->ReadBlock(idx, &block);
      std::lock_guard<std::mutex> lock(mu_);
      pending_ = std::move(block);
      pending_status_ = st;
      pending_ready_ = true;
      cv_.notify_all();
    });
  }

  bool LoadNext() {
    cur_.Clear();
    pos_ = 0;
    if (loader_->async()) {
      if (!pending_valid_) return false;  // no block in flight: exhausted
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return pending_ready_; });
        if (!pending_status_.ok()) {
          error_ = pending_status_;
          pending_valid_ = false;
          return false;
        }
        cur_ = std::move(pending_);
      }
      pending_valid_ = false;
      Schedule();
      return cur_.rows() > 0;
    }
    if (next_block_ >= reader_->num_blocks()) return false;
    const IoStatus st = reader_->ReadBlock(next_block_++, &cur_);
    if (!st.ok()) {
      error_ = st;
      cur_.Clear();
      return false;
    }
    return cur_.rows() > 0;
  }

  const RunReader* reader_;
  BlockLoader* loader_;
  RunBlock cur_;
  size_t pos_ = 0;
  size_t next_block_ = 0;     // next block index to fetch (merge thread)
  bool pending_valid_ = false;  // a load is in flight (merge thread only)
  IoStatus error_;

  // Double-buffer slot, handed between the merge thread and one loader job.
  std::mutex mu_;
  std::condition_variable cv_;
  bool pending_ready_ = false;
  RunBlock pending_;
  IoStatus pending_status_;
};

// Tree of losers over run cursors, driven by offset-value codes — the
// streaming twin of dist::OvcLoserTree (same invariants, same tie-break by
// run index; see dist/merge.h for the correctness argument). Heads live in
// the cursors; only the per-run code is stored here.
class CursorLoserTree {
 public:
  struct Elem {
    Oid oid = 0;
    // Offset-value code relative to the previously emitted element;
    // code == 0 <=> same composite key <=> same group.
    MergeCode code = 0;
  };

  explicit CursorLoserTree(std::vector<RunCursor*> runs)
      : runs_(std::move(runs)) {
    const size_t k = runs_.size() > 0 ? runs_.size() : 1;
    cap_ = std::bit_ceil(k);
    tree_.assign(cap_, kNoRun);
    codes_.assign(runs_.size(), 0);
    for (size_t r = 0; r < runs_.size(); ++r) {
      if (runs_[r]->has()) codes_[r] = MergeCodeFirst(runs_[r]->key());
    }
    winner_ = InitNode(1);
  }

  // Emits the next element in global key order; false when all runs are
  // exhausted or a cursor hit an IO error (check io_error()).
  bool Next(Elem* out) {
    if (winner_ == kNoRun) return false;
    const int r = winner_;
    out->oid = runs_[r]->oid();
    out->code = codes_[r];
    ++counters_.emitted;

    const Key128 prev = runs_[r]->key();
    int cur = kNoRun;
    if (runs_[r]->Advance()) {
      // The new head's in-run code relative to its predecessor IS its code
      // relative to the just-emitted element.
      codes_[r] = MergeCodeRelative(runs_[r]->key(), prev);
      cur = r;
    } else if (!runs_[r]->error().ok()) {
      io_error_ = runs_[r]->error();
      winner_ = kNoRun;  // abort the merge; the emitted element is valid
      return true;
    }
    for (size_t node = (cap_ + static_cast<size_t>(r)) >> 1; node >= 1;
         node >>= 1) {
      const int challenger = tree_[node];
      const int w = Challenge(cur, challenger);
      tree_[node] = (w == cur) ? challenger : cur;
      cur = w;
    }
    winner_ = cur;
    return true;
  }

  const IoStatus& io_error() const { return io_error_; }
  const sort_internal::OvcCounters& counters() const { return counters_; }

 private:
  static constexpr int kNoRun = -1;

  int Challenge(int a, int b) {
    if (a == kNoRun) return b;
    if (b == kNoRun) return a;
    if (codes_[a] != codes_[b]) return codes_[a] < codes_[b] ? a : b;
    ++counters_.full_compares;
    const Key128 xa = runs_[a]->key();
    const Key128 xb = runs_[b]->key();
    int winner, loser;
    if (xa < xb || (xa == xb && a < b)) {
      winner = a;
      loser = b;
    } else {
      winner = b;
      loser = a;
    }
    codes_[loser] =
        MergeCodeRelative(loser == a ? xa : xb, winner == a ? xa : xb);
    return winner;
  }

  int InitNode(size_t node) {
    if (node >= cap_) {
      const size_t r = node - cap_;
      return (r < runs_.size() && runs_[r]->has()) ? static_cast<int>(r)
                                                   : kNoRun;
    }
    const int a = InitNode(2 * node);
    const int b = InitNode(2 * node + 1);
    const int w = Challenge(a, b);
    tree_[node] = (w == a) ? b : a;
    return w;
  }

  std::vector<RunCursor*> runs_;
  std::vector<MergeCode> codes_;  // current head's code per run
  std::vector<int> tree_;         // loser at each internal node
  size_t cap_ = 1;
  int winner_ = kNoRun;
  IoStatus io_error_;
  sort_internal::OvcCounters counters_;
};

}  // namespace

bool CanExternalSort(const std::vector<MassageInput>& inputs) {
  int total_width = 0;
  for (const MassageInput& in : inputs) {
    if (in.column == nullptr) return false;
    total_width += in.column->width();
  }
  return total_width > 0 && total_width <= 128;
}

ExternalSorter::ExternalSorter(MultiColumnSorter* sorter,
                               ExternalSortOptions options)
    : sorter_(sorter), options_(std::move(options)) {}

ExternalSortResult ExternalSorter::Sort(const std::vector<MassageInput>& inputs,
                                        const MassagePlan& plan,
                                        const ExecContext& ctx) {
  ExternalSortResult result;
  if (inputs.empty() || inputs[0].column == nullptr) {
    result.status =
        Status::InvalidArgument("external sort needs at least one sort column");
    return result;
  }
  if (options_.slice_rows == 0 || options_.block_rows == 0) {
    result.status =
        Status::InvalidArgument("external sort slice/block rows must be > 0");
    return result;
  }
  int total_width = 0;
  for (const MassageInput& in : inputs) total_width += in.column->width();
  if (total_width > 128) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "composite sort key is %d bits; external merge caps at 128",
                  total_width);
    result.status = Status::Unimplemented(buf);
    return result;
  }
  const size_t n = inputs[0].column->size();
  if (n == 0) {
    result.groups = Segments::Whole(0);
    return result;
  }
  if (!MakeDirs(options_.dir)) {
    result.status =
        Status::Unavailable("cannot create spill directory " + options_.dir);
    return result;
  }

  // Guards every exit path below: finished run files are unlinked by this
  // object, an unfinished one by its RunWriter's destructor.
  RunCleanup cleanup;

  // --- Phase 1: run generation ---------------------------------------
  // Each slice is an oid range [begin, end); slice columns are zero-copy
  // views into the input columns, sorted in memory under the caller's plan.
  const auto t_gen = std::chrono::steady_clock::now();
  const uint64_t seq = g_run_seq.fetch_add(1, std::memory_order_relaxed);
  const size_t num_slices = (n + options_.slice_rows - 1) / options_.slice_rows;
  for (size_t s = 0; s < num_slices; ++s) {
    const ExecCode stop = ctx.StopCheck();
    if (stop != ExecCode::kOk) {
      result.status = ExecStatus::FromCode(stop).ToStatus();
      return result;
    }
    const size_t begin = s * options_.slice_rows;
    const size_t end = std::min(n, begin + options_.slice_rows);
    const size_t slice_n = end - begin;

    std::vector<EncodedColumn> views(inputs.size());
    std::vector<MassageInput> slice_inputs(inputs.size());
    std::vector<KeyAttr> attrs;
    attrs.reserve(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      const EncodedColumn& c = *inputs[i].column;
      const char* base = static_cast<const char*>(c.raw_data());
      views[i].ResetView(c.width(), c.type(), slice_n,
                         base + begin * BytesOfPhysicalType(c.type()));
      slice_inputs[i] = {&views[i], inputs[i].order};
      attrs.push_back({&views[i], views[i].width(),
                       inputs[i].order == SortOrder::kDescending});
    }

    MultiColumnSortResult sorted = sorter_->Sort(slice_inputs, plan, ctx);
    if (!sorted.status.ok()) {
      result.status = sorted.status.ToStatus();
      return result;
    }

    char name[80];
    std::snprintf(name, sizeof(name), "run_%d_%llu_%zu.mcr",
                  static_cast<int>(::getpid()),
                  static_cast<unsigned long long>(seq), s);
    const std::string path = options_.dir + "/" + name;
    RunWriter writer(path, options_.block_rows);
    IoStatus io = writer.Open();
    if (io.ok()) {
      size_t since_check = 0;
      for (size_t r = 0; r < slice_n; ++r) {
        if (++since_check >= options_.block_rows) {
          since_check = 0;
          const ExecCode st = ctx.StopCheck();
          if (st != ExecCode::kOk) {
            result.status = ExecStatus::FromCode(st).ToStatus();
            return result;  // writer dtor unlinks its temp file
          }
        }
        const Oid local = sorted.oids[r];
        const unsigned __int128 key = KeyOf(attrs, total_width, local);
        writer.Add({static_cast<uint64_t>(key >> 64),
                    static_cast<uint64_t>(key)},
                   static_cast<Oid>(begin + local));
      }
      io = writer.Finish();
    }
    if (!io.ok()) {
      result.status = io.ToStatus();
      return result;
    }
    cleanup.paths.push_back(path);
    result.run_bytes += writer.bytes_written();
  }
  result.num_runs = cleanup.paths.size();
  result.run_gen_seconds = SecondsSince(t_gen);

  // --- Phase 2: K-way OVC merge ---------------------------------------
  // Destruction order matters: the loader is declared last so its
  // destructor drains in-flight block reads while the cursors they target
  // are still alive.
  const auto t_merge = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<RunReader>> readers;
  std::vector<std::unique_ptr<RunCursor>> cursors;
  BlockLoader loader(options_.prefetch ? options_.io_threads : 0);
  for (const std::string& path : cleanup.paths) {
    readers.push_back(std::make_unique<RunReader>());
    const IoStatus io = readers.back()->Open(path);
    if (!io.ok()) {
      result.status = io.ToStatus();
      return result;
    }
  }
  std::vector<RunCursor*> cursor_ptrs;
  for (const auto& reader : readers) {
    cursors.push_back(std::make_unique<RunCursor>(reader.get(), &loader));
    const IoStatus io = cursors.back()->Start();
    if (!io.ok()) {
      result.status = io.ToStatus();
      return result;
    }
    cursor_ptrs.push_back(cursors.back().get());
  }

  CursorLoserTree tree(std::move(cursor_ptrs));
  result.oids.reserve(n);
  result.groups.bounds.clear();
  result.groups.bounds.push_back(0);
  size_t emitted = 0;
  size_t since_check = 0;
  CursorLoserTree::Elem elem;
  while (tree.Next(&elem)) {
    if (emitted > 0 && elem.code != 0) {
      result.groups.bounds.push_back(static_cast<uint32_t>(emitted));
    }
    result.oids.push_back(elem.oid);
    ++emitted;
    if (++since_check >= options_.block_rows) {
      since_check = 0;
      const ExecCode stop = ctx.StopCheck();
      if (stop != ExecCode::kOk) {
        result.status = ExecStatus::FromCode(stop).ToStatus();
        return result;
      }
    }
  }
  if (!tree.io_error().ok()) {
    result.status = tree.io_error().ToStatus();
    return result;
  }
  if (emitted != n) {
    result.status = Status::Internal("external merge emitted wrong row count");
    return result;
  }
  result.groups.bounds.push_back(static_cast<uint32_t>(n));
  result.merge_seconds = SecondsSince(t_merge);
  result.merge_emitted = tree.counters().emitted;
  result.merge_full_compares = tree.counters().full_compares;
  return result;
}

}  // namespace external
}  // namespace mcsort

// On-disk sorted-run format for the external (spill) multi-column sort.
//
// A run file holds one slice's worth of rows in sorted order, each row a
// 128-bit composite merge key (dist/merge_keys.h layout) plus the row's
// oid. Rows are stored in page-aligned blocks of SoA arrays so the merge
// phase streams them with large sequential reads:
//
//   offset 0       preamble: magic 'MCR1' u32, version u32 (then zero pad
//                  to the first page boundary)
//   page-aligned   block i: hi[r_i] u64 | lo[r_i] u64 | oid[r_i] u32
//   ...
//   dir_offset     directory: num_blocks x {offset u64, rows u32, crc u32}
//   EOF - 32       tail: rows u64, num_blocks u32, block_rows u32,
//                  dir_offset u64, dir_crc u32, magic u32
//
// Every block carries its own CRC32C (net/wire.h's Castagnoli codec, the
// same checksum the snapshot format uses) and the directory is itself
// CRC-checked, so a truncated or bit-rotted run is a typed kCorrupt
// result, never silently wrong merge output. Writers follow the snapshot
// codec's temp-file discipline: bytes land in `path + ".tmp"` and the
// final name only appears on a successful Finish() — crash leftovers are
// `*.tmp` files the catalog hygiene sweep deletes.
#ifndef MCSORT_SORT_EXTERNAL_RUN_FILE_H_
#define MCSORT_SORT_EXTERNAL_RUN_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mcsort/dist/merge.h"
#include "mcsort/io/io_status.h"
#include "mcsort/storage/types.h"

namespace mcsort {
namespace external {

constexpr uint32_t kRunMagic = 0x3152434Du;  // "MCR1" little-endian
constexpr uint32_t kRunVersion = 1;
constexpr size_t kRunPageBytes = 4096;
constexpr size_t kRunTailBytes = 32;
// Per-row bytes in a block: hi u64 + lo u64 + oid u32.
constexpr size_t kRunRowBytes = 20;

// One decoded block, ready for the merge cursor. The typed arrays are
// copies (never views into IO buffers), so alignment is guaranteed.
struct RunBlock {
  std::vector<uint64_t> hi;
  std::vector<uint64_t> lo;
  std::vector<Oid> oid;

  size_t rows() const { return oid.size(); }
  void Clear() {
    hi.clear();
    lo.clear();
    oid.clear();
  }
};

// Streams sorted (key, oid) rows into a run file. Usage:
//
//   RunWriter writer(path, block_rows);
//   IoStatus st = writer.Open();
//   for (...) writer.Add(key, oid);     // sorted order
//   st = writer.Finish();               // or writer.Abort() on unwind
//
// Not thread-safe. Abort() (also run by the destructor when Finish was
// never reached) closes and unlinks the temp file so cancellation leaves
// no residue.
class RunWriter {
 public:
  RunWriter(std::string path, size_t block_rows);
  ~RunWriter();

  RunWriter(const RunWriter&) = delete;
  RunWriter& operator=(const RunWriter&) = delete;

  IoStatus Open();
  // Appends one row; flushes a full block to disk. Errors are sticky and
  // re-surfaced by Finish().
  void Add(dist::Key128 key, Oid oid);
  // Flushes the partial block, writes directory + tail, and renames the
  // temp file onto `path()`.
  IoStatus Finish();
  // Closes and unlinks the temp file (no-op after Finish/Abort).
  void Abort();

  const std::string& path() const { return path_; }
  uint64_t rows() const { return rows_; }
  // Bytes written so far (the spill footprint metric).
  uint64_t bytes_written() const { return offset_; }

 private:
  struct BlockRecord {
    uint64_t offset = 0;
    uint32_t rows = 0;
    uint32_t crc = 0;
  };

  void FlushBlock();
  bool WriteAll(const void* data, size_t n);

  std::string path_;
  std::string tmp_path_;
  size_t block_rows_;
  int fd_ = -1;
  bool finished_ = false;
  uint64_t rows_ = 0;
  uint64_t offset_ = 0;  // next write offset
  RunBlock pending_;
  std::vector<BlockRecord> blocks_;
  IoStatus error_;  // sticky first error
};

// Random-access reader over a finished run file. Open() validates the
// tail and the directory checksum; ReadBlock() validates each block's
// CRC32C. Thread-safe for concurrent ReadBlock calls (pread-based) — the
// async block loader reads ahead from worker threads.
class RunReader {
 public:
  RunReader() = default;
  ~RunReader();

  RunReader(const RunReader&) = delete;
  RunReader& operator=(const RunReader&) = delete;

  IoStatus Open(const std::string& path);
  void Close();

  uint64_t rows() const { return rows_; }
  size_t num_blocks() const { return blocks_.size(); }
  size_t block_rows(size_t i) const { return blocks_[i].rows; }

  // Reads and CRC-verifies block `i` into `out`.
  IoStatus ReadBlock(size_t i, RunBlock* out) const;
  // posix_fadvise(WILLNEED) hint for block `i`'s byte range.
  void WillNeed(size_t i) const;

 private:
  struct BlockRecord {
    uint64_t offset = 0;
    uint32_t rows = 0;
    uint32_t crc = 0;
  };

  std::string path_;
  int fd_ = -1;
  uint64_t rows_ = 0;
  std::vector<BlockRecord> blocks_;
};

}  // namespace external
}  // namespace mcsort

#endif  // MCSORT_SORT_EXTERNAL_RUN_FILE_H_

// Offset-value coding for the merge phase of the per-round sort ("Robust
// and Efficient Sorting with Offset-Value Coding", Do & Graefe — see
// PAPERS.md). Massaged rounds produce exactly the narrow shared-prefix
// keys OVC loves: within a sorted run, most neighbours agree on a long
// key prefix, so the code of an element relative to its predecessor
// usually decides a merge comparison without touching the full key.
//
// Encoding: keys are treated as k = bank/8 big-endian byte digits. The
// code of x relative to its in-run predecessor p (p <= x) is
//
//   code(x | p) = ((k - o) << 8) | byte_o(x),   o = first differing byte
//   code(x | p) = 0                             when x == p
//
// so codes order *ascending* exactly like the keys they describe, as long
// as both comparands are coded against the same reference. The first
// element of a run is coded as if it differed at byte 0 (o = 0), which is
// a valid code against the virtual "minus infinity" reference shared by
// both runs at merge start. The largest possible code, (8 << 8) | 255,
// fits a uint16.
//
// Merge invariant (the tree-of-losers argument specialized to a binary
// merge): both stream heads carry codes relative to the last emitted
// element. If the codes differ, the smaller code is the smaller key AND
// the loser's code remains valid relative to the new last-emitted element
// (the winner agrees with the old reference at least as deep as the loser
// differs from it). Only equal nonzero codes need a full key comparison,
// after which the loser is re-coded against the winner. Equal keys emit
// from run A first (deterministic) and the loser's code becomes 0.
//
// Because every emitted element's held code is, by the invariant, its code
// relative to the previously emitted element, the output run's code array
// is produced for free during the merge — codes propagate through all
// merge passes with zero recomputation.
#ifndef MCSORT_SORT_OVC_H_
#define MCSORT_SORT_OVC_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace mcsort {
namespace sort_internal {

using OvcCode = uint16_t;

// Code of `x` relative to predecessor `prev` (requires prev <= x) for a
// `Bank`-bit key type K.
template <int Bank, typename K>
inline OvcCode OvcRelative(K x, K prev) {
  const uint64_t diff = static_cast<uint64_t>(x) ^ static_cast<uint64_t>(prev);
  if (diff == 0) return 0;
  constexpr int kBytes = Bank / 8;
  // Index (from the most significant bank byte) of the first differing
  // byte; countl_zero runs on the 64-bit widening, so discount the pad.
  const int o = (std::countl_zero(diff) - (64 - Bank)) / 8;
  const unsigned digit = static_cast<unsigned>(
      (static_cast<uint64_t>(x) >> (Bank - 8 * (o + 1))) & 0xFF);
  return static_cast<OvcCode>(((kBytes - o) << 8) | digit);
}

// Code of a run's first element: offset 0 against the virtual reference.
template <int Bank, typename K>
inline OvcCode OvcFirst(K x) {
  constexpr int kBytes = Bank / 8;
  const unsigned digit =
      static_cast<unsigned>((static_cast<uint64_t>(x) >> (Bank - 8)) & 0xFF);
  return static_cast<OvcCode>((kBytes << 8) | digit);
}

// Fills codes[0..n) for the sorted run keys[0..n).
template <int Bank, typename K>
inline void OvcEncodeRun(const K* keys, OvcCode* codes, size_t n) {
  if (n == 0) return;
  codes[0] = OvcFirst<Bank>(keys[0]);
  for (size_t i = 1; i < n; ++i) {
    codes[i] = OvcRelative<Bank>(keys[i], keys[i - 1]);
  }
}

// Comparison instrumentation: `full_compares` counts merge steps that had
// to touch the keys (equal codes); `emitted` counts merged elements, i.e.
// the comparisons a plain comparison-based merge would have performed. The
// difference is the comparisons offset-value coding skipped.
struct OvcCounters {
  uint64_t full_compares = 0;
  uint64_t emitted = 0;
};

// Resumable OVC merge of two coded runs. State is plain indices plus the
// (possibly rewritten) head codes, so a chunked — cancellable — merge
// carries the invariant across Pull calls with no register state.
template <int Bank, typename K>
class OvcMergeStream {
 public:
  void Init(const K* ka, const uint32_t* pa, const OvcCode* ca, size_t na,
            const K* kb, const uint32_t* pb, const OvcCode* cb, size_t nb) {
    ka_ = ka; pa_ = pa; ca_ = ca; na_ = na;
    kb_ = kb; pb_ = pb; cb_ = cb; nb_ = nb;
    ia_ = 0;
    ib_ = 0;
    head_ca_ = na > 0 ? ca[0] : OvcCode{0};
    head_cb_ = nb > 0 ? cb[0] : OvcCode{0};
  }

  size_t remaining() const { return (na_ - ia_) + (nb_ - ib_); }

  // Emits up to `cap` next elements into (out_k, out_p, out_c), returning
  // the count (0 iff exhausted). The scalar loop replaces most key
  // comparisons with one uint16 code comparison; run A wins ties for
  // determinism.
  size_t Pull(K* out_k, uint32_t* out_p, OvcCode* out_c, size_t cap,
              OvcCounters* counters) {
    size_t out = 0;
    uint64_t full = 0;
    while (out < cap && ia_ < na_ && ib_ < nb_) {
      bool take_a;
      if (head_ca_ != head_cb_) {
        take_a = head_ca_ < head_cb_;
      } else {
        // Equal codes: the full key comparison OVC could not skip. Equal
        // keys resolve to run A; the loser is re-coded vs the winner.
        ++full;
        take_a = ka_[ia_] <= kb_[ib_];
      }
      const bool recode_loser = head_ca_ == head_cb_;
      if (take_a) {
        out_k[out] = ka_[ia_];
        out_p[out] = pa_[ia_];
        out_c[out] = head_ca_;
        ++ia_;
        if (recode_loser) {
          head_cb_ = OvcRelative<Bank, K>(kb_[ib_], out_k[out]);
        }
        head_ca_ = ia_ < na_ ? ca_[ia_] : OvcCode{0};
      } else {
        out_k[out] = kb_[ib_];
        out_p[out] = pb_[ib_];
        out_c[out] = head_cb_;
        ++ib_;
        if (recode_loser) {
          head_ca_ = OvcRelative<Bank, K>(ka_[ia_], out_k[out]);
        }
        head_cb_ = ib_ < nb_ ? cb_[ib_] : OvcCode{0};
      }
      ++out;
    }
    // One side exhausted: flush the other. The surviving head's
    // (possibly rewritten) code is valid relative to the last emitted
    // element, and deeper in-run codes are relative to predecessors, so
    // copying preserves the invariant.
    while (out < cap && ia_ < na_) {
      out_k[out] = ka_[ia_];
      out_p[out] = pa_[ia_];
      out_c[out] = head_ca_;
      ++ia_;
      head_ca_ = ia_ < na_ ? ca_[ia_] : OvcCode{0};
      ++out;
    }
    while (out < cap && ib_ < nb_) {
      out_k[out] = kb_[ib_];
      out_p[out] = pb_[ib_];
      out_c[out] = head_cb_;
      ++ib_;
      head_cb_ = ib_ < nb_ ? cb_[ib_] : OvcCode{0};
      ++out;
    }
    if (counters != nullptr) {
      counters->full_compares += full;
      counters->emitted += out;
    }
    return out;
  }

 private:
  const K* ka_ = nullptr;
  const uint32_t* pa_ = nullptr;
  const OvcCode* ca_ = nullptr;
  size_t na_ = 0;
  const K* kb_ = nullptr;
  const uint32_t* pb_ = nullptr;
  const OvcCode* cb_ = nullptr;
  size_t nb_ = 0;
  size_t ia_ = 0;
  size_t ib_ = 0;
  OvcCode head_ca_ = 0;
  OvcCode head_cb_ = 0;
};

// Merges the pair of coded runs [i, mid) and [mid, stop) of the src
// arrays into dst[i, stop) in one complete sweep.
template <int Bank, typename K>
inline void OvcMergePair(const K* src_k, const uint32_t* src_p,
                         const OvcCode* src_c, K* dst_k, uint32_t* dst_p,
                         OvcCode* dst_c, size_t i, size_t mid, size_t stop,
                         OvcCounters* counters) {
  OvcMergeStream<Bank, K> stream;
  stream.Init(src_k + i, src_p + i, src_c + i, mid - i, src_k + mid,
              src_p + mid, src_c + mid, stop > mid ? stop - mid : 0);
  stream.Pull(dst_k + i, dst_p + i, dst_c + i, stop - i, counters);
}

}  // namespace sort_internal
}  // namespace mcsort

#endif  // MCSORT_SORT_OVC_H_

#include "mcsort/sort/radix_sort.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "mcsort/common/bits.h"
#include "mcsort/common/logging.h"
#include "mcsort/sort/scalar_kernels.h"

namespace mcsort {
namespace {

// Below this size insertion sort beats the fixed per-pass costs.
constexpr size_t kRadixInsertionMax = 64;

template <typename K>
void RadixSortCore(K* keys, uint32_t* oids, size_t n, int key_width,
                   K* key_scratch, uint32_t* oid_scratch,
                   const RadixOptions& options) {
  const int radix_bits = options.radix_bits;
  MCSORT_CHECK(radix_bits >= 1 && radix_bits <= 16);
  const size_t buckets = size_t{1} << radix_bits;
  const uint64_t digit_mask = LowBitsMask(radix_bits);
  const int passes = (key_width + radix_bits - 1) / radix_bits;

  K* src_k = keys;
  uint32_t* src_o = oids;
  K* dst_k = key_scratch;
  uint32_t* dst_o = oid_scratch;
  std::vector<size_t> histogram(buckets);

  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * radix_bits;
    std::fill(histogram.begin(), histogram.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      ++histogram[(static_cast<uint64_t>(src_k[i]) >> shift) & digit_mask];
    }
    // Skip a pass whose digit is constant (common for the last, partial
    // digit of narrow keys) — the paper's "careful choice of radix size"
    // effect appears naturally.
    size_t nonzero = 0;
    for (size_t b = 0; b < buckets && nonzero <= 1; ++b) {
      if (histogram[b] != 0) ++nonzero;
    }
    if (nonzero <= 1) continue;
    // Exclusive prefix sums -> scatter offsets.
    size_t sum = 0;
    for (size_t b = 0; b < buckets; ++b) {
      const size_t count = histogram[b];
      histogram[b] = sum;
      sum += count;
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t bucket =
          (static_cast<uint64_t>(src_k[i]) >> shift) & digit_mask;
      const size_t pos = histogram[bucket]++;
      dst_k[pos] = src_k[i];
      dst_o[pos] = src_o[i];
    }
    std::swap(src_k, dst_k);
    std::swap(src_o, dst_o);
  }
  if (src_k != keys) {
    std::memcpy(keys, src_k, n * sizeof(K));
    std::memcpy(oids, src_o, n * sizeof(uint32_t));
  }
}

}  // namespace

void RadixSortPairs16(uint16_t* keys, uint32_t* oids, size_t n,
                      int key_width, SortScratch& scratch,
                      const RadixOptions& options) {
  if (n <= 1) return;
  MCSORT_CHECK(key_width >= 1 && key_width <= 16);
  if (n <= kRadixInsertionMax) {
    InsertionSortPairs(keys, oids, n);
    return;
  }
  // u16 keys fit in the low halves of a u32 scratch buffer.
  scratch.u32_a.EnsureDiscard(n);
  scratch.u32_b.EnsureDiscard(n);
  RadixSortCore(keys, oids, n, key_width,
                reinterpret_cast<uint16_t*>(scratch.u32_a.data()),
                scratch.u32_b.data(), options);
}

void RadixSortPairs32(uint32_t* keys, uint32_t* oids, size_t n,
                      int key_width, SortScratch& scratch,
                      const RadixOptions& options) {
  if (n <= 1) return;
  MCSORT_CHECK(key_width >= 1 && key_width <= 32);
  if (n <= kRadixInsertionMax) {
    InsertionSortPairs(keys, oids, n);
    return;
  }
  scratch.u32_a.EnsureDiscard(n);
  scratch.u32_b.EnsureDiscard(n);
  RadixSortCore(keys, oids, n, key_width, scratch.u32_a.data(),
                scratch.u32_b.data(), options);
}

void RadixSortPairs64(uint64_t* keys, uint32_t* oids, size_t n,
                      int key_width, SortScratch& scratch,
                      const RadixOptions& options) {
  if (n <= 1) return;
  MCSORT_CHECK(key_width >= 1 && key_width <= 64);
  if (n <= kRadixInsertionMax) {
    InsertionSortPairs(keys, oids, n);
    return;
  }
  scratch.u64_a.EnsureDiscard(n);
  scratch.u32_a.EnsureDiscard(n);
  RadixSortCore(keys, oids, n, key_width, scratch.u64_a.data(),
                scratch.u32_a.data(), options);
}

void RadixSortPairsBank(int bank, void* keys, uint32_t* oids, size_t n,
                        int key_width, SortScratch& scratch,
                        const RadixOptions& options) {
  switch (bank) {
    case 16:
      RadixSortPairs16(static_cast<uint16_t*>(keys), oids, n, key_width,
                       scratch, options);
      break;
    case 32:
      RadixSortPairs32(static_cast<uint32_t*>(keys), oids, n, key_width,
                       scratch, options);
      break;
    case 64:
      RadixSortPairs64(static_cast<uint64_t*>(keys), oids, n, key_width,
                       scratch, options);
      break;
    default:
      MCSORT_CHECK(false && "unsupported bank size");
  }
}

}  // namespace mcsort

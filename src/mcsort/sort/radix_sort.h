// LSD radix sort of (key, oid) pairs — the paper's Sec. 7 future-work
// direction ("include radix-sort into our study: the performance of
// in-memory radix-sort depends on the size of the radix... code massaging
// would allow a careful choice of the radix size when radix-sorting
// multiple columns").
//
// Unlike the SIMD merge-sort, whose cost depends on the *bank* (16/32/64),
// radix cost depends on the number of digit passes ceil(w / radix_bits) —
// i.e. directly on the round's code width w. Code massaging therefore
// interacts with radix sorting through a different mechanism: moving a
// boundary bit can remove an entire pass. The ablation benchmark
// (bench/ablation_sort_kernels) contrasts the two kernels.
//
// The implementation is a classic out-of-place LSD radix: per pass,
// histogram + exclusive prefix + scatter, ping-ponging between the input
// arrays and scratch. Only the low `key_width` bits participate, so narrow
// codes stored in wide types do not pay for zero digits. Stable (which
// multi-column sorting does not require, but stability is free here).
#ifndef MCSORT_SORT_RADIX_SORT_H_
#define MCSORT_SORT_RADIX_SORT_H_

#include <cstddef>
#include <cstdint>

#include "mcsort/sort/simd_sort.h"

namespace mcsort {

struct RadixOptions {
  // Digit size in bits; 8 matches cache-resident 256-entry histograms.
  int radix_bits = 8;
};

// Sorts keys[0..n) ascending by their low `key_width` bits, permuting oids
// identically. Scratch buffers are reused across calls.
void RadixSortPairs16(uint16_t* keys, uint32_t* oids, size_t n,
                      int key_width, SortScratch& scratch,
                      const RadixOptions& options = {});
void RadixSortPairs32(uint32_t* keys, uint32_t* oids, size_t n,
                      int key_width, SortScratch& scratch,
                      const RadixOptions& options = {});
void RadixSortPairs64(uint64_t* keys, uint32_t* oids, size_t n,
                      int key_width, SortScratch& scratch,
                      const RadixOptions& options = {});

// Dispatch on the physical bank type (like SortPairsBank).
void RadixSortPairsBank(int bank, void* keys, uint32_t* oids, size_t n,
                        int key_width, SortScratch& scratch,
                        const RadixOptions& options = {});

}  // namespace mcsort

#endif  // MCSORT_SORT_RADIX_SORT_H_

#include "mcsort/sort/simd_sort.h"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "mcsort/common/bits.h"
#include "mcsort/common/cpu_info.h"
#include "mcsort/common/exec_context.h"
#include "mcsort/common/thread_pool.h"
#include "mcsort/common/logging.h"
#include "mcsort/simd/simd.h"
#include "mcsort/sort/merge_internal.h"
#include "mcsort/sort/scalar_kernels.h"

namespace mcsort {
namespace {

// Below this size the whole sort is a single insertion sort; the SIMD
// machinery's fixed costs do not pay off for tiny per-group sorts.
constexpr size_t kInsertionMax = kSimdSortInsertionMax;

#if MCSORT_HAVE_AVX2

using sort_internal::FourWayMergePass;
using sort_internal::FourWayScratch;
using sort_internal::MergePass;
using sort_internal::Ops32;
using sort_internal::Ops64;

// Elements per in-cache chunk: a chunk and its merge destination together
// occupy about half the L2 cache (the paper sizes in-cache merged runs at
// 0.5 * M_L2). Rounded down to a power of two, at least 4 registers.
template <typename Ops>
size_t InCacheChunkElems() {
  const size_t bytes_per_elem =
      sizeof(typename Ops::Key) + sizeof(typename Ops::Pay);
  const size_t target = CpuInfo::Get().l2_bytes / 2 / bytes_per_elem / 2;
  size_t chunk = 4 * Ops::kLanes;
  while (chunk * 2 <= target) chunk *= 2;
  return chunk;
}

// Sorts (keys, pays) of length n using (sk, sp) as the ping-pong buffers;
// guarantees the result ends up back in (keys, pays). Three phases per
// Eq. 5: in-register sorting networks, chunk-local in-cache bitonic merge
// passes, then out-of-cache merging with fanout F = 4 (Eq. 8's merge
// tree), falling back to a binary pass when only two runs remain.
template <typename Ops>
void SortCore(typename Ops::Key* keys, typename Ops::Pay* pays,
              typename Ops::Key* sk, typename Ops::Pay* sp, size_t n,
              FourWayScratch<Ops>* fourway) {
  using Key = typename Ops::Key;
  using Pay = typename Ops::Pay;
  constexpr size_t kLanes = Ops::kLanes;

  if (n <= kInsertionMax) {
    InsertionSortPairs(keys, pays, n);
    return;
  }

  // Phase 1 (in-register): sorted runs of kLanes values.
  size_t i = 0;
  for (; i + kLanes * kLanes <= n; i += kLanes * kLanes) {
    Ops::SortBlock(keys + i, pays + i);
  }
  for (; i < n; i += kLanes) {
    InsertionSortPairs(keys + i, pays + i, std::min(kLanes, n - i));
  }

  Key* cur_k = keys;
  Pay* cur_p = pays;
  Key* alt_k = sk;
  Pay* alt_p = sp;
  auto flip = [&] {
    std::swap(cur_k, alt_k);
    std::swap(cur_p, alt_p);
  };

  const size_t chunk = InCacheChunkElems<Ops>();
  if (n <= chunk) {
    for (size_t run = kLanes; run < n; run *= 2) {
      MergePass<Ops>(cur_k, cur_p, alt_k, alt_p, 0, n, run);
      flip();
    }
  } else {
    // Phase 2 (in-cache): every chunk runs the same fixed number of local
    // passes so all chunks land in the same buffer.
    size_t passes = 0;
    for (size_t run = kLanes; run < chunk; run *= 2) ++passes;
    for (size_t c = 0; c < n; c += chunk) {
      const size_t stop = std::min(c + chunk, n);
      Key* a_k = cur_k;
      Pay* a_p = cur_p;
      Key* b_k = alt_k;
      Pay* b_p = alt_p;
      size_t run = kLanes;
      for (size_t p = 0; p < passes; ++p) {
        MergePass<Ops>(a_k, a_p, b_k, b_p, c, stop, run);
        std::swap(a_k, b_k);
        std::swap(a_p, b_p);
        run *= 2;
      }
    }
    if (passes % 2 == 1) flip();
    // Phase 3 (out-of-cache): four-way passes, binary for a final pair.
    for (size_t run = chunk; run < n;) {
      const size_t runs_left = (n + run - 1) / run;
      if (runs_left <= 2) {
        MergePass<Ops>(cur_k, cur_p, alt_k, alt_p, 0, n, run);
        run *= 2;
      } else {
        FourWayMergePass<Ops>(cur_k, cur_p, alt_k, alt_p, 0, n, run,
                              fourway);
        run *= 4;
      }
      flip();
    }
  }

  if (cur_k != keys) {
    std::memcpy(keys, cur_k, n * sizeof(Key));
    std::memcpy(pays, cur_p, n * sizeof(Pay));
  }
}

// Four-way staging buffers, lazily grown, one pair per process... they are
// small and per-call scratch lives in SortScratch: keep them thread-local
// to stay safe under the segment-parallel sorter.
FourWayScratch<Ops32>& FourWay32() {
  thread_local FourWayScratch<Ops32> scratch;
  return scratch;
}
FourWayScratch<Ops64>& FourWay64() {
  thread_local FourWayScratch<Ops64> scratch;
  return scratch;
}

#endif  // MCSORT_HAVE_AVX2

}  // namespace

void SortPairs32(uint32_t* keys, uint32_t* oids, size_t n,
                 SortScratch& scratch) {
  if (n <= 1) return;
#if MCSORT_HAVE_AVX2
  if (n <= kInsertionMax) {
    InsertionSortPairs(keys, oids, n);
    return;
  }
  scratch.u32_a.EnsureDiscard(n);
  scratch.u32_b.EnsureDiscard(n);
  SortCore<Ops32>(keys, oids, scratch.u32_a.data(), scratch.u32_b.data(), n,
                  &FourWay32());
#else
  ReferenceSortPairs(keys, oids, n);
#endif
}

void SortPairs16(uint16_t* keys, uint32_t* oids, size_t n,
                 SortScratch& scratch) {
  if (n <= 1) return;
#if MCSORT_HAVE_AVX2
  if (n <= kInsertionMax) {
    InsertionSortPairs(keys, oids, n);
    return;
  }
  // Widen to 32-bit lanes (footnote 4's "simulated with more primitive
  // instructions"), sort with the 32-bit kernel, narrow back.
  scratch.u32_c.EnsureDiscard(n);
  uint32_t* wide = scratch.u32_c.data();
  for (size_t i = 0; i < n; ++i) wide[i] = keys[i];
  scratch.u32_a.EnsureDiscard(n);
  scratch.u32_b.EnsureDiscard(n);
  SortCore<Ops32>(wide, oids, scratch.u32_a.data(), scratch.u32_b.data(), n,
                  &FourWay32());
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<uint16_t>(wide[i]);
#else
  ReferenceSortPairs(keys, oids, n);
#endif
}

void SortPairs64(uint64_t* keys, uint32_t* oids, size_t n,
                 SortScratch& scratch) {
  if (n <= 1) return;
#if MCSORT_HAVE_AVX2
  if (n <= kInsertionMax) {
    InsertionSortPairs(keys, oids, n);
    return;
  }
  // 64-bit banks carry 64-bit payload lanes; widen the oids once.
  scratch.u64_a.EnsureDiscard(n);
  scratch.u64_b.EnsureDiscard(n);
  scratch.u64_c.EnsureDiscard(n);
  uint64_t* pay = scratch.u64_a.data();
  for (size_t i = 0; i < n; ++i) pay[i] = oids[i];
  SortCore<Ops64>(keys, pay, scratch.u64_b.data(), scratch.u64_c.data(), n,
                  &FourWay64());
  for (size_t i = 0; i < n; ++i) oids[i] = static_cast<uint32_t>(pay[i]);
#else
  ReferenceSortPairs(keys, oids, n);
#endif
}

namespace {

// Power-of-two part count >= thread count keeps the merge tree regular. A
// stoppable context raises the count until one part — the largest
// uninterruptible unit of phase 1 — stays under kStopSortPartMaxRows.
size_t PartCount(size_t n, int threads, const ExecContext* ctx) {
  size_t parts = 1;
  while (parts < static_cast<size_t>(threads)) parts *= 2;
  if (ctx != nullptr && ctx->stoppable()) {
    while ((n + parts - 1) / parts > kStopSortPartMaxRows && parts < n) {
      parts *= 2;
    }
  }
  return parts;
}

}  // namespace

void ParallelSortPairs32(uint32_t* keys, uint32_t* oids, size_t n,
                         ThreadPool& pool,
                         std::vector<SortScratch>& scratches,
                         const ExecContext* ctx) {
  MCSORT_CHECK(scratches.size() >=
               static_cast<size_t>(pool.num_threads()));
#if MCSORT_HAVE_AVX2
  if (pool.num_threads() <= 1 || n < kParallelSortMinRows) {
    SortPairs32(keys, oids, n, scratches[0]);
    return;
  }
  const size_t parts = PartCount(n, pool.num_threads(), ctx);
  const size_t part_len = (n + parts - 1) / parts;

  pool.ParallelFor(
      parts,
      [&](uint64_t begin, uint64_t end, int worker) {
        for (size_t p = begin; p < end; ++p) {
          const size_t lo = p * part_len;
          if (lo >= n) break;
          const size_t hi = std::min(lo + part_len, n);
          SortPairs32(keys + lo, oids + lo, hi - lo,
                      scratches[static_cast<size_t>(worker)]);
        }
      },
      ctx);

  // Parallel pairwise merge passes, ping-ponging with scratches[0].
  scratches[0].u32_a.EnsureDiscard(n);
  scratches[0].u32_b.EnsureDiscard(n);
  sort_internal::ParallelMergePasses<Ops32>(keys, oids,
                                            scratches[0].u32_a.data(),
                                            scratches[0].u32_b.data(), n,
                                            part_len, pool, ctx);
#else
  SortPairs32(keys, oids, n, scratches[0]);
  (void)pool;
  (void)ctx;
#endif
}

void ParallelSortPairs16(uint16_t* keys, uint32_t* oids, size_t n,
                         ThreadPool& pool,
                         std::vector<SortScratch>& scratches,
                         const ExecContext* ctx) {
  MCSORT_CHECK(scratches.size() >=
               static_cast<size_t>(pool.num_threads()));
#if MCSORT_HAVE_AVX2
  if (pool.num_threads() <= 1 || n < kParallelSortMinRows) {
    SortPairs16(keys, oids, n, scratches[0]);
    return;
  }
  // Widen to 32-bit lanes (footnote 4, as in the serial kernel) — the
  // widened copy lives in scratches[0].u32_c, which the 32-bit parallel
  // sort never touches — run the 32-bit parallel sort, narrow back.
  scratches[0].u32_c.EnsureDiscard(n);
  uint32_t* wide = scratches[0].u32_c.data();
  pool.ParallelFor(
      n,
      [&](uint64_t begin, uint64_t end, int) {
        for (size_t i = begin; i < end; ++i) wide[i] = keys[i];
      },
      ctx);
  // A stop during the widening leaves `wide` partially written; bail
  // before anything reads it (keys keep their original, defined values).
  if (ctx != nullptr && ctx->StopRequested()) return;
  ParallelSortPairs32(wide, oids, n, pool, scratches, ctx);
  // The narrow-back is unconditional: a stop mid-sort leaves the widened
  // copy unsorted but fully written, so the result is defined garbage the
  // caller discards after re-checking ctx.
  pool.ParallelFor(n, [&](uint64_t begin, uint64_t end, int) {
    for (size_t i = begin; i < end; ++i) {
      keys[i] = static_cast<uint16_t>(wide[i]);
    }
  });
#else
  SortPairs16(keys, oids, n, scratches[0]);
  (void)pool;
  (void)ctx;
#endif
}

void ParallelSortPairs64(uint64_t* keys, uint32_t* oids, size_t n,
                         ThreadPool& pool,
                         std::vector<SortScratch>& scratches,
                         const ExecContext* ctx) {
  MCSORT_CHECK(scratches.size() >=
               static_cast<size_t>(pool.num_threads()));
#if MCSORT_HAVE_AVX2
  if (pool.num_threads() <= 1 || n < kParallelSortMinRows) {
    SortPairs64(keys, oids, n, scratches[0]);
    return;
  }
  // 64-bit banks carry 64-bit payload lanes; widen the oids once into
  // scratches[0].u64_c (the per-part sorts only use u64_a/u64_b).
  scratches[0].u64_c.EnsureDiscard(n);
  uint64_t* pay = scratches[0].u64_c.data();
  pool.ParallelFor(
      n,
      [&](uint64_t begin, uint64_t end, int) {
        for (size_t i = begin; i < end; ++i) pay[i] = oids[i];
      },
      ctx);
  // A stop during the widening leaves `pay` partially written; bail before
  // anything reads it.
  if (ctx != nullptr && ctx->StopRequested()) return;

  const size_t parts = PartCount(n, pool.num_threads(), ctx);
  const size_t part_len = (n + parts - 1) / parts;
  pool.ParallelFor(
      parts,
      [&](uint64_t begin, uint64_t end, int worker) {
        SortScratch& scratch = scratches[static_cast<size_t>(worker)];
        for (size_t p = begin; p < end; ++p) {
          const size_t lo = p * part_len;
          if (lo >= n) break;
          const size_t len = std::min(lo + part_len, n) - lo;
          scratch.u64_a.EnsureDiscard(len);
          scratch.u64_b.EnsureDiscard(len);
          SortCore<Ops64>(keys + lo, pay + lo, scratch.u64_a.data(),
                          scratch.u64_b.data(), len, &FourWay64());
        }
      },
      ctx);

  // The part sorts are done with scratches[0]'s ping-pong buffers; regrow
  // them to full length for the merge passes.
  scratches[0].u64_a.EnsureDiscard(n);
  scratches[0].u64_b.EnsureDiscard(n);
  sort_internal::ParallelMergePasses<Ops64>(keys, pay,
                                            scratches[0].u64_a.data(),
                                            scratches[0].u64_b.data(), n,
                                            part_len, pool, ctx);
  pool.ParallelFor(n, [&](uint64_t begin, uint64_t end, int) {
    for (size_t i = begin; i < end; ++i) {
      oids[i] = static_cast<uint32_t>(pay[i]);
    }
  });
#else
  SortPairs64(keys, oids, n, scratches[0]);
  (void)pool;
  (void)ctx;
#endif
}

void ParallelSortPairsBank(int bank, void* keys, uint32_t* oids, size_t n,
                           ThreadPool& pool,
                           std::vector<SortScratch>& scratches,
                           const ExecContext* ctx) {
  switch (bank) {
    case 16:
      ParallelSortPairs16(static_cast<uint16_t*>(keys), oids, n, pool,
                          scratches, ctx);
      break;
    case 32:
      ParallelSortPairs32(static_cast<uint32_t*>(keys), oids, n, pool,
                          scratches, ctx);
      break;
    case 64:
      ParallelSortPairs64(static_cast<uint64_t*>(keys), oids, n, pool,
                          scratches, ctx);
      break;
    default:
      MCSORT_CHECK(false && "unsupported bank size");
  }
}

void SortPairsBank(int bank, void* keys, uint32_t* oids, size_t n,
                   SortScratch& scratch) {
  switch (bank) {
    case 16:
      SortPairs16(static_cast<uint16_t*>(keys), oids, n, scratch);
      break;
    case 32:
      SortPairs32(static_cast<uint32_t*>(keys), oids, n, scratch);
      break;
    case 64:
      SortPairs64(static_cast<uint64_t*>(keys), oids, n, scratch);
      break;
    default:
      MCSORT_CHECK(false && "unsupported bank size");
  }
}

// ---------------------------------------------------------------------------
// OVC merge kernel
// ---------------------------------------------------------------------------

namespace {

using sort_internal::OvcCode;
using sort_internal::OvcCounters;
using sort_internal::OvcEncodeRun;
using sort_internal::OvcMergePass;
using sort_internal::OvcParallelMergePasses;

void AccumulateOvcStats(const OvcCounters& counters, OvcSortStats* stats) {
  if (stats == nullptr) return;
  stats->full_compares += counters.full_compares;
  stats->emitted += counters.emitted;
}

// Encodes codes for the pre-sorted runs of `run_len` in keys[0..n), then
// binary-merges them on codes, ping-ponging the (keys, oids, codes)
// triples; the sorted result always ends back in (keys, oids). Scalar —
// this is the phase where offset-value coding replaces key comparisons.
template <int Bank, typename K>
void OvcMergeRuns(K* keys, uint32_t* oids, size_t n, size_t run_len,
                  K* alt_k, uint32_t* alt_p, OvcCode* codes, OvcCode* alt_c,
                  OvcSortStats* stats) {
  for (size_t i = 0; i < n; i += run_len) {
    OvcEncodeRun<Bank>(keys + i, codes + i, std::min(run_len, n - i));
  }
  OvcCounters counters;
  K* cur_k = keys;
  uint32_t* cur_p = oids;
  OvcCode* cur_c = codes;
  for (size_t run = run_len; run < n; run *= 2) {
    OvcMergePass<Bank>(cur_k, cur_p, cur_c, alt_k, alt_p, alt_c, n, run,
                       &counters);
    std::swap(cur_k, alt_k);
    std::swap(cur_p, alt_p);
    std::swap(cur_c, alt_c);
  }
  if (cur_k != keys) {
    std::memcpy(keys, cur_k, n * sizeof(K));
    std::memcpy(oids, cur_p, n * sizeof(uint32_t));
  }
  AccumulateOvcStats(counters, stats);
}

// Shared parallel OVC driver: serial OVC part sorts (one per worker, using
// that worker's scratch), per-part code encoding into the shared code
// array, then parallel code-carrying pairwise merge passes. `ensure_alt`
// runs after the part sorts (the shared buffers may be the same
// allocations the part sorts used at part length) and returns the
// full-length (alt_k, alt_p, codes, alt_c) buffers from scratches[0].
// Entirely scalar after run formation, so unlike ParallelSortPairs* this
// path needs no AVX2 gate.
template <int Bank, typename K, typename SerialFn, typename EnsureAlt>
void ParallelOvcCore(K* keys, uint32_t* oids, size_t n, ThreadPool& pool,
                     std::vector<SortScratch>& scratches,
                     const ExecContext* ctx, OvcSortStats* stats,
                     SerialFn serial, EnsureAlt ensure_alt) {
  MCSORT_CHECK(scratches.size() >=
               static_cast<size_t>(pool.num_threads()));
  if (pool.num_threads() <= 1 || n < kParallelSortMinRows) {
    serial(keys, oids, n, scratches[0], stats);
    return;
  }
  const size_t parts = PartCount(n, pool.num_threads(), ctx);
  const size_t part_len = (n + parts - 1) / parts;
  std::vector<OvcSortStats> worker_stats(
      static_cast<size_t>(pool.num_threads()));
  pool.ParallelFor(
      parts,
      [&](uint64_t begin, uint64_t end, int worker) {
        for (size_t p = begin; p < end; ++p) {
          const size_t lo = p * part_len;
          if (lo >= n) break;
          const size_t hi = std::min(lo + part_len, n);
          serial(keys + lo, oids + lo, hi - lo,
                 scratches[static_cast<size_t>(worker)],
                 &worker_stats[static_cast<size_t>(worker)]);
        }
      },
      ctx);
  if (ctx != nullptr && ctx->StopRequested()) return;

  K* alt_k;
  uint32_t* alt_p;
  OvcCode* codes;
  OvcCode* alt_c;
  std::tie(alt_k, alt_p, codes, alt_c) = ensure_alt();
  // Each part is one sorted run now; encode its codes into the shared
  // array (one linear scan — the part sorts' own codes lived in worker
  // scratch at part length and are gone).
  pool.ParallelFor(
      parts,
      [&](uint64_t begin, uint64_t end, int) {
        for (size_t p = begin; p < end; ++p) {
          const size_t lo = p * part_len;
          if (lo >= n) break;
          const size_t hi = std::min(lo + part_len, n);
          OvcEncodeRun<Bank>(keys + lo, codes + lo, hi - lo);
        }
      },
      ctx);
  if (ctx != nullptr && ctx->StopRequested()) return;

  OvcCounters counters;
  OvcParallelMergePasses<Bank>(keys, oids, codes, alt_k, alt_p, alt_c, n,
                               part_len, pool, ctx, &counters);
  if (stats != nullptr) {
    for (const OvcSortStats& ws : worker_stats) {
      stats->full_compares += ws.full_compares;
      stats->emitted += ws.emitted;
    }
    AccumulateOvcStats(counters, stats);
  }
}

}  // namespace

void OvcSortPairs32(uint32_t* keys, uint32_t* oids, size_t n,
                    SortScratch& scratch, OvcSortStats* stats) {
  if (n <= kOvcRunElems) {
    // A single base run: the SIMD sort is the whole job, no merges to
    // accelerate.
    SortPairs32(keys, oids, n, scratch);
    return;
  }
  for (size_t i = 0; i < n; i += kOvcRunElems) {
    SortPairs32(keys + i, oids + i, std::min(kOvcRunElems, n - i), scratch);
  }
  scratch.u32_a.EnsureDiscard(n);
  scratch.u32_b.EnsureDiscard(n);
  scratch.u16_a.EnsureDiscard(n);
  scratch.u16_b.EnsureDiscard(n);
  OvcMergeRuns<32>(keys, oids, n, kOvcRunElems, scratch.u32_a.data(),
                   scratch.u32_b.data(), scratch.u16_a.data(),
                   scratch.u16_b.data(), stats);
}

void OvcSortPairs16(uint16_t* keys, uint32_t* oids, size_t n,
                    SortScratch& scratch, OvcSortStats* stats) {
  if (n <= kOvcRunElems) {
    SortPairs16(keys, oids, n, scratch);
    return;
  }
  for (size_t i = 0; i < n; i += kOvcRunElems) {
    SortPairs16(keys + i, oids + i, std::min(kOvcRunElems, n - i), scratch);
  }
  // The scalar merge works on the native 16-bit keys directly — no
  // widening, unlike the SIMD kernel.
  scratch.u16_c.EnsureDiscard(n);
  scratch.u32_a.EnsureDiscard(n);
  scratch.u16_a.EnsureDiscard(n);
  scratch.u16_b.EnsureDiscard(n);
  OvcMergeRuns<16>(keys, oids, n, kOvcRunElems, scratch.u16_c.data(),
                   scratch.u32_a.data(), scratch.u16_a.data(),
                   scratch.u16_b.data(), stats);
}

void OvcSortPairs64(uint64_t* keys, uint32_t* oids, size_t n,
                    SortScratch& scratch, OvcSortStats* stats) {
  if (n <= kOvcRunElems) {
    SortPairs64(keys, oids, n, scratch);
    return;
  }
  for (size_t i = 0; i < n; i += kOvcRunElems) {
    SortPairs64(keys + i, oids + i, std::min(kOvcRunElems, n - i), scratch);
  }
  // The scalar merge keeps oids in their native 32 bits — no payload
  // widening, unlike the SIMD kernel.
  scratch.u64_a.EnsureDiscard(n);
  scratch.u32_a.EnsureDiscard(n);
  scratch.u16_a.EnsureDiscard(n);
  scratch.u16_b.EnsureDiscard(n);
  OvcMergeRuns<64>(keys, oids, n, kOvcRunElems, scratch.u64_a.data(),
                   scratch.u32_a.data(), scratch.u16_a.data(),
                   scratch.u16_b.data(), stats);
}

void OvcSortPairsBank(int bank, void* keys, uint32_t* oids, size_t n,
                      SortScratch& scratch, OvcSortStats* stats) {
  switch (bank) {
    case 16:
      OvcSortPairs16(static_cast<uint16_t*>(keys), oids, n, scratch, stats);
      break;
    case 32:
      OvcSortPairs32(static_cast<uint32_t*>(keys), oids, n, scratch, stats);
      break;
    case 64:
      OvcSortPairs64(static_cast<uint64_t*>(keys), oids, n, scratch, stats);
      break;
    default:
      MCSORT_CHECK(false && "unsupported bank size");
  }
}

void ParallelOvcSortPairs32(uint32_t* keys, uint32_t* oids, size_t n,
                            ThreadPool& pool,
                            std::vector<SortScratch>& scratches,
                            const ExecContext* ctx, OvcSortStats* stats) {
  ParallelOvcCore<32>(
      keys, oids, n, pool, scratches, ctx, stats,
      [](uint32_t* k, uint32_t* p, size_t len, SortScratch& s,
         OvcSortStats* st) { OvcSortPairs32(k, p, len, s, st); },
      [&] {
        scratches[0].u32_a.EnsureDiscard(n);
        scratches[0].u32_b.EnsureDiscard(n);
        scratches[0].u16_a.EnsureDiscard(n);
        scratches[0].u16_b.EnsureDiscard(n);
        return std::make_tuple(scratches[0].u32_a.data(),
                               scratches[0].u32_b.data(),
                               scratches[0].u16_a.data(),
                               scratches[0].u16_b.data());
      });
}

void ParallelOvcSortPairs16(uint16_t* keys, uint32_t* oids, size_t n,
                            ThreadPool& pool,
                            std::vector<SortScratch>& scratches,
                            const ExecContext* ctx, OvcSortStats* stats) {
  ParallelOvcCore<16>(
      keys, oids, n, pool, scratches, ctx, stats,
      [](uint16_t* k, uint32_t* p, size_t len, SortScratch& s,
         OvcSortStats* st) { OvcSortPairs16(k, p, len, s, st); },
      [&] {
        scratches[0].u16_c.EnsureDiscard(n);
        scratches[0].u32_a.EnsureDiscard(n);
        scratches[0].u16_a.EnsureDiscard(n);
        scratches[0].u16_b.EnsureDiscard(n);
        return std::make_tuple(scratches[0].u16_c.data(),
                               scratches[0].u32_a.data(),
                               scratches[0].u16_a.data(),
                               scratches[0].u16_b.data());
      });
}

void ParallelOvcSortPairs64(uint64_t* keys, uint32_t* oids, size_t n,
                            ThreadPool& pool,
                            std::vector<SortScratch>& scratches,
                            const ExecContext* ctx, OvcSortStats* stats) {
  ParallelOvcCore<64>(
      keys, oids, n, pool, scratches, ctx, stats,
      [](uint64_t* k, uint32_t* p, size_t len, SortScratch& s,
         OvcSortStats* st) { OvcSortPairs64(k, p, len, s, st); },
      [&] {
        scratches[0].u64_a.EnsureDiscard(n);
        scratches[0].u32_a.EnsureDiscard(n);
        scratches[0].u16_a.EnsureDiscard(n);
        scratches[0].u16_b.EnsureDiscard(n);
        return std::make_tuple(scratches[0].u64_a.data(),
                               scratches[0].u32_a.data(),
                               scratches[0].u16_a.data(),
                               scratches[0].u16_b.data());
      });
}

void ParallelOvcSortPairsBank(int bank, void* keys, uint32_t* oids, size_t n,
                              ThreadPool& pool,
                              std::vector<SortScratch>& scratches,
                              const ExecContext* ctx, OvcSortStats* stats) {
  switch (bank) {
    case 16:
      ParallelOvcSortPairs16(static_cast<uint16_t*>(keys), oids, n, pool,
                             scratches, ctx, stats);
      break;
    case 32:
      ParallelOvcSortPairs32(static_cast<uint32_t*>(keys), oids, n, pool,
                             scratches, ctx, stats);
      break;
    case 64:
      ParallelOvcSortPairs64(static_cast<uint64_t*>(keys), oids, n, pool,
                             scratches, ctx, stats);
      break;
    default:
      MCSORT_CHECK(false && "unsupported bank size");
  }
}

}  // namespace mcsort

#include "mcsort/sort/counting_sort.h"

#include <algorithm>
#include <cstring>

#include "mcsort/common/exec_context.h"
#include "mcsort/common/logging.h"
#include "mcsort/common/thread_pool.h"
#include "mcsort/sort/scalar_kernels.h"

namespace mcsort {
namespace {

// Below this size insertion sort beats even one O(K) domain walk.
constexpr size_t kCountingInsertionMax = 64;

// When the domain is this many times larger than the input, the O(K)
// prefix and regeneration walks dominate and the comparison sort wins;
// fall back to SortPairsBank. (The cost model's cache-residency term makes
// the planner avoid this regime anyway — the guard keeps forced dispatch
// and direct callers safe.)
constexpr size_t kCountingDomainSlack = 8;

// Histogram + exclusive prefix + stable oid scatter + key regeneration.
// After the scatter, counts[v] has advanced from v's start offset to its
// end offset, so the sorted key column is rebuilt by walking the domain —
// sequential stores, no key gather.
template <typename K>
void CountingSortCore(K* keys, uint32_t* oids, size_t n, size_t domain,
                      uint64_t* counts, uint32_t* oid_out) {
  std::memset(counts, 0, domain * sizeof(uint64_t));
  for (size_t i = 0; i < n; ++i) ++counts[keys[i]];
  uint64_t running = 0;
  for (size_t v = 0; v < domain; ++v) {
    const uint64_t freq = counts[v];
    counts[v] = running;
    running += freq;
  }
  for (size_t i = 0; i < n; ++i) {
    oid_out[counts[keys[i]]++] = oids[i];
  }
  std::memcpy(oids, oid_out, n * sizeof(uint32_t));
  size_t pos = 0;
  for (size_t v = 0; v < domain; ++v) {
    const size_t stop = static_cast<size_t>(counts[v]);
    for (; pos < stop; ++pos) keys[pos] = static_cast<K>(v);
  }
}

template <typename K>
void CountingSortPairsImpl(K* keys, uint32_t* oids, size_t n, int key_width,
                           SortScratch& scratch) {
  if (n <= 1) return;
  MCSORT_CHECK(CountingSortFeasible(key_width));
  if (n <= kCountingInsertionMax) {
    InsertionSortPairs(keys, oids, n);
    return;
  }
  const size_t domain = size_t{1} << key_width;
  if (domain > n * kCountingDomainSlack) {
    SortPairsBank(static_cast<int>(sizeof(K) * 8), keys, oids, n, scratch);
    return;
  }
  scratch.u64_a.EnsureDiscard(domain);
  scratch.u32_a.EnsureDiscard(n);
  CountingSortCore(keys, oids, n, domain, scratch.u64_a.data(),
                   scratch.u32_a.data());
}

}  // namespace

void CountingSortPairs16(uint16_t* keys, uint32_t* oids, size_t n,
                         int key_width, SortScratch& scratch) {
  CountingSortPairsImpl(keys, oids, n, key_width, scratch);
}

void CountingSortPairs32(uint32_t* keys, uint32_t* oids, size_t n,
                         int key_width, SortScratch& scratch) {
  CountingSortPairsImpl(keys, oids, n, key_width, scratch);
}

void CountingSortPairs64(uint64_t* keys, uint32_t* oids, size_t n,
                         int key_width, SortScratch& scratch) {
  CountingSortPairsImpl(keys, oids, n, key_width, scratch);
}

void CountingSortPairsBank(int bank, void* keys, uint32_t* oids, size_t n,
                           int key_width, SortScratch& scratch) {
  switch (bank) {
    case 16:
      CountingSortPairs16(static_cast<uint16_t*>(keys), oids, n, key_width,
                          scratch);
      break;
    case 32:
      CountingSortPairs32(static_cast<uint32_t*>(keys), oids, n, key_width,
                          scratch);
      break;
    case 64:
      CountingSortPairs64(static_cast<uint64_t*>(keys), oids, n, key_width,
                          scratch);
      break;
    default:
      MCSORT_CHECK(false && "unsupported bank size");
  }
}

namespace {

// Parallel counting sort: per-chunk histograms in one shared buffer, a
// serial combined exclusive prefix that hands every (chunk, value) its
// scatter base — chunk-major, so the scatter stays stable — then a
// parallel scatter and a serial key regeneration.
template <typename K>
void ParallelCountingSortImpl(K* keys, uint32_t* oids, size_t n,
                              int key_width, ThreadPool& pool,
                              std::vector<SortScratch>& scratches,
                              const ExecContext* ctx) {
  MCSORT_CHECK(scratches.size() >=
               static_cast<size_t>(pool.num_threads()));
  MCSORT_CHECK(CountingSortFeasible(key_width));
  if (pool.num_threads() <= 1 || n < kParallelSortMinRows ||
      key_width > kParallelCountingMaxWidth) {
    CountingSortPairsImpl(keys, oids, n, key_width, scratches[0]);
    return;
  }
  const size_t domain = size_t{1} << key_width;
  if (domain > n * kCountingDomainSlack) {
    ParallelSortPairsBank(static_cast<int>(sizeof(K) * 8), keys, oids, n,
                          pool, scratches, ctx);
    return;
  }
  // A few chunks per worker smooths skew; per-chunk rows stay large
  // enough that the duplicated O(domain) prefix work is noise.
  const size_t chunks =
      std::max<size_t>(1, static_cast<size_t>(pool.num_threads()) * 4);
  const size_t chunk_len = (n + chunks - 1) / chunks;
  uint64_t* hist = nullptr;
  scratches[0].u64_a.EnsureDiscard(chunks * domain);
  hist = scratches[0].u64_a.data();
  scratches[0].u32_a.EnsureDiscard(n);
  uint32_t* oid_out = scratches[0].u32_a.data();

  pool.ParallelFor(
      chunks,
      [&](uint64_t begin, uint64_t end, int) {
        for (size_t c = begin; c < end; ++c) {
          uint64_t* h = hist + c * domain;
          std::memset(h, 0, domain * sizeof(uint64_t));
          const size_t lo = c * chunk_len;
          const size_t hi = std::min(lo + chunk_len, n);
          for (size_t i = lo; i < hi; ++i) ++h[keys[i]];
        }
      },
      ctx);
  if (ctx != nullptr && ctx->StopRequested()) return;

  // Combined exclusive prefix in (value, chunk) order: each chunk's slot
  // for value v becomes the base offset where that chunk scatters its v's.
  uint64_t running = 0;
  for (size_t v = 0; v < domain; ++v) {
    for (size_t c = 0; c < chunks; ++c) {
      uint64_t* slot = hist + c * domain + v;
      const uint64_t freq = *slot;
      *slot = running;
      running += freq;
    }
  }

  pool.ParallelFor(
      chunks,
      [&](uint64_t begin, uint64_t end, int) {
        for (size_t c = begin; c < end; ++c) {
          uint64_t* h = hist + c * domain;
          const size_t lo = c * chunk_len;
          const size_t hi = std::min(lo + chunk_len, n);
          for (size_t i = lo; i < hi; ++i) {
            oid_out[h[keys[i]]++] = oids[i];
          }
        }
      },
      ctx);
  if (ctx != nullptr && ctx->StopRequested()) return;

  pool.ParallelFor(
      n,
      [&](uint64_t begin, uint64_t end, int) {
        std::memcpy(oids + begin, oid_out + begin,
                    (end - begin) * sizeof(uint32_t));
      },
      ctx);
  if (ctx != nullptr && ctx->StopRequested()) return;

  // Key regeneration from the last chunk's advanced offsets (= each
  // value's global end). One sequential store pass; cheap enough serial.
  size_t pos = 0;
  const uint64_t* last = hist + (chunks - 1) * domain;
  for (size_t v = 0; v < domain; ++v) {
    const size_t stop = static_cast<size_t>(last[v]);
    for (; pos < stop; ++pos) keys[pos] = static_cast<K>(v);
  }
}

}  // namespace

void ParallelCountingSortPairsBank(int bank, void* keys, uint32_t* oids,
                                   size_t n, int key_width, ThreadPool& pool,
                                   std::vector<SortScratch>& scratches,
                                   const ExecContext* ctx) {
  switch (bank) {
    case 16:
      ParallelCountingSortImpl(static_cast<uint16_t*>(keys), oids, n,
                               key_width, pool, scratches, ctx);
      break;
    case 32:
      ParallelCountingSortImpl(static_cast<uint32_t*>(keys), oids, n,
                               key_width, pool, scratches, ctx);
      break;
    case 64:
      ParallelCountingSortImpl(static_cast<uint64_t*>(keys), oids, n,
                               key_width, pool, scratches, ctx);
      break;
    default:
      MCSORT_CHECK(false && "unsupported bank size");
  }
}

}  // namespace mcsort

// SIMD-enabled merge-sort of (key, oid) pairs — the paper's `SIMD-Sort`
// physical operator, one implementation per bank size b in {16, 32, 64}.
//
// Implementation follows the merge-sort with sorting-network kernel of
// Balkesen et al. [5] as modeled by the paper's Eq. 5:
//   1. in-register phase: sorting networks produce runs of S/b values;
//   2. in-cache phase: bitonic-merge passes, chunk-local so runs up to
//      half the L2 cache are built without leaving L2;
//   3. out-of-cache phase: merge passes over the whole array.
// Tiny inputs short-circuit to insertion sort (groups in later sorting
// rounds are often a handful of rows).
//
// Keys sort ascending as unsigned integers; `oids` is permuted identically.
// The b=16 sort stores 16-bit keys but widens to 32-bit lanes internally —
// AVX2 lacks several 16-bit-bank operations, so they are "simulated with
// more primitive instructions" exactly as the paper's footnote 4 describes,
// which is why b=16 performs close to b=32 rather than 2x faster.
#ifndef MCSORT_SORT_SIMD_SORT_H_
#define MCSORT_SORT_SIMD_SORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mcsort/common/aligned_buffer.h"

namespace mcsort {

// Below this many rows SortPairs* short-circuits to a single insertion
// sort. Exposed so the segment-sort executor can bucket "tiny" groups
// (later sorting rounds produce many of them) and batch their dispatch.
constexpr size_t kSimdSortInsertionMax = 32;

// Below this many rows the parallel whole-array sorts fall back to the
// serial kernels: split + merge bookkeeping does not pay off.
constexpr size_t kParallelSortMinRows = 4096;

// Reusable scratch for the sort routines. One instance per thread; reusing
// it across calls keeps the per-call overhead (the cost model's C_overhead)
// to buffer bookkeeping rather than repeated large allocations.
struct SortScratch {
  AlignedBuffer<uint32_t> u32_a;
  AlignedBuffer<uint32_t> u32_b;
  AlignedBuffer<uint32_t> u32_c;
  AlignedBuffer<uint64_t> u64_a;
  AlignedBuffer<uint64_t> u64_b;
  AlignedBuffer<uint64_t> u64_c;
  // Offset-value code arrays (one uint16 per element) for the OVC merge
  // kernel: codes + their merge-pass ping-pong partner + a spare the
  // 16-bit bank uses as its alternate key buffer.
  AlignedBuffer<uint16_t> u16_a;
  AlignedBuffer<uint16_t> u16_b;
  AlignedBuffer<uint16_t> u16_c;
};

// Sorts keys[0..n) ascending, permuting oids identically. Keys may use the
// full width of their type.
void SortPairs16(uint16_t* keys, uint32_t* oids, size_t n,
                 SortScratch& scratch);
void SortPairs32(uint32_t* keys, uint32_t* oids, size_t n,
                 SortScratch& scratch);
void SortPairs64(uint64_t* keys, uint32_t* oids, size_t n,
                 SortScratch& scratch);

// Dispatches on bank size (16, 32, or 64); `keys` must point to an array of
// the matching integer type.
void SortPairsBank(int bank, void* keys, uint32_t* oids, size_t n,
                   SortScratch& scratch);

class ExecContext;  // common/exec_context.h
class ThreadPool;   // common/thread_pool.h

// When a stoppable ExecContext is attached, the parallel sorts cap the
// phase-1 part length at this many rows (raising the part count instead):
// one part sort is the largest uninterruptible unit, so its size bounds
// the cancellation latency.
constexpr size_t kStopSortPartMaxRows = size_t{1} << 20;

// Parallel whole-array sorts, one per bank: the array is split into 2^k
// parts sorted concurrently (one SortScratch per worker), then merged by
// parallel pairwise passes. `scratches` must hold one entry per pool
// worker; scratches[0] also provides the ping-pong buffers for the merge
// passes (and the widening buffer for the 16/64-bit banks). Arrays below
// kParallelSortMinRows fall back to the serial kernels.
//
// A stoppable `ctx` makes the sort cancellable at bounded latency: extra
// (smaller) parts in phase 1 and chunked pair merges in the passes. On a
// stop the array contents are unspecified — the caller re-checks ctx and
// discards them. Plain contexts add no overhead.
void ParallelSortPairs16(uint16_t* keys, uint32_t* oids, size_t n,
                         ThreadPool& pool,
                         std::vector<SortScratch>& scratches,
                         const ExecContext* ctx = nullptr);
void ParallelSortPairs32(uint32_t* keys, uint32_t* oids, size_t n,
                         ThreadPool& pool,
                         std::vector<SortScratch>& scratches,
                         const ExecContext* ctx = nullptr);
void ParallelSortPairs64(uint64_t* keys, uint32_t* oids, size_t n,
                         ThreadPool& pool,
                         std::vector<SortScratch>& scratches,
                         const ExecContext* ctx = nullptr);

// Dispatches on bank size (16, 32, or 64); `keys` must point to an array
// of the matching integer type.
void ParallelSortPairsBank(int bank, void* keys, uint32_t* oids, size_t n,
                           ThreadPool& pool,
                           std::vector<SortScratch>& scratches,
                           const ExecContext* ctx = nullptr);

// ---------------------------------------------------------------------------
// OVC merge kernel (sort/ovc.h)
// ---------------------------------------------------------------------------

// Base-run length for the OVC sort: runs of this many rows are formed with
// the SIMD kernels (where OVC cannot help — network comparisons are data
// parallel), encoded once, then binary-merged on codes. Power of two; the
// cost model's pass count is ceil(log2(n / kOvcRunElems)).
constexpr size_t kOvcRunElems = 4096;

// Comparison instrumentation returned by the OVC sorts: `emitted` counts
// merge steps (the comparisons a plain comparison merge would perform),
// `full_compares` the subset where equal codes forced a full key
// comparison. The gap is what offset-value coding skipped.
struct OvcSortStats {
  uint64_t full_compares = 0;
  uint64_t emitted = 0;
};

// Sorts keys[0..n) ascending permuting oids identically — same contract as
// SortPairs* — via SIMD-formed base runs merged with offset-value codes.
// Scalar merges: works (and is the designated comparison-sort) on builds
// without AVX2.
void OvcSortPairs16(uint16_t* keys, uint32_t* oids, size_t n,
                    SortScratch& scratch, OvcSortStats* stats = nullptr);
void OvcSortPairs32(uint32_t* keys, uint32_t* oids, size_t n,
                    SortScratch& scratch, OvcSortStats* stats = nullptr);
void OvcSortPairs64(uint64_t* keys, uint32_t* oids, size_t n,
                    SortScratch& scratch, OvcSortStats* stats = nullptr);
void OvcSortPairsBank(int bank, void* keys, uint32_t* oids, size_t n,
                      SortScratch& scratch, OvcSortStats* stats = nullptr);

// Parallel OVC sorts, mirroring ParallelSortPairs*: per-worker serial OVC
// part sorts, then parallel pairwise code-carrying merge passes.
// scratches[0] provides the shared full-length code + ping-pong buffers.
// Stoppable `ctx` semantics match ParallelSortPairs*.
void ParallelOvcSortPairs16(uint16_t* keys, uint32_t* oids, size_t n,
                            ThreadPool& pool,
                            std::vector<SortScratch>& scratches,
                            const ExecContext* ctx = nullptr,
                            OvcSortStats* stats = nullptr);
void ParallelOvcSortPairs32(uint32_t* keys, uint32_t* oids, size_t n,
                            ThreadPool& pool,
                            std::vector<SortScratch>& scratches,
                            const ExecContext* ctx = nullptr,
                            OvcSortStats* stats = nullptr);
void ParallelOvcSortPairs64(uint64_t* keys, uint32_t* oids, size_t n,
                            ThreadPool& pool,
                            std::vector<SortScratch>& scratches,
                            const ExecContext* ctx = nullptr,
                            OvcSortStats* stats = nullptr);
void ParallelOvcSortPairsBank(int bank, void* keys, uint32_t* oids, size_t n,
                              ThreadPool& pool,
                              std::vector<SortScratch>& scratches,
                              const ExecContext* ctx = nullptr,
                              OvcSortStats* stats = nullptr);

}  // namespace mcsort

#endif  // MCSORT_SORT_SIMD_SORT_H_

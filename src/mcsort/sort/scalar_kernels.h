// Scalar building blocks of the SIMD merge-sort: insertion sort for tiny
// segments, small-vs-run merging (galloping + memcpy), and a reference
// pair sort used by tests and the non-AVX2 fallback.
//
// All kernels operate on parallel key/payload arrays (structure of arrays)
// and compare keys as unsigned integers.
#ifndef MCSORT_SORT_SCALAR_KERNELS_H_
#define MCSORT_SORT_SCALAR_KERNELS_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

namespace mcsort {

// Insertion sort of n (key, payload) pairs. Used below the SIMD threshold
// and for sub-register tails; n is expected to be small (<= a few dozen).
template <typename K, typename P>
void InsertionSortPairs(K* keys, P* pays, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    const K k = keys[i];
    const P p = pays[i];
    size_t j = i;
    while (j > 0 && keys[j - 1] > k) {
      keys[j] = keys[j - 1];
      pays[j] = pays[j - 1];
      --j;
    }
    keys[j] = k;
    pays[j] = p;
  }
}

// Merges a small sorted sequence (m elements) into a long sorted run
// (n elements) producing out (m + n elements). Cost is O(m log n) searches
// plus one memcpy sweep of the run — this finishes a SIMD run merge after
// one input is exhausted without a slow element-wise scalar loop.
template <typename K, typename P>
void MergeSmallWithRun(const K* small_keys, const P* small_pays, size_t m,
                       const K* run_keys, const P* run_pays, size_t n,
                       K* out_keys, P* out_pays) {
  size_t pos = 0;
  size_t out = 0;
  for (size_t i = 0; i < m; ++i) {
    const K k = small_keys[i];
    const size_t idx = static_cast<size_t>(
        std::upper_bound(run_keys + pos, run_keys + n, k) - run_keys);
    const size_t len = idx - pos;
    if (len > 0) {
      std::memcpy(out_keys + out, run_keys + pos, len * sizeof(K));
      std::memcpy(out_pays + out, run_pays + pos, len * sizeof(P));
      out += len;
      pos = idx;
    }
    out_keys[out] = k;
    out_pays[out] = small_pays[i];
    ++out;
  }
  if (pos < n) {
    std::memcpy(out_keys + out, run_keys + pos, (n - pos) * sizeof(K));
    std::memcpy(out_pays + out, run_pays + pos, (n - pos) * sizeof(P));
  }
}

// Plain scalar two-way merge (both inputs small).
template <typename K, typename P>
void MergeScalar(const K* ka, const P* pa, size_t na, const K* kb,
                 const P* pb, size_t nb, K* out_keys, P* out_pays) {
  size_t i = 0, j = 0, o = 0;
  while (i < na && j < nb) {
    if (ka[i] <= kb[j]) {
      out_keys[o] = ka[i];
      out_pays[o] = pa[i];
      ++i;
    } else {
      out_keys[o] = kb[j];
      out_pays[o] = pb[j];
      ++j;
    }
    ++o;
  }
  while (i < na) {
    out_keys[o] = ka[i];
    out_pays[o] = pa[i];
    ++i;
    ++o;
  }
  while (j < nb) {
    out_keys[o] = kb[j];
    out_pays[o] = pb[j];
    ++j;
    ++o;
  }
}

// Reference pair sort (std::sort of a permutation). O(n) extra memory;
// used by tests, the non-AVX2 fallback, and nowhere on the hot path.
template <typename K, typename P>
void ReferenceSortPairs(K* keys, P* pays, size_t n) {
  std::vector<uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [keys](uint64_t a, uint64_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;  // stable tiebreak keeps the sort deterministic
  });
  std::vector<K> tmp_keys(keys, keys + n);
  std::vector<P> tmp_pays(pays, pays + n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = tmp_keys[order[i]];
    pays[i] = tmp_pays[order[i]];
  }
}

}  // namespace mcsort

#endif  // MCSORT_SORT_SCALAR_KERNELS_H_

// Counting (frequency) sort of (key, oid) pairs — the CAFS-style O(N + K)
// kernel for rounds whose code domain is small relative to N.
//
// Massaged rounds often sort a few bits of the concatenated key over many
// rows (the planner deliberately narrows early rounds), which is exactly
// the regime where comparison sorting wastes work: with K = 2^w possible
// codes and N >> K, a histogram + stable scatter sorts in one read pass
// plus one permute pass, independent of log N. Keys are not even
// scattered — after the oid scatter the counts array says how many of each
// value exist, so the sorted key column is *regenerated* by walking the
// domain (sequential stores, no second gather).
//
// Stability: equal-key oids keep their input order (the scatter walks the
// input left to right through exclusive prefix offsets). Multi-round
// sorting does not require stability (each round re-sorts within groups),
// but it is free here and keeps FindGroups' group-relative oid order
// deterministic.
#ifndef MCSORT_SORT_COUNTING_SORT_H_
#define MCSORT_SORT_COUNTING_SORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mcsort/sort/simd_sort.h"

namespace mcsort {

// Widest round code the counting kernel accepts: 2^20 counters * 8 bytes =
// 8 MB of histogram, the point past which the histogram itself thrashes
// the cache and the O(K) prefix/regenerate walks stop being noise. The
// cost model treats wider rounds as infeasible for this kernel.
constexpr int kCountingMaxWidth = 20;

// The parallel variant keeps per-chunk histograms, so its domain cap is
// tighter: chunks * 2^16 counters stay within a few MB.
constexpr int kParallelCountingMaxWidth = 16;

inline bool CountingSortFeasible(int key_width) {
  return key_width >= 1 && key_width <= kCountingMaxWidth;
}

// Sorts keys[0..n) ascending by their low `key_width` bits (all set bits
// must lie within them, as round codes guarantee), permuting oids
// identically. Requires CountingSortFeasible(key_width). Inputs too small
// to amortize the O(K) domain walks fall back to insertion / SIMD sort.
void CountingSortPairs16(uint16_t* keys, uint32_t* oids, size_t n,
                         int key_width, SortScratch& scratch);
void CountingSortPairs32(uint32_t* keys, uint32_t* oids, size_t n,
                         int key_width, SortScratch& scratch);
void CountingSortPairs64(uint64_t* keys, uint32_t* oids, size_t n,
                         int key_width, SortScratch& scratch);

// Dispatch on the physical bank type (like SortPairsBank).
void CountingSortPairsBank(int bank, void* keys, uint32_t* oids, size_t n,
                           int key_width, SortScratch& scratch);

class ExecContext;  // common/exec_context.h
class ThreadPool;   // common/thread_pool.h

// Parallel counting sort: per-chunk histograms combined into one exclusive
// prefix, then a parallel stable scatter (chunk-major order preserves
// stability) and a serial key regeneration. Falls back to the serial
// kernel when the pool is small, n is small, or key_width exceeds
// kParallelCountingMaxWidth. A stoppable `ctx` is checked between phases
// and chunks; on a stop the arrays are unspecified and the caller discards
// them after re-checking ctx.
void ParallelCountingSortPairsBank(int bank, void* keys, uint32_t* oids,
                                   size_t n, int key_width, ThreadPool& pool,
                                   std::vector<SortScratch>& scratches,
                                   const ExecContext* ctx = nullptr);

}  // namespace mcsort

#endif  // MCSORT_SORT_COUNTING_SORT_H_

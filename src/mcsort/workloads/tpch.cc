// TPC-H(-like) workload: the 9 of 22 queries whose GROUP BY and/or ORDER BY
// clauses have multiple attributes (Q1, Q2, Q3, Q7, Q9, Q10, Q13, Q16,
// Q18 — Sec. 1/6 of the paper). Tables are WideTables at the grain each
// query scans:
//   lineitem_wide  — lineitem joined with orders and customer,
//   partsupp_wide  — partsupp joined with part and supplier,
//   customer_agg   — the per-customer order counts Q13's outer query sees.
//
// The skew variant applies Zipf(z) to the foreign-key draws and the
// per-row attribute columns (the Chaudhuri-Narasayya skewed dbgen).
#include <cmath>

#include "mcsort/common/bits.h"
#include "mcsort/workloads/generators.h"
#include "mcsort/workloads/workload.h"

namespace mcsort {
namespace {

size_t ScaledRows(double base, double sf, size_t floor_rows) {
  const double rows = base * sf;
  return rows < static_cast<double>(floor_rows)
             ? floor_rows
             : static_cast<size_t>(rows);
}

}  // namespace

Workload MakeTpch(const WorkloadOptions& options) {
  Workload workload;
  workload.name = options.skew ? "TPC-H skew" : "TPC-H";
  Rng rng(options.seed);
  const double sf = options.scale;
  const double theta = options.skew ? options.zipf_theta : 0.0;

  const uint64_t customers = ScaledRows(150000, sf, 200);
  const uint64_t orders = ScaledRows(1500000, sf, 500);
  const uint64_t parts = ScaledRows(200000, sf, 200);
  const uint64_t suppliers = ScaledRows(10000, sf, 50);
  const size_t lineitems = ScaledRows(6000000, sf, 2000);
  const size_t partsupps = ScaledRows(800000, sf, 1000);
  constexpr uint64_t kShipDates = 2526;   // 1992-01-02 .. 1998-12-01
  constexpr uint64_t kOrderDates = 2406;  // 1992-01-01 .. 1998-08-02
  constexpr uint64_t kNations = 25;
  constexpr uint64_t kYears = 7;

  // ---------------------------------------------------------------- //
  // lineitem_wide
  // ---------------------------------------------------------------- //
  {
    // Per-order and per-customer attributes (entity tables of the join).
    const std::vector<Code> o_custkey = EntityAttribute(orders, customers, rng);
    const std::vector<Code> o_date = EntityAttribute(orders, kOrderDates, rng);
    const std::vector<Code> o_total =
        EntityAttribute(orders, std::max<uint64_t>(orders, 1 << 17), rng);
    const std::vector<Code> c_name = EntityAttribute(customers, customers, rng);
    const std::vector<Code> c_acctbal =
        EntityAttribute(customers, 1100000, rng);
    const std::vector<Code> c_phone = EntityAttribute(customers, customers, rng);
    const std::vector<Code> c_address =
        EntityAttribute(customers, customers, rng);
    const std::vector<Code> c_comment =
        EntityAttribute(customers, customers, rng);
    const std::vector<Code> c_nation = EntityAttribute(customers, kNations, rng);

    const std::vector<uint32_t> okeys = DrawKeys(lineitems, orders, theta, rng);
    std::vector<uint32_t> ckeys(lineitems);
    for (size_t i = 0; i < lineitems; ++i) {
      ckeys[i] = static_cast<uint32_t>(o_custkey[okeys[i]]);
    }

    auto per_row = [&](uint64_t domain) {
      return options.skew
                 ? SkewedColumn(lineitems, domain, domain, options.zipf_theta,
                                rng)
                 : UniformColumn(lineitems, domain, rng);
    };

    Table table(lineitems);
    table.AddColumn("l_returnflag", per_row(3));
    table.AddColumn("l_linestatus", per_row(2));
    table.AddColumn("l_quantity", per_row(50));
    table.AddColumn("l_discount", per_row(11));
    table.AddColumn("l_tax", per_row(9));
    EncodedColumn shipdate = per_row(kShipDates);
    // l_year / o_year: the EXTRACT(year ...) of the dates.
    EncodedColumn l_year(BitsForCount(kYears), lineitems);
    for (size_t i = 0; i < lineitems; ++i) {
      l_year.Set(i, shipdate.Get(i) * kYears / kShipDates);
    }
    EncodedColumn o_orderdate(BitsForCount(kOrderDates), lineitems);
    EncodedColumn o_year(BitsForCount(kYears), lineitems);
    for (size_t i = 0; i < lineitems; ++i) {
      const Code d = o_date[okeys[i]];
      o_orderdate.Set(i, d);
      o_year.Set(i, d * kYears / kOrderDates);
    }
    table.AddColumn("l_shipdate", std::move(shipdate));
    table.AddColumn("l_year", std::move(l_year));
    table.AddColumn("l_extendedprice", per_row(1 << 20));
    table.AddColumn("revenue", per_row(1 << 20));
    table.AddColumn("l_orderkey", KeyColumn(okeys, orders));
    table.AddColumn("o_orderdate", std::move(o_orderdate));
    table.AddColumn("o_year", std::move(o_year));
    table.AddColumn("o_totalprice",
                    MappedColumn(okeys, o_total,
                                 std::max<uint64_t>(orders, 1 << 17)));
    // o_shippriority is constant in TPC-H data (one distinct value).
    table.AddColumn("o_shippriority", EncodedColumn(1, lineitems));
    table.AddColumn("c_custkey", KeyColumn(ckeys, customers));
    table.AddColumn("c_name", MappedColumn(ckeys, c_name, customers));
    table.AddColumn("c_acctbal", MappedColumn(ckeys, c_acctbal, 1100000));
    table.AddColumn("c_phone", MappedColumn(ckeys, c_phone, customers));
    table.AddColumn("c_address", MappedColumn(ckeys, c_address, customers));
    table.AddColumn("c_comment", MappedColumn(ckeys, c_comment, customers));
    table.AddColumn("n_name", MappedColumn(ckeys, c_nation, kNations));
    table.AddColumn("cust_nation", MappedColumn(ckeys, c_nation, kNations));
    table.AddColumn("supp_nation", per_row(kNations));
    workload.tables.emplace("lineitem_wide", std::move(table));
  }

  // ---------------------------------------------------------------- //
  // partsupp_wide
  // ---------------------------------------------------------------- //
  {
    const std::vector<Code> p_brand = EntityAttribute(parts, 25, rng);
    const std::vector<Code> p_type = EntityAttribute(parts, 150, rng);
    const std::vector<Code> p_size = EntityAttribute(parts, 50, rng);
    const std::vector<Code> s_name = EntityAttribute(suppliers, suppliers, rng);
    const std::vector<Code> s_acctbal =
        EntityAttribute(suppliers, 1100000, rng);
    const std::vector<Code> s_nation = EntityAttribute(suppliers, kNations, rng);

    const std::vector<uint32_t> pkeys = DrawKeys(partsupps, parts, theta, rng);
    const std::vector<uint32_t> skeys =
        DrawKeys(partsupps, suppliers, theta, rng);

    Table table(partsupps);
    table.AddColumn("p_partkey", KeyColumn(pkeys, parts));
    table.AddColumn("p_brand", MappedColumn(pkeys, p_brand, 25));
    table.AddColumn("p_type", MappedColumn(pkeys, p_type, 150));
    table.AddColumn("p_size", MappedColumn(pkeys, p_size, 50));
    table.AddColumn("s_name", MappedColumn(skeys, s_name, suppliers));
    table.AddColumn("s_acctbal", MappedColumn(skeys, s_acctbal, 1100000));
    table.AddColumn("n_name", MappedColumn(skeys, s_nation, kNations));
    table.AddColumn("ps_supplycost", UniformColumn(partsupps, 1 << 17, rng));
    workload.tables.emplace("partsupp_wide", std::move(table));
  }

  // ---------------------------------------------------------------- //
  // customer_agg (Q13's per-customer order counts)
  // ---------------------------------------------------------------- //
  {
    Table table(customers);
    // c_count: orders per customer; ~10 on average with a spike at 0
    // (customers without orders), like Q13's distribution.
    EncodedColumn c_count(6, customers);
    for (uint64_t i = 0; i < customers; ++i) {
      const uint64_t v = rng.NextBounded(100) < 30
                             ? 0
                             : 1 + rng.NextBounded(40);
      c_count.Set(i, v);
    }
    table.AddColumn("c_count", std::move(c_count));
    workload.tables.emplace("customer_agg", std::move(table));
  }

  // ---------------------------------------------------------------- //
  // Queries
  // ---------------------------------------------------------------- //
  const auto add = [&](const char* id, const char* tbl, QuerySpec spec) {
    spec.id = id;
    workload.queries.push_back({id, tbl, std::move(spec)});
  };

  {  // Q1: pricing summary report
    QuerySpec q;
    q.filters = {{"l_shipdate", CompareOp::kLessEq,
                  static_cast<Code>(kShipDates * 95 / 100)}};
    q.group_by = {"l_returnflag", "l_linestatus"};
    q.aggregates = {{AggOp::kSum, "l_quantity"},
                    {AggOp::kSum, "l_extendedprice"},
                    {AggOp::kSum, "revenue"},
                    {AggOp::kAvg, "l_quantity"},
                    {AggOp::kCount, ""}};
    q.result_order = {{"l_returnflag", SortOrder::kAscending},
                      {"l_linestatus", SortOrder::kAscending}};
    add("Q1", "lineitem_wide", std::move(q));
  }
  {  // Q2: minimum cost supplier (ORDER BY 4 attributes)
    QuerySpec q;
    q.filters = {{"p_size", CompareOp::kEq, 15},
                 {"p_type", CompareOp::kGreaterEq, 100}};
    q.order_by = {{"s_acctbal", SortOrder::kDescending},
                  {"n_name", SortOrder::kAscending},
                  {"s_name", SortOrder::kAscending},
                  {"p_partkey", SortOrder::kAscending}};
    add("Q2", "partsupp_wide", std::move(q));
  }
  {  // Q3: shipping priority
    QuerySpec q;
    q.filters = {{"l_shipdate", CompareOp::kGreater,
                  static_cast<Code>(kShipDates * 40 / 100)}};
    q.group_by = {"l_orderkey", "o_orderdate", "o_shippriority"};
    q.aggregates = {{AggOp::kSum, "revenue"}};
    q.result_order = {{"agg:0", SortOrder::kDescending},
                      {"o_orderdate", SortOrder::kAscending}};
    add("Q3", "lineitem_wide", std::move(q));
  }
  {  // Q7: volume shipping
    QuerySpec q;
    q.filters = {{"l_shipdate", CompareOp::kEq, 0, true,
                  static_cast<Code>(kShipDates * 70 / 100)}};
    q.filters[0].literal = static_cast<Code>(kShipDates * 42 / 100);
    q.group_by = {"supp_nation", "cust_nation", "l_year"};
    q.aggregates = {{AggOp::kSum, "revenue"}};
    q.result_order = {{"supp_nation", SortOrder::kAscending},
                      {"cust_nation", SortOrder::kAscending},
                      {"l_year", SortOrder::kAscending}};
    add("Q7", "lineitem_wide", std::move(q));
  }
  {  // Q9: product type profit measure
    QuerySpec q;
    q.group_by = {"supp_nation", "o_year"};
    q.aggregates = {{AggOp::kSum, "revenue"}};
    q.result_order = {{"supp_nation", SortOrder::kAscending},
                      {"o_year", SortOrder::kDescending}};
    add("Q9", "lineitem_wide", std::move(q));
  }
  {  // Q10: returned item reporting (GROUP BY 7 attributes)
    QuerySpec q;
    q.filters = {{"o_orderdate", CompareOp::kEq,
                  static_cast<Code>(kOrderDates * 60 / 100), true,
                  static_cast<Code>(kOrderDates * 64 / 100)},
                 {"l_returnflag", CompareOp::kEq, 2}};
    q.group_by = {"c_custkey", "c_name",    "c_acctbal", "c_phone",
                  "n_name",    "c_address", "c_comment"};
    q.aggregates = {{AggOp::kSum, "revenue"}};
    q.result_order = {{"agg:0", SortOrder::kDescending}};
    add("Q10", "lineitem_wide", std::move(q));
  }
  {  // Q13: customer distribution (single-attribute GROUP BY, then a
     //      two-attribute ORDER BY over the aggregated result)
    QuerySpec q;
    q.group_by = {"c_count"};
    q.aggregates = {{AggOp::kCount, ""}};
    q.result_order = {{"agg:0", SortOrder::kDescending},
                      {"c_count", SortOrder::kDescending}};
    add("Q13", "customer_agg", std::move(q));
  }
  {  // Q16: parts/supplier relationship (GROUP BY 3 attributes)
    QuerySpec q;
    q.filters = {{"p_brand", CompareOp::kNeq, 11},
                 {"p_size", CompareOp::kEq, 1, true, 35}};
    q.group_by = {"p_brand", "p_type", "p_size"};
    q.aggregates = {{AggOp::kCount, ""}};
    q.result_order = {{"agg:0", SortOrder::kDescending},
                      {"p_brand", SortOrder::kAscending},
                      {"p_type", SortOrder::kAscending},
                      {"p_size", SortOrder::kAscending}};
    add("Q16", "partsupp_wide", std::move(q));
  }
  {  // Q18: large volume customer (GROUP BY 5 attributes)
    QuerySpec q;
    q.group_by = {"c_name", "c_custkey", "l_orderkey", "o_orderdate",
                  "o_totalprice"};
    q.aggregates = {{AggOp::kSum, "l_quantity"}};
    q.result_order = {{"o_totalprice", SortOrder::kDescending},
                      {"o_orderdate", SortOrder::kAscending}};
    add("Q18", "lineitem_wide", std::move(q));
  }

  return workload;
}

}  // namespace mcsort

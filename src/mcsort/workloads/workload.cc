#include "mcsort/workloads/workload.h"

#include <cstdlib>

#include "mcsort/common/logging.h"

namespace mcsort {

const WorkloadQuery& Workload::query(const std::string& id) const {
  for (const WorkloadQuery& q : queries) {
    if (q.id == id) return q;
  }
  MCSORT_CHECK(false && "unknown query id");
  __builtin_unreachable();
}

double ScaleFromEnv() {
  const char* env = std::getenv("MCSORT_SF");
  if (env == nullptr) return 0.1;
  const double sf = std::atof(env);
  return sf > 0 ? sf : 0.1;
}

}  // namespace mcsort

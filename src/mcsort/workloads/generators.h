// Column-generation helpers shared by the workload builders.
//
// Denormalized tables are built the way real WideTables look after a
// pre-join: per-row *foreign keys* are drawn (uniform or Zipf), and entity
// attributes are functions of those keys, so attribute columns of the same
// entity are correlated exactly as in joined data.
#ifndef MCSORT_WORKLOADS_GENERATORS_H_
#define MCSORT_WORKLOADS_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "mcsort/common/random.h"
#include "mcsort/common/zipf.h"
#include "mcsort/storage/column.h"

namespace mcsort {

// Draws n keys in [0, cardinality); zipf_theta > 0 applies Zipf skew over
// a randomly permuted rank order (so the hot keys are not the smallest
// codes).
std::vector<uint32_t> DrawKeys(size_t n, uint64_t cardinality,
                               double zipf_theta, Rng& rng);

// One attribute value per entity, uniform over [0, domain).
std::vector<Code> EntityAttribute(uint64_t cardinality, uint64_t domain,
                                  Rng& rng);

// Column whose row r holds keys[r]; width = BitsForCount(cardinality).
EncodedColumn KeyColumn(const std::vector<uint32_t>& keys,
                        uint64_t cardinality);

// Column whose row r holds attr[keys[r]]; width covers `domain`.
EncodedColumn MappedColumn(const std::vector<uint32_t>& keys,
                           const std::vector<Code>& attr, uint64_t domain);

// Independent uniform column over [0, domain).
EncodedColumn UniformColumn(size_t n, uint64_t domain, Rng& rng);

// Independent Zipf column with `distinct` ranks spread over [0, domain).
EncodedColumn SkewedColumn(size_t n, uint64_t distinct, uint64_t domain,
                           double zipf_theta, Rng& rng);

}  // namespace mcsort

#endif  // MCSORT_WORKLOADS_GENERATORS_H_

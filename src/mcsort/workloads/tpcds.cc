// TPC-DS(-like) workload: the paper selects 4 of the 12 TPC-DS queries
// that contain PARTITION BY clauses (Sec. 6 names Q67 explicitly; we use
// Q36, Q67, Q70, Q86 — all rank() OVER (PARTITION BY ...) reports over
// store_sales). The WideTable is store_sales joined with item, date_dim,
// and store.
//
// Adaptation note: the original queries rank *aggregated* rollup rows; the
// multi-column sorting they trigger is the sort over the partition
// attributes plus the ranking attribute, which is exactly what these specs
// execute (see DESIGN.md).
#include "mcsort/common/bits.h"
#include "mcsort/workloads/generators.h"
#include "mcsort/workloads/workload.h"

namespace mcsort {

Workload MakeTpcds(const WorkloadOptions& options) {
  Workload workload;
  workload.name = "TPC-DS";
  Rng rng(options.seed + 0xD5);
  const double sf = options.scale;
  const double theta = options.skew ? options.zipf_theta : 0.0;

  const size_t rows = static_cast<size_t>(
      std::max(2000.0, 2880000.0 * sf));  // store_sales at SF 1
  const uint64_t items = static_cast<uint64_t>(std::max(200.0, 18000.0 * sf));
  const uint64_t stores = static_cast<uint64_t>(std::max(12.0, 200.0 * sf));
  constexpr uint64_t kCategories = 10;
  constexpr uint64_t kClasses = 100;
  constexpr uint64_t kBrands = 1000;
  constexpr uint64_t kYears = 5;
  constexpr uint64_t kStates = 35;
  constexpr uint64_t kCounties = 200;

  {
    const std::vector<Code> i_category = EntityAttribute(items, kCategories, rng);
    const std::vector<Code> i_class = EntityAttribute(items, kClasses, rng);
    const std::vector<Code> i_brand = EntityAttribute(items, kBrands, rng);
    const std::vector<Code> s_state = EntityAttribute(stores, kStates, rng);
    const std::vector<Code> s_county = EntityAttribute(stores, kCounties, rng);

    const std::vector<uint32_t> ikeys = DrawKeys(rows, items, theta, rng);
    const std::vector<uint32_t> skeys = DrawKeys(rows, stores, theta, rng);

    auto per_row = [&](uint64_t domain) {
      return options.skew
                 ? SkewedColumn(rows, domain, domain, options.zipf_theta, rng)
                 : UniformColumn(rows, domain, rng);
    };

    Table table(rows);
    table.AddColumn("i_category", MappedColumn(ikeys, i_category, kCategories));
    table.AddColumn("i_class", MappedColumn(ikeys, i_class, kClasses));
    table.AddColumn("i_brand", MappedColumn(ikeys, i_brand, kBrands));
    table.AddColumn("i_product_name", KeyColumn(ikeys, items));
    table.AddColumn("d_year", per_row(kYears));
    table.AddColumn("d_qoy", per_row(4));
    table.AddColumn("d_moy", per_row(12));
    table.AddColumn("s_store_id", KeyColumn(skeys, stores));
    table.AddColumn("s_state", MappedColumn(skeys, s_state, kStates));
    table.AddColumn("s_county", MappedColumn(skeys, s_county, kCounties));
    table.AddColumn("ss_sales_price", per_row(1 << 14));
    table.AddColumn("ss_quantity", per_row(100));
    table.AddColumn("ss_net_profit", per_row(1 << 14));
    workload.tables.emplace("store_sales_wide", std::move(table));
  }

  const auto add = [&](const char* id, QuerySpec spec) {
    spec.id = id;
    workload.queries.push_back({id, "store_sales_wide", std::move(spec)});
  };

  {  // Q36: gross margin rank within category/class
    QuerySpec q;
    q.filters = {{"d_year", CompareOp::kEq, 2}};
    q.partition_by = {"i_category", "i_class"};
    q.window_order_column = "ss_net_profit";
    add("Q36", std::move(q));
  }
  {  // Q67: sales rank over the full item/date/store hierarchy
    QuerySpec q;
    q.partition_by = {"i_category", "i_class",  "i_brand", "i_product_name",
                      "d_year",     "d_qoy",    "d_moy",   "s_store_id"};
    q.window_order_column = "ss_sales_price";
    add("Q67", std::move(q));
  }
  {  // Q70: profit rank within state/county
    QuerySpec q;
    q.filters = {{"d_year", CompareOp::kEq, 3}};
    q.partition_by = {"s_state", "s_county"};
    q.window_order_column = "ss_net_profit";
    add("Q70", std::move(q));
  }
  {  // Q86: rank within category over the web/store rollup
    QuerySpec q;
    q.partition_by = {"i_category"};
    q.window_order_column = "ss_net_profit";
    add("Q86", std::move(q));
  }

  return workload;
}

}  // namespace mcsort

// Benchmark workloads (Sec. 6): TPC-H, TPC-H skew (Zipf z = 1), TPC-DS,
// and the Airline Origin & Destination Survey ("real data"). Each workload
// materializes denormalized WideTables [31] with the columns its eligible
// queries touch, plus the QuerySpec of every query with multiple
// attributes in GROUP BY / ORDER BY / PARTITION BY.
//
// Substitution note (see DESIGN.md): the official dbgen/dsdgen/BTS data
// are replaced by from-scratch generators that match the spec's column
// cardinalities, code widths, and (for the skew variant) Zipf value
// distributions — the properties that determine multi-column sorting cost.
#ifndef MCSORT_WORKLOADS_WORKLOAD_H_
#define MCSORT_WORKLOADS_WORKLOAD_H_

#include <map>
#include <string>
#include <vector>

#include "mcsort/engine/query.h"
#include "mcsort/storage/table.h"

namespace mcsort {

struct WorkloadQuery {
  std::string id;     // e.g. "Q16"
  std::string table;  // table the query runs against
  QuerySpec spec;
};

struct Workload {
  std::string name;
  std::map<std::string, Table> tables;
  std::vector<WorkloadQuery> queries;

  const Table& table_for(const WorkloadQuery& query) const {
    return tables.at(query.table);
  }
  const WorkloadQuery& query(const std::string& id) const;
};

struct WorkloadOptions {
  // Scale factor; 1.0 matches the paper's SF = 1 row counts (e.g. 6M
  // lineitem-grain rows). Benchmarks default to a reduced SF via the
  // MCSORT_SF environment variable.
  double scale = 0.1;
  // Zipf skew (TPC-H skew uses z = 1 on the skewed columns).
  bool skew = false;
  double zipf_theta = 1.0;
  uint64_t seed = 42;
};

Workload MakeTpch(const WorkloadOptions& options);
Workload MakeTpcds(const WorkloadOptions& options);
Workload MakeAirline(const WorkloadOptions& options);

// Scale factor from the MCSORT_SF environment variable (default 0.1).
double ScaleFromEnv();

}  // namespace mcsort

#endif  // MCSORT_WORKLOADS_WORKLOAD_H_

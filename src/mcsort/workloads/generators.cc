#include "mcsort/workloads/generators.h"

#include <algorithm>
#include <numeric>

#include "mcsort/common/bits.h"
#include "mcsort/common/logging.h"

namespace mcsort {

std::vector<uint32_t> DrawKeys(size_t n, uint64_t cardinality,
                               double zipf_theta, Rng& rng) {
  MCSORT_CHECK(cardinality >= 1);
  std::vector<uint32_t> keys(n);
  if (zipf_theta > 0) {
    ZipfGenerator zipf(cardinality, zipf_theta);
    // Permute ranks so hot values are scattered across the code domain.
    std::vector<uint32_t> perm(cardinality);
    std::iota(perm.begin(), perm.end(), 0);
    for (size_t i = cardinality; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
    }
    for (auto& k : keys) k = perm[zipf.Next(rng)];
  } else {
    for (auto& k : keys) k = static_cast<uint32_t>(rng.NextBounded(cardinality));
  }
  return keys;
}

std::vector<Code> EntityAttribute(uint64_t cardinality, uint64_t domain,
                                  Rng& rng) {
  std::vector<Code> attr(cardinality);
  for (auto& v : attr) v = rng.NextBounded(domain);
  return attr;
}

EncodedColumn KeyColumn(const std::vector<uint32_t>& keys,
                        uint64_t cardinality) {
  EncodedColumn col(BitsForCount(cardinality), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) col.Set(i, keys[i]);
  return col;
}

EncodedColumn MappedColumn(const std::vector<uint32_t>& keys,
                           const std::vector<Code>& attr, uint64_t domain) {
  EncodedColumn col(BitsForValue(domain - 1), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) col.Set(i, attr[keys[i]]);
  return col;
}

EncodedColumn UniformColumn(size_t n, uint64_t domain, Rng& rng) {
  EncodedColumn col(BitsForValue(domain - 1), n);
  for (size_t i = 0; i < n; ++i) col.Set(i, rng.NextBounded(domain));
  return col;
}

EncodedColumn SkewedColumn(size_t n, uint64_t distinct, uint64_t domain,
                           double zipf_theta, Rng& rng) {
  MCSORT_CHECK(distinct >= 1 && distinct <= domain);
  ZipfGenerator zipf(distinct, zipf_theta);
  const uint64_t stride = domain / distinct;
  EncodedColumn col(BitsForValue(domain - 1), n);
  for (size_t i = 0; i < n; ++i) {
    col.Set(i, zipf.Next(rng) * stride);
  }
  return col;
}

}  // namespace mcsort

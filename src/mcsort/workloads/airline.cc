// "Real data" workload: the Airline Origin and Destination Survey (BTS
// DB1B) — paper Table 4 schema and Table 5 queries. The public 4 GB dump
// is replaced by a synthetic generator with the survey's schema and
// realistic domains/cardinalities (see DESIGN.md's substitution table);
// the five queries are the paper's Q1-Q5 verbatim.
#include <algorithm>

#include "mcsort/common/bits.h"
#include "mcsort/workloads/generators.h"
#include "mcsort/workloads/workload.h"

namespace mcsort {

Workload MakeAirline(const WorkloadOptions& options) {
  Workload workload;
  workload.name = "Airline";
  Rng rng(options.seed + 0xA1);
  const double sf = options.scale;
  const double theta = options.skew ? options.zipf_theta : 0.0;

  const size_t tickets = static_cast<size_t>(std::max(2000.0, 3000000.0 * sf));
  const size_t markets = static_cast<size_t>(std::max(2000.0, 4500000.0 * sf));
  constexpr uint64_t kAirports = 400;
  constexpr uint64_t kStates = 52;
  constexpr uint64_t kCarriers = 15;
  constexpr uint64_t kQuarters = 4;
  constexpr uint64_t kYears = 10;
  constexpr uint64_t kDistanceGroups = 12;
  constexpr uint64_t kGeoTypes = 3;

  auto per_row = [&](size_t n, uint64_t domain) {
    return options.skew
               ? SkewedColumn(n, domain, domain, options.zipf_theta, rng)
               : UniformColumn(n, domain, rng);
  };

  {  // Ticket
    const std::vector<uint32_t> airport =
        DrawKeys(tickets, kAirports, theta > 0 ? theta : 0.8, rng);
    const std::vector<Code> airport_state =
        EntityAttribute(kAirports, kStates, rng);

    Table table(tickets);
    table.AddColumn("Year", per_row(tickets, kYears));
    table.AddColumn("Quarter", per_row(tickets, kQuarters));
    table.AddColumn("OriginAirportID", KeyColumn(airport, kAirports));
    table.AddColumn("OriginStateName",
                    MappedColumn(airport, airport_state, kStates));
    table.AddColumn("RoundTrip", per_row(tickets, 2));
    table.AddColumn("DollarCred", per_row(tickets, 2));
    table.AddColumn("FarePerMile", per_row(tickets, 1 << 17));
    table.AddColumn("RPCarrier", per_row(tickets, kCarriers));
    table.AddColumn("Passengers", per_row(tickets, 10));
    table.AddColumn("Distance", per_row(tickets, 1 << 13));
    table.AddColumn("DistanceGroup", per_row(tickets, kDistanceGroups));
    table.AddColumn("ItinGeoType", per_row(tickets, kGeoTypes));
    workload.tables.emplace("Ticket", std::move(table));
  }
  {  // Market
    Table table(markets);
    table.AddColumn("OriginAirportID",
                    KeyColumn(DrawKeys(markets, kAirports,
                                       theta > 0 ? theta : 0.8, rng),
                              kAirports));
    table.AddColumn("DestAirportID",
                    KeyColumn(DrawKeys(markets, kAirports,
                                       theta > 0 ? theta : 0.8, rng),
                              kAirports));
    table.AddColumn("OpCarrier", per_row(markets, kCarriers));
    table.AddColumn("Passengers", per_row(markets, 10));
    table.AddColumn("MktFare", per_row(markets, 1 << 17));
    table.AddColumn("MktDistance", per_row(markets, 1 << 13));
    table.AddColumn("MktDistanceGroup", per_row(markets, kDistanceGroups));
    table.AddColumn("MktMilesFlown", per_row(markets, 1 << 13));
    table.AddColumn("ItinGeoType", per_row(markets, kGeoTypes));
    workload.tables.emplace("Market", std::move(table));
  }

  const auto add = [&](const char* id, const char* tbl, QuerySpec spec) {
    spec.id = id;
    workload.queries.push_back({id, tbl, std::move(spec)});
  };

  {  // Q1: credibility vs fare-per-mile in one state (ORDER BY 2 attrs)
    QuerySpec q;
    q.filters = {{"OriginStateName", CompareOp::kEq, 43}};  // 'Texas'
    q.order_by = {{"DollarCred", SortOrder::kAscending},
                  {"FarePerMile", SortOrder::kAscending}};
    add("Q1", "Ticket", std::move(q));
  }
  {  // Q2: passengers rank per (airport, distance group)
    QuerySpec q;
    q.filters = {{"ItinGeoType", CompareOp::kEq, 1}};
    q.partition_by = {"OriginAirportID", "DistanceGroup"};
    q.window_order_column = "Passengers";
    add("Q2", "Ticket", std::move(q));
  }
  {  // Q3: average passengers per carrier/state/trip/distance group
    QuerySpec q;
    q.group_by = {"RPCarrier", "OriginStateName", "RoundTrip",
                  "DistanceGroup"};
    q.aggregates = {{AggOp::kAvg, "Passengers"}};
    add("Q3", "Ticket", std::move(q));
  }
  {  // Q4: average fare per airport pair for one carrier
    QuerySpec q;
    q.filters = {{"OpCarrier", CompareOp::kEq, 6}};  // 'B6'
    q.group_by = {"OriginAirportID", "DestAirportID"};
    q.aggregates = {{AggOp::kAvg, "MktFare"}};
    add("Q4", "Market", std::move(q));
  }
  {  // Q5: market fare rank per carrier and itinerary type
    QuerySpec q;
    q.filters = {{"MktDistanceGroup", CompareOp::kEq, 1}};
    q.partition_by = {"OpCarrier", "ItinGeoType"};
    q.window_order_column = "MktFare";
    add("Q5", "Market", std::move(q));
  }

  return workload;
}

}  // namespace mcsort

// SIMD feature detection and shared constants.
//
// The paper targets AVX2 (S = 256-bit registers; banks b in {16, 32, 64}).
// All kernels compile to scalar fallbacks when AVX2 is unavailable so the
// library stays portable; the benchmarks are only meaningful with AVX2.
#ifndef MCSORT_SIMD_SIMD_H_
#define MCSORT_SIMD_SIMD_H_

#if defined(__AVX2__)
#define MCSORT_HAVE_AVX2 1
#include <immintrin.h>
#else
#define MCSORT_HAVE_AVX2 0
#endif

namespace mcsort {

// SIMD register width in bits (the paper's S).
inline constexpr int kSimdBits = 256;

// Lanes per register for a given bank size b: S/b.
constexpr int LanesForBank(int bank) { return kSimdBits / bank; }

}  // namespace mcsort

#endif  // MCSORT_SIMD_SIMD_H_

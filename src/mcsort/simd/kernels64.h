// AVX2 key+payload kernels for the 64-bit bank (4 lanes).
//
// Mirror of kernels32.h at half the data parallelism — this *is* the effect
// the paper exploits: a 64-bit-bank sort moves 4 keys per instruction where
// a 32-bit-bank sort moves 8. AVX2 has no unsigned 64-bit min/max or
// compare, so compare-exchanges flip the sign bit and use the signed
// cmpgt_epi64 (one of the "simulated with more primitive instructions"
// costs of wide banks).
#ifndef MCSORT_SIMD_KERNELS64_H_
#define MCSORT_SIMD_KERNELS64_H_

#include <cstdint>

#include "mcsort/simd/simd.h"

#if MCSORT_HAVE_AVX2

namespace mcsort {
namespace simd64 {

// One register of 4 keys with its 4 payloads.
struct KV {
  __m256i key;
  __m256i pay;
};

namespace internal {

inline __m256i SignBit64() { return _mm256_set1_epi64x(0x8000000000000000ll); }

// all-ones lane where unsigned a > b.
inline __m256i CmpGtEpu64(__m256i a, __m256i b) {
  const __m256i bias = SignBit64();
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                            _mm256_xor_si256(b, bias));
}

}  // namespace internal

// Vertical compare-exchange with payload permutation.
inline void CompareExchange(KV& a, KV& b) {
  const __m256i gt = internal::CmpGtEpu64(a.key, b.key);  // a > b
  const __m256i kmn = _mm256_blendv_epi8(a.key, b.key, gt);
  const __m256i kmx = _mm256_blendv_epi8(b.key, a.key, gt);
  const __m256i pmn = _mm256_blendv_epi8(a.pay, b.pay, gt);
  const __m256i pmx = _mm256_blendv_epi8(b.pay, a.pay, gt);
  a.key = kmn;
  a.pay = pmn;
  b.key = kmx;
  b.pay = pmx;
}

// Reverses the 4 lanes.
inline KV Reverse(KV v) {
  return {_mm256_permute4x64_epi64(v.key, _MM_SHUFFLE(0, 1, 2, 3)),
          _mm256_permute4x64_epi64(v.pay, _MM_SHUFFLE(0, 1, 2, 3))};
}

namespace internal {

// Intra-register CE against a shuffled copy; kBlend (epi32 granularity,
// two bits per 64-bit lane) selects the lanes that take the max.
//
// Tie handling mirrors kernels32.h: on a tied pair both positions keep
// their *own* payload so the two lanes' decisions stay complementary
// (a shared "who is the max" mask would duplicate one payload).
template <int kBlend>
inline KV IntraCompareExchange(KV v, __m256i skey, __m256i spay) {
  const __m256i gt_vs = CmpGtEpu64(v.key, skey);  // v strictly greater
  const __m256i gt_sv = CmpGtEpu64(skey, v.key);  // partner strictly greater
  const __m256i kmn = _mm256_blendv_epi8(v.key, skey, gt_vs);
  const __m256i kmx = _mm256_blendv_epi8(skey, v.key, gt_vs);
  // Min position: own payload unless strictly greater than the partner.
  const __m256i pay_lo = _mm256_blendv_epi8(v.pay, spay, gt_vs);
  // Max position: own payload unless strictly smaller than the partner.
  const __m256i pay_hi = _mm256_blendv_epi8(v.pay, spay, gt_sv);
  return {_mm256_blend_epi32(kmn, kmx, kBlend),
          _mm256_blend_epi32(pay_lo, pay_hi, kBlend)};
}

}  // namespace internal

// Sorts the 4 lanes of a bitonic register ascending: strides 2, 1.
inline KV BitonicCleanup4(KV v) {
  {
    const __m256i sk = _mm256_permute4x64_epi64(v.key, _MM_SHUFFLE(1, 0, 3, 2));
    const __m256i sp = _mm256_permute4x64_epi64(v.pay, _MM_SHUFFLE(1, 0, 3, 2));
    v = internal::IntraCompareExchange<0xF0>(v, sk, sp);
  }
  {
    const __m256i sk = _mm256_permute4x64_epi64(v.key, _MM_SHUFFLE(2, 3, 0, 1));
    const __m256i sp = _mm256_permute4x64_epi64(v.pay, _MM_SHUFFLE(2, 3, 0, 1));
    v = internal::IntraCompareExchange<0xCC>(v, sk, sp);
  }
  return v;
}

// Bitonic merge of two sorted registers: `a` gets the 4 smallest of the 8
// inputs (sorted), `b` the 4 largest (sorted).
inline void BitonicMerge8(KV& a, KV& b) {
  b = Reverse(b);
  CompareExchange(a, b);
  a = BitonicCleanup4(a);
  b = BitonicCleanup4(b);
}

// Transposes a 4x4 matrix of 64-bit elements; output row i = input column i.
inline void Transpose4x4(__m256i r[4]) {
  const __m256i t0 = _mm256_unpacklo_epi64(r[0], r[1]);
  const __m256i t1 = _mm256_unpackhi_epi64(r[0], r[1]);
  const __m256i t2 = _mm256_unpacklo_epi64(r[2], r[3]);
  const __m256i t3 = _mm256_unpackhi_epi64(r[2], r[3]);
  r[0] = _mm256_permute2x128_si256(t0, t2, 0x20);
  r[1] = _mm256_permute2x128_si256(t1, t3, 0x20);
  r[2] = _mm256_permute2x128_si256(t0, t2, 0x31);
  r[3] = _mm256_permute2x128_si256(t1, t3, 0x31);
}

// In-register phase: sorts a block of 16 (key, payload) pairs into four
// sorted runs of 4 (Batcher 4-network, 5 compare-exchanges, then transpose).
inline void SortBlock16(uint64_t* keys, uint64_t* pays) {
  KV r[4];
  for (int i = 0; i < 4; ++i) {
    r[i].key = _mm256_loadu_si256(reinterpret_cast<__m256i*>(keys + 4 * i));
    r[i].pay = _mm256_loadu_si256(reinterpret_cast<__m256i*>(pays + 4 * i));
  }
  CompareExchange(r[0], r[1]);
  CompareExchange(r[2], r[3]);
  CompareExchange(r[0], r[2]);
  CompareExchange(r[1], r[3]);
  CompareExchange(r[1], r[2]);
  __m256i k[4] = {r[0].key, r[1].key, r[2].key, r[3].key};
  __m256i p[4] = {r[0].pay, r[1].pay, r[2].pay, r[3].pay};
  Transpose4x4(k);
  Transpose4x4(p);
  for (int i = 0; i < 4; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + 4 * i), k[i]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(pays + 4 * i), p[i]);
  }
}

}  // namespace simd64
}  // namespace mcsort

#endif  // MCSORT_HAVE_AVX2
#endif  // MCSORT_SIMD_KERNELS64_H_

// AVX2 key+payload kernels for the 32-bit bank (8 lanes).
//
// These are the building blocks of the b=32 SIMD merge-sort:
//   * compare-exchange of two registers that permutes a payload register
//     identically (so sorts emit the permuted oid list the engine needs);
//   * the Batcher 8-element sorting network applied "vertically" across
//     eight registers plus an 8x8 transpose — the in-register phase that
//     turns 64 values into eight sorted runs of 8 (the paper's
//     "(S/b)^2 codes -> S/b in-register sorted runs");
//   * the 16-element bitonic merge network over two registers — the kernel
//     of the in-cache and out-of-cache merge phases.
//
// Keys are compared as *unsigned* 32-bit integers (codes are unsigned).
// Compare-exchanges use min_epu32/max_epu32 for the keys and derive the
// payload blend mask with cmpeq(key, max); on ties the payloads swap, which
// is harmless (multi-column sorting needs a permutation, not stability).
#ifndef MCSORT_SIMD_KERNELS32_H_
#define MCSORT_SIMD_KERNELS32_H_

#include <cstdint>

#include "mcsort/simd/simd.h"

#if MCSORT_HAVE_AVX2

namespace mcsort {
namespace simd32 {

// One register of 8 keys with its 8 payloads.
struct KV {
  __m256i key;
  __m256i pay;
};

// Vertical compare-exchange: (lo, hi) = (lane-wise min, max) of (a, b),
// payloads permuted identically.
inline void CompareExchange(KV& a, KV& b) {
  const __m256i mn = _mm256_min_epu32(a.key, b.key);
  const __m256i mx = _mm256_max_epu32(a.key, b.key);
  // mask lane = all-ones where a.key >= b.key (a holds the max).
  const __m256i mask = _mm256_cmpeq_epi32(a.key, mx);
  const __m256i pmn = _mm256_blendv_epi8(a.pay, b.pay, mask);
  const __m256i pmx = _mm256_blendv_epi8(b.pay, a.pay, mask);
  a.key = mn;
  a.pay = pmn;
  b.key = mx;
  b.pay = pmx;
}

// Reverses the 8 lanes of a register pair.
inline KV Reverse(KV v) {
  const __m256i idx = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
  return {_mm256_permutevar8x32_epi32(v.key, idx),
          _mm256_permutevar8x32_epi32(v.pay, idx)};
}

namespace internal {

// Intra-register compare-exchange against a shuffled copy. `kBlend` selects
// which lanes of the result take the max (the upper element of each pair).
//
// Tie handling is position-dependent on purpose: both lanes of a tied pair
// would otherwise make the same "who is the max" decision and pick the same
// payload, duplicating one payload and dropping its partner. With
// "tie keeps its own payload" on both the min and the max position the two
// decisions stay complementary.
template <int kBlend>
inline KV IntraCompareExchange(KV v, __m256i skey, __m256i spay) {
  const __m256i mn = _mm256_min_epu32(v.key, skey);
  const __m256i mx = _mm256_max_epu32(v.key, skey);
  const __m256i is_min = _mm256_cmpeq_epi32(v.key, mn);  // v <= partner
  const __m256i is_max = _mm256_cmpeq_epi32(v.key, mx);  // v >= partner
  // Min position: own payload unless strictly greater than the partner.
  const __m256i pay_lo = _mm256_blendv_epi8(spay, v.pay, is_min);
  // Max position: own payload unless strictly smaller than the partner.
  const __m256i pay_hi = _mm256_blendv_epi8(spay, v.pay, is_max);
  return {_mm256_blend_epi32(mn, mx, kBlend),
          _mm256_blend_epi32(pay_lo, pay_hi, kBlend)};
}

}  // namespace internal

// Sorts the 8 lanes of a *bitonic* register ascending (the cleanup half of
// a bitonic merge network): strides 4, 2, 1.
inline KV BitonicCleanup8(KV v) {
  // Stride 4: exchange lanes i <-> i+4 (swap 128-bit halves).
  {
    const __m256i sk = _mm256_permute2x128_si256(v.key, v.key, 0x01);
    const __m256i sp = _mm256_permute2x128_si256(v.pay, v.pay, 0x01);
    v = internal::IntraCompareExchange<0xF0>(v, sk, sp);
  }
  // Stride 2: exchange lanes i <-> i+2 (swap 64-bit pairs in each half).
  {
    const __m256i sk = _mm256_shuffle_epi32(v.key, _MM_SHUFFLE(1, 0, 3, 2));
    const __m256i sp = _mm256_shuffle_epi32(v.pay, _MM_SHUFFLE(1, 0, 3, 2));
    v = internal::IntraCompareExchange<0xCC>(v, sk, sp);
  }
  // Stride 1: exchange adjacent lanes.
  {
    const __m256i sk = _mm256_shuffle_epi32(v.key, _MM_SHUFFLE(2, 3, 0, 1));
    const __m256i sp = _mm256_shuffle_epi32(v.pay, _MM_SHUFFLE(2, 3, 0, 1));
    v = internal::IntraCompareExchange<0xAA>(v, sk, sp);
  }
  return v;
}

// Bitonic merge of two sorted registers: on return `a` holds the 8 smallest
// of the 16 inputs (sorted ascending) and `b` the 8 largest (sorted).
inline void BitonicMerge16(KV& a, KV& b) {
  b = Reverse(b);       // a (asc) ++ b (desc) is a 16-element bitonic seq
  CompareExchange(a, b);  // split into low/high bitonic halves
  a = BitonicCleanup8(a);
  b = BitonicCleanup8(b);
}

// Transposes an 8x8 matrix of 32-bit elements held in r[0..7]; output row i
// is input column i. Applied to keys and payloads separately.
inline void Transpose8x8(__m256i r[8]) {
  __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
  __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
  __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
  __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
  __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
  __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
  __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
  __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
  __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
  __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
  __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
  __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
  __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
  __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
  __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
  __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
  r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
  r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
  r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
  r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
  r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
  r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
  r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
  r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

// In-register phase: sorts a block of 64 (key, payload) pairs into eight
// sorted runs of 8, written back contiguously. Batcher's odd-even network
// (19 compare-exchanges) sorts the eight lane-columns, then the transposes
// turn sorted columns into contiguous runs.
inline void SortBlock64(uint32_t* keys, uint32_t* pays) {
  KV r[8];
  for (int i = 0; i < 8; ++i) {
    r[i].key = _mm256_loadu_si256(reinterpret_cast<__m256i*>(keys + 8 * i));
    r[i].pay = _mm256_loadu_si256(reinterpret_cast<__m256i*>(pays + 8 * i));
  }
  // Batcher odd-even mergesort network for 8 elements.
  CompareExchange(r[0], r[1]);
  CompareExchange(r[2], r[3]);
  CompareExchange(r[4], r[5]);
  CompareExchange(r[6], r[7]);
  CompareExchange(r[0], r[2]);
  CompareExchange(r[1], r[3]);
  CompareExchange(r[4], r[6]);
  CompareExchange(r[5], r[7]);
  CompareExchange(r[1], r[2]);
  CompareExchange(r[5], r[6]);
  CompareExchange(r[0], r[4]);
  CompareExchange(r[1], r[5]);
  CompareExchange(r[2], r[6]);
  CompareExchange(r[3], r[7]);
  CompareExchange(r[2], r[4]);
  CompareExchange(r[3], r[5]);
  CompareExchange(r[1], r[2]);
  CompareExchange(r[3], r[4]);
  CompareExchange(r[5], r[6]);
  __m256i k[8], p[8];
  for (int i = 0; i < 8; ++i) {
    k[i] = r[i].key;
    p[i] = r[i].pay;
  }
  Transpose8x8(k);
  Transpose8x8(p);
  for (int i = 0; i < 8; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + 8 * i), k[i]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(pays + 8 * i), p[i]);
  }
}

}  // namespace simd32
}  // namespace mcsort

#endif  // MCSORT_HAVE_AVX2
#endif  // MCSORT_SIMD_KERNELS32_H_

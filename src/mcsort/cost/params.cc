#include "mcsort/cost/params.h"

#include <algorithm>

#include "mcsort/common/cpu_info.h"

namespace mcsort {

CostParams CostParams::Default() {
  CostParams params;
  const CpuInfo& cpu = CpuInfo::Get();
  // Cap the effective LLC: virtualized environments report host-sized L3
  // caches that a single guest vCPU cannot actually keep warm; calibration
  // fits C_cache/C_mem against whatever value is used here.
  params.llc_bytes = std::min<size_t>(cpu.llc_bytes, 32u << 20);
  params.l2_bytes = cpu.l2_bytes;
  params.ghz = cpu.ghz;
  // C_cache / C_mem are *effective amortized* per-access costs of a gather
  // loop: out-of-order execution keeps many misses in flight, so the
  // per-item cost is far below the raw miss latency (calibration measures
  // exactly this quantity, as does the paper's).
  params.cache_cycles = 4.0;
  params.mem_cycles = 30.0;
  params.massage_cycles = 1.5;
  params.scan_cycles = 2.0;
  // Per-bank sort constants. C_in-cache-merge covers *all* in-cache merge
  // passes (the pass count is fixed by L2 size per Eq. 7, so it folds into
  // the constant) — hence its magnitude. Wider banks cost roughly 2x per
  // code (half the lanes; 64-bit compares also need extra instructions on
  // AVX2), and the 16-bit bank is only marginally different from 32-bit
  // (footnote 4: missing 16-bit instructions are simulated).
  params.bank16 = {300.0, 2.5, 44.0, 2.0};
  params.bank32 = {300.0, 2.2, 48.0, 2.5};
  params.bank64 = {350.0, 6.0, 110.0, 4.5};
  // OVC merge: run formation is the SIMD sort of 4K-row runs (so it folds
  // the sort-network and in-cache constants of the bank), merge passes are
  // scalar — honestly pricier per pass than the SIMD merge's per-code
  // cost, which is exactly why the kernel only wins when prefix agreement
  // lets codes skip most key work (long sorted inputs, many passes saved
  // is not the mechanism — fewer touched key bytes per pass is).
  params.ovc16 = {300.0, 6.0, 4.5};
  params.ovc32 = {300.0, 6.5, 5.0};
  params.ovc64 = {350.0, 9.0, 6.0};
  // Counting: per-row cost is a couple of array updates when the histogram
  // stays cache-resident, a scattered miss when it does not.
  params.counting = {300.0, 2.0, 3.0, 12.0};
  return params;
}

}  // namespace mcsort

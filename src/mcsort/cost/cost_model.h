// The architectural cost model of Sec. 4: estimates T_mcs, the CPU time of
// a multi-column sorting instance under a given code massage plan, from
// basic statistics (row count, column widths, value distributions).
//
//   T_mcs = T_massage + sum over rounds of (T_lookup + T_sort^k + T_scan)
//
//   T_lookup  (Eq. 3): N random accesses under a modeled cache hit ratio
//                      M_LLC / (N * size(w)).
//   T_massage (Eq. 4): I_FIP * C_massage * N.
//   T_sort^k  (Eq. 1): N_sort invocations of a b-bit SIMD merge-sort, each
//                      costed by Eqs. 2 and 5-8.
//   T_scan    (Eq. 9): one sequential pass.
//
// Group structure per round (N_group, N_sort, average group size) is
// estimated from per-column distinct/histogram statistics: the bit prefix
// sorted before round k determines the expected number of tied groups via
// a balls-into-bins model over the composite prefix domain.
#ifndef MCSORT_COST_COST_MODEL_H_
#define MCSORT_COST_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "mcsort/cost/params.h"
#include "mcsort/massage/plan.h"
#include "mcsort/storage/statistics.h"

namespace mcsort {

// One multi-column sorting problem instance, described by statistics only.
struct SortInstanceStats {
  uint64_t n = 0;
  // Per input column (most significant first). Pointers are borrowed.
  std::vector<const ColumnStats*> columns;
  // Shard-aware costing: when this instance is one shard of a distributed
  // query, the coordinator's merge fan-in (> 1). Every plan estimate then
  // includes the coordinator-merge term, so the rho search budget is
  // anchored to the true end-to-end cost. 0 / 1 = single-node.
  int merge_fan_in = 0;

  std::vector<int> widths() const {
    std::vector<int> w;
    w.reserve(columns.size());
    for (const ColumnStats* c : columns) w.push_back(c->width());
    return w;
  }
  int total_width() const {
    int total = 0;
    for (const ColumnStats* c : columns) total += c->width();
    return total;
  }
  // The instance with its columns permuted (GROUP BY / PARTITION BY plan
  // search explores column orders).
  SortInstanceStats Permuted(const std::vector<int>& order) const;
};

class CostModel {
 public:
  explicit CostModel(const CostParams& params) : params_(params) {}

  const CostParams& params() const { return params_; }

  struct RoundEstimate {
    double n_group = 0;        // groups after this round
    double n_sort = 0;         // SIMD-sort invocations in this round
    double rows_to_sort = 0;   // rows inside non-singleton groups
    double avg_group_size = 0; // N̄_code entering this round's sorts
    double t_lookup = 0;       // cycles (0 for the first round)
    double t_sort = 0;         // cycles
    double t_scan = 0;         // cycles
    // Cheapest feasible kernel among the allowed set; t_sort is its cost.
    SortKernel kernel = SortKernel::kSimdMerge;
  };
  struct PlanEstimate {
    double t_massage = 0;  // cycles
    std::vector<RoundEstimate> rounds;
    // Coordinator-merge term (distributed shards only; see
    // SortInstanceStats::merge_fan_in). Plan-independent — it never flips
    // the argmin between candidate plans — but it inflates T(P*) and
    // therefore the rho stopwatch budget, which is the point: a shard
    // feeding an expensive merge can afford a longer plan search.
    double t_coord_merge = 0;
    double total_cycles = 0;
  };

  // Full estimate of plan `plan` on `stats` (plan width must equal the
  // instance width). `kernels` is the kernel-choice dimension: each round
  // is costed with the cheapest allowed feasible kernel (merge is always
  // feasible and is the implicit fallback). The default keeps the paper's
  // merge-only model.
  PlanEstimate Estimate(
      const MassagePlan& plan, const SortInstanceStats& stats,
      SortKernelMask kernels = KernelBit(SortKernel::kSimdMerge)) const;
  double EstimateCycles(
      const MassagePlan& plan, const SortInstanceStats& stats,
      SortKernelMask kernels = KernelBit(SortKernel::kSimdMerge)) const {
    return Estimate(plan, stats, kernels).total_cycles;
  }
  double EstimateSeconds(
      const MassagePlan& plan, const SortInstanceStats& stats,
      SortKernelMask kernels = KernelBit(SortKernel::kSimdMerge)) const {
    return EstimateCycles(plan, stats, kernels) / (params_.ghz * 1e9);
  }

  // Spill-arm estimate for the executor's spill-vs-degrade router: the
  // *extra* cost external sorting adds on top of the in-memory sort of the
  // same rows — composite-key builds, run-file writes and reads (20 bytes
  // per row: 128-bit key + 32-bit oid), and the `num_runs`-way OVC merge
  // (costed like the coordinator merge it clones). The caller adds the
  // in-memory plan estimate itself.
  double SpillCycles(uint64_t n, int num_runs, int key_bits) const;

  // Calibratable coordinator-merge cost: merging `n` elements of
  // `key_bits`-bit composite keys from `fan_in` pre-sorted shard streams
  // through an OVC loser tree (ceil(log2 fan_in) levels). Returns 0 for
  // fan_in <= 1.
  double CoordinatorMergeCycles(uint64_t n, int fan_in, int key_bits) const;

  // T_sort of the round that would *follow* a sorted prefix of
  // `prefix_bits` bits, when executed with `bank`-bit banks — the greedy
  // criterion of Algorithm 1 line 11 (it does not depend on how many bits
  // that next round itself carries).
  double NextRoundSortCycles(const SortInstanceStats& stats, int prefix_bits,
                             int bank) const;

  // Expected number of distinct values of the leading `bits` bits of the
  // concatenated key (composite across columns, independence assumed).
  double CompositeDistinct(const SortInstanceStats& stats, int bits) const;

 private:
  struct GroupShape {
    double n_group;
    double n_sort;
    double rows_to_sort;
    double avg_group_size;
  };
  // Group structure among N rows given the distinct count of the sorted
  // prefix (balls-into-bins).
  GroupShape EstimateGroups(uint64_t n, double prefix_distinct) const;
  // T_sort^k: cost of sorting `shape` with bank `bank` (Eqs. 1-2, 5-8).
  double SortCycles(const GroupShape& shape, int bank) const;
  // T_sort for the OVC merge kernel: SIMD base-run formation plus scalar
  // code-driven binary passes. Returns +inf when the shape gives the
  // kernel no merge passes to accelerate.
  double SortCyclesOvc(const GroupShape& shape, int bank) const;
  // T_sort for the counting kernel on a `width`-bit round whose average
  // group holds `avg_group_distinct` distinct codes (drives the histogram
  // cache-residency blend). Returns +inf when width is infeasible.
  double SortCyclesCounting(const GroupShape& shape, int width,
                            double avg_group_distinct) const;
  // T_lookup for reordering a w-bit column of N codes (Eq. 3).
  double LookupCycles(uint64_t n, int width) const;

  CostParams params_;
};

}  // namespace mcsort

#endif  // MCSORT_COST_COST_MODEL_H_

#include "mcsort/cost/linear_solver.h"

#include <cmath>
#include <cstddef>

#include "mcsort/common/logging.h"

namespace mcsort {

std::vector<double> SolveLeastSquares(const std::vector<std::vector<double>>& a,
                                      const std::vector<double>& b) {
  MCSORT_CHECK(!a.empty());
  MCSORT_CHECK(a.size() == b.size());
  const size_t rows = a.size();
  const size_t cols = a[0].size();
  MCSORT_CHECK(rows >= cols);

  // Normal equations: (A^T A + ridge*I) x = A^T b.
  std::vector<std::vector<double>> ata(cols, std::vector<double>(cols, 0.0));
  std::vector<double> atb(cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    MCSORT_CHECK(a[r].size() == cols);
    for (size_t i = 0; i < cols; ++i) {
      atb[i] += a[r][i] * b[r];
      for (size_t j = 0; j < cols; ++j) {
        ata[i][j] += a[r][i] * a[r][j];
      }
    }
  }
  // Ridge scaled to the matrix magnitude keeps near-collinear systems
  // (e.g. jointly-calibrated per-code constants) well conditioned.
  double trace = 0.0;
  for (size_t i = 0; i < cols; ++i) trace += ata[i][i];
  const double ridge = 1e-9 * (trace / static_cast<double>(cols) + 1.0);
  for (size_t i = 0; i < cols; ++i) ata[i][i] += ridge;

  // Gaussian elimination with partial pivoting.
  std::vector<double> x = atb;
  for (size_t col = 0; col < cols; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < cols; ++r) {
      if (std::fabs(ata[r][col]) > std::fabs(ata[pivot][col])) pivot = r;
    }
    std::swap(ata[col], ata[pivot]);
    std::swap(x[col], x[pivot]);
    MCSORT_CHECK(std::fabs(ata[col][col]) > 0.0);
    for (size_t r = col + 1; r < cols; ++r) {
      const double factor = ata[r][col] / ata[col][col];
      for (size_t j = col; j < cols; ++j) ata[r][j] -= factor * ata[col][j];
      x[r] -= factor * x[col];
    }
  }
  for (size_t col = cols; col-- > 0;) {
    for (size_t j = col + 1; j < cols; ++j) x[col] -= ata[col][j] * x[j];
    x[col] /= ata[col][col];
  }
  return x;
}

}  // namespace mcsort

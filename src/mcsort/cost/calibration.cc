#include "mcsort/cost/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <vector>

#include "mcsort/common/bits.h"
#include "mcsort/common/options.h"
#include "mcsort/common/logging.h"
#include "mcsort/common/random.h"
#include "mcsort/common/timer.h"
#include "mcsort/cost/linear_solver.h"
#include "mcsort/massage/massage.h"
#include "mcsort/scan/group_scan.h"
#include "mcsort/scan/lookup.h"
#include "mcsort/sort/counting_sort.h"
#include "mcsort/sort/simd_sort.h"
#include "mcsort/storage/column.h"

namespace mcsort {
namespace {

double SecondsToCycles(double seconds, const CostParams& params) {
  return seconds * params.ghz * 1e9;
}

// Measures the best-of-`repeats` wall time of `body` after one warmup.
template <typename Fn>
double MeasureSeconds(int repeats, Fn&& body) {
  body();  // warmup
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    body();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

// --------------------------------------------------------------------------
// Lookup (C_cache, C_mem)
// --------------------------------------------------------------------------

void CalibrateLookup(const CalibrationOptions& options, CostParams* params) {
  const int width = 32;  // size(w) = 4 bytes
  const double size_bytes = static_cast<double>(SizeOfWidth(width));
  Rng rng(options.seed);

  auto run_at_ratio = [&](double hit_ratio, double* out_n) -> double {
    uint64_t n = static_cast<uint64_t>(
        static_cast<double>(params->llc_bytes) / (hit_ratio * size_bytes));
    n = std::min(n, options.lookup_rows_cap);
    n = std::max<uint64_t>(n, 1024);
    *out_n = static_cast<double>(n);
    EncodedColumn column(width, n);
    for (uint64_t i = 0; i < n; ++i) {
      column.Set(i, rng.Next() & LowBitsMask(width));
    }
    // Random permutation of oids: the lookup's N random accesses.
    std::vector<Oid> oids(n);
    std::iota(oids.begin(), oids.end(), 0);
    for (uint64_t i = n; i > 1; --i) {
      std::swap(oids[i - 1], oids[rng.NextBounded(i)]);
    }
    EncodedColumn out;
    return MeasureSeconds(options.repeats, [&] {
      GatherColumn(column, oids.data(), n, &out);
    });
  };

  double n_hi = 0, n_lo = 0;
  const double t_hi = run_at_ratio(options.lookup_hit_hi, &n_hi);
  const double t_lo = run_at_ratio(options.lookup_hit_lo, &n_lo);
  // Eq. 3 instantiated twice: T = N (C_cache h + C_mem (1 - h)).
  const double llc = static_cast<double>(params->llc_bytes);
  const double h_hi = std::min(1.0, llc / (n_hi * size_bytes));
  const double h_lo = std::min(1.0, llc / (n_lo * size_bytes));
  std::vector<std::vector<double>> a = {{n_hi * h_hi, n_hi * (1.0 - h_hi)},
                                        {n_lo * h_lo, n_lo * (1.0 - h_lo)}};
  std::vector<double> b = {SecondsToCycles(t_hi, *params),
                           SecondsToCycles(t_lo, *params)};
  std::vector<double> x = SolveLeastSquares(a, b);
  // Keep the solution physical: latencies are positive and memory is not
  // faster than cache.
  params->cache_cycles = std::max(0.5, x[0]);
  params->mem_cycles = std::max(params->cache_cycles, x[1]);
}

// --------------------------------------------------------------------------
// Massage (C_massage)
// --------------------------------------------------------------------------

void CalibrateMassage(const CalibrationOptions& options, CostParams* params) {
  const uint64_t n = options.massage_rows;
  Rng rng(options.seed + 1);
  // The paper calibrates over the massage plans of Examples Ex1-Ex4.
  struct Case {
    std::vector<int> in_widths;
    std::vector<int> out_widths;
  };
  const std::vector<Case> cases = {
      {{10, 17}, {27}},          // Ex1 stitch-all
      {{15, 31}, {46}},          // Ex2 stitch-all
      {{17, 33}, {18, 32}},      // Ex3 optimal (P<<1)
      {{48, 48}, {32, 32, 32}},  // Ex4 three rounds
  };
  double total_cycles = 0.0;
  double total_work = 0.0;  // sum of N * I_FIP
  for (const Case& c : cases) {
    std::vector<EncodedColumn> columns;
    columns.reserve(c.in_widths.size());
    for (int w : c.in_widths) {
      EncodedColumn col(w, n);
      for (uint64_t i = 0; i < n; ++i) col.Set(i, rng.Next() & LowBitsMask(w));
      columns.push_back(std::move(col));
    }
    std::vector<MassageInput> inputs;
    for (const EncodedColumn& col : columns) {
      inputs.push_back({&col, SortOrder::kAscending});
    }
    const MassagePlan plan = MassagePlan::WithMinimalBanks(c.out_widths);
    const double seconds = MeasureSeconds(options.repeats, [&] {
      auto out = ApplyMassage(inputs, plan);
      (void)out;
    });
    total_cycles += SecondsToCycles(seconds, *params);
    // Work: N * I_FIP, with I_FIP = |prefix(in) U prefix(out)|.
    std::vector<int> in_prefix, out_prefix;
    int acc = 0;
    for (int w : c.in_widths) in_prefix.push_back(acc += w);
    acc = 0;
    for (int w : c.out_widths) out_prefix.push_back(acc += w);
    std::vector<int> u = in_prefix;
    u.insert(u.end(), out_prefix.begin(), out_prefix.end());
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
    total_work += static_cast<double>(n) * static_cast<double>(u.size());
  }
  params->massage_cycles = std::max(0.05, total_cycles / total_work);
}

// --------------------------------------------------------------------------
// Scan (C_scan)
// --------------------------------------------------------------------------

void CalibrateScan(const CalibrationOptions& options, CostParams* params) {
  const uint64_t n = options.massage_rows;
  Rng rng(options.seed + 2);
  EncodedColumn column(20, n);
  for (uint64_t i = 0; i < n; ++i) {
    column.Set(i, rng.NextBounded(1 << 14));
  }
  // Group scan runs over *sorted* keys.
  std::vector<uint32_t> sorted(n);
  for (uint64_t i = 0; i < n; ++i) sorted[i] = static_cast<uint32_t>(column.Get(i));
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < n; ++i) column.Set(i, sorted[i]);

  const Segments whole = Segments::Whole(n);
  Segments out;
  const double seconds = MeasureSeconds(options.repeats, [&] {
    FindGroups(column, whole, &out);
  });
  params->scan_cycles =
      std::max(0.1, SecondsToCycles(seconds, *params) / static_cast<double>(n));
}

// --------------------------------------------------------------------------
// Per-bank sort constants
// --------------------------------------------------------------------------

void CalibrateSortBank(const CalibrationOptions& options, int bank,
                       CostParams* params) {
  const uint64_t n = options.sort_rows;
  Rng rng(options.seed + static_cast<uint64_t>(bank));
  const int width = bank;  // full-width keys exercise the bank fully

  // Master random keys, re-used for every group count.
  EncodedColumn master;
  master.ResetTyped(width, PhysicalTypeForWidth(width), n);
  for (uint64_t i = 0; i < n; ++i) {
    master.Set(i, rng.Next() & LowBitsMask(width));
  }

  SortScratch scratch;
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  const double half_l2 = 0.5 * static_cast<double>(params->l2_bytes);
  for (uint64_t groups : {uint64_t{1}, uint64_t{16}, uint64_t{256},
                          uint64_t{4096}, uint64_t{65536}}) {
    if (groups > n / 2) continue;
    const uint64_t group_rows = n / groups;
    const uint64_t used = group_rows * groups;
    EncodedColumn keys;
    std::vector<Oid> oids(used);
    const double seconds = MeasureSeconds(options.repeats, [&] {
      // Fresh copy: sorting is destructive.
      keys.ResetTyped(width, master.type(), used, /*zero_fill=*/false);
      for (uint64_t i = 0; i < used; ++i) keys.Set(i, master.Get(i));
      std::iota(oids.begin(), oids.end(), 0);
      for (uint64_t g = 0; g < groups; ++g) {
        const uint64_t begin = g * group_rows;
        switch (keys.type()) {
          case PhysicalType::kU16:
            SortPairs16(keys.Data16() + begin, oids.data() + begin,
                        group_rows, scratch);
            break;
          case PhysicalType::kU32:
            SortPairs32(keys.Data32() + begin, oids.data() + begin,
                        group_rows, scratch);
            break;
          case PhysicalType::kU64:
            SortPairs64(keys.Data64() + begin, oids.data() + begin,
                        group_rows, scratch);
            break;
        }
      }
    });
    // NOTE: MeasureSeconds times the whole body including the copy; the
    // copy is one sequential pass, small relative to the sorts, and is
    // constant across group counts, so it folds into the per-code term.
    const double group_bytes =
        static_cast<double>(group_rows) * bank / 8.0;
    double passes = 0.0;
    if (group_bytes > half_l2) {
      passes = std::max(
          0.0, std::ceil(std::log(group_bytes / half_l2) /
                         std::log(static_cast<double>(params->merge_fanout))));
    }
    a.push_back({static_cast<double>(groups), static_cast<double>(used),
                 static_cast<double>(used) * passes});
    b.push_back(SecondsToCycles(seconds, *params));
  }
  MCSORT_CHECK(a.size() >= 3);
  const std::vector<double> x = SolveLeastSquares(a, b);
  BankSortParams& bp = params->mutable_bank(bank);
  bp.overhead = std::max(10.0, x[0]);
  const double per_code = std::max(0.2, x[1]);
  bp.sort_network = per_code / 2.0;
  bp.in_cache_merge = per_code / 2.0;
  bp.out_of_cache_merge = std::max(0.1, x[2]);
}

// --------------------------------------------------------------------------
// OVC merge kernel constants
// --------------------------------------------------------------------------

// Same experiment design as CalibrateSortBank, but against the OVC cost
// shape: {N_sort, rows, rows * binary_passes} with the pass count the
// model's ceil(log2(group_rows / kOvcRunElems)). Group counts are chosen
// so every group stays above one base run — the regime where the model
// ever considers the kernel.
void CalibrateOvcBank(const CalibrationOptions& options, int bank,
                      CostParams* params) {
  const uint64_t n = options.sort_rows;
  Rng rng(options.seed + 100 + static_cast<uint64_t>(bank));
  const int width = bank;

  EncodedColumn master;
  master.ResetTyped(width, PhysicalTypeForWidth(width), n);
  for (uint64_t i = 0; i < n; ++i) {
    master.Set(i, rng.Next() & LowBitsMask(width));
  }

  SortScratch scratch;
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  for (uint64_t groups : {uint64_t{1}, uint64_t{4}, uint64_t{16},
                          uint64_t{64}, uint64_t{256}}) {
    const uint64_t group_rows = n / groups;
    if (group_rows <= kOvcRunElems) continue;
    const uint64_t used = group_rows * groups;
    EncodedColumn keys;
    std::vector<Oid> oids(used);
    const double seconds = MeasureSeconds(options.repeats, [&] {
      keys.ResetTyped(width, master.type(), used, /*zero_fill=*/false);
      for (uint64_t i = 0; i < used; ++i) keys.Set(i, master.Get(i));
      std::iota(oids.begin(), oids.end(), 0);
      for (uint64_t g = 0; g < groups; ++g) {
        const uint64_t begin = g * group_rows;
        switch (keys.type()) {
          case PhysicalType::kU16:
            OvcSortPairs16(keys.Data16() + begin, oids.data() + begin,
                           group_rows, scratch);
            break;
          case PhysicalType::kU32:
            OvcSortPairs32(keys.Data32() + begin, oids.data() + begin,
                           group_rows, scratch);
            break;
          case PhysicalType::kU64:
            OvcSortPairs64(keys.Data64() + begin, oids.data() + begin,
                           group_rows, scratch);
            break;
        }
      }
    });
    const double passes = std::max(
        0.0, std::ceil(std::log2(static_cast<double>(group_rows) /
                                 static_cast<double>(kOvcRunElems))));
    a.push_back({static_cast<double>(groups), static_cast<double>(used),
                 static_cast<double>(used) * passes});
    b.push_back(SecondsToCycles(seconds, *params));
  }
  // Tiny calibrations (smoke tests) may leave fewer group counts above the
  // one-run floor than the fit has unknowns; keep the defaults then.
  if (a.size() < 3) return;
  const std::vector<double> x = SolveLeastSquares(a, b);
  OvcSortParams& op = params->mutable_ovc(bank);
  op.overhead = std::max(10.0, x[0]);
  op.run_form = std::max(0.5, x[1]);
  op.merge_pass = std::max(0.2, x[2]);
}

// --------------------------------------------------------------------------
// Counting kernel constants
// --------------------------------------------------------------------------

// Counting-sort timings across round widths (domain sizes) and group
// counts pin the four unknowns: domain walks identify per_bucket, the
// width sweep moves the histogram in and out of L2 to split row_cache
// from row_mem, and the grouped runs identify the per-invocation overhead.
void CalibrateCounting(const CalibrationOptions& options,
                       CostParams* params) {
  const uint64_t n = options.sort_rows;
  Rng rng(options.seed + 200);
  std::vector<uint32_t> master(n);
  for (uint64_t i = 0; i < n; ++i) {
    master[i] = static_cast<uint32_t>(rng.Next());
  }

  SortScratch scratch;
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  const double l2 = static_cast<double>(params->l2_bytes);
  std::vector<uint32_t> keys(n);
  std::vector<Oid> oids(n);
  for (int width : {8, 12, 16, kCountingMaxWidth}) {
    const double domain = std::pow(2.0, width);
    const uint32_t mask = static_cast<uint32_t>(LowBitsMask(width));
    for (uint64_t groups : {uint64_t{1}, uint64_t{256}}) {
      const uint64_t group_rows = n / groups;
      const uint64_t used = group_rows * groups;
      const double seconds = MeasureSeconds(options.repeats, [&] {
        for (uint64_t i = 0; i < used; ++i) keys[i] = master[i] & mask;
        std::iota(oids.begin(), oids.begin() + static_cast<ptrdiff_t>(used),
                  0);
        for (uint64_t g = 0; g < groups; ++g) {
          const uint64_t begin = g * group_rows;
          CountingSortPairs32(keys.data() + begin, oids.data() + begin,
                              group_rows, width, scratch);
        }
      });
      // Histogram residency as the model sees it: touched counters are the
      // per-group distinct values, ~min(domain, group rows) for uniform
      // keys.
      const double touched =
          std::min(domain, static_cast<double>(group_rows)) * 8.0;
      const double hit = std::min(1.0, l2 / touched);
      a.push_back({static_cast<double>(groups),
                   static_cast<double>(groups) * domain,
                   static_cast<double>(used) * hit,
                   static_cast<double>(used) * (1.0 - hit)});
      b.push_back(SecondsToCycles(seconds, *params));
    }
  }
  if (a.size() < 4) return;  // under-determined: keep the defaults
  const std::vector<double> x = SolveLeastSquares(a, b);
  CountingSortParams& cp = params->counting;
  cp.overhead = std::max(10.0, x[0]);
  cp.per_bucket = std::max(0.1, x[1]);
  cp.row_cache = std::max(0.5, x[2]);
  cp.row_mem = std::max(cp.row_cache, x[3]);
}

}  // namespace

CostParams Calibrate(const CalibrationOptions& options) {
  CostParams params = CostParams::Default();
  CalibrateLookup(options, &params);
  CalibrateMassage(options, &params);
  CalibrateScan(options, &params);
  for (int bank : {16, 32, 64}) {
    CalibrateSortBank(options, bank, &params);
    CalibrateOvcBank(options, bank, &params);
  }
  CalibrateCounting(options, &params);
  return params;
}

bool SaveParams(const CostParams& params, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f, "cache_cycles=%.6g\nmem_cycles=%.6g\n", params.cache_cycles,
               params.mem_cycles);
  std::fprintf(f, "massage_cycles=%.6g\nscan_cycles=%.6g\n",
               params.massage_cycles, params.scan_cycles);
  for (int bank : {16, 32, 64}) {
    const BankSortParams& bp = params.bank(bank);
    std::fprintf(f, "bank%d=%.6g,%.6g,%.6g,%.6g\n", bank, bp.overhead,
                 bp.sort_network, bp.in_cache_merge, bp.out_of_cache_merge);
  }
  for (int bank : {16, 32, 64}) {
    const OvcSortParams& op = params.ovc(bank);
    std::fprintf(f, "ovc%d=%.6g,%.6g,%.6g\n", bank, op.overhead, op.run_form,
                 op.merge_pass);
  }
  std::fprintf(f, "counting=%.6g,%.6g,%.6g,%.6g\n", params.counting.overhead,
               params.counting.per_bucket, params.counting.row_cache,
               params.counting.row_mem);
  std::fclose(f);
  return true;
}

bool LoadParams(const char* path, CostParams* params) {
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  char line[256];
  int fields = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    double a = 0, b = 0, c = 0, d = 0;
    int bank = 0;
    if (std::sscanf(line, "cache_cycles=%lf", &a) == 1) {
      params->cache_cycles = a;
      ++fields;
    } else if (std::sscanf(line, "mem_cycles=%lf", &a) == 1) {
      params->mem_cycles = a;
      ++fields;
    } else if (std::sscanf(line, "massage_cycles=%lf", &a) == 1) {
      params->massage_cycles = a;
      ++fields;
    } else if (std::sscanf(line, "scan_cycles=%lf", &a) == 1) {
      params->scan_cycles = a;
      ++fields;
    } else if (std::sscanf(line, "bank%d=%lf,%lf,%lf,%lf", &bank, &a, &b, &c,
                           &d) == 5) {
      BankSortParams& bp = params->mutable_bank(bank);
      bp.overhead = a;
      bp.sort_network = b;
      bp.in_cache_merge = c;
      bp.out_of_cache_merge = d;
      ++fields;
    } else if (std::sscanf(line, "ovc%d=%lf,%lf,%lf", &bank, &a, &b, &c) ==
               4) {
      OvcSortParams& op = params->mutable_ovc(bank);
      op.overhead = a;
      op.run_form = b;
      op.merge_pass = c;
      ++fields;
    } else if (std::sscanf(line, "counting=%lf,%lf,%lf,%lf", &a, &b, &c,
                           &d) == 4) {
      params->counting.overhead = a;
      params->counting.per_bucket = b;
      params->counting.row_cache = c;
      params->counting.row_mem = d;
      ++fields;
    }
  }
  std::fclose(f);
  // 11 = 4 scalars + 3 banks + 3 OVC banks + counting. Older calibration
  // files lack the kernel terms; treating them as missing forces one
  // recalibration rather than routing kernels on stale defaults.
  return fields >= 11;
}

namespace {

std::once_flag calibrated_params_once;
CostParams* calibrated_params = nullptr;

}  // namespace

const CostParams& CalibratedParams() {
  std::call_once(calibrated_params_once, [] {
    const std::string path = ExecOptions::FromEnv().calibration_path;
    CostParams params = CostParams::Default();
    if (LoadParams(path.c_str(), &params)) {
      std::fprintf(stderr, "[mcsort] loaded calibration from %s\n",
                   path.c_str());
    } else {
      std::fprintf(stderr,
                   "[mcsort] calibrating cost model (cached to %s)...\n",
                   path.c_str());
      params = Calibrate();
      SaveParams(params, path.c_str());
    }
    calibrated_params = new CostParams(params);  // leaked intentionally
  });
  return *calibrated_params;
}

const CostModel& SharedCostModel() {
  static std::once_flag once;
  static const CostModel* model = nullptr;
  std::call_once(once,
                 [] { model = new CostModel(CalibratedParams()); });
  return *model;
}

}  // namespace mcsort

// Calibration of the cost-model constants from controlled experiments on
// the actual hardware (Sec. 4): the paper's approach of instantiating the
// cost equations with measured runtimes and solving the constants as a
// linear system.
//
//   * C_cache / C_mem: lookups at two data sizes chosen to hit cache-hit
//     ratios ~0.9 and ~0.1 in Eq. 3; two equations, two unknowns.
//   * C_massage: measured massaging time of the Sec. 3 example plans
//     divided by N * I_FIP.
//   * C_scan: measured group-extraction scan, cycles per row.
//   * Per-bank sort constants: the segmented sort is timed at several
//     N_group values (1, 16, ..., 64Ki groups over the same N rows) and
//     (C_overhead, C_sort-network + C_in-cache-merge, C_out-of-cache-merge)
//     are fit by least squares. C_sort-network and C_in-cache-merge both
//     scale with N (Eqs. 6-7), so only their sum is identifiable — exactly
//     as in the paper's joint calibration; the sum is split evenly, which
//     leaves every prediction unchanged.
//   * Per-bank OVC constants: the same segmented-sort design against the
//     OVC cost shape {N_sort, rows, rows * binary_passes}.
//   * Counting constants: width x group-count sweep; the domain walks
//     identify the per-bucket term, widths past L2 split the cached vs
//     missing per-row costs.
#ifndef MCSORT_COST_CALIBRATION_H_
#define MCSORT_COST_CALIBRATION_H_

#include <cstdint>

#include "mcsort/cost/cost_model.h"
#include "mcsort/cost/params.h"

namespace mcsort {

struct CalibrationOptions {
  // Rows used for the sort-constant experiments (per bank).
  uint64_t sort_rows = uint64_t{1} << 21;
  // Rows for the massage / scan experiments.
  uint64_t massage_rows = uint64_t{1} << 21;
  // Target cache-hit ratios for the two lookup experiments.
  double lookup_hit_hi = 0.9;
  double lookup_hit_lo = 0.1;
  // Cap on the lookup experiment size (rows), so calibration stays fast on
  // machines whose (effective) LLC is large.
  uint64_t lookup_rows_cap = uint64_t{1} << 24;
  // Repetitions per measurement (median-of is taken implicitly by
  // averaging after one warmup run).
  int repeats = 3;
  // Deterministic seed for the synthetic data.
  uint64_t seed = 0x5EED;
};

// Runs all calibration experiments and returns the fitted parameters
// (starting from CostParams::Default() for the hardware constants).
CostParams Calibrate(const CalibrationOptions& options = {});

// Returns lazily calibrated process-wide parameters. On first call, loads
// cached constants from $MCSORT_CALIBRATION_FILE (alias:
// $MCSORT_CALIBRATION; default "mcsort_calibration.txt" in the working
// directory) if present; otherwise calibrates with default options and
// writes the cache, so a suite of benchmark binaries calibrates only once
// per machine. Thread-safe: the load/calibrate runs exactly once behind
// std::call_once; concurrent first callers block until it completes.
const CostParams& CalibratedParams();

// Process-wide cost model over CalibratedParams(), constructed exactly
// once (std::call_once) and shared by all query-service sessions — no
// session ever re-reads the calibration file or re-runs calibration.
const CostModel& SharedCostModel();

// Serialization of calibrated constants (simple key=value text).
bool SaveParams(const CostParams& params, const char* path);
bool LoadParams(const char* path, CostParams* params);

}  // namespace mcsort

#endif  // MCSORT_COST_CALIBRATION_H_

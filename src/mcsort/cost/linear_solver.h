// Small dense least-squares solver used by the calibration procedures
// (Sec. 4 solves the calibrated constants "as a linear system"; with more
// observations than unknowns we fit by least squares, the alternative the
// paper itself suggests).
#ifndef MCSORT_COST_LINEAR_SOLVER_H_
#define MCSORT_COST_LINEAR_SOLVER_H_

#include <vector>

namespace mcsort {

// Solves min_x ||A x - b||_2 for a dense row-major A (rows x cols,
// rows >= cols) via the normal equations with a tiny ridge term for
// numerical stability. Returns the coefficient vector (size cols).
std::vector<double> SolveLeastSquares(const std::vector<std::vector<double>>& a,
                                      const std::vector<double>& b);

}  // namespace mcsort

#endif  // MCSORT_COST_LINEAR_SOLVER_H_

// Calibrated constants of the architectural cost model (Sec. 4, Table 3's
// "C" symbols). All time-like constants are in CPU cycles per unit.
#ifndef MCSORT_COST_PARAMS_H_
#define MCSORT_COST_PARAMS_H_

#include <cstddef>
#include <cstdint>

namespace mcsort {

// Per-bank merge-sort constants (Eqs. 2, 6, 7, 8).
struct BankSortParams {
  // C_overhead: fixed cycles per SIMD-sort invocation (function setup,
  // scratch bookkeeping).
  double overhead = 300.0;
  // C_sort-network: cycles per code of the in-register phase.
  double sort_network = 2.5;
  // C_in-cache-merge: cycles per code of the in-cache merge phase.
  double in_cache_merge = 2.5;
  // C_out-of-cache-merge: cycles per code per out-of-cache pass.
  double out_of_cache_merge = 2.0;
};

// Per-bank OVC merge kernel constants: SIMD-formed base runs (kOvcRunElems
// rows each) binary-merged on offset-value codes. The run-formation term
// reuses the SIMD kernels so it tracks the bank; the per-pass term is
// scalar, but each pass touches fewer key bytes than a SIMD pass would
// because codes decide most comparisons.
struct OvcSortParams {
  // Fixed cycles per invocation.
  double overhead = 300.0;
  // Cycles per code of base-run formation + encoding (one-time).
  double run_form = 7.0;
  // Cycles per code per binary merge pass.
  double merge_pass = 5.0;
};

// Counting kernel constants (sort/counting_sort.h): histogram + prefix +
// stable scatter + key regeneration, O(N + K) with K = 2^width.
struct CountingSortParams {
  // Fixed cycles per invocation.
  double overhead = 300.0;
  // Cycles per *domain value* (prefix walk + regeneration, the O(K) part).
  double per_bucket = 2.0;
  // Cycles per row when the histogram is cache-resident...
  double row_cache = 3.0;
  // ...and when histogram updates miss (large domains): the cost model
  // blends the two by the same cache-hit heuristic it uses for lookups.
  double row_mem = 12.0;
};

// Coordinator-merge constants (dist/coordinator.h): the loser-tree
// multiway merge of pre-sorted shard result streams. Costed per element
// per tree level (ceil(log2 fan_in) comparisons each, most decided by a
// one-word offset-value-code compare) plus a per-key-byte term for the
// 128-bit composite keys the comparisons occasionally touch.
struct CoordMergeParams {
  // Fixed cycles per merge invocation (tree construction, stream setup).
  double overhead = 5000.0;
  // Cycles per element per loser-tree level (code compare + replay step).
  double per_element = 8.0;
  // Cycles per key byte touched on the equal-code full-compare path,
  // amortized over all elements.
  double per_key_byte = 0.5;
};

// External-sort (spill) constants (sort/external/): the cost of pushing
// rows through run files and the K-way merge, used by the executor's
// spill-vs-degrade router. IO is costed in cycles per run-file byte so a
// page-cache-resident spill directory and a real disk calibrate to very
// different routing points; the merge's CPU term reuses CoordMergeParams.
struct SpillParams {
  // Fixed cycles per spilling sort (directory setup, file opens).
  double overhead = 20000.0;
  // Cycles per run-file byte on the generation (write) side.
  double write_per_byte = 1.0;
  // Cycles per run-file byte on the merge (read) side.
  double read_per_byte = 1.0;
  // Cycles per row for composite-key construction + run sinking.
  double key_build_per_row = 12.0;
};

struct CostParams {
  // C_cache / C_mem: access latency of one item in cache vs. memory
  // (Eq. 3).
  double cache_cycles = 15.0;
  double mem_cycles = 150.0;
  // C_massage: cycles per code per FIP invocation (Eq. 4).
  double massage_cycles = 1.5;
  // C_scan: cycles per code of a group-extraction scan (Eq. 9).
  double scan_cycles = 2.0;

  BankSortParams bank16;
  BankSortParams bank32;
  BankSortParams bank64;

  OvcSortParams ovc16;
  OvcSortParams ovc32;
  OvcSortParams ovc64;
  CountingSortParams counting;
  CoordMergeParams coord_merge;
  SpillParams spill;

  // M_LLC / M_L2 as used by the model (bytes). The LLC figure is the
  // *effective* value used in the cache-hit-ratio formula; calibration fits
  // C_cache/C_mem against it.
  size_t llc_bytes = 8u << 20;
  size_t l2_bytes = 256u << 10;
  // F: fanout of the out-of-cache merge. The sort implementation uses
  // four-way merge-tree passes (two L2-resident staging levels), so F = 4;
  // the final pass over two remaining runs is binary.
  int merge_fanout = 4;
  // Nominal frequency (cycles per nanosecond) for cycles <-> seconds.
  double ghz = 2.0;

  const BankSortParams& bank(int bank_bits) const {
    switch (bank_bits) {
      case 16: return bank16;
      case 32: return bank32;
      default: return bank64;
    }
  }
  BankSortParams& mutable_bank(int bank_bits) {
    switch (bank_bits) {
      case 16: return bank16;
      case 32: return bank32;
      default: return bank64;
    }
  }

  const OvcSortParams& ovc(int bank_bits) const {
    switch (bank_bits) {
      case 16: return ovc16;
      case 32: return ovc32;
      default: return ovc64;
    }
  }
  OvcSortParams& mutable_ovc(int bank_bits) {
    switch (bank_bits) {
      case 16: return ovc16;
      case 32: return ovc32;
      default: return ovc64;
    }
  }

  // Reasonable uncalibrated defaults with hardware sizes filled in from
  // CpuInfo. Use Calibrate() (cost/calibration.h) for measured constants.
  static CostParams Default();
};

}  // namespace mcsort

#endif  // MCSORT_COST_PARAMS_H_

#include "mcsort/cost/cost_model.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "mcsort/common/bits.h"
#include "mcsort/common/logging.h"
#include "mcsort/massage/fip.h"
#include "mcsort/sort/counting_sort.h"
#include "mcsort/sort/simd_sort.h"

namespace mcsort {

SortInstanceStats SortInstanceStats::Permuted(
    const std::vector<int>& order) const {
  MCSORT_CHECK(order.size() == columns.size());
  SortInstanceStats permuted;
  permuted.n = n;
  permuted.merge_fan_in = merge_fan_in;
  permuted.columns.reserve(columns.size());
  for (int idx : order) {
    permuted.columns.push_back(columns[static_cast<size_t>(idx)]);
  }
  return permuted;
}

double CostModel::CompositeDistinct(const SortInstanceStats& stats,
                                    int bits) const {
  // Product of per-column (partial-)prefix distinct counts, assuming
  // column independence; capped to avoid overflow (the balls-into-bins
  // step saturates at N long before the cap matters).
  constexpr double kCap = 1e18;
  double product = 1.0;
  int remaining = bits;
  for (const ColumnStats* column : stats.columns) {
    if (remaining <= 0) break;
    const int take = std::min(column->width(), remaining);
    product *= std::max(1.0, column->EstimateDistinctPrefixes(take));
    remaining -= take;
    if (product > kCap) return kCap;
  }
  return product;
}

CostModel::GroupShape CostModel::EstimateGroups(uint64_t n,
                                                double prefix_distinct) const {
  GroupShape shape;
  const double rows = static_cast<double>(n);
  if (prefix_distinct <= 1.0) {
    // Single group covering everything (round 1).
    shape.n_group = 1.0;
    shape.n_sort = rows > 1 ? 1.0 : 0.0;
    shape.rows_to_sort = rows;
    shape.avg_group_size = rows;
    return shape;
  }
  const double cells = prefix_distinct;
  // Balls into bins over the composite prefix domain.
  shape.n_group = ExpectedOccupiedCells(cells, rows);
  const double log_miss = (rows - 1.0) * std::log1p(-1.0 / cells);
  const double singletons = rows * std::exp(log_miss);
  shape.n_sort = std::max(0.0, shape.n_group - singletons);
  shape.rows_to_sort = std::max(0.0, rows - singletons);
  shape.avg_group_size =
      shape.n_sort > 0.5 ? shape.rows_to_sort / shape.n_sort : 0.0;
  return shape;
}

double CostModel::SortCycles(const GroupShape& shape, int bank) const {
  const BankSortParams& p = params_.bank(bank);
  if (shape.n_sort < 0.5) return 0.0;
  // Out-of-cache passes for an average-size group (Eq. 8), >= 0.
  const double group_bytes = shape.avg_group_size * bank / 8.0;
  const double half_l2 = 0.5 * static_cast<double>(params_.l2_bytes);
  double passes = 0.0;
  if (group_bytes > half_l2) {
    passes = std::ceil(std::log(group_bytes / half_l2) /
                       std::log(static_cast<double>(params_.merge_fanout)));
    passes = std::max(passes, 0.0);
  }
  return shape.n_sort * p.overhead +
         shape.rows_to_sort * (p.sort_network + p.in_cache_merge) +
         shape.rows_to_sort * p.out_of_cache_merge * passes;
}

double CostModel::LookupCycles(uint64_t n, int width) const {
  if (n == 0) return 0.0;
  const double footprint =
      static_cast<double>(n) * static_cast<double>(SizeOfWidth(width));
  const double hit = std::min(
      1.0, static_cast<double>(params_.llc_bytes) / footprint);
  return static_cast<double>(n) *
         (params_.cache_cycles * hit + params_.mem_cycles * (1.0 - hit));
}

double CostModel::SortCyclesOvc(const GroupShape& shape, int bank) const {
  if (shape.n_sort < 0.5) return 0.0;
  // Groups at or below one base run degenerate to the plain SIMD sort:
  // nothing for codes to accelerate, so the kernel is never preferable.
  const double run_elems = static_cast<double>(kOvcRunElems);
  if (shape.avg_group_size <= run_elems) {
    return std::numeric_limits<double>::infinity();
  }
  const OvcSortParams& p = params_.ovc(bank);
  const double passes =
      std::max(0.0, std::ceil(std::log2(shape.avg_group_size / run_elems)));
  return shape.n_sort * p.overhead + shape.rows_to_sort * p.run_form +
         shape.rows_to_sort * passes * p.merge_pass;
}

double CostModel::SortCyclesCounting(const GroupShape& shape, int width,
                                     double avg_group_distinct) const {
  if (shape.n_sort < 0.5) return 0.0;
  if (!CountingSortFeasible(width)) {
    return std::numeric_limits<double>::infinity();
  }
  const CountingSortParams& p = params_.counting;
  // Every per-group invocation walks the full 2^width domain (prefix +
  // regeneration) — the O(K) term that keeps counting out of late rounds
  // with many small groups.
  const double domain = std::pow(2.0, width);
  // Histogram residency: only a group's ~distinct counters are touched;
  // blend row cost by how much of that working set one L2 holds.
  const double touched_bytes =
      std::max(1.0, avg_group_distinct) * static_cast<double>(sizeof(uint64_t));
  const double hit =
      std::min(1.0, static_cast<double>(params_.l2_bytes) / touched_bytes);
  return shape.n_sort * (p.overhead + domain * p.per_bucket) +
         shape.rows_to_sort * (p.row_cache * hit + p.row_mem * (1.0 - hit));
}

double CostModel::NextRoundSortCycles(const SortInstanceStats& stats,
                                      int prefix_bits, int bank) const {
  const GroupShape shape =
      EstimateGroups(stats.n, CompositeDistinct(stats, prefix_bits));
  return SortCycles(shape, bank);
}

CostModel::PlanEstimate CostModel::Estimate(const MassagePlan& plan,
                                            const SortInstanceStats& stats,
                                            SortKernelMask kernels) const {
  MCSORT_CHECK(plan.IsValid());
  MCSORT_CHECK(plan.total_width() == stats.total_width());
  PlanEstimate estimate;

  // T_massage (Eq. 4).
  const int fips = CountFipInvocations(stats.widths(), plan.widths());
  estimate.t_massage =
      static_cast<double>(fips) * params_.massage_cycles *
      static_cast<double>(stats.n);
  estimate.total_cycles = estimate.t_massage;

  int prefix_bits = 0;
  for (size_t j = 0; j < plan.num_rounds(); ++j) {
    const Round& round = plan.round(j);
    RoundEstimate re;
    const GroupShape entering =
        EstimateGroups(stats.n, CompositeDistinct(stats, prefix_bits));
    re.n_sort = entering.n_sort;
    re.rows_to_sort = entering.rows_to_sort;
    re.avg_group_size = entering.avg_group_size;
    // Kernel-choice dimension: cheapest allowed feasible kernel wins the
    // round; merge is the unconditional fallback.
    re.kernel = SortKernel::kSimdMerge;
    re.t_sort = SortCycles(entering, round.bank);
    if ((kernels & KernelBit(SortKernel::kOvcMerge)) != 0) {
      const double t = SortCyclesOvc(entering, round.bank);
      if (t < re.t_sort) {
        re.t_sort = t;
        re.kernel = SortKernel::kOvcMerge;
      }
    }
    const double exiting_distinct =
        CompositeDistinct(stats, prefix_bits + round.width);
    if ((kernels & KernelBit(SortKernel::kCounting)) != 0) {
      // Distinct codes per sorted group this round: the new composite
      // distinct spread over the groups entering it, capped by the domain.
      double avg_group_distinct =
          entering.n_group > 0.5 ? exiting_distinct / entering.n_group
                                 : exiting_distinct;
      avg_group_distinct = std::min(
          avg_group_distinct,
          std::pow(2.0, std::min(round.width, kCountingMaxWidth + 1)));
      const double t =
          SortCyclesCounting(entering, round.width, avg_group_distinct);
      if (t < re.t_sort) {
        re.t_sort = t;
        re.kernel = SortKernel::kCounting;
      }
    }
    if (j > 0) re.t_lookup = LookupCycles(stats.n, round.width);
    re.t_scan = params_.scan_cycles * static_cast<double>(stats.n);
    prefix_bits += round.width;
    re.n_group = EstimateGroups(stats.n, exiting_distinct).n_group;
    estimate.total_cycles += re.t_lookup + re.t_sort + re.t_scan;
    estimate.rounds.push_back(re);
  }
  // Shard-aware term: the coordinator merge this shard's stream feeds.
  // Each shard is billed its own rows' share of the merge.
  if (stats.merge_fan_in > 1) {
    estimate.t_coord_merge = CoordinatorMergeCycles(
        stats.n, stats.merge_fan_in, stats.total_width());
    estimate.total_cycles += estimate.t_coord_merge;
  }
  return estimate;
}

double CostModel::SpillCycles(uint64_t n, int num_runs, int key_bits) const {
  if (n == 0) return 0;
  const SpillParams& p = params_.spill;
  // Run-file row: 128-bit composite key + 32-bit oid (run_file.h's
  // kRunRowBytes), written once during generation and read once to merge.
  const double bytes = static_cast<double>(n) * 20.0;
  return p.overhead + static_cast<double>(n) * p.key_build_per_row +
         bytes * (p.write_per_byte + p.read_per_byte) +
         CoordinatorMergeCycles(n, num_runs < 2 ? 2 : num_runs, key_bits);
}

double CostModel::CoordinatorMergeCycles(uint64_t n, int fan_in,
                                         int key_bits) const {
  if (fan_in <= 1 || n == 0) return 0;
  const CoordMergeParams& p = params_.coord_merge;
  const int levels =
      std::bit_width(static_cast<unsigned>(fan_in) - 1u);  // ceil(log2)
  const double key_bytes = static_cast<double>((key_bits + 7) / 8);
  return p.overhead +
         static_cast<double>(n) * static_cast<double>(levels) *
             (p.per_element + p.per_key_byte * key_bytes);
}

}  // namespace mcsort

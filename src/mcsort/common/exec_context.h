// ExecContext — per-execution robustness contract threaded through every
// long-running loop of the stack (morsel dispatch, per-bank merge passes,
// segment sorts, chunk-parallel gather/group-scan, ROGA plan search):
//
//   * cooperative cancellation: a CancellationSource owned by the client
//     (typically another thread) flips a shared flag; executors poll it at
//     morsel / merge-pass / round boundaries and unwind with a typed
//     ExecStatus — no exceptions on the hot path, latency bounded by one
//     morsel's worth of work;
//   * absolute deadline: checked at the same boundaries, so a query past
//     its deadline stops claiming work instead of running to completion;
//   * scratch-memory budget: a soft cap the executor compares against the
//     chosen plan's estimated scratch; over budget it degrades to a
//     narrower-bank plan (re-running ROGA with a bank cap) instead of
//     failing the query;
//   * fault injection: an env-driven FaultInjector (MCSORT_FAULT) forces
//     cancellation, deadline expiry, or allocation failure at round
//     boundaries so the unwind paths are exercised under TSan/ASan.
//
// An ExecContext is cheap to copy; copies share the cancellation flag and
// the injected-fault cell, so a context handed to the executor observes
// faults and cancellations raised through any copy. The default context
// (ExecContext::Default() or a default-constructed one) is never stoppable
// and adds only two predictable branches per boundary check.
#ifndef MCSORT_COMMON_EXEC_CONTEXT_H_
#define MCSORT_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "mcsort/common/status.h"

namespace mcsort {

struct PlanHint;  // engine/query.h — opaque at this layer

// Typed outcome of one execution; kOk on the straight path.
enum class ExecCode : int {
  kOk = 0,
  kCancelled = 1,          // CancellationSource fired (or injected)
  kDeadlineExceeded = 2,   // absolute deadline passed (or injected)
  kResourceExhausted = 3,  // scratch budget unsatisfiable / injected alloc
                           // failure that could not be absorbed by
                           // degradation
};

// Status value returned by the executors instead of exceptions. `detail`
// is a static string (never owned), safe to copy freely.
struct ExecStatus {
  ExecCode code = ExecCode::kOk;
  const char* detail = "";

  bool ok() const { return code == ExecCode::kOk; }
  // Stable lowercase name for metrics keys: "ok", "cancelled",
  // "deadline_exceeded", "resource_exhausted".
  const char* name() const;

  static ExecStatus Ok() { return {}; }
  static ExecStatus Cancelled(const char* detail = "cancelled") {
    return {ExecCode::kCancelled, detail};
  }
  static ExecStatus DeadlineExceeded(const char* detail = "deadline exceeded") {
    return {ExecCode::kDeadlineExceeded, detail};
  }
  static ExecStatus ResourceExhausted(
      const char* detail = "scratch budget exhausted") {
    return {ExecCode::kResourceExhausted, detail};
  }
  static ExecStatus FromCode(ExecCode code);

  // Unified-status bridge (common/status.h). Every ExecCode has an exact
  // canonical twin, so ToStatus/FromStatus round-trip; a Status outside
  // the executor's vocabulary lands on kResourceExhausted if it is a
  // resource flavor and kCancelled otherwise (the executor's two unwind
  // classes). The detail string is preserved in both directions as far as
  // lifetimes allow (FromStatus keeps only the static code name — an
  // ExecStatus never owns its detail).
  Status ToStatus() const;
  static ExecStatus FromStatus(const Status& status);
};

// Read side of a cancellation flag. Copies share the flag; a
// default-constructed token is never cancelled.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool valid() const { return flag_ != nullptr; }
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Write side: the client (usually a different thread than the executing
// one) calls Cancel(); every token minted from this source observes it.
class CancellationSource {
 public:
  CancellationSource()
      : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }
  void Cancel() { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Forces one fault at a chosen round boundary. Boundaries are counted
// process-wide per injector via Poll(); the fault fires exactly once, at
// the `trigger`-th boundary (1-based). Thread-safe: concurrent pollers
// agree on which one observes the fault.
class FaultInjector {
 public:
  enum class Kind { kNone, kCancel, kDeadline, kAlloc };

  FaultInjector() = default;
  FaultInjector(Kind kind, uint64_t trigger)
      : kind_(kind), trigger_(trigger == 0 ? 1 : trigger) {}

  // Parses "cancel", "deadline", or "alloc", optionally suffixed with
  // "@N" (the boundary to fire at, default 1): "alloc@3" fires at the
  // third round boundary. Unrecognized spellings yield a disabled
  // injector.
  static FaultInjector FromString(const char* spec);
  // FromString(getenv("MCSORT_FAULT")); disabled when unset.
  static FaultInjector FromEnv();

  bool enabled() const { return kind_ != Kind::kNone; }
  Kind kind() const { return kind_; }
  uint64_t trigger() const { return trigger_; }

  // Round-boundary hook: counts the boundary and returns the kind to
  // inject if this is the trigger boundary (kNone otherwise / afterwards).
  Kind Poll();

 private:
  Kind kind_ = Kind::kNone;
  uint64_t trigger_ = 1;
  std::atomic<uint64_t> boundaries_{0};
};

class ExecContext {
 public:
  ExecContext() = default;

  // The process-wide default context: no token, no deadline, no budget, no
  // fault injector. Safe to share across concurrent executions.
  static const ExecContext& Default();

  // Fluent setup (each returns *this for chaining).
  ExecContext& WithToken(CancellationToken token) {
    token_ = std::move(token);
    return *this;
  }
  // Absolute deadline on the steady clock.
  ExecContext& WithDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
    return *this;
  }
  // Deadline `seconds` from now.
  ExecContext& WithDeadlineAfter(double seconds);
  // Soft scratch-memory budget in bytes (0 = unlimited); the executor
  // degrades to narrower-bank plans to fit, and only fails with
  // kResourceExhausted when even the narrowest plan does not.
  ExecContext& WithScratchBudget(size_t bytes) {
    scratch_budget_bytes_ = bytes;
    return *this;
  }
  // Attach a fault injector (borrowed; must outlive every execution using
  // this context). Allocates the shared injected-fault cell.
  ExecContext& WithFault(FaultInjector* fault);
  // Planning context for the engine (borrowed; engine/query.h interprets).
  ExecContext& WithHint(const PlanHint* hint) {
    hint_ = hint;
    return *this;
  }

  const CancellationToken& token() const { return token_; }
  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }
  size_t scratch_budget_bytes() const { return scratch_budget_bytes_; }
  FaultInjector* fault() const { return fault_; }
  const PlanHint* hint() const { return hint_; }

  // True when any stop source is attached; the hot-path check is skipped
  // entirely for plain contexts.
  bool stoppable() const {
    return token_.valid() || has_deadline_ || fault_ != nullptr;
  }

  // Hot-path check, called at morsel / merge-pass / chunk boundaries:
  // injected faults first (relaxed atomic), then the cancellation flag,
  // then the deadline (one steady-clock read). Never consults the fault
  // injector itself — that is CheckRound's job.
  ExecCode StopCheck() const;
  bool StopRequested() const { return StopCheck() != ExecCode::kOk; }

  // Round-boundary check: polls the fault injector (arming injected
  // cancellation / deadline / allocation failure) and then behaves like
  // StopCheck. Injected allocation failure surfaces as
  // kResourceExhausted, which the executor may absorb by degrading to a
  // narrower plan (ClearResourceFault) instead of failing the query.
  ExecStatus CheckRound() const;

  // Consumes an injected allocation failure so a degraded re-execution can
  // proceed. Returns true when one was pending.
  bool ClearResourceFault() const;

 private:
  CancellationToken token_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  size_t scratch_budget_bytes_ = 0;
  FaultInjector* fault_ = nullptr;
  const PlanHint* hint_ = nullptr;
  // Injected-fault cell (holds an ExecCode as int; 0 = none). Shared by
  // copies so a fault armed inside the executor is visible to the caller's
  // context object too. Allocated only when a fault injector is attached.
  std::shared_ptr<std::atomic<int>> injected_;
};

}  // namespace mcsort

#endif  // MCSORT_COMMON_EXEC_CONTEXT_H_

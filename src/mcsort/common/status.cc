#include "mcsort/common/status.h"

namespace mcsort {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kDataLoss: return "data_loss";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  if (detail.empty()) return name();
  return std::string(name()) + ": " + detail;
}

}  // namespace mcsort

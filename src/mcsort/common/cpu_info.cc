#include "mcsort/common/cpu_info.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

namespace mcsort {
namespace {

// Reads a sysfs cache size file of the form "256K" / "25600K" / "2M".
bool ReadCacheSize(const char* path, size_t* out_bytes) {
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  char buf[64] = {0};
  const bool ok = std::fgets(buf, sizeof(buf), f) != nullptr;
  std::fclose(f);
  if (!ok) return false;
  char unit = 0;
  unsigned long long value = 0;
  if (std::sscanf(buf, "%llu%c", &value, &unit) < 1) return false;
  size_t bytes = value;
  if (unit == 'K' || unit == 'k') bytes *= 1024;
  if (unit == 'M' || unit == 'm') bytes *= 1024 * 1024;
  *out_bytes = bytes;
  return true;
}

// Reads the highest-index cache level for cpu0 as the LLC.
void DetectCaches(CpuInfo* info) {
  size_t bytes = 0;
  if (ReadCacheSize("/sys/devices/system/cpu/cpu0/cache/index0/size", &bytes))
    info->l1d_bytes = bytes;
  if (ReadCacheSize("/sys/devices/system/cpu/cpu0/cache/index2/size", &bytes))
    info->l2_bytes = bytes;
  // Probe upward for the last level present.
  for (int idx = 3; idx <= 5; ++idx) {
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu0/cache/index%d/size", idx);
    if (ReadCacheSize(path, &bytes)) info->llc_bytes = bytes;
  }
  if (info->llc_bytes < info->l2_bytes) info->llc_bytes = info->l2_bytes;
}

void DetectFrequency(CpuInfo* info) {
  // Parse "model name ... @ 2.10GHz" from /proc/cpuinfo.
  FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return;
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    const char* at = std::strchr(line, '@');
    if (at != nullptr) {
      double ghz = 0.0;
      if (std::sscanf(at + 1, "%lf", &ghz) == 1 && ghz > 0.1 && ghz < 10.0) {
        info->ghz = ghz;
      }
    }
    break;
  }
  std::fclose(f);
}

CpuInfo Detect() {
  CpuInfo info;
  DetectCaches(&info);
  DetectFrequency(&info);
  const unsigned hw = std::thread::hardware_concurrency();
  info.num_cores = hw == 0 ? 1 : static_cast<int>(hw);
  return info;
}

}  // namespace

const CpuInfo& CpuInfo::Get() {
  static const CpuInfo kInfo = Detect();
  return kInfo;
}

}  // namespace mcsort

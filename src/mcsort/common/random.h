// Deterministic, fast PRNG used by data generators, calibration, and RRS.
//
// xoshiro256** (public-domain algorithm by Blackman & Vigna) seeded through
// splitmix64. Deterministic across platforms so that tests and benchmark
// datasets are reproducible.
#ifndef MCSORT_COMMON_RANDOM_H_
#define MCSORT_COMMON_RANDOM_H_

#include <cstdint>

namespace mcsort {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the four-word state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound) for bound >= 1 (Lemire reduction).
  uint64_t NextBounded(uint64_t bound) {
    // 128-bit multiply keeps the distribution unbiased enough for our use
    // (generator inputs and randomized search), without a rejection loop.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  // Uniform value in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBounded(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace mcsort

#endif  // MCSORT_COMMON_RANDOM_H_

// Typed process configuration — the one place the MCSORT_* environment
// soup is parsed. Binaries call ExecOptions::FromEnv() /
// ServerOptions::FromEnv() exactly once at startup and pass the structs
// down; library code takes the structs (or the narrower per-layer options
// built from them) and never reads getenv itself.
//
// Knob spellings (all optional; defaults are the struct initializers):
//
//   execution                       network front-end
//   ------------------------       ------------------------
//   MCSORT_THREADS                 MCSORT_HOST
//   MCSORT_RHO                     MCSORT_PORT
//   MCSORT_N                       MCSORT_MAX_CONNS
//   MCSORT_CALIBRATION[_FILE]
//   MCSORT_DATA_DIR                external sort (spill)
//   MCSORT_MMAP                    ------------------------
//   MCSORT_MEMORY_BUDGET           MCSORT_SPILL
//   MCSORT_SCRATCH_BUDGET          MCSORT_SPILL_DIR
//                                  MCSORT_SPILL_PREFETCH
//   write path (delta)
//   ------------------------
//   MCSORT_COMPACT
//   MCSORT_COMPACT_INTERVAL_MS
//   MCSORT_COMPACT_MIN_ROWS
//
// The narrower layer options (ServiceOptions, net::ServerOptions) keep
// their own FromEnv() for compatibility, implemented by delegating here —
// one parser, one set of spellings.
#ifndef MCSORT_COMMON_OPTIONS_H_
#define MCSORT_COMMON_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace mcsort {

// Engine-side configuration: pool sizing, planner knobs, the snapshot
// catalog, and the external-sort spill tier.
struct ExecOptions {
  // Workers in the shared morsel-driven pool (MCSORT_THREADS).
  int threads = 1;
  // ROGA time threshold (MCSORT_RHO, Appendix C's default 0.1%); <= 0
  // disables the stopwatch.
  double rho = 0.001;
  // Demo/bench table rows (MCSORT_N).
  uint64_t demo_rows = uint64_t{1} << 20;
  // Cost-model measurement cache (MCSORT_CALIBRATION, with
  // MCSORT_CALIBRATION_FILE accepted as a legacy alias).
  std::string calibration_path = "mcsort_calibration.txt";
  // Snapshot catalog root (MCSORT_DATA_DIR); empty disables the on-disk
  // catalog.
  std::string data_dir;
  // Load snapshots via mmap instead of buffered reads (MCSORT_MMAP=1).
  bool mmap_snapshots = false;
  // Resident-table LRU budget in bytes (MCSORT_MEMORY_BUDGET; 0 =
  // unlimited).
  uint64_t memory_budget_bytes = 0;
  // Per-query sort scratch budget in bytes (MCSORT_SCRATCH_BUDGET; 0 =
  // unlimited). Plans whose scratch estimate exceeds it either degrade
  // (narrower banks) or spill to the external sort, whichever ROGA's cost
  // model prefers.
  uint64_t scratch_budget_bytes = 0;
  // External-sort spill tier: MCSORT_SPILL=0 disables spilling entirely
  // (over-budget plans then always degrade); MCSORT_SPILL_DIR overrides
  // where run files land; MCSORT_SPILL_PREFETCH=0 turns off the merge
  // phase's asynchronous double-buffered block loader.
  bool spill_enabled = true;
  std::string spill_dir = "/tmp/mcsort-spill";
  bool spill_prefetch = true;
  // Background compaction of the per-table delta stores (MCSORT_COMPACT=1
  // enables; the server binary also honours the sweep cadence and the
  // fold threshold). Disabled by default: embedded/library users drive
  // compaction explicitly through QueryService::CompactTable.
  bool compaction_enabled = false;
  uint64_t compaction_interval_ms = 1000;  // MCSORT_COMPACT_INTERVAL_MS
  uint64_t compaction_min_rows = 1024;     // MCSORT_COMPACT_MIN_ROWS

  static ExecOptions FromEnv();
};

// Network front-end configuration shared by the server binary and the
// client-side tools (which reuse host/port to find the server).
struct ServerOptions {
  std::string host = "127.0.0.1";  // MCSORT_HOST
  uint16_t port = 0;               // MCSORT_PORT (server: 0 = ephemeral)
  int max_connections = 64;        // MCSORT_MAX_CONNS

  static ServerOptions FromEnv();
};

}  // namespace mcsort

#endif  // MCSORT_COMMON_OPTIONS_H_

#include "mcsort/common/thread_pool.h"

#include <algorithm>

#include "mcsort/common/exec_context.h"
#include "mcsort/common/logging.h"

namespace mcsort {
namespace {

// Reentrancy guard: which pool (if any) the current thread is a worker of,
// and its worker index. A nested ParallelFor* from inside a worker runs
// inline under the outer dispatch's worker index, so per-worker scratch
// stays consistent and the pool cannot deadlock on itself.
thread_local const ThreadPool* tls_worker_pool = nullptr;
thread_local int tls_worker_index = 0;

// Morsel size used when a stoppable context reroutes a static ParallelFor
// through the dynamic path: a few chunks per worker bounds the stop
// latency without giving up much dispatch efficiency.
uint64_t StopMorsel(uint64_t n, int threads) {
  const uint64_t chunks = 8 * static_cast<uint64_t>(threads);
  return std::max<uint64_t>(1, n / chunks);
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  MCSORT_CHECK(num_threads >= 1);
  if (num_threads_ == 1) return;  // inline execution, no workers
  workers_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::OnWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::ParallelFor(
    uint64_t n, const std::function<void(uint64_t, uint64_t, int)>& body,
    const ExecContext* ctx) {
  if (n == 0) return;
  const bool stoppable = ctx != nullptr && ctx->stoppable();
  if (num_threads_ == 1 || OnWorkerThread()) {
    const int index = OnWorkerThread() ? tls_worker_index : 0;
    if (!stoppable) {
      body(0, n, index);
      return;
    }
    // Inline but stoppable: chunk the range so the stop latency stays
    // bounded even without workers to stop.
    const uint64_t morsel = StopMorsel(n, num_threads_);
    for (uint64_t begin = 0; begin < n; begin += morsel) {
      if (ctx->StopRequested()) return;
      body(begin, std::min(begin + morsel, n), index);
    }
    return;
  }
  if (stoppable) {
    // Static slices can be arbitrarily large; morsels bound how much work
    // runs after a cancellation or deadline is observed.
    ParallelForDynamic(n, StopMorsel(n, num_threads_), body, ctx);
    return;
  }
  if (n < static_cast<uint64_t>(num_threads_)) {
    // Fewer items than workers: a static split would leave workers idle
    // and the old inline fallback serialized everything even when each
    // item is a large segment. One-item morsels keep all n items
    // concurrent.
    ParallelForDynamic(n, 1, body);
    return;
  }
  std::lock_guard<std::mutex> dispatch(dispatch_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    dynamic_ = false;
    pending_ = num_threads_;
    ++generation_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  body_ = nullptr;
}

ThreadPool::DynamicStats ThreadPool::ParallelForDynamic(
    uint64_t n, uint64_t morsel,
    const std::function<void(uint64_t, uint64_t, int)>& body,
    const ExecContext* ctx) {
  DynamicStats stats;
  if (n == 0) return stats;
  if (morsel == 0) morsel = 1;
  const bool stoppable = ctx != nullptr && ctx->stoppable();
  if (num_threads_ == 1 || OnWorkerThread()) {
    const int index = OnWorkerThread() ? tls_worker_index : 0;
    if (!stoppable) {
      body(0, n, index);
      stats.morsels = 1;
      stats.workers = 1;
      return stats;
    }
    for (uint64_t begin = 0; begin < n; begin += morsel) {
      if (ctx->StopRequested()) break;
      body(begin, std::min(begin + morsel, n), index);
      ++stats.morsels;
    }
    stats.workers = 1;
    return stats;
  }
  std::lock_guard<std::mutex> dispatch(dispatch_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    dynamic_ = true;
    morsel_ = morsel;
    ctx_ = stoppable ? ctx : nullptr;
    next_.store(0, std::memory_order_relaxed);
    morsels_done_.store(0, std::memory_order_relaxed);
    workers_used_.store(0, std::memory_order_relaxed);
    pending_ = num_threads_;
    ++generation_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  body_ = nullptr;
  ctx_ = nullptr;
  stats.morsels = morsels_done_.load(std::memory_order_relaxed);
  stats.workers = workers_used_.load(std::memory_order_relaxed);
  return stats;
}

void ThreadPool::WorkerLoop(int index) {
  tls_worker_pool = this;
  tls_worker_index = index;
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(uint64_t, uint64_t, int)>* body;
    uint64_t n;
    bool dynamic;
    uint64_t morsel;
    const ExecContext* ctx;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      body = body_;
      n = n_;
      dynamic = dynamic_;
      morsel = morsel_;
      ctx = ctx_;
    }
    if (dynamic) {
      // Morsel mode: claim chunks until the range is drained (or the
      // round's context requests a stop — remaining morsels are simply
      // never claimed). Workers that arrive after the range is exhausted
      // claim nothing and just leave.
      uint64_t claimed = 0;
      for (;;) {
        if (ctx != nullptr && ctx->StopRequested()) break;
        const uint64_t begin =
            next_.fetch_add(morsel, std::memory_order_relaxed);
        if (begin >= n) break;
        (*body)(begin, std::min(begin + morsel, n), index);
        ++claimed;
      }
      if (claimed > 0) {
        morsels_done_.fetch_add(claimed, std::memory_order_relaxed);
        workers_used_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      // Balanced contiguous slices: the first (n % T) slices get one extra.
      const uint64_t threads = static_cast<uint64_t>(num_threads_);
      const uint64_t base = n / threads;
      const uint64_t extra = n % threads;
      const uint64_t idx = static_cast<uint64_t>(index);
      const uint64_t begin = idx * base + (idx < extra ? idx : extra);
      const uint64_t end = begin + base + (idx < extra ? 1 : 0);
      if (begin < end) (*body)(begin, end, index);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace mcsort

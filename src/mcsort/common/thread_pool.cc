#include "mcsort/common/thread_pool.h"

#include "mcsort/common/logging.h"

namespace mcsort {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  MCSORT_CHECK(num_threads >= 1);
  if (num_threads_ == 1) return;  // inline execution, no workers
  workers_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(
    uint64_t n, const std::function<void(uint64_t, uint64_t, int)>& body) {
  if (n == 0) return;
  if (num_threads_ == 1 || n < static_cast<uint64_t>(num_threads_)) {
    body(0, n, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    pending_ = num_threads_;
    ++generation_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  body_ = nullptr;
}

void ThreadPool::WorkerLoop(int index) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(uint64_t, uint64_t, int)>* body;
    uint64_t n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      body = body_;
      n = n_;
    }
    // Balanced contiguous slices: the first (n % T) slices get one extra.
    const uint64_t threads = static_cast<uint64_t>(num_threads_);
    const uint64_t base = n / threads;
    const uint64_t extra = n % threads;
    const uint64_t idx = static_cast<uint64_t>(index);
    const uint64_t begin = idx * base + (idx < extra ? idx : extra);
    const uint64_t end = begin + base + (idx < extra ? 1 : 0);
    if (begin < end) (*body)(begin, end, index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace mcsort

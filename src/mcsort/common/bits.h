// Bit-level helpers shared by the encoding, massaging, and SIMD layers.
//
// Terminology follows the paper: a column holds w-bit unsigned *codes*
// (w in [1, 64]); a SIMD sort operates on b-bit *banks* (b in {16, 32, 64});
// `size(w)` is the byte width of the smallest machine type that holds a
// w-bit code (Sec. 4, "Estimating T_lookup").
#ifndef MCSORT_COMMON_BITS_H_
#define MCSORT_COMMON_BITS_H_

#include <cstdint>

#include "mcsort/common/logging.h"

namespace mcsort {

// Maximum total key width supported by code massaging: the widest AVX2 bank.
inline constexpr int kMaxBankBits = 64;
// Bank sizes usable by the SIMD sort implementations, ascending. 8-bit banks
// are excluded for the reason given in the paper's footnote 4.
inline constexpr int kBankSizes[] = {16, 32, 64};
inline constexpr int kNumBankSizes = 3;
inline constexpr int kMinBankBits = 16;

// Returns a mask with the low `w` bits set. `w` in [0, 64].
constexpr uint64_t LowBitsMask(int w) {
  return w >= 64 ? ~uint64_t{0} : ((uint64_t{1} << w) - 1);
}

// size(w) from the paper: bytes of the smallest power-of-two-sized integer
// type holding a w-bit code. size(15) == 2, size(17) == 4, size(33..64) == 8.
constexpr int SizeOfWidth(int w) {
  if (w <= 8) return 1;
  if (w <= 16) return 2;
  if (w <= 32) return 4;
  return 8;
}

// The minimum SIMD bank size (bits) able to hold a w-bit code. Codes of
// width <= 16 use 16-bit banks; there is no 8-bit bank (footnote 4).
constexpr int MinBankForWidth(int w) {
  if (w <= 16) return 16;
  if (w <= 32) return 32;
  return 64;
}

// Returns true if a b-bit bank can hold a w-bit code.
constexpr bool BankHolds(int bank, int w) { return w <= bank; }

// Number of bits needed to represent values in [0, v] (at least 1).
constexpr int BitsForValue(uint64_t v) {
  int bits = 1;
  while (v >> bits) ++bits;
  return bits;
}

// Number of bits needed to index `n` distinct values, i.e. represent
// codes in [0, n-1]. BitsForCount(1) == 1 by convention (a 0-bit column is
// not representable).
constexpr int BitsForCount(uint64_t n) {
  return n <= 1 ? 1 : BitsForValue(n - 1);
}

// Ceil(log2(x)) for x >= 1.
constexpr int CeilLog2(uint64_t x) {
  int bits = 0;
  while ((uint64_t{1} << bits) < x) ++bits;
  return bits;
}

// Extracts bits [hi, lo] (inclusive, hi >= lo, 0-based from LSB) of `code`.
constexpr uint64_t ExtractBits(uint64_t code, int hi, int lo) {
  MCSORT_DCHECK(hi >= lo && hi < 64 && lo >= 0);
  return (code >> lo) & LowBitsMask(hi - lo + 1);
}

// w-bit complement used by code massaging for DESC columns (Sec. 3, Fig. 5):
// complement(x, w) = (2^w - 1) - x, i.e. bit-flip within the code width.
constexpr uint64_t ComplementCode(uint64_t code, int w) {
  return (~code) & LowBitsMask(w);
}

// Rounds `n` up to a multiple of `m` (m > 0).
constexpr uint64_t RoundUp(uint64_t n, uint64_t m) {
  return ((n + m - 1) / m) * m;
}

}  // namespace mcsort

#endif  // MCSORT_COMMON_BITS_H_

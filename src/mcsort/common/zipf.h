// Zipfian value generator for the TPC-H *skew* workload (Chaudhuri &
// Narasayya skewed dbgen uses zipf factor z = 1; Sec. 6 of the paper).
//
// Draws values in [0, n) with P(rank k) proportional to 1/(k+1)^z.
#ifndef MCSORT_COMMON_ZIPF_H_
#define MCSORT_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "mcsort/common/random.h"

namespace mcsort {

class ZipfGenerator {
 public:
  // `n` is the number of distinct ranks, `theta` the skew (z); theta == 0
  // degenerates to uniform. Build cost is O(n) once.
  ZipfGenerator(uint64_t n, double theta);

  // Draws a rank in [0, n) (rank 0 is the most frequent).
  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  // Cumulative distribution over ranks; binary-searched per draw.
  std::vector<double> cdf_;
};

}  // namespace mcsort

#endif  // MCSORT_COMMON_ZIPF_H_

#include "mcsort/common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mcsort {

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

bool MmapFile::Open(const std::string& path, std::string* error) {
  Close();
  const auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + " " + path + ": " + std::strerror(errno);
    }
    return false;
  };
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return fail("open");
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return fail("fstat");
  }
  size_ = static_cast<size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    mapped_ = true;  // a zero-length mapping is a valid (empty) file
    return true;
  }
  void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (p == MAP_FAILED) {
    size_ = 0;
    return fail("mmap");
  }
  data_ = p;
  mapped_ = true;
  return true;
}

void MmapFile::Close() {
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

void MmapFile::AdviseSequential() const {
  if (data_ != nullptr) ::madvise(data_, size_, MADV_SEQUENTIAL);
}

}  // namespace mcsort

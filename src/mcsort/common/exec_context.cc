#include "mcsort/common/exec_context.h"

#include <cstdlib>
#include <cstring>

namespace mcsort {

const char* ExecStatus::name() const {
  switch (code) {
    case ExecCode::kOk:
      return "ok";
    case ExecCode::kCancelled:
      return "cancelled";
    case ExecCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ExecCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

ExecStatus ExecStatus::FromCode(ExecCode code) {
  switch (code) {
    case ExecCode::kOk:
      return Ok();
    case ExecCode::kCancelled:
      return Cancelled();
    case ExecCode::kDeadlineExceeded:
      return DeadlineExceeded();
    case ExecCode::kResourceExhausted:
      return ResourceExhausted();
  }
  return Ok();
}

Status ExecStatus::ToStatus() const {
  switch (code) {
    case ExecCode::kOk:
      return Status::Ok();
    case ExecCode::kCancelled:
      return Status::Cancelled(detail);
    case ExecCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(detail);
    case ExecCode::kResourceExhausted:
      return Status::ResourceExhausted(detail);
  }
  return Status::Internal(detail);
}

ExecStatus ExecStatus::FromStatus(const Status& status) {
  switch (status.code) {
    case StatusCode::kOk:
      return Ok();
    case StatusCode::kCancelled:
      return Cancelled();
    case StatusCode::kDeadlineExceeded:
      return DeadlineExceeded();
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
    case StatusCode::kDataLoss:
      return ResourceExhausted();
    default:
      return Cancelled("cancelled (non-executor status)");
  }
}

FaultInjector FaultInjector::FromString(const char* spec) {
  if (spec == nullptr || *spec == '\0') return FaultInjector();
  const char* at = std::strchr(spec, '@');
  const size_t name_len = at != nullptr ? static_cast<size_t>(at - spec)
                                        : std::strlen(spec);
  uint64_t trigger = 1;
  if (at != nullptr) {
    const uint64_t parsed = std::strtoull(at + 1, nullptr, 10);
    if (parsed > 0) trigger = parsed;
  }
  auto matches = [&](const char* name) {
    return std::strlen(name) == name_len &&
           std::strncmp(spec, name, name_len) == 0;
  };
  if (matches("cancel")) return FaultInjector(Kind::kCancel, trigger);
  if (matches("deadline")) return FaultInjector(Kind::kDeadline, trigger);
  if (matches("alloc")) return FaultInjector(Kind::kAlloc, trigger);
  return FaultInjector();
}

FaultInjector FaultInjector::FromEnv() {
  return FromString(std::getenv("MCSORT_FAULT"));
}

FaultInjector::Kind FaultInjector::Poll() {
  if (kind_ == Kind::kNone) return Kind::kNone;
  const uint64_t boundary =
      boundaries_.fetch_add(1, std::memory_order_relaxed) + 1;
  return boundary == trigger_ ? kind_ : Kind::kNone;
}

const ExecContext& ExecContext::Default() {
  static const ExecContext kDefault;
  return kDefault;
}

ExecContext& ExecContext::WithDeadlineAfter(double seconds) {
  return WithDeadline(std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(seconds)));
}

ExecContext& ExecContext::WithFault(FaultInjector* fault) {
  fault_ = fault;
  if (fault_ != nullptr && injected_ == nullptr) {
    injected_ = std::make_shared<std::atomic<int>>(0);
  }
  return *this;
}

ExecCode ExecContext::StopCheck() const {
  if (injected_ != nullptr) {
    const int injected = injected_->load(std::memory_order_relaxed);
    if (injected != 0) return static_cast<ExecCode>(injected);
  }
  if (token_.cancelled()) return ExecCode::kCancelled;
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return ExecCode::kDeadlineExceeded;
  }
  return ExecCode::kOk;
}

ExecStatus ExecContext::CheckRound() const {
  if (fault_ != nullptr && injected_ != nullptr) {
    switch (fault_->Poll()) {
      case FaultInjector::Kind::kNone:
        break;
      case FaultInjector::Kind::kCancel:
        injected_->store(static_cast<int>(ExecCode::kCancelled),
                         std::memory_order_relaxed);
        break;
      case FaultInjector::Kind::kDeadline:
        injected_->store(static_cast<int>(ExecCode::kDeadlineExceeded),
                         std::memory_order_relaxed);
        break;
      case FaultInjector::Kind::kAlloc:
        injected_->store(static_cast<int>(ExecCode::kResourceExhausted),
                         std::memory_order_relaxed);
        break;
    }
  }
  const ExecCode code = StopCheck();
  if (code == ExecCode::kOk) return ExecStatus::Ok();
  if (code == ExecCode::kResourceExhausted) {
    return ExecStatus::ResourceExhausted("injected allocation failure");
  }
  return ExecStatus::FromCode(code);
}

bool ExecContext::ClearResourceFault() const {
  if (injected_ == nullptr) return false;
  int expected = static_cast<int>(ExecCode::kResourceExhausted);
  return injected_->compare_exchange_strong(expected, 0,
                                            std::memory_order_relaxed);
}

}  // namespace mcsort

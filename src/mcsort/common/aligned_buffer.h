// Cache-line / SIMD aligned heap buffer.
//
// The SIMD kernels use aligned 256-bit loads/stores; all bulk arrays in the
// sort and massage paths are allocated through AlignedBuffer so that the
// kernels never have to handle unaligned heads/tails for the key arrays.
#ifndef MCSORT_COMMON_ALIGNED_BUFFER_H_
#define MCSORT_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "mcsort/common/logging.h"

namespace mcsort {

inline constexpr size_t kSimdAlignment = 64;  // one cache line, >= 32B AVX2

// A movable, non-copyable aligned array of trivially copyable T.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t n) { Reset(n); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)),
        owns_(std::exchange(other.owns_, true)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
      owns_ = std::exchange(other.owns_, true);
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { Free(); }

  // Discards contents and makes room for `n` elements (uninitialized).
  // Reuses the existing allocation when it is large enough, so repeated
  // Reset calls in per-round loops do not thrash the allocator.
  void Reset(size_t n) {
    if (n <= capacity_) {
      size_ = n;
      return;
    }
    Free();
    if (n == 0) return;
    size_t bytes = RoundUpBytes(n * sizeof(T));
    data_ = static_cast<T*>(std::aligned_alloc(kSimdAlignment, bytes));
    MCSORT_CHECK(data_ != nullptr);
    size_ = n;
    capacity_ = n;
  }

  // Ensures capacity for at least `n` elements, discarding contents on grow.
  void EnsureDiscard(size_t n) {
    if (n > size_) Reset(n);
  }

  // Points the buffer at externally owned memory (e.g. an mmap'd snapshot
  // section) without taking ownership: Free() never touches it, and the
  // memory must outlive the buffer. The pointer must satisfy T's alignment
  // (snapshot sections are page-aligned, far stricter). A later Reset()
  // drops the view and allocates normally.
  void ResetView(T* data, size_t n) {
    Free();
    data_ = data;
    size_ = n;
    capacity_ = 0;  // any growth reallocates instead of writing the view
    owns_ = false;
  }
  bool is_view() const { return !owns_; }

  void Fill(const T& value) {
    for (size_t i = 0; i < size_; ++i) data_[i] = value;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) {
    MCSORT_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    MCSORT_DCHECK(i < size_);
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  static size_t RoundUpBytes(size_t bytes) {
    return (bytes + kSimdAlignment - 1) / kSimdAlignment * kSimdAlignment;
  }

  void Free() {
    if (owns_) std::free(data_);
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
    owns_ = true;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
  bool owns_ = true;
};

}  // namespace mcsort

#endif  // MCSORT_COMMON_ALIGNED_BUFFER_H_

// mcsort::Status — the one canonical status taxonomy of the system.
//
// Before this header existed the stack spoke four dialects: ExecStatus
// (executor unwinding), IoStatus (persistence tier), net::ClientStatus
// (what one wire call did), and dist::DistStatus (what a whole fan-out
// did), plus the wire's ErrorCode as a fifth, serialized spelling. Every
// layer boundary hand-rolled its own mapping. This header is the hub:
// each taxonomy keeps its domain-specific enum (they carry real
// distinctions — kBadMagic vs kCorrupt matters inside io/), but every one
// of them converts to and from mcsort::Status via ToStatus()/FromStatus(),
// and cross-layer call sites (executor entry points, catalog load, the
// coordinator, the wire error mapping) traffic in Status only.
//
// Code vocabulary follows the familiar canonical set (gRPC/absl) so the
// mapping from any domain taxonomy is obvious, but only the codes an
// mcsort layer actually produces are defined — this is not a kitchen sink.
//
// Conversion contract (tested in status_test.cc): for every domain
// taxonomy T and every value t of T,
//
//   T::FromStatus(t.ToStatus()) round-trips t whenever t's distinction is
//   representable in Status, and otherwise lands on the canonical code
//   whose ToStatus image contains t — i.e. StatusCode is a quotient of
//   each domain taxonomy, never a lossy re-interpretation.
#ifndef MCSORT_COMMON_STATUS_H_
#define MCSORT_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace mcsort {

enum class StatusCode : uint8_t {
  kOk = 0,
  kCancelled = 1,           // caller cancelled (ExecCode::kCancelled)
  kDeadlineExceeded = 2,    // deadline expired before completion
  kResourceExhausted = 3,   // scratch/memory budget unsatisfiable
  kInvalidArgument = 4,     // malformed input (bad query, bad format)
  kNotFound = 5,            // named table/file does not exist
  kUnavailable = 6,         // transient: transport/IO failure, busy, shard
                            // down — retrying may succeed
  kDataLoss = 7,            // CRC mismatch / truncated section: the bytes
                            // are gone, retrying the same medium won't help
  kFailedPrecondition = 8,  // call sequencing / version / state error
  kUnimplemented = 9,       // spec shape a tier does not cover
  kInternal = 10,           // invariant violation; a bug, not an input
};

// Stable lowercase name ("ok", "deadline_exceeded", ...) for metrics keys
// and logs; "unknown" for out-of-range values.
const char* StatusCodeName(StatusCode code);

// The unified status value. `detail` is a human-readable elaboration (may
// be empty); equality of outcomes is equality of `code`.
struct Status {
  StatusCode code = StatusCode::kOk;
  std::string detail;

  Status() = default;
  Status(StatusCode code, std::string detail)
      : code(code), detail(std::move(detail)) {}

  bool ok() const { return code == StatusCode::kOk; }
  const char* name() const { return StatusCodeName(code); }

  // "ok" or "<name>: <detail>" ("<name>" when detail is empty).
  std::string ToString() const;

  static Status Ok() { return {}; }
  static Status Cancelled(std::string detail = "cancelled") {
    return {StatusCode::kCancelled, std::move(detail)};
  }
  static Status DeadlineExceeded(std::string detail = "deadline exceeded") {
    return {StatusCode::kDeadlineExceeded, std::move(detail)};
  }
  static Status ResourceExhausted(std::string detail) {
    return {StatusCode::kResourceExhausted, std::move(detail)};
  }
  static Status InvalidArgument(std::string detail) {
    return {StatusCode::kInvalidArgument, std::move(detail)};
  }
  static Status NotFound(std::string detail) {
    return {StatusCode::kNotFound, std::move(detail)};
  }
  static Status Unavailable(std::string detail) {
    return {StatusCode::kUnavailable, std::move(detail)};
  }
  static Status DataLoss(std::string detail) {
    return {StatusCode::kDataLoss, std::move(detail)};
  }
  static Status FailedPrecondition(std::string detail) {
    return {StatusCode::kFailedPrecondition, std::move(detail)};
  }
  static Status Unimplemented(std::string detail) {
    return {StatusCode::kUnimplemented, std::move(detail)};
  }
  static Status Internal(std::string detail) {
    return {StatusCode::kInternal, std::move(detail)};
  }
};

}  // namespace mcsort

#endif  // MCSORT_COMMON_STATUS_H_

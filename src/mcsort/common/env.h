// Environment-variable knob parsing shared by the service layer and the
// benchmark harness, so every binary reads the same spellings (e.g.
// MCSORT_RHO, MCSORT_THREADS) identically.
#ifndef MCSORT_COMMON_ENV_H_
#define MCSORT_COMMON_ENV_H_

#include <cstdint>
#include <cstdlib>

namespace mcsort {

inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  return (end != env && v > 0) ? static_cast<uint64_t>(v) : fallback;
}

inline double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  return end != env ? v : fallback;
}

// The ROGA time threshold: MCSORT_RHO overrides `fallback` (Appendix C's
// default 0.1%). Accepts a plain double; <= 0 disables the stopwatch
// ("N/S"). Shared by the query-service config and bench/fig12_rho so both
// sweep the same knob.
inline double RhoFromEnv(double fallback = 0.001) {
  return EnvDouble("MCSORT_RHO", fallback);
}

}  // namespace mcsort

#endif  // MCSORT_COMMON_ENV_H_

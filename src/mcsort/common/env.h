// Environment-variable knob parsing shared by the service layer and the
// benchmark harness, so every binary reads the same spellings (e.g.
// MCSORT_RHO, MCSORT_THREADS) identically.
#ifndef MCSORT_COMMON_ENV_H_
#define MCSORT_COMMON_ENV_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace mcsort {

inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  return (end != env && v > 0) ? static_cast<uint64_t>(v) : fallback;
}

inline double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  return end != env ? v : fallback;
}

inline std::string EnvStr(const char* name, const char* fallback) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' ? env : fallback;
}

// Network front-end knobs, shared by ServerOptions::FromEnv, the client
// tools, and the net benches so every binary reads the same spellings:
//   MCSORT_HOST        bind/connect address (default 127.0.0.1)
//   MCSORT_PORT        TCP port (server: 0 = ephemeral)
//   MCSORT_MAX_CONNS   connection cap before typed BUSY rejects
inline std::string HostFromEnv() { return EnvStr("MCSORT_HOST", "127.0.0.1"); }
inline uint16_t PortFromEnv(uint16_t fallback) {
  return static_cast<uint16_t>(EnvU64("MCSORT_PORT", fallback));
}

// Cost-model calibration file: MCSORT_CALIBRATION names the measurement
// cache read (and written, after a calibrate run) by CalibratedParams().
// MCSORT_CALIBRATION_FILE is accepted as an alias for compatibility with
// earlier scripts. Default stays the CWD-relative file the calibrator has
// always used.
inline std::string CalibrationPathFromEnv() {
  const char* env = std::getenv("MCSORT_CALIBRATION");
  if (env == nullptr || env[0] == '\0') {
    env = std::getenv("MCSORT_CALIBRATION_FILE");
  }
  return env != nullptr && env[0] != '\0' ? env : "mcsort_calibration.txt";
}

// Snapshot catalog directory for the persistence tier (io/snapshot.h):
// MCSORT_DATA_DIR points the server and tools at a directory of saved
// table snapshots. Empty (the default) disables on-disk cataloging.
inline std::string DataDirFromEnv() { return EnvStr("MCSORT_DATA_DIR", ""); }

// The ROGA time threshold: MCSORT_RHO overrides `fallback` (Appendix C's
// default 0.1%). Accepts a plain double; <= 0 disables the stopwatch
// ("N/S"). Shared by the query-service config and bench/fig12_rho so both
// sweep the same knob.
inline double RhoFromEnv(double fallback = 0.001) {
  return EnvDouble("MCSORT_RHO", fallback);
}

// Sort-kernel override (debugging aid, mirrors MCSORT_RHO): MCSORT_KERNELS
// is a comma-separated allow-list over {merge, ovc, counting, radix}. It
// restricts ROGA's kernel-choice dimension, and when it names exactly one
// kernel the executor forces every round to it. Parsed by
// KernelMaskFromEnv (massage/plan.h), which owns the SortKernel names;
// this header only documents the spelling next to its sibling knobs.

}  // namespace mcsort

#endif  // MCSORT_COMMON_ENV_H_

// Environment-variable knob parsing shared by the service layer and the
// benchmark harness, so every binary reads the same spellings (e.g.
// MCSORT_RHO, MCSORT_THREADS) identically.
#ifndef MCSORT_COMMON_ENV_H_
#define MCSORT_COMMON_ENV_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace mcsort {

inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  return (end != env && v > 0) ? static_cast<uint64_t>(v) : fallback;
}

inline double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  return end != env ? v : fallback;
}

inline std::string EnvStr(const char* name, const char* fallback) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' ? env : fallback;
}

// The per-knob getters (host/port/rho/data-dir/calibration-path/...) that
// used to live here moved into the typed process config —
// common/options.h's ExecOptions::FromEnv() / ServerOptions::FromEnv() —
// so the MCSORT_* spellings are parsed in exactly one place. This header
// keeps only the raw parsing primitives.

// Sort-kernel override (debugging aid, mirrors MCSORT_RHO): MCSORT_KERNELS
// is a comma-separated allow-list over {merge, ovc, counting, radix}. It
// restricts ROGA's kernel-choice dimension, and when it names exactly one
// kernel the executor forces every round to it. Parsed by
// KernelMaskFromEnv (massage/plan.h), which owns the SortKernel names;
// this header only documents the spelling next to its sibling knobs.

}  // namespace mcsort

#endif  // MCSORT_COMMON_ENV_H_

// Minimal CHECK/LOG facilities.
//
// The library does not use C++ exceptions; invariant violations are
// programming errors and abort the process with a diagnostic. This mirrors
// the error-handling stance of the paper's prototype (a research
// column-store, not a fault-tolerant server).
#ifndef MCSORT_COMMON_LOGGING_H_
#define MCSORT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace mcsort {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "MCSORT_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace mcsort

// Always-on invariant check (enabled in release builds too: the cost of the
// checks we write is negligible relative to the data passes they guard).
#define MCSORT_CHECK(expr)                                          \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::mcsort::internal::CheckFailed(__FILE__, __LINE__, #expr);   \
    }                                                               \
  } while (0)

// Debug-only check for per-element hot loops.
#ifdef NDEBUG
#define MCSORT_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define MCSORT_DCHECK(expr) MCSORT_CHECK(expr)
#endif

#endif  // MCSORT_COMMON_LOGGING_H_

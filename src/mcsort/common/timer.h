// Wall-clock timing utilities.
//
// The paper's cost model is expressed in CPU cycles; we measure wall time
// with the steady clock and convert to "cycles" using the nominal frequency
// detected by CpuInfo. On the pinned single-socket machines used here this
// is equivalent up to turbo variation, which the calibration absorbs.
#ifndef MCSORT_COMMON_TIMER_H_
#define MCSORT_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mcsort {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction/Restart, in seconds / ns.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  uint64_t Nanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mcsort

#endif  // MCSORT_COMMON_TIMER_H_

// Read-only memory-mapped file — the zero-copy substrate of the snapshot
// loader (io/snapshot.h). A multi-GB column segment maps in O(1); pages
// fault in lazily as queries touch them, and the kernel's page cache makes
// a re-load after restart effectively free.
//
// The mapping is PROT_READ: snapshot bytes are immutable by construction,
// and a Column view over them must never be written through (the engine
// only reads base columns; sorts gather into scratch copies).
#ifndef MCSORT_COMMON_MMAP_FILE_H_
#define MCSORT_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace mcsort {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Close(); }

  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        mapped_(std::exchange(other.mapped_, false)) {}
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  // Maps `path` read-only. False (with *error filled when non-null) on
  // open/stat/mmap failure; the object is then empty. An empty file maps
  // to a valid zero-length object (data() == nullptr).
  bool Open(const std::string& path, std::string* error = nullptr);
  void Close();

  bool valid() const { return mapped_; }
  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }

  // Advises the kernel the whole mapping will be read sequentially soon
  // (used by the verify-checksums pass to prefetch aggressively).
  void AdviseSequential() const;

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;  // distinguishes empty-file success from default
};

}  // namespace mcsort

#endif  // MCSORT_COMMON_MMAP_FILE_H_

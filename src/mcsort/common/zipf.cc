#include "mcsort/common/zipf.h"

#include <algorithm>
#include <cmath>

#include "mcsort/common/logging.h"

namespace mcsort {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  MCSORT_CHECK(n >= 1);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = sum;
  }
  const double inv = 1.0 / sum;
  for (double& c : cdf_) c *= inv;
  cdf_.back() = 1.0;  // guard against rounding at the tail
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace mcsort

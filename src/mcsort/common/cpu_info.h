// Hardware parameters feeding the architectural cost model (Sec. 4):
// cache sizes (M_L2, M_LLC), SIMD register width S, nominal frequency.
//
// Detected once at startup from sysfs/procfs on Linux, with conservative
// defaults if detection fails. All cost-model constants are *calibrated* on
// top of these (the paper's approach), so mild detection error is absorbed.
#ifndef MCSORT_COMMON_CPU_INFO_H_
#define MCSORT_COMMON_CPU_INFO_H_

#include <cstddef>
#include <cstdint>

namespace mcsort {

struct CpuInfo {
  // SIMD register width in bits (AVX2).
  int simd_bits = 256;
  // Cache capacities in bytes.
  size_t l1d_bytes = 32 * 1024;
  size_t l2_bytes = 256 * 1024;
  size_t llc_bytes = 8 * 1024 * 1024;
  // Nominal frequency in GHz (cycles per ns), for cycle-denominated costs.
  double ghz = 2.0;
  // Number of online logical cores.
  int num_cores = 1;

  // Singleton accessor; detection runs on first call.
  static const CpuInfo& Get();
};

}  // namespace mcsort

#endif  // MCSORT_COMMON_CPU_INFO_H_

#include "mcsort/common/options.h"

#include <cstdlib>

#include "mcsort/common/env.h"

namespace mcsort {

ExecOptions ExecOptions::FromEnv() {
  ExecOptions options;
  options.threads = static_cast<int>(
      EnvU64("MCSORT_THREADS", static_cast<uint64_t>(options.threads)));
  options.rho = EnvDouble("MCSORT_RHO", options.rho);
  options.demo_rows = EnvU64("MCSORT_N", options.demo_rows);
  // MCSORT_CALIBRATION_FILE is a legacy alias from earlier scripts.
  {
    const char* env = std::getenv("MCSORT_CALIBRATION");
    if (env == nullptr || env[0] == '\0') {
      env = std::getenv("MCSORT_CALIBRATION_FILE");
    }
    if (env != nullptr && env[0] != '\0') options.calibration_path = env;
  }
  options.data_dir = EnvStr("MCSORT_DATA_DIR", options.data_dir.c_str());
  options.mmap_snapshots = EnvU64("MCSORT_MMAP", 0) != 0;
  options.memory_budget_bytes =
      EnvU64("MCSORT_MEMORY_BUDGET", options.memory_budget_bytes);
  options.scratch_budget_bytes =
      EnvU64("MCSORT_SCRATCH_BUDGET", options.scratch_budget_bytes);
  // EnvU64 treats 0 as "unset" (it keeps the fallback), so the off
  // switches parse the raw string.
  {
    const char* env = std::getenv("MCSORT_SPILL");
    if (env != nullptr && env[0] != '\0') {
      options.spill_enabled = std::strtoull(env, nullptr, 10) != 0;
    }
    env = std::getenv("MCSORT_SPILL_PREFETCH");
    if (env != nullptr && env[0] != '\0') {
      options.spill_prefetch = std::strtoull(env, nullptr, 10) != 0;
    }
  }
  options.spill_dir = EnvStr("MCSORT_SPILL_DIR", options.spill_dir.c_str());
  {
    const char* env = std::getenv("MCSORT_COMPACT");
    if (env != nullptr && env[0] != '\0') {
      options.compaction_enabled = std::strtoull(env, nullptr, 10) != 0;
    }
  }
  options.compaction_interval_ms =
      EnvU64("MCSORT_COMPACT_INTERVAL_MS", options.compaction_interval_ms);
  options.compaction_min_rows =
      EnvU64("MCSORT_COMPACT_MIN_ROWS", options.compaction_min_rows);
  return options;
}

ServerOptions ServerOptions::FromEnv() {
  ServerOptions options;
  options.host = EnvStr("MCSORT_HOST", options.host.c_str());
  options.port =
      static_cast<uint16_t>(EnvU64("MCSORT_PORT", options.port));
  options.max_connections = static_cast<int>(EnvU64(
      "MCSORT_MAX_CONNS", static_cast<uint64_t>(options.max_connections)));
  return options;
}

}  // namespace mcsort

// Minimal fork-join thread pool used by the multithreaded massage and sort
// paths (Sec. 3 "code massaging can easily support multi-threading" and the
// Fig. 10 core-scaling experiment).
//
// The pool runs exactly `num_threads` persistent workers; ParallelFor splits
// [0, n) into contiguous chunks, one per worker, and joins. With
// num_threads == 1 all work runs inline on the caller (no pool started), so
// single-threaded benchmarks measure no synchronization overhead.
#ifndef MCSORT_COMMON_THREAD_POOL_H_
#define MCSORT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcsort {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs body(begin, end, worker_index) on each worker for its contiguous
  // slice of [0, n); blocks until all slices complete. Slices are balanced
  // to within one element.
  void ParallelFor(
      uint64_t n,
      const std::function<void(uint64_t, uint64_t, int)>& body);

 private:
  void WorkerLoop(int index);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Generation counter: bumping it releases all workers for one round.
  uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  const std::function<void(uint64_t, uint64_t, int)>* body_ = nullptr;
  uint64_t n_ = 0;
};

}  // namespace mcsort

#endif  // MCSORT_COMMON_THREAD_POOL_H_

// Minimal fork-join thread pool used by the multithreaded massage, sort,
// lookup, and group-scan paths (Sec. 3 "code massaging can easily support
// multi-threading" and the Fig. 10 core-scaling experiment).
//
// The pool runs exactly `num_threads` persistent workers and offers two
// dispatch modes over an index range [0, n):
//
//   ParallelFor        — static contiguous split, one slice per worker.
//                        Cheapest dispatch; right for uniform work (row
//                        ranges of a massage pass, merge pairs of equal
//                        length).
//   ParallelForDynamic — morsel-driven: workers atomically claim chunks of
//                        `morsel` indices until the range is drained.
//                        Right for skewed work (segment lists where one
//                        group dwarfs the rest) where a static split would
//                        load-imbalance.
//
// With num_threads == 1 all work runs inline on the caller (no pool
// started), so single-threaded benchmarks measure no synchronization
// overhead. Nested calls from inside a worker run inline on that worker
// (reentrancy guard), so library code can parallelize unconditionally.
//
// Concurrent dispatch from multiple *external* threads (the query
// service's sessions) is safe: a dispatch mutex serializes the fork-join
// rounds, so sessions interleave their parallel regions one at a time
// while their serial portions overlap freely.
#ifndef MCSORT_COMMON_THREAD_POOL_H_
#define MCSORT_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcsort {

class ExecContext;

class ThreadPool {
 public:
  // Utilization counters of one dynamic dispatch (surfaced in
  // RoundProfile so benchmarks can report per-stage parallelism).
  struct DynamicStats {
    uint64_t morsels = 0;  // body invocations (chunks claimed)
    int workers = 0;       // distinct workers that claimed >= 1 morsel
  };

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs body(begin, end, worker_index) on each worker for its contiguous
  // slice of [0, n); blocks until all slices complete. Slices are balanced
  // to within one element. Ranges with fewer items than workers are routed
  // through the dynamic path (morsel = 1) so small-n/large-item workloads
  // (e.g. two huge merge pairs) still run concurrently.
  //
  // A stoppable `ctx` (cancellation / deadline / fault) reroutes through
  // the dynamic path with latency-bounding morsels: workers stop claiming
  // chunks once ctx reports a stop, so the dispatch returns within one
  // chunk's worth of work. Already-claimed chunks finish (the body is
  // never interrupted mid-range); callers must treat the output as
  // partial whenever ctx reports a stop afterwards.
  void ParallelFor(
      uint64_t n,
      const std::function<void(uint64_t, uint64_t, int)>& body,
      const ExecContext* ctx = nullptr);

  // Morsel-driven dispatch: workers repeatedly claim the next `morsel`
  // indices of [0, n) with an atomic counter and run
  // body(begin, end, worker_index) on each claimed chunk (end - begin <=
  // morsel). Blocks until the range is drained. morsel == 0 is treated as
  // 1. Inline execution (single-threaded pool or nested call) runs the
  // whole range as one chunk — unless `ctx` is stoppable, in which case
  // it loops morsel-sized chunks with a stop check between them, same as
  // the worker claim loop.
  DynamicStats ParallelForDynamic(
      uint64_t n, uint64_t morsel,
      const std::function<void(uint64_t, uint64_t, int)>& body,
      const ExecContext* ctx = nullptr);

 private:
  void WorkerLoop(int index);
  // True when the calling thread is one of this pool's workers; such calls
  // must run inline (the workers are all busy running the outer dispatch).
  bool OnWorkerThread() const;

  const int num_threads_;
  std::vector<std::thread> workers_;

  // Serializes whole dispatch rounds issued by concurrent external
  // callers; held across the fork and the join so round state (body_, n_,
  // generation_) belongs to exactly one caller at a time. Workers never
  // take it, and nested calls run inline before reaching it.
  std::mutex dispatch_mu_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Generation counter: bumping it releases all workers for one round.
  uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
  const std::function<void(uint64_t, uint64_t, int)>* body_ = nullptr;
  uint64_t n_ = 0;
  // Dynamic-mode round state (published under mu_, claimed via next_).
  bool dynamic_ = false;
  uint64_t morsel_ = 1;
  // Stop context of the current round; non-null only when the dispatching
  // caller passed a stoppable ExecContext. Workers poll it before each
  // morsel claim.
  const ExecContext* ctx_ = nullptr;
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> morsels_done_{0};
  std::atomic<int> workers_used_{0};
};

}  // namespace mcsort

#endif  // MCSORT_COMMON_THREAD_POOL_H_

#include "mcsort/massage/plan.h"

#include <numeric>
#include <utility>

#include "mcsort/common/bits.h"
#include "mcsort/common/logging.h"

namespace mcsort {

MassagePlan::MassagePlan(std::vector<Round> rounds)
    : rounds_(std::move(rounds)) {}

MassagePlan MassagePlan::ColumnAtATime(const std::vector<int>& widths) {
  return WithMinimalBanks(widths);
}

MassagePlan MassagePlan::WithMinimalBanks(const std::vector<int>& widths) {
  std::vector<Round> rounds;
  rounds.reserve(widths.size());
  for (int w : widths) {
    MCSORT_CHECK(w >= 1 && w <= kMaxBankBits);
    rounds.push_back({w, MinBankForWidth(w)});
  }
  return MassagePlan(std::move(rounds));
}

int MassagePlan::total_width() const {
  int total = 0;
  for (const Round& r : rounds_) total += r.width;
  return total;
}

bool MassagePlan::IsValid() const {
  if (rounds_.empty()) return false;
  for (const Round& r : rounds_) {
    if (r.width < 1 || r.width > r.bank) return false;
    if (r.bank != 16 && r.bank != 32 && r.bank != 64) return false;
  }
  return true;
}

std::vector<int> MassagePlan::widths() const {
  std::vector<int> result;
  result.reserve(rounds_.size());
  for (const Round& r : rounds_) result.push_back(r.width);
  return result;
}

std::string MassagePlan::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < rounds_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "R" + std::to_string(i + 1) + ": " +
           std::to_string(rounds_[i].width) + "/[" +
           std::to_string(rounds_[i].bank) + "]";
  }
  out += "}";
  return out;
}

}  // namespace mcsort

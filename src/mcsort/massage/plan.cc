#include "mcsort/massage/plan.h"

#include <cctype>
#include <numeric>
#include <utility>

#include "mcsort/common/bits.h"
#include "mcsort/common/env.h"
#include "mcsort/common/logging.h"

namespace mcsort {

const char* SortKernelName(SortKernel kernel) {
  switch (kernel) {
    case SortKernel::kSimdMerge: return "merge";
    case SortKernel::kRadix: return "radix";
    case SortKernel::kOvcMerge: return "ovc";
    case SortKernel::kCounting: return "counting";
  }
  return "?";
}

SortKernelMask ParseKernelMask(const std::string& text,
                               SortKernelMask fallback) {
  SortKernelMask mask = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    // Trim surrounding whitespace: "ovc, counting" must parse.
    size_t begin = pos;
    size_t end = comma;
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
    const std::string token = text.substr(begin, end - begin);
    if (token == "merge" || token == "simd") {
      mask |= KernelBit(SortKernel::kSimdMerge);
    } else if (token == "ovc") {
      mask |= KernelBit(SortKernel::kOvcMerge);
    } else if (token == "counting") {
      mask |= KernelBit(SortKernel::kCounting);
    } else if (token == "radix") {
      mask |= KernelBit(SortKernel::kRadix);
    }
    pos = comma + 1;
  }
  return mask == 0 ? fallback : mask;
}

SortKernelMask KernelMaskFromEnv(SortKernelMask fallback) {
  return ParseKernelMask(EnvStr("MCSORT_KERNELS", ""), fallback);
}

MassagePlan::MassagePlan(std::vector<Round> rounds)
    : rounds_(std::move(rounds)) {}

MassagePlan MassagePlan::ColumnAtATime(const std::vector<int>& widths) {
  return WithMinimalBanks(widths);
}

MassagePlan MassagePlan::WithMinimalBanks(const std::vector<int>& widths) {
  std::vector<Round> rounds;
  rounds.reserve(widths.size());
  for (int w : widths) {
    MCSORT_CHECK(w >= 1 && w <= kMaxBankBits);
    rounds.push_back({w, MinBankForWidth(w)});
  }
  return MassagePlan(std::move(rounds));
}

int MassagePlan::total_width() const {
  int total = 0;
  for (const Round& r : rounds_) total += r.width;
  return total;
}

bool MassagePlan::IsValid() const {
  if (rounds_.empty()) return false;
  for (const Round& r : rounds_) {
    if (r.width < 1 || r.width > r.bank) return false;
    if (r.bank != 16 && r.bank != 32 && r.bank != 64) return false;
  }
  return true;
}

std::vector<int> MassagePlan::widths() const {
  std::vector<int> result;
  result.reserve(rounds_.size());
  for (const Round& r : rounds_) result.push_back(r.width);
  return result;
}

std::string MassagePlan::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < rounds_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "R" + std::to_string(i + 1) + ": " +
           std::to_string(rounds_[i].width) + "/[" +
           std::to_string(rounds_[i].bank) + "]";
    // Non-default kernels are annotated; the paper's notation stays
    // unchanged for plain merge rounds (tests compare against it).
    if (rounds_[i].kernel != SortKernel::kSimdMerge) {
      out += std::string(":") + SortKernelName(rounds_[i].kernel);
    }
  }
  out += "}";
  return out;
}

}  // namespace mcsort

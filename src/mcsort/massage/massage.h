// Code massaging execution (Sec. 3, Fig. 6): materializes the per-round
// sort-key columns of a massage plan from the input columns.
//
// Per output round the massager runs one sequential, branchless pass per
// FIP segment (shift, mask, OR, shift — the paper's four-instruction
// program), so the access pattern is "highly sequential and branchless"
// exactly as Sec. 3 argues, and trivially multi-threadable by row range.
//
// Descending attributes of an ORDER BY are complemented within their code
// width before stitching (Fig. 5), so one ascending sort of the massaged
// key realizes mixed ASC/DESC orders.
#ifndef MCSORT_MASSAGE_MASSAGE_H_
#define MCSORT_MASSAGE_MASSAGE_H_

#include <vector>

#include "mcsort/common/thread_pool.h"
#include "mcsort/massage/plan.h"
#include "mcsort/storage/column.h"
#include "mcsort/storage/types.h"

namespace mcsort {

class ExecContext;  // common/exec_context.h

struct MassageInput {
  const EncodedColumn* column = nullptr;
  SortOrder order = SortOrder::kAscending;
};

// Massages `inputs` (ORDER BY attribute order, most significant first) into
// one key column per round of `plan`. The plan's total width must equal the
// sum of the input widths. Output column j holds plan.round(j).width bits
// but is physically typed for the round's *bank*, so it can be fed to the
// bank's SIMD-sort directly (e.g. a 10-bit round sorted with a 32-bit bank
// is stored as uint32).
//
// If `pool` is non-null the row ranges are massaged in parallel. A
// stoppable `ctx` stops the passes between row chunks; the outputs are
// then partial and the caller must re-check ctx before using them.
std::vector<EncodedColumn> ApplyMassage(const std::vector<MassageInput>& inputs,
                                        const MassagePlan& plan,
                                        ThreadPool* pool = nullptr,
                                        const ExecContext* ctx = nullptr);

}  // namespace mcsort

#endif  // MCSORT_MASSAGE_MASSAGE_H_

// Four-instruction-program (FIP) decomposition of a massage plan (Sec. 4,
// "Estimating T_massage", and Fig. 6).
//
// View the sort key as one W-bit string: input column i occupies a
// contiguous range (prefix sums of input widths, MSB first), and round j of
// the plan occupies a contiguous range (prefix sums of round widths).
// Cutting the string at the union of both prefix-sum sets yields segments
// that each lie inside exactly one input column AND one output column; one
// segment is moved by one FIP (shift, mask, bitwise-OR, shift). The number
// of segments is the paper's I_FIP = |{s_1, s_2, ...} U {s'_1, s'_2, ...}|.
#ifndef MCSORT_MASSAGE_FIP_H_
#define MCSORT_MASSAGE_FIP_H_

#include <vector>

namespace mcsort {

// One contiguous bit range copied from an input column to an output column.
// Bit positions are LSB-based within each code.
struct FipSegment {
  int input_col = 0;    // source column index
  int input_lo = 0;     // lowest source bit (inclusive)
  int output_col = 0;   // destination round index
  int output_lo = 0;    // lowest destination bit (inclusive)
  int length = 0;       // number of bits moved

  friend bool operator==(const FipSegment&, const FipSegment&) = default;
};

// Computes the segment list for massaging columns of `input_widths` into
// round columns of `output_widths` (both MSB-significant order; the width
// sums must match). Segments are returned MSB-first.
std::vector<FipSegment> ComputeFipSegments(
    const std::vector<int>& input_widths,
    const std::vector<int>& output_widths);

// I_FIP: the number of FIP invocations (== the segment count).
int CountFipInvocations(const std::vector<int>& input_widths,
                        const std::vector<int>& output_widths);

}  // namespace mcsort

#endif  // MCSORT_MASSAGE_FIP_H_

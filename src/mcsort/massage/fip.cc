#include "mcsort/massage/fip.h"

#include <algorithm>
#include <numeric>

#include "mcsort/common/logging.h"

namespace mcsort {

std::vector<FipSegment> ComputeFipSegments(
    const std::vector<int>& input_widths,
    const std::vector<int>& output_widths) {
  const int total_in = std::accumulate(input_widths.begin(),
                                       input_widths.end(), 0);
  const int total_out = std::accumulate(output_widths.begin(),
                                        output_widths.end(), 0);
  MCSORT_CHECK(total_in == total_out);

  // Cut points: union of the two prefix-sum sequences (MSB offsets).
  std::vector<int> cuts = {0};
  int acc = 0;
  for (int w : input_widths) cuts.push_back(acc += w);
  acc = 0;
  for (int w : output_widths) cuts.push_back(acc += w);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Prefix sums for locating the owning input/output range of a segment.
  std::vector<int> in_ends, out_ends;
  acc = 0;
  for (int w : input_widths) in_ends.push_back(acc += w);
  acc = 0;
  for (int w : output_widths) out_ends.push_back(acc += w);

  std::vector<FipSegment> segments;
  for (size_t c = 0; c + 1 < cuts.size(); ++c) {
    const int g0 = cuts[c];
    const int g1 = cuts[c + 1];
    // Owning input column: first whose end exceeds g0.
    const int in_col = static_cast<int>(
        std::upper_bound(in_ends.begin(), in_ends.end(), g0) -
        in_ends.begin());
    const int out_col = static_cast<int>(
        std::upper_bound(out_ends.begin(), out_ends.end(), g0) -
        out_ends.begin());
    MCSORT_DCHECK(g1 <= in_ends[static_cast<size_t>(in_col)]);
    MCSORT_DCHECK(g1 <= out_ends[static_cast<size_t>(out_col)]);
    FipSegment seg;
    seg.input_col = in_col;
    seg.output_col = out_col;
    seg.length = g1 - g0;
    // An MSB offset g inside a range ending at `end` (exclusive, MSB
    // coordinates) maps to LSB bit (end - 1 - g); a segment [g0, g1) spans
    // LSB bits [end - g1, end - g0).
    seg.input_lo = in_ends[static_cast<size_t>(in_col)] - g1;
    seg.output_lo = out_ends[static_cast<size_t>(out_col)] - g1;
    segments.push_back(seg);
  }
  return segments;
}

int CountFipInvocations(const std::vector<int>& input_widths,
                        const std::vector<int>& output_widths) {
  return static_cast<int>(
      ComputeFipSegments(input_widths, output_widths).size());
}

}  // namespace mcsort

#include "mcsort/massage/massage.h"

#include <cstdint>

#include "mcsort/common/bits.h"
#include "mcsort/common/exec_context.h"
#include "mcsort/common/logging.h"
#include "mcsort/massage/fip.h"

namespace mcsort {
namespace {

PhysicalType TypeForBank(int bank) {
  switch (bank) {
    case 16: return PhysicalType::kU16;
    case 32: return PhysicalType::kU32;
    default: return PhysicalType::kU64;
  }
}

// One FIP pass: out[r] |= (((in[r] ^ flip) >> in_lo) & mask) << out_lo for
// rows [begin, end). `flip` complements descending columns within their
// code width; shift/mask/OR/shift is the paper's four-instruction program.
template <typename In, typename Out>
void ApplySegmentPass(const In* in, Out* out, uint64_t flip, int in_lo,
                      uint64_t mask, int out_lo, size_t begin, size_t end) {
  for (size_t r = begin; r < end; ++r) {
    const uint64_t bits =
        (((static_cast<uint64_t>(in[r]) ^ flip) >> in_lo) & mask) << out_lo;
    out[r] = static_cast<Out>(out[r] | static_cast<Out>(bits));
  }
}

template <typename In>
void DispatchOut(const In* in, EncodedColumn* out, uint64_t flip, int in_lo,
                 uint64_t mask, int out_lo, size_t begin, size_t end) {
  switch (out->type()) {
    case PhysicalType::kU16:
      ApplySegmentPass(in, out->Data16(), flip, in_lo, mask, out_lo, begin,
                       end);
      break;
    case PhysicalType::kU32:
      ApplySegmentPass(in, out->Data32(), flip, in_lo, mask, out_lo, begin,
                       end);
      break;
    case PhysicalType::kU64:
      ApplySegmentPass(in, out->Data64(), flip, in_lo, mask, out_lo, begin,
                       end);
      break;
  }
}

void DispatchSegment(const EncodedColumn& in, EncodedColumn* out,
                     uint64_t flip, int in_lo, uint64_t mask, int out_lo,
                     size_t begin, size_t end) {
  switch (in.type()) {
    case PhysicalType::kU16:
      DispatchOut(in.Data16(), out, flip, in_lo, mask, out_lo, begin, end);
      break;
    case PhysicalType::kU32:
      DispatchOut(in.Data32(), out, flip, in_lo, mask, out_lo, begin, end);
      break;
    case PhysicalType::kU64:
      DispatchOut(in.Data64(), out, flip, in_lo, mask, out_lo, begin, end);
      break;
  }
}

}  // namespace

std::vector<EncodedColumn> ApplyMassage(const std::vector<MassageInput>& inputs,
                                        const MassagePlan& plan,
                                        ThreadPool* pool,
                                        const ExecContext* ctx) {
  MCSORT_CHECK(!inputs.empty());
  MCSORT_CHECK(plan.IsValid());
  const size_t n = inputs[0].column->size();
  std::vector<int> input_widths;
  for (const MassageInput& input : inputs) {
    MCSORT_CHECK(input.column->size() == n);
    input_widths.push_back(input.column->width());
  }
  MCSORT_CHECK(plan.total_width() ==
               [&] {
                 int w = 0;
                 for (int iw : input_widths) w += iw;
                 return w;
               }());

  const std::vector<FipSegment> segments =
      ComputeFipSegments(input_widths, plan.widths());

  std::vector<EncodedColumn> outputs(plan.num_rounds());
  for (size_t j = 0; j < plan.num_rounds(); ++j) {
    outputs[j].ResetTyped(plan.round(j).width, TypeForBank(plan.round(j).bank),
                          n);
  }

  auto run = [&](size_t begin, size_t end, int /*worker*/) {
    for (const FipSegment& seg : segments) {
      const MassageInput& input = inputs[static_cast<size_t>(seg.input_col)];
      const uint64_t flip = input.order == SortOrder::kDescending
                                ? LowBitsMask(input.column->width())
                                : 0;
      DispatchSegment(*input.column,
                      &outputs[static_cast<size_t>(seg.output_col)], flip,
                      seg.input_lo, LowBitsMask(seg.length), seg.output_lo,
                      begin, end);
    }
  };
  const bool stoppable = ctx != nullptr && ctx->stoppable();
  if (pool != nullptr && (pool->num_threads() > 1 || stoppable)) {
    // With a stoppable ctx the pool chunks the row range and checks for a
    // stop between chunks even on a single-threaded pool.
    pool->ParallelFor(n, run, ctx);
  } else {
    run(0, n, 0);
  }
  return outputs;
}

}  // namespace mcsort

// Code massage plans (Sec. 3).
//
// A plan partitions the W = sum(w_i) bits of the concatenated sort key into
// k rounds; round i sorts a_i bits with a b_i-bit-bank SIMD-sort. The
// paper's notation {R1: 18/[32], R2: 32/[32]} maps to
// rounds() = [{18, 32}, {32, 32}].
//
// The original column-at-a-time plan P0 has one round per input column with
// the column's minimal bank. Lemma 1 guarantees any re-partitioning of the
// bits produces the same sorted order of object identifiers.
#ifndef MCSORT_MASSAGE_PLAN_H_
#define MCSORT_MASSAGE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mcsort {

// Which single-column sort kernel executes a round. kSimdMerge is the
// paper's merge-sort with sorting-network kernel [5]; kRadix is the LSD
// radix sort of the Sec. 7 extension (cost driven by the round *width*
// rather than the bank); kOvcMerge forms SIMD-sorted runs but merges them
// with offset-value codes (Do & Graefe) that skip full key comparisons
// when prefixes match; kCounting is the CAFS-style O(N + K) frequency sort
// for rounds whose domain (and distinct count) is small relative to N.
enum class SortKernel { kSimdMerge, kRadix, kOvcMerge, kCounting };

const char* SortKernelName(SortKernel kernel);

// Bitmask over SortKernel values — the plan search's kernel-choice
// dimension. kRoutableKernels are the kernels the cost model can estimate
// and ROGA routes between; kRadix stays a manual override (no calibrated
// cost term) selectable only via MCSORT_KERNELS or the sorter constructor.
using SortKernelMask = uint32_t;
constexpr SortKernelMask KernelBit(SortKernel kernel) {
  return SortKernelMask{1} << static_cast<int>(kernel);
}
constexpr SortKernelMask kRoutableKernels =
    KernelBit(SortKernel::kSimdMerge) | KernelBit(SortKernel::kOvcMerge) |
    KernelBit(SortKernel::kCounting);

// Parses a comma-separated kernel list ("merge", "ovc", "counting",
// "radix"); unknown tokens are ignored, an empty/unparsable string returns
// `fallback`.
SortKernelMask ParseKernelMask(const std::string& text,
                               SortKernelMask fallback);

// The MCSORT_KERNELS debugging override (mirrors MCSORT_RHO): restricts
// the planner's kernel-choice dimension, and — when exactly one kernel is
// named — forces the executor's per-round dispatch to it.
SortKernelMask KernelMaskFromEnv(SortKernelMask fallback = kRoutableKernels);

// One round of sorting: `width` bits of the concatenated key sorted with a
// `bank`-bit-bank SIMD-sort. 1 <= width <= bank, bank in {16, 32, 64}.
// `kernel` is the cost-chosen sort kernel for the round (a pure execution
// annotation: Lemma 1 output equivalence holds for any kernel choice).
struct Round {
  int width = 0;
  int bank = 0;
  SortKernel kernel = SortKernel::kSimdMerge;

  friend bool operator==(const Round&, const Round&) = default;
};

class MassagePlan {
 public:
  MassagePlan() = default;
  explicit MassagePlan(std::vector<Round> rounds);

  // The column-at-a-time plan P0 for input columns of the given widths:
  // one round per column, minimal bank per width.
  static MassagePlan ColumnAtATime(const std::vector<int>& widths);

  // A plan with the given round widths and the minimal bank per round.
  static MassagePlan WithMinimalBanks(const std::vector<int>& widths);

  const std::vector<Round>& rounds() const { return rounds_; }
  size_t num_rounds() const { return rounds_.size(); }
  const Round& round(size_t i) const { return rounds_[i]; }
  // Mutable access for kernel annotation (the plan search stamps the
  // cost-chosen kernel onto each round of the winning plan).
  Round* mutable_round(size_t i) { return &rounds_[i]; }

  // W: total bits covered by the plan.
  int total_width() const;

  // Checks structural validity: nonempty, widths >= 1, width <= bank,
  // banks in {16, 32, 64}.
  bool IsValid() const;

  // Round widths only (the FIP computation's "output widths").
  std::vector<int> widths() const;

  // Paper notation, e.g. "{R1: 18/[32], R2: 32/[32]}".
  std::string ToString() const;

  friend bool operator==(const MassagePlan&, const MassagePlan&) = default;

 private:
  std::vector<Round> rounds_;
};

}  // namespace mcsort

#endif  // MCSORT_MASSAGE_PLAN_H_

// Code massage plans (Sec. 3).
//
// A plan partitions the W = sum(w_i) bits of the concatenated sort key into
// k rounds; round i sorts a_i bits with a b_i-bit-bank SIMD-sort. The
// paper's notation {R1: 18/[32], R2: 32/[32]} maps to
// rounds() = [{18, 32}, {32, 32}].
//
// The original column-at-a-time plan P0 has one round per input column with
// the column's minimal bank. Lemma 1 guarantees any re-partitioning of the
// bits produces the same sorted order of object identifiers.
#ifndef MCSORT_MASSAGE_PLAN_H_
#define MCSORT_MASSAGE_PLAN_H_

#include <string>
#include <vector>

namespace mcsort {

// One round of sorting: `width` bits of the concatenated key sorted with a
// `bank`-bit-bank SIMD-sort. 1 <= width <= bank, bank in {16, 32, 64}.
struct Round {
  int width = 0;
  int bank = 0;

  friend bool operator==(const Round&, const Round&) = default;
};

class MassagePlan {
 public:
  MassagePlan() = default;
  explicit MassagePlan(std::vector<Round> rounds);

  // The column-at-a-time plan P0 for input columns of the given widths:
  // one round per column, minimal bank per width.
  static MassagePlan ColumnAtATime(const std::vector<int>& widths);

  // A plan with the given round widths and the minimal bank per round.
  static MassagePlan WithMinimalBanks(const std::vector<int>& widths);

  const std::vector<Round>& rounds() const { return rounds_; }
  size_t num_rounds() const { return rounds_.size(); }
  const Round& round(size_t i) const { return rounds_[i]; }

  // W: total bits covered by the plan.
  int total_width() const;

  // Checks structural validity: nonempty, widths >= 1, width <= bank,
  // banks in {16, 32, 64}.
  bool IsValid() const;

  // Round widths only (the FIP computation's "output widths").
  std::vector<int> widths() const;

  // Paper notation, e.g. "{R1: 18/[32], R2: 32/[32]}".
  std::string ToString() const;

  friend bool operator==(const MassagePlan&, const MassagePlan&) = default;

 private:
  std::vector<Round> rounds_;
};

}  // namespace mcsort

#endif  // MCSORT_MASSAGE_PLAN_H_

// Message-level payload encodings of the mcsort wire protocol — what goes
// *inside* the frames wire.h frames. One encode/decode pair per frame
// type; decoders return false on any malformed payload (overrun, bad enum
// value, length lies) and never CHECK-fail, because their input is
// untrusted network bytes.
//
// RESULT streaming: one query's answer is a summary chunk followed by zero
// or more data chunks, each a self-describing section slice
// (section id, aggregate index, element count, raw little-endian
// elements), with kFlagLastChunk set on the final frame. The
// ResultAssembler on the client side re-concatenates slices in arrival
// order — the server emits each section's slices in offset order on one
// connection, so no reordering is needed.
#ifndef MCSORT_NET_PROTOCOL_H_
#define MCSORT_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mcsort/delta/dml.h"
#include "mcsort/engine/query.h"
#include "mcsort/net/wire.h"
#include "mcsort/storage/table.h"

namespace mcsort {
namespace net {

// --------------------------------------------------------------------------
// HELLO / HELLO_ACK
// --------------------------------------------------------------------------

struct HelloRequest {
  uint16_t version = kProtocolVersion;
  uint32_t capabilities = 0;  // kCap* bits the client understands
  std::string client_name;
};

struct HelloReply {
  uint16_t version = kProtocolVersion;
  uint16_t min_version = kMinProtocolVersion;  // oldest the server accepts
  uint32_t capabilities = 0;  // kCap* bits the server offers
  std::string server_name;
  std::string default_table;  // name QUERY resolves when `table` is empty
};

std::string EncodeHello(const HelloRequest& hello);
bool DecodeHello(const std::string& payload, HelloRequest* hello);
std::string EncodeHelloReply(const HelloReply& reply);
bool DecodeHelloReply(const std::string& payload, HelloReply* reply);

// --------------------------------------------------------------------------
// ERROR
// --------------------------------------------------------------------------

struct ErrorInfo {
  ErrorCode code = ErrorCode::kNone;
  std::string detail;
};

std::string EncodeError(const ErrorInfo& error);
bool DecodeError(const std::string& payload, ErrorInfo* error);

// --------------------------------------------------------------------------
// QUERY
// --------------------------------------------------------------------------

// The QUERY frame's payload: a per-query header (deadline, target table)
// followed by the full declarative QuerySpec.
struct QueryEnvelope {
  // Relative deadline in microseconds, measured from server receipt;
  // 0 = none. Mapped onto ExecContext::WithDeadline, so it bounds queue
  // wait + execution together.
  uint64_t deadline_micros = 0;
  // Coordinator fan-out: ask the server to append the composite merge-key
  // sections (kMergeKeyHi/Lo, kGroupSizes, kGlobalOids) to the RESULT
  // stream so sorted shard streams can be loser-tree merged without
  // shipping the sort columns themselves.
  bool want_merge_keys = false;
  std::string table;  // empty = the server's default table
  QuerySpec spec;
};

std::string EncodeQuery(const QueryEnvelope& query);
bool DecodeQuery(const std::string& payload, QueryEnvelope* query);

// --------------------------------------------------------------------------
// SCHEMA
// --------------------------------------------------------------------------

struct ColumnInfo {
  std::string name;
  int width = 0;           // code width in bits
  int physical_bytes = 0;  // 2 / 4 / 8
  bool has_dictionary = false;
  int64_t domain_base = 0;
};

struct TableSchema {
  std::string name;
  uint64_t row_count = 0;   // live rows (base minus tombstones plus delta)
  uint64_t epoch = 0;       // snapshot version; bumps on compaction/load
  uint64_t delta_rows = 0;  // live delta rows awaiting compaction
  std::vector<ColumnInfo> columns;
};

struct SchemaReply {
  std::vector<TableSchema> tables;
};

// Introspects `table` into the wire schema (columns in insertion order).
TableSchema SchemaOf(const std::string& name, const Table& table);

std::string EncodeSchemaReply(const SchemaReply& reply);
bool DecodeSchemaReply(const std::string& payload, SchemaReply* reply);

// --------------------------------------------------------------------------
// SAVE_TABLE / LOAD_TABLE
// --------------------------------------------------------------------------

// Payload of both kSaveTable and kLoadTable (the frame type carries the
// verb): name the table to snapshot to / load from the server's catalog
// directory. Empty = the server's default table (SAVE only; LOAD requires
// an explicit name since the table may not be registered yet).
struct TableOpRequest {
  std::string table;
};

// kTableOpReply payload: the operation's outcome. `io_code` is the
// mcsort::IoCode of the failure as a u8 (0 = ok); `detail` carries the
// IoStatus message text.
struct TableOpReply {
  bool ok = false;
  uint8_t io_code = 0;
  std::string detail;
  double seconds = 0;   // wall time of the save/load on the server
  uint64_t rows = 0;    // row count of the table operated on
};

std::string EncodeTableOp(const TableOpRequest& request);
bool DecodeTableOp(const std::string& payload, TableOpRequest* request);
std::string EncodeTableOpReply(const TableOpReply& reply);
bool DecodeTableOpReply(const std::string& payload, TableOpReply* reply);

// --------------------------------------------------------------------------
// DML (protocol v3)
// --------------------------------------------------------------------------

// kDml payload: one delta::DmlCommand in native-value space (tagged int64 /
// string values; encoding against the table's dictionary happens on the
// server). Row arity is structural — every row carries exactly one value
// per named column — so a truncated row fails the decode, not the apply.
std::string EncodeDml(const delta::DmlCommand& cmd);
bool DecodeDml(const std::string& payload, delta::DmlCommand* cmd);

// kDmlReply payload: the typed outcome. `status_code` is the op-level
// mcsort::StatusCode as a u8 (0 = ok); row-level INSERT rejects travel in
// `row_errors` (truncated to the clause cap — `rows_rejected` keeps the
// true count).
struct DmlReply {
  bool ok = false;
  uint8_t status_code = 0;
  std::string detail;
  uint64_t rows_affected = 0;
  uint64_t rows_rejected = 0;
  uint64_t delta_rows = 0;
  uint64_t epoch = 0;
  std::vector<delta::DmlRowError> row_errors;
};

std::string EncodeDmlReply(const DmlReply& reply);
bool DecodeDmlReply(const std::string& payload, DmlReply* reply);

// --------------------------------------------------------------------------
// RESULT stream
// --------------------------------------------------------------------------

// Section ids of the chunked result stream. 6-9 are the distributed
// merge sections, present only when the QUERY envelope asked for them
// (want_merge_keys, protocol v2 / kCapMergeKeys).
enum class ResultSection : uint8_t {
  kSummary = 0,
  kAggregateValues = 1,  // int64 elements; `index` = aggregate spec index
  kAggregateAvg = 2,     // double elements (kAvg specs, concatenated)
  kRanks = 3,            // uint32 elements
  kResultOids = 4,       // uint32 elements
  kGroupOrder = 5,       // uint32 elements
  kMergeKeyHi = 6,       // uint64: bits 127..64 of the composite sort key
  kMergeKeyLo = 7,       // uint64: bits 63..0 (per row / per group)
  kGroupSizes = 8,       // uint32: rows per group (GROUP BY merges)
  kGlobalOids = 9,       // uint32: pre-shard oids ("__goid") in row order
};

// Fixed summary carried by the first RESULT chunk — the scalar half of
// QueryResult (counts, per-phase timings, degradation flags).
struct ResultSummary {
  uint64_t input_rows = 0;
  uint64_t filtered_rows = 0;
  uint64_t num_groups = 0;
  double scan_seconds = 0;
  double materialize_seconds = 0;
  double plan_seconds = 0;
  double mcs_seconds = 0;
  double post_seconds = 0;
  bool degraded = false;
  int32_t bank_cap = 0;
  uint16_t num_aggregates = 0;
};

// The distributed merge sections (ResultSection 6-9), computed by
// dist/merge_keys.h on the server when the QUERY asked for them.
struct ResultExtras {
  std::vector<uint64_t> merge_key_hi;
  std::vector<uint64_t> merge_key_lo;
  std::vector<uint32_t> group_sizes;
  std::vector<uint32_t> global_oids;
};

// Everything a query sends back, reassembled (client side) or about to be
// chunked (server side).
struct ResultPayload {
  ResultSummary summary;
  std::vector<std::vector<int64_t>> aggregate_values;
  std::vector<double> aggregate_avg;
  std::vector<uint32_t> ranks;
  std::vector<uint32_t> result_oids;
  std::vector<uint32_t> result_group_order;
  ResultExtras extras;
};

// Chunks one successful QueryResult into sealed RESULT frames (header +
// payload, ready to write), each data chunk at most `chunk_bytes` of
// element data; the last frame carries kFlagLastChunk. Appends to *frames.
// `extras` (may be null) appends the distributed merge sections.
void BuildResultFrames(uint64_t request_id, const QueryResult& result,
                       size_t chunk_bytes, std::vector<std::string>* frames,
                       const ResultExtras* extras = nullptr);

// Client-side reassembly of the RESULT stream. Feed every RESULT payload
// in arrival order; `last` is the frame's kFlagLastChunk bit. Returns
// false on a malformed chunk.
class ResultAssembler {
 public:
  bool Consume(const std::string& payload, bool last);
  bool done() const { return done_; }
  ResultPayload& result() { return result_; }

 private:
  ResultPayload result_;
  bool done_ = false;
};

}  // namespace net
}  // namespace mcsort

#endif  // MCSORT_NET_PROTOCOL_H_

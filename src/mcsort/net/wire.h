// Byte-level wire format of the mcsort network protocol — the shared
// vocabulary of McsortServer, McsortClient, and the tools.
//
// Every message is one length-prefixed frame:
//
//   offset  size  field
//   ------  ----  ---------------------------------------------------
//        0     4  magic        'M''C''S''1' (kMagic, little-endian)
//        4     1  version      kProtocolVersion (currently 2)
//        5     1  type         FrameType
//        6     2  flags        FrameFlags (kFlagLastChunk on RESULT)
//        8     4  payload_len  bytes following the header (<= max)
//       12     4  payload_crc  CRC32C (Castagnoli) of the payload bytes
//       16     8  request_id   client-chosen correlation id, echoed on
//                              every frame the server sends in response
//
// All integers are little-endian. The payload encoding per frame type
// lives in protocol.h; this header owns only the frame shell, the CRC,
// and the primitive codec (WireWriter / WireReader).
//
// Versioning: a server that receives a frame whose `version` it does not
// speak answers ERROR kUnsupportedVersion and closes — the magic+version
// pair is the only part of the format frozen across protocol revisions.
#ifndef MCSORT_NET_WIRE_H_
#define MCSORT_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "mcsort/common/status.h"

namespace mcsort {
namespace net {

constexpr uint32_t kMagic = 0x3153434Du;  // "MCS1" as a little-endian u32
// Protocol revision history:
//   1  PR 4: HELLO/QUERY/RESULT/SCHEMA/SAVE/LOAD as originally shipped.
//   2  distributed tier: HELLO carries a capability bitmask (and the ACK
//      echoes the server's minimum accepted version), QUERY carries
//      fixed_column_order / merge_fan_in / want_merge_keys, RESULT grows
//      the merge-key / group-size / global-oid sections (ids 6-9).
//   3  write path: DML/DML_REPLY frames (INSERT/UPDATE/DELETE with typed
//      per-row errors), SCHEMA grows per-table epoch + delta_rows.
// Each revision's payloads are not a superset older peers can skip
// (QUERY/SCHEMA decoding is strict-length), so the minimum accepted
// version tracks the current one; peers outside
// [kMinProtocolVersion, kProtocolVersion] get a typed
// kUnsupportedVersion rejection at HELLO.
constexpr uint8_t kProtocolVersion = 3;
constexpr uint8_t kMinProtocolVersion = 3;

// Capability bits negotiated in HELLO (a peer must tolerate unknown bits:
// they advertise features, they never change existing encodings).
constexpr uint32_t kCapMergeKeys = 1u << 0;  // server: RESULT sections 6-9
constexpr size_t kHeaderSize = 24;
// Hard protocol ceiling on one frame's payload; ServerOptions may lower it.
constexpr size_t kMaxPayloadCap = size_t{1} << 26;  // 64 MiB

enum class FrameType : uint8_t {
  kHello = 1,     // client -> server: version + client name
  kHelloAck = 2,  // server -> client: version + server name + default table
  kQuery = 3,     // client -> server: deadline + table + QuerySpec
  kResult = 4,    // server -> client: chunked result stream
  kError = 5,     // server -> client: typed error (ErrorCode + detail)
  kCancel = 6,    // client -> server: cancel the in-flight request_id.
                  // Fire-and-forget: no direct reply — the cancelled
                  // query's response arrives as ERROR kCancelled.
  kPing = 7,      // either direction: liveness probe (payload echoed)
  kPong = 8,
  kMetricsRequest = 9,  // client -> server: empty payload
  kMetricsReply = 10,   // server -> client: text metrics dump
  kSchemaRequest = 11,  // client -> server: empty payload
  kSchemaReply = 12,    // server -> client: tables + columns
  kGoodbye = 13,        // client -> server: flush replies, then close
  kSaveTable = 14,      // client -> server: snapshot a table to the catalog
  kLoadTable = 15,      // client -> server: load a table from the catalog
  kTableOpReply = 16,   // server -> client: SAVE/LOAD outcome + timing
  kDml = 17,            // client -> server: INSERT/UPDATE/DELETE command
  kDmlReply = 18,       // server -> client: DML outcome + per-row errors
};

// True for the types a client may legally send to the server.
bool IsClientFrameType(uint8_t type);

// Header flags.
constexpr uint16_t kFlagLastChunk = 0x1;  // RESULT: final chunk of stream

// Typed error taxonomy carried by ERROR frames (and counted by the bench's
// error report). Transport-level codes first, then execution outcomes.
enum class ErrorCode : uint16_t {
  kNone = 0,
  kMalformedFrame = 1,      // bad magic / garbled header — stream poisoned
  kCrcMismatch = 2,         // header fine, payload corrupt — frame skipped
  kUnsupportedVersion = 3,  // unknown protocol version — stream poisoned
  kOversizedFrame = 4,      // payload_len above the server's cap
  kUnknownType = 5,         // valid header, unknown/illegal frame type
  kMalformedQuery = 6,      // QUERY payload did not decode
  kBadQuery = 7,            // decoded, but semantically invalid for the table
  kBusy = 8,                // backpressure: connection or in-flight cap hit
  kCancelled = 9,           // ExecCode::kCancelled over the wire
  kDeadlineExceeded = 10,   // ExecCode::kDeadlineExceeded over the wire
  kResourceExhausted = 11,  // ExecCode::kResourceExhausted over the wire
  kShuttingDown = 12,       // server is draining; retry elsewhere/later
  kProtocolViolation = 13,  // e.g. QUERY before HELLO, duplicate HELLO
  kUnknownTable = 14,       // QUERY named a table the service doesn't have
  kInternal = 15,
  kIoError = 16,            // SAVE/LOAD_TABLE failed (IoStatus in detail)
};

// Stable lowercase name ("crc_mismatch", "busy", ...) for metrics keys and
// the bench's error taxonomy; "unknown" for out-of-range values.
const char* ErrorCodeName(ErrorCode code);

// Unified-status bridge (common/status.h) — THE wire error mapping. Every
// server-side status (executor outcome, catalog IoStatus, validation
// verdict) is converted to mcsort::Status first and serialized with
// ToErrorCode; the client inverts with ToStatus. Frame-shell codes
// (malformed/crc/oversized/...) have no Status twin of their own — they
// collapse onto kInvalidArgument/kDataLoss/kFailedPrecondition — so
// ToErrorCode(ToStatus(e)) lands on each class's canonical member, which
// is what the round-trip test pins down.
Status ToStatus(ErrorCode code, std::string detail = "");
ErrorCode ToErrorCode(const Status& status);

struct FrameHeader {
  uint32_t magic = kMagic;
  uint8_t version = kProtocolVersion;
  uint8_t type = 0;
  uint16_t flags = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
  uint64_t request_id = 0;
};

void EncodeHeader(const FrameHeader& header, uint8_t out[kHeaderSize]);
FrameHeader DecodeHeader(const uint8_t in[kHeaderSize]);

// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected), the payload
// checksum. Software slice-by-one table; known-answer: Crc32c("123456789")
// == 0xE3069283.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

// A complete frame ready to write: header (with computed CRC) + payload.
std::string SealFrame(FrameType type, uint16_t flags, uint64_t request_id,
                      const std::string& payload);

// ---------------------------------------------------------------------------
// Primitive codec. Little-endian; strings are u16 length + bytes.
// ---------------------------------------------------------------------------

class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I64(int64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }
  // Truncates at 65535 bytes (u16 length prefix) — ample for names/ids.
  void Str(const std::string& s);
  void Bytes(const void* data, size_t n) { Raw(data, n); }

 private:
  // The build targets little-endian x86; memcpy of the native value IS the
  // little-endian encoding. (A big-endian port would byte-swap here.)
  void Raw(const void* p, size_t n) {
    out_->append(reinterpret_cast<const char*>(p), n);
  }
  std::string* out_;
};

// Reader with sticky failure: any overrun sets ok()==false and every
// subsequent read returns 0/empty, so decode functions can read the whole
// struct and check ok() once at the end.
class WireReader {
 public:
  WireReader(const void* data, size_t n)
      : p_(static_cast<const uint8_t*>(data)), n_(n) {}
  explicit WireReader(const std::string& s) : WireReader(s.data(), s.size()) {}

  uint8_t U8() { return ReadInt<uint8_t>(); }
  uint16_t U16() { return ReadInt<uint16_t>(); }
  uint32_t U32() { return ReadInt<uint32_t>(); }
  uint64_t U64() { return ReadInt<uint64_t>(); }
  int64_t I64() { return ReadInt<int64_t>(); }
  double F64() {
    double v = 0;
    ReadRaw(&v, 8);
    return v;
  }
  std::string Str();
  // Bulk copy of `n` elements of `elem_size` bytes into `out`.
  bool Array(void* out, size_t n, size_t elem_size);

  bool ok() const { return ok_; }
  size_t remaining() const { return n_ - pos_; }
  bool AtEnd() const { return ok_ && pos_ == n_; }

 private:
  template <typename T>
  T ReadInt() {
    T v{};
    ReadRaw(&v, sizeof(T));
    return v;
  }
  void ReadRaw(void* out, size_t n) {
    if (!ok_ || n_ - pos_ < n) {
      ok_ = false;
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, p_ + pos_, n);
    pos_ += n;
  }
  const uint8_t* p_;
  size_t n_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace net
}  // namespace mcsort

#endif  // MCSORT_NET_WIRE_H_

#include "mcsort/net/protocol.h"

#include <algorithm>
#include <cstring>

namespace mcsort {
namespace net {
namespace {

// Clause-count sanity bound. Real specs have a handful of entries; a
// decoder that trusts a u16 count of 65535 would loop pointlessly over a
// short payload (each entry read fails), so cap early instead.
constexpr uint32_t kMaxClauseCount = 256;

bool ValidCount(const WireReader& reader, uint32_t count,
                size_t min_entry_bytes) {
  return count <= kMaxClauseCount &&
         count * min_entry_bytes <= reader.remaining();
}

template <typename T>
void WriteArraySlice(WireWriter* w, const T* data, size_t count) {
  w->U32(static_cast<uint32_t>(count));
  w->Bytes(data, count * sizeof(T));
}

}  // namespace

// --------------------------------------------------------------------------
// HELLO
// --------------------------------------------------------------------------

std::string EncodeHello(const HelloRequest& hello) {
  std::string out;
  WireWriter w(&out);
  w.U16(hello.version);
  w.U32(hello.capabilities);
  w.Str(hello.client_name);
  return out;
}

bool DecodeHello(const std::string& payload, HelloRequest* hello) {
  WireReader r(payload);
  hello->version = r.U16();
  hello->capabilities = r.U32();
  hello->client_name = r.Str();
  return r.ok();
}

std::string EncodeHelloReply(const HelloReply& reply) {
  std::string out;
  WireWriter w(&out);
  w.U16(reply.version);
  w.U16(reply.min_version);
  w.U32(reply.capabilities);
  w.Str(reply.server_name);
  w.Str(reply.default_table);
  return out;
}

bool DecodeHelloReply(const std::string& payload, HelloReply* reply) {
  WireReader r(payload);
  reply->version = r.U16();
  reply->min_version = r.U16();
  reply->capabilities = r.U32();
  reply->server_name = r.Str();
  reply->default_table = r.Str();
  return r.ok();
}

// --------------------------------------------------------------------------
// ERROR
// --------------------------------------------------------------------------

std::string EncodeError(const ErrorInfo& error) {
  std::string out;
  WireWriter w(&out);
  w.U16(static_cast<uint16_t>(error.code));
  w.Str(error.detail);
  return out;
}

bool DecodeError(const std::string& payload, ErrorInfo* error) {
  WireReader r(payload);
  error->code = static_cast<ErrorCode>(r.U16());
  error->detail = r.Str();
  return r.ok();
}

// --------------------------------------------------------------------------
// QUERY
// --------------------------------------------------------------------------

std::string EncodeQuery(const QueryEnvelope& query) {
  std::string out;
  WireWriter w(&out);
  w.U64(query.deadline_micros);
  w.Str(query.table);
  const QuerySpec& spec = query.spec;
  w.Str(spec.id);
  w.U16(static_cast<uint16_t>(spec.filters.size()));
  for (const FilterSpec& f : spec.filters) {
    w.Str(f.column);
    w.U8(static_cast<uint8_t>(f.op));
    w.U8(f.is_between ? 1 : 0);
    w.U64(f.literal);
    w.U64(f.literal2);
  }
  w.U16(static_cast<uint16_t>(spec.group_by.size()));
  for (const std::string& c : spec.group_by) w.Str(c);
  w.U16(static_cast<uint16_t>(spec.order_by.size()));
  for (const auto& [column, order] : spec.order_by) {
    w.Str(column);
    w.U8(static_cast<uint8_t>(order));
  }
  w.U16(static_cast<uint16_t>(spec.partition_by.size()));
  for (const std::string& c : spec.partition_by) w.Str(c);
  w.Str(spec.window_order_column);
  w.U16(static_cast<uint16_t>(spec.aggregates.size()));
  for (const AggregateSpec& a : spec.aggregates) {
    w.U8(static_cast<uint8_t>(a.op));
    w.Str(a.column);
  }
  w.U16(static_cast<uint16_t>(spec.result_order.size()));
  for (const ResultOrderSpec& ro : spec.result_order) {
    w.Str(ro.key);
    w.U8(static_cast<uint8_t>(ro.order));
  }
  // Protocol v2: distributed execution fields.
  w.U8(spec.fixed_column_order ? 1 : 0);
  w.U16(static_cast<uint16_t>(
      std::clamp(spec.merge_fan_in, 0, 65535)));
  w.U8(query.want_merge_keys ? 1 : 0);
  return out;
}

bool DecodeQuery(const std::string& payload, QueryEnvelope* query) {
  WireReader r(payload);
  query->deadline_micros = r.U64();
  query->table = r.Str();
  QuerySpec& spec = query->spec;
  spec = QuerySpec();
  spec.id = r.Str();

  const uint16_t n_filters = r.U16();
  if (!ValidCount(r, n_filters, 2 + 2 + 16)) return false;
  spec.filters.resize(n_filters);
  for (FilterSpec& f : spec.filters) {
    f.column = r.Str();
    const uint8_t op = r.U8();
    if (op > static_cast<uint8_t>(CompareOp::kNeq)) return false;
    f.op = static_cast<CompareOp>(op);
    f.is_between = r.U8() != 0;
    f.literal = r.U64();
    f.literal2 = r.U64();
  }

  const uint16_t n_group = r.U16();
  if (!ValidCount(r, n_group, 2)) return false;
  spec.group_by.resize(n_group);
  for (std::string& c : spec.group_by) c = r.Str();

  const uint16_t n_order = r.U16();
  if (!ValidCount(r, n_order, 3)) return false;
  spec.order_by.resize(n_order);
  for (auto& [column, order] : spec.order_by) {
    column = r.Str();
    const uint8_t o = r.U8();
    if (o > static_cast<uint8_t>(SortOrder::kDescending)) return false;
    order = static_cast<SortOrder>(o);
  }

  const uint16_t n_partition = r.U16();
  if (!ValidCount(r, n_partition, 2)) return false;
  spec.partition_by.resize(n_partition);
  for (std::string& c : spec.partition_by) c = r.Str();
  spec.window_order_column = r.Str();

  const uint16_t n_aggs = r.U16();
  if (!ValidCount(r, n_aggs, 3)) return false;
  spec.aggregates.resize(n_aggs);
  for (AggregateSpec& a : spec.aggregates) {
    const uint8_t op = r.U8();
    if (op > static_cast<uint8_t>(AggOp::kMax)) return false;
    a.op = static_cast<AggOp>(op);
    a.column = r.Str();
  }

  const uint16_t n_ro = r.U16();
  if (!ValidCount(r, n_ro, 3)) return false;
  spec.result_order.resize(n_ro);
  for (ResultOrderSpec& ro : spec.result_order) {
    ro.key = r.Str();
    const uint8_t o = r.U8();
    if (o > static_cast<uint8_t>(SortOrder::kDescending)) return false;
    ro.order = static_cast<SortOrder>(o);
  }
  spec.fixed_column_order = r.U8() != 0;
  spec.merge_fan_in = r.U16();
  query->want_merge_keys = r.U8() != 0;
  // Trailing garbage after a well-formed spec is a framing lie: reject.
  return r.AtEnd();
}

// --------------------------------------------------------------------------
// SCHEMA
// --------------------------------------------------------------------------

TableSchema SchemaOf(const std::string& name, const Table& table) {
  TableSchema schema;
  schema.name = name;
  schema.row_count = table.row_count();
  for (const std::string& column_name : table.column_names()) {
    const EncodedColumn& column = table.column(column_name);
    ColumnInfo info;
    info.name = column_name;
    info.width = column.width();
    info.physical_bytes = BytesOfPhysicalType(column.type());
    info.has_dictionary = table.HasDictionary(column_name);
    info.domain_base = table.domain_base(column_name);
    schema.columns.push_back(std::move(info));
  }
  return schema;
}

std::string EncodeSchemaReply(const SchemaReply& reply) {
  std::string out;
  WireWriter w(&out);
  w.U16(static_cast<uint16_t>(reply.tables.size()));
  for (const TableSchema& table : reply.tables) {
    w.Str(table.name);
    w.U64(table.row_count);
    w.U64(table.epoch);
    w.U64(table.delta_rows);
    w.U16(static_cast<uint16_t>(table.columns.size()));
    for (const ColumnInfo& c : table.columns) {
      w.Str(c.name);
      w.U8(static_cast<uint8_t>(c.width));
      w.U8(static_cast<uint8_t>(c.physical_bytes));
      w.U8(c.has_dictionary ? 1 : 0);
      w.I64(c.domain_base);
    }
  }
  return out;
}

bool DecodeSchemaReply(const std::string& payload, SchemaReply* reply) {
  WireReader r(payload);
  const uint16_t n_tables = r.U16();
  if (!ValidCount(r, n_tables, 12)) return false;
  reply->tables.resize(n_tables);
  for (TableSchema& table : reply->tables) {
    table.name = r.Str();
    table.row_count = r.U64();
    table.epoch = r.U64();
    table.delta_rows = r.U64();
    const uint16_t n_cols = r.U16();
    if (!ValidCount(r, n_cols, 2 + 3 + 8)) return false;
    table.columns.resize(n_cols);
    for (ColumnInfo& c : table.columns) {
      c.name = r.Str();
      c.width = r.U8();
      c.physical_bytes = r.U8();
      c.has_dictionary = r.U8() != 0;
      c.domain_base = r.I64();
    }
  }
  return r.ok();
}

// --------------------------------------------------------------------------
// DML
// --------------------------------------------------------------------------

namespace {

// Rows per DML frame. The ceiling keeps one decoded command's memory
// proportional to its payload; bulk loads batch into multiple frames.
constexpr uint32_t kMaxDmlRows = 4096;

constexpr uint8_t kDmlTagInt = 0;
constexpr uint8_t kDmlTagString = 1;

void WriteDmlValue(WireWriter* w, const delta::DmlValue& value) {
  if (value.is_string) {
    w->U8(kDmlTagString);
    w->Str(value.str);
  } else {
    w->U8(kDmlTagInt);
    w->I64(value.i64);
  }
}

bool ReadDmlValue(WireReader* r, delta::DmlValue* value) {
  const uint8_t tag = r->U8();
  if (tag == kDmlTagInt) {
    value->is_string = false;
    value->i64 = r->I64();
  } else if (tag == kDmlTagString) {
    value->is_string = true;
    value->str = r->Str();
  } else {
    return false;
  }
  return r->ok();
}

}  // namespace

std::string EncodeDml(const delta::DmlCommand& cmd) {
  std::string out;
  WireWriter w(&out);
  w.U8(static_cast<uint8_t>(cmd.op));
  w.Str(cmd.table);
  w.U16(static_cast<uint16_t>(cmd.columns.size()));
  for (const std::string& c : cmd.columns) w.Str(c);
  w.U32(static_cast<uint32_t>(cmd.rows.size()));
  for (const std::vector<delta::DmlValue>& row : cmd.rows) {
    // Arity is structural on the wire: exactly one value per named column.
    for (size_t k = 0; k < cmd.columns.size(); ++k) {
      WriteDmlValue(&w, k < row.size() ? row[k]
                                       : delta::DmlValue::Int(0));
    }
  }
  w.U8(cmd.has_predicate ? 1 : 0);
  if (cmd.has_predicate) {
    w.Str(cmd.predicate.column);
    w.U8(static_cast<uint8_t>(cmd.predicate.op));
    WriteDmlValue(&w, cmd.predicate.value);
  }
  return out;
}

bool DecodeDml(const std::string& payload, delta::DmlCommand* cmd) {
  WireReader r(payload);
  const uint8_t op = r.U8();
  if (op < static_cast<uint8_t>(delta::DmlOp::kInsert) ||
      op > static_cast<uint8_t>(delta::DmlOp::kUpdate)) {
    return false;
  }
  cmd->op = static_cast<delta::DmlOp>(op);
  cmd->table = r.Str();

  const uint16_t n_columns = r.U16();
  if (!ValidCount(r, n_columns, 2)) return false;
  cmd->columns.resize(n_columns);
  for (std::string& c : cmd->columns) c = r.Str();

  const uint32_t n_rows = r.U32();
  // Each value is at least a tag byte; an absurd count over a short
  // payload is rejected before any allocation happens.
  const size_t min_row_bytes = n_columns > 0 ? size_t{n_columns} : 1;
  if (n_rows > kMaxDmlRows || n_rows * min_row_bytes > r.remaining()) {
    return false;
  }
  cmd->rows.resize(n_rows);
  for (std::vector<delta::DmlValue>& row : cmd->rows) {
    row.resize(n_columns);
    for (delta::DmlValue& value : row) {
      if (!ReadDmlValue(&r, &value)) return false;
    }
  }

  cmd->has_predicate = r.U8() != 0;
  if (cmd->has_predicate) {
    cmd->predicate.column = r.Str();
    const uint8_t pred_op = r.U8();
    if (pred_op > static_cast<uint8_t>(delta::DmlCompareOp::kGe)) return false;
    cmd->predicate.op = static_cast<delta::DmlCompareOp>(pred_op);
    if (!ReadDmlValue(&r, &cmd->predicate.value)) return false;
  }
  // Trailing garbage after a well-formed command is a framing lie: reject.
  return r.AtEnd();
}

std::string EncodeDmlReply(const DmlReply& reply) {
  std::string out;
  WireWriter w(&out);
  w.U8(reply.ok ? 1 : 0);
  w.U8(reply.status_code);
  w.Str(reply.detail);
  w.U64(reply.rows_affected);
  w.U64(reply.rows_rejected);
  w.U64(reply.delta_rows);
  w.U64(reply.epoch);
  const size_t n_errors = std::min<size_t>(reply.row_errors.size(),
                                           kMaxClauseCount);
  w.U16(static_cast<uint16_t>(n_errors));
  for (size_t i = 0; i < n_errors; ++i) {
    const delta::DmlRowError& e = reply.row_errors[i];
    w.U32(e.row);
    w.U8(static_cast<uint8_t>(e.code));
    w.Str(e.detail);
  }
  return out;
}

bool DecodeDmlReply(const std::string& payload, DmlReply* reply) {
  WireReader r(payload);
  reply->ok = r.U8() != 0;
  reply->status_code = r.U8();
  if (reply->status_code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return false;
  }
  reply->detail = r.Str();
  reply->rows_affected = r.U64();
  reply->rows_rejected = r.U64();
  reply->delta_rows = r.U64();
  reply->epoch = r.U64();
  const uint16_t n_errors = r.U16();
  if (!ValidCount(r, n_errors, 4 + 1 + 2)) return false;
  reply->row_errors.resize(n_errors);
  for (delta::DmlRowError& e : reply->row_errors) {
    e.row = r.U32();
    const uint8_t code = r.U8();
    if (code > static_cast<uint8_t>(StatusCode::kInternal)) return false;
    e.code = static_cast<StatusCode>(code);
    e.detail = r.Str();
  }
  return r.AtEnd();
}

// --------------------------------------------------------------------------
// SAVE_TABLE / LOAD_TABLE
// --------------------------------------------------------------------------

std::string EncodeTableOp(const TableOpRequest& request) {
  std::string out;
  WireWriter w(&out);
  w.Str(request.table);
  return out;
}

bool DecodeTableOp(const std::string& payload, TableOpRequest* request) {
  WireReader r(payload);
  request->table = r.Str();
  return r.AtEnd();
}

std::string EncodeTableOpReply(const TableOpReply& reply) {
  std::string out;
  WireWriter w(&out);
  w.U8(reply.ok ? 1 : 0);
  w.U8(reply.io_code);
  w.Str(reply.detail);
  w.F64(reply.seconds);
  w.U64(reply.rows);
  return out;
}

bool DecodeTableOpReply(const std::string& payload, TableOpReply* reply) {
  WireReader r(payload);
  reply->ok = r.U8() != 0;
  reply->io_code = r.U8();
  reply->detail = r.Str();
  reply->seconds = r.F64();
  reply->rows = r.U64();
  return r.ok();
}

// --------------------------------------------------------------------------
// RESULT stream
// --------------------------------------------------------------------------

namespace {

std::string EncodeSummaryChunk(const QueryResult& result) {
  std::string out;
  WireWriter w(&out);
  w.U8(static_cast<uint8_t>(ResultSection::kSummary));
  w.U64(result.input_rows);
  w.U64(result.filtered_rows);
  w.U64(result.num_groups);
  w.F64(result.scan_seconds);
  w.F64(result.materialize_seconds);
  w.F64(result.plan_seconds);
  w.F64(result.mcs_seconds);
  w.F64(result.post_seconds);
  w.U8(result.degraded ? 1 : 0);
  w.U32(static_cast<uint32_t>(result.bank_cap));
  w.U16(static_cast<uint16_t>(result.aggregate_values.size()));
  return out;
}

// Splits one array into data chunks of at most `chunk_bytes` element data.
template <typename T>
void ChunkArray(ResultSection section, uint16_t index, const T* data,
                size_t count, size_t chunk_bytes, uint64_t request_id,
                bool is_final_section, std::vector<std::string>* frames) {
  const size_t per_chunk = std::max<size_t>(1, chunk_bytes / sizeof(T));
  size_t offset = 0;
  do {
    const size_t n = std::min(per_chunk, count - offset);
    std::string payload;
    WireWriter w(&payload);
    w.U8(static_cast<uint8_t>(section));
    w.U16(index);
    WriteArraySlice(&w, data + offset, n);
    offset += n;
    const bool last = is_final_section && offset >= count;
    frames->push_back(SealFrame(FrameType::kResult,
                                last ? kFlagLastChunk : 0, request_id,
                                payload));
  } while (offset < count);
}

}  // namespace

void BuildResultFrames(uint64_t request_id, const QueryResult& result,
                       size_t chunk_bytes, std::vector<std::string>* frames,
                       const ResultExtras* extras) {
  // Collect the non-empty sections first so the last chunk of the last
  // section can carry the end-of-stream flag.
  struct Section {
    ResultSection id;
    uint16_t index;
    const void* data;
    size_t count;
    size_t elem;
  };
  std::vector<Section> sections;
  for (size_t i = 0; i < result.aggregate_values.size(); ++i) {
    const std::vector<int64_t>& values = result.aggregate_values[i];
    if (!values.empty()) {
      sections.push_back({ResultSection::kAggregateValues,
                          static_cast<uint16_t>(i), values.data(),
                          values.size(), sizeof(int64_t)});
    }
  }
  if (!result.aggregate_avg.empty()) {
    sections.push_back({ResultSection::kAggregateAvg, 0,
                        result.aggregate_avg.data(),
                        result.aggregate_avg.size(), sizeof(double)});
  }
  if (!result.ranks.empty()) {
    sections.push_back({ResultSection::kRanks, 0, result.ranks.data(),
                        result.ranks.size(), sizeof(uint32_t)});
  }
  if (!result.result_oids.empty()) {
    sections.push_back({ResultSection::kResultOids, 0,
                        result.result_oids.data(), result.result_oids.size(),
                        sizeof(uint32_t)});
  }
  if (!result.result_group_order.empty()) {
    sections.push_back({ResultSection::kGroupOrder, 0,
                        result.result_group_order.data(),
                        result.result_group_order.size(), sizeof(uint32_t)});
  }
  if (extras != nullptr) {
    if (!extras->merge_key_hi.empty()) {
      sections.push_back({ResultSection::kMergeKeyHi, 0,
                          extras->merge_key_hi.data(),
                          extras->merge_key_hi.size(), sizeof(uint64_t)});
    }
    if (!extras->merge_key_lo.empty()) {
      sections.push_back({ResultSection::kMergeKeyLo, 0,
                          extras->merge_key_lo.data(),
                          extras->merge_key_lo.size(), sizeof(uint64_t)});
    }
    if (!extras->group_sizes.empty()) {
      sections.push_back({ResultSection::kGroupSizes, 0,
                          extras->group_sizes.data(),
                          extras->group_sizes.size(), sizeof(uint32_t)});
    }
    if (!extras->global_oids.empty()) {
      sections.push_back({ResultSection::kGlobalOids, 0,
                          extras->global_oids.data(),
                          extras->global_oids.size(), sizeof(uint32_t)});
    }
  }

  const bool summary_is_last = sections.empty();
  frames->push_back(SealFrame(FrameType::kResult,
                              summary_is_last ? kFlagLastChunk : 0,
                              request_id, EncodeSummaryChunk(result)));
  for (size_t s = 0; s < sections.size(); ++s) {
    const Section& section = sections[s];
    const bool final_section = s + 1 == sections.size();
    switch (section.elem) {
      case sizeof(uint32_t):
        ChunkArray(section.id, section.index,
                   static_cast<const uint32_t*>(section.data), section.count,
                   chunk_bytes, request_id, final_section, frames);
        break;
      default:  // int64_t and double are both 8-byte raw copies
        ChunkArray(section.id, section.index,
                   static_cast<const uint64_t*>(section.data), section.count,
                   chunk_bytes, request_id, final_section, frames);
        break;
    }
  }
}

bool ResultAssembler::Consume(const std::string& payload, bool last) {
  if (done_) return false;  // frames after the end-of-stream flag
  WireReader r(payload);
  const uint8_t section = r.U8();
  switch (static_cast<ResultSection>(section)) {
    case ResultSection::kSummary: {
      ResultSummary& s = result_.summary;
      s.input_rows = r.U64();
      s.filtered_rows = r.U64();
      s.num_groups = r.U64();
      s.scan_seconds = r.F64();
      s.materialize_seconds = r.F64();
      s.plan_seconds = r.F64();
      s.mcs_seconds = r.F64();
      s.post_seconds = r.F64();
      s.degraded = r.U8() != 0;
      s.bank_cap = static_cast<int32_t>(r.U32());
      s.num_aggregates = r.U16();
      if (!r.ok()) return false;
      result_.aggregate_values.resize(s.num_aggregates);
      break;
    }
    case ResultSection::kAggregateValues: {
      const uint16_t index = r.U16();
      const uint32_t count = r.U32();
      if (index >= result_.aggregate_values.size()) return false;
      if (count * sizeof(int64_t) != r.remaining()) return false;
      std::vector<int64_t>& out = result_.aggregate_values[index];
      const size_t old = out.size();
      out.resize(old + count);
      if (!r.Array(out.data() + old, count, sizeof(int64_t))) return false;
      break;
    }
    case ResultSection::kAggregateAvg:
    case ResultSection::kRanks:
    case ResultSection::kResultOids:
    case ResultSection::kGroupOrder:
    case ResultSection::kMergeKeyHi:
    case ResultSection::kMergeKeyLo:
    case ResultSection::kGroupSizes:
    case ResultSection::kGlobalOids: {
      r.U16();  // index, unused outside aggregate sections
      const uint32_t count = r.U32();
      const ResultSection id = static_cast<ResultSection>(section);
      const size_t elem = id == ResultSection::kAggregateAvg
                              ? sizeof(double)
                          : (id == ResultSection::kMergeKeyHi ||
                             id == ResultSection::kMergeKeyLo)
                              ? sizeof(uint64_t)
                              : sizeof(uint32_t);
      if (count * elem != r.remaining()) return false;
      if (id == ResultSection::kAggregateAvg) {
        std::vector<double>& out = result_.aggregate_avg;
        const size_t old = out.size();
        out.resize(old + count);
        if (!r.Array(out.data() + old, count, elem)) return false;
      } else if (id == ResultSection::kMergeKeyHi ||
                 id == ResultSection::kMergeKeyLo) {
        std::vector<uint64_t>& out = id == ResultSection::kMergeKeyHi
                                         ? result_.extras.merge_key_hi
                                         : result_.extras.merge_key_lo;
        const size_t old = out.size();
        out.resize(old + count);
        if (!r.Array(out.data() + old, count, elem)) return false;
      } else {
        std::vector<uint32_t>* out =
            id == ResultSection::kRanks          ? &result_.ranks
            : id == ResultSection::kResultOids   ? &result_.result_oids
            : id == ResultSection::kGroupOrder   ? &result_.result_group_order
            : id == ResultSection::kGroupSizes   ? &result_.extras.group_sizes
                                                 : &result_.extras.global_oids;
        const size_t old = out->size();
        out->resize(old + count);
        if (!r.Array(out->data() + old, count, elem)) return false;
      }
      break;
    }
    default:
      return false;
  }
  if (last) done_ = true;
  return true;
}

}  // namespace net
}  // namespace mcsort

#include "mcsort/net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace mcsort {
namespace net {

namespace {

void SetSocketTimeout(int fd, int which, double seconds) {
  if (seconds <= 0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) *
                               1e6);
  setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

// Maps the wire error taxonomy back onto the engine's typed status, so
// callers can treat a remote cancellation/deadline exactly like a local
// one. Transport-ish codes collapse to kResourceExhausted-flavoured
// failure via RemoteResult::error instead.
ExecStatus StatusFromError(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone:
      return ExecStatus::Ok();
    case ErrorCode::kCancelled:
      return ExecStatus::Cancelled("cancelled (remote)");
    case ErrorCode::kDeadlineExceeded:
      return ExecStatus::DeadlineExceeded("deadline exceeded (remote)");
    case ErrorCode::kResourceExhausted:
      return ExecStatus::ResourceExhausted("resource exhausted (remote)");
    default:
      // Not an execution outcome; leave status ok and let callers consult
      // RemoteResult::error.
      return ExecStatus::Ok();
  }
}

// Blocking connect with a timeout: non-blocking connect + poll(POLLOUT),
// then back to blocking mode.
bool ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t len,
                        double seconds, std::string* error) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = connect(fd, addr, len);
  if (rc != 0 && errno != EINPROGRESS) {
    if (error != nullptr) *error = std::string("connect: ") + strerror(errno);
    return false;
  }
  if (rc != 0) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int timeout_ms =
        seconds > 0 ? static_cast<int>(seconds * 1e3) : -1;
    do {
      rc = poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      if (error != nullptr) {
        *error = rc == 0 ? "connect: timed out"
                         : std::string("connect poll: ") + strerror(errno);
      }
      return false;
    }
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len);
    if (so_error != 0) {
      if (error != nullptr) {
        *error = std::string("connect: ") + strerror(so_error);
      }
      return false;
    }
  }
  fcntl(fd, F_SETFL, flags);
  return true;
}

}  // namespace

const char* ClientStatusName(ClientStatus status) {
  switch (status) {
    case ClientStatus::kOk: return "ok";
    case ClientStatus::kNotConnected: return "not_connected";
    case ClientStatus::kTransportError: return "transport_error";
    case ClientStatus::kCallTimeout: return "call_timeout";
    case ClientStatus::kServerError: return "server_error";
  }
  return "unknown";
}

Status ToStatus(ClientStatus status, std::string detail) {
  switch (status) {
    case ClientStatus::kOk: return Status::Ok();
    case ClientStatus::kNotConnected:
      return Status::FailedPrecondition(std::move(detail));
    case ClientStatus::kTransportError:
      return Status::Unavailable(std::move(detail));
    case ClientStatus::kCallTimeout:
      return Status::DeadlineExceeded(std::move(detail));
    case ClientStatus::kServerError:
      return Status::Internal(std::move(detail));
  }
  return Status::Internal(std::move(detail));
}

ClientStatus ClientStatusFromStatus(const Status& status) {
  switch (status.code) {
    case StatusCode::kOk: return ClientStatus::kOk;
    case StatusCode::kFailedPrecondition: return ClientStatus::kNotConnected;
    case StatusCode::kDeadlineExceeded: return ClientStatus::kCallTimeout;
    case StatusCode::kInternal: return ClientStatus::kServerError;
    default: return ClientStatus::kTransportError;
  }
}

McsortClient::McsortClient(const ClientOptions& options) : options_(options) {}

McsortClient::~McsortClient() { Close(); }

void McsortClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  assembler_ = FrameAssembler();
  inflight_query_.store(0, std::memory_order_relaxed);
}

void McsortClient::FailTransport() { Close(); }

bool McsortClient::Connect(std::string* error) {
  Close();

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host address: " + options_.host;
    return false;
  }

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  if (!ConnectWithTimeout(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                          options_.connect_timeout_seconds, error)) {
    ::close(fd);
    return false;
  }

  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetSocketTimeout(fd, SO_RCVTIMEO, options_.io_timeout_seconds);
  SetSocketTimeout(fd, SO_SNDTIMEO, options_.io_timeout_seconds);
  fd_ = fd;

  // HELLO handshake.
  HelloRequest hello;
  hello.version = kProtocolVersion;
  hello.capabilities = kCapMergeKeys;
  hello.client_name = options_.client_name;
  const uint64_t id = NextRequestId();
  if (!SendFrame(FrameType::kHello, id, EncodeHello(hello))) {
    if (error != nullptr) *error = "hello: send failed";
    FailTransport();
    return false;
  }
  Frame frame;
  if (!ReadReply(id, &frame)) {
    if (error != nullptr) *error = "hello: no reply";
    FailTransport();
    return false;
  }
  if (frame.type() == FrameType::kError) {
    ErrorInfo info;
    DecodeError(frame.payload, &info);
    if (error != nullptr) {
      *error = std::string("hello rejected: ") + ErrorCodeName(info.code) +
               (info.detail.empty() ? "" : ": " + info.detail);
    }
    FailTransport();
    return false;
  }
  if (frame.type() != FrameType::kHelloAck ||
      !DecodeHelloReply(frame.payload, &hello_)) {
    if (error != nullptr) *error = "hello: malformed reply";
    FailTransport();
    return false;
  }
  // Version range check from the client side: reject a server whose
  // accepted window [min_version, version] misses ours. (The server does
  // the symmetric check on our HELLO and answers kUnsupportedVersion.)
  if (hello_.min_version > kProtocolVersion ||
      hello_.version < kMinProtocolVersion) {
    if (error != nullptr) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "hello: server speaks versions %u..%u, client speaks "
                    "%u..%u",
                    hello_.min_version, hello_.version, kMinProtocolVersion,
                    kProtocolVersion);
      *error = buf;
    }
    FailTransport();
    return false;
  }
  return true;
}

bool McsortClient::SendFrame(FrameType type, uint64_t request_id,
                             const std::string& payload) {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ < 0) return false;
  return SendAll(fd_, SealFrame(type, 0, request_id, payload));
}

bool McsortClient::ReadReply(uint64_t request_id, Frame* frame) {
  bool timed_out = false;
  return ReadReplyUntil(request_id, frame, /*has_deadline=*/false,
                        std::chrono::steady_clock::time_point{}, &timed_out);
}

bool McsortClient::ReadReplyUntil(uint64_t request_id, Frame* frame,
                                  bool has_deadline,
                                  std::chrono::steady_clock::time_point deadline,
                                  bool* timed_out) {
  *timed_out = false;
  for (;;) {
    if (has_deadline) {
      const double remaining =
          std::chrono::duration<double>(deadline -
                                        std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) {
        *timed_out = true;
        return false;
      }
      // Narrow the per-operation receive window to whatever is left of the
      // call budget (never widening past the configured io timeout).
      const double window = options_.io_timeout_seconds > 0
                                ? std::min(options_.io_timeout_seconds,
                                           remaining)
                                : remaining;
      SetSocketTimeout(fd_, SO_RCVTIMEO, window);
    }
    ErrorCode code = ErrorCode::kNone;
    bool fatal = false;
    const auto next = RecvFrame(fd_, &assembler_, frame, &code, &fatal);
    if (next != FrameAssembler::Next::kFrame) {
      // A receive that failed with EAGAIN after the call deadline passed is
      // the narrowed SO_RCVTIMEO firing — report it as a timeout, not a
      // transport fault.
      if (has_deadline && (errno == EAGAIN || errno == EWOULDBLOCK) &&
          std::chrono::steady_clock::now() >= deadline) {
        *timed_out = true;
      }
      return false;
    }
    if (frame->header.request_id == request_id) return true;
    // A stale reply from a request this client abandoned (e.g. the tail of
    // a cancelled query's result stream) — discard and keep reading.
  }
}

RemoteResult McsortClient::Query(const QuerySpec& spec,
                                 const QueryCallOptions& options) {
  RemoteResult out;
  TryQuery(spec, options, &out);
  return out;
}

ClientStatus McsortClient::TryQuery(const QuerySpec& spec,
                                    const QueryCallOptions& options,
                                    RemoteResult* result) {
  *result = RemoteResult();
  RemoteResult& out = *result;
  if (fd_ < 0) {
    out.error = ErrorCode::kInternal;
    out.error_detail = "not connected";
    return ClientStatus::kNotConnected;
  }

  QueryEnvelope envelope;
  envelope.table = options.table;
  if (options.deadline_seconds > 0) {
    envelope.deadline_micros =
        static_cast<uint64_t>(options.deadline_seconds * 1e6);
    if (envelope.deadline_micros == 0) envelope.deadline_micros = 1;
  }
  envelope.want_merge_keys = options.want_merge_keys;
  envelope.spec = spec;

  const bool has_deadline = options.call_timeout_seconds > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              has_deadline ? options.call_timeout_seconds : 0));

  const uint64_t id = NextRequestId();
  inflight_query_.store(id, std::memory_order_release);
  if (!SendFrame(FrameType::kQuery, id, EncodeQuery(envelope))) {
    inflight_query_.store(0, std::memory_order_release);
    out.error_detail = "send failed";
    FailTransport();
    return ClientStatus::kTransportError;
  }

  ResultAssembler assembler;
  Frame frame;
  for (;;) {
    bool timed_out = false;
    if (!ReadReplyUntil(id, &frame, has_deadline, deadline, &timed_out)) {
      inflight_query_.store(0, std::memory_order_release);
      // The server may still be streaming the abandoned result; the stream
      // position is unrecoverable either way, so the connection dies.
      FailTransport();
      out.error_detail =
          timed_out ? "call timed out" : "connection lost mid-reply";
      return timed_out ? ClientStatus::kCallTimeout
                       : ClientStatus::kTransportError;
    }
    if (frame.type() == FrameType::kError) {
      inflight_query_.store(0, std::memory_order_release);
      ErrorInfo info;
      if (!DecodeError(frame.payload, &info)) {
        out.error_detail = "malformed error frame";
        FailTransport();
        return ClientStatus::kTransportError;
      }
      if (has_deadline) {
        SetSocketTimeout(fd_, SO_RCVTIMEO, options_.io_timeout_seconds);
      }
      out.transport_ok = true;
      out.error = info.code;
      out.error_detail = info.detail;
      out.status = StatusFromError(info.code);
      return ClientStatus::kServerError;
    }
    if (frame.type() != FrameType::kResult) {
      // Unrelated frame type with our id — protocol confusion; bail.
      inflight_query_.store(0, std::memory_order_release);
      out.error_detail = "unexpected frame type in result stream";
      FailTransport();
      return ClientStatus::kTransportError;
    }
    if (!assembler.Consume(frame.payload, frame.last_chunk())) {
      inflight_query_.store(0, std::memory_order_release);
      out.error_detail = "malformed result chunk";
      FailTransport();
      return ClientStatus::kTransportError;
    }
    if (assembler.done()) break;
  }

  inflight_query_.store(0, std::memory_order_release);
  if (has_deadline) {
    SetSocketTimeout(fd_, SO_RCVTIMEO, options_.io_timeout_seconds);
  }
  out.transport_ok = true;
  out.error = ErrorCode::kNone;
  out.status = ExecStatus::Ok();
  ResultPayload& payload = assembler.result();
  out.summary = payload.summary;
  out.aggregate_values = std::move(payload.aggregate_values);
  out.aggregate_avg = std::move(payload.aggregate_avg);
  out.ranks = std::move(payload.ranks);
  out.result_oids = std::move(payload.result_oids);
  out.result_group_order = std::move(payload.result_group_order);
  out.extras = std::move(payload.extras);
  return ClientStatus::kOk;
}

bool McsortClient::Cancel() {
  const uint64_t id = inflight_query_.load(std::memory_order_acquire);
  if (id == 0) return false;
  // CANCEL is fire-and-forget: the blocked Query() observes the outcome as
  // ERROR kCancelled (or a completed result, if it raced and won).
  return SendFrame(FrameType::kCancel, id, std::string());
}

bool McsortClient::Ping(double* rtt_seconds) {
  if (fd_ < 0) return false;
  const uint64_t id = NextRequestId();
  const auto start = std::chrono::steady_clock::now();
  if (!SendFrame(FrameType::kPing, id, "ping")) {
    FailTransport();
    return false;
  }
  Frame frame;
  if (!ReadReply(id, &frame) || frame.type() != FrameType::kPong) {
    FailTransport();
    return false;
  }
  if (rtt_seconds != nullptr) {
    *rtt_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  return true;
}

bool McsortClient::GetMetrics(std::string* text) {
  if (fd_ < 0) return false;
  const uint64_t id = NextRequestId();
  if (!SendFrame(FrameType::kMetricsRequest, id, std::string())) {
    FailTransport();
    return false;
  }
  Frame frame;
  if (!ReadReply(id, &frame) || frame.type() != FrameType::kMetricsReply) {
    FailTransport();
    return false;
  }
  if (text != nullptr) *text = frame.payload;
  return true;
}

TableOpResult McsortClient::TableOp(FrameType type, const std::string& table) {
  TableOpResult result;
  if (fd_ < 0) return result;
  const uint64_t id = NextRequestId();
  TableOpRequest request;
  request.table = table;
  if (!SendFrame(type, id, EncodeTableOp(request))) {
    FailTransport();
    return result;
  }
  Frame frame;
  if (!ReadReply(id, &frame)) {
    FailTransport();
    return result;
  }
  if (frame.type() == FrameType::kError) {
    ErrorInfo info;
    if (!DecodeError(frame.payload, &info)) {
      FailTransport();
      return result;
    }
    result.transport_ok = true;
    result.error = info.code;
    result.error_detail = info.detail;
    return result;
  }
  if (frame.type() != FrameType::kTableOpReply ||
      !DecodeTableOpReply(frame.payload, &result.reply)) {
    FailTransport();
    return result;
  }
  result.transport_ok = true;
  return result;
}

TableOpResult McsortClient::SaveTable(const std::string& table) {
  return TableOp(FrameType::kSaveTable, table);
}

TableOpResult McsortClient::LoadTable(const std::string& table) {
  return TableOp(FrameType::kLoadTable, table);
}

DmlResult McsortClient::ExecuteDml(const delta::DmlCommand& cmd) {
  DmlResult result;
  if (fd_ < 0) return result;
  const uint64_t id = NextRequestId();
  if (!SendFrame(FrameType::kDml, id, EncodeDml(cmd))) {
    FailTransport();
    return result;
  }
  Frame frame;
  if (!ReadReply(id, &frame)) {
    FailTransport();
    return result;
  }
  if (frame.type() == FrameType::kError) {
    ErrorInfo info;
    if (!DecodeError(frame.payload, &info)) {
      FailTransport();
      return result;
    }
    result.transport_ok = true;
    result.error = info.code;
    result.error_detail = info.detail;
    return result;
  }
  if (frame.type() != FrameType::kDmlReply ||
      !DecodeDmlReply(frame.payload, &result.reply)) {
    FailTransport();
    return result;
  }
  result.transport_ok = true;
  return result;
}

bool McsortClient::GetSchema(SchemaReply* schema) {
  if (fd_ < 0) return false;
  const uint64_t id = NextRequestId();
  if (!SendFrame(FrameType::kSchemaRequest, id, std::string())) {
    FailTransport();
    return false;
  }
  Frame frame;
  if (!ReadReply(id, &frame) || frame.type() != FrameType::kSchemaReply) {
    FailTransport();
    return false;
  }
  return schema == nullptr || DecodeSchemaReply(frame.payload, schema);
}

}  // namespace net
}  // namespace mcsort

#include "mcsort/net/wire.h"

namespace mcsort {
namespace net {
namespace {

// Reflected CRC32C table, built once (thread-safe magic static).
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  static const Crc32cTable table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

bool IsClientFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
    case FrameType::kQuery:
    case FrameType::kCancel:
    case FrameType::kPing:
    case FrameType::kMetricsRequest:
    case FrameType::kSchemaRequest:
    case FrameType::kGoodbye:
    case FrameType::kSaveTable:
    case FrameType::kLoadTable:
    case FrameType::kDml:
      return true;
    default:
      return false;
  }
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kMalformedFrame: return "malformed_frame";
    case ErrorCode::kCrcMismatch: return "crc_mismatch";
    case ErrorCode::kUnsupportedVersion: return "unsupported_version";
    case ErrorCode::kOversizedFrame: return "oversized_frame";
    case ErrorCode::kUnknownType: return "unknown_type";
    case ErrorCode::kMalformedQuery: return "malformed_query";
    case ErrorCode::kBadQuery: return "bad_query";
    case ErrorCode::kBusy: return "busy";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kProtocolViolation: return "protocol_violation";
    case ErrorCode::kUnknownTable: return "unknown_table";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kIoError: return "io_error";
  }
  return "unknown";
}

Status ToStatus(ErrorCode code, std::string detail) {
  switch (code) {
    case ErrorCode::kNone: return Status::Ok();
    case ErrorCode::kMalformedFrame:
    case ErrorCode::kMalformedQuery:
    case ErrorCode::kBadQuery:
    case ErrorCode::kOversizedFrame:
    case ErrorCode::kUnknownType:
      return Status::InvalidArgument(std::move(detail));
    case ErrorCode::kCrcMismatch: return Status::DataLoss(std::move(detail));
    case ErrorCode::kUnsupportedVersion:
    case ErrorCode::kProtocolViolation:
      return Status::FailedPrecondition(std::move(detail));
    case ErrorCode::kBusy:
    case ErrorCode::kShuttingDown:
    case ErrorCode::kIoError:
      return Status::Unavailable(std::move(detail));
    case ErrorCode::kCancelled: return Status::Cancelled(std::move(detail));
    case ErrorCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(detail));
    case ErrorCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(detail));
    case ErrorCode::kUnknownTable:
      return Status::NotFound(std::move(detail));
    case ErrorCode::kInternal: return Status::Internal(std::move(detail));
  }
  return Status::Internal(std::move(detail));
}

ErrorCode ToErrorCode(const Status& status) {
  switch (status.code) {
    case StatusCode::kOk: return ErrorCode::kNone;
    case StatusCode::kCancelled: return ErrorCode::kCancelled;
    case StatusCode::kDeadlineExceeded: return ErrorCode::kDeadlineExceeded;
    case StatusCode::kResourceExhausted: return ErrorCode::kResourceExhausted;
    case StatusCode::kInvalidArgument: return ErrorCode::kBadQuery;
    case StatusCode::kNotFound: return ErrorCode::kUnknownTable;
    case StatusCode::kUnavailable: return ErrorCode::kIoError;
    case StatusCode::kDataLoss: return ErrorCode::kCrcMismatch;
    case StatusCode::kFailedPrecondition: return ErrorCode::kProtocolViolation;
    case StatusCode::kUnimplemented: return ErrorCode::kBadQuery;
    case StatusCode::kInternal: return ErrorCode::kInternal;
  }
  return ErrorCode::kInternal;
}

void EncodeHeader(const FrameHeader& header, uint8_t out[kHeaderSize]) {
  std::string buf;
  buf.reserve(kHeaderSize);
  WireWriter w(&buf);
  w.U32(header.magic);
  w.U8(header.version);
  w.U8(header.type);
  w.U16(header.flags);
  w.U32(header.payload_len);
  w.U32(header.payload_crc);
  w.U64(header.request_id);
  std::memcpy(out, buf.data(), kHeaderSize);
}

FrameHeader DecodeHeader(const uint8_t in[kHeaderSize]) {
  WireReader r(in, kHeaderSize);
  FrameHeader h;
  h.magic = r.U32();
  h.version = r.U8();
  h.type = r.U8();
  h.flags = r.U16();
  h.payload_len = r.U32();
  h.payload_crc = r.U32();
  h.request_id = r.U64();
  return h;
}

std::string SealFrame(FrameType type, uint16_t flags, uint64_t request_id,
                      const std::string& payload) {
  FrameHeader header;
  header.type = static_cast<uint8_t>(type);
  header.flags = flags;
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.payload_crc = Crc32c(payload.data(), payload.size());
  header.request_id = request_id;
  std::string frame;
  frame.resize(kHeaderSize);
  EncodeHeader(header, reinterpret_cast<uint8_t*>(frame.data()));
  frame += payload;
  return frame;
}

void WireWriter::Str(const std::string& s) {
  const size_t n = s.size() < 65535 ? s.size() : 65535;
  U16(static_cast<uint16_t>(n));
  Raw(s.data(), n);
}

std::string WireReader::Str() {
  const uint16_t n = U16();
  if (!ok_ || n_ - pos_ < n) {
    ok_ = false;
    return std::string();
  }
  std::string s(reinterpret_cast<const char*>(p_ + pos_), n);
  pos_ += n;
  return s;
}

bool WireReader::Array(void* out, size_t n, size_t elem_size) {
  const size_t bytes = n * elem_size;
  if (!ok_ || n_ - pos_ < bytes) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, p_ + pos_, bytes);
  pos_ += bytes;
  return true;
}

}  // namespace net
}  // namespace mcsort

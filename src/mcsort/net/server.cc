#include "mcsort/net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "mcsort/common/options.h"
#include "mcsort/common/timer.h"
#include "mcsort/dist/merge_keys.h"

namespace mcsort {
namespace net {

using Clock = std::chrono::steady_clock;

ServerOptions ServerOptions::FromEnv() {
  // Delegate to the typed process config (common/options.h) — one parser
  // for the MCSORT_HOST / MCSORT_PORT / MCSORT_MAX_CONNS spellings.
  const mcsort::ServerOptions env = mcsort::ServerOptions::FromEnv();
  ServerOptions options;
  options.host = env.host;
  options.port = env.port;
  options.max_connections = env.max_connections;
  options.scratch_budget_bytes = ExecOptions::FromEnv().scratch_budget_bytes;
  return options;
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

struct McsortServer::Conn {
  explicit Conn(size_t max_payload) : assembler(max_payload) {}

  int fd = -1;
  uint64_t id = 0;
  FrameAssembler assembler;
  bool hello_done = false;
  // Loop-thread-only: close once the outbound queue drains.
  bool close_after_flush = false;
  bool want_write = false;  // current epoll interest includes EPOLLOUT
  Clock::time_point last_activity{};

  // Everything below is shared with executor workers, under out_mu.
  std::mutex out_mu;
  bool closed = false;               // tombstone: drop late worker output
  std::deque<std::string> out;       // sealed frames awaiting write
  size_t out_offset = 0;             // sent prefix of out.front()
  bool query_running = false;
  uint64_t inflight_request = 0;
  CancellationSource cancel;         // replaced per query
};

struct McsortServer::Job {
  // What the worker should do. Table ops (snapshot save/load) and DML run
  // on the same worker pool as queries so the event loop never touches a
  // disk or a version mutex.
  enum class Kind { kQuery, kSaveTable, kLoadTable, kDml };

  Kind kind = Kind::kQuery;
  std::shared_ptr<Conn> conn;
  uint64_t request_id = 0;
  // Catalog name the worker resolves (empty = default table). Resolution
  // happens on the worker, not the loop thread, because an unloaded
  // catalog table materializes from disk on first use.
  std::string table_name;
  QuerySpec spec;
  delta::DmlCommand dml;
  bool want_merge_keys = false;
  bool has_deadline = false;
  Clock::time_point deadline{};
  CancellationSource cancel;
};

struct McsortServer::NetCounters {
  Counter* accepted;
  Counter* closed;
  Counter* busy_rejects;
  Counter* bytes_in;
  Counter* bytes_out;
  Counter* frames_in;
  Counter* frames_out;
  Counter* frame_errors;
  Counter* timeouts;
  Counter* queries;
  Counter* queries_ok;
  Counter* cancels;
  Histogram* query_seconds;

  explicit NetCounters(MetricsRegistry* metrics)
      : accepted(metrics->counter("net.accepted")),
        closed(metrics->counter("net.closed")),
        busy_rejects(metrics->counter("net.busy_rejects")),
        bytes_in(metrics->counter("net.bytes_in")),
        bytes_out(metrics->counter("net.bytes_out")),
        frames_in(metrics->counter("net.frames_in")),
        frames_out(metrics->counter("net.frames_out")),
        frame_errors(metrics->counter("net.frame_errors")),
        timeouts(metrics->counter("net.timeouts")),
        queries(metrics->counter("net.queries")),
        queries_ok(metrics->counter("net.queries_ok")),
        cancels(metrics->counter("net.cancels")),
        query_seconds(metrics->histogram("net.query_seconds")) {}
};

namespace {

// Executor outcomes reach the wire through the unified status hub: the
// ExecStatus is lifted to mcsort::Status and serialized with the one wire
// mapping, so a remote peer sees exactly what a local caller would.
ErrorCode ErrorCodeOf(const ExecStatus& status) {
  if (status.ok()) return ErrorCode::kInternal;  // "error" path only
  return ToErrorCode(status.ToStatus());
}

bool ColumnsExist(const Table& table, const std::vector<std::string>& names,
                  std::string* detail) {
  for (const std::string& name : names) {
    if (!table.HasColumn(name)) {
      *detail = "unknown column: " + name;
      return false;
    }
  }
  return true;
}

}  // namespace

// The engine CHECK-aborts on clause combinations ResolveSortAttrs rejects
// and on unknown column names; network input must be screened here so a
// hostile frame degrades to a typed ERROR instead of killing the process.
ErrorCode ValidateSpec(const Table& table, const QuerySpec& spec,
                       std::string* detail) {
  const bool has_group = !spec.group_by.empty();
  const bool has_order = !spec.order_by.empty();
  const bool has_partition = !spec.partition_by.empty();
  if (has_group + has_order + has_partition != 1) {
    *detail = "exactly one of GROUP BY / ORDER BY / PARTITION BY required";
    return ErrorCode::kBadQuery;
  }
  if (has_partition && spec.window_order_column.empty()) {
    *detail = "PARTITION BY requires a window order column";
    return ErrorCode::kBadQuery;
  }
  if (!has_partition && !spec.window_order_column.empty()) {
    *detail = "window order column without PARTITION BY";
    return ErrorCode::kBadQuery;
  }

  std::vector<std::string> filter_columns;
  for (const FilterSpec& f : spec.filters) filter_columns.push_back(f.column);
  if (!ColumnsExist(table, filter_columns, detail) ||
      !ColumnsExist(table, spec.group_by, detail) ||
      !ColumnsExist(table, spec.partition_by, detail)) {
    return ErrorCode::kBadQuery;
  }
  for (const auto& [column, order] : spec.order_by) {
    (void)order;
    if (!table.HasColumn(column)) {
      *detail = "unknown column: " + column;
      return ErrorCode::kBadQuery;
    }
  }
  if (has_partition && !table.HasColumn(spec.window_order_column)) {
    *detail = "unknown column: " + spec.window_order_column;
    return ErrorCode::kBadQuery;
  }

  if (!spec.aggregates.empty() && !has_group) {
    *detail = "aggregates require GROUP BY";
    return ErrorCode::kBadQuery;
  }
  for (const AggregateSpec& agg : spec.aggregates) {
    if (agg.op == AggOp::kCount && agg.column.empty()) continue;
    if (!table.HasColumn(agg.column)) {
      *detail = "unknown aggregate column: " + agg.column;
      return ErrorCode::kBadQuery;
    }
  }

  if (!spec.result_order.empty() && !has_group) {
    *detail = "result ordering requires GROUP BY";
    return ErrorCode::kBadQuery;
  }
  for (const ResultOrderSpec& ro : spec.result_order) {
    if (ro.key.rfind("agg:", 0) == 0) {
      char* end = nullptr;
      const long index = std::strtol(ro.key.c_str() + 4, &end, 10);
      if (end == ro.key.c_str() + 4 || *end != '\0' || index < 0 ||
          static_cast<size_t>(index) >= spec.aggregates.size()) {
        *detail = "bad result-order aggregate key: " + ro.key;
        return ErrorCode::kBadQuery;
      }
    } else if (std::find(spec.group_by.begin(), spec.group_by.end(), ro.key) ==
               spec.group_by.end()) {
      *detail = "result-order key not in GROUP BY: " + ro.key;
      return ErrorCode::kBadQuery;
    }
  }
  return ErrorCode::kNone;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

McsortServer::McsortServer(QueryService* service, const ServerOptions& options)
    : service_(service),
      options_(options),
      counters_(std::make_unique<NetCounters>(&service->metrics())) {
  options_.max_connections = std::max(1, options_.max_connections);
  options_.max_inflight_queries = std::max(1, options_.max_inflight_queries);
  options_.exec_threads = std::max(1, options_.exec_threads);
}

McsortServer::~McsortServer() { Shutdown(); }

bool McsortServer::Start(std::string* error) {
  const auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) < 0) return fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return fail("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return fail("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return fail("epoll_ctl(wake)");
  }

  running_.store(true, std::memory_order_release);
  stop_workers_.store(false, std::memory_order_release);
  workers_.reserve(options_.exec_threads);
  for (int i = 0; i < options_.exec_threads; ++i) {
    workers_.emplace_back([this] { WorkerThread(); });
  }
  loop_thread_ = std::thread([this] { LoopThread(); });
  return true;
}

void McsortServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    // write(2) to an eventfd is async-signal-safe; a short/failed write
    // only delays the drain until the next epoll timeout tick.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void McsortServer::Shutdown() {
  if (loop_thread_.joinable()) {
    RequestDrain();
    loop_thread_.join();
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    stop_workers_.store(true, std::memory_order_release);
  }
  jobs_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void McsortServer::WaitUntilStopped() {
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void McsortServer::WakeLoop() {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void McsortServer::LoopThread() {
  epoll_event events[64];
  Clock::time_point last_sweep = Clock::now();
  bool stop = false;
  while (!stop) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(conn);
      if (conns_.count(fd) != 0 && (events[i].events & EPOLLOUT)) {
        HandleWritable(conn);
      }
    }

    // Flush queues workers filled since the last pass (the eventfd only
    // says "something changed", not which connection).
    std::vector<std::shared_ptr<Conn>> flushable;
    for (const auto& [fd, conn] : conns_) {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      if (!conn->out.empty() || conn->close_after_flush) {
        flushable.push_back(conn);
      }
    }
    for (const std::shared_ptr<Conn>& conn : flushable) {
      if (conns_.count(conn->fd) != 0) HandleWritable(conn);
    }

    if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain();
    }
    const Clock::time_point now = Clock::now();
    if (now - last_sweep > std::chrono::milliseconds(100)) {
      last_sweep = now;
      SweepTimeouts();
    }
    if (draining_) {
      // Retire connections with nothing left to say; cut everyone off at
      // the drain deadline (cancelling their queries on the way out).
      std::vector<std::shared_ptr<Conn>> idle;
      const bool expired = now >= drain_deadline_;
      for (const auto& [fd, conn] : conns_) {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        if (expired || (!conn->query_running && conn->out.empty())) {
          idle.push_back(conn);
        }
      }
      for (const std::shared_ptr<Conn>& conn : idle) CloseConn(conn);
      if (conns_.empty()) stop = true;
    }
  }
  for (const auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->closed = true;
    if (conn->query_running) conn->cancel.Cancel();
    ::close(conn->fd);
  }
  conns_.clear();
  active_conns_.store(0, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void McsortServer::BeginDrain() {
  draining_ = true;
  drain_deadline_ =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             std::max(0.0, options_.drain_timeout_seconds)));
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void McsortServer::HandleAccept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure
    }
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      // Typed rejection: the socket buffer of a fresh connection always
      // has room for one small frame, so this best-effort write lands.
      const std::string frame =
          SealFrame(FrameType::kError, 0, 0,
                    EncodeError({ErrorCode::kBusy, "connection limit"}));
      [[maybe_unused]] const ssize_t w =
          ::write(fd, frame.data(), frame.size());
      ::close(fd);
      counters_->busy_rejects->Increment();
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(options_.max_payload_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity = Clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    counters_->accepted->Increment();
  }
}

void McsortServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conns_.erase(conn->fd) == 0) return;  // already closed
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->closed = true;
    // A client that vanishes mid-query must not keep burning CPU.
    if (conn->query_running) conn->cancel.Cancel();
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  counters_->closed->Increment();
}

void McsortServer::UpdateEpoll(const std::shared_ptr<Conn>& conn) {
  bool want_write;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    want_write = !conn->out.empty();
  }
  if (want_write == conn->want_write) return;
  conn->want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void McsortServer::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[1 << 16];
  for (;;) {
    const ssize_t got = ::read(conn->fd, buf, sizeof(buf));
    if (got > 0) {
      conn->assembler.Append(buf, static_cast<size_t>(got));
      conn->last_activity = Clock::now();
      counters_->bytes_in->Add(static_cast<uint64_t>(got));
      if (got < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (got == 0) {
      CloseConn(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn);
    return;
  }

  Frame frame;
  ErrorCode error;
  bool fatal;
  for (;;) {
    if (conns_.count(conn->fd) == 0) return;  // closed while dispatching
    const FrameAssembler::Next next =
        conn->assembler.Pull(&frame, &error, &fatal);
    if (next == FrameAssembler::Next::kNeedMore) break;
    if (next == FrameAssembler::Next::kBadFrame) {
      counters_->frame_errors->Increment();
      SendError(conn, 0, error, "frame rejected", /*close_after=*/fatal);
      if (fatal) return;  // length prefix untrustworthy: stop parsing
      continue;
    }
    counters_->frames_in->Increment();
    DispatchFrame(conn, frame);
  }
}

void McsortServer::HandleWritable(const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    while (!conn->out.empty()) {
      const std::string& front = conn->out.front();
      const ssize_t written =
          ::write(conn->fd, front.data() + conn->out_offset,
                  front.size() - conn->out_offset);
      if (written < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_now = true;  // broken pipe etc.
        break;
      }
      conn->out_offset += static_cast<size_t>(written);
      conn->last_activity = Clock::now();
      counters_->bytes_out->Add(static_cast<uint64_t>(written));
      if (conn->out_offset == front.size()) {
        conn->out.pop_front();
        conn->out_offset = 0;
        counters_->frames_out->Increment();
      }
    }
    if (conn->out.empty() && conn->close_after_flush) close_now = true;
  }
  if (close_now) {
    CloseConn(conn);
    return;
  }
  UpdateEpoll(conn);
}

void McsortServer::EnqueueFrames(const std::shared_ptr<Conn>& conn,
                                 std::vector<std::string> frames,
                                 bool close_after) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) return;
    for (std::string& frame : frames) conn->out.push_back(std::move(frame));
    if (close_after) conn->close_after_flush = true;
  }
  // Called from the loop thread: flush immediately (usually succeeds in
  // one write and avoids an extra epoll round-trip).
  HandleWritable(conn);
}

void McsortServer::SendError(const std::shared_ptr<Conn>& conn,
                             uint64_t request_id, ErrorCode code,
                             const std::string& detail, bool close_after) {
  std::vector<std::string> frames;
  frames.push_back(SealFrame(FrameType::kError, 0, request_id,
                             EncodeError({code, detail})));
  EnqueueFrames(conn, std::move(frames), close_after);
}

void McsortServer::SweepTimeouts() {
  const Clock::time_point now = Clock::now();
  std::vector<std::shared_ptr<Conn>> timed_out;
  std::vector<std::shared_ptr<Conn>> idle_out;
  for (const auto& [fd, conn] : conns_) {
    bool io_pending;
    bool running;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      io_pending = conn->assembler.pending_bytes() > 0 || !conn->out.empty();
      running = conn->query_running;
    }
    const double idle =
        std::chrono::duration<double>(now - conn->last_activity).count();
    if (io_pending && options_.io_timeout_seconds > 0 &&
        idle > options_.io_timeout_seconds) {
      timed_out.push_back(conn);
    } else if (!io_pending && !running && options_.idle_timeout_seconds > 0 &&
               idle > options_.idle_timeout_seconds) {
      idle_out.push_back(conn);
    }
  }
  for (const std::shared_ptr<Conn>& conn : timed_out) {
    counters_->timeouts->Increment();
    CloseConn(conn);
  }
  for (const std::shared_ptr<Conn>& conn : idle_out) CloseConn(conn);
}

// ---------------------------------------------------------------------------
// Frame dispatch
// ---------------------------------------------------------------------------

std::string McsortServer::MetricsText() {
  std::string text = service_->DumpMetrics();
  char line[64];
  std::snprintf(line, sizeof(line), "net.active %d\n",
                active_conns_.load(std::memory_order_relaxed));
  text += line;
  std::snprintf(line, sizeof(line), "net.inflight %d\n",
                inflight_.load(std::memory_order_relaxed));
  text += line;
  return text;
}

std::string McsortServer::SchemaText() {
  SchemaReply reply;
  for (const std::string& name : service_->ListTables()) {
    const Table* table = service_->FindTable(name);
    if (table == nullptr) continue;
    TableSchema schema = SchemaOf(name, *table);
    // Write-path introspection: a written table reports its live row
    // count (base minus tombstones plus delta), its epoch, and how many
    // delta rows await compaction — the signal dml_smoke polls to watch
    // compaction progress.
    const QueryService::DeltaInfo info = service_->GetDeltaInfo(name);
    if (info.has_version) {
      schema.row_count = info.live_rows;
      schema.epoch = info.epoch;
      schema.delta_rows = info.delta_rows;
    }
    reply.tables.push_back(std::move(schema));
  }
  return EncodeSchemaReply(reply);
}

void McsortServer::DispatchFrame(const std::shared_ptr<Conn>& conn,
                                 const Frame& frame) {
  const uint64_t id = frame.header.request_id;
  if (!IsClientFrameType(frame.header.type)) {
    counters_->frame_errors->Increment();
    SendError(conn, id, ErrorCode::kUnknownType, "not a client frame type");
    return;
  }
  switch (frame.type()) {
    case FrameType::kHello: {
      HelloRequest hello;
      if (!DecodeHello(frame.payload, &hello)) {
        SendError(conn, id, ErrorCode::kMalformedQuery, "bad HELLO payload");
        return;
      }
      if (hello.version < kMinProtocolVersion ||
          hello.version > kProtocolVersion) {
        char detail[64];
        std::snprintf(detail, sizeof(detail),
                      "server speaks versions %d..%d, peer sent %d",
                      kMinProtocolVersion, kProtocolVersion, hello.version);
        SendError(conn, id, ErrorCode::kUnsupportedVersion, detail,
                  /*close_after=*/true);
        return;
      }
      if (conn->hello_done) {
        SendError(conn, id, ErrorCode::kProtocolViolation, "duplicate HELLO");
        return;
      }
      conn->hello_done = true;
      HelloReply reply;
      reply.capabilities = kCapMergeKeys;
      reply.server_name = options_.server_name;
      reply.default_table = service_->DefaultTableName();
      std::vector<std::string> frames;
      frames.push_back(SealFrame(FrameType::kHelloAck, 0, id,
                                 EncodeHelloReply(reply)));
      EnqueueFrames(conn, std::move(frames));
      return;
    }
    case FrameType::kPing: {
      std::vector<std::string> frames;
      frames.push_back(SealFrame(FrameType::kPong, 0, id, frame.payload));
      EnqueueFrames(conn, std::move(frames));
      return;
    }
    case FrameType::kMetricsRequest: {
      std::vector<std::string> frames;
      frames.push_back(
          SealFrame(FrameType::kMetricsReply, 0, id, MetricsText()));
      EnqueueFrames(conn, std::move(frames));
      return;
    }
    case FrameType::kSchemaRequest: {
      std::vector<std::string> frames;
      frames.push_back(SealFrame(FrameType::kSchemaReply, 0, id, SchemaText()));
      EnqueueFrames(conn, std::move(frames));
      return;
    }
    case FrameType::kCancel: {
      CancellationSource cancel;
      bool fire = false;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        if (conn->query_running && conn->inflight_request == id) {
          cancel = conn->cancel;
          fire = true;
        }
      }
      if (fire) {
        cancel.Cancel();
        counters_->cancels->Increment();
      }
      return;  // fire-and-forget: the query's reply carries the outcome
    }
    case FrameType::kGoodbye:
      EnqueueFrames(conn, {}, /*close_after=*/true);
      return;
    case FrameType::kQuery:
      HandleQueryFrame(conn, frame);
      return;
    case FrameType::kSaveTable:
    case FrameType::kLoadTable:
      HandleTableOpFrame(conn, frame);
      return;
    case FrameType::kDml:
      HandleDmlFrame(conn, frame);
      return;
    default:
      SendError(conn, id, ErrorCode::kUnknownType, "unhandled frame type");
      return;
  }
}

void McsortServer::HandleQueryFrame(const std::shared_ptr<Conn>& conn,
                                    const Frame& frame) {
  const uint64_t id = frame.header.request_id;
  counters_->queries->Increment();
  if (!conn->hello_done) {
    SendError(conn, id, ErrorCode::kProtocolViolation, "QUERY before HELLO");
    return;
  }
  if (draining_) {
    SendError(conn, id, ErrorCode::kShuttingDown, "server draining");
    return;
  }
  bool already_running;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    already_running = conn->query_running;
  }
  if (already_running) {
    counters_->busy_rejects->Increment();
    SendError(conn, id, ErrorCode::kBusy, "a query is already in flight");
    return;
  }
  if (inflight_.load(std::memory_order_relaxed) >=
      options_.max_inflight_queries) {
    counters_->busy_rejects->Increment();
    SendError(conn, id, ErrorCode::kBusy, "server at max in-flight queries");
    return;
  }

  QueryEnvelope envelope;
  if (!DecodeQuery(frame.payload, &envelope)) {
    SendError(conn, id, ErrorCode::kMalformedQuery,
              "QUERY payload did not decode");
    return;
  }

  // Table resolution and spec validation happen on the worker: resolving
  // an unloaded catalog table does disk IO, which must never block the
  // event loop. The worker answers kUnknownTable / kBadQuery the same way
  // it answers execution errors.
  Job job;
  job.conn = conn;
  job.request_id = id;
  job.table_name = std::move(envelope.table);
  job.spec = std::move(envelope.spec);
  job.want_merge_keys = envelope.want_merge_keys;
  if (envelope.deadline_micros > 0) {
    job.has_deadline = true;
    job.deadline =
        Clock::now() + std::chrono::microseconds(envelope.deadline_micros);
  }
  EnqueueJob(std::move(job));
}

void McsortServer::HandleTableOpFrame(const std::shared_ptr<Conn>& conn,
                                      const Frame& frame) {
  const uint64_t id = frame.header.request_id;
  if (!conn->hello_done) {
    SendError(conn, id, ErrorCode::kProtocolViolation,
              "table op before HELLO");
    return;
  }
  if (draining_) {
    SendError(conn, id, ErrorCode::kShuttingDown, "server draining");
    return;
  }
  bool already_running;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    already_running = conn->query_running;
  }
  if (already_running) {
    counters_->busy_rejects->Increment();
    SendError(conn, id, ErrorCode::kBusy, "a request is already in flight");
    return;
  }
  if (inflight_.load(std::memory_order_relaxed) >=
      options_.max_inflight_queries) {
    counters_->busy_rejects->Increment();
    SendError(conn, id, ErrorCode::kBusy, "server at max in-flight requests");
    return;
  }
  TableOpRequest request;
  if (!DecodeTableOp(frame.payload, &request)) {
    SendError(conn, id, ErrorCode::kMalformedQuery,
              "table op payload did not decode");
    return;
  }
  Job job;
  job.kind = frame.type() == FrameType::kSaveTable ? Job::Kind::kSaveTable
                                                   : Job::Kind::kLoadTable;
  job.conn = conn;
  job.request_id = id;
  job.table_name = std::move(request.table);
  EnqueueJob(std::move(job));
}

void McsortServer::HandleDmlFrame(const std::shared_ptr<Conn>& conn,
                                  const Frame& frame) {
  const uint64_t id = frame.header.request_id;
  if (!conn->hello_done) {
    SendError(conn, id, ErrorCode::kProtocolViolation, "DML before HELLO");
    return;
  }
  if (draining_) {
    SendError(conn, id, ErrorCode::kShuttingDown, "server draining");
    return;
  }
  bool already_running;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    already_running = conn->query_running;
  }
  if (already_running) {
    counters_->busy_rejects->Increment();
    SendError(conn, id, ErrorCode::kBusy, "a request is already in flight");
    return;
  }
  if (inflight_.load(std::memory_order_relaxed) >=
      options_.max_inflight_queries) {
    SendError(conn, id, ErrorCode::kBusy, "server at max in-flight requests");
    counters_->busy_rejects->Increment();
    return;
  }
  Job job;
  job.kind = Job::Kind::kDml;
  if (!DecodeDml(frame.payload, &job.dml)) {
    SendError(conn, id, ErrorCode::kMalformedQuery,
              "DML payload did not decode");
    return;
  }
  job.conn = conn;
  job.request_id = id;
  job.table_name = job.dml.table;
  EnqueueJob(std::move(job));
}

void McsortServer::EnqueueJob(Job job) {
  {
    std::lock_guard<std::mutex> lock(job.conn->out_mu);
    job.conn->query_running = true;
    job.conn->inflight_request = job.request_id;
    job.conn->cancel = job.cancel;
  }
  inflight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
}

// ---------------------------------------------------------------------------
// Executor workers
// ---------------------------------------------------------------------------

void McsortServer::WorkerThread() {
  // One session per (worker, table name): QuerySession is single-threaded
  // by contract, and a worker runs one query at a time. The cached
  // shared_ptr pins the table across catalog eviction while its session
  // lives; a LOAD_TABLE that rebinds the name is picked up on the next
  // query because the cached pointer no longer matches the resolution.
  struct CachedSession {
    std::shared_ptr<const Table> table;
    std::unique_ptr<QuerySession> session;
  };
  std::unordered_map<std::string, CachedSession> sessions;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock, [this] {
        return stop_workers_.load(std::memory_order_acquire) ||
               !jobs_.empty();
      });
      if (jobs_.empty()) {
        if (stop_workers_.load(std::memory_order_acquire)) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }

    std::vector<std::string> frames;
    if (job.kind == Job::Kind::kDml) {
      const delta::DmlOutcome outcome = service_->ApplyDml(job.dml);
      service_->metrics().counter("net.dml")->Increment();
      if (outcome.status.code == StatusCode::kNotFound) {
        frames.push_back(
            SealFrame(FrameType::kError, 0, job.request_id,
                      EncodeError({ErrorCode::kUnknownTable,
                                   outcome.status.detail})));
      } else if (!outcome.status.ok()) {
        // Op-level rejection (bad column list, bad predicate): nothing was
        // applied; answer a typed ERROR like an invalid query.
        frames.push_back(SealFrame(
            FrameType::kError, 0, job.request_id,
            EncodeError({ErrorCode::kBadQuery, outcome.status.detail})));
      } else {
        DmlReply reply;
        reply.ok = true;
        reply.status_code = static_cast<uint8_t>(outcome.status.code);
        reply.detail = outcome.status.detail;
        reply.rows_affected = outcome.rows_affected;
        reply.rows_rejected = outcome.rows_rejected;
        reply.delta_rows = outcome.delta_rows;
        reply.epoch = outcome.epoch;
        reply.row_errors = outcome.row_errors;
        frames.push_back(SealFrame(FrameType::kDmlReply, 0, job.request_id,
                                   EncodeDmlReply(reply)));
      }
      FinishJob(job, std::move(frames));
      continue;
    }
    if (job.kind != Job::Kind::kQuery) {
      Timer timer;
      const bool is_save = job.kind == Job::Kind::kSaveTable;
      const Status status = is_save ? service_->SaveTable(job.table_name)
                                    : service_->LoadTable(job.table_name);
      TableOpReply reply;
      reply.ok = status.ok();
      // The wire reply still speaks the snapshot codec's IoCode; recover it
      // from the unified status (kOk has no IoCode — leave the zero value).
      reply.io_code =
          static_cast<uint8_t>(IoStatus::FromStatus(status).code);
      reply.detail = status.detail;
      reply.seconds = timer.Seconds();
      if (status.ok()) {
        if (const Table* table = service_->FindTable(job.table_name)) {
          reply.rows = table->row_count();
        }
      }
      service_->metrics()
          .counter(is_save ? "net.save_table" : "net.load_table")
          ->Increment();
      frames.push_back(SealFrame(FrameType::kTableOpReply, 0, job.request_id,
                                 EncodeTableOpReply(reply)));
      FinishJob(job, std::move(frames));
      continue;
    }

    Timer timer;
    const std::shared_ptr<const Table> table =
        service_->FindTableShared(job.table_name);
    if (table == nullptr) {
      frames.push_back(
          SealFrame(FrameType::kError, 0, job.request_id,
                    EncodeError({ErrorCode::kUnknownTable,
                                 "unknown table: " + job.table_name})));
      FinishJob(job, std::move(frames));
      continue;
    }
    std::string detail;
    const ErrorCode invalid = ValidateSpec(*table, job.spec, &detail);
    if (invalid != ErrorCode::kNone) {
      frames.push_back(SealFrame(FrameType::kError, 0, job.request_id,
                                 EncodeError({invalid, detail})));
      FinishJob(job, std::move(frames));
      continue;
    }

    CachedSession& cached = sessions[job.table_name];
    if (cached.session == nullptr || cached.table != table) {
      cached.table = table;
      cached.session = service_->OpenSession(*table);
    }
    ExecContext ctx;
    ctx.WithToken(job.cancel.token());
    if (job.has_deadline) ctx.WithDeadline(job.deadline);
    if (options_.scratch_budget_bytes > 0) {
      ctx.WithScratchBudget(options_.scratch_budget_bytes);
    }
    const ExecResult run = cached.session->Execute(job.spec, ctx);
    counters_->query_seconds->Record(timer.Seconds());

    if (run.ok()) {
      if (job.want_merge_keys) {
        dist::MergeKeys keys =
            dist::ComputeMergeKeys(*table, job.spec, run.result);
        if (!keys.ok) {
          frames.push_back(
              SealFrame(FrameType::kError, 0, job.request_id,
                        EncodeError({ErrorCode::kBadQuery, keys.error})));
          FinishJob(job, std::move(frames));
          continue;
        }
        counters_->queries_ok->Increment();
        ResultExtras extras;
        extras.merge_key_hi = std::move(keys.hi);
        extras.merge_key_lo = std::move(keys.lo);
        extras.group_sizes = std::move(keys.group_sizes);
        extras.global_oids = std::move(keys.global_oids);
        BuildResultFrames(job.request_id, run.result,
                          options_.result_chunk_bytes, &frames, &extras);
        FinishJob(job, std::move(frames));
        continue;
      }
      counters_->queries_ok->Increment();
      BuildResultFrames(job.request_id, run.result,
                        options_.result_chunk_bytes, &frames);
    } else {
      const ErrorCode code = ErrorCodeOf(run.status);
      service_->metrics()
          .counter(std::string("net.query_error.") + ErrorCodeName(code))
          ->Increment();
      frames.push_back(
          SealFrame(FrameType::kError, 0, job.request_id,
                    EncodeError({code, run.status.detail})));
    }
    FinishJob(job, std::move(frames));
  }
}

void McsortServer::FinishJob(Job& job, std::vector<std::string> frames) {
  {
    // One critical section for reply + state clear: a pipelined next
    // request can only be admitted after this reply is fully queued, so
    // responses on a connection never interleave.
    std::lock_guard<std::mutex> lock(job.conn->out_mu);
    if (!job.conn->closed) {
      for (std::string& frame : frames) {
        job.conn->out.push_back(std::move(frame));
      }
    }
    job.conn->query_running = false;
    job.conn->inflight_request = 0;
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  WakeLoop();
}

}  // namespace net
}  // namespace mcsort

// Frame transport: turning a TCP byte stream back into frames.
//
// FrameAssembler is the incremental decoder both ends share: append raw
// socket bytes, pull complete frames. It distinguishes recoverable frame
// errors (CRC mismatch on a well-formed header: the frame is skipped, the
// stream stays in sync) from fatal ones (bad magic / version / oversized
// length: the length prefix can no longer be trusted, so the connection
// must close after reporting the typed error).
//
// The blocking helpers below are the client/tool side; the server's epoll
// loop uses the assembler directly over non-blocking reads.
#ifndef MCSORT_NET_FRAME_IO_H_
#define MCSORT_NET_FRAME_IO_H_

#include <cstddef>
#include <string>

#include "mcsort/net/wire.h"

namespace mcsort {
namespace net {

struct Frame {
  FrameHeader header;
  std::string payload;
  FrameType type() const { return static_cast<FrameType>(header.type); }
  bool last_chunk() const { return (header.flags & kFlagLastChunk) != 0; }
};

class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_payload = kMaxPayloadCap)
      : max_payload_(max_payload < kMaxPayloadCap ? max_payload
                                                  : kMaxPayloadCap) {}

  void Append(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }

  enum class Next {
    kFrame,     // *frame holds the next complete frame
    kNeedMore,  // only a partial frame buffered; feed more bytes
    kBadFrame,  // *error filled; *fatal says whether the stream is dead
  };
  Next Pull(Frame* frame, ErrorCode* error, bool* fatal);

  // Bytes buffered but not yet consumed — nonzero means a frame is in
  // flight, which is what the server's stalled-read timeout watches.
  size_t pending_bytes() const { return buffer_.size() - pos_; }

 private:
  size_t max_payload_;
  std::string buffer_;
  size_t pos_ = 0;  // consumed prefix, compacted opportunistically
};

// ---------------------------------------------------------------------------
// Blocking helpers (client library, probe tool). All return false on
// error/EOF; EINTR is retried internally.
// ---------------------------------------------------------------------------

bool SendAll(int fd, const void* data, size_t n);
inline bool SendAll(int fd, const std::string& bytes) {
  return SendAll(fd, bytes.data(), bytes.size());
}

// One read(2) of up to 64 KiB appended to *buf; false on EOF or error
// (including a receive-timeout set via SO_RCVTIMEO).
bool RecvSome(int fd, std::string* buf);

// Reads until the assembler yields an event. Returns kFrame/kBadFrame as
// the assembler does, or kNeedMore to signal EOF/timeout mid-frame.
FrameAssembler::Next RecvFrame(int fd, FrameAssembler* assembler,
                               Frame* frame, ErrorCode* error, bool* fatal);

}  // namespace net
}  // namespace mcsort

#endif  // MCSORT_NET_FRAME_IO_H_

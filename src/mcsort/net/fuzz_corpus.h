// Hand-written malformed-frame corpus shared by tests/net_test.cc and
// tools/net_probe.cc: every way a hostile or buggy client can garble the
// wire, with the exact typed ERROR the server must answer (and whether it
// may then close the connection). A server that aborts, hangs, or replies
// with the wrong code on any case fails the protocol robustness bar.
//
// The QUERY-shaped cases assume the canonical demo table: columns named
// "a", "b", "c", "m" (what MakeDemoTable in the tools and the net_test
// fixture register). Run each case on a fresh connection — the fatal ones
// poison the stream by design.
#ifndef MCSORT_NET_FUZZ_CORPUS_H_
#define MCSORT_NET_FUZZ_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mcsort/net/protocol.h"
#include "mcsort/net/wire.h"

namespace mcsort {
namespace net {

// What the server must do with the case's bytes.
enum class FuzzExpect {
  kError,       // exactly one ERROR frame with `code`; connection stays up
  kErrorClose,  // ERROR frame with `code`, then the server closes
  kNoReply,     // no reply frame; the server must simply stay healthy
};

struct FuzzCase {
  const char* name;
  bool hello_first;   // perform the HELLO handshake before sending `bytes`
  std::string bytes;  // raw bytes written to the socket verbatim
  FuzzExpect expect;
  ErrorCode code;  // the ERROR frame's code (kError / kErrorClose)
};

namespace fuzz_internal {

inline std::string GoodQueryEnvelope(const std::string& group_column) {
  QueryEnvelope envelope;
  envelope.spec.group_by = {group_column};
  envelope.spec.aggregates.push_back({AggOp::kCount, ""});
  return EncodeQuery(envelope);
}

inline std::string QueryFrame(uint64_t id, const std::string& payload) {
  return SealFrame(FrameType::kQuery, 0, id, payload);
}

}  // namespace fuzz_internal

// Builds the corpus (~20 cases). Deterministic — no RNG, so a failure
// names the exact malformation that broke the server.
inline std::vector<FuzzCase> BuildFuzzCorpus() {
  using fuzz_internal::GoodQueryEnvelope;
  using fuzz_internal::QueryFrame;
  std::vector<FuzzCase> cases;
  const auto add = [&cases](const char* name, bool hello_first,
                            std::string bytes, FuzzExpect expect,
                            ErrorCode code = ErrorCode::kNone) {
    cases.push_back({name, hello_first, std::move(bytes), expect, code});
  };

  // --- Frame-shell malformations -----------------------------------------
  {
    std::string f = SealFrame(FrameType::kPing, 0, 1, "x");
    f[0] = 'Z';  // corrupt the magic
    add("bad_magic", false, std::move(f), FuzzExpect::kErrorClose,
        ErrorCode::kMalformedFrame);
  }
  {
    std::string f = SealFrame(FrameType::kPing, 0, 2, "x");
    f[4] = 9;  // unknown protocol version
    add("bad_version", false, std::move(f), FuzzExpect::kErrorClose,
        ErrorCode::kUnsupportedVersion);
  }
  {
    FrameHeader h;
    h.type = static_cast<uint8_t>(FrameType::kPing);
    h.payload_len = 0x7FFFFFFFu;  // above any payload cap
    h.request_id = 3;
    uint8_t raw[kHeaderSize];
    EncodeHeader(h, raw);
    add("oversized_len", false,
        std::string(reinterpret_cast<char*>(raw), kHeaderSize),
        FuzzExpect::kErrorClose, ErrorCode::kOversizedFrame);
  }
  {
    std::string f = SealFrame(FrameType::kPing, 0, 4, "payload");
    f.back() ^= 0x5A;  // corrupt the payload, not the header
    add("crc_mismatch", false, std::move(f), FuzzExpect::kError,
        ErrorCode::kCrcMismatch);
  }
  add("unknown_type", false,
      SealFrame(static_cast<FrameType>(200), 0, 5, ""), FuzzExpect::kError,
      ErrorCode::kUnknownType);
  // A frame type only the server may emit, sent *to* the server.
  add("server_only_type", false, SealFrame(FrameType::kResult, 0, 6, "data"),
      FuzzExpect::kError, ErrorCode::kUnknownType);
  {
    std::string f = SealFrame(FrameType::kPing, 0, 7, "x");
    add("truncated_header", false, f.substr(0, 8), FuzzExpect::kNoReply);
  }
  {
    std::string f = SealFrame(FrameType::kQuery, 0, 8,
                              GoodQueryEnvelope("a"));
    add("truncated_payload", true, f.substr(0, f.size() / 2),
        FuzzExpect::kNoReply);
  }

  // --- Handshake violations ----------------------------------------------
  add("query_before_hello", false, QueryFrame(9, GoodQueryEnvelope("a")),
      FuzzExpect::kError, ErrorCode::kProtocolViolation);
  {
    HelloRequest hello;
    hello.client_name = "twice";
    add("duplicate_hello", true,
        SealFrame(FrameType::kHello, 0, 10, EncodeHello(hello)),
        FuzzExpect::kError, ErrorCode::kProtocolViolation);
  }
  add("hello_garbage_payload", false,
      SealFrame(FrameType::kHello, 0, 11, "\x01"), FuzzExpect::kError,
      ErrorCode::kMalformedQuery);
  {
    HelloRequest hello;
    hello.version = 42;  // well-formed payload, impossible version
    add("hello_future_version", false,
        SealFrame(FrameType::kHello, 0, 12, EncodeHello(hello)),
        FuzzExpect::kErrorClose, ErrorCode::kUnsupportedVersion);
  }

  // --- QUERY payload malformations (after a clean handshake) -------------
  add("query_empty_payload", true, QueryFrame(13, ""), FuzzExpect::kError,
      ErrorCode::kMalformedQuery);
  add("query_random_bytes", true,
      QueryFrame(14, "\x00\x01\x02garbage\xff\xfe\xfd payload!"),
      FuzzExpect::kError, ErrorCode::kMalformedQuery);
  {
    std::string payload = GoodQueryEnvelope("a");
    payload += "tail";  // trailing garbage after a well-formed spec
    add("query_trailing_garbage", true, QueryFrame(15, std::move(payload)),
        FuzzExpect::kError, ErrorCode::kMalformedQuery);
  }
  {
    // deadline + empty table + empty id, then a filter count of 65535 over
    // a near-empty payload — the clause-count sanity cap must reject it.
    std::string payload;
    WireWriter w(&payload);
    w.U64(0);
    w.Str("");
    w.Str("");
    w.U16(65535);
    add("query_absurd_clause_count", true, QueryFrame(16, std::move(payload)),
        FuzzExpect::kError, ErrorCode::kMalformedQuery);
  }
  {
    // One filter whose CompareOp byte is far out of range.
    std::string payload;
    WireWriter w(&payload);
    w.U64(0);
    w.Str("");
    w.Str("");
    w.U16(1);   // 1 filter
    w.Str("a");
    w.U8(99);   // bad CompareOp
    w.U8(0);
    w.U64(0);
    w.U64(0);
    add("query_bad_enum", true, QueryFrame(17, std::move(payload)),
        FuzzExpect::kError, ErrorCode::kMalformedQuery);
  }

  // --- Semantically invalid specs (decode fine, must not reach the
  // engine's CHECKs) --------------------------------------------------------
  add("query_unknown_column", true,
      QueryFrame(18, GoodQueryEnvelope("no_such_column")), FuzzExpect::kError,
      ErrorCode::kBadQuery);
  {
    QueryEnvelope envelope;  // no GROUP BY / ORDER BY / PARTITION BY at all
    add("query_no_sort_clause", true,
        QueryFrame(19, EncodeQuery(envelope)), FuzzExpect::kError,
        ErrorCode::kBadQuery);
  }
  {
    QueryEnvelope envelope;  // two sort clauses at once
    envelope.spec.group_by = {"a"};
    envelope.spec.order_by = {{"b", SortOrder::kAscending}};
    add("query_two_sort_clauses", true,
        QueryFrame(20, EncodeQuery(envelope)), FuzzExpect::kError,
        ErrorCode::kBadQuery);
  }
  {
    QueryEnvelope envelope;  // result-order names a nonexistent aggregate
    envelope.spec.group_by = {"a"};
    envelope.spec.aggregates.push_back({AggOp::kCount, ""});
    envelope.spec.result_order.push_back({"agg:99", SortOrder::kAscending});
    add("query_bad_result_order", true,
        QueryFrame(21, EncodeQuery(envelope)), FuzzExpect::kError,
        ErrorCode::kBadQuery);
  }
  {
    QueryEnvelope envelope;  // aggregates without GROUP BY
    envelope.spec.order_by = {{"a", SortOrder::kAscending}};
    envelope.spec.aggregates.push_back({AggOp::kSum, "m"});
    add("query_agg_without_group", true,
        QueryFrame(22, EncodeQuery(envelope)), FuzzExpect::kError,
        ErrorCode::kBadQuery);
  }
  {
    QueryEnvelope envelope;
    envelope.table = "no_such_table";
    envelope.spec.group_by = {"a"};
    add("query_unknown_table", true, QueryFrame(23, EncodeQuery(envelope)),
        FuzzExpect::kError, ErrorCode::kUnknownTable);
  }
  // CANCEL for a request id that is not in flight: fire-and-forget no-op.
  add("cancel_unknown_id", true, SealFrame(FrameType::kCancel, 0, 999, ""),
      FuzzExpect::kNoReply);

  // --- DML malformations (protocol v3 write path) --------------------------
  {
    delta::DmlCommand cmd;  // well-formed INSERT, but no handshake yet
    cmd.columns = {"a", "b", "c", "m"};
    cmd.rows.push_back({delta::DmlValue::Int(1), delta::DmlValue::Int(2),
                        delta::DmlValue::Int(3), delta::DmlValue::Int(4)});
    add("dml_before_hello", false,
        SealFrame(FrameType::kDml, 0, 24, EncodeDml(cmd)), FuzzExpect::kError,
        ErrorCode::kProtocolViolation);
  }
  add("dml_empty_payload", true, SealFrame(FrameType::kDml, 0, 25, ""),
      FuzzExpect::kError, ErrorCode::kMalformedQuery);
  {
    std::string payload;
    WireWriter w(&payload);
    w.U8(77);  // not a DmlOp
    w.Str("");
    add("dml_bad_op", true, SealFrame(FrameType::kDml, 0, 26, std::move(payload)),
        FuzzExpect::kError, ErrorCode::kMalformedQuery);
  }
  {
    delta::DmlCommand cmd;  // 4-column 2-row INSERT, cut mid row payload
    cmd.columns = {"a", "b", "c", "m"};
    cmd.rows.assign(2, {delta::DmlValue::Int(1), delta::DmlValue::Int(2),
                        delta::DmlValue::Int(3), delta::DmlValue::Int(4)});
    std::string payload = EncodeDml(cmd);
    payload.resize(payload.size() - 10);
    add("dml_truncated_rows", true,
        SealFrame(FrameType::kDml, 0, 27, std::move(payload)),
        FuzzExpect::kError, ErrorCode::kMalformedQuery);
  }
  {
    // INSERT claiming 4 billion rows over a near-empty payload — the row
    // count sanity cap must reject before any allocation.
    std::string payload;
    WireWriter w(&payload);
    w.U8(1);  // kInsert
    w.Str("");
    w.U16(1);
    w.Str("a");
    w.U32(0xFFFFFFFFu);
    add("dml_absurd_row_count", true,
        SealFrame(FrameType::kDml, 0, 28, std::move(payload)),
        FuzzExpect::kError, ErrorCode::kMalformedQuery);
  }
  {
    std::string payload;
    WireWriter w(&payload);
    w.U8(1);  // kInsert
    w.Str("");
    w.U16(1);
    w.Str("a");
    w.U32(1);
    w.U8(9);  // not a value tag
    w.I64(0);
    add("dml_bad_value_tag", true,
        SealFrame(FrameType::kDml, 0, 29, std::move(payload)),
        FuzzExpect::kError, ErrorCode::kMalformedQuery);
  }
  {
    delta::DmlCommand cmd;  // well-formed INSERT with the payload CRC flipped
    cmd.columns = {"a", "b", "c", "m"};
    cmd.rows.push_back({delta::DmlValue::Int(1), delta::DmlValue::Int(2),
                        delta::DmlValue::Int(3), delta::DmlValue::Int(4)});
    std::string f = SealFrame(FrameType::kDml, 0, 30, EncodeDml(cmd));
    f.back() ^= 0x5A;  // corrupt the payload, not the header
    add("dml_crc_flip", true, std::move(f), FuzzExpect::kError,
        ErrorCode::kCrcMismatch);
  }
  {
    delta::DmlCommand cmd;
    cmd.table = "no_such_table";
    cmd.columns = {"a"};
    cmd.rows.push_back({delta::DmlValue::Int(1)});
    add("dml_unknown_table", true,
        SealFrame(FrameType::kDml, 0, 31, EncodeDml(cmd)), FuzzExpect::kError,
        ErrorCode::kUnknownTable);
  }
  {
    delta::DmlCommand cmd;  // decodes fine, but names only 2 of 4 columns
    cmd.columns = {"a", "b"};
    cmd.rows.push_back({delta::DmlValue::Int(1), delta::DmlValue::Int(2)});
    add("dml_bad_column_count", true,
        SealFrame(FrameType::kDml, 0, 32, EncodeDml(cmd)), FuzzExpect::kError,
        ErrorCode::kBadQuery);
  }

  return cases;
}

}  // namespace net
}  // namespace mcsort

#endif  // MCSORT_NET_FUZZ_CORPUS_H_

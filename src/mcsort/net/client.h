// McsortClient — the blocking C++ client library for the mcsort wire
// protocol. One client owns one TCP connection; Query/Ping/GetMetrics/
// GetSchema are synchronous request/response calls made from a single
// thread. The one sanctioned cross-thread call is Cancel(): it writes a
// CANCEL frame for the in-flight query from any thread (sends are
// serialized by an internal mutex), and the blocked Query() then returns
// with status kCancelled as soon as the server's executor unwinds.
//
// Used by bench/net_throughput.cc, examples/remote_query.cpp, and
// tools/net_probe.cc.
#ifndef MCSORT_NET_CLIENT_H_
#define MCSORT_NET_CLIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "mcsort/common/exec_context.h"
#include "mcsort/engine/query.h"
#include "mcsort/net/frame_io.h"
#include "mcsort/net/protocol.h"

namespace mcsort {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double connect_timeout_seconds = 5;
  // Receive/send timeout per socket operation. Query() waits up to this
  // long *between* frames, not for the whole result, so slow queries only
  // need the server's per-chunk cadence to beat it.
  double io_timeout_seconds = 30;
  std::string client_name = "mcsort-client";
};

struct QueryCallOptions {
  // Relative deadline shipped in the QUERY header; 0 = none. The server
  // maps it onto the ExecContext deadline (admission wait + execution).
  double deadline_seconds = 0;
  // Client-side wall-clock bound on the whole call (0 = none). Unlike
  // io_timeout_seconds (per socket operation, between frames) this caps
  // send + all result chunks together. On expiry TryQuery returns
  // kCallTimeout and the connection is closed — the server may still be
  // streaming the stale result, so the caller must Connect again (the
  // coordinator treats it like any transport failure and fails over).
  double call_timeout_seconds = 0;
  // Ask the server to append the distributed merge sections (RESULT
  // sections 6-9) — requires the server to advertise kCapMergeKeys.
  bool want_merge_keys = false;
  std::string table;  // empty = server default
};

// Typed outcome of TryQuery — what the *call* did, orthogonal to what the
// server answered (RemoteResult::error carries the server's verdict when
// the status is kServerError).
enum class ClientStatus : uint8_t {
  kOk = 0,
  kNotConnected,    // no live connection; Connect (again) first
  kTransportError,  // socket/framing failed mid-call; connection closed
  kCallTimeout,     // call_timeout_seconds expired; connection closed
  kServerError,     // server answered a typed ERROR (see RemoteResult)
};

// Stable lowercase name ("ok", "transport_error", ...) for logs/metrics.
const char* ClientStatusName(ClientStatus status);

// Unified-status bridge (common/status.h): kNotConnected ->
// kFailedPrecondition (call Connect first), kTransportError ->
// kUnavailable (retry/fail over), kCallTimeout -> kDeadlineExceeded,
// kServerError -> kInternal (the server's own verdict travels separately
// in RemoteResult). FromStatus inverts onto the canonical member.
Status ToStatus(ClientStatus status, std::string detail = "");
ClientStatus ClientStatusFromStatus(const Status& status);

// Outcome of one remote query. `transport_ok` distinguishes "the wire
// failed" (connection lost, garbled reply) from "the server answered" —
// when it is true, `error`/`status` carry the server's typed verdict.
struct RemoteResult {
  bool transport_ok = false;
  ErrorCode error = ErrorCode::kNone;  // kNone on success
  std::string error_detail;
  ExecStatus status;  // execution outcome mapped back from the wire

  ResultSummary summary;
  std::vector<std::vector<int64_t>> aggregate_values;
  std::vector<double> aggregate_avg;
  std::vector<uint32_t> ranks;
  std::vector<uint32_t> result_oids;
  std::vector<uint32_t> result_group_order;
  // Distributed merge sections (populated when the call set
  // want_merge_keys and the server supports them).
  ResultExtras extras;

  bool ok() const {
    return transport_ok && error == ErrorCode::kNone && status.ok();
  }

  // The whole call collapsed to one unified status: the transport's
  // verdict when the wire failed, else the server's typed error, else the
  // execution outcome. ok() == ToStatus().ok().
  Status ToStatus() const {
    if (!transport_ok) return Status::Unavailable(error_detail);
    if (error != ErrorCode::kNone) return net::ToStatus(error, error_detail);
    return status.ToStatus();
  }
};

// Outcome of a remote SAVE_TABLE / LOAD_TABLE. The server runs the
// snapshot IO on a worker and answers with a TABLE_OP_REPLY (or a typed
// ERROR, mapped into `error` here).
struct TableOpResult {
  bool transport_ok = false;
  ErrorCode error = ErrorCode::kNone;  // kNone when the server replied
  std::string error_detail;
  TableOpReply reply;

  bool ok() const {
    return transport_ok && error == ErrorCode::kNone && reply.ok;
  }
};

// Outcome of one remote DML command. `reply` is only meaningful when the
// server answered with a DML_REPLY (transport_ok && error == kNone);
// op-level rejections (unknown table, bad column list) come back as typed
// ERROR frames and land in `error`. Row-level INSERT rejections ride in
// reply.row_errors with the command still partially applied.
struct DmlResult {
  bool transport_ok = false;
  ErrorCode error = ErrorCode::kNone;  // kNone when the server replied
  std::string error_detail;
  DmlReply reply;

  bool ok() const {
    return transport_ok && error == ErrorCode::kNone && reply.ok;
  }
};

class McsortClient {
 public:
  explicit McsortClient(const ClientOptions& options);
  ~McsortClient();

  McsortClient(const McsortClient&) = delete;
  McsortClient& operator=(const McsortClient&) = delete;

  // Connects and performs the HELLO handshake. False (with *error filled)
  // on failure; the client may retry Connect.
  bool Connect(std::string* error = nullptr);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // The server's HELLO_ACK (valid after a successful Connect).
  const HelloReply& hello() const { return hello_; }
  // Capability bits the server advertised in its HELLO_ACK.
  uint32_t server_capabilities() const { return hello_.capabilities; }
  bool ServerHasCapability(uint32_t bit) const {
    return (hello_.capabilities & bit) != 0;
  }

  // Executes `spec` remotely and reassembles the chunked result. On a
  // transport failure the connection is closed (call Connect again).
  RemoteResult Query(const QuerySpec& spec,
                     const QueryCallOptions& options = {});

  // Non-throwing, typed-status variant: same call, but the caller learns
  // *why* a call failed without parsing error strings — the coordinator's
  // retry logic branches on this. `*result` is always filled (on kOk /
  // kServerError it carries the server's answer; otherwise only
  // error_detail is meaningful).
  ClientStatus TryQuery(const QuerySpec& spec, const QueryCallOptions& options,
                        RemoteResult* result);

  // Cancels the Query currently blocked in another thread. Returns false
  // when no query is in flight or the frame could not be sent.
  bool Cancel();

  // Round-trip liveness probe; fills *rtt_seconds when non-null.
  bool Ping(double* rtt_seconds = nullptr);

  // Fetches the server's text metrics dump (service + net.* counters).
  bool GetMetrics(std::string* text);

  // Fetches the table catalog, so clients need not hardcode columns.
  bool GetSchema(SchemaReply* schema);

  // Snapshots `table` (empty = server default) into the server's catalog
  // directory / loads it back. Blocking: the reply carries the server-side
  // wall time and the table's row count.
  TableOpResult SaveTable(const std::string& table = std::string());
  TableOpResult LoadTable(const std::string& table);

  // Applies one DML command (INSERT / DELETE / UPDATE) remotely. Blocking;
  // the reply carries per-row errors and the table's post-command epoch.
  DmlResult ExecuteDml(const delta::DmlCommand& cmd);

 private:
  uint64_t NextRequestId() {
    return next_request_.fetch_add(1, std::memory_order_relaxed);
  }
  bool SendFrame(FrameType type, uint64_t request_id,
                 const std::string& payload);
  TableOpResult TableOp(FrameType type, const std::string& table);
  // Reads frames until one with `request_id` arrives (stale replies from
  // abandoned requests are discarded). False on transport failure.
  bool ReadReply(uint64_t request_id, Frame* frame);
  // ReadReply bounded by an absolute wall-clock deadline: before each
  // receive the socket timeout is narrowed to min(io timeout, remaining).
  // On expiry returns false with *timed_out set.
  bool ReadReplyUntil(uint64_t request_id, Frame* frame, bool has_deadline,
                      std::chrono::steady_clock::time_point deadline,
                      bool* timed_out);
  void FailTransport();

  ClientOptions options_;
  int fd_ = -1;
  FrameAssembler assembler_;
  HelloReply hello_;
  std::mutex send_mu_;
  std::atomic<uint64_t> next_request_{1};
  std::atomic<uint64_t> inflight_query_{0};  // request id Cancel targets
};

}  // namespace net
}  // namespace mcsort

#endif  // MCSORT_NET_CLIENT_H_

#include "mcsort/net/frame_io.h"

#include <cerrno>
#include <unistd.h>

namespace mcsort {
namespace net {

FrameAssembler::Next FrameAssembler::Pull(Frame* frame, ErrorCode* error,
                                          bool* fatal) {
  // Compact once the consumed prefix dominates, so long-lived connections
  // don't grow the buffer without bound.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > 1 << 20)) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  if (buffer_.size() - pos_ < kHeaderSize) return Next::kNeedMore;

  const FrameHeader header = DecodeHeader(
      reinterpret_cast<const uint8_t*>(buffer_.data() + pos_));
  if (header.magic != kMagic) {
    *error = ErrorCode::kMalformedFrame;
    *fatal = true;
    return Next::kBadFrame;
  }
  if (header.version < kMinProtocolVersion ||
      header.version > kProtocolVersion) {
    *error = ErrorCode::kUnsupportedVersion;
    *fatal = true;
    return Next::kBadFrame;
  }
  if (header.payload_len > max_payload_) {
    *error = ErrorCode::kOversizedFrame;
    *fatal = true;
    return Next::kBadFrame;
  }
  if (buffer_.size() - pos_ < kHeaderSize + header.payload_len) {
    return Next::kNeedMore;
  }
  const char* payload = buffer_.data() + pos_ + kHeaderSize;
  const uint32_t crc = Crc32c(payload, header.payload_len);
  pos_ += kHeaderSize + header.payload_len;  // frame consumed either way
  if (crc != header.payload_crc) {
    *error = ErrorCode::kCrcMismatch;
    *fatal = false;  // framing is intact; only this payload is corrupt
    return Next::kBadFrame;
  }
  frame->header = header;
  frame->payload.assign(payload, header.payload_len);
  return Next::kFrame;
}

bool SendAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (written == 0) return false;
    p += written;
    n -= static_cast<size_t>(written);
  }
  return true;
}

bool RecvSome(int fd, std::string* buf) {
  char chunk[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF
    buf->append(chunk, static_cast<size_t>(got));
    return true;
  }
}

FrameAssembler::Next RecvFrame(int fd, FrameAssembler* assembler,
                               Frame* frame, ErrorCode* error, bool* fatal) {
  for (;;) {
    const FrameAssembler::Next next = assembler->Pull(frame, error, fatal);
    if (next != FrameAssembler::Next::kNeedMore) return next;
    std::string bytes;
    if (!RecvSome(fd, &bytes)) return FrameAssembler::Next::kNeedMore;
    assembler->Append(bytes.data(), bytes.size());
  }
}

}  // namespace net
}  // namespace mcsort

// McsortServer — the network front-end over QueryService: a non-blocking
// epoll TCP server speaking the length-prefixed binary protocol of
// wire.h/protocol.h.
//
// Threading model: one event-loop thread owns every socket (accept, read,
// frame dispatch, write, timeouts); `exec_threads` executor workers run
// the blocking QuerySession::Execute calls. A worker never touches a
// socket — it appends sealed frames to the connection's outbound queue
// and wakes the loop through an eventfd. Connections are shared_ptr-held
// so a worker finishing after its client vanished writes into a tombstone,
// not freed memory.
//
// Robustness contract (the reason this layer exists):
//   * per-connection stalled-I/O timeout (partial inbound frame or unsent
//     outbound bytes make no progress) and a separate idle timeout;
//   * QUERY deadlines: the frame's relative deadline becomes an absolute
//     ExecContext deadline at receipt, so it bounds queue wait + execution;
//   * CANCEL frames fire the in-flight query's CancellationSource — the
//     executor unwinds at its next morsel boundary, the client gets ERROR
//     kCancelled;
//   * backpressure is typed, never an unbounded queue: connections beyond
//     max_connections and queries beyond max_inflight_queries are answered
//     with ERROR kBusy immediately (admission inside QueryService still
//     provides its own bounded FIFO below this cap);
//   * graceful drain: RequestDrain (async-signal-safe, SIGTERM-friendly)
//     stops accepting, lets in-flight queries finish within
//     drain_timeout_seconds, then cancels stragglers and exits the loop.
//
// Metrics: net.* counters (accepted, rejected, bytes/frames in and out,
// frame errors, timeouts, busy rejects, queries, cancels) are registered
// in the service's MetricsRegistry, so DumpMetrics — and therefore the
// METRICS frame — reports them alongside exec.*/plan_cache.* rows.
#ifndef MCSORT_NET_SERVER_H_
#define MCSORT_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mcsort/common/exec_context.h"
#include "mcsort/net/frame_io.h"
#include "mcsort/net/protocol.h"
#include "mcsort/service/query_service.h"

namespace mcsort {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; read it back via McsortServer::port().
  uint16_t port = 0;
  // Connection cap: accepts beyond it get ERROR kBusy and an immediate
  // close (counted in net.busy_rejects), never a silent backlog.
  int max_connections = 64;
  // Server-wide cap on queries executing or queued for the workers; QUERY
  // frames beyond it get ERROR kBusy. Keep >= the service's admission
  // max_inflight — admission provides the bounded FIFO underneath.
  int max_inflight_queries = 8;
  // Blocking executor workers (each runs one QuerySession::Execute at a
  // time; intra-query parallelism comes from the service's morsel pool).
  int exec_threads = 2;
  size_t max_payload_bytes = 16u << 20;
  // Result chunk granularity (element bytes per RESULT frame).
  size_t result_chunk_bytes = 256u << 10;
  // Stalled-I/O timeout: a connection with an incomplete inbound frame or
  // unflushed outbound bytes that makes no progress this long is closed
  // (net.timeouts). <= 0 disables.
  double io_timeout_seconds = 30;
  // Fully-idle connection timeout (no in-flight query, empty buffers).
  // <= 0 disables.
  double idle_timeout_seconds = 600;
  // Grace period RequestDrain allows in-flight queries before cancelling.
  double drain_timeout_seconds = 10;
  std::string server_name = "mcsort";
  // Per-query scratch budget (bytes) threaded into every ExecContext;
  // over-budget plans degrade or spill (engine/query.h). 0 = unlimited.
  uint64_t scratch_budget_bytes = 0;

  // Defaults with MCSORT_HOST / MCSORT_PORT / MCSORT_MAX_CONNS /
  // MCSORT_SCRATCH_BUDGET applied.
  static ServerOptions FromEnv();
};

class McsortServer {
 public:
  // `service` is borrowed and must outlive the server. Tables must be
  // registered on the service (QueryService::RegisterTable) — QUERY frames
  // address them by name and SCHEMA lists them.
  McsortServer(QueryService* service, const ServerOptions& options);
  ~McsortServer();

  McsortServer(const McsortServer&) = delete;
  McsortServer& operator=(const McsortServer&) = delete;

  // Binds, listens, and spawns the loop + worker threads. False (with
  // *error filled) if the socket setup fails; the server is then inert.
  bool Start(std::string* error = nullptr);

  // The bound port (after Start) — the ephemeral port when options.port=0.
  uint16_t port() const { return port_; }

  // Begins graceful drain. Async-signal-safe (an atomic store and one
  // write(2) to an eventfd), so it may be called from a SIGTERM handler.
  void RequestDrain();

  // RequestDrain + join everything. Idempotent; called by the destructor.
  void Shutdown();

  // Blocks until the loop exits (drain completed). For server binaries.
  void WaitUntilStopped();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int active_connections() const {
    return active_conns_.load(std::memory_order_relaxed);
  }
  const ServerOptions& options() const { return options_; }

 private:
  struct Conn;
  struct Job;

  void LoopThread();
  void WorkerThread();
  // Worker-side epilogue: queue the reply frames, clear the connection's
  // in-flight state, decrement inflight_, and wake the loop.
  void FinishJob(Job& job, std::vector<std::string> frames);

  // Loop-thread handlers.
  void HandleAccept();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void HandleWritable(const std::shared_ptr<Conn>& conn);
  void DispatchFrame(const std::shared_ptr<Conn>& conn, const Frame& frame);
  void HandleQueryFrame(const std::shared_ptr<Conn>& conn,
                        const Frame& frame);
  void HandleTableOpFrame(const std::shared_ptr<Conn>& conn,
                          const Frame& frame);
  void HandleDmlFrame(const std::shared_ptr<Conn>& conn, const Frame& frame);
  // Marks the connection busy and hands the job to the executor workers.
  void EnqueueJob(Job job);
  void SweepTimeouts();
  void BeginDrain();
  bool DrainComplete() const;
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void UpdateEpoll(const std::shared_ptr<Conn>& conn);

  // Thread-safe enqueue of sealed frames on a connection + loop wakeup;
  // drops silently when the connection is already closed. `close_after`
  // marks the connection to close once the bytes are flushed.
  void EnqueueFrames(const std::shared_ptr<Conn>& conn,
                     std::vector<std::string> frames,
                     bool close_after = false);
  void SendError(const std::shared_ptr<Conn>& conn, uint64_t request_id,
                 ErrorCode code, const std::string& detail,
                 bool close_after = false);
  void WakeLoop();

  std::string MetricsText();
  std::string SchemaText();

  QueryService* service_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_workers_{false};
  bool draining_ = false;  // loop-thread state
  std::chrono::steady_clock::time_point drain_deadline_{};

  // Connections, owned by the loop thread (workers hold shared_ptrs only).
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 0;
  std::atomic<int> active_conns_{0};

  // Executor job queue. Bounded by max_inflight_queries via inflight_.
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;
  std::atomic<int> inflight_{0};

  // Hot-path counters resolved once at construction (the registry lookup
  // takes a lock; per-event updates must not).
  struct NetCounters;
  std::unique_ptr<NetCounters> counters_;
};

// Spec-vs-table validation shared by the server's QUERY path and the
// tests: rejects specs the engine would CHECK-fail on (clause-combination
// rules, unknown columns, bad result-order keys) with a typed code.
// Returns kNone when the spec is executable against `table`.
ErrorCode ValidateSpec(const Table& table, const QuerySpec& spec,
                       std::string* detail);

}  // namespace net
}  // namespace mcsort

#endif  // MCSORT_NET_SERVER_H_

#include "mcsort/scan/bitweaving_scan.h"

#include "mcsort/common/bits.h"
#include "mcsort/common/logging.h"

namespace mcsort {
namespace {

uint64_t CombineWord(CompareOp op, uint64_t lt, uint64_t eq) {
  switch (op) {
    case CompareOp::kLess: return lt;
    case CompareOp::kLessEq: return lt | eq;
    case CompareOp::kEq: return eq;
    case CompareOp::kNeq: return ~eq;
    case CompareOp::kGreaterEq: return ~lt;
    case CompareOp::kGreater: return ~(lt | eq);
  }
  return 0;
}

}  // namespace

void BitWeavingScan(const BitWeavingColumn& column, CompareOp op,
                    Code literal, BitVector* result) {
  const size_t n = column.size();
  result->Resize(n);
  const int width = column.width();
  MCSORT_CHECK((literal & ~LowBitsMask(width)) == 0);
  const size_t words = column.words_per_plane();

  for (size_t g = 0; g < words; ++g) {
    uint64_t m_lt = 0;
    uint64_t m_eq = ~uint64_t{0};
    // MSB -> LSB, early exit once no row remains tied.
    for (int j = 0; j < width; ++j) {
      const uint64_t d = column.plane(j)[g];
      // Broadcast of the literal's bit j: all-ones or all-zeros.
      const uint64_t c =
          ((literal >> (width - 1 - j)) & 1) ? ~uint64_t{0} : 0;
      m_lt |= m_eq & ~d & c;  // code bit 0 while literal bit 1 => less
      m_eq &= ~(d ^ c);
      if (m_eq == 0) break;
    }
    const uint64_t out = CombineWord(op, m_lt, m_eq);
    // Write the 64-row word as two 32-bit blocks.
    result->SetBlock32(2 * g, static_cast<uint32_t>(out));
    result->SetBlock32(2 * g + 1, static_cast<uint32_t>(out >> 32));
  }
  result->ClearPastEnd();
}

}  // namespace mcsort

// Packed result bit vector produced by scans (one bit per row) and
// converted to an oid list for lookups — the scan/lookup interface of
// Sec. 2 ("a scan ... returns a result bit vector ... converted into a
// list of record numbers").
#ifndef MCSORT_SCAN_BITVECTOR_H_
#define MCSORT_SCAN_BITVECTOR_H_

#include <cstdint>
#include <vector>

#include "mcsort/common/logging.h"
#include "mcsort/storage/types.h"

namespace mcsort {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t n) { Resize(n); }

  void Resize(size_t n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  size_t size() const { return size_; }

  void SetAll();
  void ClearAll() { words_.assign(words_.size(), 0); }

  bool Get(size_t i) const {
    MCSORT_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i) {
    MCSORT_DCHECK(i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Clear(size_t i) {
    MCSORT_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  // Writes 32 result bits for rows [32*block, 32*block + 32); the scan
  // kernels emit movemask blocks of 32.
  void SetBlock32(size_t block, uint32_t mask) {
    const size_t word = block >> 1;
    MCSORT_DCHECK(word < words_.size());
    if (block & 1) {
      words_[word] = (words_[word] & 0x00000000FFFFFFFFull) |
                     (static_cast<uint64_t>(mask) << 32);
    } else {
      words_[word] = (words_[word] & 0xFFFFFFFF00000000ull) | mask;
    }
  }

  // Zeros any bits past the logical size in the last word (block writers
  // like SetBlock32 may spill into them).
  void ClearPastEnd() {
    const size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  // In-place conjunction/disjunction with a same-sized vector.
  void And(const BitVector& other);
  void Or(const BitVector& other);

  uint64_t CountOnes() const;

  // Appends the positions of set bits, in order, to `oids`.
  void ToOidList(std::vector<Oid>* oids) const;

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace mcsort

#endif  // MCSORT_SCAN_BITVECTOR_H_

#include "mcsort/scan/lookup.h"

#include "mcsort/common/exec_context.h"
#include "mcsort/common/logging.h"
#include "mcsort/common/thread_pool.h"
#include "mcsort/simd/simd.h"

namespace mcsort {
namespace {

void Gather16(const uint16_t* src, const Oid* oids, size_t n, uint16_t* out) {
  // No 16-bit gather in AVX2; the scalar loop keeps several misses in
  // flight thanks to out-of-order execution.
  for (size_t i = 0; i < n; ++i) out[i] = src[oids[i]];
}

void Gather32(const uint32_t* src, const Oid* oids, size_t n, uint32_t* out) {
#if MCSORT_HAVE_AVX2
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(oids + i));
    const __m256i vals = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(src), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
  }
  for (; i < n; ++i) out[i] = src[oids[i]];
#else
  for (size_t i = 0; i < n; ++i) out[i] = src[oids[i]];
#endif
}

void Gather64(const uint64_t* src, const Oid* oids, size_t n, uint64_t* out) {
#if MCSORT_HAVE_AVX2
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(oids + i));
    const __m256i vals = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(src), idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
  }
  for (; i < n; ++i) out[i] = src[oids[i]];
#else
  for (size_t i = 0; i < n; ++i) out[i] = src[oids[i]];
#endif
}

}  // namespace

size_t GatherColumn(const EncodedColumn& src, const Oid* oids, size_t n,
                    EncodedColumn* out, ThreadPool* pool,
                    const ExecContext* ctx) {
  // Preserve the source's physical type: round keys may be typed for a
  // bank wider than their code width. No zero-fill: every slot is written.
  out->ResetTyped(src.width(), src.type(), n, /*zero_fill=*/false);
  // Each morsel gathers into its own disjoint chunk of the output, so the
  // workers share no written bytes.
  const auto gather_range = [&](uint64_t begin, uint64_t end, int) {
    const size_t len = static_cast<size_t>(end - begin);
    switch (src.type()) {
      case PhysicalType::kU16:
        Gather16(src.Data16(), oids + begin, len, out->Data16() + begin);
        break;
      case PhysicalType::kU32:
        Gather32(src.Data32(), oids + begin, len, out->Data32() + begin);
        break;
      case PhysicalType::kU64:
        Gather64(src.Data64(), oids + begin, len, out->Data64() + begin);
        break;
    }
  };
  // A stoppable context also takes the morsel path on a single-threaded
  // pool: the inline dispatch loops morsel-sized chunks with stop checks,
  // keeping the cancellation latency bounded.
  const bool stoppable = ctx != nullptr && ctx->stoppable();
  if (pool != nullptr && (pool->num_threads() > 1 || stoppable) &&
      n >= 2 * kGatherMorselRows) {
    return pool->ParallelForDynamic(n, kGatherMorselRows, gather_range, ctx)
        .morsels;
  }
  if (n == 0) return 0;
  if (stoppable && ctx->StopRequested()) return 0;
  gather_range(0, n, 0);
  return 1;
}

void GatherFromByteSlice(const ByteSliceColumn& src, const Oid* oids,
                         size_t n, EncodedColumn* out) {
  out->Reset(src.width(), n);
  for (size_t i = 0; i < n; ++i) {
    out->Set(i, src.StitchCode(oids[i]));
  }
}

}  // namespace mcsort

#include "mcsort/scan/lookup.h"

#include "mcsort/common/logging.h"
#include "mcsort/simd/simd.h"

namespace mcsort {
namespace {

void Gather16(const uint16_t* src, const Oid* oids, size_t n, uint16_t* out) {
  // No 16-bit gather in AVX2; the scalar loop keeps several misses in
  // flight thanks to out-of-order execution.
  for (size_t i = 0; i < n; ++i) out[i] = src[oids[i]];
}

void Gather32(const uint32_t* src, const Oid* oids, size_t n, uint32_t* out) {
#if MCSORT_HAVE_AVX2
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(oids + i));
    const __m256i vals = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(src), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
  }
  for (; i < n; ++i) out[i] = src[oids[i]];
#else
  for (size_t i = 0; i < n; ++i) out[i] = src[oids[i]];
#endif
}

void Gather64(const uint64_t* src, const Oid* oids, size_t n, uint64_t* out) {
#if MCSORT_HAVE_AVX2
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(oids + i));
    const __m256i vals = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(src), idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
  }
  for (; i < n; ++i) out[i] = src[oids[i]];
#else
  for (size_t i = 0; i < n; ++i) out[i] = src[oids[i]];
#endif
}

}  // namespace

void GatherColumn(const EncodedColumn& src, const Oid* oids, size_t n,
                  EncodedColumn* out) {
  // Preserve the source's physical type: round keys may be typed for a
  // bank wider than their code width. No zero-fill: every slot is written.
  out->ResetTyped(src.width(), src.type(), n, /*zero_fill=*/false);
  switch (src.type()) {
    case PhysicalType::kU16:
      Gather16(src.Data16(), oids, n, out->Data16());
      break;
    case PhysicalType::kU32:
      Gather32(src.Data32(), oids, n, out->Data32());
      break;
    case PhysicalType::kU64:
      Gather64(src.Data64(), oids, n, out->Data64());
      break;
  }
}

void GatherFromByteSlice(const ByteSliceColumn& src, const Oid* oids,
                         size_t n, EncodedColumn* out) {
  out->Reset(src.width(), n);
  for (size_t i = 0; i < n; ++i) {
    out->Set(i, src.StitchCode(oids[i]));
  }
}

}  // namespace mcsort

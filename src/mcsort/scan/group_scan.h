// Group-boundary extraction: scans a (segment-wise) sorted column and
// splits each parent segment at every key change — the paper's "Scan"
// operator (Step 2b in Fig. 2a) that feeds the next sorting round its
// groups of tied values. Its cost is T_scan (Eq. 9): one sequential pass.
//
// With a thread pool the row range is cut into fixed-size chunks; every
// chunk detects the boundaries that fall inside it (key changes within a
// parent segment, plus parent ends) into a private list, and the lists are
// stitched back in chunk order. Because each boundary is attributed to
// exactly one chunk, the stitched result is bit-identical to the serial
// scan — tested property.
#ifndef MCSORT_SCAN_GROUP_SCAN_H_
#define MCSORT_SCAN_GROUP_SCAN_H_

#include <cstdint>
#include <vector>

#include "mcsort/storage/column.h"
#include "mcsort/storage/types.h"

namespace mcsort {

class ExecContext;  // common/exec_context.h
class ThreadPool;   // common/thread_pool.h

// Rows per chunk of a parallel group scan.
constexpr size_t kGroupScanChunkRows = size_t{1} << 16;

// Segment list over [0, n): bounds = {b0 = 0, b1, ..., bk = n}; segment i is
// [bounds[i], bounds[i+1]).
struct Segments {
  std::vector<uint32_t> bounds;

  size_t count() const { return bounds.empty() ? 0 : bounds.size() - 1; }
  uint32_t begin(size_t i) const { return bounds[i]; }
  uint32_t end(size_t i) const { return bounds[i + 1]; }
  uint32_t length(size_t i) const { return bounds[i + 1] - bounds[i]; }

  // The trivial segmentation: one segment covering [0, n).
  static Segments Whole(size_t n) {
    Segments s;
    s.bounds = {0, static_cast<uint32_t>(n)};
    return s;
  }
};

// Splits every parent segment of `keys` (sorted within each parent) at key
// changes. Returns the refined segmentation in `out` (which may alias
// nothing) and the number of scan chunks executed (1 for a serial run on
// nonempty input). If `pool` is non-null the scan runs chunk-parallel. A
// stoppable `ctx` bounds cancellation latency to one chunk; on a stop the
// segmentation is incomplete and must be discarded by the caller (who
// re-checks ctx).
size_t FindGroups(const EncodedColumn& keys, const Segments& parents,
                  Segments* out, ThreadPool* pool = nullptr,
                  const ExecContext* ctx = nullptr);

// Counts how many of the segments have more than one row (the paper's
// N_sort: singleton groups skip sorting in the next round).
size_t CountNonSingleton(const Segments& segments);

}  // namespace mcsort

#endif  // MCSORT_SCAN_GROUP_SCAN_H_

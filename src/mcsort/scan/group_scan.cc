#include "mcsort/scan/group_scan.h"

#include <algorithm>

#include "mcsort/common/exec_context.h"
#include "mcsort/common/logging.h"
#include "mcsort/common/thread_pool.h"

namespace mcsort {
namespace {

template <typename K>
void FindGroupsTyped(const K* keys, const Segments& parents, Segments* out) {
  out->bounds.clear();
  if (parents.count() == 0) return;
  out->bounds.push_back(parents.bounds.front());
  for (size_t s = 0; s < parents.count(); ++s) {
    const uint32_t begin = parents.begin(s);
    const uint32_t end = parents.end(s);
    if (begin == end) continue;  // empty parent contributes no group
    for (uint32_t i = begin + 1; i < end; ++i) {
      if (keys[i] != keys[i - 1]) out->bounds.push_back(i);
    }
    out->bounds.push_back(end);
  }
}

// Boundaries falling in the half-open cut range (lo, hi]: key changes
// strictly inside a parent segment, and ends of non-empty parents. The
// serial scan emits exactly these values in ascending order, so chunking
// the cut range and concatenating the per-chunk lists reproduces it.
template <typename K>
void CollectCuts(const K* keys, const Segments& parents, uint64_t lo,
                 uint64_t hi, std::vector<uint32_t>* cuts) {
  const std::vector<uint32_t>& bounds = parents.bounds;
  // First parent whose end exceeds lo: parent j-1 for the first bound
  // strictly greater than lo.
  const size_t j = static_cast<size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), lo) - bounds.begin());
  MCSORT_DCHECK(j >= 1);
  for (size_t s = j - 1; s < parents.count() && parents.begin(s) < hi; ++s) {
    const uint64_t begin = parents.begin(s);
    const uint64_t end = parents.end(s);
    if (begin == end) continue;  // empty parent contributes no group
    const uint64_t from = std::max(begin + 1, lo + 1);
    const uint64_t to = std::min(end, hi + 1);  // interior cuts are < end
    for (uint64_t i = from; i < to; ++i) {
      if (keys[i] != keys[i - 1]) {
        cuts->push_back(static_cast<uint32_t>(i));
      }
    }
    if (end > lo && end <= hi) cuts->push_back(static_cast<uint32_t>(end));
  }
}

template <typename K>
size_t FindGroupsChunked(const K* keys, const Segments& parents,
                         Segments* out, ThreadPool* pool,
                         const ExecContext* ctx) {
  const uint64_t front = parents.bounds.front();
  const uint64_t back = parents.bounds.back();
  const uint64_t rows = back - front;
  const size_t num_chunks =
      static_cast<size_t>((rows + kGroupScanChunkRows - 1) /
                          kGroupScanChunkRows);
  std::vector<std::vector<uint32_t>> chunk_cuts(num_chunks);
  pool->ParallelForDynamic(
      num_chunks, 1,
      [&](uint64_t begin, uint64_t end, int) {
        for (uint64_t c = begin; c < end; ++c) {
          const uint64_t lo = front + c * kGroupScanChunkRows;
          const uint64_t hi =
              std::min(front + (c + 1) * kGroupScanChunkRows, back);
          CollectCuts(keys, parents, lo, hi,
                      &chunk_cuts[static_cast<size_t>(c)]);
        }
      },
      ctx);
  // Stitch: the final bounds are the shared front plus every chunk's cuts
  // in chunk order.
  size_t total = 1;
  for (const std::vector<uint32_t>& cuts : chunk_cuts) total += cuts.size();
  out->bounds.clear();
  out->bounds.reserve(total);
  out->bounds.push_back(static_cast<uint32_t>(front));
  for (const std::vector<uint32_t>& cuts : chunk_cuts) {
    out->bounds.insert(out->bounds.end(), cuts.begin(), cuts.end());
  }
  return num_chunks;
}

}  // namespace

size_t FindGroups(const EncodedColumn& keys, const Segments& parents,
                  Segments* out, ThreadPool* pool, const ExecContext* ctx) {
  if (parents.count() > 0) {
    MCSORT_CHECK(parents.bounds.back() == keys.size());
  }
  const uint64_t rows =
      parents.count() > 0 ? parents.bounds.back() - parents.bounds.front()
                          : 0;
  const bool stoppable = ctx != nullptr && ctx->stoppable();
  if (pool != nullptr && (pool->num_threads() > 1 || stoppable) &&
      rows >= 2 * kGroupScanChunkRows) {
    switch (keys.type()) {
      case PhysicalType::kU16:
        return FindGroupsChunked(keys.Data16(), parents, out, pool, ctx);
      case PhysicalType::kU32:
        return FindGroupsChunked(keys.Data32(), parents, out, pool, ctx);
      case PhysicalType::kU64:
        return FindGroupsChunked(keys.Data64(), parents, out, pool, ctx);
    }
  }
  if (stoppable && ctx->StopRequested()) {
    out->bounds.clear();
    return 0;
  }
  switch (keys.type()) {
    case PhysicalType::kU16:
      FindGroupsTyped(keys.Data16(), parents, out);
      break;
    case PhysicalType::kU32:
      FindGroupsTyped(keys.Data32(), parents, out);
      break;
    case PhysicalType::kU64:
      FindGroupsTyped(keys.Data64(), parents, out);
      break;
  }
  return parents.count() > 0 ? 1 : 0;
}

size_t CountNonSingleton(const Segments& segments) {
  size_t count = 0;
  for (size_t i = 0; i < segments.count(); ++i) {
    if (segments.length(i) > 1) ++count;
  }
  return count;
}

}  // namespace mcsort

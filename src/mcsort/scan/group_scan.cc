#include "mcsort/scan/group_scan.h"

#include "mcsort/common/logging.h"

namespace mcsort {
namespace {

template <typename K>
void FindGroupsTyped(const K* keys, const Segments& parents, Segments* out) {
  out->bounds.clear();
  if (parents.count() == 0) return;
  out->bounds.push_back(parents.bounds.front());
  for (size_t s = 0; s < parents.count(); ++s) {
    const uint32_t begin = parents.begin(s);
    const uint32_t end = parents.end(s);
    if (begin == end) continue;  // empty parent contributes no group
    for (uint32_t i = begin + 1; i < end; ++i) {
      if (keys[i] != keys[i - 1]) out->bounds.push_back(i);
    }
    out->bounds.push_back(end);
  }
}

}  // namespace

void FindGroups(const EncodedColumn& keys, const Segments& parents,
                Segments* out) {
  if (parents.count() > 0) {
    MCSORT_CHECK(parents.bounds.back() == keys.size());
  }
  switch (keys.type()) {
    case PhysicalType::kU16:
      FindGroupsTyped(keys.Data16(), parents, out);
      break;
    case PhysicalType::kU32:
      FindGroupsTyped(keys.Data32(), parents, out);
      break;
    case PhysicalType::kU64:
      FindGroupsTyped(keys.Data64(), parents, out);
      break;
  }
}

size_t CountNonSingleton(const Segments& segments) {
  size_t count = 0;
  for (size_t i = 0; i < segments.count(); ++i) {
    if (segments.length(i) > 1) ++count;
  }
  return count;
}

}  // namespace mcsort

// Lookup operators: fetch column values for a list of oids.
//
// This is the paper's Lookup physical operator (Step 2a in Fig. 2a) — the
// reorder step between sorting rounds that code massaging eliminates. It is
// N random accesses, which is exactly what the cost model's T_lookup
// (Eq. 3) charges for. With a thread pool the oid list is split into
// morsels gathered concurrently into disjoint chunks of the shared output
// (each chunk's writes are sequential; the random reads are what the
// memory system must absorb either way).
#ifndef MCSORT_SCAN_LOOKUP_H_
#define MCSORT_SCAN_LOOKUP_H_

#include <cstddef>

#include "mcsort/storage/byteslice.h"
#include "mcsort/storage/column.h"
#include "mcsort/storage/types.h"

namespace mcsort {

class ExecContext;  // common/exec_context.h
class ThreadPool;   // common/thread_pool.h

// Rows per morsel of a parallel gather: large enough that the atomic
// claim is noise, small enough to rebalance when chunks hit uneven TLB /
// cache locality.
constexpr size_t kGatherMorselRows = size_t{1} << 16;

// out[i] = src[oids[i]]; `out` is reset to src's width and n rows.
// Uses AVX2 gathers for the 32/64-bit physical types. If `pool` is
// non-null the output is produced in parallel morsels. Returns the number
// of morsels executed (1 for a serial run on nonempty input). A stoppable
// `ctx` bounds cancellation latency to one morsel; on a stop the output is
// partial and must be discarded by the caller (who re-checks ctx).
size_t GatherColumn(const EncodedColumn& src, const Oid* oids, size_t n,
                    EncodedColumn* out, ThreadPool* pool = nullptr,
                    const ExecContext* ctx = nullptr);

// ByteSlice lookup: stitches the bytes of each requested row back into a
// code ([14]'s byte-stitching lookup).
void GatherFromByteSlice(const ByteSliceColumn& src, const Oid* oids,
                         size_t n, EncodedColumn* out);

}  // namespace mcsort

#endif  // MCSORT_SCAN_LOOKUP_H_

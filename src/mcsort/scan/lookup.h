// Lookup operators: fetch column values for a list of oids.
//
// This is the paper's Lookup physical operator (Step 2a in Fig. 2a) — the
// reorder step between sorting rounds that code massaging eliminates. It is
// N random accesses, which is exactly what the cost model's T_lookup
// (Eq. 3) charges for.
#ifndef MCSORT_SCAN_LOOKUP_H_
#define MCSORT_SCAN_LOOKUP_H_

#include <cstddef>

#include "mcsort/storage/byteslice.h"
#include "mcsort/storage/column.h"
#include "mcsort/storage/types.h"

namespace mcsort {

// out[i] = src[oids[i]]; `out` is reset to src's width and n rows.
// Uses AVX2 gathers for the 32/64-bit physical types.
void GatherColumn(const EncodedColumn& src, const Oid* oids, size_t n,
                  EncodedColumn* out);

// ByteSlice lookup: stitches the bytes of each requested row back into a
// code ([14]'s byte-stitching lookup).
void GatherFromByteSlice(const ByteSliceColumn& src, const Oid* oids,
                         size_t n, EncodedColumn* out);

}  // namespace mcsort

#endif  // MCSORT_SCAN_LOOKUP_H_

// ByteSlice fast scan [14]: SIMD predicate evaluation over the byte-sliced
// layout with byte-level early stopping.
//
// The scan walks slices from the most significant byte down, maintaining
// per-lane "still tied" (eq) and "already smaller" (lt) masks; once no lane
// is still tied the remaining (less significant) slices cannot change any
// outcome and are skipped — this is the early stopping that makes scans on
// encoded data run at core speed.
#ifndef MCSORT_SCAN_BYTESLICE_SCAN_H_
#define MCSORT_SCAN_BYTESLICE_SCAN_H_

#include "mcsort/common/thread_pool.h"
#include "mcsort/scan/bitvector.h"
#include "mcsort/storage/byteslice.h"
#include "mcsort/storage/types.h"

namespace mcsort {

class ExecContext;  // common/exec_context.h

enum class CompareOp { kLess, kLessEq, kGreater, kGreaterEq, kEq, kNeq };

// Evaluates `column <op> literal` over all rows into `result` (resized to
// the column's row count). `literal` is an encoded value of the column's
// width. A non-null `pool` splits the scan by 32-row blocks across
// workers (blocks write disjoint result words... block pairs share a
// word, so ranges are aligned to even block counts internally). A
// stoppable `ctx` stops the scan between block ranges; the result is then
// partial and the caller must re-check ctx before using it.
void ByteSliceScan(const ByteSliceColumn& column, CompareOp op, Code literal,
                   BitVector* result, ThreadPool* pool = nullptr,
                   const ExecContext* ctx = nullptr);

// Evaluates `lo <= column <= hi` (encoded bounds, inclusive).
void ByteSliceScanBetween(const ByteSliceColumn& column, Code lo, Code hi,
                          BitVector* result, ThreadPool* pool = nullptr,
                          const ExecContext* ctx = nullptr);

}  // namespace mcsort

#endif  // MCSORT_SCAN_BYTESLICE_SCAN_H_

#include "mcsort/scan/byteslice_scan.h"

#include <cstdint>

#include "mcsort/common/exec_context.h"
#include "mcsort/common/logging.h"
#include "mcsort/simd/simd.h"

namespace mcsort {
namespace {

#if MCSORT_HAVE_AVX2

// Evaluates one 32-row block starting at `base`, returning (lt, eq) masks
// as movemask bits (bit i = row base + i).
inline void ScanBlock(const ByteSliceColumn& column, const uint8_t* literal,
                      size_t base, uint32_t* out_lt, uint32_t* out_eq) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  __m256i m_lt = _mm256_setzero_si256();
  __m256i m_eq = _mm256_set1_epi8(static_cast<char>(0xFF));
  const int slices = column.num_slices();
  for (int j = 0; j < slices; ++j) {
    const __m256i d = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(column.slice(j) + base));
    const __m256i lit = _mm256_set1_epi8(static_cast<char>(literal[j]));
    // Unsigned byte compare via sign-bias + signed cmpgt.
    const __m256i lt_j = _mm256_cmpgt_epi8(_mm256_xor_si256(lit, bias),
                                           _mm256_xor_si256(d, bias));
    const __m256i eq_j = _mm256_cmpeq_epi8(d, lit);
    m_lt = _mm256_or_si256(m_lt, _mm256_and_si256(m_eq, lt_j));
    m_eq = _mm256_and_si256(m_eq, eq_j);
    // Early stopping: no lane still tied => later slices are irrelevant.
    if (_mm256_testz_si256(m_eq, m_eq)) break;
  }
  *out_lt = static_cast<uint32_t>(_mm256_movemask_epi8(m_lt));
  *out_eq = static_cast<uint32_t>(_mm256_movemask_epi8(m_eq));
}

#else  // !MCSORT_HAVE_AVX2

inline void ScanBlock(const ByteSliceColumn& column, const uint8_t* literal,
                      size_t base, uint32_t* out_lt, uint32_t* out_eq) {
  uint32_t lt = 0;
  uint32_t eq = 0;
  const int slices = column.num_slices();
  for (int i = 0; i < 32; ++i) {
    bool is_lt = false;
    bool is_eq = true;
    for (int j = 0; j < slices && is_eq; ++j) {
      const uint8_t d = column.slice(j)[base + static_cast<size_t>(i)];
      if (d < literal[j]) {
        is_lt = true;
        is_eq = false;
      } else if (d > literal[j]) {
        is_eq = false;
      }
    }
    if (is_lt) lt |= uint32_t{1} << i;
    if (is_eq) eq |= uint32_t{1} << i;
  }
  *out_lt = lt;
  *out_eq = eq;
}

#endif  // MCSORT_HAVE_AVX2

uint32_t CombineMasks(CompareOp op, uint32_t lt, uint32_t eq) {
  switch (op) {
    case CompareOp::kLess: return lt;
    case CompareOp::kLessEq: return lt | eq;
    case CompareOp::kEq: return eq;
    case CompareOp::kNeq: return ~eq;
    case CompareOp::kGreaterEq: return ~lt;
    case CompareOp::kGreater: return ~(lt | eq);
  }
  return 0;
}

// Splits an encoded literal into the per-slice bytes (MSB first), applying
// the same left-alignment padding as stored codes.
void SplitLiteral(const ByteSliceColumn& column, Code literal,
                  uint8_t bytes[8]) {
  const Code padded = column.PadCode(literal);
  const int slices = column.num_slices();
  MCSORT_CHECK(slices <= 8);
  for (int j = 0; j < slices && j < 8; ++j) {
    bytes[j] = static_cast<uint8_t>(padded >> (8 * (slices - 1 - j)));
  }
}

}  // namespace

namespace {

// Runs `body(block)` over all 32-row blocks, optionally in parallel.
// Parallel ranges are aligned to block *pairs*: two adjacent blocks share
// one 64-bit result word (SetBlock32 is a read-modify-write), so a word
// must never straddle two workers.
template <typename Fn>
void ForEachBlock(size_t n, ThreadPool* pool, const ExecContext* ctx,
                  const Fn& body) {
  const size_t blocks = RoundUp(n, 32) / 32;
  const bool stoppable = ctx != nullptr && ctx->stoppable();
  if (pool == nullptr || pool->num_threads() <= 1 || blocks < 64) {
    // Serial path: a coarse stop check every 1024 blocks (32k rows) keeps
    // the per-block cost at zero for plain contexts.
    for (size_t block = 0; block < blocks; ++block) {
      if (stoppable && (block & 1023) == 0 && ctx->StopRequested()) return;
      body(block);
    }
    return;
  }
  const size_t pairs = (blocks + 1) / 2;
  pool->ParallelFor(
      pairs,
      [&](uint64_t begin, uint64_t end, int) {
        for (uint64_t pair = begin; pair < end; ++pair) {
          const size_t first = static_cast<size_t>(2 * pair);
          body(first);
          if (first + 1 < blocks) body(first + 1);
        }
      },
      ctx);
}

}  // namespace

void ByteSliceScan(const ByteSliceColumn& column, CompareOp op, Code literal,
                   BitVector* result, ThreadPool* pool,
                   const ExecContext* ctx) {
  const size_t n = column.size();
  result->Resize(n);
  uint8_t literal_bytes[8] = {0};
  SplitLiteral(column, literal, literal_bytes);
  ForEachBlock(n, pool, ctx, [&](size_t block) {
    uint32_t lt = 0;
    uint32_t eq = 0;
    ScanBlock(column, literal_bytes, 32 * block, &lt, &eq);
    result->SetBlock32(block, CombineMasks(op, lt, eq));
  });
  result->ClearPastEnd();
}

void ByteSliceScanBetween(const ByteSliceColumn& column, Code lo, Code hi,
                          BitVector* result, ThreadPool* pool,
                          const ExecContext* ctx) {
  MCSORT_CHECK(lo <= hi);
  const size_t n = column.size();
  result->Resize(n);
  uint8_t lo_bytes[8] = {0};
  uint8_t hi_bytes[8] = {0};
  SplitLiteral(column, lo, lo_bytes);
  SplitLiteral(column, hi, hi_bytes);
  ForEachBlock(n, pool, ctx, [&](size_t block) {
    uint32_t lt_lo = 0, eq_lo = 0, lt_hi = 0, eq_hi = 0;
    ScanBlock(column, lo_bytes, 32 * block, &lt_lo, &eq_lo);
    ScanBlock(column, hi_bytes, 32 * block, &lt_hi, &eq_hi);
    const uint32_t ge_lo = ~lt_lo;
    const uint32_t le_hi = lt_hi | eq_hi;
    result->SetBlock32(block, ge_lo & le_hi);
  });
  result->ClearPastEnd();
}

}  // namespace mcsort

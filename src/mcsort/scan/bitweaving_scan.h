// BitWeaving/V scan [30]: word-level bitwise predicate evaluation with
// bit-granular early stopping (see storage/bitweaving.h).
#ifndef MCSORT_SCAN_BITWEAVING_SCAN_H_
#define MCSORT_SCAN_BITWEAVING_SCAN_H_

#include "mcsort/scan/bitvector.h"
#include "mcsort/scan/byteslice_scan.h"  // CompareOp
#include "mcsort/storage/bitweaving.h"
#include "mcsort/storage/types.h"

namespace mcsort {

// Evaluates `column <op> literal` over all rows into `result`.
void BitWeavingScan(const BitWeavingColumn& column, CompareOp op,
                    Code literal, BitVector* result);

}  // namespace mcsort

#endif  // MCSORT_SCAN_BITWEAVING_SCAN_H_

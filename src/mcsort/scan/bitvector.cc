#include "mcsort/scan/bitvector.h"

#include <bit>

namespace mcsort {

void BitVector::SetAll() {
  words_.assign(words_.size(), ~uint64_t{0});
  // Clear bits past the logical size so counts stay exact.
  const size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

void BitVector::And(const BitVector& other) {
  MCSORT_CHECK(other.size_ == size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::Or(const BitVector& other) {
  MCSORT_CHECK(other.size_ == size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

uint64_t BitVector::CountOnes() const {
  uint64_t count = 0;
  for (uint64_t word : words_) count += std::popcount(word);
  return count;
}

void BitVector::ToOidList(std::vector<Oid>* oids) const {
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      oids->push_back(static_cast<Oid>(64 * w + static_cast<size_t>(bit)));
      word &= word - 1;
    }
  }
}

}  // namespace mcsort

#include "mcsort/delta/delta_store.h"

#include <utility>

#include "mcsort/common/logging.h"
#include "mcsort/delta/dml.h"

namespace mcsort {
namespace delta {

const char* DmlOpName(DmlOp op) {
  switch (op) {
    case DmlOp::kInsert: return "insert";
    case DmlOp::kDelete: return "delete";
    case DmlOp::kUpdate: return "update";
  }
  return "unknown";
}

uint32_t DeltaStore::AppendRow(std::vector<int64_t> values) {
  MCSORT_CHECK(values.size() == num_columns_);
  rows_.push_back(std::move(values));
  dead_.push_back(0);
  ++mutation_seq_;
  return static_cast<uint32_t>(rows_.size() - 1);
}

bool DeltaStore::TombstoneBase(uint32_t oid) {
  if (!base_tomb_set_.insert(oid).second) return false;
  base_tomb_list_.push_back(oid);
  ++mutation_seq_;
  return true;
}

bool DeltaStore::TombstoneDelta(uint32_t row) {
  MCSORT_CHECK(row < rows_.size());
  if (dead_[row] != 0) return false;
  dead_[row] = 1;
  ++dead_count_;
  delta_tomb_list_.push_back(row);
  ++mutation_seq_;
  return true;
}

int64_t DeltaStore::InternOverflow(size_t col, const std::string& value,
                                   size_t dict_size) {
  if (overflow_.size() <= col) {
    overflow_.resize(num_columns_);
    overflow_index_.resize(num_columns_);
  }
  auto [it, inserted] = overflow_index_[col].emplace(value, overflow_[col].size());
  if (inserted) {
    overflow_[col].push_back(value);
    ++mutation_seq_;
  }
  return static_cast<int64_t>(dict_size + it->second);
}

int64_t DeltaStore::FindOverflow(size_t col, const std::string& value,
                                 size_t dict_size) const {
  if (overflow_index_.size() <= col) return -1;
  auto it = overflow_index_[col].find(value);
  if (it == overflow_index_[col].end()) return -1;
  return static_cast<int64_t>(dict_size + it->second);
}

const std::vector<std::string>& DeltaStore::overflow(size_t col) const {
  static const std::vector<std::string> kEmpty;
  return col < overflow_.size() ? overflow_[col] : kEmpty;
}

size_t DeltaStore::overflow_size(size_t col) const {
  return col < overflow_.size() ? overflow_[col].size() : 0;
}

size_t DeltaStore::MemoryBytes() const {
  size_t total = rows_.size() * (num_columns_ * sizeof(int64_t) + 1);
  total += (base_tomb_list_.size() + delta_tomb_list_.size()) * 2 *
           sizeof(uint32_t);
  for (const auto& column : overflow_) {
    for (const std::string& value : column) total += value.size() + 32;
  }
  return total;
}

}  // namespace delta
}  // namespace mcsort

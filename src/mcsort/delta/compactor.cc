#include "mcsort/delta/compactor.h"

#include <chrono>
#include <utility>

namespace mcsort {
namespace delta {

Compactor::Compactor(const CompactionOptions& options, Hooks hooks)
    : options_(options), hooks_(std::move(hooks)) {}

Compactor::~Compactor() { Stop(); }

void Compactor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ || !options_.enabled) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread(&Compactor::Loop, this);
}

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool Compactor::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

uint64_t Compactor::sweeps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sweeps_;
}

uint64_t Compactor::compactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compactions_;
}

void Compactor::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                   [&] { return stop_; });
      if (stop_) return;
    }
    std::vector<std::string> tables = hooks_.list_tables();
    uint64_t published = 0;
    for (const std::string& name : tables) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;
      }
      if (hooks_.compact(name)) ++published;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++sweeps_;
    compactions_ += published;
  }
}

}  // namespace delta
}  // namespace mcsort

// Compactor — the background cadence driver of re-encoding.
//
// Policy-free by design: the service owns what "compact table X" means
// (BeginCompaction → BuildMergedTable → tmp+rename persist → Publish) and
// which tables are due (delta row thresholds); the compactor only owns the
// thread, the tick interval, and clean shutdown. Keeping it hook-based
// means delta_test can drive compaction synchronously through the same
// service entry point the thread uses, so the tested path IS the
// production path.
#ifndef MCSORT_DELTA_COMPACTOR_H_
#define MCSORT_DELTA_COMPACTOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mcsort {
namespace delta {

struct CompactionOptions {
  bool enabled = false;
  uint64_t interval_ms = 1000;   // tick period between sweeps
  uint64_t min_delta_rows = 1024;  // service-side threshold (advisory here)
};

class Compactor {
 public:
  struct Hooks {
    // Names of tables to consider this sweep (the service applies its
    // min_delta_rows threshold when building this list).
    std::function<std::vector<std::string>()> list_tables;
    // Compacts one table; returns true when a new epoch was published.
    std::function<bool(const std::string&)> compact;
  };

  Compactor(const CompactionOptions& options, Hooks hooks);
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  // Starts the sweep thread (no-op when already running or !enabled).
  void Start();
  // Stops and joins; safe to call repeatedly.
  void Stop();

  bool running() const;
  uint64_t sweeps() const;       // completed sweep passes
  uint64_t compactions() const;  // published epochs across all tables

 private:
  void Loop();

  const CompactionOptions options_;
  const Hooks hooks_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  uint64_t sweeps_ = 0;
  uint64_t compactions_ = 0;
  std::thread thread_;
};

}  // namespace delta
}  // namespace mcsort

#endif  // MCSORT_DELTA_COMPACTOR_H_

// TableVersion — one table's mutable identity: an immutable encoded base,
// the DeltaStore absorbing writes, and a monotonically increasing epoch.
//
// Visibility is epoch-based and wait-free for readers in the steady state:
// Snapshot() hands out a shared_ptr to a fully encoded Table (the base
// itself when the delta is empty, else a cached merged image built by
// merge_scan), so a query pins its snapshot for its whole run and never
// observes a concurrent write or compaction. Writers serialize on the
// version mutex; the heavy merge build runs OUTSIDE the mutex so readers
// and writers only ever wait for O(delta) copies.
//
// Compaction protocol (three phases, driven by the service):
//   1. BeginCompaction()  — under the mutex, capture a delta prefix
//      snapshot plus the base it applies to.
//   2. (caller, no lock)  — BuildMergedTable + persist it through the
//      existing tmp+rename snapshot commit point.
//   3. Publish()          — under the mutex, translate the post-snapshot
//      tail (rows, tombstones) onto the merged image via the oid maps,
//      swap the base pointer, bump the epoch. Readers pinned to the old
//      epoch keep their shared_ptr; the old base retires when the last
//      one drops.
#ifndef MCSORT_DELTA_TABLE_VERSION_H_
#define MCSORT_DELTA_TABLE_VERSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mcsort/delta/delta_store.h"
#include "mcsort/delta/dml.h"
#include "mcsort/delta/merge_scan.h"
#include "mcsort/storage/table.h"

namespace mcsort {
namespace delta {

class TableVersion {
 public:
  explicit TableVersion(std::shared_ptr<const Table> base);

  // Applies one DML command. Row-level INSERT failures are reported in the
  // outcome and do not abort the command; op-level failures (unknown /
  // duplicate / missing column, predicate type mismatch) apply nothing.
  DmlOutcome Apply(const DmlCommand& cmd);

  // The table image a query should run against: the base when the delta is
  // empty, else a merged image (cached per mutation_seq). Never blocks on
  // an in-flight compaction's heavy phase.
  std::shared_ptr<const Table> Snapshot();

  // --- compaction ---------------------------------------------------------
  struct CompactionJob {
    std::shared_ptr<const Table> base;  // the base the snapshot applies to
    DeltaSnapshot snap;
    uint64_t epoch = 0;
  };
  CompactionJob BeginCompaction();
  // Installs `merged` (built from job.snap against job.base) as the new
  // base, translating everything that arrived after the snapshot onto it.
  // Returns false (and installs nothing) if the base changed since
  // BeginCompaction — e.g. a LoadTable raced the build.
  bool Publish(const CompactionJob& job, MergedTable merged);

  // Swaps in a freshly loaded base (LoadTable); optionally drops the delta
  // (the loaded snapshot supersedes it).
  void ReplaceBase(std::shared_ptr<const Table> base, bool clear_delta);

  // --- introspection ------------------------------------------------------
  uint64_t epoch() const;
  uint64_t delta_rows() const;      // live delta rows
  uint64_t live_rows() const;       // base live + delta live
  // Rows + tombstones accumulated since the last compaction — what the
  // compactor's min_delta_rows threshold is measured against (a pure
  // DELETE workload must still trigger compaction).
  uint64_t pending_mutations() const;
  size_t delta_memory_bytes() const;
  std::shared_ptr<const Table> base() const;

 private:
  // All Locked helpers require mu_.
  DeltaSnapshot CopySnapshotLocked() const;
  DmlOutcome ApplyInsertLocked(const DmlCommand& cmd);
  DmlOutcome ApplyDeleteLocked(const DmlCommand& cmd);
  DmlOutcome ApplyUpdateLocked(const DmlCommand& cmd);
  // Collects live row matches of `pred`: base oids (code-side, exact via
  // order-preserving encoding) and delta row indices (native-side).
  Status MatchLocked(const DmlPredicate& pred, std::vector<uint32_t>* base_oids,
                     std::vector<uint32_t>* delta_rows) const;
  // Type/range check of one DmlValue against column `col` (index into
  // column_names()); side-effect free, so a row can be fully validated
  // before any of it is interned.
  Status CheckValueLocked(size_t col, const DmlValue& value) const;
  // Encodes a checked value into its stored int64 form (may intern an
  // overflow string).
  int64_t EncodeValueLocked(size_t col, const DmlValue& value);

  mutable std::mutex mu_;
  std::shared_ptr<const Table> base_;
  DeltaStore delta_;
  uint64_t epoch_ = 0;
  // Merged-image cache: valid while merged_seq_ == delta_.mutation_seq()
  // and the base has not been swapped.
  std::shared_ptr<const Table> merged_cache_;
  uint64_t merged_seq_ = 0;
};

}  // namespace delta
}  // namespace mcsort

#endif  // MCSORT_DELTA_TABLE_VERSION_H_

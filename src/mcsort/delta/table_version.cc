#include "mcsort/delta/table_version.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>
#include <utility>

#include "mcsort/common/logging.h"

namespace mcsort {
namespace delta {
namespace {

// Natives beyond ±2^62 would overflow the merged-range arithmetic in
// merge_scan (max - min over int64); the encode path rejects them up front.
constexpr int64_t kMaxAbsNative = int64_t{1} << 62;

bool CompareInt(DmlCompareOp op, int64_t a, int64_t b) {
  switch (op) {
    case DmlCompareOp::kEq: return a == b;
    case DmlCompareOp::kNe: return a != b;
    case DmlCompareOp::kLt: return a < b;
    case DmlCompareOp::kLe: return a <= b;
    case DmlCompareOp::kGt: return a > b;
    case DmlCompareOp::kGe: return a >= b;
  }
  return false;
}

bool CompareStr(DmlCompareOp op, const std::string& a, const std::string& b) {
  switch (op) {
    case DmlCompareOp::kEq: return a == b;
    case DmlCompareOp::kNe: return a != b;
    case DmlCompareOp::kLt: return a < b;
    case DmlCompareOp::kLe: return a <= b;
    case DmlCompareOp::kGt: return a > b;
    case DmlCompareOp::kGe: return a >= b;
  }
  return false;
}

// Code-side predicate over a sorted dictionary: `lb` is the lower-bound
// rank of the predicate string, `exact` whether it is present. Because
// codes are sorted ranks, every comparison reduces to rank arithmetic —
// no per-row string compare on the base.
bool CompareCode(DmlCompareOp op, Code c, Code lb, bool exact) {
  switch (op) {
    case DmlCompareOp::kEq: return exact && c == lb;
    case DmlCompareOp::kNe: return !exact || c != lb;
    case DmlCompareOp::kLt: return c < lb;
    case DmlCompareOp::kLe: return exact ? c <= lb : c < lb;
    case DmlCompareOp::kGt: return exact ? c > lb : c >= lb;
    case DmlCompareOp::kGe: return c >= lb;
  }
  return false;
}

int ColumnIndex(const std::vector<std::string>& names,
                const std::string& name) {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

TableVersion::TableVersion(std::shared_ptr<const Table> base)
    : base_(std::move(base)),
      delta_(base_ ? base_->column_names().size() : 0) {
  MCSORT_CHECK(base_ != nullptr);
}

Status TableVersion::CheckValueLocked(size_t col, const DmlValue& value) const {
  const std::string& name = base_->column_names()[col];
  if (base_->HasDictionary(name)) {
    if (!value.is_string) {
      return Status::InvalidArgument("column '" + name +
                                     "' is a string column, got an int");
    }
    return Status::Ok();
  }
  if (value.is_string) {
    return Status::InvalidArgument("column '" + name +
                                   "' is numeric, got a string");
  }
  if (value.i64 <= -kMaxAbsNative || value.i64 >= kMaxAbsNative) {
    return Status::InvalidArgument("column '" + name +
                                   "': value outside the supported ±2^62 range");
  }
  return Status::Ok();
}

int64_t TableVersion::EncodeValueLocked(size_t col, const DmlValue& value) {
  const std::string& name = base_->column_names()[col];
  if (!base_->HasDictionary(name)) return value.i64;
  const StringDictionary& dict = base_->dictionary(name);
  const std::vector<std::string>& values = dict.values();
  auto it = std::lower_bound(values.begin(), values.end(), value.str);
  if (it != values.end() && *it == value.str) {
    return static_cast<int64_t>(it - values.begin());
  }
  return delta_.InternOverflow(col, value.str, values.size());
}

Status TableVersion::MatchLocked(const DmlPredicate& pred,
                                 std::vector<uint32_t>* base_oids,
                                 std::vector<uint32_t>* delta_rows) const {
  const std::vector<std::string>& names = base_->column_names();
  const int idx = ColumnIndex(names, pred.column);
  if (idx < 0) {
    return Status::InvalidArgument("predicate column '" + pred.column +
                                   "' does not exist");
  }
  Status check = CheckValueLocked(static_cast<size_t>(idx), pred.value);
  if (!check.ok()) return check;

  const std::string& name = names[idx];
  const EncodedColumn& col = base_->column(name);
  const size_t n_base = base_->row_count();
  const bool is_dict = base_->HasDictionary(name);
  if (is_dict) {
    const std::vector<std::string>& values = base_->dictionary(name).values();
    auto it = std::lower_bound(values.begin(), values.end(), pred.value.str);
    const Code lb = static_cast<Code>(it - values.begin());
    const bool exact = it != values.end() && *it == pred.value.str;
    for (size_t oid = 0; oid < n_base; ++oid) {
      if (delta_.base_dead(static_cast<uint32_t>(oid))) continue;
      if (CompareCode(pred.op, col.Get(oid), lb, exact)) {
        base_oids->push_back(static_cast<uint32_t>(oid));
      }
    }
  } else {
    const int64_t domain_base = base_->domain_base(name);
    for (size_t oid = 0; oid < n_base; ++oid) {
      if (delta_.base_dead(static_cast<uint32_t>(oid))) continue;
      const int64_t native =
          domain_base + static_cast<int64_t>(col.Get(oid));
      if (CompareInt(pred.op, native, pred.value.i64)) {
        base_oids->push_back(static_cast<uint32_t>(oid));
      }
    }
  }

  const size_t dict_size =
      is_dict ? base_->dictionary(name).size() : 0;
  for (size_t r = 0; r < delta_.row_count(); ++r) {
    if (delta_.row_dead(r)) continue;
    const int64_t stored = delta_.row(r)[idx];
    bool match;
    if (is_dict) {
      const size_t id = static_cast<size_t>(stored);
      const std::string& s =
          id < dict_size ? base_->dictionary(name).Decode(id)
                         : delta_.overflow(idx)[id - dict_size];
      match = CompareStr(pred.op, s, pred.value.str);
    } else {
      match = CompareInt(pred.op, stored, pred.value.i64);
    }
    if (match) delta_rows->push_back(static_cast<uint32_t>(r));
  }
  return Status::Ok();
}

DmlOutcome TableVersion::ApplyInsertLocked(const DmlCommand& cmd) {
  DmlOutcome out;
  const std::vector<std::string>& names = base_->column_names();
  if (cmd.columns.size() != names.size()) {
    out.status = Status::InvalidArgument(
        "insert must assign every column (" + std::to_string(names.size()) +
        " expected, " + std::to_string(cmd.columns.size()) + " named)");
    return out;
  }
  // colmap[k] = table column index of cmd.columns[k].
  std::vector<size_t> colmap(cmd.columns.size());
  std::unordered_set<size_t> seen;
  for (size_t k = 0; k < cmd.columns.size(); ++k) {
    const int idx = ColumnIndex(names, cmd.columns[k]);
    if (idx < 0) {
      out.status = Status::InvalidArgument("unknown column '" +
                                           cmd.columns[k] + "'");
      return out;
    }
    if (!seen.insert(static_cast<size_t>(idx)).second) {
      out.status = Status::InvalidArgument("column '" + cmd.columns[k] +
                                           "' assigned twice");
      return out;
    }
    colmap[k] = static_cast<size_t>(idx);
  }

  for (size_t r = 0; r < cmd.rows.size(); ++r) {
    const std::vector<DmlValue>& values = cmd.rows[r];
    if (values.size() != cmd.columns.size()) {
      out.row_errors.push_back(
          {static_cast<uint32_t>(r), StatusCode::kInvalidArgument,
           "row has " + std::to_string(values.size()) + " values, " +
               std::to_string(cmd.columns.size()) + " columns named"});
      ++out.rows_rejected;
      continue;
    }
    // Validate the whole row before interning anything.
    Status row_status;
    for (size_t k = 0; k < values.size() && row_status.ok(); ++k) {
      row_status = CheckValueLocked(colmap[k], values[k]);
    }
    if (!row_status.ok()) {
      out.row_errors.push_back({static_cast<uint32_t>(r), row_status.code,
                                std::move(row_status.detail)});
      ++out.rows_rejected;
      continue;
    }
    std::vector<int64_t> row(names.size(), 0);
    for (size_t k = 0; k < values.size(); ++k) {
      row[colmap[k]] = EncodeValueLocked(colmap[k], values[k]);
    }
    delta_.AppendRow(std::move(row));
    ++out.rows_affected;
  }
  return out;
}

DmlOutcome TableVersion::ApplyDeleteLocked(const DmlCommand& cmd) {
  DmlOutcome out;
  if (!cmd.has_predicate) {
    out.status = Status::InvalidArgument("delete requires a predicate");
    return out;
  }
  std::vector<uint32_t> base_oids, delta_rows;
  out.status = MatchLocked(cmd.predicate, &base_oids, &delta_rows);
  if (!out.status.ok()) return out;
  for (uint32_t oid : base_oids) {
    if (delta_.TombstoneBase(oid)) ++out.rows_affected;
  }
  for (uint32_t r : delta_rows) {
    if (delta_.TombstoneDelta(r)) ++out.rows_affected;
  }
  return out;
}

DmlOutcome TableVersion::ApplyUpdateLocked(const DmlCommand& cmd) {
  DmlOutcome out;
  if (!cmd.has_predicate) {
    out.status = Status::InvalidArgument("update requires a predicate");
    return out;
  }
  if (cmd.columns.empty() || cmd.rows.size() != 1 ||
      cmd.rows[0].size() != cmd.columns.size()) {
    out.status = Status::InvalidArgument(
        "update needs a SET list: columns plus one parallel value row");
    return out;
  }
  const std::vector<std::string>& names = base_->column_names();
  std::vector<size_t> colmap(cmd.columns.size());
  std::unordered_set<size_t> seen;
  for (size_t k = 0; k < cmd.columns.size(); ++k) {
    const int idx = ColumnIndex(names, cmd.columns[k]);
    if (idx < 0) {
      out.status = Status::InvalidArgument("unknown column '" +
                                           cmd.columns[k] + "'");
      return out;
    }
    if (!seen.insert(static_cast<size_t>(idx)).second) {
      out.status = Status::InvalidArgument("column '" + cmd.columns[k] +
                                           "' assigned twice");
      return out;
    }
    colmap[k] = static_cast<size_t>(idx);
    out.status = CheckValueLocked(colmap[k], cmd.rows[0][k]);
    if (!out.status.ok()) return out;
  }

  std::vector<uint32_t> base_oids, delta_rows;
  out.status = MatchLocked(cmd.predicate, &base_oids, &delta_rows);
  if (!out.status.ok()) return out;

  // Encode the SET values once — the same stored form lands in every
  // rewritten row.
  std::vector<int64_t> set_values(cmd.columns.size());
  for (size_t k = 0; k < cmd.columns.size(); ++k) {
    set_values[k] = EncodeValueLocked(colmap[k], cmd.rows[0][k]);
  }

  // Delete+insert: materialize each matched row in stored form (a base
  // code IS a valid delta id for its dictionary; numerics decode to the
  // native), override the SET columns, tombstone, re-append.
  for (uint32_t oid : base_oids) {
    std::vector<int64_t> row(names.size());
    for (size_t c = 0; c < names.size(); ++c) {
      const EncodedColumn& col = base_->column(names[c]);
      if (base_->HasDictionary(names[c])) {
        row[c] = static_cast<int64_t>(col.Get(oid));
      } else {
        row[c] = base_->domain_base(names[c]) +
                 static_cast<int64_t>(col.Get(oid));
      }
    }
    for (size_t k = 0; k < colmap.size(); ++k) row[colmap[k]] = set_values[k];
    if (!delta_.TombstoneBase(oid)) continue;
    delta_.AppendRow(std::move(row));
    ++out.rows_affected;
  }
  for (uint32_t r : delta_rows) {
    std::vector<int64_t> row = delta_.row(r);
    for (size_t k = 0; k < colmap.size(); ++k) row[colmap[k]] = set_values[k];
    if (!delta_.TombstoneDelta(r)) continue;
    delta_.AppendRow(std::move(row));
    ++out.rows_affected;
  }
  return out;
}

DmlOutcome TableVersion::Apply(const DmlCommand& cmd) {
  std::lock_guard<std::mutex> lock(mu_);
  DmlOutcome out;
  switch (cmd.op) {
    case DmlOp::kInsert: out = ApplyInsertLocked(cmd); break;
    case DmlOp::kDelete: out = ApplyDeleteLocked(cmd); break;
    case DmlOp::kUpdate: out = ApplyUpdateLocked(cmd); break;
    default:
      out.status = Status::InvalidArgument("unknown DML op");
      break;
  }
  out.delta_rows = delta_.live_rows();
  out.epoch = epoch_;
  return out;
}

DeltaSnapshot TableVersion::CopySnapshotLocked() const {
  DeltaSnapshot snap;
  snap.rows.reserve(delta_.row_count());
  snap.row_dead.reserve(delta_.row_count());
  for (size_t r = 0; r < delta_.row_count(); ++r) {
    snap.rows.push_back(delta_.row(r));
    snap.row_dead.push_back(delta_.row_dead(r) ? 1 : 0);
  }
  snap.base_tombstones = delta_.base_tombstones();
  snap.overflow.resize(delta_.num_columns());
  for (size_t c = 0; c < delta_.num_columns(); ++c) {
    snap.overflow[c] = delta_.overflow(c);
  }
  snap.consumed_rows = delta_.row_count();
  snap.consumed_base_tombstones = delta_.base_tombstones().size();
  snap.consumed_delta_tombstones = delta_.delta_tombstones().size();
  snap.seq = delta_.mutation_seq();
  return snap;
}

std::shared_ptr<const Table> TableVersion::Snapshot() {
  std::shared_ptr<const Table> base;
  DeltaSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (delta_.empty()) return base_;
    if (merged_cache_ && merged_seq_ == delta_.mutation_seq()) {
      return merged_cache_;
    }
    base = base_;
    snap = CopySnapshotLocked();
  }
  MergedTable merged = BuildMergedTable(*base, snap);
  std::shared_ptr<const Table> result = std::move(merged.table);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (base_ == base && delta_.mutation_seq() == snap.seq) {
      merged_cache_ = result;
      merged_seq_ = snap.seq;
    }
  }
  return result;
}

TableVersion::CompactionJob TableVersion::BeginCompaction() {
  std::lock_guard<std::mutex> lock(mu_);
  CompactionJob job;
  job.base = base_;
  job.snap = CopySnapshotLocked();
  job.epoch = epoch_;
  return job;
}

bool TableVersion::Publish(const CompactionJob& job, MergedTable merged) {
  std::lock_guard<std::mutex> lock(mu_);
  if (base_ != job.base) return false;
  const std::vector<std::string>& names = base_->column_names();
  DeltaStore fresh(names.size());

  // Tail rows: re-encode dictionary ids against the merged dictionary (a
  // value absent there goes to the fresh overflow); numerics are stored
  // native, so they carry over untouched.
  for (size_t r = job.snap.consumed_rows; r < delta_.row_count(); ++r) {
    std::vector<int64_t> row = delta_.row(r);
    for (size_t c = 0; c < names.size(); ++c) {
      if (!base_->HasDictionary(names[c])) continue;
      const StringDictionary& old_dict = base_->dictionary(names[c]);
      const size_t id = static_cast<size_t>(row[c]);
      const std::string& s = id < old_dict.size()
                                 ? old_dict.Decode(id)
                                 : delta_.overflow(c)[id - old_dict.size()];
      const StringDictionary& new_dict = merged.table->dictionary(names[c]);
      const std::vector<std::string>& values = new_dict.values();
      auto it = std::lower_bound(values.begin(), values.end(), s);
      row[c] = (it != values.end() && *it == s)
                   ? static_cast<int64_t>(it - values.begin())
                   : fresh.InternOverflow(c, s, values.size());
    }
    fresh.AppendRow(std::move(row));
  }

  // Tail base tombstones: the target row lives in the merged image at a
  // translated oid (or was already gone at snapshot time).
  const std::vector<uint32_t>& base_tombs = delta_.base_tombstones();
  for (size_t i = job.snap.consumed_base_tombstones; i < base_tombs.size();
       ++i) {
    const uint32_t oid = base_tombs[i];
    if (oid < merged.new_oid_of_base.size() &&
        merged.new_oid_of_base[oid] != kNoOid) {
      fresh.TombstoneBase(merged.new_oid_of_base[oid]);
    }
  }

  // Tail delta tombstones: a pre-snapshot target became a merged base row;
  // a post-snapshot target keeps its (renumbered) delta index.
  const std::vector<uint32_t>& delta_tombs = delta_.delta_tombstones();
  for (size_t i = job.snap.consumed_delta_tombstones; i < delta_tombs.size();
       ++i) {
    const uint32_t r = delta_tombs[i];
    if (r < job.snap.consumed_rows) {
      if (r < merged.new_oid_of_delta.size() &&
          merged.new_oid_of_delta[r] != kNoOid) {
        fresh.TombstoneBase(merged.new_oid_of_delta[r]);
      }
    } else {
      fresh.TombstoneDelta(r - static_cast<uint32_t>(job.snap.consumed_rows));
    }
  }

  base_ = std::move(merged.table);
  delta_ = std::move(fresh);
  ++epoch_;
  merged_cache_.reset();
  merged_seq_ = 0;
  return true;
}

void TableVersion::ReplaceBase(std::shared_ptr<const Table> base,
                               bool clear_delta) {
  std::lock_guard<std::mutex> lock(mu_);
  MCSORT_CHECK(base != nullptr);
  const bool schema_changed =
      base->column_names().size() != delta_.num_columns();
  base_ = std::move(base);
  if (clear_delta || schema_changed) {
    delta_ = DeltaStore(base_->column_names().size());
  }
  ++epoch_;
  merged_cache_.reset();
  merged_seq_ = 0;
}

uint64_t TableVersion::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

uint64_t TableVersion::delta_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delta_.live_rows();
}

uint64_t TableVersion::live_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_->row_count() - delta_.base_tombstones().size() +
         delta_.live_rows();
}

uint64_t TableVersion::pending_mutations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delta_.row_count() + delta_.base_tombstones().size() +
         delta_.delta_tombstones().size();
}

size_t TableVersion::delta_memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delta_.MemoryBytes();
}

std::shared_ptr<const Table> TableVersion::base() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_;
}

}  // namespace delta
}  // namespace mcsort

#include "mcsort/delta/merge_scan.h"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <utility>

#include "mcsort/common/bits.h"
#include "mcsort/common/logging.h"
#include "mcsort/storage/column.h"
#include "mcsort/storage/dictionary.h"

namespace mcsort {
namespace delta {
namespace {

// Sorted union of the base dictionary and the overflow values, plus the
// monotone remaps old code -> new code and overflow id -> new code.
struct DictMerge {
  std::vector<std::string> merged;       // strictly ascending
  std::vector<Code> new_code_of_dict;    // size = dict.size()
  std::vector<Code> new_code_of_ovf;     // size = overflow.size()
};

DictMerge MergeDictionary(const StringDictionary& dict,
                          const std::vector<std::string>& overflow) {
  DictMerge out;
  const std::vector<std::string>& base_values = dict.values();
  // Overflow values arrive in intern (id) order; sort an index over them so
  // the union merge is linear while new_code_of_ovf stays id-addressed.
  std::vector<size_t> ovf_order(overflow.size());
  std::iota(ovf_order.begin(), ovf_order.end(), 0);
  std::sort(ovf_order.begin(), ovf_order.end(),
            [&](size_t a, size_t b) { return overflow[a] < overflow[b]; });

  out.merged.reserve(base_values.size() + overflow.size());
  out.new_code_of_dict.resize(base_values.size());
  out.new_code_of_ovf.resize(overflow.size());
  size_t i = 0, j = 0;
  while (i < base_values.size() || j < ovf_order.size()) {
    Code next = static_cast<Code>(out.merged.size());
    if (j >= ovf_order.size() ||
        (i < base_values.size() && base_values[i] < overflow[ovf_order[j]])) {
      out.new_code_of_dict[i] = next;
      out.merged.push_back(base_values[i]);
      ++i;
    } else if (i >= base_values.size() ||
               overflow[ovf_order[j]] < base_values[i]) {
      out.new_code_of_ovf[ovf_order[j]] = next;
      out.merged.push_back(overflow[ovf_order[j]]);
      ++j;
    } else {
      // Equal — the interning invariant says this cannot happen, but a
      // duplicate must not reach FromSorted's strict-ascending CHECK.
      out.new_code_of_dict[i] = next;
      out.new_code_of_ovf[ovf_order[j]] = next;
      out.merged.push_back(base_values[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace

MergedTable BuildMergedTable(const Table& base, const DeltaSnapshot& snap) {
  MergedTable out;
  const std::vector<std::string>& names = base.column_names();
  const size_t n_base = base.row_count();
  const size_t n_delta = snap.rows.size();

  // Row layout: live base rows in oid order, then live delta rows in
  // arrival order. Deterministic, so scan-merge and compaction agree.
  out.new_oid_of_base.assign(n_base, kNoOid);
  out.new_oid_of_delta.assign(n_delta, kNoOid);
  std::vector<uint8_t> base_dead(n_base, 0);
  for (uint32_t oid : snap.base_tombstones) {
    if (oid < n_base) base_dead[oid] = 1;
  }
  uint32_t next_oid = 0;
  for (size_t oid = 0; oid < n_base; ++oid) {
    if (!base_dead[oid]) out.new_oid_of_base[oid] = next_oid++;
  }
  for (size_t r = 0; r < n_delta; ++r) {
    if (snap.row_dead.size() <= r || !snap.row_dead[r]) {
      out.new_oid_of_delta[r] = next_oid++;
    }
  }
  const size_t n_live = next_oid;

  out.table = std::make_shared<Table>(n_live);
  for (size_t c = 0; c < names.size(); ++c) {
    const std::string& name = names[c];
    const EncodedColumn& old_col = base.column(name);
    EncodedColumn merged_col;

    if (base.HasDictionary(name)) {
      const StringDictionary& dict = base.dictionary(name);
      static const std::vector<std::string> kNoOverflow;
      const std::vector<std::string>& overflow =
          c < snap.overflow.size() ? snap.overflow[c] : kNoOverflow;
      DictMerge dm = MergeDictionary(dict, overflow);
      const int width =
          std::max(1, BitsForCount(static_cast<uint64_t>(dm.merged.size())));
      merged_col.Reset(width, n_live);
      for (size_t oid = 0; oid < n_base; ++oid) {
        uint32_t dst = out.new_oid_of_base[oid];
        if (dst == kNoOid) continue;
        merged_col.Set(dst, dm.new_code_of_dict[old_col.Get(oid)]);
      }
      for (size_t r = 0; r < n_delta; ++r) {
        uint32_t dst = out.new_oid_of_delta[r];
        if (dst == kNoOid) continue;
        const int64_t id = snap.rows[r][c];
        MCSORT_CHECK(id >= 0);
        const size_t uid = static_cast<size_t>(id);
        if (uid < dm.new_code_of_dict.size()) {
          merged_col.Set(dst, dm.new_code_of_dict[uid]);
        } else {
          const size_t ovf = uid - dm.new_code_of_dict.size();
          MCSORT_CHECK(ovf < dm.new_code_of_ovf.size());
          merged_col.Set(dst, dm.new_code_of_ovf[ovf]);
        }
      }
      out.table->AddColumnParts(
          name, std::move(merged_col),
          std::make_unique<StringDictionary>(
              StringDictionary::FromSorted(std::move(dm.merged))),
          /*domain_base=*/0);
      continue;
    }

    // Numeric (plain code or domain-encoded): keep the old base unless a
    // delta native sits below it — lowering the base shifts every existing
    // code up uniformly, preserving order; widen to cover the merged range.
    const int64_t old_base = base.domain_base(name);
    uint64_t max_base_code = 0;
    for (size_t oid = 0; oid < n_base; ++oid) {
      if (out.new_oid_of_base[oid] == kNoOid) continue;
      max_base_code = std::max<uint64_t>(max_base_code, old_col.Get(oid));
    }
    int64_t new_base = old_base;
    uint64_t max_rel = max_base_code;
    for (size_t r = 0; r < n_delta; ++r) {
      if (out.new_oid_of_delta[r] == kNoOid) continue;
      new_base = std::min(new_base, snap.rows[r][c]);
    }
    const uint64_t shift =
        static_cast<uint64_t>(old_base) - static_cast<uint64_t>(new_base);
    max_rel = max_base_code + shift;
    for (size_t r = 0; r < n_delta; ++r) {
      if (out.new_oid_of_delta[r] == kNoOid) continue;
      const uint64_t rel = static_cast<uint64_t>(snap.rows[r][c]) -
                           static_cast<uint64_t>(new_base);
      max_rel = std::max(max_rel, rel);
    }
    const int width = std::max(1, BitsForValue(max_rel));
    merged_col.Reset(width, n_live);
    for (size_t oid = 0; oid < n_base; ++oid) {
      uint32_t dst = out.new_oid_of_base[oid];
      if (dst == kNoOid) continue;
      merged_col.Set(dst, old_col.Get(oid) + shift);
    }
    for (size_t r = 0; r < n_delta; ++r) {
      uint32_t dst = out.new_oid_of_delta[r];
      if (dst == kNoOid) continue;
      merged_col.Set(dst, static_cast<uint64_t>(snap.rows[r][c]) -
                              static_cast<uint64_t>(new_base));
    }
    out.table->AddColumnParts(name, std::move(merged_col), nullptr, new_base);
  }
  return out;
}

}  // namespace delta
}  // namespace mcsort

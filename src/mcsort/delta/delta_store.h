// DeltaStore — the row-oriented, append-friendly side file of one table.
//
// The encoded base (storage/table.h) stays immutable; every mutation lands
// here: INSERTs append full rows, DELETEs record tombstones (against base
// oids or earlier delta rows), UPDATEs are delete+insert. The store keeps
// its own in-memory index — hash sets over both tombstone kinds and a
// per-column intern table for strings outside the base dictionary — so
// membership checks during scans and repeated DML stay O(1).
//
// Row representation: one int64 per column.
//   * numeric columns (plain or domain-encoded) store the NATIVE value —
//     encoding against a base is deferred to merge/compaction, so the
//     stored row never goes stale when the base is re-encoded;
//   * string (dictionary) columns store a value id: ids < dict_size are
//     base dictionary codes, ids >= dict_size index the per-column
//     overflow table (`id - dict_size`), the "unmappable until
//     compaction" route of the paper-preserving write path.
//
// Thread contract: NOT thread-safe. TableVersion (table_version.h) owns
// the store and serializes access under its mutex; snapshots for
// merge-at-scan and compaction are prefix copies taken under that mutex.
#ifndef MCSORT_DELTA_DELTA_STORE_H_
#define MCSORT_DELTA_DELTA_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mcsort {
namespace delta {

class DeltaStore {
 public:
  DeltaStore() = default;
  explicit DeltaStore(size_t num_columns) : num_columns_(num_columns) {}

  DeltaStore(DeltaStore&&) = default;
  DeltaStore& operator=(DeltaStore&&) = default;

  size_t num_columns() const { return num_columns_; }

  // --- rows ---------------------------------------------------------------
  // Appends a full row (values.size() == num_columns()); returns its delta
  // row index.
  uint32_t AppendRow(std::vector<int64_t> values);
  size_t row_count() const { return rows_.size(); }
  const std::vector<int64_t>& row(size_t i) const { return rows_[i]; }
  bool row_dead(size_t i) const { return dead_[i] != 0; }
  // Live (not tombstoned) delta rows.
  uint64_t live_rows() const { return rows_.size() - dead_count_; }

  // --- tombstones ---------------------------------------------------------
  // Tombstones a base row by oid / a delta row by index. Idempotent;
  // returns true when the row was live before the call. Tombstones are
  // kept in arrival order so snapshots can consume a stable prefix.
  bool TombstoneBase(uint32_t oid);
  bool TombstoneDelta(uint32_t row);
  bool base_dead(uint32_t oid) const {
    return base_tomb_set_.count(oid) != 0;
  }
  const std::vector<uint32_t>& base_tombstones() const {
    return base_tomb_list_;
  }
  const std::vector<uint32_t>& delta_tombstones() const {
    return delta_tomb_list_;
  }

  // --- per-column string overflow -----------------------------------------
  // Interns `value` into column `col`'s overflow table and returns the
  // stored id (dict_size + overflow index). Deduplicated: re-interning the
  // same string returns the same id.
  int64_t InternOverflow(size_t col, const std::string& value,
                         size_t dict_size);
  // Looks up `value` without interning; returns the stored id or -1.
  int64_t FindOverflow(size_t col, const std::string& value,
                       size_t dict_size) const;
  const std::vector<std::string>& overflow(size_t col) const;
  size_t overflow_size(size_t col) const;

  // Total mutations applied (rows + tombstones) — the cache key
  // merge-at-scan uses to invalidate its materialized image.
  uint64_t mutation_seq() const { return mutation_seq_; }

  bool empty() const {
    return rows_.empty() && base_tomb_list_.empty() &&
           delta_tomb_list_.empty();
  }

  // Approximate resident footprint for metrics.
  size_t MemoryBytes() const;

 private:
  size_t num_columns_ = 0;
  std::vector<std::vector<int64_t>> rows_;
  std::vector<uint8_t> dead_;  // parallel to rows_
  size_t dead_count_ = 0;
  std::vector<uint32_t> base_tomb_list_;   // arrival order (snapshot prefix)
  std::unordered_set<uint32_t> base_tomb_set_;   // O(1) membership index
  std::vector<uint32_t> delta_tomb_list_;
  std::vector<std::vector<std::string>> overflow_;  // per column, id order
  std::vector<std::unordered_map<std::string, size_t>> overflow_index_;
  uint64_t mutation_seq_ = 0;
};

}  // namespace delta
}  // namespace mcsort

#endif  // MCSORT_DELTA_DELTA_STORE_H_

// Merge-at-scan: materializing one consistent, fully encoded Table out of
// an immutable base and a delta snapshot — the read path of the write
// tier, and (by deliberate reuse) the compactor's re-encode step.
//
// The merged image appends live delta rows after the live base rows and
// re-encodes every column so the order-preserving invariant holds across
// both sources:
//
//   * string columns grow their dictionary: the merged dictionary is the
//     sorted union of the base dictionary and the column's overflow
//     values; base codes are remapped monotonically (new code = old code
//     + #new values sorting below it) — growth without touching native
//     values, the paper's encode-ahead premise preserved;
//   * numeric columns keep their domain base unless a delta native sits
//     below it (then the base drops and existing codes shift up
//     uniformly), and the width widens to cover the merged range;
//   * tombstoned rows (base or delta) are simply not emitted.
//
// Because compaction publishes exactly BuildMergedTable's output, a query
// over base+delta and the same query after compaction see value-identical
// tables by construction.
#ifndef MCSORT_DELTA_MERGE_SCAN_H_
#define MCSORT_DELTA_MERGE_SCAN_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "mcsort/storage/table.h"

namespace mcsort {
namespace delta {

// A consistent copy of a DeltaStore prefix, taken under the owning
// TableVersion's mutex. The consumed_* counts let the compactor's publish
// step translate mutations that arrived after the snapshot.
struct DeltaSnapshot {
  std::vector<std::vector<int64_t>> rows;   // prefix copy, dead included
  std::vector<uint8_t> row_dead;            // parallel to rows
  std::vector<uint32_t> base_tombstones;    // prefix copy, arrival order
  std::vector<std::vector<std::string>> overflow;  // per column, id order
  size_t consumed_rows = 0;
  size_t consumed_base_tombstones = 0;
  size_t consumed_delta_tombstones = 0;
  uint64_t seq = 0;

  bool empty() const { return rows.empty() && base_tombstones.empty(); }
};

constexpr uint32_t kNoOid = std::numeric_limits<uint32_t>::max();

// The merged image plus the oid translation the compactor needs to carry
// post-snapshot tombstones across the publish.
struct MergedTable {
  std::shared_ptr<Table> table;
  // base oid -> merged oid (kNoOid when the base row was tombstoned).
  std::vector<uint32_t> new_oid_of_base;
  // delta row index (< consumed_rows) -> merged oid (kNoOid when dead).
  std::vector<uint32_t> new_oid_of_delta;
};

// Builds the merged table. `snap` must describe rows of `base`'s schema
// (same column count/order); stored string ids must be valid against the
// base dictionary + snapshot overflow, which Apply guarantees.
MergedTable BuildMergedTable(const Table& base, const DeltaSnapshot& snap);

}  // namespace delta
}  // namespace mcsort

#endif  // MCSORT_DELTA_MERGE_SCAN_H_

// DML data model of the write path — the typed commands INSERT / UPDATE /
// DELETE that mutate a table through its delta store (delta_store.h), and
// the typed per-row outcome they produce.
//
// Values travel in *native* space: numeric columns carry the int64 native
// value (what `domain_base + code` decodes to; for a plain code column the
// native value IS the code), string columns carry the string itself. The
// delta store encodes natives against the base table's dictionary on
// apply, routing unmappable strings through a per-column overflow mapping
// until compaction re-encodes everything (merge_scan.h).
//
// This header is wire-agnostic on purpose: net/protocol.h provides the
// codec for shipping a DmlCommand over the kDml frame, and the service
// applies it; neither direction depends on the other's internals.
#ifndef MCSORT_DELTA_DML_H_
#define MCSORT_DELTA_DML_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mcsort/common/status.h"

namespace mcsort {
namespace delta {

enum class DmlOp : uint8_t {
  kInsert = 1,  // append `rows` (every table column must be assigned)
  kDelete = 2,  // tombstone the live rows matching `predicate`
  kUpdate = 3,  // delete+insert: rewrite matching rows with the SET values
};

// Stable lowercase name ("insert", ...) for metrics keys and logs.
const char* DmlOpName(DmlOp op);

// One native value: an int64 or a string (for dictionary columns).
struct DmlValue {
  bool is_string = false;
  int64_t i64 = 0;
  std::string str;

  static DmlValue Int(int64_t v) {
    DmlValue value;
    value.i64 = v;
    return value;
  }
  static DmlValue String(std::string s) {
    DmlValue value;
    value.is_string = true;
    value.str = std::move(s);
    return value;
  }
};

// Native-space comparison for DELETE / UPDATE row selection. Evaluated
// code-side on the immutable base (order-preserving codes make range
// predicates exact) and value-side on delta rows.
enum class DmlCompareOp : uint8_t {
  kEq = 0,
  kNe = 1,
  kLt = 2,
  kLe = 3,
  kGt = 4,
  kGe = 5,
};

struct DmlPredicate {
  std::string column;
  DmlCompareOp op = DmlCompareOp::kEq;
  DmlValue value;
};

// One mutation command. INSERT: `columns` names every assigned column (a
// permutation of the table's columns) and `rows` holds one value vector
// per row, parallel to `columns`. UPDATE: `columns`/`rows[0]` are the SET
// list and `predicate` selects the rows to rewrite. DELETE: only
// `predicate` is read.
struct DmlCommand {
  DmlOp op = DmlOp::kInsert;
  std::string table;  // empty = the service's default table
  std::vector<std::string> columns;
  std::vector<std::vector<DmlValue>> rows;
  bool has_predicate = false;
  DmlPredicate predicate;
};

// A row INSERT that could not be applied: its index in `rows`, the typed
// reason, and a human-readable elaboration. Rejected rows are skipped;
// accepted rows in the same command still land (partial application is
// reported, never silent).
struct DmlRowError {
  uint32_t row = 0;
  StatusCode code = StatusCode::kInvalidArgument;
  std::string detail;
};

// The outcome of applying one DmlCommand. `status` is the op-level
// verdict (kNotFound for an unknown table, kInvalidArgument for a
// malformed column list / predicate — cases where nothing was applied);
// row-level INSERT failures land in `row_errors` with `status` still ok.
struct DmlOutcome {
  Status status;
  uint64_t rows_affected = 0;  // inserted / tombstoned / rewritten
  uint64_t rows_rejected = 0;  // INSERT rows skipped with a row error
  uint64_t delta_rows = 0;     // live delta rows after the op
  uint64_t epoch = 0;          // the table version's epoch after the op
  std::vector<DmlRowError> row_errors;

  bool ok() const { return status.ok(); }
};

}  // namespace delta
}  // namespace mcsort

#endif  // MCSORT_DELTA_DML_H_

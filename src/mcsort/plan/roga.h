// ROGA — the paper's round-based greedy plan search (Algorithm 1).
//
// Round-based: candidate plans are explored by round count k = 1, 2, ...
// up to the Lemma 2 bound floor(2(W-1)/b_min) + 1. For each k the valid
// bank-size combinations are enumerated (with Property-1 pruning); within
// a combination, two-round (and one-round) subspaces are costed
// exhaustively while k >= 3 subspaces are constructed greedily: bits a_i
// are assigned to round i to minimize the estimated sorting cost of round
// i + 1, and the remainder goes to the last round.
//
// A stopwatch bounds the whole search: once the elapsed time exceeds
// rho * (estimated cost of the best plan so far) the search returns — the
// optimizer must never become the bottleneck (Sec. 5, Appendix C).
//
// For GROUP BY / PARTITION BY instances the column order is free, so the
// search additionally permutes the input columns (the plan space is m!
// larger); the chosen permutation is returned.
#ifndef MCSORT_PLAN_ROGA_H_
#define MCSORT_PLAN_ROGA_H_

#include <cstdint>
#include <vector>

#include "mcsort/cost/cost_model.h"
#include "mcsort/massage/plan.h"

namespace mcsort {

class ExecContext;  // common/exec_context.h

struct SearchOptions {
  // Time threshold rho: stop when elapsed > rho * best-plan estimated
  // runtime. The paper recommends 0.1%. <= 0 disables the time bound
  // ("N/S" in Appendix C).
  double rho = 0.001;
  // Budget floor in seconds: rho * T(P*) can be microseconds for small
  // instances (the paper's SF 1-10 instances imply budgets of 0.1 ms and
  // up); the floor keeps the search meaningful at reduced scales. Plans
  // with one round are always explored regardless of the budget.
  double min_budget_seconds = 200e-6;
  // Permute the column order (GROUP BY / PARTITION BY semantics). For
  // ORDER BY the attribute order is fixed.
  bool permute_columns = false;
  // When permuting, only the first `permute_prefix` columns are order-free
  // (-1 = all). PARTITION BY p1, p2 ORDER BY o uses prefix = 2: the window
  // order attribute must stay last.
  int permute_prefix = -1;
  // Safety cap on the round count explored (on top of Lemma 2).
  int max_rounds_cap = 12;
  // Warm start (plan-cache reuse): when non-null and width-compatible with
  // the instance, this plan (under `warm_start_order`, identity when null)
  // is costed and seeds P* alongside P0 before the search. A good warm
  // start shrinks the rho budget immediately, so re-planning after table
  // statistics drift costs a fraction of a cold search. Borrowed pointers;
  // must outlive the call.
  const MassagePlan* warm_start = nullptr;
  const std::vector<int>* warm_start_order = nullptr;
  // Bank-width cap in bits (0 = unrestricted): only plans whose rounds all
  // use banks <= max_bank are considered. The executor re-plans with a cap
  // when the unrestricted plan's scratch estimate exceeds the ExecContext's
  // scratch budget — narrower banks mean narrower key columns and scratch.
  // Any width is feasible at the narrowest cap (16): rounds split the
  // concatenated bits at arbitrary boundaries, so the search seeds P* with
  // ceil(W / max_bank) rounds of max_bank bits instead of P0 when P0 would
  // violate the cap. A non-compliant warm start is ignored.
  int max_bank = 0;
  // Cooperative stop: a stoppable context makes the search return its best
  // plan so far as soon as a cancellation / deadline / injected fault is
  // observed (flagged as timed_out). The caller re-checks the context and
  // discards the result on a stop. Borrowed; may be null.
  const ExecContext* ctx = nullptr;
  // Kernel-choice dimension: every candidate plan is costed with the
  // cheapest allowed kernel per round (cost_model.h), and the winning
  // plan's rounds are annotated with the chosen kernels for the executor.
  // Defaults to all routable kernels, restrictable via MCSORT_KERNELS.
  SortKernelMask kernels = KernelMaskFromEnv();
};

struct SearchResult {
  MassagePlan plan;                // best plan found
  double estimated_cycles = 0;     // its T_mcs estimate
  std::vector<int> column_order;   // input permutation the plan applies to
  size_t plans_costed = 0;         // number of full plans costed
  double search_seconds = 0;       // wall time spent searching
  bool timed_out = false;          // stopped by the rho stopwatch
};

SearchResult RogaSearch(const CostModel& model, const SortInstanceStats& stats,
                        const SearchOptions& options = {});

}  // namespace mcsort

#endif  // MCSORT_PLAN_ROGA_H_

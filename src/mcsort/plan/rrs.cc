#include "mcsort/plan/rrs.h"

#include <algorithm>
#include <numeric>

#include "mcsort/common/bits.h"
#include "mcsort/common/logging.h"
#include "mcsort/common/random.h"
#include "mcsort/common/timer.h"
#include "mcsort/plan/enumerate.h"

namespace mcsort {
namespace {

// A candidate point in the search space: a column order plus a plan.
struct Candidate {
  std::vector<int> order;
  MassagePlan plan;
  double cycles = 0;
};

int RandomBankFor(int width, Rng& rng) {
  const int min_bank = MinBankForWidth(width);
  // Choose the minimal bank or a wider one (wider banks are part of the
  // space even if rarely optimal).
  std::vector<int> choices;
  for (int b : kBankSizes) {
    if (b >= min_bank) choices.push_back(b);
  }
  return choices[rng.NextBounded(choices.size())];
}

MassagePlan RandomPlan(int total_width, Rng& rng) {
  const int max_rounds = MaxUsefulRounds(total_width);
  const int min_rounds = (total_width + kMaxBankBits - 1) / kMaxBankBits;
  const int k = min_rounds +
                static_cast<int>(rng.NextBounded(
                    static_cast<uint64_t>(max_rounds - min_rounds + 1)));
  // Random composition of W into k parts of <= 64 via random cut points.
  std::vector<int> widths;
  int remaining = total_width;
  for (int i = 0; i < k; ++i) {
    const int rounds_left = k - i;
    if (rounds_left == 1) {
      widths.push_back(remaining);
      break;
    }
    const int lo = std::max(1, remaining - (rounds_left - 1) * kMaxBankBits);
    const int hi = std::min(kMaxBankBits, remaining - (rounds_left - 1));
    const int w = lo + static_cast<int>(rng.NextBounded(
                           static_cast<uint64_t>(hi - lo + 1)));
    widths.push_back(w);
    remaining -= w;
  }
  std::vector<Round> rounds;
  for (int w : widths) rounds.push_back({w, RandomBankFor(w, rng)});
  return MassagePlan(std::move(rounds));
}

// Produces a neighbor of `plan` at perturbation scale `delta` bits.
MassagePlan Neighbor(const MassagePlan& plan, int delta, Rng& rng) {
  std::vector<Round> rounds = plan.rounds();
  const int kind = static_cast<int>(rng.NextBounded(4));
  const size_t k = rounds.size();
  switch (kind) {
    case 0: {  // move up to `delta` bits between adjacent rounds
      if (k < 2) break;
      const size_t i = rng.NextBounded(k - 1);
      const int move = 1 + static_cast<int>(rng.NextBounded(
                               static_cast<uint64_t>(delta)));
      if (rng.NextBounded(2) == 0) {
        if (rounds[i].width + move <= kMaxBankBits &&
            rounds[i + 1].width - move >= 1) {
          rounds[i].width += move;
          rounds[i + 1].width -= move;
        }
      } else {
        if (rounds[i + 1].width + move <= kMaxBankBits &&
            rounds[i].width - move >= 1) {
          rounds[i + 1].width += move;
          rounds[i].width -= move;
        }
      }
      break;
    }
    case 1: {  // split a round
      const size_t i = rng.NextBounded(k);
      if (rounds[i].width >= 2) {
        const int left = 1 + static_cast<int>(rng.NextBounded(
                                 static_cast<uint64_t>(rounds[i].width - 1)));
        const int right = rounds[i].width - left;
        std::vector<Round> next;
        for (size_t j = 0; j < k; ++j) {
          if (j == i) {
            next.push_back({left, MinBankForWidth(left)});
            next.push_back({right, MinBankForWidth(right)});
          } else {
            next.push_back(rounds[j]);
          }
        }
        rounds = std::move(next);
      }
      break;
    }
    case 2: {  // merge adjacent rounds
      if (k < 2) break;
      const size_t i = rng.NextBounded(k - 1);
      const int merged = rounds[i].width + rounds[i + 1].width;
      if (merged <= kMaxBankBits) {
        std::vector<Round> next;
        for (size_t j = 0; j < k; ++j) {
          if (j == i) {
            next.push_back({merged, MinBankForWidth(merged)});
            ++j;  // skip the absorbed round
          } else {
            next.push_back(rounds[j]);
          }
        }
        rounds = std::move(next);
      }
      break;
    }
    default: {  // re-roll one round's bank
      const size_t i = rng.NextBounded(k);
      rounds[i].bank = RandomBankFor(rounds[i].width, rng);
      break;
    }
  }
  // Re-normalize banks that no longer fit.
  for (Round& r : rounds) {
    if (r.width > r.bank) r.bank = MinBankForWidth(r.width);
  }
  return MassagePlan(std::move(rounds));
}

}  // namespace

SearchResult RrsSearch(const CostModel& model, const SortInstanceStats& stats,
                       const RrsOptions& options) {
  MCSORT_CHECK(!stats.columns.empty());
  Rng rng(options.seed);
  Timer stopwatch;

  std::vector<int> identity(stats.columns.size());
  std::iota(identity.begin(), identity.end(), 0);

  Candidate best;
  best.order = identity;
  best.plan = MassagePlan::ColumnAtATime(stats.widths());
  best.cycles = model.EstimateCycles(best.plan, stats);
  size_t costed = 1;

  const size_t prefix =
      !options.permute_columns
          ? 0
          : (options.permute_prefix < 0
                 ? identity.size()
                 : std::min<size_t>(
                       static_cast<size_t>(options.permute_prefix),
                       identity.size()));
  const auto random_order = [&]() {
    std::vector<int> order = identity;
    for (size_t i = prefix; i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    return order;
  };

  const int total_width = stats.total_width();
  while (stopwatch.Seconds() < options.budget_seconds) {
    // Exploration: global random samples.
    Candidate incumbent = best;
    for (int s = 0; s < options.exploration_samples; ++s) {
      Candidate c;
      c.order = random_order();
      c.plan = RandomPlan(total_width, rng);
      c.cycles = model.EstimateCycles(c.plan, stats.Permuted(c.order));
      ++costed;
      if (c.cycles < incumbent.cycles) incumbent = c;
      if (stopwatch.Seconds() >= options.budget_seconds) break;
    }
    // Exploitation: shrink the neighborhood around the incumbent.
    for (int delta = std::max(1, total_width / 4); delta >= 1; delta /= 2) {
      bool improved = true;
      while (improved && stopwatch.Seconds() < options.budget_seconds) {
        improved = false;
        for (int s = 0; s < options.neighborhood_samples; ++s) {
          Candidate c;
          c.order = incumbent.order;
          c.plan = Neighbor(incumbent.plan, delta, rng);
          if (!c.plan.IsValid() ||
              c.plan.total_width() != total_width) {
            continue;
          }
          c.cycles = model.EstimateCycles(c.plan, stats.Permuted(c.order));
          ++costed;
          if (c.cycles < incumbent.cycles) {
            incumbent = c;
            improved = true;
          }
        }
      }
      if (stopwatch.Seconds() >= options.budget_seconds) break;
    }
    if (incumbent.cycles < best.cycles) best = incumbent;
  }

  SearchResult result;
  result.plan = best.plan;
  result.estimated_cycles = best.cycles;
  result.column_order = best.order;
  result.plans_costed = costed;
  result.search_seconds = stopwatch.Seconds();
  result.timed_out = true;  // RRS always runs out its budget
  return result;
}

}  // namespace mcsort

#include "mcsort/plan/roga.h"

#include <algorithm>
#include <numeric>

#include "mcsort/common/bits.h"
#include "mcsort/common/exec_context.h"
#include "mcsort/common/logging.h"
#include "mcsort/common/timer.h"
#include "mcsort/plan/enumerate.h"

namespace mcsort {
namespace {

// Plan seed when the bank cap rules out P0: ceil(W / bank) rounds of at
// most `bank` bits, all at the capped bank. Feasible for every W because
// rounds split the concatenated key bits at arbitrary boundaries.
MassagePlan NarrowestPlan(int total_width, int bank) {
  std::vector<Round> rounds;
  for (int remaining = total_width; remaining > 0; remaining -= bank) {
    rounds.push_back({std::min(remaining, bank), bank});
  }
  return MassagePlan(std::move(rounds));
}

bool WithinBankCap(const MassagePlan& plan, int max_bank) {
  if (max_bank <= 0) return true;
  for (const Round& round : plan.rounds()) {
    if (round.bank > max_bank) return false;
  }
  return true;
}

struct SearchState {
  const CostModel* model;
  const SearchOptions* options;
  Timer stopwatch;
  MassagePlan best_plan;
  double best_cycles = 0;
  std::vector<int> best_order;
  size_t plans_costed = 0;
  bool timed_out = false;

  // Line 6 of Algorithm 1: elapsed > rho * T_mcs(P*)? Also the search's
  // cooperative stop point: a cancellation / deadline / injected fault on
  // the attached ExecContext ends the search the same way the stopwatch
  // does (best-so-far plan, timed_out flagged); the caller re-checks the
  // context and discards the result.
  bool TimeUp() {
    if (options->ctx != nullptr && options->ctx->StopRequested()) {
      timed_out = true;
      return true;
    }
    if (options->rho <= 0) return false;
    const double best_seconds = best_cycles / (model->params().ghz * 1e9);
    // The floor keeps small-scale searches meaningful but must never
    // exceed a tenth of the plan's own runtime (sub-millisecond sorts
    // cannot afford a fixed 200us search).
    const double floor_seconds =
        std::min(options->min_budget_seconds, 0.1 * best_seconds);
    const double budget_seconds =
        std::max(options->rho * best_seconds, floor_seconds);
    if (stopwatch.Seconds() > budget_seconds) {
      timed_out = true;
      return true;
    }
    return false;
  }

  void Consider(const MassagePlan& plan, const SortInstanceStats& stats,
                const std::vector<int>& order) {
    const CostModel::PlanEstimate est =
        model->Estimate(plan, stats, options->kernels);
    ++plans_costed;
    if (est.total_cycles < best_cycles) {
      best_cycles = est.total_cycles;
      best_plan = plan;
      AnnotateKernels(&best_plan, est);
      best_order = order;
    }
  }

  // Stamps the cost-chosen kernel of each round onto the plan, so the
  // executor dispatches without re-running the model.
  static void AnnotateKernels(MassagePlan* plan,
                              const CostModel::PlanEstimate& est) {
    for (size_t j = 0; j < plan->num_rounds(); ++j) {
      plan->mutable_round(j)->kernel = est.rounds[j].kernel;
    }
  }
};

// Bounds for the bits a_i of round i given what is already assigned and
// the capacities of the remaining rounds.
struct WidthBounds {
  int lo;
  int hi;
};
WidthBounds BoundsForRound(int total_width, int assigned,
                           const std::vector<int>& combo, int i) {
  const int k = static_cast<int>(combo.size());
  int capacity_after = 0;
  for (int j = i + 1; j < k; ++j) capacity_after += combo[static_cast<size_t>(j)];
  const int remaining = total_width - assigned;
  WidthBounds bounds;
  bounds.lo = std::max(1, remaining - capacity_after);
  bounds.hi = std::min(combo[static_cast<size_t>(i)],
                       remaining - (k - 1 - i));  // leave >= 1 per later round
  return bounds;
}

// Explores one bank combination for one column order.
void ExploreCombo(const std::vector<int>& combo,
                  const SortInstanceStats& stats,
                  const std::vector<int>& order, SearchState* state) {
  const int total_width = stats.total_width();
  const int k = static_cast<int>(combo.size());

  if (k == 1) {
    if (total_width <= combo[0]) {
      state->Consider(MassagePlan({{total_width, combo[0]}}), stats, order);
    }
    return;
  }

  if (k == 2) {
    // Small subspace: cost every assignment (the paper costs all 16 plans
    // of the {a1/[16], a2/[64]} example).
    const WidthBounds bounds = BoundsForRound(total_width, 0, combo, 0);
    for (int a1 = bounds.lo; a1 <= bounds.hi; ++a1) {
      const int a2 = total_width - a1;
      if (a2 < 1 || a2 > combo[1]) continue;
      state->Consider(MassagePlan({{a1, combo[0]}, {a2, combo[1]}}), stats,
                      order);
    }
    return;
  }

  // k >= 3: greedy construction. Choose a_i (i = 1..k-1) minimizing the
  // estimated sorting cost of round i+1; the remainder goes to round k.
  std::vector<Round> rounds;
  int assigned = 0;
  for (int i = 0; i < k - 1; ++i) {
    const WidthBounds bounds = BoundsForRound(total_width, assigned, combo, i);
    if (bounds.lo > bounds.hi) return;  // infeasible
    int best_a = bounds.lo;
    double best_next = -1;
    for (int a = bounds.lo; a <= bounds.hi; ++a) {
      const double next = state->model->NextRoundSortCycles(
          stats, assigned + a, combo[static_cast<size_t>(i + 1)]);
      if (best_next < 0 || next < best_next) {
        best_next = next;
        best_a = a;
      }
    }
    rounds.push_back({best_a, combo[static_cast<size_t>(i)]});
    assigned += best_a;
  }
  const int last = total_width - assigned;
  if (last < 1 || last > combo.back()) return;
  rounds.push_back({last, combo.back()});
  state->Consider(MassagePlan(std::move(rounds)), stats, order);
}

void ExploreOrder(const SortInstanceStats& stats,
                  const std::vector<int>& order, SearchState* state) {
  const int total_width = stats.total_width();
  const int max_rounds =
      std::min(MaxUsefulRounds(total_width), state->options->max_rounds_cap);
  const int max_bank = state->options->max_bank;
  for (int k = 1; k <= max_rounds; ++k) {
    for (const std::vector<int>& combo : ValidBankCombos(total_width, k)) {
      // One-round plans are so cheap to cost that they are always
      // explored; the stopwatch governs everything beyond.
      if (k > 1 && state->TimeUp()) return;
      if (max_bank > 0 &&
          *std::max_element(combo.begin(), combo.end()) > max_bank) {
        continue;  // combo exceeds the scratch-degradation bank cap
      }
      ExploreCombo(combo, stats, order, state);
    }
  }
}

}  // namespace

SearchResult RogaSearch(const CostModel& model, const SortInstanceStats& stats,
                        const SearchOptions& options) {
  MCSORT_CHECK(!stats.columns.empty());
  SearchState state;
  state.model = &model;
  state.options = &options;

  std::vector<int> identity(stats.columns.size());
  std::iota(identity.begin(), identity.end(), 0);

  // Initialize P* with the original column-at-a-time plan (line 2) — or,
  // when a bank cap rules P0 out, with the narrowest capped plan, which is
  // feasible for every total width.
  state.best_plan = MassagePlan::ColumnAtATime(stats.widths());
  if (!WithinBankCap(state.best_plan, options.max_bank)) {
    state.best_plan = NarrowestPlan(stats.total_width(), options.max_bank);
  }
  {
    const CostModel::PlanEstimate est =
        model.Estimate(state.best_plan, stats, options.kernels);
    state.best_cycles = est.total_cycles;
    SearchState::AnnotateKernels(&state.best_plan, est);
  }
  state.best_order = identity;
  state.plans_costed = 1;

  // Warm start from a cached plan: consider it immediately so the rho
  // stopwatch budget is anchored by its (usually near-optimal) estimate.
  if (options.warm_start != nullptr && options.warm_start->IsValid() &&
      WithinBankCap(*options.warm_start, options.max_bank) &&
      options.warm_start->total_width() == stats.total_width()) {
    std::vector<int> warm_order = identity;
    if (options.warm_start_order != nullptr &&
        options.warm_start_order->size() == identity.size()) {
      warm_order = *options.warm_start_order;
    }
    bool order_ok = true;
    std::vector<bool> seen(warm_order.size(), false);
    for (int idx : warm_order) {
      if (idx < 0 || static_cast<size_t>(idx) >= warm_order.size() ||
          seen[static_cast<size_t>(idx)]) {
        order_ok = false;
        break;
      }
      seen[static_cast<size_t>(idx)] = true;
    }
    if (order_ok) {
      const SortInstanceStats permuted =
          warm_order == identity ? stats : stats.Permuted(warm_order);
      if (options.warm_start->total_width() == permuted.total_width()) {
        state.Consider(*options.warm_start, permuted, warm_order);
      }
    }
  }

  if (!options.permute_columns) {
    ExploreOrder(stats, identity, &state);
  } else {
    // GROUP BY / PARTITION BY: repeat for every column permutation
    // (lines 21-22); m is small (<= 7 in TPC-H). Only the first
    // `permute_prefix` columns are order-free.
    const size_t prefix = options.permute_prefix < 0
                              ? stats.columns.size()
                              : std::min<size_t>(
                                    static_cast<size_t>(options.permute_prefix),
                                    stats.columns.size());
    std::vector<int> head(identity.begin(),
                          identity.begin() + static_cast<long>(prefix));
    do {
      if (state.TimeUp()) break;
      std::vector<int> order = head;
      order.insert(order.end(), identity.begin() + static_cast<long>(prefix),
                   identity.end());
      ExploreOrder(stats.Permuted(order), order, &state);
    } while (std::next_permutation(head.begin(), head.end()));
  }

  SearchResult result;
  result.plan = state.best_plan;
  result.estimated_cycles = state.best_cycles;
  result.column_order = state.best_order;
  result.plans_costed = state.plans_costed;
  result.search_seconds = state.stopwatch.Seconds();
  result.timed_out = state.timed_out;
  return result;
}

}  // namespace mcsort

// Plan-space enumeration helpers (Sec. 5).
//
// The full space of code massage plans for W total bits is the set of
// integer compositions of W (|P| = 2^(W-1)), crossed with per-round bank
// choices. ROGA never materializes it; these helpers produce
//   * the valid bank-size combinations for a round count k, with the
//     Property-1 pruning the paper applies (combinations where two adjacent
//     rounds could always be stitched into the first round's bank are
//     dominated), and
//   * bounded exhaustive plan lists used by the evaluation harness as the
//     "perfect cost model" baseline A_i (the paper enumerated and *ran* all
//     feasible plans, which "took weeks"; the benchmarks bound rounds and
//     plan count and document the restriction).
#ifndef MCSORT_PLAN_ENUMERATE_H_
#define MCSORT_PLAN_ENUMERATE_H_

#include <cstddef>
#include <vector>

#include "mcsort/massage/plan.h"

namespace mcsort {

// Upper bound on useful round counts (Lemma 2):
// floor(2 (W - 1) / b_min) + 1, additionally capped by W (>= 1 bit/round).
int MaxUsefulRounds(int total_width);

// All bank combinations (b_1..b_k), b_i in {16,32,64}, that
//   (a) have enough capacity: sum b_i >= W with every round >= 1 bit, and
//   (b) survive Property-1 pruning: there is an assignment in which no two
//       adjacent rounds are guaranteed stitchable into b_i.
std::vector<std::vector<int>> ValidBankCombos(int total_width, int k);

// Exhaustive list of massage plans with minimal banks: every composition
// of W into at most `max_rounds` parts of <= 64 bits, capped at
// `max_plans` (0 = no cap). Compositions are generated first-part-major.
std::vector<MassagePlan> EnumerateFeasiblePlans(int total_width,
                                                int max_rounds,
                                                size_t max_plans = 0);

// The Sec. 3 single-shift family used by Figures 4a/4b: plans obtained
// from a two-column instance (w1, w2) by moving `shift` boundary bits
// (positive = left-shift bits from column 2 into round 1; negative =
// right-shift bits of column 1 into round 2). shift in
// [-(w1 - 1) - 1 .. w2] where the extremes collapse to one round.
MassagePlan ShiftPlan(int w1, int w2, int shift);

}  // namespace mcsort

#endif  // MCSORT_PLAN_ENUMERATE_H_

#include "mcsort/plan/enumerate.h"

#include <algorithm>
#include <numeric>

#include "mcsort/common/bits.h"
#include "mcsort/common/logging.h"

namespace mcsort {

int MaxUsefulRounds(int total_width) {
  MCSORT_CHECK(total_width >= 1);
  const int lemma2 = 2 * (total_width - 1) / kMinBankBits + 1;
  return std::min(lemma2, total_width);
}

std::vector<std::vector<int>> ValidBankCombos(int total_width, int k) {
  MCSORT_CHECK(k >= 1);
  std::vector<std::vector<int>> combos;
  std::vector<int> current(static_cast<size_t>(k));
  const int banks[3] = {16, 32, 64};

  // Depth-first over {16,32,64}^k.
  const auto is_valid = [&]() {
    int capacity = 0;
    for (int b : current) capacity += b;
    // (a) capacity: all W bits must fit, and every round needs >= 1 bit,
    // which k <= W (checked by callers via MaxUsefulRounds) ensures.
    if (capacity < total_width) return false;
    // (b) Property-1 pruning: if for some adjacent pair (i, i+1) *every*
    // assignment satisfies w_i + w_{i+1} <= b_i, the pair can always be
    // stitched into round i's bank, so a (k-1)-round plan dominates.
    // The max of w_i + w_{i+1} over assignments: the other k-2 rounds hold
    // at least 1 bit each, and the pair itself holds at most
    // b_i + b_{i+1}, so
    //   max_pair = W - max(k - 2, W - (b_i + b_{i+1})).
    for (int i = 0; i + 1 < k; ++i) {
      const int pair_capacity = current[static_cast<size_t>(i)] +
                                current[static_cast<size_t>(i + 1)];
      const int min_others = std::max(k - 2, total_width - pair_capacity);
      const int max_pair = total_width - min_others;
      if (max_pair <= current[static_cast<size_t>(i)]) return false;
    }
    return true;
  };

  const auto dfs = [&](auto&& self, int depth) -> void {
    if (depth == k) {
      if (is_valid()) combos.push_back(current);
      return;
    }
    for (int b : banks) {
      current[static_cast<size_t>(depth)] = b;
      self(self, depth + 1);
    }
  };
  dfs(dfs, 0);
  return combos;
}

std::vector<MassagePlan> EnumerateFeasiblePlans(int total_width,
                                                int max_rounds,
                                                size_t max_plans) {
  std::vector<MassagePlan> plans;
  std::vector<int> parts;
  const auto emit = [&] {
    plans.push_back(MassagePlan::WithMinimalBanks(parts));
  };
  const auto dfs = [&](auto&& self, int remaining, int rounds_left) -> void {
    if (max_plans != 0 && plans.size() >= max_plans) return;
    if (remaining == 0) {
      emit();
      return;
    }
    if (rounds_left == 0) return;
    const int max_part = std::min(remaining, kMaxBankBits);
    for (int part = 1; part <= max_part; ++part) {
      // Remaining bits must fit in the remaining rounds.
      if (remaining - part >
          (rounds_left - 1) * kMaxBankBits) {
        continue;
      }
      parts.push_back(part);
      self(self, remaining - part, rounds_left - 1);
      parts.pop_back();
      if (max_plans != 0 && plans.size() >= max_plans) return;
    }
  };
  dfs(dfs, total_width, max_rounds);
  return plans;
}

MassagePlan ShiftPlan(int w1, int w2, int shift) {
  const int total = w1 + w2;
  MCSORT_CHECK(total <= kMaxBankBits || (w1 + shift <= kMaxBankBits &&
                                         w2 - shift <= kMaxBankBits));
  const int a = w1 + shift;
  const int b = w2 - shift;
  if (a <= 0 || b <= 0) {
    MCSORT_CHECK(total <= kMaxBankBits);
    return MassagePlan::WithMinimalBanks({total});
  }
  return MassagePlan::WithMinimalBanks({a, b});
}

}  // namespace mcsort

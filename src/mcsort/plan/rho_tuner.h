// Automated selection of the ROGA time threshold rho — the two approaches
// the paper sketches in Appendix C:
//
//   * Offline calibration: run the plan search over a set of sample
//     queries with a ladder of rho values from stringent (0.01%) to loose
//     (10%); each query's "best" plan is the lowest-estimate plan found at
//     any rho; return the smallest rho at which EVERY sample query already
//     reaches its best plan. Only the cost model is invoked — no query is
//     executed — so the procedure is fast.
//
//   * Online calibration: start a query's search at a low watermark
//     rho_low; whenever the deadline passes and the best plan improved
//     during the last extension, double rho and continue; stop once an
//     extension yields no improvement or rho exceeds the high watermark
//     rho_high.
#ifndef MCSORT_PLAN_RHO_TUNER_H_
#define MCSORT_PLAN_RHO_TUNER_H_

#include <vector>

#include "mcsort/cost/cost_model.h"
#include "mcsort/plan/roga.h"

namespace mcsort {

struct RhoLadder {
  // Ascending candidate thresholds, paper's range: 0.01% ... 10%.
  std::vector<double> rhos = {0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1};
};

struct OfflineRhoResult {
  double rho = 0.001;  // smallest sufficient threshold
  // Per sample query: the smallest ladder index whose search reaches that
  // query's best-known estimate (for reporting).
  std::vector<size_t> converged_at;
};

// Offline calibration over `samples`. `base` carries the non-rho search
// options (permutations etc.) applied to every query.
OfflineRhoResult CalibrateRhoOffline(const CostModel& model,
                                     const std::vector<SortInstanceStats>& samples,
                                     const SearchOptions& base = {},
                                     const RhoLadder& ladder = {});

struct OnlineRhoOptions {
  double rho_low = 0.0001;   // the paper's low watermark (0.01%)
  double rho_high = 0.1;     // the paper's high watermark (10%)
  SearchOptions base;        // non-rho options
};

struct OnlineRhoResult {
  SearchResult search;   // final plan
  double final_rho = 0;  // threshold in effect when the search settled
  int extensions = 0;    // how many times rho was doubled
};

// Online calibration for one query instance.
OnlineRhoResult SearchWithOnlineRho(const CostModel& model,
                                    const SortInstanceStats& stats,
                                    const OnlineRhoOptions& options = {});

}  // namespace mcsort

#endif  // MCSORT_PLAN_RHO_TUNER_H_

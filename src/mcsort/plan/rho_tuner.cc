#include "mcsort/plan/rho_tuner.h"

#include <algorithm>

#include "mcsort/common/logging.h"

namespace mcsort {

OfflineRhoResult CalibrateRhoOffline(
    const CostModel& model, const std::vector<SortInstanceStats>& samples,
    const SearchOptions& base, const RhoLadder& ladder) {
  MCSORT_CHECK(!samples.empty());
  MCSORT_CHECK(!ladder.rhos.empty());
  const size_t levels = ladder.rhos.size();

  // Estimated best-plan cost per (query, rho level).
  std::vector<std::vector<double>> costs(
      samples.size(), std::vector<double>(levels, 0.0));
  for (size_t q = 0; q < samples.size(); ++q) {
    for (size_t level = 0; level < levels; ++level) {
      SearchOptions options = base;
      options.rho = ladder.rhos[level];
      costs[q][level] =
          RogaSearch(model, samples[q], options).estimated_cycles;
    }
  }

  OfflineRhoResult result;
  result.converged_at.resize(samples.size(), levels - 1);
  size_t needed_level = 0;
  for (size_t q = 0; q < samples.size(); ++q) {
    // "Best" = the lowest estimate seen at any rho (usually the loosest).
    double best = costs[q][0];
    for (size_t level = 1; level < levels; ++level) {
      best = std::min(best, costs[q][level]);
    }
    // Smallest level already achieving it (within rounding).
    for (size_t level = 0; level < levels; ++level) {
      if (costs[q][level] <= best * (1.0 + 1e-9)) {
        result.converged_at[q] = level;
        break;
      }
    }
    needed_level = std::max(needed_level, result.converged_at[q]);
  }
  result.rho = ladder.rhos[needed_level];
  return result;
}

OnlineRhoResult SearchWithOnlineRho(const CostModel& model,
                                    const SortInstanceStats& stats,
                                    const OnlineRhoOptions& options) {
  OnlineRhoResult result;
  double rho = options.rho_low;
  SearchOptions search_options = options.base;
  search_options.rho = rho;
  result.search = RogaSearch(model, stats, search_options);
  result.final_rho = rho;

  // Extend while the extra budget keeps improving the plan, doubling rho
  // up to the high watermark (the paper's conditional-increase scheme).
  while (result.search.timed_out && rho < options.rho_high) {
    rho = std::min(rho * 2.0, options.rho_high);
    search_options.rho = rho;
    const SearchResult extended = RogaSearch(model, stats, search_options);
    const bool improved =
        extended.estimated_cycles < result.search.estimated_cycles * (1 - 1e-9);
    result.final_rho = rho;
    ++result.extensions;
    if (improved) {
      result.search = extended;
    } else {
      result.search = extended.estimated_cycles < result.search.estimated_cycles
                          ? extended
                          : result.search;
      break;  // no further improvement anticipated
    }
  }
  return result;
}

}  // namespace mcsort

// Recursive Random Search (RRS) [41] — the black-box plan-search baseline
// the paper compares ROGA against (Sec. 6.1).
//
// RRS samples the plan space uniformly to find a promising region, then
// recursively re-samples shrinking neighborhoods around the incumbent
// (moving boundary bits between rounds, splitting/merging rounds, widening
// banks), restarting from fresh random samples when a local search
// converges. It uses the same cost model as ROGA and, for fairness, is
// stopped on the same time budget.
#ifndef MCSORT_PLAN_RRS_H_
#define MCSORT_PLAN_RRS_H_

#include <cstdint>

#include "mcsort/cost/cost_model.h"
#include "mcsort/plan/roga.h"

namespace mcsort {

struct RrsOptions {
  // Hard wall-clock budget in seconds (the paper stops RRS when ROGA
  // stops; pass ROGA's measured search time).
  double budget_seconds = 0.001;
  // Exploration-phase samples before each recursive descent.
  int exploration_samples = 40;
  // Neighborhood samples per shrink level.
  int neighborhood_samples = 12;
  // Permute column order (GROUP BY / PARTITION BY semantics); only the
  // first `permute_prefix` columns are order-free (-1 = all).
  bool permute_columns = false;
  int permute_prefix = -1;
  uint64_t seed = 0xCAFE;
};

SearchResult RrsSearch(const CostModel& model, const SortInstanceStats& stats,
                       const RrsOptions& options = {});

}  // namespace mcsort

#endif  // MCSORT_PLAN_RRS_H_

// K-way merge of sorted shard result streams — the coordinator's gather
// half. Shards ship per-element 128-bit composite sort keys
// (dist/merge_keys.h); this header merges K such pre-sorted runs with a
// tree of losers driven by offset-value codes, the K-way generalization of
// the binary OvcMergeStream in sort/ovc.h (same Do & Graefe scheme, 16-bit
// digits over the 128-bit key instead of byte digits over one bank).
//
// Invariant carried by the tree (the classic tree-of-losers argument):
// every stored loser's code is relative to the winner that defeated it,
// and after each emission every code on the replayed root path is relative
// to the element just emitted. Two consequences the coordinator relies on:
//
//   1. A challenge between different codes needs no key bytes — the
//      smaller code is the smaller key, and the loser's code stays valid
//      against the new reference (the winner agrees with the old reference
//      at least as deep as the loser differs from it).
//   2. The code attached to each emitted element is its offset-value code
//      relative to the *previously emitted* element — so `code == 0` is
//      exactly "same key as the previous output element", which is the
//      group-boundary signal the coordinator's aggregate stitching uses.
//      No extra comparisons are spent detecting seams.
//
// Equal codes force one full 128-bit comparison (counted); key ties break
// by run index, so the merge is deterministic.
#ifndef MCSORT_DIST_MERGE_H_
#define MCSORT_DIST_MERGE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "mcsort/sort/ovc.h"

namespace mcsort {
namespace dist {

// A 128-bit composite sort key (merge_keys.h layout): unsigned (hi, lo)
// comparison is the multi-column comparison.
struct Key128 {
  uint64_t hi = 0;
  uint64_t lo = 0;
};
inline bool operator==(Key128 a, Key128 b) {
  return a.hi == b.hi && a.lo == b.lo;
}
inline bool operator!=(Key128 a, Key128 b) { return !(a == b); }
inline bool operator<(Key128 a, Key128 b) {
  return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
}
inline bool operator<=(Key128 a, Key128 b) { return !(b < a); }

// Offset-value code over Key128 in 16-bit digits (8 digits): the code of x
// relative to predecessor p (p <= x) is ((8 - o) << 16) | digit_o(x) with
// o the first differing digit from the MSB, 0 when x == p. Codes order
// ascending exactly like the keys they describe (same reference), and the
// largest code, (8 << 16) | 0xFFFF, fits a uint32.
using MergeCode = uint32_t;

inline MergeCode MergeCodeRelative(Key128 x, Key128 prev) {
  if (x.hi != prev.hi) {
    const int o = std::countl_zero(x.hi ^ prev.hi) / 16;
    const unsigned digit =
        static_cast<unsigned>((x.hi >> (48 - 16 * o)) & 0xFFFF);
    return (static_cast<MergeCode>(8 - o) << 16) | digit;
  }
  if (x.lo != prev.lo) {
    const int o = std::countl_zero(x.lo ^ prev.lo) / 16;
    const unsigned digit =
        static_cast<unsigned>((x.lo >> (48 - 16 * o)) & 0xFFFF);
    return (static_cast<MergeCode>(8 - (4 + o)) << 16) | digit;
  }
  return 0;
}

// Code of a run's first element: digit 0 against the virtual "minus
// infinity" reference all runs share at merge start.
inline MergeCode MergeCodeFirst(Key128 x) {
  return (MergeCode{8} << 16) |
         static_cast<unsigned>((x.hi >> 48) & 0xFFFF);
}

// One sorted input run: parallel hi/lo key arrays (borrowed; must outlive
// the tree). Runs may be empty.
struct MergeRun {
  const uint64_t* hi = nullptr;
  const uint64_t* lo = nullptr;
  size_t n = 0;
};

// One merged output element: which run, which position within it, and the
// element's offset-value code relative to the previously emitted element
// (code == 0 <=> equal keys <=> same group across a shard seam).
struct MergeElem {
  uint32_t run = 0;
  uint32_t index = 0;
  MergeCode code = 0;
};

class OvcLoserTree {
 public:
  explicit OvcLoserTree(std::vector<MergeRun> runs)
      : runs_(std::move(runs)) {
    const size_t k = runs_.size() > 0 ? runs_.size() : 1;
    cap_ = std::bit_ceil(k);
    tree_.assign(cap_, kNoRun);
    heads_.resize(runs_.size());
    for (size_t r = 0; r < runs_.size(); ++r) {
      heads_[r].pos = 0;
      if (runs_[r].n > 0) heads_[r].code = MergeCodeFirst(KeyAt(r));
    }
    winner_ = InitNode(1);
  }

  size_t remaining() const { return remaining_; }

  // Emits the next element in global key order; false when all runs are
  // exhausted.
  bool Next(MergeElem* out) {
    if (winner_ == kNoRun) return false;
    const int r = winner_;
    out->run = static_cast<uint32_t>(r);
    out->index = static_cast<uint32_t>(heads_[r].pos);
    out->code = heads_[r].code;
    ++counters_.emitted;
    --remaining_;

    // Advance the emitted run: the new head's in-run code (relative to its
    // predecessor) IS its code relative to the just-emitted element.
    const Key128 prev = KeyAt(r);
    ++heads_[r].pos;
    int cur = kNoRun;
    if (heads_[r].pos < runs_[r].n) {
      heads_[r].code = MergeCodeRelative(KeyAt(r), prev);
      cur = r;
    }
    // Replay the leaf-to-root path against the stored losers.
    for (size_t node = (cap_ + static_cast<size_t>(r)) >> 1; node >= 1;
         node >>= 1) {
      const int challenger = tree_[node];
      const int w = Challenge(cur, challenger);
      tree_[node] = (w == cur) ? challenger : cur;
      cur = w;
    }
    winner_ = cur;
    return true;
  }

  const sort_internal::OvcCounters& counters() const { return counters_; }

 private:
  static constexpr int kNoRun = -1;

  struct Head {
    size_t pos = 0;
    MergeCode code = 0;
  };

  Key128 KeyAt(int run) const {
    const size_t pos = heads_[run].pos;
    return {runs_[run].hi[pos], runs_[run].lo[pos]};
  }

  // Challenge between two run heads (either may be kNoRun = exhausted).
  // Returns the winner; on equal codes the loser is re-coded relative to
  // the winner's key (one counted full comparison).
  int Challenge(int a, int b) {
    if (a == kNoRun) return b;
    if (b == kNoRun) return a;
    const MergeCode ca = heads_[a].code;
    const MergeCode cb = heads_[b].code;
    if (ca != cb) return ca < cb ? a : b;
    ++counters_.full_compares;
    const Key128 xa = KeyAt(a);
    const Key128 xb = KeyAt(b);
    int winner, loser;
    if (xa < xb || (xa == xb && a < b)) {
      winner = a;
      loser = b;
    } else {
      winner = b;
      loser = a;
    }
    heads_[loser].code = MergeCodeRelative(loser == a ? xa : xb,
                                           winner == a ? xa : xb);
    return winner;
  }

  // Builds the initial tournament (all heads coded against the shared
  // virtual reference); returns the subtree winner, storing losers.
  int InitNode(size_t node) {
    if (node >= cap_) {
      const size_t r = node - cap_;
      if (r < runs_.size() && runs_[r].n > 0) {
        remaining_ += runs_[r].n;
        return static_cast<int>(r);
      }
      return kNoRun;
    }
    const int a = InitNode(2 * node);
    const int b = InitNode(2 * node + 1);
    const int w = Challenge(a, b);
    tree_[node] = (w == a) ? b : a;
    return w;
  }

  std::vector<MergeRun> runs_;
  std::vector<Head> heads_;
  std::vector<int> tree_;  // tree_[1..cap_-1]: loser at each internal node
  size_t cap_ = 1;
  size_t remaining_ = 0;
  int winner_ = kNoRun;
  sort_internal::OvcCounters counters_;
};

}  // namespace dist
}  // namespace mcsort

#endif  // MCSORT_DIST_MERGE_H_

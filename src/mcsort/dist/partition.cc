#include "mcsort/dist/partition.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "mcsort/common/bits.h"
#include "mcsort/dist/merge_keys.h"
#include "mcsort/storage/column.h"
#include "mcsort/storage/dictionary.h"

namespace mcsort {
namespace dist {
namespace {

// splitmix64 finalizer — cheap, well-mixed shard assignment from a code
// or row id (the low bits of raw codes are anything but uniform).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

PartitionResult PartitionTable(const Table& table,
                               const PartitionOptions& options) {
  PartitionResult out;
  const size_t n = table.row_count();
  const int num_shards = options.num_shards;
  if (num_shards < 1) {
    out.error = "num_shards must be >= 1";
    return out;
  }
  const bool keyed = !options.key_column.empty();
  if (keyed && !table.HasColumn(options.key_column)) {
    out.error = "unknown key column: " + options.key_column;
    return out;
  }
  if (table.HasColumn(kGlobalOidColumn)) {
    out.error = "table already carries a __goid column (already sharded?)";
    return out;
  }

  // Pass 1: shard id per row.
  std::vector<uint8_t> shard_of(n);
  if (num_shards > 255) {
    out.error = "num_shards must be <= 255";
    return out;
  }
  const uint64_t shards = static_cast<uint64_t>(num_shards);
  if (options.mode == PartitionMode::kHash) {
    if (keyed) {
      const EncodedColumn& key = table.column(options.key_column);
      for (size_t r = 0; r < n; ++r) {
        shard_of[r] = static_cast<uint8_t>(Mix64(key.Get(r)) % shards);
      }
    } else {
      for (size_t r = 0; r < n; ++r) {
        shard_of[r] = static_cast<uint8_t>(Mix64(r) % shards);
      }
    }
  } else if (keyed) {
    // Equal-width code ranges over [min, max]; every distinct key value
    // maps to exactly one shard.
    const EncodedColumn& key = table.column(options.key_column);
    Code lo = ~Code{0}, hi = 0;
    for (size_t r = 0; r < n; ++r) {
      const Code c = key.Get(r);
      if (c < lo) lo = c;
      if (c > hi) hi = c;
    }
    if (n == 0) lo = hi = 0;
    const uint64_t span = hi - lo + 1;  // >= 1
    for (size_t r = 0; r < n; ++r) {
      uint64_t s = (key.Get(r) - lo) * shards / span;
      if (s >= shards) s = shards - 1;
      shard_of[r] = static_cast<uint8_t>(s);
    }
  } else {
    // Contiguous row ranges (ceil-split so the remainder spreads evenly).
    const size_t per = (n + shards - 1) / shards;
    for (size_t r = 0; r < n; ++r) {
      shard_of[r] = static_cast<uint8_t>(per == 0 ? 0 : r / per);
    }
  }

  // Pass 2: per-shard row lists (original order preserved within a shard).
  std::vector<std::vector<uint32_t>> rows(num_shards);
  for (size_t r = 0; r < n; ++r) {
    rows[shard_of[r]].push_back(static_cast<uint32_t>(r));
  }

  // Pass 3: gather every column per shard; copy dictionaries/domain bases
  // so shards decode identically to the source.
  out.shards.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    const std::vector<uint32_t>& oids = rows[s];
    Table shard(oids.size());
    for (const std::string& name : table.column_names()) {
      const EncodedColumn& src = table.column(name);
      EncodedColumn dst;
      dst.ResetTyped(src.width(), src.type(), oids.size(),
                     /*zero_fill=*/false);
      for (size_t i = 0; i < oids.size(); ++i) {
        dst.Set(i, src.Get(oids[i]));
      }
      std::unique_ptr<StringDictionary> dict;
      if (table.HasDictionary(name)) {
        dict = std::make_unique<StringDictionary>(table.dictionary(name));
      }
      shard.AddColumnParts(name, std::move(dst), std::move(dict),
                           table.domain_base(name));
    }
    if (options.add_global_oids) {
      EncodedColumn goid;
      goid.Reset(BitsForCount(n > 0 ? n : 1), oids.size());
      for (size_t i = 0; i < oids.size(); ++i) {
        goid.Set(i, oids[i]);
      }
      shard.AddColumn(kGlobalOidColumn, std::move(goid));
    }
    out.shard_rows.push_back(oids.size());
    out.shards.push_back(std::move(shard));
  }
  out.ok = true;
  return out;
}

PartitionToDiskResult PartitionToSnapshots(const Table& table,
                                           const std::string& name,
                                           const std::string& out_root,
                                           const PartitionOptions& options) {
  PartitionToDiskResult out;
  PartitionResult parts = PartitionTable(table, options);
  if (!parts.ok) {
    out.error = std::move(parts.error);
    return out;
  }
  for (size_t s = 0; s < parts.shards.size(); ++s) {
    char sub[32];
    std::snprintf(sub, sizeof(sub), "/shard%zu/", s);
    const std::string dir = out_root + sub + name;
    const IoStatus io = parts.shards[s].SaveSnapshot(dir);
    if (!io.ok()) {
      out.error = "snapshot " + dir + ": " + io.message;
      return out;
    }
    out.shard_dirs.push_back(dir);
    out.shard_rows.push_back(parts.shard_rows[s]);
  }
  out.ok = true;
  return out;
}

}  // namespace dist
}  // namespace mcsort

// Typed outcome taxonomy of a distributed (coordinator-side) query — the
// partial-failure vocabulary the coordinator reports and the smoke tooling
// branches on. Kept separate from net::ErrorCode (what one server answers)
// and net::ClientStatus (what one call did): a DistStatus summarizes a
// whole fan-out.
#ifndef MCSORT_DIST_DIST_STATUS_H_
#define MCSORT_DIST_DIST_STATUS_H_

#include <cstdint>

#include "mcsort/common/status.h"

namespace mcsort {
namespace dist {

enum class DistStatus : uint8_t {
  kOk = 0,
  // At least one shard produced no result after exhausting its replica
  // list and retry budget. The merged answer would be silently wrong, so
  // there is no partial result — only the per-shard error report.
  kShardFailed,
  kCancelled,          // the caller cancelled mid-fan-out
  kDeadlineExceeded,   // the coordinator deadline expired first
  kBadQuery,           // a shard rejected the spec as semantically invalid
  kUnsupported,        // spec shape the distributed tier does not cover
                       // (window / PARTITION BY queries)
  kMergeError,         // shard streams disagreed structurally (e.g. a
                       // shard answered without merge-key sections)
  kNoShards,           // coordinator has no registered shards
};

// Stable lowercase name ("ok", "shard_failed", ...) for logs and the
// dist.* metrics keys.
inline const char* DistStatusName(DistStatus status) {
  switch (status) {
    case DistStatus::kOk: return "ok";
    case DistStatus::kShardFailed: return "shard_failed";
    case DistStatus::kCancelled: return "cancelled";
    case DistStatus::kDeadlineExceeded: return "deadline_exceeded";
    case DistStatus::kBadQuery: return "bad_query";
    case DistStatus::kUnsupported: return "unsupported";
    case DistStatus::kMergeError: return "merge_error";
    case DistStatus::kNoShards: return "no_shards";
  }
  return "unknown";
}

// Unified-status bridge (common/status.h). kShardFailed and kMergeError
// both summarize a fan-out that may succeed on retry against healthy
// replicas, but a merge disagreement is a peer bug, not weather — so
// kShardFailed -> kUnavailable and kMergeError -> kInternal; kNoShards is
// a caller setup error (kFailedPrecondition).
inline Status ToStatus(DistStatus status, std::string detail = "") {
  switch (status) {
    case DistStatus::kOk: return Status::Ok();
    case DistStatus::kShardFailed:
      return Status::Unavailable(std::move(detail));
    case DistStatus::kCancelled: return Status::Cancelled(std::move(detail));
    case DistStatus::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(detail));
    case DistStatus::kBadQuery:
      return Status::InvalidArgument(std::move(detail));
    case DistStatus::kUnsupported:
      return Status::Unimplemented(std::move(detail));
    case DistStatus::kMergeError: return Status::Internal(std::move(detail));
    case DistStatus::kNoShards:
      return Status::FailedPrecondition(std::move(detail));
  }
  return Status::Internal(std::move(detail));
}

inline DistStatus FromStatus(const Status& status) {
  switch (status.code) {
    case StatusCode::kOk: return DistStatus::kOk;
    case StatusCode::kCancelled: return DistStatus::kCancelled;
    case StatusCode::kDeadlineExceeded: return DistStatus::kDeadlineExceeded;
    case StatusCode::kInvalidArgument: return DistStatus::kBadQuery;
    case StatusCode::kUnimplemented: return DistStatus::kUnsupported;
    case StatusCode::kFailedPrecondition: return DistStatus::kNoShards;
    case StatusCode::kInternal: return DistStatus::kMergeError;
    default: return DistStatus::kShardFailed;
  }
}

}  // namespace dist
}  // namespace mcsort

#endif  // MCSORT_DIST_DIST_STATUS_H_

// McsortCoordinator — scatter-gather execution of one QuerySpec over N
// sharded mcsort servers, merged back into a single globally sorted
// answer that is bit-identical to running the query on the unsharded
// table.
//
// Fan-out: the coordinator pins the shard-side column order
// (QuerySpec::fixed_column_order) so per-shard ROGA cannot permute GROUP
// BY attributes differently across shards, sets merge_fan_in so shard
// cost models price the coordinator merge, strips result_order (re-applied
// locally over the merged groups), and asks for the composite merge-key
// sections (want_merge_keys). Each shard call runs on its own thread with
// a typed retry loop: transport failures, call timeouts, and kBusy /
// kShuttingDown answers fail over to the next replica endpoint with
// exponential backoff; semantic rejections (kBadQuery, ...) abort the
// fan-out.
//
// Gather: shard streams (already sorted — fixed order + identical spec)
// are merged by the OVC loser tree of dist/merge.h. Group-boundary
// stitching rides on the emitted offset-value codes: code == 0 means the
// element's key equals the previous output element's key, i.e. a group
// split across shards — its aggregates are combined (sum/count add,
// min/min, max/max, avg recomputed from summed sums and sizes) instead of
// emitting a new group.
#ifndef MCSORT_DIST_COORDINATOR_H_
#define MCSORT_DIST_COORDINATOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mcsort/dist/dist_status.h"
#include "mcsort/dist/merge.h"
#include "mcsort/engine/query.h"
#include "mcsort/net/client.h"
#include "mcsort/service/metrics.h"

namespace mcsort {
namespace dist {

struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

// One logical shard: a primary endpoint plus zero or more replicas
// serving the same shard data (tried in order on retryable failures).
struct ShardSpec {
  std::vector<ShardEndpoint> endpoints;
  std::string table;  // table name on the shard servers (empty = default)
};

struct CoordinatorOptions {
  double connect_timeout_seconds = 5;
  double io_timeout_seconds = 30;
  // Per-attempt wall bound (QueryCallOptions::call_timeout_seconds);
  // 0 = bounded only by the per-call deadline / io timeout.
  double attempt_timeout_seconds = 0;
  // Total attempts per shard across its replica list before the shard is
  // declared failed.
  int max_attempts_per_shard = 3;
  // Backoff before retry k is base * 2^k (cancellation-interruptible).
  double retry_backoff_seconds = 0.05;
  std::string client_name = "mcsort-coord";
  // Optional dist.* instrumentation sink (borrowed; may be null).
  MetricsRegistry* metrics = nullptr;
};

struct DistCallOptions {
  // Wall-clock budget for the whole distributed call (fan-out + merge);
  // 0 = none. The remaining budget is shipped to shards as their
  // server-side deadline, so a slow shard times out *everywhere*.
  double deadline_seconds = 0;
};

// What happened on one shard during the fan-out.
struct ShardOutcome {
  int shard = -1;
  int endpoint_used = -1;  // replica index that answered; -1 = none did
  int attempts = 0;
  net::ClientStatus client_status = net::ClientStatus::kOk;
  net::ErrorCode error = net::ErrorCode::kNone;  // last server verdict
  std::string detail;
  double seconds = 0;   // wall time of this shard's call (incl. retries)
  uint64_t elements = 0;  // rows / groups the shard contributed
};

struct DistResult {
  DistStatus status = DistStatus::kOk;
  std::string detail;
  std::vector<ShardOutcome> shards;

  // Merged answer. GROUP BY specs fill num_groups / aggregate_values /
  // aggregate_avg / group_sizes / result_group_order (per-row oids are
  // not defined across shards for grouped results); ORDER BY specs fill
  // result_oids (global pre-shard oids when every shard carries the
  // partitioner's __goid column).
  size_t num_groups = 0;
  std::vector<std::vector<int64_t>> aggregate_values;
  std::vector<double> aggregate_avg;
  std::vector<uint32_t> group_sizes;
  std::vector<uint32_t> result_oids;
  std::vector<uint32_t> result_group_order;

  // Breakdown: slowest shard call vs. coordinator-side merge+stitch, and
  // the OVC instrumentation of the merge (full_compares << emitted on
  // duplicate-heavy seams is the point of the scheme).
  double fanout_seconds = 0;
  double merge_seconds = 0;
  uint64_t merge_emitted = 0;
  uint64_t merge_full_compares = 0;

  bool ok() const { return status == DistStatus::kOk; }
  // The whole fan-out's outcome lifted to the unified taxonomy
  // (common/status.h), detail included.
  Status ToStatus() const { return dist::ToStatus(status, detail); }
};

class McsortCoordinator {
 public:
  explicit McsortCoordinator(CoordinatorOptions options = {});
  ~McsortCoordinator();

  McsortCoordinator(const McsortCoordinator&) = delete;
  McsortCoordinator& operator=(const McsortCoordinator&) = delete;

  void AddShard(ShardSpec spec);
  size_t num_shards() const { return shards_.size(); }

  // Runs `spec` over all registered shards and merges. Serialized: one
  // Execute at a time per coordinator (Cancel may be called from any
  // thread while one is in flight).
  DistResult Execute(const QuerySpec& spec, const DistCallOptions& call = {});

  // Cancels the in-flight Execute from any thread: pending shard calls
  // get wire CANCELs (the server unwinds at its next morsel boundary),
  // queued retries/backoffs are abandoned immediately.
  void Cancel();

 private:
  struct ShardState;
  struct ShardCall;

  void RunShard(ShardState& state, int shard_index, const QuerySpec& spec,
                bool has_deadline,
                std::chrono::steady_clock::time_point deadline,
                ShardCall* call);
  // Interruptible sleep; false when cancelled.
  bool Backoff(double seconds);
  void Count(const std::string& name);
  // Widths of `names` on the shards, fetched from any live connection
  // (needed to slice group-by codes back out of merged composite keys).
  bool FetchWidths(const std::vector<std::string>& names,
                   std::vector<int>* widths, std::string* error);

  CoordinatorOptions options_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::atomic<bool> cancelled_{false};
  std::mutex backoff_mu_;
  std::condition_variable backoff_cv_;
};

}  // namespace dist
}  // namespace mcsort

#endif  // MCSORT_DIST_COORDINATOR_H_

// Composite merge keys for the distributed scatter-gather tier.
//
// A shard answers a pinned-order query with rows (or groups) already in
// global sort order *within the shard*. To interleave K such streams into
// one globally sorted stream the coordinator needs, per element, the full
// multi-column sort key — but shipping the sort columns themselves would
// re-send data the shard already reduced. Instead the shard serializes
// each element's key as one 128-bit big-endian-comparable composite:
//
//   column codes concatenated most-significant-first in sort-attribute
//   order, descending attributes complemented within their width
//   (ComplementCode), the whole thing left-aligned to bit 127.
//
// Unsigned comparison of (hi, lo) pairs is then exactly the multi-column
// comparison the single-node sort performed, so the coordinator's
// loser-tree merge (dist/merge.h) reproduces single-node output
// bit-identically. Total key width above 128 bits is a typed error (the
// engine itself caps massaged keys at 64 bits per bank; two banks of
// headroom covers every spec the executor accepts today).
#ifndef MCSORT_DIST_MERGE_KEYS_H_
#define MCSORT_DIST_MERGE_KEYS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mcsort/engine/query.h"
#include "mcsort/storage/table.h"

namespace mcsort {
namespace dist {

// Name of the reserved global-row-id column the partitioner adds to every
// shard (see dist/partition.h). When present, ORDER BY merge keys are
// accompanied by the pre-shard oids so distributed row results are
// comparable across shardings.
inline constexpr char kGlobalOidColumn[] = "__goid";

struct MergeKeys {
  bool ok = false;
  std::string error;

  // True for GROUP BY specs: one key per group (the representative row's
  // codes — every row of a group shares them by definition), sizes in
  // `group_sizes`. False for ORDER BY specs: one key per output row.
  bool per_group = false;

  // keys[i] = (hi[i] << 64) | lo[i], left-aligned to bit 127.
  std::vector<uint64_t> hi;
  std::vector<uint64_t> lo;
  // Per-group row counts (per_group only) — the coordinator needs them to
  // stitch kCount/kAvg aggregates across shard seams.
  std::vector<uint32_t> group_sizes;
  // Pre-shard oids in output row order (ORDER BY only, and only when the
  // table carries kGlobalOidColumn); empty otherwise.
  std::vector<uint32_t> global_oids;
};

// Computes the merge-key sections for one executed query. `result` must be
// the successful QueryResult of running `spec` against `table`. Fails
// (ok=false, error set) for window specs (partition_by), specs with no
// sort attributes, and composite keys wider than 128 bits.
MergeKeys ComputeMergeKeys(const Table& table, const QuerySpec& spec,
                           const QueryResult& result);

}  // namespace dist
}  // namespace mcsort

#endif  // MCSORT_DIST_MERGE_KEYS_H_

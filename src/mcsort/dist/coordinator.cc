#include "mcsort/dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "mcsort/common/bits.h"
#include "mcsort/common/timer.h"

namespace mcsort {
namespace dist {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

struct McsortCoordinator::ShardState {
  ShardSpec spec;
  // One pooled client per replica endpoint, created (and connected) on
  // first use, reused across Execute calls while healthy.
  std::vector<std::unique_ptr<net::McsortClient>> clients;
  // The client currently blocked in TryQuery, for cross-thread Cancel().
  net::McsortClient* inflight = nullptr;
  std::mutex inflight_mu;
};

struct McsortCoordinator::ShardCall {
  net::RemoteResult result;
  ShardOutcome outcome;
  bool ok = false;
};

namespace {

// Should this (ClientStatus, ErrorCode) outcome be retried on the next
// replica? Transport-level failures and explicit "try elsewhere" server
// answers are; semantic verdicts are not.
bool Retryable(net::ClientStatus status, net::ErrorCode error) {
  switch (status) {
    case net::ClientStatus::kNotConnected:
    case net::ClientStatus::kTransportError:
    case net::ClientStatus::kCallTimeout:
      return true;
    case net::ClientStatus::kServerError:
      return error == net::ErrorCode::kBusy ||
             error == net::ErrorCode::kShuttingDown;
    default:
      return false;
  }
}

// Collapses the failed shards' outcomes into one DistStatus (most
// specific verdict wins; cancellation and deadline trump the rest).
DistStatus StatusOfFailures(const std::vector<ShardOutcome>& outcomes,
                            bool cancelled) {
  if (cancelled) return DistStatus::kCancelled;
  DistStatus status = DistStatus::kShardFailed;
  for (const ShardOutcome& o : outcomes) {
    if (o.client_status == net::ClientStatus::kOk &&
        o.error == net::ErrorCode::kNone) {
      continue;
    }
    switch (o.error) {
      case net::ErrorCode::kCancelled:
        return DistStatus::kCancelled;
      case net::ErrorCode::kDeadlineExceeded:
        status = DistStatus::kDeadlineExceeded;
        break;
      case net::ErrorCode::kBadQuery:
      case net::ErrorCode::kMalformedQuery:
      case net::ErrorCode::kUnknownTable:
        if (status == DistStatus::kShardFailed) {
          status = DistStatus::kBadQuery;
        }
        break;
      default:
        break;
    }
    if (o.client_status == net::ClientStatus::kCallTimeout &&
        status == DistStatus::kShardFailed) {
      status = DistStatus::kDeadlineExceeded;
    }
  }
  return status;
}

// Extracts group-by attribute `j`'s code back out of a merged composite
// key (merge_keys.h layout: widths concatenated MSB-first, left-aligned).
uint64_t SliceKey(Key128 key, const std::vector<int>& widths, size_t j) {
  int prefix = 0;
  for (size_t i = 0; i < j; ++i) prefix += widths[i];
  int total = prefix;
  for (size_t i = j; i < widths.size(); ++i) total += widths[i];
  const unsigned __int128 k =
      (static_cast<unsigned __int128>(key.hi) << 64) | key.lo;
  const int shift = 128 - prefix - widths[j];
  return static_cast<uint64_t>(k >> shift) & LowBitsMask(widths[j]);
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / registration
// ---------------------------------------------------------------------------

McsortCoordinator::McsortCoordinator(CoordinatorOptions options)
    : options_(std::move(options)) {}

McsortCoordinator::~McsortCoordinator() = default;

void McsortCoordinator::AddShard(ShardSpec spec) {
  auto state = std::make_unique<ShardState>();
  state->spec = std::move(spec);
  state->clients.resize(state->spec.endpoints.size());
  shards_.push_back(std::move(state));
}

void McsortCoordinator::Count(const std::string& name) {
  if (options_.metrics != nullptr) options_.metrics->counter(name)->Increment();
}

bool McsortCoordinator::Backoff(double seconds) {
  std::unique_lock<std::mutex> lock(backoff_mu_);
  backoff_cv_.wait_for(
      lock, std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds)),
      [this] { return cancelled_.load(std::memory_order_acquire); });
  return !cancelled_.load(std::memory_order_acquire);
}

void McsortCoordinator::Cancel() {
  cancelled_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(backoff_mu_);
  }
  backoff_cv_.notify_all();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->inflight_mu);
    if (shard->inflight != nullptr) shard->inflight->Cancel();
  }
}

// ---------------------------------------------------------------------------
// Per-shard call with replica failover
// ---------------------------------------------------------------------------

void McsortCoordinator::RunShard(ShardState& state, int shard_index,
                                 const QuerySpec& spec, bool has_deadline,
                                 Clock::time_point deadline, ShardCall* call) {
  Timer timer;
  ShardOutcome& outcome = call->outcome;
  outcome.shard = shard_index;
  const int endpoints = static_cast<int>(state.spec.endpoints.size());
  const int max_attempts = std::max(1, options_.max_attempts_per_shard);
  if (endpoints == 0) {
    outcome.client_status = net::ClientStatus::kNotConnected;
    outcome.detail = "shard has no endpoints";
    outcome.seconds = timer.Seconds();
    return;
  }

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (cancelled_.load(std::memory_order_acquire)) {
      outcome.client_status = net::ClientStatus::kNotConnected;
      outcome.error = net::ErrorCode::kCancelled;
      outcome.detail = "cancelled before attempt";
      break;
    }
    double remaining = 0;
    if (has_deadline) {
      remaining =
          std::chrono::duration<double>(deadline - Clock::now()).count();
      if (remaining <= 0) {
        outcome.client_status = net::ClientStatus::kCallTimeout;
        outcome.detail = "coordinator deadline exhausted";
        break;
      }
    }
    const int e = attempt % endpoints;
    ++outcome.attempts;
    Count("dist.shard_attempts");
    if (attempt > 0) Count("dist.shard_retries");
    if (attempt > 0 && e != (attempt - 1) % endpoints) {
      Count("dist.shard_failovers");
    }

    net::McsortClient* client = state.clients[e].get();
    if (client == nullptr) {
      net::ClientOptions copts;
      copts.host = state.spec.endpoints[e].host;
      copts.port = state.spec.endpoints[e].port;
      copts.connect_timeout_seconds = options_.connect_timeout_seconds;
      copts.io_timeout_seconds = options_.io_timeout_seconds;
      copts.client_name = options_.client_name;
      state.clients[e] = std::make_unique<net::McsortClient>(copts);
      client = state.clients[e].get();
    }
    if (!client->connected()) {
      std::string error;
      if (!client->Connect(&error)) {
        outcome.client_status = net::ClientStatus::kNotConnected;
        outcome.error = net::ErrorCode::kNone;
        outcome.detail = "connect " + state.spec.endpoints[e].host + ": " +
                         error;
        if (attempt + 1 < max_attempts &&
            Backoff(options_.retry_backoff_seconds * (1 << attempt))) {
          continue;
        }
        break;
      }
    }
    if (!client->ServerHasCapability(net::kCapMergeKeys)) {
      outcome.client_status = net::ClientStatus::kServerError;
      outcome.error = net::ErrorCode::kUnsupportedVersion;
      outcome.detail = "shard server lacks the merge-keys capability";
      break;  // a config problem, not a transient — do not retry
    }

    net::QueryCallOptions qopts;
    qopts.table = state.spec.table;
    qopts.want_merge_keys = true;
    qopts.call_timeout_seconds = options_.attempt_timeout_seconds;
    if (has_deadline) {
      qopts.deadline_seconds = remaining;
      qopts.call_timeout_seconds =
          qopts.call_timeout_seconds > 0
              ? std::min(qopts.call_timeout_seconds, remaining)
              : remaining;
    }

    {
      std::lock_guard<std::mutex> lock(state.inflight_mu);
      state.inflight = client;
    }
    const net::ClientStatus status =
        client->TryQuery(spec, qopts, &call->result);
    {
      std::lock_guard<std::mutex> lock(state.inflight_mu);
      state.inflight = nullptr;
    }

    outcome.client_status = status;
    outcome.error = call->result.error;
    outcome.detail = call->result.error_detail;
    outcome.endpoint_used = e;
    if (status == net::ClientStatus::kOk) {
      call->ok = true;
      break;
    }
    if (!Retryable(status, call->result.error) || attempt + 1 >= max_attempts) {
      break;
    }
    if (!Backoff(options_.retry_backoff_seconds * (1 << attempt))) break;
  }
  outcome.seconds = timer.Seconds();
}

// ---------------------------------------------------------------------------
// Execute: fan out, merge, stitch
// ---------------------------------------------------------------------------

bool McsortCoordinator::FetchWidths(const std::vector<std::string>& names,
                                    std::vector<int>* widths,
                                    std::string* error) {
  for (const auto& shard : shards_) {
    for (auto& client : shard->clients) {
      if (client == nullptr || !client->connected()) continue;
      net::SchemaReply schema;
      if (!client->GetSchema(&schema)) continue;
      const std::string want = shard->spec.table.empty()
                                   ? client->hello().default_table
                                   : shard->spec.table;
      for (const net::TableSchema& t : schema.tables) {
        if (t.name != want) continue;
        widths->clear();
        for (const std::string& name : names) {
          for (const net::ColumnInfo& c : t.columns) {
            if (c.name == name) {
              widths->push_back(c.width);
              break;
            }
          }
        }
        if (widths->size() == names.size()) return true;
      }
    }
  }
  *error = "could not resolve group-by column widths from any shard schema";
  return false;
}

DistResult McsortCoordinator::Execute(const QuerySpec& spec,
                                      const DistCallOptions& call) {
  DistResult out;
  Count("dist.queries");
  if (shards_.empty()) {
    out.status = DistStatus::kNoShards;
    out.detail = "no shards registered";
    Count("dist.query_error.no_shards");
    return out;
  }
  if (!spec.partition_by.empty() || !spec.window_order_column.empty()) {
    out.status = DistStatus::kUnsupported;
    out.detail = "window (PARTITION BY) queries are not distributed";
    Count("dist.query_error.unsupported");
    return out;
  }
  const bool per_group = !spec.group_by.empty();
  if (!per_group && spec.order_by.empty()) {
    out.status = DistStatus::kUnsupported;
    out.detail = "distributed execution requires GROUP BY or ORDER BY";
    Count("dist.query_error.unsupported");
    return out;
  }

  // The shard-side spec: pinned column order, merge-aware costing, result
  // ordering stripped (re-applied over the *merged* groups below — a
  // shard-local result order would be meaningless after interleaving).
  QuerySpec shard_spec = spec;
  shard_spec.fixed_column_order = true;
  shard_spec.merge_fan_in = static_cast<int>(shards_.size());
  shard_spec.result_order.clear();

  cancelled_.store(false, std::memory_order_release);
  const bool has_deadline = call.deadline_seconds > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             has_deadline ? call.deadline_seconds : 0));

  // Fan out: one thread per shard.
  Timer fanout_timer;
  std::vector<ShardCall> calls(shards_.size());
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    threads.emplace_back([this, s, &shard_spec, has_deadline, deadline,
                          &calls] {
      RunShard(*shards_[s], static_cast<int>(s), shard_spec, has_deadline,
               deadline, &calls[s]);
    });
  }
  for (std::thread& t : threads) t.join();
  out.fanout_seconds = fanout_timer.Seconds();
  if (options_.metrics != nullptr) {
    options_.metrics->histogram("dist.fanout_seconds")
        ->Record(out.fanout_seconds);
  }

  bool all_ok = true;
  for (size_t s = 0; s < shards_.size(); ++s) {
    calls[s].outcome.elements = calls[s].result.extras.merge_key_hi.size();
    out.shards.push_back(calls[s].outcome);
    all_ok = all_ok && calls[s].ok;
  }
  if (!all_ok) {
    out.status = StatusOfFailures(
        out.shards, cancelled_.load(std::memory_order_acquire));
    for (const ShardOutcome& o : out.shards) {
      if (o.client_status != net::ClientStatus::kOk ||
          o.error != net::ErrorCode::kNone) {
        out.detail = "shard " + std::to_string(o.shard) + ": " +
                     (o.detail.empty()
                          ? net::ClientStatusName(o.client_status)
                          : o.detail);
        break;
      }
    }
    Count(std::string("dist.query_error.") + DistStatusName(out.status));
    return out;
  }

  // Structural validation before the merge: every shard must have shipped
  // coherent merge-key sections.
  const size_t num_specs = spec.aggregates.size();
  for (size_t s = 0; s < calls.size(); ++s) {
    const net::RemoteResult& r = calls[s].result;
    const size_t elems = r.extras.merge_key_hi.size();
    bool bad = r.extras.merge_key_lo.size() != elems;
    if (per_group) {
      bad = bad || elems != r.summary.num_groups;
      bad = bad || r.extras.group_sizes.size() != elems;
      bad = bad || r.aggregate_values.size() != num_specs;
      for (const auto& v : r.aggregate_values) {
        bad = bad || v.size() != elems;
      }
    } else {
      bad = bad || elems != r.result_oids.size();
    }
    if (bad) {
      out.status = DistStatus::kMergeError;
      out.detail = "shard " + std::to_string(s) +
                   " answered without coherent merge-key sections";
      Count("dist.query_error.merge_error");
      return out;
    }
  }

  // Gather: loser-tree merge with group-boundary stitching.
  Timer merge_timer;
  std::vector<MergeRun> runs;
  runs.reserve(calls.size());
  bool all_global_oids = true;
  for (const ShardCall& c : calls) {
    runs.push_back({c.result.extras.merge_key_hi.data(),
                    c.result.extras.merge_key_lo.data(),
                    c.result.extras.merge_key_hi.size()});
    all_global_oids =
        all_global_oids && (c.result.extras.global_oids.size() ==
                            c.result.extras.merge_key_hi.size());
  }
  OvcLoserTree tree(std::move(runs));

  std::vector<Key128> merged_keys;  // per merged group, for result_order
  if (per_group) {
    out.aggregate_values.resize(num_specs);
    MergeElem e;
    while (tree.Next(&e)) {
      const net::RemoteResult& r = calls[e.run].result;
      const size_t i = e.index;
      if (e.code != 0 || merged_keys.empty()) {
        // New group.
        merged_keys.push_back({r.extras.merge_key_hi[i],
                               r.extras.merge_key_lo[i]});
        out.group_sizes.push_back(r.extras.group_sizes[i]);
        for (size_t a = 0; a < num_specs; ++a) {
          out.aggregate_values[a].push_back(r.aggregate_values[a][i]);
        }
      } else {
        // Same key as the previous output element: a group split across
        // shards — stitch.
        out.group_sizes.back() += r.extras.group_sizes[i];
        for (size_t a = 0; a < num_specs; ++a) {
          int64_t& acc = out.aggregate_values[a].back();
          const int64_t v = r.aggregate_values[a][i];
          switch (spec.aggregates[a].op) {
            case AggOp::kSum:
            case AggOp::kCount:
            case AggOp::kAvg:  // values hold per-group sums
              acc += v;
              break;
            case AggOp::kMin:
              acc = std::min(acc, v);
              break;
            case AggOp::kMax:
              acc = std::max(acc, v);
              break;
          }
        }
      }
    }
    out.num_groups = merged_keys.size();
    // Averages from the stitched sums and sizes (wire layout: per kAvg
    // spec, groups concatenated).
    for (size_t a = 0; a < num_specs; ++a) {
      if (spec.aggregates[a].op != AggOp::kAvg) continue;
      for (size_t g = 0; g < out.num_groups; ++g) {
        out.aggregate_avg.push_back(
            static_cast<double>(out.aggregate_values[a][g]) /
            static_cast<double>(out.group_sizes[g]));
      }
    }
  } else {
    // ORDER BY: a straight row interleave; oids are the partitioner's
    // global ids when every shard has them, raw shard-local oids
    // otherwise (only comparable within one shard in that case).
    MergeElem e;
    while (tree.Next(&e)) {
      const net::RemoteResult& r = calls[e.run].result;
      out.result_oids.push_back(all_global_oids
                                    ? r.extras.global_oids[e.index]
                                    : r.result_oids[e.index]);
    }
  }
  out.merge_emitted = tree.counters().emitted;
  out.merge_full_compares = tree.counters().full_compares;

  // Re-apply the stripped result ordering over the merged groups: a
  // stable sort on the same values single-node ordering encodes (kAvg
  // orders by its sums there too, so ties and order match).
  if (per_group && !spec.result_order.empty()) {
    std::vector<std::vector<int64_t>> keys;
    std::vector<SortOrder> key_orders;
    std::vector<int> widths;
    for (const ResultOrderSpec& ros : spec.result_order) {
      std::vector<int64_t> values(out.num_groups);
      if (ros.key.rfind("agg:", 0) == 0) {
        const size_t idx = static_cast<size_t>(std::stoi(ros.key.substr(4)));
        if (idx >= num_specs) {
          out.status = DistStatus::kBadQuery;
          out.detail = "result_order references aggregate " + ros.key;
          Count("dist.query_error.bad_query");
          return out;
        }
        values = out.aggregate_values[idx];
      } else {
        size_t j = spec.group_by.size();
        for (size_t i = 0; i < spec.group_by.size(); ++i) {
          if (spec.group_by[i] == ros.key) j = i;
        }
        if (j == spec.group_by.size()) {
          out.status = DistStatus::kBadQuery;
          out.detail = "result_order key is not a group-by column: " +
                       ros.key;
          Count("dist.query_error.bad_query");
          return out;
        }
        if (widths.empty() &&
            !FetchWidths(spec.group_by, &widths, &out.detail)) {
          out.status = DistStatus::kMergeError;
          Count("dist.query_error.merge_error");
          return out;
        }
        for (size_t g = 0; g < out.num_groups; ++g) {
          values[g] =
              static_cast<int64_t>(SliceKey(merged_keys[g], widths, j));
        }
      }
      keys.push_back(std::move(values));
      key_orders.push_back(ros.order);
    }
    out.result_group_order.resize(out.num_groups);
    for (size_t g = 0; g < out.num_groups; ++g) {
      out.result_group_order[g] = static_cast<uint32_t>(g);
    }
    std::stable_sort(out.result_group_order.begin(),
                     out.result_group_order.end(),
                     [&](uint32_t a, uint32_t b) {
                       for (size_t k = 0; k < keys.size(); ++k) {
                         if (keys[k][a] == keys[k][b]) continue;
                         const bool less = keys[k][a] < keys[k][b];
                         return key_orders[k] == SortOrder::kAscending
                                    ? less
                                    : !less;
                       }
                       return false;
                     });
  }

  out.merge_seconds = merge_timer.Seconds();
  if (options_.metrics != nullptr) {
    options_.metrics->histogram("dist.merge_seconds")
        ->Record(out.merge_seconds);
    options_.metrics->counter("dist.merge_emitted")->Add(out.merge_emitted);
    options_.metrics->counter("dist.merge_full_compares")
        ->Add(out.merge_full_compares);
  }
  out.status = DistStatus::kOk;
  Count("dist.queries_ok");
  return out;
}

}  // namespace dist
}  // namespace mcsort

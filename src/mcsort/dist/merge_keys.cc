#include "mcsort/dist/merge_keys.h"

#include <cstdio>
#include <utility>

#include "mcsort/common/bits.h"
#include "mcsort/storage/column.h"

namespace mcsort {
namespace dist {
namespace {

struct KeyAttr {
  const EncodedColumn* column;
  int width;
  bool descending;
};

// The 128-bit composite of one row: codes concatenated MSB-first, DESC
// complemented, left-aligned so unsigned (hi, lo) comparison is the
// multi-column comparison.
inline unsigned __int128 KeyOf(const std::vector<KeyAttr>& attrs,
                               int total_width, Oid oid) {
  unsigned __int128 key = 0;
  for (const KeyAttr& a : attrs) {
    Code code = a.column->Get(oid);
    if (a.descending) code = ComplementCode(code, a.width);
    key = (key << a.width) | code;
  }
  return key << (128 - total_width);
}

}  // namespace

MergeKeys ComputeMergeKeys(const Table& table, const QuerySpec& spec,
                           const QueryResult& result) {
  MergeKeys out;
  if (!spec.partition_by.empty() || !spec.window_order_column.empty()) {
    out.error = "merge keys unsupported for window (PARTITION BY) queries";
    return out;
  }

  // Mirror QueryExecutor::ResolveSortAttrs: GROUP BY names (all ascending,
  // spec order — the coordinator pins fixed_column_order so this IS the
  // executed order), else ORDER BY names with their directions.
  std::vector<std::string> names;
  std::vector<SortOrder> orders;
  if (!spec.group_by.empty()) {
    names = spec.group_by;
    orders.assign(names.size(), SortOrder::kAscending);
    out.per_group = true;
  } else {
    for (const auto& [name, order] : spec.order_by) {
      names.push_back(name);
      orders.push_back(order);
    }
  }
  if (names.empty()) {
    out.error = "merge keys require GROUP BY or ORDER BY attributes";
    return out;
  }

  std::vector<KeyAttr> attrs;
  int total_width = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    const EncodedColumn& column = table.column(names[i]);
    attrs.push_back(
        {&column, column.width(), orders[i] == SortOrder::kDescending});
    total_width += column.width();
  }
  if (total_width > 128) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "composite sort key is %d bits; merge keys cap at 128",
                  total_width);
    out.error = buf;
    return out;
  }

  if (out.per_group) {
    const Segments& groups = result.sort_profile.groups;
    const size_t n = groups.count();
    out.hi.reserve(n);
    out.lo.reserve(n);
    out.group_sizes.reserve(n);
    for (size_t g = 0; g < n; ++g) {
      // Every row of a group shares all sort-attribute codes; the first
      // row in sorted order is as good a representative as any.
      const Oid oid = result.result_oids[groups.begin(g)];
      const unsigned __int128 key = KeyOf(attrs, total_width, oid);
      out.hi.push_back(static_cast<uint64_t>(key >> 64));
      out.lo.push_back(static_cast<uint64_t>(key));
      out.group_sizes.push_back(groups.length(g));
    }
  } else {
    const size_t n = result.result_oids.size();
    const bool has_goid = table.HasColumn(kGlobalOidColumn);
    const EncodedColumn* goid =
        has_goid ? &table.column(kGlobalOidColumn) : nullptr;
    out.hi.reserve(n);
    out.lo.reserve(n);
    if (has_goid) out.global_oids.reserve(n);
    for (size_t r = 0; r < n; ++r) {
      const Oid oid = result.result_oids[r];
      const unsigned __int128 key = KeyOf(attrs, total_width, oid);
      out.hi.push_back(static_cast<uint64_t>(key >> 64));
      out.lo.push_back(static_cast<uint64_t>(key));
      if (has_goid) {
        out.global_oids.push_back(static_cast<uint32_t>(goid->Get(oid)));
      }
    }
  }
  out.ok = true;
  return out;
}

}  // namespace dist
}  // namespace mcsort

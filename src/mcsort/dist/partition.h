// Table partitioner — the scatter half of the distributed tier. Splits
// one table into N disjoint shard tables (hash or range on a key column),
// each carrying every original column plus the reserved "__goid" column
// (dist/merge_keys.h) recording each row's pre-shard oid, so distributed
// row-level results are comparable against single-node output no matter
// how rows were scattered.
//
// PartitionToSnapshots additionally persists each shard as a PR-5
// snapshot directory, <out_root>/shard<i>/<name>/ — exactly what
// mcsort_server's --data_dir catalog loads — so a cluster is "shard once,
// point N servers at N directories".
#ifndef MCSORT_DIST_PARTITION_H_
#define MCSORT_DIST_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mcsort/storage/table.h"

namespace mcsort {
namespace dist {

enum class PartitionMode : uint8_t {
  // shard(row) = mix(key code) % N — near-uniform row counts, groups of
  // one key value land on one shard only by accident (the merge stitches
  // the seams either way).
  kHash,
  // Equal-width ranges over the key column's [min, max] code span — each
  // key value lives on exactly one shard, ranges are contiguous in sort
  // order. Without a key column: contiguous row ranges.
  kRange,
};

struct PartitionOptions {
  int num_shards = 2;
  PartitionMode mode = PartitionMode::kHash;
  // Sharding key. Empty: kHash mixes the row id, kRange cuts contiguous
  // row ranges.
  std::string key_column;
  // Attach the "__goid" global-row-id column to every shard (required for
  // bit-identical distributed ORDER BY verification; costs
  // BitsForCount(rows) bits/row).
  bool add_global_oids = true;
};

struct PartitionResult {
  bool ok = false;
  std::string error;
  // shards[i] holds the rows assigned to shard i, original column order
  // preserved (plus "__goid" last when requested).
  std::vector<Table> shards;
  // Row count per shard (== shards[i].row_count(); kept separately so
  // callers can report the split without touching the tables).
  std::vector<uint64_t> shard_rows;
};

// Splits `table` into options.num_shards in-memory shard tables.
// Dictionaries and domain bases are copied per shard, so every shard
// decodes codes identically to the source table.
PartitionResult PartitionTable(const Table& table,
                               const PartitionOptions& options);

struct PartitionToDiskResult {
  bool ok = false;
  std::string error;
  std::vector<std::string> shard_dirs;  // <out_root>/shard<i>/<name>
  std::vector<uint64_t> shard_rows;
};

// PartitionTable + snapshot each shard under <out_root>/shard<i>/<name>/.
PartitionToDiskResult PartitionToSnapshots(const Table& table,
                                           const std::string& name,
                                           const std::string& out_root,
                                           const PartitionOptions& options);

}  // namespace dist
}  // namespace mcsort

#endif  // MCSORT_DIST_PARTITION_H_

// Small filesystem helpers shared by the snapshot reader/writer and the
// CSV ingest pipeline. POSIX-only, like the rest of io/.
#ifndef MCSORT_IO_FS_UTIL_H_
#define MCSORT_IO_FS_UTIL_H_

#include <string>

#include "mcsort/io/io_status.h"

namespace mcsort {

// mkdir -p: creates `dir` and any missing parents (mode 0755).
bool MakeDirs(const std::string& dir);

// Reads the whole file into `out` (replacing its contents).
IoStatus ReadFileToString(const std::string& path, std::string* out);

// Writes `bytes` to `path`.tmp and renames over `path`, so readers never
// observe a half-written file.
IoStatus WriteFileAtomic(const std::string& path, const std::string& bytes);

// Deletes one file. True when the file was removed or was already absent.
bool RemoveFile(const std::string& path);

// Deletes every regular file directly under `dir` whose name ends with
// `suffix` — the crash-leftover sweep for the temp-file discipline shared
// by the snapshot codec, WriteFileAtomic, and the spill run writer: a
// finished artifact is never named `*.tmp`, so any such file is an orphan
// from an interrupted writer. Returns the number of files removed
// (missing/unreadable `dir` counts as 0). Only safe when no writer is
// concurrently using `dir` (call at startup/attach time).
size_t CleanupTempFiles(const std::string& dir,
                        const std::string& suffix = ".tmp");

}  // namespace mcsort

#endif  // MCSORT_IO_FS_UTIL_H_

// Small filesystem helpers shared by the snapshot reader/writer and the
// CSV ingest pipeline. POSIX-only, like the rest of io/.
#ifndef MCSORT_IO_FS_UTIL_H_
#define MCSORT_IO_FS_UTIL_H_

#include <string>

#include "mcsort/io/io_status.h"

namespace mcsort {

// mkdir -p: creates `dir` and any missing parents (mode 0755).
bool MakeDirs(const std::string& dir);

// Reads the whole file into `out` (replacing its contents).
IoStatus ReadFileToString(const std::string& path, std::string* out);

// Writes `bytes` to `path`.tmp and renames over `path`, so readers never
// observe a half-written file.
IoStatus WriteFileAtomic(const std::string& path, const std::string& bytes);

}  // namespace mcsort

#endif  // MCSORT_IO_FS_UTIL_H_

// Typed error reporting for the persistence tier (io/), plus the load-mode
// options shared by Table::LoadSnapshot and the catalog. Lives in its own
// leaf header so storage/table.h can name these types without pulling in
// the snapshot machinery.
#ifndef MCSORT_IO_IO_STATUS_H_
#define MCSORT_IO_IO_STATUS_H_

#include <string>
#include <utility>

#include "mcsort/common/status.h"

namespace mcsort {

enum class IoCode {
  kOk = 0,
  kIoError,     // open/read/write/mmap syscall failure (message has errno)
  kBadMagic,    // not a snapshot file
  kBadVersion,  // snapshot from an incompatible format version
  kCorrupt,     // CRC32C mismatch or truncated section
  kBadFormat,   // structurally invalid (bad widths, counts, offsets)
};

const char* IoCodeName(IoCode code);

// Status-or-error result of an io/ operation. Corruption and version skew
// are *values*, not crashes: a server must survive a bad snapshot file.
struct IoStatus {
  IoCode code = IoCode::kOk;
  std::string message;

  bool ok() const { return code == IoCode::kOk; }

  static IoStatus Ok() { return {}; }
  static IoStatus Error(IoCode code, std::string message) {
    return {code, std::move(message)};
  }

  // Human-readable "kind: message" line for logs and wire error details.
  std::string ToString() const;

  // Unified-status bridge (common/status.h): kIoError -> kUnavailable
  // (the medium may recover), kCorrupt -> kDataLoss (it will not),
  // kBadMagic/kBadFormat -> kInvalidArgument, kBadVersion ->
  // kFailedPrecondition. FromStatus inverts onto the canonical member of
  // each class (kInvalidArgument -> kBadFormat), preserving the detail.
  Status ToStatus() const;
  static IoStatus FromStatus(const Status& status);
};

// How LoadSnapshot materializes column codes.
enum class SnapshotLoadMode {
  kBuffered,  // read(2) into fresh AlignedBuffers; file independent after
  kMmap,      // zero-copy: codes are views over a pinned PROT_READ mapping
};

struct SnapshotLoadOptions {
  SnapshotLoadMode mode = SnapshotLoadMode::kBuffered;
  // Verify every section's CRC32C at load. With kMmap this costs one
  // sequential pass over the mapping (memory stays file-backed); turn it
  // off to get the query-ready-in-milliseconds path and trust the medium.
  bool verify_checksums = true;
};

}  // namespace mcsort

#endif  // MCSORT_IO_IO_STATUS_H_

// Snapshot format reader/writer — see snapshot.h for the layout and
// DESIGN.md §10 for the rationale. Everything here is deliberately plain:
// stdio for the write path (sequential, buffered), mmap or stdio for the
// read path, the net/wire little-endian codec for metadata, and CRC32C
// (chained via its seed parameter) for integrity.
#include "mcsort/io/snapshot.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "mcsort/common/bits.h"
#include "mcsort/common/mmap_file.h"
#include "mcsort/io/fs_util.h"
#include "mcsort/net/wire.h"
#include "mcsort/storage/table.h"

namespace mcsort {

using net::Crc32c;
using net::WireReader;
using net::WireWriter;

const char* IoCodeName(IoCode code) {
  switch (code) {
    case IoCode::kOk: return "OK";
    case IoCode::kIoError: return "IO_ERROR";
    case IoCode::kBadMagic: return "BAD_MAGIC";
    case IoCode::kBadVersion: return "BAD_VERSION";
    case IoCode::kCorrupt: return "CORRUPT";
    case IoCode::kBadFormat: return "BAD_FORMAT";
  }
  return "UNKNOWN";
}

std::string IoStatus::ToString() const {
  if (ok()) return "OK";
  return std::string(IoCodeName(code)) + ": " + message;
}

Status IoStatus::ToStatus() const {
  switch (code) {
    case IoCode::kOk: return Status::Ok();
    case IoCode::kIoError: return Status::Unavailable(message);
    case IoCode::kBadMagic: return Status::InvalidArgument(message);
    case IoCode::kBadVersion: return Status::FailedPrecondition(message);
    case IoCode::kCorrupt: return Status::DataLoss(message);
    case IoCode::kBadFormat: return Status::InvalidArgument(message);
  }
  return Status::Internal(message);
}

IoStatus IoStatus::FromStatus(const Status& status) {
  switch (status.code) {
    case StatusCode::kOk: return Ok();
    case StatusCode::kUnavailable:
    case StatusCode::kNotFound:
      return Error(IoCode::kIoError, status.detail);
    case StatusCode::kDataLoss: return Error(IoCode::kCorrupt, status.detail);
    case StatusCode::kFailedPrecondition:
      return Error(IoCode::kBadVersion, status.detail);
    case StatusCode::kInvalidArgument:
      return Error(IoCode::kBadFormat, status.detail);
    default:
      return Error(IoCode::kIoError, status.detail);
  }
}

namespace {

constexpr size_t kSegmentHeaderBytes = 16;

struct SectionRecord {
  uint8_t id = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
};

struct ColumnMeta {
  std::string name;
  uint8_t width = 0;
  uint8_t type = 0;  // PhysicalType as u8
  uint8_t has_dict = 0;
  int64_t domain_base = 0;
  std::string file;
  std::vector<SectionRecord> sections;

  const SectionRecord* FindSection(SnapshotSection id) const {
    for (const auto& s : sections) {
      if (s.id == static_cast<uint8_t>(id)) return &s;
    }
    return nullptr;
  }
};

struct Manifest {
  uint64_t row_count = 0;
  std::vector<ColumnMeta> columns;
};

IoStatus ErrnoStatus(const std::string& what, const std::string& path) {
  return IoStatus::Error(IoCode::kIoError,
                         what + " " + path + ": " + std::strerror(errno));
}

// RAII stdio handle.
struct File {
  std::FILE* f = nullptr;
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
};

// --- metadata codecs -----------------------------------------------------

std::string EncodeDictionarySection(const StringDictionary& dict) {
  std::string out;
  WireWriter w(&out);
  w.U64(dict.size());
  for (const auto& value : dict.values()) {
    w.U32(static_cast<uint32_t>(value.size()));
    w.Bytes(value.data(), value.size());
  }
  return out;
}

bool DecodeDictionarySection(const uint8_t* data, size_t n,
                             std::vector<std::string>* values) {
  WireReader r(data, n);
  const uint64_t count = r.U64();
  // Each entry costs at least its 4-byte length prefix; reject counts the
  // payload cannot possibly hold before reserving memory for them.
  if (count > n / 4 + 1) return false;
  values->clear();
  values->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t len = r.U32();
    if (len > r.remaining()) return false;
    std::string value(len, '\0');
    if (len > 0 && !r.Array(value.data(), len, 1)) return false;
    values->push_back(std::move(value));
  }
  return r.AtEnd();
}

std::string EncodeStatsSection(const ColumnStatsImage& image) {
  std::string out;
  WireWriter w(&out);
  w.U64(image.row_count);
  w.U64(image.distinct_count);
  w.U64(image.min_code);
  w.U64(image.max_code);
  w.U32(static_cast<uint32_t>(image.width));
  w.U32(static_cast<uint32_t>(image.hist_bits));
  w.U64(image.bucket_rows.size());
  w.Bytes(image.bucket_rows.data(),
          image.bucket_rows.size() * sizeof(uint64_t));
  w.Bytes(image.bucket_distinct.data(),
          image.bucket_distinct.size() * sizeof(uint64_t));
  return out;
}

bool DecodeStatsSection(const uint8_t* data, size_t n,
                        ColumnStatsImage* image) {
  WireReader r(data, n);
  image->row_count = r.U64();
  image->distinct_count = r.U64();
  image->min_code = r.U64();
  image->max_code = r.U64();
  image->width = static_cast<int32_t>(r.U32());
  image->hist_bits = static_cast<int32_t>(r.U32());
  const uint64_t buckets = r.U64();
  if (image->width < 1 || image->width > 64 || image->hist_bits < 0 ||
      image->hist_bits > image->width || image->hist_bits > 30 ||
      buckets != uint64_t{1} << image->hist_bits ||
      buckets * 2 * sizeof(uint64_t) > r.remaining()) {
    return false;
  }
  image->bucket_rows.resize(buckets);
  image->bucket_distinct.resize(buckets);
  if (buckets > 0) {
    if (!r.Array(image->bucket_rows.data(), buckets, sizeof(uint64_t))) {
      return false;
    }
    if (!r.Array(image->bucket_distinct.data(), buckets, sizeof(uint64_t))) {
      return false;
    }
  }
  return r.AtEnd();
}

std::string EncodeManifest(const Manifest& manifest) {
  std::string out;
  WireWriter w(&out);
  w.U32(kSnapshotManifestMagic);
  w.U32(kSnapshotVersion);
  w.U64(manifest.row_count);
  w.U32(static_cast<uint32_t>(manifest.columns.size()));
  for (const auto& col : manifest.columns) {
    w.Str(col.name);
    w.U8(col.width);
    w.U8(col.type);
    w.U8(col.has_dict);
    w.I64(col.domain_base);
    w.Str(col.file);
    w.U32(static_cast<uint32_t>(col.sections.size()));
    for (const auto& s : col.sections) {
      w.U8(s.id);
      w.U64(s.offset);
      w.U64(s.length);
      w.U32(s.crc);
    }
  }
  const uint32_t crc = Crc32c(out.data(), out.size());
  w.U32(crc);
  return out;
}

IoStatus DecodeManifest(const std::string& bytes, const std::string& path,
                        Manifest* manifest) {
  if (bytes.size() < 24) {
    return IoStatus::Error(IoCode::kBadFormat,
                           "manifest too short: " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32c(bytes.data(), bytes.size() - 4) != stored_crc) {
    return IoStatus::Error(IoCode::kCorrupt,
                           "manifest checksum mismatch: " + path);
  }
  WireReader r(bytes.data(), bytes.size() - 4);
  if (r.U32() != kSnapshotManifestMagic) {
    return IoStatus::Error(IoCode::kBadMagic, "not a snapshot manifest: " +
                                                  path);
  }
  const uint32_t version = r.U32();
  if (version != kSnapshotVersion) {
    return IoStatus::Error(
        IoCode::kBadVersion,
        "snapshot version " + std::to_string(version) + " (want " +
            std::to_string(kSnapshotVersion) + "): " + path);
  }
  manifest->row_count = r.U64();
  const uint32_t ncols = r.U32();
  const auto bad = [&path](const std::string& why) {
    return IoStatus::Error(IoCode::kBadFormat, why + ": " + path);
  };
  if (ncols > 4096) return bad("implausible column count");
  manifest->columns.resize(ncols);
  for (auto& col : manifest->columns) {
    col.name = r.Str();
    col.width = r.U8();
    col.type = r.U8();
    col.has_dict = r.U8();
    col.domain_base = r.I64();
    col.file = r.Str();
    const uint32_t nsections = r.U32();
    if (!r.ok() || nsections > 16) return bad("bad column record");
    col.sections.resize(nsections);
    for (auto& s : col.sections) {
      s.id = r.U8();
      s.offset = r.U64();
      s.length = r.U64();
      s.crc = r.U32();
    }
    if (col.name.empty() || col.width < 1 || col.width > 64 ||
        col.type > 2 ||
        col.width > 8 * BytesOfPhysicalType(
                             static_cast<PhysicalType>(col.type)) ||
        col.file.empty() || col.file.find('/') != std::string::npos) {
      return bad("bad column metadata for '" + col.name + "'");
    }
  }
  if (!r.AtEnd()) return bad("trailing bytes in manifest");
  return IoStatus::Ok();
}

// --- write path ----------------------------------------------------------

class SegmentFileWriter {
 public:
  SegmentFileWriter(std::FILE* f, const std::string& path)
      : f_(f), path_(path) {}

  IoStatus WriteHeader(uint32_t column_index) {
    std::string header;
    WireWriter w(&header);
    w.U32(kSnapshotSegmentMagic);
    w.U32(kSnapshotVersion);
    w.U32(column_index);
    w.U32(0);  // reserved
    return Write(header.data(), header.size());
  }

  // Pads to the next page boundary and appends one CRC-recorded section.
  IoStatus Append(SnapshotSection id, const void* data, uint64_t length,
                  ColumnMeta* meta) {
    IoStatus st = PadTo(kSnapshotPageBytes);
    if (!st.ok()) return st;
    SectionRecord rec;
    rec.id = static_cast<uint8_t>(id);
    rec.offset = pos_;
    rec.length = length;
    rec.crc = Crc32c(data, length);
    st = Write(data, length);
    if (!st.ok()) return st;
    meta->sections.push_back(rec);
    return IoStatus::Ok();
  }

 private:
  IoStatus Write(const void* data, size_t n) {
    if (n > 0 && std::fwrite(data, 1, n, f_) != n) {
      return ErrnoStatus("write", path_);
    }
    pos_ += n;
    return IoStatus::Ok();
  }

  IoStatus PadTo(uint64_t align) {
    static const char kZeros[kSnapshotPageBytes] = {};
    const uint64_t padded = RoundUp(pos_, align);
    while (pos_ < padded) {
      const size_t chunk =
          std::min<uint64_t>(padded - pos_, sizeof(kZeros));
      IoStatus st = Write(kZeros, chunk);
      if (!st.ok()) return st;
    }
    return IoStatus::Ok();
  }

  std::FILE* f_;
  const std::string& path_;
  uint64_t pos_ = 0;
};

// Assembles the ByteSlice section: B slices back to back, each padded to a
// 64-byte (kSimdAlignment) stride so mmap views stay SIMD-aligned.
std::string BuildByteSliceSection(const ByteSliceColumn& bs) {
  const size_t slice_len = ByteSliceColumn::slice_bytes(bs.size());
  const size_t stride = RoundUp(slice_len, kSimdAlignment);
  std::string out;
  out.reserve(static_cast<size_t>(bs.num_slices()) * stride);
  for (int j = 0; j < bs.num_slices(); ++j) {
    out.append(reinterpret_cast<const char*>(bs.slice(j)), slice_len);
    out.append(stride - slice_len, '\0');
  }
  return out;
}

// Assembles the BitWeaving section: w bit planes, same stride discipline.
std::string BuildBitWeavingSection(const BitWeavingColumn& bw) {
  const size_t plane_len = bw.words_per_plane() * sizeof(uint64_t);
  const size_t stride = RoundUp(plane_len, kSimdAlignment);
  std::string out;
  out.reserve(static_cast<size_t>(bw.width()) * stride);
  for (int j = 0; j < bw.width(); ++j) {
    out.append(reinterpret_cast<const char*>(bw.plane(j)), plane_len);
    out.append(stride - plane_len, '\0');
  }
  return out;
}

IoStatus SaveColumn(const Table& table, const std::string& name,
                    uint32_t index, const std::string& dir,
                    ColumnMeta* meta) {
  const EncodedColumn& column = table.column(name);
  meta->name = name;
  meta->width = static_cast<uint8_t>(column.width());
  meta->type = static_cast<uint8_t>(column.type());
  meta->has_dict = table.HasDictionary(name) ? 1 : 0;
  meta->domain_base = table.domain_base(name);
  meta->file = std::to_string(index) + ".col";

  const std::string path = dir + "/" + meta->file;
  const std::string tmp = path + ".tmp";
  {
    File out;
    out.f = std::fopen(tmp.c_str(), "wb");
    if (out.f == nullptr) return ErrnoStatus("open", tmp);
    SegmentFileWriter writer(out.f, tmp);
    IoStatus st = writer.WriteHeader(index);
    if (!st.ok()) return st;

    st = writer.Append(SnapshotSection::kCodes, column.raw_data(),
                       column.byte_size(), meta);
    if (!st.ok()) return st;

    if (meta->has_dict != 0) {
      const std::string bytes =
          EncodeDictionarySection(table.dictionary(name));
      st = writer.Append(SnapshotSection::kDictionary, bytes.data(),
                         bytes.size(), meta);
      if (!st.ok()) return st;
    }

    // stats()/byteslice()/bitweaving() build lazily if this table never
    // computed them — the snapshot always carries warm caches.
    const std::string stats_bytes =
        EncodeStatsSection(table.stats(name).ToImage());
    st = writer.Append(SnapshotSection::kStats, stats_bytes.data(),
                       stats_bytes.size(), meta);
    if (!st.ok()) return st;

    const std::string bs_bytes = BuildByteSliceSection(table.byteslice(name));
    st = writer.Append(SnapshotSection::kByteSlice, bs_bytes.data(),
                       bs_bytes.size(), meta);
    if (!st.ok()) return st;

    const std::string bw_bytes =
        BuildBitWeavingSection(table.bitweaving(name));
    st = writer.Append(SnapshotSection::kBitWeaving, bw_bytes.data(),
                       bw_bytes.size(), meta);
    if (!st.ok()) return st;

    if (std::fflush(out.f) != 0) return ErrnoStatus("flush", tmp);
  }
  // Rename (not overwrite-in-place) so a live mmap of the previous snapshot
  // keeps reading the old inode.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoStatus("rename", tmp);
  }
  return IoStatus::Ok();
}

// --- read path -----------------------------------------------------------

IoStatus CheckSegmentHeader(const uint8_t* data, size_t size,
                            const std::string& path) {
  if (size < kSegmentHeaderBytes) {
    return IoStatus::Error(IoCode::kBadFormat,
                           "segment file too short: " + path);
  }
  WireReader r(data, kSegmentHeaderBytes);
  if (r.U32() != kSnapshotSegmentMagic) {
    return IoStatus::Error(IoCode::kBadMagic,
                           "not a snapshot segment: " + path);
  }
  if (r.U32() != kSnapshotVersion) {
    return IoStatus::Error(IoCode::kBadVersion,
                           "segment version mismatch: " + path);
  }
  return IoStatus::Ok();
}

IoStatus CheckSectionBounds(const ColumnMeta& meta, uint64_t file_size,
                            const std::string& path) {
  for (const auto& s : meta.sections) {
    if (s.offset < kSegmentHeaderBytes || s.offset > file_size ||
        s.length > file_size - s.offset) {
      return IoStatus::Error(IoCode::kBadFormat,
                             "section out of bounds: " + path);
    }
  }
  return IoStatus::Ok();
}

IoStatus RequireSection(const ColumnMeta& meta, SnapshotSection id,
                        const std::string& path,
                        const SectionRecord** out) {
  *out = meta.FindSection(id);
  if (*out == nullptr) {
    return IoStatus::Error(IoCode::kBadFormat,
                           "missing section " +
                               std::to_string(static_cast<int>(id)) + ": " +
                               path);
  }
  return IoStatus::Ok();
}

IoStatus VerifyCrc(const uint8_t* data, const SectionRecord& rec,
                   const std::string& path) {
  if (Crc32c(data, rec.length) != rec.crc) {
    return IoStatus::Error(IoCode::kCorrupt,
                           "section " + std::to_string(rec.id) +
                               " checksum mismatch: " + path);
  }
  return IoStatus::Ok();
}

// Loads one column from its segment file, dispatching on load mode. On
// kMmap the MmapFile ends up pinned to `table` and codes / slices / planes
// are views; on kBuffered everything is copied and the file is closed.
IoStatus LoadColumn(const ColumnMeta& meta, uint64_t row_count,
                    const std::string& dir,
                    const SnapshotLoadOptions& options, Table* table) {
  const std::string path = dir + "/" + meta.file;
  const int width = meta.width;
  const auto type = static_cast<PhysicalType>(meta.type);
  const uint64_t code_bytes =
      row_count * static_cast<uint64_t>(BytesOfPhysicalType(type));

  // Both modes materialize the whole segment as a byte range: either the
  // mapping or a buffered read of the full file. Segment files contain
  // nothing but this column, so whole-file reads waste nothing.
  std::string buffered;
  auto mapping = std::make_shared<MmapFile>();
  const uint8_t* base = nullptr;
  uint64_t file_size = 0;
  const bool use_mmap = options.mode == SnapshotLoadMode::kMmap;
  if (use_mmap) {
    std::string error;
    if (!mapping->Open(path, &error)) {
      return IoStatus::Error(IoCode::kIoError, error);
    }
    base = mapping->data();
    file_size = mapping->size();
    if (options.verify_checksums) mapping->AdviseSequential();
  } else {
    IoStatus st = ReadFileToString(path, &buffered);
    if (!st.ok()) return st;
    base = reinterpret_cast<const uint8_t*>(buffered.data());
    file_size = buffered.size();
  }

  IoStatus st = CheckSegmentHeader(base, file_size, path);
  if (!st.ok()) return st;
  st = CheckSectionBounds(meta, file_size, path);
  if (!st.ok()) return st;
  if (options.verify_checksums) {
    for (const auto& rec : meta.sections) {
      st = VerifyCrc(base + rec.offset, rec, path);
      if (!st.ok()) return st;
    }
  }

  const auto bad = [&path](const std::string& why) {
    return IoStatus::Error(IoCode::kBadFormat, why + ": " + path);
  };

  // kCodes → EncodedColumn (the one truly zero-copy section under mmap).
  const SectionRecord* codes = nullptr;
  st = RequireSection(meta, SnapshotSection::kCodes, path, &codes);
  if (!st.ok()) return st;
  if (codes->length != code_bytes || codes->offset % kSnapshotPageBytes != 0) {
    return bad("codes section size/alignment mismatch");
  }
  EncodedColumn column;
  if (use_mmap) {
    column.ResetView(width, type, row_count, base + codes->offset);
  } else {
    column.ResetTyped(width, type, row_count, /*zero_fill=*/false);
    std::memcpy(column.raw_data(), base + codes->offset, code_bytes);
  }

  // kDictionary → StringDictionary (always parsed; codes reference it).
  std::unique_ptr<StringDictionary> dict;
  if (meta.has_dict != 0) {
    const SectionRecord* rec = nullptr;
    st = RequireSection(meta, SnapshotSection::kDictionary, path, &rec);
    if (!st.ok()) return st;
    std::vector<std::string> values;
    if (!DecodeDictionarySection(base + rec->offset, rec->length, &values)) {
      return bad("undecodable dictionary section");
    }
    for (size_t i = 1; i < values.size(); ++i) {
      if (!(values[i - 1] < values[i])) return bad("dictionary not sorted");
    }
    if (BitsForCount(values.size()) != width) {
      return bad("dictionary size inconsistent with column width");
    }
    dict = std::make_unique<StringDictionary>(
        StringDictionary::FromSorted(std::move(values)));
  }

  // kStats → ColumnStats cache.
  const SectionRecord* stats_rec = nullptr;
  st = RequireSection(meta, SnapshotSection::kStats, path, &stats_rec);
  if (!st.ok()) return st;
  ColumnStatsImage image;
  if (!DecodeStatsSection(base + stats_rec->offset, stats_rec->length,
                          &image) ||
      image.width != width || image.row_count != row_count) {
    return bad("undecodable statistics section");
  }

  // kByteSlice → ByteSliceColumn cache (views under mmap).
  const SectionRecord* bs_rec = nullptr;
  st = RequireSection(meta, SnapshotSection::kByteSlice, path, &bs_rec);
  if (!st.ok()) return st;
  const int num_slices = (width + 7) / 8;
  const size_t slice_len = ByteSliceColumn::slice_bytes(row_count);
  const size_t slice_stride = RoundUp(slice_len, kSimdAlignment);
  if (bs_rec->length != static_cast<uint64_t>(num_slices) * slice_stride ||
      bs_rec->offset % kSnapshotPageBytes != 0) {
    return bad("byteslice section size/alignment mismatch");
  }
  std::vector<AlignedBuffer<uint8_t>> slices(
      static_cast<size_t>(num_slices));
  for (int j = 0; j < num_slices; ++j) {
    const uint8_t* src = base + bs_rec->offset + j * slice_stride;
    if (use_mmap) {
      slices[j].ResetView(const_cast<uint8_t*>(src), slice_len);
    } else {
      slices[j].Reset(slice_len);
      std::memcpy(slices[j].data(), src, slice_len);
    }
  }

  // kBitWeaving → BitWeavingColumn cache (views under mmap).
  const SectionRecord* bw_rec = nullptr;
  st = RequireSection(meta, SnapshotSection::kBitWeaving, path, &bw_rec);
  if (!st.ok()) return st;
  const size_t words_per_plane = RoundUp(row_count, 64) / 64;
  const size_t plane_len = words_per_plane * sizeof(uint64_t);
  const size_t plane_stride = RoundUp(plane_len, kSimdAlignment);
  if (bw_rec->length != static_cast<uint64_t>(width) * plane_stride ||
      bw_rec->offset % kSnapshotPageBytes != 0) {
    return bad("bitweaving section size/alignment mismatch");
  }
  std::vector<AlignedBuffer<uint64_t>> planes(static_cast<size_t>(width));
  for (int j = 0; j < width; ++j) {
    const uint8_t* src = base + bw_rec->offset + j * plane_stride;
    if (use_mmap) {
      planes[j].ResetView(
          reinterpret_cast<uint64_t*>(const_cast<uint8_t*>(src)),
          words_per_plane);
    } else {
      planes[j].Reset(words_per_plane);
      std::memcpy(planes[j].data(), src, plane_len);
    }
  }

  table->AddColumnParts(meta.name, std::move(column), std::move(dict),
                        meta.domain_base);
  table->SetStats(meta.name, ColumnStats::FromImage(image));
  table->SetByteSlice(meta.name, ByteSliceColumn::FromParts(
                                     width, row_count, std::move(slices)));
  table->SetBitWeaving(meta.name, BitWeavingColumn::FromParts(
                                      width, row_count, std::move(planes)));
  if (use_mmap) table->PinResource(std::move(mapping));
  return IoStatus::Ok();
}

}  // namespace

IoStatus SaveTableSnapshot(const Table& table, const std::string& dir) {
  if (!MakeDirs(dir)) return ErrnoStatus("mkdir", dir);
  Manifest manifest;
  manifest.row_count = table.row_count();
  manifest.columns.resize(table.column_names().size());
  for (size_t i = 0; i < table.column_names().size(); ++i) {
    IoStatus st =
        SaveColumn(table, table.column_names()[i], static_cast<uint32_t>(i),
                   dir, &manifest.columns[i]);
    if (!st.ok()) return st;
  }
  // The manifest rename is the commit point: a crash before it leaves no
  // readable snapshot, never a half-written one.
  return WriteFileAtomic(dir + "/" + kSnapshotManifestFile,
                        EncodeManifest(manifest));
}

IoStatus LoadTableSnapshot(const std::string& dir,
                           const SnapshotLoadOptions& options, Table* out) {
  const std::string manifest_path = dir + "/" + kSnapshotManifestFile;
  std::string manifest_bytes;
  IoStatus st = ReadFileToString(manifest_path, &manifest_bytes);
  if (!st.ok()) return st;
  Manifest manifest;
  st = DecodeManifest(manifest_bytes, manifest_path, &manifest);
  if (!st.ok()) return st;

  Table table(manifest.row_count);
  for (const auto& meta : manifest.columns) {
    st = LoadColumn(meta, manifest.row_count, dir, options, &table);
    if (!st.ok()) return st;
  }
  *out = std::move(table);
  return IoStatus::Ok();
}

std::vector<std::string> ListSnapshotTables(const std::string& root) {
  std::vector<std::string> names;
  DIR* d = ::opendir(root.c_str());
  if (d == nullptr) return names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (SnapshotExists(root + "/" + name)) names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

bool SnapshotExists(const std::string& dir) {
  struct stat st;
  return ::stat((dir + "/" + kSnapshotManifestFile).c_str(), &st) == 0 &&
         S_ISREG(st.st_mode);
}

IoStatus Table::SaveSnapshot(const std::string& dir) const {
  return SaveTableSnapshot(*this, dir);
}

IoStatus Table::LoadSnapshot(const std::string& dir,
                             const SnapshotLoadOptions& options, Table* out) {
  return LoadTableSnapshot(dir, options, out);
}

}  // namespace mcsort

#include "mcsort/io/csv_ingest.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "mcsort/common/bits.h"
#include "mcsort/common/thread_pool.h"
#include "mcsort/common/timer.h"
#include "mcsort/io/fs_util.h"
#include "mcsort/storage/dictionary.h"
#include "mcsort/storage/table.h"

namespace mcsort {
namespace {

constexpr uint64_t kRowMorsel = 4096;

struct LineRange {
  const char* begin = nullptr;
  const char* end = nullptr;
};

// Strict integer parse over [b, e): optional sign, digits only, no
// trailing junk, full int64 range.
bool ParseInt64(const char* b, const char* e, int64_t* out) {
  if (b == e) return false;
  bool negative = false;
  if (*b == '+' || *b == '-') {
    negative = *b == '-';
    ++b;
    if (b == e) return false;
  }
  uint64_t magnitude = 0;
  for (; b < e; ++b) {
    if (*b < '0' || *b > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(*b - '0');
    if (magnitude > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;
    }
    magnitude = magnitude * 10 + digit;
  }
  const uint64_t limit =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) +
      (negative ? 1 : 0);
  if (magnitude > limit) return false;
  *out = negative ? -static_cast<int64_t>(magnitude - 1) - 1
                  : static_cast<int64_t>(magnitude);
  return true;
}

// strtod needs a NUL terminator; fields longer than the stack buffer are
// not numbers we care to support.
bool ParseDouble(const char* b, const char* e, double* out) {
  const size_t len = static_cast<size_t>(e - b);
  if (len == 0 || len >= 64) return false;
  char buf[64];
  std::memcpy(buf, b, len);
  buf[len] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + len || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

// Splits [b, e) on `delim` into at most `max_fields` views. Returns the
// field count, or -1 on overflow. No quoting: delimiters always split.
int SplitFields(const char* b, const char* e, char delim,
                std::string_view* out, int max_fields) {
  int n = 0;
  const char* field = b;
  for (const char* p = b;; ++p) {
    if (p == e || *p == delim) {
      if (n >= max_fields) return -1;
      out[n++] = std::string_view(field, static_cast<size_t>(p - field));
      if (p == e) break;
      field = p + 1;
    }
  }
  return n;
}

struct InferAcc {
  bool all_int = true;
  bool all_num = true;
  int64_t imin = std::numeric_limits<int64_t>::max();
  int64_t imax = std::numeric_limits<int64_t>::min();
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = -std::numeric_limits<double>::infinity();

  void Merge(const InferAcc& other) {
    all_int = all_int && other.all_int;
    all_num = all_num && other.all_num;
    imin = std::min(imin, other.imin);
    imax = std::max(imax, other.imax);
    dmin = std::min(dmin, other.dmin);
    dmax = std::max(dmax, other.dmax);
  }
};

// Records the smallest failing row index across workers.
void NoteBadRow(std::atomic<uint64_t>* bad, uint64_t row) {
  uint64_t seen = bad->load(std::memory_order_relaxed);
  while (row < seen &&
         !bad->compare_exchange_weak(seen, row, std::memory_order_relaxed)) {
  }
}

IoStatus BadRowError(const std::string& path, uint64_t row,
                     const std::string& why) {
  return IoStatus::Error(IoCode::kBadFormat,
                         path + " row " + std::to_string(row + 1) + ": " +
                             why);
}

double Pow10(int digits) {
  double p = 1.0;
  for (int i = 0; i < digits; ++i) p *= 10.0;
  return p;
}

}  // namespace

IoStatus IngestCsv(const std::string& path, const CsvIngestOptions& options,
                   Table* out, CsvIngestStats* stats) {
  Timer timer;
  std::string content;
  IoStatus st = ReadFileToString(path, &content);
  if (!st.ok()) return st;

  // Phase 1: line index. Sequential memchr scan; empty lines are skipped
  // (a trailing newline does not create a phantom row).
  std::vector<LineRange> lines;
  lines.reserve(content.size() / 32 + 1);
  {
    const char* p = content.data();
    const char* file_end = p + content.size();
    while (p < file_end) {
      const char* nl = static_cast<const char*>(
          std::memchr(p, '\n', static_cast<size_t>(file_end - p)));
      const char* line_end = nl != nullptr ? nl : file_end;
      const char* trimmed = line_end;
      if (trimmed > p && trimmed[-1] == '\r') --trimmed;
      if (trimmed > p) lines.push_back({p, trimmed});
      p = line_end + 1;
    }
  }

  // Establish the schema: names + declared types per column.
  std::vector<CsvColumnSpec> schema = options.schema;
  size_t first_row = 0;
  if (options.has_header) {
    if (lines.empty()) {
      return IoStatus::Error(IoCode::kBadFormat, path + ": empty file");
    }
    std::vector<std::string_view> fields(4096);
    const int n = SplitFields(lines[0].begin, lines[0].end,
                              options.delimiter, fields.data(), 4096);
    if (n <= 0) {
      return IoStatus::Error(IoCode::kBadFormat, path + ": bad header");
    }
    if (schema.empty()) {
      schema.resize(static_cast<size_t>(n));
      for (int c = 0; c < n; ++c) {
        schema[static_cast<size_t>(c)].name = std::string(fields[c]);
      }
    } else if (schema.size() != static_cast<size_t>(n)) {
      return IoStatus::Error(
          IoCode::kBadFormat,
          path + ": header has " + std::to_string(n) + " fields, schema " +
              std::to_string(schema.size()));
    }
    first_row = 1;
  } else if (schema.empty()) {
    // Headerless with no schema: synthesize c0..cN from the first line.
    if (lines.empty()) {
      return IoStatus::Error(IoCode::kBadFormat, path + ": empty file");
    }
    std::vector<std::string_view> fields(4096);
    const int n = SplitFields(lines[0].begin, lines[0].end,
                              options.delimiter, fields.data(), 4096);
    if (n <= 0) {
      return IoStatus::Error(IoCode::kBadFormat, path + ": bad first line");
    }
    schema.resize(static_cast<size_t>(n));
    for (int c = 0; c < n; ++c) {
      schema[static_cast<size_t>(c)].name = "c" + std::to_string(c);
    }
  }
  const int cols = static_cast<int>(schema.size());
  if (cols > 256) {
    return IoStatus::Error(IoCode::kBadFormat,
                           path + ": more than 256 columns");
  }
  {
    std::unordered_set<std::string> seen;
    for (const auto& spec : schema) {
      if (spec.name.empty() || !seen.insert(spec.name).second) {
        return IoStatus::Error(IoCode::kBadFormat,
                               path + ": empty or duplicate column name '" +
                                   spec.name + "'");
      }
    }
  }

  const uint64_t rows = lines.size() - first_row;
  const LineRange* data_lines = lines.data() + first_row;
  const int threads =
      options.threads > 0
          ? options.threads
          : std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  ThreadPool pool(threads);
  const int workers = pool.num_threads();

  // Phase 2: one morsel-parallel pass splits every row once, validates the
  // field count, and accumulates per-worker inference state per column.
  std::vector<std::vector<InferAcc>> acc(
      static_cast<size_t>(workers),
      std::vector<InferAcc>(static_cast<size_t>(cols)));
  std::atomic<uint64_t> bad_row{std::numeric_limits<uint64_t>::max()};
  pool.ParallelForDynamic(
      rows, kRowMorsel,
      [&](uint64_t begin, uint64_t end, int worker) {
        std::vector<std::string_view> fields(static_cast<size_t>(cols));
        std::vector<InferAcc>& my = acc[static_cast<size_t>(worker)];
        for (uint64_t i = begin; i < end; ++i) {
          const LineRange& line = data_lines[i];
          if (SplitFields(line.begin, line.end, options.delimiter,
                          fields.data(), cols) != cols) {
            NoteBadRow(&bad_row, i);
            return;
          }
          for (int c = 0; c < cols; ++c) {
            if (schema[static_cast<size_t>(c)].type == CsvType::kString) {
              continue;
            }
            InferAcc& a = my[static_cast<size_t>(c)];
            const std::string_view f = fields[static_cast<size_t>(c)];
            int64_t iv = 0;
            if (a.all_int && ParseInt64(f.data(), f.data() + f.size(), &iv)) {
              a.imin = std::min(a.imin, iv);
              a.imax = std::max(a.imax, iv);
            } else {
              a.all_int = false;
            }
            double dv = 0;
            if (a.all_num &&
                ParseDouble(f.data(), f.data() + f.size(), &dv)) {
              a.dmin = std::min(a.dmin, dv);
              a.dmax = std::max(a.dmax, dv);
            } else {
              a.all_num = false;
            }
          }
        }
      });
  if (bad_row.load() != std::numeric_limits<uint64_t>::max()) {
    return BadRowError(path, first_row + bad_row.load(),
                       "field count != " + std::to_string(cols));
  }
  std::vector<InferAcc> merged(static_cast<size_t>(cols));
  for (const auto& worker_acc : acc) {
    for (int c = 0; c < cols; ++c) {
      merged[static_cast<size_t>(c)].Merge(worker_acc[static_cast<size_t>(c)]);
    }
  }

  // Resolve declared/inferred types.
  std::vector<CsvType> types(static_cast<size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    const InferAcc& a = merged[static_cast<size_t>(c)];
    const CsvType declared = schema[static_cast<size_t>(c)].type;
    const std::string& name = schema[static_cast<size_t>(c)].name;
    switch (declared) {
      case CsvType::kAuto:
        types[static_cast<size_t>(c)] = rows == 0  ? CsvType::kString
                                        : a.all_int ? CsvType::kInt
                                        : a.all_num ? CsvType::kDecimal
                                                    : CsvType::kString;
        break;
      case CsvType::kInt:
        if (rows > 0 && !a.all_int) {
          return IoStatus::Error(IoCode::kBadFormat,
                                 path + ": column '" + name +
                                     "' declared int but not all-integer");
        }
        types[static_cast<size_t>(c)] = CsvType::kInt;
        break;
      case CsvType::kDecimal:
        if (rows > 0 && !a.all_num) {
          return IoStatus::Error(IoCode::kBadFormat,
                                 path + ": column '" + name +
                                     "' declared decimal but not numeric");
        }
        types[static_cast<size_t>(c)] = CsvType::kDecimal;
        break;
      case CsvType::kString:
        types[static_cast<size_t>(c)] = CsvType::kString;
        break;
    }
  }

  // Phases 3+4 per column: dictionary build (strings) and parallel encode.
  const double scale = Pow10(options.decimal_scale);
  Table table(rows);
  for (int c = 0; c < cols; ++c) {
    const std::string& name = schema[static_cast<size_t>(c)].name;
    const InferAcc& a = merged[static_cast<size_t>(c)];
    const CsvType type = types[static_cast<size_t>(c)];

    // Per-row field extraction for this column (re-splits the line; cheap
    // relative to parsing, and avoids materializing rows × cols views).
    const auto field_of = [&](uint64_t i) {
      std::string_view fields[256];
      // cols was validated in phase 2; this cannot fail.
      SplitFields(data_lines[i].begin, data_lines[i].end, options.delimiter,
                  fields, cols);
      return fields[c];
    };

    if (type == CsvType::kInt || type == CsvType::kDecimal) {
      int64_t base = 0;
      uint64_t range = 0;
      if (rows > 0) {
        if (type == CsvType::kInt) {
          base = a.imin;
          range = static_cast<uint64_t>(a.imax) - static_cast<uint64_t>(a.imin);
        } else {
          const double smin = a.dmin * scale;
          const double smax = a.dmax * scale;
          if (!(smin >= -9.2e18 && smax <= 9.2e18)) {
            return IoStatus::Error(
                IoCode::kBadFormat,
                path + ": column '" + name + "' overflows at scale " +
                    std::to_string(options.decimal_scale));
          }
          base = std::llround(smin);
          range = static_cast<uint64_t>(std::llround(smax)) -
                  static_cast<uint64_t>(base);
        }
      }
      const int width = range > 0 ? BitsForValue(range) : 1;
      EncodedColumn codes;
      codes.ResetTyped(width, PhysicalTypeForWidth(width), rows,
                       /*zero_fill=*/false);
      pool.ParallelForDynamic(
          rows, kRowMorsel, [&](uint64_t begin, uint64_t end, int) {
            for (uint64_t i = begin; i < end; ++i) {
              const std::string_view f = field_of(i);
              int64_t value = 0;
              if (type == CsvType::kInt) {
                ParseInt64(f.data(), f.data() + f.size(), &value);
              } else {
                double d = 0;
                ParseDouble(f.data(), f.data() + f.size(), &d);
                value = std::llround(d * scale);
              }
              codes.Set(i, static_cast<uint64_t>(value) -
                               static_cast<uint64_t>(base));
            }
          });
      table.AddColumnParts(name, std::move(codes), nullptr, base);
    } else {
      // Two-pass order-preserving dictionary: collect distinct values in
      // per-worker sets, merge + sort, then encode by dictionary rank.
      std::vector<std::unordered_set<std::string>> sets(
          static_cast<size_t>(workers));
      pool.ParallelForDynamic(
          rows, kRowMorsel, [&](uint64_t begin, uint64_t end, int worker) {
            auto& set = sets[static_cast<size_t>(worker)];
            for (uint64_t i = begin; i < end; ++i) {
              const std::string_view f = field_of(i);
              set.emplace(f.data(), f.size());
            }
          });
      std::vector<std::string> values;
      for (auto& set : sets) {
        values.insert(values.end(), std::make_move_iterator(set.begin()),
                      std::make_move_iterator(set.end()));
      }
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      auto dict = std::make_unique<StringDictionary>(
          StringDictionary::FromSorted(std::move(values)));
      const int width = BitsForCount(dict->size());
      EncodedColumn codes;
      codes.ResetTyped(width, PhysicalTypeForWidth(width), rows,
                       /*zero_fill=*/false);
      const std::vector<std::string>& sorted = dict->values();
      pool.ParallelForDynamic(
          rows, kRowMorsel, [&](uint64_t begin, uint64_t end, int) {
            for (uint64_t i = begin; i < end; ++i) {
              const std::string_view f = field_of(i);
              const auto it = std::lower_bound(
                  sorted.begin(), sorted.end(), f,
                  [](const std::string& lhs, std::string_view rhs) {
                    return std::string_view(lhs) < rhs;
                  });
              codes.Set(i, static_cast<Code>(it - sorted.begin()));
            }
          });
      table.AddColumnParts(name, std::move(codes), std::move(dict), 0);
    }
  }

  *out = std::move(table);
  if (stats != nullptr) {
    stats->rows = rows;
    stats->columns = cols;
    stats->seconds = timer.Seconds();
  }
  return IoStatus::Ok();
}

}  // namespace mcsort

// Versioned on-disk columnar snapshot format (DESIGN.md §10).
//
// A snapshot is a directory per table:
//
//   <dir>/MANIFEST.mcs   binary manifest: schema + section directory
//   <dir>/<i>.col        one segment file per column (i = schema position)
//
// The manifest is a fixed little-endian layout (no JSON, no parser deps)
// written with the net/wire codec and protected by a trailing CRC32C. Each
// column file starts with a small header and then carries page-aligned
// sections — encoded codes, order-preserving dictionary, cached statistics,
// and the ByteSlice / BitWeaving auxiliary layouts — each individually
// CRC32C-checked via {offset, length, crc} records in the manifest.
//
// Page alignment of the codes section (and 64-byte alignment of every
// slice/plane inside the auxiliary sections) is what makes the zero-copy
// load path possible: LoadSnapshot(kMmap) maps each segment file PROT_READ
// and hands the engine Column views straight into the mapping, so a
// multi-GB table is query-ready in milliseconds and pages in lazily.
#ifndef MCSORT_IO_SNAPSHOT_H_
#define MCSORT_IO_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mcsort/io/io_status.h"

namespace mcsort {

class Table;

// Format constants, exposed for tests and tooling.
inline constexpr uint32_t kSnapshotManifestMagic = 0x5353434D;  // "MCSS"
inline constexpr uint32_t kSnapshotSegmentMagic = 0x4353434D;   // "MCSC"
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr size_t kSnapshotPageBytes = 4096;
inline constexpr char kSnapshotManifestFile[] = "MANIFEST.mcs";

enum class SnapshotSection : uint8_t {
  kCodes = 1,       // raw fixed-width code array (u16/u32/u64, page-aligned)
  kDictionary = 2,  // sorted string dictionary, u32-length-prefixed entries
  kStats = 3,       // ColumnStatsImage
  kByteSlice = 4,   // B slices, each 64-byte aligned within the section
  kBitWeaving = 5,  // w bit planes, each 64-byte aligned within the section
};

// Free-function form of Table::SaveSnapshot / Table::LoadSnapshot (the
// methods forward here; both are implemented in snapshot.cc).
IoStatus SaveTableSnapshot(const Table& table, const std::string& dir);
IoStatus LoadTableSnapshot(const std::string& dir,
                           const SnapshotLoadOptions& options, Table* out);

// Names of the snapshot subdirectories of `root` (directories containing a
// MANIFEST.mcs), sorted — the catalog's view of a data directory. Missing
// or unreadable `root` yields an empty list.
std::vector<std::string> ListSnapshotTables(const std::string& root);

// True if `dir` looks like a snapshot directory (has a manifest file).
bool SnapshotExists(const std::string& dir);

}  // namespace mcsort

#endif  // MCSORT_IO_SNAPSHOT_H_

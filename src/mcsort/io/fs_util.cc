#include "mcsort/io/fs_util.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace mcsort {

namespace {

IoStatus ErrnoStatus(const std::string& what, const std::string& path) {
  return IoStatus::Error(IoCode::kIoError,
                         what + " " + path + ": " + std::strerror(errno));
}

struct File {
  std::FILE* f = nullptr;
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

bool MakeDirs(const std::string& dir) {
  std::string path;
  for (size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') continue;
    path = dir.substr(0, i);
    if (path.empty() || path == "/") continue;
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  return true;
}

IoStatus ReadFileToString(const std::string& path, std::string* out) {
  File in;
  in.f = std::fopen(path.c_str(), "rb");
  if (in.f == nullptr) return ErrnoStatus("open", path);
  if (std::fseek(in.f, 0, SEEK_END) != 0) return ErrnoStatus("seek", path);
  const long size = std::ftell(in.f);
  if (size < 0) return ErrnoStatus("tell", path);
  if (std::fseek(in.f, 0, SEEK_SET) != 0) return ErrnoStatus("seek", path);
  out->resize(static_cast<size_t>(size));
  if (size > 0 &&
      std::fread(out->data(), 1, out->size(), in.f) != out->size()) {
    return ErrnoStatus("read", path);
  }
  return IoStatus::Ok();
}

IoStatus WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    File out;
    out.f = std::fopen(tmp.c_str(), "wb");
    if (out.f == nullptr) return ErrnoStatus("open", tmp);
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), out.f) != bytes.size()) {
      return ErrnoStatus("write", tmp);
    }
    if (std::fflush(out.f) != 0) return ErrnoStatus("flush", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoStatus("rename", tmp);
  }
  return IoStatus::Ok();
}

bool RemoveFile(const std::string& path) {
  return ::unlink(path.c_str()) == 0 || errno == ENOENT;
}

size_t CleanupTempFiles(const std::string& dir, const std::string& suffix) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  size_t removed = 0;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string path = dir + "/" + name;
    struct stat st;
    if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    if (::unlink(path.c_str()) == 0) ++removed;
  }
  ::closedir(d);
  return removed;
}

}  // namespace mcsort

// Morsel-parallel CSV/TSV ingestion into an encoded Table.
//
// The pipeline mirrors how the paper's prototype prepares data (Sec. 2,
// "Column Encoding"): every native column becomes a fixed-width array of
// order-preserving codes. Ingest runs in phases, each morsel-parallel over
// rows via ThreadPool::ParallelForDynamic:
//
//   1. line index        sequential newline scan (memchr-speed)
//   2. type inference    per-column: all-int64 → integer, else all-numeric
//                        → fixed-point decimal, else string; explicit
//                        schemas skip this phase
//   3. dictionary build  strings only, two passes: parallel distinct
//                        collection (per-worker hash sets), merge + sort
//                        into the order-preserving dictionary
//   4. encoding          parallel re-parse + encode: integers and decimals
//                        are domain-encoded (code = value - min), strings
//                        take their dictionary rank
//
// Limitations (documented, not silently wrong): no quoted fields — a
// delimiter inside a field is a field boundary; decimal columns are scaled
// to integers at `decimal_scale` fractional digits and keep only the
// scaled domain base.
#ifndef MCSORT_IO_CSV_INGEST_H_
#define MCSORT_IO_CSV_INGEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mcsort/io/io_status.h"

namespace mcsort {

class Table;

enum class CsvType : uint8_t {
  kAuto = 0,  // infer: int64 → kInt, numeric → kDecimal, else kString
  kInt,
  kDecimal,
  kString,
};

struct CsvColumnSpec {
  std::string name;
  CsvType type = CsvType::kAuto;
};

struct CsvIngestOptions {
  char delimiter = ',';  // '\t' for TSV
  bool has_header = true;
  // Empty → column names come from the header (or c0..cN without one) and
  // every type is inferred. Non-empty → must match the file's field count.
  std::vector<CsvColumnSpec> schema;
  int threads = 0;        // 0 → hardware concurrency
  int decimal_scale = 2;  // fractional digits kept for decimal columns
};

struct CsvIngestStats {
  uint64_t rows = 0;
  int columns = 0;
  double seconds = 0;  // wall time of the whole ingest
};

// Parses `path` into `*out`. Malformed input (ragged rows, unparsable
// fields under an explicit schema) is a typed kBadFormat error naming the
// first offending line.
IoStatus IngestCsv(const std::string& path, const CsvIngestOptions& options,
                   Table* out, CsvIngestStats* stats = nullptr);

}  // namespace mcsort

#endif  // MCSORT_IO_CSV_INGEST_H_

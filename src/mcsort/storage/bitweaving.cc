#include "mcsort/storage/bitweaving.h"

#include "mcsort/common/bits.h"

namespace mcsort {

BitWeavingColumn BitWeavingColumn::Build(const EncodedColumn& column) {
  BitWeavingColumn bw;
  bw.width_ = column.width();
  bw.size_ = column.size();
  bw.words_per_plane_ = RoundUp(column.size(), 64) / 64;
  bw.planes_.resize(static_cast<size_t>(bw.width_));
  for (auto& plane : bw.planes_) {
    plane.Reset(bw.words_per_plane_);
    plane.Fill(0);
  }
  for (size_t i = 0; i < column.size(); ++i) {
    const Code code = column.Get(i);
    const size_t word = i >> 6;
    const uint64_t bit = uint64_t{1} << (i & 63);
    for (int j = 0; j < bw.width_; ++j) {
      if ((code >> (bw.width_ - 1 - j)) & 1) {
        bw.planes_[static_cast<size_t>(j)][word] |= bit;
      }
    }
  }
  return bw;
}

BitWeavingColumn BitWeavingColumn::FromParts(
    int width, size_t size, std::vector<AlignedBuffer<uint64_t>> planes) {
  MCSORT_CHECK(width >= 1 && width <= 64);
  MCSORT_CHECK(planes.size() == static_cast<size_t>(width));
  const size_t words = RoundUp(size, 64) / 64;
  for (const auto& plane : planes) {
    MCSORT_CHECK(plane.size() >= words);
  }
  BitWeavingColumn bw;
  bw.width_ = width;
  bw.size_ = size;
  bw.words_per_plane_ = words;
  bw.planes_ = std::move(planes);
  return bw;
}

}  // namespace mcsort

#include "mcsort/storage/bitweaving.h"

#include "mcsort/common/bits.h"

namespace mcsort {

BitWeavingColumn BitWeavingColumn::Build(const EncodedColumn& column) {
  BitWeavingColumn bw;
  bw.width_ = column.width();
  bw.size_ = column.size();
  bw.words_per_plane_ = RoundUp(column.size(), 64) / 64;
  bw.planes_.resize(static_cast<size_t>(bw.width_));
  for (auto& plane : bw.planes_) {
    plane.Reset(bw.words_per_plane_);
    plane.Fill(0);
  }
  for (size_t i = 0; i < column.size(); ++i) {
    const Code code = column.Get(i);
    const size_t word = i >> 6;
    const uint64_t bit = uint64_t{1} << (i & 63);
    for (int j = 0; j < bw.width_; ++j) {
      if ((code >> (bw.width_ - 1 - j)) & 1) {
        bw.planes_[static_cast<size_t>(j)][word] |= bit;
      }
    }
  }
  return bw;
}

}  // namespace mcsort

// Core storage types shared across the library.
#ifndef MCSORT_STORAGE_TYPES_H_
#define MCSORT_STORAGE_TYPES_H_

#include <cstdint>

namespace mcsort {

// Object identifier (row position). The paper's experiments use up to
// N = 2^24 rows; 32 bits leaves ample headroom.
using Oid = uint32_t;

// An encoded column value. Codes are unsigned, order-preserving, and at
// most 64 bits wide (the widest AVX2 bank).
using Code = uint64_t;

// Physical representation classes for encoded columns, chosen from the code
// width via SizeOfWidth(): <=16 bits -> kU16, <=32 -> kU32, else kU64.
// (Widths <= 8 also use kU16: there is no 8-bit SIMD-sort bank.)
enum class PhysicalType { kU16, kU32, kU64 };

constexpr PhysicalType PhysicalTypeForWidth(int width) {
  if (width <= 16) return PhysicalType::kU16;
  if (width <= 32) return PhysicalType::kU32;
  return PhysicalType::kU64;
}

constexpr int BytesOfPhysicalType(PhysicalType t) {
  switch (t) {
    case PhysicalType::kU16: return 2;
    case PhysicalType::kU32: return 4;
    case PhysicalType::kU64: return 8;
  }
  return 8;
}

// Sort direction for one attribute of an ORDER BY clause.
enum class SortOrder { kAscending, kDescending };

}  // namespace mcsort

#endif  // MCSORT_STORAGE_TYPES_H_

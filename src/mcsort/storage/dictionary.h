// Order-preserving dictionary encoding (Sec. 2, "Column Encoding").
//
// All native types — strings, dates, decimals — are encoded as fixed-width
// unsigned codes whose order matches the native order, so sorting codes
// sorts the native values. Strings use a sorted dictionary of the column's
// distinct values [7]; numerics use dense-rank or domain (value - min)
// encoding; decimals with fixed precision are scaled to integers first.
#ifndef MCSORT_STORAGE_DICTIONARY_H_
#define MCSORT_STORAGE_DICTIONARY_H_

#include <string>
#include <vector>

#include "mcsort/storage/column.h"
#include "mcsort/storage/types.h"

namespace mcsort {

// Sorted dictionary mapping strings <-> dense codes (code = sorted rank).
class StringDictionary {
 public:
  // Builds the dictionary from the distinct values of `values`.
  static StringDictionary Build(const std::vector<std::string>& values);

  // Adopts an already-sorted, already-deduplicated value list — the
  // snapshot load path, where the on-disk dictionary is stored in code
  // order. CHECK-fails if `sorted` is not strictly ascending.
  static StringDictionary FromSorted(std::vector<std::string> sorted);

  // Code of `value`; the value must be present.
  Code Encode(const std::string& value) const;
  // Native value of `code`.
  const std::string& Decode(Code code) const;

  size_t size() const { return sorted_values_.size(); }
  // Bits per code: BitsForCount(size()).
  int code_width() const;
  // All values in code order (code i decodes to values()[i]).
  const std::vector<std::string>& values() const { return sorted_values_; }

 private:
  std::vector<std::string> sorted_values_;
};

// Encodes a string column: builds the dictionary and the code column.
struct EncodedStringColumn {
  StringDictionary dictionary;
  EncodedColumn codes;
};
EncodedStringColumn EncodeStrings(const std::vector<std::string>& values);

// Dense-rank encoding of an integer column: code = rank of the value among
// the column's distinct values (minimal width; the scheme of [30] that
// gives the paper its 12-bit order_date / 17-bit retail_price examples).
struct DenseEncoding {
  EncodedColumn codes;
  std::vector<int64_t> dictionary;  // code -> native value (sorted)
};
DenseEncoding EncodeDense(const std::vector<int64_t>& values);

// Domain encoding of an integer column: code = value - min(values); width
// covers the value range. Cheaper to decode, wider than dense-rank.
struct DomainEncoding {
  EncodedColumn codes;
  int64_t base = 0;  // native = base + code
};
DomainEncoding EncodeDomain(const std::vector<int64_t>& values);

// Scales doubles with `scale` fractional decimal digits to integers and
// dense-rank encodes them (e.g. prices with 2-digit cents, scale = 2).
DenseEncoding EncodeDecimal(const std::vector<double>& values, int scale);

}  // namespace mcsort

#endif  // MCSORT_STORAGE_DICTIONARY_H_

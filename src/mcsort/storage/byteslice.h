// ByteSlice storage layout [14] — the paper's prototype stores base columns
// this way (Sec. 6: "modify the storage manager to support ByteSlice").
//
// A w-bit code is left-aligned into B = ceil(w/8) bytes and byte j (most
// significant first) of every code is stored contiguously in "slice" j.
// Predicate evaluation compares slice-by-slice with SIMD and stops early
// once every lane's outcome is decided (byte-level early stopping); lookups
// reassemble codes by stitching the B bytes back together.
#ifndef MCSORT_STORAGE_BYTESLICE_H_
#define MCSORT_STORAGE_BYTESLICE_H_

#include <cstdint>
#include <vector>

#include "mcsort/common/aligned_buffer.h"
#include "mcsort/common/logging.h"
#include "mcsort/storage/column.h"
#include "mcsort/storage/types.h"

namespace mcsort {

class ByteSliceColumn {
 public:
  ByteSliceColumn() = default;

  // Builds the sliced layout from an encoded column.
  static ByteSliceColumn Build(const EncodedColumn& column);

  // Adopts pre-built slices (the snapshot load path; buffers may be mmap
  // views). Each slice must hold at least slice_bytes(size) bytes.
  static ByteSliceColumn FromParts(int width, size_t size,
                                   std::vector<AlignedBuffer<uint8_t>> slices);

  // Bytes per slice for `n` rows (rows padded to a 32-byte SIMD block) —
  // fixes the serialized slice length in the snapshot format.
  static size_t slice_bytes(size_t n) { return (n + 31) / 32 * 32; }

  int width() const { return width_; }
  size_t size() const { return size_; }
  int num_slices() const { return static_cast<int>(slices_.size()); }
  // Bits of left-alignment padding: 8 * num_slices - width.
  int padding_bits() const { return 8 * num_slices() - width_; }

  // Slice j (j = 0 is the most significant byte). Slices are padded to a
  // multiple of 32 bytes so SIMD scans never read past the end.
  const uint8_t* slice(int j) const {
    MCSORT_DCHECK(j >= 0 && j < num_slices());
    return slices_[static_cast<size_t>(j)].data();
  }

  // Left-aligns a code the way stored codes are (for predicate literals).
  Code PadCode(Code code) const { return code << padding_bits(); }

  // Lookup: stitches the bytes of row i back into the original code.
  Code StitchCode(size_t i) const {
    MCSORT_DCHECK(i < size_);
    Code padded = 0;
    for (int j = 0; j < num_slices(); ++j) {
      padded = (padded << 8) | slices_[static_cast<size_t>(j)][i];
    }
    return padded >> padding_bits();
  }

 private:
  int width_ = 0;
  size_t size_ = 0;
  std::vector<AlignedBuffer<uint8_t>> slices_;
};

}  // namespace mcsort

#endif  // MCSORT_STORAGE_BYTESLICE_H_

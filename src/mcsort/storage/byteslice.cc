#include "mcsort/storage/byteslice.h"

#include "mcsort/common/bits.h"

namespace mcsort {

ByteSliceColumn ByteSliceColumn::Build(const EncodedColumn& column) {
  ByteSliceColumn bs;
  bs.width_ = column.width();
  bs.size_ = column.size();
  const int num_slices = (column.width() + 7) / 8;
  const int padding = 8 * num_slices - column.width();
  // Pad the slice length to a SIMD block so scans can run full blocks.
  const size_t padded_n = RoundUp(column.size(), 32);
  bs.slices_.resize(static_cast<size_t>(num_slices));
  for (auto& slice : bs.slices_) {
    slice.Reset(padded_n);
    slice.Fill(0);
  }
  for (size_t i = 0; i < column.size(); ++i) {
    const Code padded = column.Get(i) << padding;
    for (int j = 0; j < num_slices; ++j) {
      bs.slices_[static_cast<size_t>(j)][i] =
          static_cast<uint8_t>(padded >> (8 * (num_slices - 1 - j)));
    }
  }
  return bs;
}

ByteSliceColumn ByteSliceColumn::FromParts(
    int width, size_t size, std::vector<AlignedBuffer<uint8_t>> slices) {
  MCSORT_CHECK(width >= 1 && width <= 64);
  MCSORT_CHECK(slices.size() == static_cast<size_t>((width + 7) / 8));
  for (const auto& slice : slices) {
    MCSORT_CHECK(slice.size() >= slice_bytes(size));
  }
  ByteSliceColumn bs;
  bs.width_ = width;
  bs.size_ = size;
  bs.slices_ = std::move(slices);
  return bs;
}

}  // namespace mcsort

// BitWeaving/V — the vertical bit-parallel (VBP) storage layout of
// Li & Patel [30], the fast-scan predecessor the paper's ByteSlice [14]
// improves upon.
//
// A w-bit column is stored as w bit planes: plane j holds bit j (MSB
// first) of 64 codes per machine word, so one word-level logical
// instruction processes 64 rows of one bit. Predicate evaluation walks
// planes MSB -> LSB maintaining "still equal" / "already less" masks with
// pure bitwise logic and stops early once no row is still tied — the
// bit-granular analogue of ByteSlice's byte-level early stopping.
//
// The trade-off the paper exploits: VBP scans touch at most w bits/row
// (fine-grained early stopping) but *lookups* must re-stitch one bit from
// each of w planes (w random accesses), whereas ByteSlice stitches whole
// bytes. `bench/ablation_scan_layouts` measures exactly this.
#ifndef MCSORT_STORAGE_BITWEAVING_H_
#define MCSORT_STORAGE_BITWEAVING_H_

#include <cstdint>
#include <vector>

#include "mcsort/common/aligned_buffer.h"
#include "mcsort/common/logging.h"
#include "mcsort/storage/column.h"
#include "mcsort/storage/types.h"

namespace mcsort {

class BitWeavingColumn {
 public:
  BitWeavingColumn() = default;

  static BitWeavingColumn Build(const EncodedColumn& column);

  // Adopts pre-built planes (the snapshot load path; buffers may be mmap
  // views). Each plane must hold at least RoundUp(size, 64) / 64 words.
  static BitWeavingColumn FromParts(int width, size_t size,
                                    std::vector<AlignedBuffer<uint64_t>> planes);

  int width() const { return width_; }
  size_t size() const { return size_; }
  size_t words_per_plane() const { return words_per_plane_; }

  // Plane j (j = 0 is the MOST significant bit). Word g covers rows
  // [64 g, 64 g + 64); row r is bit (r mod 64) of word r / 64.
  const uint64_t* plane(int j) const {
    MCSORT_DCHECK(j >= 0 && j < width_);
    return planes_[static_cast<size_t>(j)].data();
  }

  // Lookup: stitches the w bits of row `i` back into a code (w random
  // accesses — the layout's weakness relative to ByteSlice).
  Code StitchCode(size_t i) const {
    MCSORT_DCHECK(i < size_);
    const size_t word = i >> 6;
    const uint64_t bit = uint64_t{1} << (i & 63);
    Code code = 0;
    for (int j = 0; j < width_; ++j) {
      code = (code << 1) |
             ((planes_[static_cast<size_t>(j)][word] & bit) != 0 ? 1u : 0u);
    }
    return code;
  }

 private:
  int width_ = 0;
  size_t size_ = 0;
  size_t words_per_plane_ = 0;
  std::vector<AlignedBuffer<uint64_t>> planes_;
};

}  // namespace mcsort

#endif  // MCSORT_STORAGE_BITWEAVING_H_

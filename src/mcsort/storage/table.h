// A table of named encoded columns — the minimal column-store catalog the
// query engine operates on. In the WideTable execution model ([31], used by
// the paper's prototype) every query runs against one denormalized table,
// so there is no join machinery: scans filter, lookups fetch, sorts group.
#ifndef MCSORT_STORAGE_TABLE_H_
#define MCSORT_STORAGE_TABLE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mcsort/io/io_status.h"
#include "mcsort/storage/bitweaving.h"
#include "mcsort/storage/byteslice.h"
#include "mcsort/storage/column.h"
#include "mcsort/storage/dictionary.h"
#include "mcsort/storage/statistics.h"

namespace mcsort {

class Table {
 public:
  Table() = default;
  explicit Table(size_t row_count) : row_count_(row_count) {}

  size_t row_count() const { return row_count_; }

  // Adds a column; its size must match the table's row count (the first
  // added column fixes the row count of an empty table). Returns *this for
  // chaining during dataset construction.
  Table& AddColumn(const std::string& name, EncodedColumn column);
  // Adds a dictionary-encoded string column, keeping the dictionary for
  // decoding results.
  Table& AddStringColumn(const std::string& name, EncodedStringColumn column);
  // Adds a domain-encoded numeric column (native = base + code); the base
  // is kept so aggregates can be computed over native values.
  Table& AddDomainColumn(const std::string& name, DomainEncoding column);

  bool HasColumn(const std::string& name) const;
  const EncodedColumn& column(const std::string& name) const;
  // Names in insertion order.
  const std::vector<std::string>& column_names() const { return names_; }

  // Dictionary of a string column (CHECK-fails for non-string columns).
  const StringDictionary& dictionary(const std::string& name) const;
  bool HasDictionary(const std::string& name) const;

  // Base of a domain-encoded column (0 for all other columns), such that
  // native value = base + code.
  int64_t domain_base(const std::string& name) const;

  // Statistics / ByteSlice / BitWeaving layouts, built lazily on first use
  // and cached. Safe to call from concurrent query sessions: the first
  // builder wins under a table-wide mutex and everyone reads the immutable
  // result.
  const ColumnStats& stats(const std::string& name) const;
  const ByteSliceColumn& byteslice(const std::string& name) const;
  const BitWeavingColumn& bitweaving(const std::string& name) const;

  // --- Snapshot persistence (implemented in io/snapshot.cc) -------------
  // Writes the table as a versioned on-disk snapshot directory; loads one
  // back, either copying into fresh buffers (kBuffered) or mapping the
  // code arrays zero-copy (kMmap; the mapping stays pinned to the table).
  IoStatus SaveSnapshot(const std::string& dir) const;
  static IoStatus LoadSnapshot(const std::string& dir,
                               const SnapshotLoadOptions& options, Table* out);

  // Loader plumbing: adds a column together with its dictionary / domain
  // base in one call, and installs pre-built caches so a loaded table never
  // re-derives what the snapshot already carries.
  Table& AddColumnParts(const std::string& name, EncodedColumn column,
                        std::unique_ptr<StringDictionary> dict,
                        int64_t domain_base);
  void SetStats(const std::string& name, ColumnStats stats);
  void SetByteSlice(const std::string& name, ByteSliceColumn byteslice);
  void SetBitWeaving(const std::string& name, BitWeavingColumn bitweaving);

  // Keeps `resource` (e.g. the MmapFile backing zero-copy column views)
  // alive for the table's lifetime.
  void PinResource(std::shared_ptr<void> resource);

  // Approximate resident footprint — codes, dictionaries, and cached
  // auxiliary layouts — used by the catalog's eviction budget. Counts
  // mmap-viewed codes too (they occupy page cache once touched).
  size_t MemoryBytes() const;

 private:
  struct Entry {
    EncodedColumn column;
    std::unique_ptr<StringDictionary> dict;
    int64_t domain_base = 0;
    mutable std::unique_ptr<ColumnStats> stats;
    mutable std::unique_ptr<ByteSliceColumn> byteslice;
    mutable std::unique_ptr<BitWeavingColumn> bitweaving;
  };

  const Entry& Find(const std::string& name) const;

  size_t row_count_ = 0;
  std::vector<std::string> names_;
  std::unordered_map<std::string, Entry> columns_;
  std::vector<std::shared_ptr<void>> pinned_;
  // Guards the lazy stats/byteslice construction only; column data is
  // immutable after loading. Behind a pointer so Table stays movable.
  mutable std::unique_ptr<std::mutex> lazy_mu_ = std::make_unique<std::mutex>();
};

}  // namespace mcsort

#endif  // MCSORT_STORAGE_TABLE_H_

#include "mcsort/storage/table.h"

#include <algorithm>
#include <utility>

#include "mcsort/common/logging.h"

namespace mcsort {

Table& Table::AddColumn(const std::string& name, EncodedColumn column) {
  if (columns_.empty() && row_count_ == 0) {
    row_count_ = column.size();
  }
  MCSORT_CHECK(column.size() == row_count_);
  MCSORT_CHECK(columns_.find(name) == columns_.end());
  Entry entry;
  entry.column = std::move(column);
  columns_.emplace(name, std::move(entry));
  names_.push_back(name);
  return *this;
}

Table& Table::AddStringColumn(const std::string& name,
                              EncodedStringColumn column) {
  AddColumn(name, std::move(column.codes));
  columns_.at(name).dict =
      std::make_unique<StringDictionary>(std::move(column.dictionary));
  return *this;
}

Table& Table::AddDomainColumn(const std::string& name,
                              DomainEncoding column) {
  AddColumn(name, std::move(column.codes));
  columns_.at(name).domain_base = column.base;
  return *this;
}

int64_t Table::domain_base(const std::string& name) const {
  return Find(name).domain_base;
}

bool Table::HasColumn(const std::string& name) const {
  return columns_.find(name) != columns_.end();
}

const Table::Entry& Table::Find(const std::string& name) const {
  auto it = columns_.find(name);
  MCSORT_CHECK(it != columns_.end());
  return it->second;
}

const EncodedColumn& Table::column(const std::string& name) const {
  return Find(name).column;
}

bool Table::HasDictionary(const std::string& name) const {
  return Find(name).dict != nullptr;
}

const StringDictionary& Table::dictionary(const std::string& name) const {
  const Entry& entry = Find(name);
  MCSORT_CHECK(entry.dict != nullptr);
  return *entry.dict;
}

const ColumnStats& Table::stats(const std::string& name) const {
  const Entry& entry = Find(name);
  std::lock_guard<std::mutex> lock(*lazy_mu_);
  if (entry.stats == nullptr) {
    entry.stats = std::make_unique<ColumnStats>(ColumnStats::Build(entry.column));
  }
  return *entry.stats;
}

const ByteSliceColumn& Table::byteslice(const std::string& name) const {
  const Entry& entry = Find(name);
  std::lock_guard<std::mutex> lock(*lazy_mu_);
  if (entry.byteslice == nullptr) {
    entry.byteslice =
        std::make_unique<ByteSliceColumn>(ByteSliceColumn::Build(entry.column));
  }
  return *entry.byteslice;
}

const BitWeavingColumn& Table::bitweaving(const std::string& name) const {
  const Entry& entry = Find(name);
  std::lock_guard<std::mutex> lock(*lazy_mu_);
  if (entry.bitweaving == nullptr) {
    entry.bitweaving = std::make_unique<BitWeavingColumn>(
        BitWeavingColumn::Build(entry.column));
  }
  return *entry.bitweaving;
}

Table& Table::AddColumnParts(const std::string& name, EncodedColumn column,
                             std::unique_ptr<StringDictionary> dict,
                             int64_t domain_base) {
  AddColumn(name, std::move(column));
  Entry& entry = columns_.at(name);
  entry.dict = std::move(dict);
  entry.domain_base = domain_base;
  return *this;
}

void Table::SetStats(const std::string& name, ColumnStats stats) {
  std::lock_guard<std::mutex> lock(*lazy_mu_);
  Find(name).stats = std::make_unique<ColumnStats>(std::move(stats));
}

void Table::SetByteSlice(const std::string& name, ByteSliceColumn byteslice) {
  std::lock_guard<std::mutex> lock(*lazy_mu_);
  Find(name).byteslice =
      std::make_unique<ByteSliceColumn>(std::move(byteslice));
}

void Table::SetBitWeaving(const std::string& name,
                          BitWeavingColumn bitweaving) {
  std::lock_guard<std::mutex> lock(*lazy_mu_);
  Find(name).bitweaving =
      std::make_unique<BitWeavingColumn>(std::move(bitweaving));
}

void Table::PinResource(std::shared_ptr<void> resource) {
  pinned_.push_back(std::move(resource));
}

size_t Table::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(*lazy_mu_);
  size_t total = 0;
  for (const auto& [name, entry] : columns_) {
    total += entry.column.byte_size();
    if (entry.dict != nullptr) {
      for (const auto& value : entry.dict->values()) {
        total += value.size() + sizeof(std::string);
      }
    }
    if (entry.stats != nullptr) {
      // Two histogram vectors of 2^min(12, width) buckets (statistics.cc).
      const size_t buckets = size_t{1} << std::min(12, entry.stats->width());
      total += 2 * buckets * sizeof(uint64_t);
    }
    if (entry.byteslice != nullptr) {
      total += static_cast<size_t>(entry.byteslice->num_slices()) *
               ByteSliceColumn::slice_bytes(entry.byteslice->size());
    }
    if (entry.bitweaving != nullptr) {
      total += static_cast<size_t>(entry.bitweaving->width()) *
               entry.bitweaving->words_per_plane() * sizeof(uint64_t);
    }
  }
  return total;
}

}  // namespace mcsort

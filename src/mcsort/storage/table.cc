#include "mcsort/storage/table.h"

#include <utility>

#include "mcsort/common/logging.h"

namespace mcsort {

Table& Table::AddColumn(const std::string& name, EncodedColumn column) {
  if (columns_.empty() && row_count_ == 0) {
    row_count_ = column.size();
  }
  MCSORT_CHECK(column.size() == row_count_);
  MCSORT_CHECK(columns_.find(name) == columns_.end());
  Entry entry;
  entry.column = std::move(column);
  columns_.emplace(name, std::move(entry));
  names_.push_back(name);
  return *this;
}

Table& Table::AddStringColumn(const std::string& name,
                              EncodedStringColumn column) {
  AddColumn(name, std::move(column.codes));
  columns_.at(name).dict =
      std::make_unique<StringDictionary>(std::move(column.dictionary));
  return *this;
}

Table& Table::AddDomainColumn(const std::string& name,
                              DomainEncoding column) {
  AddColumn(name, std::move(column.codes));
  columns_.at(name).domain_base = column.base;
  return *this;
}

int64_t Table::domain_base(const std::string& name) const {
  return Find(name).domain_base;
}

bool Table::HasColumn(const std::string& name) const {
  return columns_.find(name) != columns_.end();
}

const Table::Entry& Table::Find(const std::string& name) const {
  auto it = columns_.find(name);
  MCSORT_CHECK(it != columns_.end());
  return it->second;
}

const EncodedColumn& Table::column(const std::string& name) const {
  return Find(name).column;
}

bool Table::HasDictionary(const std::string& name) const {
  return Find(name).dict != nullptr;
}

const StringDictionary& Table::dictionary(const std::string& name) const {
  const Entry& entry = Find(name);
  MCSORT_CHECK(entry.dict != nullptr);
  return *entry.dict;
}

const ColumnStats& Table::stats(const std::string& name) const {
  const Entry& entry = Find(name);
  std::lock_guard<std::mutex> lock(*lazy_mu_);
  if (entry.stats == nullptr) {
    entry.stats = std::make_unique<ColumnStats>(ColumnStats::Build(entry.column));
  }
  return *entry.stats;
}

const ByteSliceColumn& Table::byteslice(const std::string& name) const {
  const Entry& entry = Find(name);
  std::lock_guard<std::mutex> lock(*lazy_mu_);
  if (entry.byteslice == nullptr) {
    entry.byteslice =
        std::make_unique<ByteSliceColumn>(ByteSliceColumn::Build(entry.column));
  }
  return *entry.byteslice;
}

}  // namespace mcsort

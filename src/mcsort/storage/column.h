// Fixed-width encoded column — the unit of storage the whole system
// operates on (the paper's "w-bit column" of order-preserving codes).
//
// Codes are stored in the smallest power-of-two-sized integer type that
// holds the width (u16/u32/u64), so sort kernels and massaging operate on
// typed arrays with no per-element unpacking.
#ifndef MCSORT_STORAGE_COLUMN_H_
#define MCSORT_STORAGE_COLUMN_H_

#include <cstddef>
#include <cstdint>

#include "mcsort/common/aligned_buffer.h"
#include "mcsort/common/bits.h"
#include "mcsort/common/logging.h"
#include "mcsort/storage/types.h"

namespace mcsort {

class EncodedColumn {
 public:
  EncodedColumn() = default;
  // Creates a column of `n` w-bit codes, zero-initialized.
  EncodedColumn(int width, size_t n) { Reset(width, n); }

  EncodedColumn(EncodedColumn&&) = default;
  EncodedColumn& operator=(EncodedColumn&&) = default;

  void Reset(int width, size_t n) {
    ResetTyped(width, PhysicalTypeForWidth(width), n);
  }

  // Like Reset but with an explicitly wider physical type — used for
  // massaged round columns that are sorted with a bank wider than their
  // code width (e.g. a 10-bit round under a 32-bit bank). Pass
  // `zero_fill = false` when every element will be overwritten anyway
  // (e.g. gather targets), to avoid a wasted memory pass.
  void ResetTyped(int width, PhysicalType type, size_t n,
                  bool zero_fill = true) {
    MCSORT_CHECK(width >= 1 && width <= 64);
    MCSORT_CHECK(width <= 8 * BytesOfPhysicalType(type));
    width_ = width;
    type_ = type;
    size_ = n;
    switch (type_) {
      case PhysicalType::kU16:
        data16_.Reset(n);
        if (zero_fill) data16_.Fill(0);
        data32_.Reset(0);
        data64_.Reset(0);
        break;
      case PhysicalType::kU32:
        data32_.Reset(n);
        if (zero_fill) data32_.Fill(0);
        data16_.Reset(0);
        data64_.Reset(0);
        break;
      case PhysicalType::kU64:
        data64_.Reset(n);
        if (zero_fill) data64_.Fill(0);
        data16_.Reset(0);
        data32_.Reset(0);
        break;
    }
  }

  // Points the column at an externally owned code array (an mmap'd snapshot
  // section) instead of copying it — the zero-copy load path. `data` must be
  // aligned for the physical type, hold `n` codes, and outlive the column
  // (the owning Table pins the mapping). The bytes are read-only: callers
  // must not write through Data16/32/64 on a view column.
  void ResetView(int width, PhysicalType type, size_t n, const void* data) {
    MCSORT_CHECK(width >= 1 && width <= 64);
    MCSORT_CHECK(width <= 8 * BytesOfPhysicalType(type));
    width_ = width;
    type_ = type;
    size_ = n;
    data16_.Reset(0);
    data32_.Reset(0);
    data64_.Reset(0);
    switch (type_) {
      case PhysicalType::kU16:
        data16_.ResetView(
            static_cast<uint16_t*>(const_cast<void*>(data)), n);
        break;
      case PhysicalType::kU32:
        data32_.ResetView(
            static_cast<uint32_t*>(const_cast<void*>(data)), n);
        break;
      case PhysicalType::kU64:
        data64_.ResetView(
            static_cast<uint64_t*>(const_cast<void*>(data)), n);
        break;
    }
  }
  bool is_view() const {
    return data16_.is_view() || data32_.is_view() || data64_.is_view();
  }

  int width() const { return width_; }
  size_t size() const { return size_; }
  PhysicalType type() const { return type_; }
  // The SIMD bank used when sorting this column directly (the paper's b_i).
  int bank() const { return MinBankForWidth(width_); }

  Code Get(size_t i) const {
    MCSORT_DCHECK(i < size_);
    switch (type_) {
      case PhysicalType::kU16: return data16_[i];
      case PhysicalType::kU32: return data32_[i];
      case PhysicalType::kU64: return data64_[i];
    }
    return 0;
  }

  void Set(size_t i, Code value) {
    MCSORT_DCHECK(i < size_);
    MCSORT_DCHECK((value & ~LowBitsMask(width_)) == 0);
    switch (type_) {
      case PhysicalType::kU16:
        data16_[i] = static_cast<uint16_t>(value);
        break;
      case PhysicalType::kU32:
        data32_[i] = static_cast<uint32_t>(value);
        break;
      case PhysicalType::kU64:
        data64_[i] = value;
        break;
    }
  }

  // Typed raw access; the physical type must match.
  uint16_t* Data16() {
    MCSORT_DCHECK(type_ == PhysicalType::kU16);
    return data16_.data();
  }
  const uint16_t* Data16() const {
    MCSORT_DCHECK(type_ == PhysicalType::kU16);
    return data16_.data();
  }
  uint32_t* Data32() {
    MCSORT_DCHECK(type_ == PhysicalType::kU32);
    return data32_.data();
  }
  const uint32_t* Data32() const {
    MCSORT_DCHECK(type_ == PhysicalType::kU32);
    return data32_.data();
  }
  uint64_t* Data64() {
    MCSORT_DCHECK(type_ == PhysicalType::kU64);
    return data64_.data();
  }
  const uint64_t* Data64() const {
    MCSORT_DCHECK(type_ == PhysicalType::kU64);
    return data64_.data();
  }

  void* raw_data() {
    switch (type_) {
      case PhysicalType::kU16: return data16_.data();
      case PhysicalType::kU32: return data32_.data();
      case PhysicalType::kU64: return data64_.data();
    }
    return nullptr;
  }
  const void* raw_data() const {
    return const_cast<EncodedColumn*>(this)->raw_data();
  }

  // Memory footprint (the cost model's N * size(w)).
  size_t byte_size() const { return size_ * BytesOfPhysicalType(type_); }

 private:
  int width_ = 0;
  PhysicalType type_ = PhysicalType::kU16;
  size_t size_ = 0;
  AlignedBuffer<uint16_t> data16_;
  AlignedBuffer<uint32_t> data32_;
  AlignedBuffer<uint64_t> data64_;
};

}  // namespace mcsort

#endif  // MCSORT_STORAGE_COLUMN_H_

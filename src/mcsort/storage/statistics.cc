#include "mcsort/storage/statistics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>

#include "mcsort/common/bits.h"
#include "mcsort/common/logging.h"

namespace mcsort {

double ExpectedOccupiedCells(double cells, double balls) {
  if (cells <= 1.0) return balls > 0 ? 1.0 : 0.0;
  if (balls <= 0.0) return 0.0;
  // cells * (1 - (1 - 1/cells)^balls), computed stably via expm1/log1p.
  const double log_miss = balls * std::log1p(-1.0 / cells);
  return -cells * std::expm1(log_miss);
}

ColumnStats ColumnStats::Build(const EncodedColumn& column, int hist_bits) {
  return BuildSampled(column, column.size(), hist_bits);
}

ColumnStats ColumnStats::BuildSampled(const EncodedColumn& column,
                                      uint64_t max_rows, int hist_bits) {
  ColumnStats stats;
  stats.width_ = column.width();
  stats.row_count_ = column.size();
  stats.hist_bits_ = std::min(hist_bits, column.width());
  const size_t buckets = size_t{1} << stats.hist_bits_;
  stats.bucket_rows_.assign(buckets, 0);
  stats.bucket_distinct_.assign(buckets, 0);
  if (column.size() == 0 || max_rows == 0) return stats;

  const uint64_t stride =
      column.size() <= max_rows ? 1 : (column.size() + max_rows - 1) / max_rows;
  stats.min_code_ = ~Code{0};
  stats.max_code_ = 0;
  const int shift = stats.width_ - stats.hist_bits_;
  std::unordered_set<Code> seen;
  seen.reserve(std::min<uint64_t>(column.size(), max_rows) / 4 + 16);
  uint64_t sampled = 0;
  for (size_t i = 0; i < column.size(); i += stride) {
    const Code code = column.Get(i);
    stats.min_code_ = std::min(stats.min_code_, code);
    stats.max_code_ = std::max(stats.max_code_, code);
    const size_t bucket = static_cast<size_t>(code >> shift);
    ++stats.bucket_rows_[bucket];
    if (seen.insert(code).second) {
      ++stats.bucket_distinct_[bucket];
    }
    ++sampled;
  }
  // Scale sampled row counts back to the full table.
  if (stride > 1 && sampled > 0) {
    const double scale =
        static_cast<double>(column.size()) / static_cast<double>(sampled);
    for (auto& rows : stats.bucket_rows_) {
      rows = static_cast<uint64_t>(static_cast<double>(rows) * scale + 0.5);
    }
  }
  stats.distinct_count_ = seen.size();
  // Build the prefix-distinct cache eagerly so concurrent readers never
  // race on the lazy initialization.
  stats.EstimateDistinctPrefixes(0);
  return stats;
}

uint64_t ColumnStats::DistinctSketch() const {
  // FNV-1a over log2 buckets: insensitive to small per-bucket jitter,
  // sensitive to which buckets hold distinct mass and roughly how much.
  uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](uint64_t v) {
    const int log2 = v == 0 ? 0 : std::bit_width(v);
    hash ^= static_cast<uint64_t>(log2);
    hash *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(hist_bits_));
  for (uint64_t d : bucket_distinct_) mix(d);
  return hash;
}

ColumnStatsImage ColumnStats::ToImage() const {
  ColumnStatsImage image;
  image.row_count = row_count_;
  image.distinct_count = distinct_count_;
  image.min_code = min_code_;
  image.max_code = max_code_;
  image.width = width_;
  image.hist_bits = hist_bits_;
  image.bucket_rows = bucket_rows_;
  image.bucket_distinct = bucket_distinct_;
  return image;
}

ColumnStats ColumnStats::FromImage(const ColumnStatsImage& image) {
  ColumnStats stats;
  stats.row_count_ = image.row_count;
  stats.distinct_count_ = image.distinct_count;
  stats.min_code_ = image.min_code;
  stats.max_code_ = image.max_code;
  stats.width_ = image.width;
  stats.hist_bits_ = image.hist_bits;
  stats.bucket_rows_ = image.bucket_rows;
  stats.bucket_distinct_ = image.bucket_distinct;
  stats.EstimateDistinctPrefixes(0);
  return stats;
}

double ColumnStats::EstimateDistinctPrefixes(int a) const {
  MCSORT_CHECK(a >= 0);
  if (a > width_) a = width_;
  if (prefix_cache_.empty()) {
    prefix_cache_.resize(static_cast<size_t>(width_) + 1);
    for (int bits = 0; bits <= width_; ++bits) {
      prefix_cache_[static_cast<size_t>(bits)] = ComputeDistinctPrefixes(bits);
    }
  }
  return prefix_cache_[static_cast<size_t>(a)];
}

double ColumnStats::ComputeDistinctPrefixes(int a) const {
  if (row_count_ == 0) return 0.0;
  if (a == 0) return 1.0;
  if (a >= width_) return static_cast<double>(distinct_count_);
  if (a <= hist_bits_) {
    // Aggregate 2^(hist_bits - a) adjacent buckets per prefix and count the
    // nonempty groups — exact given the histogram.
    const size_t group = size_t{1} << (hist_bits_ - a);
    double nonempty = 0.0;
    for (size_t start = 0; start < bucket_rows_.size(); start += group) {
      uint64_t rows = 0;
      for (size_t j = 0; j < group; ++j) rows += bucket_rows_[start + j];
      if (rows > 0) nonempty += 1.0;
    }
    return nonempty;
  }
  // Each histogram bucket spans 2^(a - hist_bits) prefix cells; spread the
  // bucket's distinct values uniformly across them.
  const double cells = std::pow(2.0, a - hist_bits_);
  double total = 0.0;
  for (size_t b = 0; b < bucket_distinct_.size(); ++b) {
    if (bucket_distinct_[b] == 0) continue;
    total += ExpectedOccupiedCells(
        cells, static_cast<double>(bucket_distinct_[b]));
  }
  return total;
}

}  // namespace mcsort

#include "mcsort/storage/dictionary.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "mcsort/common/bits.h"
#include "mcsort/common/logging.h"

namespace mcsort {

StringDictionary StringDictionary::Build(
    const std::vector<std::string>& values) {
  StringDictionary dict;
  dict.sorted_values_ = values;
  std::sort(dict.sorted_values_.begin(), dict.sorted_values_.end());
  dict.sorted_values_.erase(
      std::unique(dict.sorted_values_.begin(), dict.sorted_values_.end()),
      dict.sorted_values_.end());
  return dict;
}

StringDictionary StringDictionary::FromSorted(
    std::vector<std::string> sorted) {
  for (size_t i = 1; i < sorted.size(); ++i) {
    MCSORT_CHECK(sorted[i - 1] < sorted[i]);
  }
  StringDictionary dict;
  dict.sorted_values_ = std::move(sorted);
  return dict;
}

Code StringDictionary::Encode(const std::string& value) const {
  auto it =
      std::lower_bound(sorted_values_.begin(), sorted_values_.end(), value);
  MCSORT_CHECK(it != sorted_values_.end() && *it == value);
  return static_cast<Code>(it - sorted_values_.begin());
}

const std::string& StringDictionary::Decode(Code code) const {
  MCSORT_CHECK(code < sorted_values_.size());
  return sorted_values_[code];
}

int StringDictionary::code_width() const {
  return BitsForCount(sorted_values_.size());
}

EncodedStringColumn EncodeStrings(const std::vector<std::string>& values) {
  EncodedStringColumn result;
  result.dictionary = StringDictionary::Build(values);
  result.codes.Reset(result.dictionary.code_width(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    result.codes.Set(i, result.dictionary.Encode(values[i]));
  }
  return result;
}

DenseEncoding EncodeDense(const std::vector<int64_t>& values) {
  DenseEncoding result;
  result.dictionary = values;
  std::sort(result.dictionary.begin(), result.dictionary.end());
  result.dictionary.erase(
      std::unique(result.dictionary.begin(), result.dictionary.end()),
      result.dictionary.end());
  const int width = BitsForCount(result.dictionary.size());
  result.codes.Reset(width, values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    auto it = std::lower_bound(result.dictionary.begin(),
                               result.dictionary.end(), values[i]);
    result.codes.Set(i, static_cast<Code>(it - result.dictionary.begin()));
  }
  return result;
}

DomainEncoding EncodeDomain(const std::vector<int64_t>& values) {
  DomainEncoding result;
  MCSORT_CHECK(!values.empty());
  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  result.base = *min_it;
  const uint64_t range = static_cast<uint64_t>(*max_it - *min_it);
  result.codes.Reset(BitsForValue(range), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    result.codes.Set(i, static_cast<Code>(values[i] - result.base));
  }
  return result;
}

DenseEncoding EncodeDecimal(const std::vector<double>& values, int scale) {
  double factor = 1.0;
  for (int i = 0; i < scale; ++i) factor *= 10.0;
  std::vector<int64_t> scaled(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    scaled[i] = static_cast<int64_t>(std::llround(values[i] * factor));
  }
  return EncodeDense(scaled);
}

}  // namespace mcsort
